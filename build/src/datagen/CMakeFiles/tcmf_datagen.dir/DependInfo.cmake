
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/areas.cc" "src/datagen/CMakeFiles/tcmf_datagen.dir/areas.cc.o" "gcc" "src/datagen/CMakeFiles/tcmf_datagen.dir/areas.cc.o.d"
  "/root/repo/src/datagen/flight.cc" "src/datagen/CMakeFiles/tcmf_datagen.dir/flight.cc.o" "gcc" "src/datagen/CMakeFiles/tcmf_datagen.dir/flight.cc.o.d"
  "/root/repo/src/datagen/registry.cc" "src/datagen/CMakeFiles/tcmf_datagen.dir/registry.cc.o" "gcc" "src/datagen/CMakeFiles/tcmf_datagen.dir/registry.cc.o.d"
  "/root/repo/src/datagen/vessel.cc" "src/datagen/CMakeFiles/tcmf_datagen.dir/vessel.cc.o" "gcc" "src/datagen/CMakeFiles/tcmf_datagen.dir/vessel.cc.o.d"
  "/root/repo/src/datagen/weather.cc" "src/datagen/CMakeFiles/tcmf_datagen.dir/weather.cc.o" "gcc" "src/datagen/CMakeFiles/tcmf_datagen.dir/weather.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tcmf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tcmf_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/tcmf_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
