file(REMOVE_RECURSE
  "CMakeFiles/tcmf_datagen.dir/areas.cc.o"
  "CMakeFiles/tcmf_datagen.dir/areas.cc.o.d"
  "CMakeFiles/tcmf_datagen.dir/flight.cc.o"
  "CMakeFiles/tcmf_datagen.dir/flight.cc.o.d"
  "CMakeFiles/tcmf_datagen.dir/registry.cc.o"
  "CMakeFiles/tcmf_datagen.dir/registry.cc.o.d"
  "CMakeFiles/tcmf_datagen.dir/vessel.cc.o"
  "CMakeFiles/tcmf_datagen.dir/vessel.cc.o.d"
  "CMakeFiles/tcmf_datagen.dir/weather.cc.o"
  "CMakeFiles/tcmf_datagen.dir/weather.cc.o.d"
  "libtcmf_datagen.a"
  "libtcmf_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
