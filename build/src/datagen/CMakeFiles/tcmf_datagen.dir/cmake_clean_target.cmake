file(REMOVE_RECURSE
  "libtcmf_datagen.a"
)
