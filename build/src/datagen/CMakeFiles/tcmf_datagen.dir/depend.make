# Empty dependencies file for tcmf_datagen.
# This may be replaced when dependencies are built.
