# Empty dependencies file for tcmf_stream.
# This may be replaced when dependencies are built.
