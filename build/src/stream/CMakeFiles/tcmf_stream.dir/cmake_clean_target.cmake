file(REMOVE_RECURSE
  "libtcmf_stream.a"
)
