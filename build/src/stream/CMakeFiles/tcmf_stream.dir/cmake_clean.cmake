file(REMOVE_RECURSE
  "CMakeFiles/tcmf_stream.dir/record.cc.o"
  "CMakeFiles/tcmf_stream.dir/record.cc.o.d"
  "libtcmf_stream.a"
  "libtcmf_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
