# Empty compiler generated dependencies file for tcmf_insitu.
# This may be replaced when dependencies are built.
