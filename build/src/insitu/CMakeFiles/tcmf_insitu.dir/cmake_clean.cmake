file(REMOVE_RECURSE
  "CMakeFiles/tcmf_insitu.dir/crossstream.cc.o"
  "CMakeFiles/tcmf_insitu.dir/crossstream.cc.o.d"
  "CMakeFiles/tcmf_insitu.dir/lowlevel.cc.o"
  "CMakeFiles/tcmf_insitu.dir/lowlevel.cc.o.d"
  "libtcmf_insitu.a"
  "libtcmf_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
