file(REMOVE_RECURSE
  "libtcmf_insitu.a"
)
