# Empty compiler generated dependencies file for tcmf_prediction.
# This may be replaced when dependencies are built.
