file(REMOVE_RECURSE
  "libtcmf_prediction.a"
)
