file(REMOVE_RECURSE
  "CMakeFiles/tcmf_prediction.dir/clustering.cc.o"
  "CMakeFiles/tcmf_prediction.dir/clustering.cc.o.d"
  "CMakeFiles/tcmf_prediction.dir/cpa.cc.o"
  "CMakeFiles/tcmf_prediction.dir/cpa.cc.o.d"
  "CMakeFiles/tcmf_prediction.dir/erp.cc.o"
  "CMakeFiles/tcmf_prediction.dir/erp.cc.o.d"
  "CMakeFiles/tcmf_prediction.dir/hmm.cc.o"
  "CMakeFiles/tcmf_prediction.dir/hmm.cc.o.d"
  "CMakeFiles/tcmf_prediction.dir/kinetic.cc.o"
  "CMakeFiles/tcmf_prediction.dir/kinetic.cc.o.d"
  "CMakeFiles/tcmf_prediction.dir/linalg.cc.o"
  "CMakeFiles/tcmf_prediction.dir/linalg.cc.o.d"
  "CMakeFiles/tcmf_prediction.dir/rmf.cc.o"
  "CMakeFiles/tcmf_prediction.dir/rmf.cc.o.d"
  "CMakeFiles/tcmf_prediction.dir/trajpred.cc.o"
  "CMakeFiles/tcmf_prediction.dir/trajpred.cc.o.d"
  "libtcmf_prediction.a"
  "libtcmf_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
