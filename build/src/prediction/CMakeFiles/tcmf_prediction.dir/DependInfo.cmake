
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prediction/clustering.cc" "src/prediction/CMakeFiles/tcmf_prediction.dir/clustering.cc.o" "gcc" "src/prediction/CMakeFiles/tcmf_prediction.dir/clustering.cc.o.d"
  "/root/repo/src/prediction/cpa.cc" "src/prediction/CMakeFiles/tcmf_prediction.dir/cpa.cc.o" "gcc" "src/prediction/CMakeFiles/tcmf_prediction.dir/cpa.cc.o.d"
  "/root/repo/src/prediction/erp.cc" "src/prediction/CMakeFiles/tcmf_prediction.dir/erp.cc.o" "gcc" "src/prediction/CMakeFiles/tcmf_prediction.dir/erp.cc.o.d"
  "/root/repo/src/prediction/hmm.cc" "src/prediction/CMakeFiles/tcmf_prediction.dir/hmm.cc.o" "gcc" "src/prediction/CMakeFiles/tcmf_prediction.dir/hmm.cc.o.d"
  "/root/repo/src/prediction/kinetic.cc" "src/prediction/CMakeFiles/tcmf_prediction.dir/kinetic.cc.o" "gcc" "src/prediction/CMakeFiles/tcmf_prediction.dir/kinetic.cc.o.d"
  "/root/repo/src/prediction/linalg.cc" "src/prediction/CMakeFiles/tcmf_prediction.dir/linalg.cc.o" "gcc" "src/prediction/CMakeFiles/tcmf_prediction.dir/linalg.cc.o.d"
  "/root/repo/src/prediction/rmf.cc" "src/prediction/CMakeFiles/tcmf_prediction.dir/rmf.cc.o" "gcc" "src/prediction/CMakeFiles/tcmf_prediction.dir/rmf.cc.o.d"
  "/root/repo/src/prediction/trajpred.cc" "src/prediction/CMakeFiles/tcmf_prediction.dir/trajpred.cc.o" "gcc" "src/prediction/CMakeFiles/tcmf_prediction.dir/trajpred.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tcmf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tcmf_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
