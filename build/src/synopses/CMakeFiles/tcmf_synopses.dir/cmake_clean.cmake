file(REMOVE_RECURSE
  "CMakeFiles/tcmf_synopses.dir/batch_simplify.cc.o"
  "CMakeFiles/tcmf_synopses.dir/batch_simplify.cc.o.d"
  "CMakeFiles/tcmf_synopses.dir/critical_points.cc.o"
  "CMakeFiles/tcmf_synopses.dir/critical_points.cc.o.d"
  "libtcmf_synopses.a"
  "libtcmf_synopses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_synopses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
