
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synopses/batch_simplify.cc" "src/synopses/CMakeFiles/tcmf_synopses.dir/batch_simplify.cc.o" "gcc" "src/synopses/CMakeFiles/tcmf_synopses.dir/batch_simplify.cc.o.d"
  "/root/repo/src/synopses/critical_points.cc" "src/synopses/CMakeFiles/tcmf_synopses.dir/critical_points.cc.o" "gcc" "src/synopses/CMakeFiles/tcmf_synopses.dir/critical_points.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tcmf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tcmf_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
