# Empty compiler generated dependencies file for tcmf_synopses.
# This may be replaced when dependencies are built.
