file(REMOVE_RECURSE
  "libtcmf_synopses.a"
)
