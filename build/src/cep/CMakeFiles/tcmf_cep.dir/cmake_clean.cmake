file(REMOVE_RECURSE
  "CMakeFiles/tcmf_cep.dir/automaton.cc.o"
  "CMakeFiles/tcmf_cep.dir/automaton.cc.o.d"
  "CMakeFiles/tcmf_cep.dir/forecast.cc.o"
  "CMakeFiles/tcmf_cep.dir/forecast.cc.o.d"
  "CMakeFiles/tcmf_cep.dir/mining.cc.o"
  "CMakeFiles/tcmf_cep.dir/mining.cc.o.d"
  "CMakeFiles/tcmf_cep.dir/pattern.cc.o"
  "CMakeFiles/tcmf_cep.dir/pattern.cc.o.d"
  "CMakeFiles/tcmf_cep.dir/pmc.cc.o"
  "CMakeFiles/tcmf_cep.dir/pmc.cc.o.d"
  "libtcmf_cep.a"
  "libtcmf_cep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_cep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
