
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cep/automaton.cc" "src/cep/CMakeFiles/tcmf_cep.dir/automaton.cc.o" "gcc" "src/cep/CMakeFiles/tcmf_cep.dir/automaton.cc.o.d"
  "/root/repo/src/cep/forecast.cc" "src/cep/CMakeFiles/tcmf_cep.dir/forecast.cc.o" "gcc" "src/cep/CMakeFiles/tcmf_cep.dir/forecast.cc.o.d"
  "/root/repo/src/cep/mining.cc" "src/cep/CMakeFiles/tcmf_cep.dir/mining.cc.o" "gcc" "src/cep/CMakeFiles/tcmf_cep.dir/mining.cc.o.d"
  "/root/repo/src/cep/pattern.cc" "src/cep/CMakeFiles/tcmf_cep.dir/pattern.cc.o" "gcc" "src/cep/CMakeFiles/tcmf_cep.dir/pattern.cc.o.d"
  "/root/repo/src/cep/pmc.cc" "src/cep/CMakeFiles/tcmf_cep.dir/pmc.cc.o" "gcc" "src/cep/CMakeFiles/tcmf_cep.dir/pmc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tcmf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/synopses/CMakeFiles/tcmf_synopses.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tcmf_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
