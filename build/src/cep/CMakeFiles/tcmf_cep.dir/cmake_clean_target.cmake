file(REMOVE_RECURSE
  "libtcmf_cep.a"
)
