# Empty compiler generated dependencies file for tcmf_cep.
# This may be replaced when dependencies are built.
