file(REMOVE_RECURSE
  "libtcmf_rdf.a"
)
