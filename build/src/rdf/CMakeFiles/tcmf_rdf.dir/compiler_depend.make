# Empty compiler generated dependencies file for tcmf_rdf.
# This may be replaced when dependencies are built.
