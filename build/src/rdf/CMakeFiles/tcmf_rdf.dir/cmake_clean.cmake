file(REMOVE_RECURSE
  "CMakeFiles/tcmf_rdf.dir/bgp.cc.o"
  "CMakeFiles/tcmf_rdf.dir/bgp.cc.o.d"
  "CMakeFiles/tcmf_rdf.dir/dictionary.cc.o"
  "CMakeFiles/tcmf_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/tcmf_rdf.dir/graph.cc.o"
  "CMakeFiles/tcmf_rdf.dir/graph.cc.o.d"
  "CMakeFiles/tcmf_rdf.dir/ntriples.cc.o"
  "CMakeFiles/tcmf_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/tcmf_rdf.dir/rdfgen.cc.o"
  "CMakeFiles/tcmf_rdf.dir/rdfgen.cc.o.d"
  "CMakeFiles/tcmf_rdf.dir/semantic_trajectory.cc.o"
  "CMakeFiles/tcmf_rdf.dir/semantic_trajectory.cc.o.d"
  "CMakeFiles/tcmf_rdf.dir/sparql.cc.o"
  "CMakeFiles/tcmf_rdf.dir/sparql.cc.o.d"
  "CMakeFiles/tcmf_rdf.dir/term.cc.o"
  "CMakeFiles/tcmf_rdf.dir/term.cc.o.d"
  "libtcmf_rdf.a"
  "libtcmf_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
