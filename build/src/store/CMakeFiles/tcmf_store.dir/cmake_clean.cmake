file(REMOVE_RECURSE
  "CMakeFiles/tcmf_store.dir/columnar.cc.o"
  "CMakeFiles/tcmf_store.dir/columnar.cc.o.d"
  "CMakeFiles/tcmf_store.dir/kgstore.cc.o"
  "CMakeFiles/tcmf_store.dir/kgstore.cc.o.d"
  "libtcmf_store.a"
  "libtcmf_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
