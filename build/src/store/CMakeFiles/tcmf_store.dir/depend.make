# Empty dependencies file for tcmf_store.
# This may be replaced when dependencies are built.
