file(REMOVE_RECURSE
  "libtcmf_store.a"
)
