# Empty dependencies file for tcmf_linkdiscovery.
# This may be replaced when dependencies are built.
