file(REMOVE_RECURSE
  "libtcmf_linkdiscovery.a"
)
