file(REMOVE_RECURSE
  "CMakeFiles/tcmf_linkdiscovery.dir/linker.cc.o"
  "CMakeFiles/tcmf_linkdiscovery.dir/linker.cc.o.d"
  "libtcmf_linkdiscovery.a"
  "libtcmf_linkdiscovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_linkdiscovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
