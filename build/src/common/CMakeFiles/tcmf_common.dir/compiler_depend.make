# Empty compiler generated dependencies file for tcmf_common.
# This may be replaced when dependencies are built.
