file(REMOVE_RECURSE
  "CMakeFiles/tcmf_common.dir/csv.cc.o"
  "CMakeFiles/tcmf_common.dir/csv.cc.o.d"
  "CMakeFiles/tcmf_common.dir/logging.cc.o"
  "CMakeFiles/tcmf_common.dir/logging.cc.o.d"
  "CMakeFiles/tcmf_common.dir/stats.cc.o"
  "CMakeFiles/tcmf_common.dir/stats.cc.o.d"
  "CMakeFiles/tcmf_common.dir/status.cc.o"
  "CMakeFiles/tcmf_common.dir/status.cc.o.d"
  "CMakeFiles/tcmf_common.dir/strings.cc.o"
  "CMakeFiles/tcmf_common.dir/strings.cc.o.d"
  "libtcmf_common.a"
  "libtcmf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
