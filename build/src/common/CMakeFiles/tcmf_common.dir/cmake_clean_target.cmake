file(REMOVE_RECURSE
  "libtcmf_common.a"
)
