file(REMOVE_RECURSE
  "libtcmf_geom.a"
)
