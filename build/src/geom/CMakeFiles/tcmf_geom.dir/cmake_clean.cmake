file(REMOVE_RECURSE
  "CMakeFiles/tcmf_geom.dir/geo.cc.o"
  "CMakeFiles/tcmf_geom.dir/geo.cc.o.d"
  "CMakeFiles/tcmf_geom.dir/geometry.cc.o"
  "CMakeFiles/tcmf_geom.dir/geometry.cc.o.d"
  "CMakeFiles/tcmf_geom.dir/grid.cc.o"
  "CMakeFiles/tcmf_geom.dir/grid.cc.o.d"
  "CMakeFiles/tcmf_geom.dir/stcell.cc.o"
  "CMakeFiles/tcmf_geom.dir/stcell.cc.o.d"
  "libtcmf_geom.a"
  "libtcmf_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
