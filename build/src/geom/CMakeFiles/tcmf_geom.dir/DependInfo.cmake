
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/geo.cc" "src/geom/CMakeFiles/tcmf_geom.dir/geo.cc.o" "gcc" "src/geom/CMakeFiles/tcmf_geom.dir/geo.cc.o.d"
  "/root/repo/src/geom/geometry.cc" "src/geom/CMakeFiles/tcmf_geom.dir/geometry.cc.o" "gcc" "src/geom/CMakeFiles/tcmf_geom.dir/geometry.cc.o.d"
  "/root/repo/src/geom/grid.cc" "src/geom/CMakeFiles/tcmf_geom.dir/grid.cc.o" "gcc" "src/geom/CMakeFiles/tcmf_geom.dir/grid.cc.o.d"
  "/root/repo/src/geom/stcell.cc" "src/geom/CMakeFiles/tcmf_geom.dir/stcell.cc.o" "gcc" "src/geom/CMakeFiles/tcmf_geom.dir/stcell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tcmf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
