# Empty compiler generated dependencies file for tcmf_geom.
# This may be replaced when dependencies are built.
