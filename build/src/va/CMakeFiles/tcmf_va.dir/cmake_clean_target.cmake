file(REMOVE_RECURSE
  "libtcmf_va.a"
)
