
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/va/demand.cc" "src/va/CMakeFiles/tcmf_va.dir/demand.cc.o" "gcc" "src/va/CMakeFiles/tcmf_va.dir/demand.cc.o.d"
  "/root/repo/src/va/density.cc" "src/va/CMakeFiles/tcmf_va.dir/density.cc.o" "gcc" "src/va/CMakeFiles/tcmf_va.dir/density.cc.o.d"
  "/root/repo/src/va/pointmatch.cc" "src/va/CMakeFiles/tcmf_va.dir/pointmatch.cc.o" "gcc" "src/va/CMakeFiles/tcmf_va.dir/pointmatch.cc.o.d"
  "/root/repo/src/va/quality.cc" "src/va/CMakeFiles/tcmf_va.dir/quality.cc.o" "gcc" "src/va/CMakeFiles/tcmf_va.dir/quality.cc.o.d"
  "/root/repo/src/va/relevance.cc" "src/va/CMakeFiles/tcmf_va.dir/relevance.cc.o" "gcc" "src/va/CMakeFiles/tcmf_va.dir/relevance.cc.o.d"
  "/root/repo/src/va/timemask.cc" "src/va/CMakeFiles/tcmf_va.dir/timemask.cc.o" "gcc" "src/va/CMakeFiles/tcmf_va.dir/timemask.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tcmf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tcmf_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/prediction/CMakeFiles/tcmf_prediction.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
