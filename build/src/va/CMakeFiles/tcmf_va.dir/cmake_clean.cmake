file(REMOVE_RECURSE
  "CMakeFiles/tcmf_va.dir/demand.cc.o"
  "CMakeFiles/tcmf_va.dir/demand.cc.o.d"
  "CMakeFiles/tcmf_va.dir/density.cc.o"
  "CMakeFiles/tcmf_va.dir/density.cc.o.d"
  "CMakeFiles/tcmf_va.dir/pointmatch.cc.o"
  "CMakeFiles/tcmf_va.dir/pointmatch.cc.o.d"
  "CMakeFiles/tcmf_va.dir/quality.cc.o"
  "CMakeFiles/tcmf_va.dir/quality.cc.o.d"
  "CMakeFiles/tcmf_va.dir/relevance.cc.o"
  "CMakeFiles/tcmf_va.dir/relevance.cc.o.d"
  "CMakeFiles/tcmf_va.dir/timemask.cc.o"
  "CMakeFiles/tcmf_va.dir/timemask.cc.o.d"
  "libtcmf_va.a"
  "libtcmf_va.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmf_va.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
