# Empty dependencies file for tcmf_va.
# This may be replaced when dependencies are built.
