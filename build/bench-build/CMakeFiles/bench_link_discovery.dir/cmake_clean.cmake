file(REMOVE_RECURSE
  "../bench/bench_link_discovery"
  "../bench/bench_link_discovery.pdb"
  "CMakeFiles/bench_link_discovery.dir/bench_link_discovery.cpp.o"
  "CMakeFiles/bench_link_discovery.dir/bench_link_discovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
