# Empty dependencies file for bench_link_discovery.
# This may be replaced when dependencies are built.
