file(REMOVE_RECURSE
  "../bench/bench_rdf_generation"
  "../bench/bench_rdf_generation.pdb"
  "CMakeFiles/bench_rdf_generation.dir/bench_rdf_generation.cpp.o"
  "CMakeFiles/bench_rdf_generation.dir/bench_rdf_generation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rdf_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
