# Empty compiler generated dependencies file for bench_rdf_generation.
# This may be replaced when dependencies are built.
