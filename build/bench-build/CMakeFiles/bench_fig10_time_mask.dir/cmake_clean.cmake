file(REMOVE_RECURSE
  "../bench/bench_fig10_time_mask"
  "../bench/bench_fig10_time_mask.pdb"
  "CMakeFiles/bench_fig10_time_mask.dir/bench_fig10_time_mask.cpp.o"
  "CMakeFiles/bench_fig10_time_mask.dir/bench_fig10_time_mask.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_time_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
