# Empty compiler generated dependencies file for bench_fig12_point_matching.
# This may be replaced when dependencies are built.
