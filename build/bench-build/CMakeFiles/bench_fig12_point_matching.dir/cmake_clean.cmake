file(REMOVE_RECURSE
  "../bench/bench_fig12_point_matching"
  "../bench/bench_fig12_point_matching.pdb"
  "CMakeFiles/bench_fig12_point_matching.dir/bench_fig12_point_matching.cpp.o"
  "CMakeFiles/bench_fig12_point_matching.dir/bench_fig12_point_matching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_point_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
