file(REMOVE_RECURSE
  "../bench/bench_table1_sources"
  "../bench/bench_table1_sources.pdb"
  "CMakeFiles/bench_table1_sources.dir/bench_table1_sources.cpp.o"
  "CMakeFiles/bench_table1_sources.dir/bench_table1_sources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
