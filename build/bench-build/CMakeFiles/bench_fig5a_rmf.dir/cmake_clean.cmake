file(REMOVE_RECURSE
  "../bench/bench_fig5a_rmf"
  "../bench/bench_fig5a_rmf.pdb"
  "CMakeFiles/bench_fig5a_rmf.dir/bench_fig5a_rmf.cpp.o"
  "CMakeFiles/bench_fig5a_rmf.dir/bench_fig5a_rmf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_rmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
