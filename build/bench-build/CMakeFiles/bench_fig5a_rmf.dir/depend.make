# Empty dependencies file for bench_fig5a_rmf.
# This may be replaced when dependencies are built.
