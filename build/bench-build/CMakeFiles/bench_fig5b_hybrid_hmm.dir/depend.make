# Empty dependencies file for bench_fig5b_hybrid_hmm.
# This may be replaced when dependencies are built.
