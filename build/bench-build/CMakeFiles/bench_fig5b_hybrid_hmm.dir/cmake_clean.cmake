file(REMOVE_RECURSE
  "../bench/bench_fig5b_hybrid_hmm"
  "../bench/bench_fig5b_hybrid_hmm.pdb"
  "CMakeFiles/bench_fig5b_hybrid_hmm.dir/bench_fig5b_hybrid_hmm.cpp.o"
  "CMakeFiles/bench_fig5b_hybrid_hmm.dir/bench_fig5b_hybrid_hmm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_hybrid_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
