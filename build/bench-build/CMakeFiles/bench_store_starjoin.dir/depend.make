# Empty dependencies file for bench_store_starjoin.
# This may be replaced when dependencies are built.
