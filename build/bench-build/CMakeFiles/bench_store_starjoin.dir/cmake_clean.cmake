file(REMOVE_RECURSE
  "../bench/bench_store_starjoin"
  "../bench/bench_store_starjoin.pdb"
  "CMakeFiles/bench_store_starjoin.dir/bench_store_starjoin.cpp.o"
  "CMakeFiles/bench_store_starjoin.dir/bench_store_starjoin.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_store_starjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
