# Empty dependencies file for bench_fig8_cep_precision.
# This may be replaced when dependencies are built.
