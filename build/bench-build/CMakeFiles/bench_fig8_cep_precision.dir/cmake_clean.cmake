file(REMOVE_RECURSE
  "../bench/bench_fig8_cep_precision"
  "../bench/bench_fig8_cep_precision.pdb"
  "CMakeFiles/bench_fig8_cep_precision.dir/bench_fig8_cep_precision.cpp.o"
  "CMakeFiles/bench_fig8_cep_precision.dir/bench_fig8_cep_precision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cep_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
