file(REMOVE_RECURSE
  "../bench/bench_fig11_relevance_clustering"
  "../bench/bench_fig11_relevance_clustering.pdb"
  "CMakeFiles/bench_fig11_relevance_clustering.dir/bench_fig11_relevance_clustering.cpp.o"
  "CMakeFiles/bench_fig11_relevance_clustering.dir/bench_fig11_relevance_clustering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_relevance_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
