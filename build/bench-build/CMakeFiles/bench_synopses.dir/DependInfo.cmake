
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_synopses.cpp" "bench-build/CMakeFiles/bench_synopses.dir/bench_synopses.cpp.o" "gcc" "bench-build/CMakeFiles/bench_synopses.dir/bench_synopses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/tcmf_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/synopses/CMakeFiles/tcmf_synopses.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/tcmf_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tcmf_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcmf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
