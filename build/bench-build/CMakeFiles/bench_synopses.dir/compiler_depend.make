# Empty compiler generated dependencies file for bench_synopses.
# This may be replaced when dependencies are built.
