file(REMOVE_RECURSE
  "../bench/bench_synopses"
  "../bench/bench_synopses.pdb"
  "CMakeFiles/bench_synopses.dir/bench_synopses.cpp.o"
  "CMakeFiles/bench_synopses.dir/bench_synopses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synopses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
