# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/insitu_test[1]_include.cmake")
include("/root/repo/build/tests/synopses_test[1]_include.cmake")
include("/root/repo/build/tests/rdf_test[1]_include.cmake")
include("/root/repo/build/tests/linkdiscovery_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/prediction_test[1]_include.cmake")
include("/root/repo/build/tests/cep_test[1]_include.cmake")
include("/root/repo/build/tests/va_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
