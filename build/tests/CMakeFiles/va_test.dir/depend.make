# Empty dependencies file for va_test.
# This may be replaced when dependencies are built.
