file(REMOVE_RECURSE
  "CMakeFiles/va_test.dir/va_test.cc.o"
  "CMakeFiles/va_test.dir/va_test.cc.o.d"
  "va_test"
  "va_test.pdb"
  "va_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/va_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
