file(REMOVE_RECURSE
  "CMakeFiles/linkdiscovery_test.dir/linkdiscovery_test.cc.o"
  "CMakeFiles/linkdiscovery_test.dir/linkdiscovery_test.cc.o.d"
  "linkdiscovery_test"
  "linkdiscovery_test.pdb"
  "linkdiscovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkdiscovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
