# Empty compiler generated dependencies file for linkdiscovery_test.
# This may be replaced when dependencies are built.
