# Empty dependencies file for atm_flow.
# This may be replaced when dependencies are built.
