file(REMOVE_RECURSE
  "CMakeFiles/atm_flow.dir/atm_flow.cpp.o"
  "CMakeFiles/atm_flow.dir/atm_flow.cpp.o.d"
  "atm_flow"
  "atm_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
