
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/tcmf_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/insitu/CMakeFiles/tcmf_insitu.dir/DependInfo.cmake"
  "/root/repo/build/src/prediction/CMakeFiles/tcmf_prediction.dir/DependInfo.cmake"
  "/root/repo/build/src/synopses/CMakeFiles/tcmf_synopses.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/tcmf_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tcmf_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcmf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
