# Empty dependencies file for maritime_monitoring.
# This may be replaced when dependencies are built.
