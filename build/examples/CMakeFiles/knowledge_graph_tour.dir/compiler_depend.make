# Empty compiler generated dependencies file for knowledge_graph_tour.
# This may be replaced when dependencies are built.
