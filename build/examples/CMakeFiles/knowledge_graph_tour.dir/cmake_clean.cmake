file(REMOVE_RECURSE
  "CMakeFiles/knowledge_graph_tour.dir/knowledge_graph_tour.cpp.o"
  "CMakeFiles/knowledge_graph_tour.dir/knowledge_graph_tour.cpp.o.d"
  "knowledge_graph_tour"
  "knowledge_graph_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_graph_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
