#include "datagen/areas.h"

#include <algorithm>

#include "common/strings.h"
#include "geom/geo.h"

namespace tcmf::datagen {

using geom::Area;
using geom::BBox;
using geom::LonLat;
using geom::Polygon;

std::vector<Area> MakeRegions(Rng& rng, const BBox& extent, size_t count,
                              const std::string& kind, double min_radius_m,
                              double max_radius_m) {
  std::vector<Area> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    LonLat center{rng.Uniform(extent.min_lon, extent.max_lon),
                  rng.Uniform(extent.min_lat, extent.max_lat)};
    double base_radius = rng.Uniform(min_radius_m, max_radius_m);
    // Irregular star-convex ring: radius wobbles around the base value.
    int verts = static_cast<int>(rng.UniformInt(6, 12));
    std::vector<LonLat> ring;
    ring.reserve(verts);
    for (int v = 0; v < verts; ++v) {
      double bearing = 360.0 * v / verts;
      double radius = base_radius * rng.Uniform(0.6, 1.3);
      ring.push_back(geom::Destination(center, bearing, radius));
    }
    Area area;
    area.id = out.size() + 1;
    area.name = StrFormat("%s_%03zu", kind.c_str(), i);
    area.kind = kind;
    area.shape = Polygon(std::move(ring));
    out.push_back(std::move(area));
  }
  return out;
}

std::vector<Area> MakeRegionsNear(Rng& rng,
                                  const std::vector<LonLat>& anchors,
                                  size_t count, const std::string& kind,
                                  double min_radius_m, double max_radius_m,
                                  double min_offset_m, double max_offset_m,
                                  int min_vertices, int max_vertices) {
  std::vector<Area> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    LonLat anchor = anchors.empty()
                        ? LonLat{0.0, 0.0}
                        : anchors[static_cast<size_t>(rng.UniformInt(
                              0, static_cast<int64_t>(anchors.size()) - 1))];
    LonLat center = geom::Destination(
        anchor, rng.Uniform(0.0, 360.0),
        rng.Uniform(min_offset_m, max_offset_m));
    double base_radius = rng.Uniform(min_radius_m, max_radius_m);
    int verts = static_cast<int>(rng.UniformInt(min_vertices, max_vertices));
    std::vector<LonLat> ring;
    ring.reserve(verts);
    for (int v = 0; v < verts; ++v) {
      double bearing = 360.0 * v / verts;
      ring.push_back(
          geom::Destination(center, bearing, base_radius * rng.Uniform(0.6, 1.3)));
    }
    Area area;
    area.id = 1000 + out.size();
    area.name = StrFormat("%s_near_%03zu", kind.c_str(), i);
    area.kind = kind;
    area.shape = Polygon(std::move(ring));
    out.push_back(std::move(area));
  }
  return out;
}

std::vector<LonLat> AreaCentroids(const std::vector<Area>& areas) {
  std::vector<LonLat> out;
  out.reserve(areas.size());
  for (const Area& a : areas) out.push_back(a.shape.Centroid());
  return out;
}

std::vector<Area> MakePorts(Rng& rng, const BBox& extent, size_t count) {
  std::vector<Area> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    LonLat center{rng.Uniform(extent.min_lon, extent.max_lon),
                  rng.Uniform(extent.min_lat, extent.max_lat)};
    Area area;
    area.id = 100000 + i;
    area.name = StrFormat("port_%03zu", i);
    area.kind = "port";
    area.shape = Polygon::Circle(center, rng.Uniform(800.0, 2500.0), 12);
    out.push_back(std::move(area));
  }
  return out;
}

std::vector<Area> MakeSectors(const BBox& extent, int cols, int rows) {
  std::vector<Area> out;
  out.reserve(static_cast<size_t>(cols) * rows);
  double w = extent.width() / cols;
  double h = extent.height() / rows;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      BBox box;
      box.min_lon = extent.min_lon + c * w;
      box.max_lon = box.min_lon + w;
      box.min_lat = extent.min_lat + r * h;
      box.max_lat = box.min_lat + h;
      Area area;
      area.id = 200000 + static_cast<uint64_t>(r) * cols + c;
      area.name = StrFormat("sector_%02d_%02d", c, r);
      area.kind = "sector";
      area.shape = Polygon::FromBBox(box);
      out.push_back(std::move(area));
    }
  }
  return out;
}

}  // namespace tcmf::datagen
