#include "datagen/weather.h"

#include <cmath>

#include "geom/geo.h"

namespace tcmf::datagen {

WeatherField::WeatherField(Rng& rng, const geom::BBox& extent,
                           double max_wind_mps)
    : extent_(extent), max_wind_mps_(max_wind_mps) {
  // 6 random long-wavelength modes. Wavelengths span 2-10 degrees,
  // periods 6-48 hours.
  for (int i = 0; i < 6; ++i) {
    Mode m;
    double wavelength = rng.Uniform(2.0, 10.0);
    double direction = rng.Uniform(0.0, 2 * geom::kPi);
    m.kx = std::cos(direction) / wavelength;
    m.ky = std::sin(direction) / wavelength;
    m.omega = 1.0 / rng.Uniform(6.0, 48.0);
    m.phase = rng.Uniform(0.0, 2 * geom::kPi);
    double amp = rng.Uniform(0.2, 1.0);
    double amp_dir = rng.Uniform(0.0, 2 * geom::kPi);
    m.amp_e = amp * std::cos(amp_dir);
    m.amp_n = amp * std::sin(amp_dir);
    modes_.push_back(m);
  }
}

WeatherSample WeatherField::Sample(double lon, double lat, TimeMs t) const {
  double hours = static_cast<double>(t) / kMillisPerHour;
  double e = 0.0, n = 0.0;
  for (const Mode& m : modes_) {
    double arg = 2 * geom::kPi *
                     (m.kx * lon + m.ky * lat + m.omega * hours) +
                 m.phase;
    double s = std::sin(arg);
    e += m.amp_e * s;
    n += m.amp_n * s;
  }
  // Normalize by mode count so magnitudes stay within max_wind.
  double scale = max_wind_mps_ / static_cast<double>(modes_.size());
  WeatherSample out;
  out.wind_east_mps = e * scale;
  out.wind_north_mps = n * scale;
  double speed = std::hypot(out.wind_east_mps, out.wind_north_mps);
  out.severity = std::min(1.0, speed / max_wind_mps_);
  out.wave_height_m = 0.2 + 6.0 * out.severity * out.severity;
  return out;
}

std::vector<stream::Record> WeatherField::ForecastGrid(TimeMs t, int cols,
                                                       int rows) const {
  std::vector<stream::Record> out;
  out.reserve(static_cast<size_t>(cols) * rows);
  double w = extent_.width() / cols;
  double h = extent_.height() / rows;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      double lon = extent_.min_lon + (c + 0.5) * w;
      double lat = extent_.min_lat + (r + 0.5) * h;
      WeatherSample s = Sample(lon, lat, t);
      stream::Record rec;
      rec.set_event_time(t);
      rec.Set("t", static_cast<int64_t>(t));
      rec.Set("lon", lon);
      rec.Set("lat", lat);
      rec.Set("wind_east_mps", s.wind_east_mps);
      rec.Set("wind_north_mps", s.wind_north_mps);
      rec.Set("severity", s.severity);
      rec.Set("wave_height_m", s.wave_height_m);
      out.push_back(std::move(rec));
    }
  }
  return out;
}

}  // namespace tcmf::datagen
