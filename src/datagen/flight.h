#ifndef TCMF_DATAGEN_FLIGHT_H_
#define TCMF_DATAGEN_FLIGHT_H_

#include <string>
#include <vector>

#include "common/position.h"
#include "common/rng.h"
#include "datagen/registry.h"
#include "datagen/weather.h"
#include "geom/geometry.h"

namespace tcmf::datagen {

/// An airport with a (simplified) single runway orientation.
struct Airport {
  std::string code;
  geom::LonLat loc;
  double runway_heading_deg = 90.0;
};

/// One waypoint of an intended (planned) trajectory, with planned altitude
/// and estimated time over.
struct PlanWaypoint {
  std::string name;
  geom::LonLat loc;
  double alt_m = 0.0;
  TimeMs eta = 0;
};

/// A filed flight plan: the "intended trajectory" of the ATM domain.
struct FlightPlan {
  uint64_t flight_id = 0;
  uint64_t icao24 = 0;
  std::string origin;
  std::string destination;
  /// Airway (shared en-route waypoint chain) this plan follows; flights on
  /// the same airway form natural route clusters.
  int airway_id = 0;
  TimeMs departure_time = 0;
  std::vector<PlanWaypoint> waypoints;
};

/// A simulated flight: its plan, the aircraft, and what actually got flown.
struct SimulatedFlight {
  FlightPlan plan;
  AircraftInfo aircraft;
  /// ADS-B-rate observed positions (position_noise_m jitter applied).
  Trajectory actual;
  bool had_holding = false;
  bool had_runway_change = false;
};

/// Configuration of the ADS-B-like aviation simulator.
struct FlightSimConfig {
  geom::BBox extent{-10.0, 35.0, 5.0, 45.0};
  size_t flight_count = 100;
  size_t airway_count = 3;
  /// En-route waypoints per airway.
  size_t waypoints_per_airway = 6;
  TimeMs first_departure = 0;
  TimeMs departure_spread_ms = 12 * kMillisPerHour;
  TimeMs report_interval_ms = 8 * kMillisPerSecond;
  /// Cross-track deviation scale (meters per unit weather severity).
  double weather_deviation_m = 4000.0;
  double position_noise_m = 30.0;
  double holding_probability = 0.03;
  double runway_change_probability = 0.03;
  uint64_t seed = 11;
};

/// Simulates flights between two airports along shared airways, with
/// weather-driven lateral deviations from plan, climb/cruise/descent
/// vertical profiles, occasional holding patterns and runway changes.
/// The deviation structure is learnable from (waypoint, weather, aircraft
/// class) — exactly what Section 5's Hybrid Clustering/HMM exploits.
class FlightSimulator {
 public:
  FlightSimulator(const FlightSimConfig& config, Airport origin,
                  Airport destination, const WeatherField* weather);

  std::vector<SimulatedFlight> Run();

  /// The generated airway waypoint chains (route-cluster ground truth).
  const std::vector<std::vector<PlanWaypoint>>& airways() const {
    return airways_;
  }

 private:
  FlightPlan MakePlan(Rng& rng, uint64_t flight_id,
                      const AircraftInfo& aircraft, int airway_id,
                      TimeMs departure);
  Trajectory FlyPlan(Rng& rng, const FlightPlan& plan,
                     const AircraftInfo& aircraft, bool holding,
                     bool runway_change);

  FlightSimConfig config_;
  Airport origin_;
  Airport destination_;
  const WeatherField* weather_;
  std::vector<std::vector<PlanWaypoint>> airways_;
};

/// Default airport pair used by the experiments (Barcelona/Madrid-like
/// separation, per the Figure 5(a) setup).
Airport DefaultOriginAirport();
Airport DefaultDestinationAirport();

}  // namespace tcmf::datagen

#endif  // TCMF_DATAGEN_FLIGHT_H_
