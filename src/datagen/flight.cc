#include "datagen/flight.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "geom/geo.h"

namespace tcmf::datagen {

using geom::AngleDiffDeg;
using geom::BearingDeg;
using geom::Destination;
using geom::HaversineM;
using geom::LonLat;
using geom::NormalizeDeg;

Airport DefaultOriginAirport() {
  return {"LEBL", {2.08, 41.30}, 70.0};  // Barcelona-like
}

Airport DefaultDestinationAirport() {
  return {"LEMD", {-3.57, 40.49}, 180.0};  // Madrid-like
}

FlightSimulator::FlightSimulator(const FlightSimConfig& config,
                                 Airport origin, Airport destination,
                                 const WeatherField* weather)
    : config_(config),
      origin_(std::move(origin)),
      destination_(std::move(destination)),
      weather_(weather) {
  // Build shared airways: laterally offset great-circle chains between the
  // two airports, so that flights on the same airway cluster tightly.
  Rng rng(config_.seed);
  double total = HaversineM(origin_.loc, destination_.loc);
  double course = BearingDeg(origin_.loc, destination_.loc);
  for (size_t a = 0; a < config_.airway_count; ++a) {
    std::vector<PlanWaypoint> chain;
    // Offset grows toward mid-route then shrinks: a "bow" around the
    // direct track, distinct per airway.
    double side = (a % 2 == 0) ? 1.0 : -1.0;
    double magnitude = 15000.0 + 22000.0 * static_cast<double>(a);
    for (size_t w = 0; w < config_.waypoints_per_airway; ++w) {
      double frac =
          static_cast<double>(w + 1) / (config_.waypoints_per_airway + 1);
      LonLat on_track = Destination(origin_.loc, course, total * frac);
      double bow = std::sin(frac * geom::kPi) * magnitude * side;
      LonLat wp = Destination(on_track, NormalizeDeg(course + 90.0), bow);
      PlanWaypoint pw;
      pw.name = StrFormat("WPT%zu_%zu", a, w);
      pw.loc = wp;
      chain.push_back(pw);
    }
    airways_.push_back(std::move(chain));
  }
}

FlightPlan FlightSimulator::MakePlan(Rng& rng, uint64_t flight_id,
                                     const AircraftInfo& aircraft,
                                     int airway_id, TimeMs departure) {
  FlightPlan plan;
  plan.flight_id = flight_id;
  plan.icao24 = aircraft.icao24;
  plan.origin = origin_.code;
  plan.destination = destination_.code;
  plan.airway_id = airway_id;
  plan.departure_time = departure;

  const std::vector<PlanWaypoint>& airway = airways_[airway_id];
  double cruise_alt = aircraft.cruise_alt_m * rng.Uniform(0.95, 1.05);
  double speed = aircraft.cruise_speed_mps;

  // Assemble: origin, en-route waypoints at cruise altitude, destination.
  PlanWaypoint start;
  start.name = origin_.code;
  start.loc = origin_.loc;
  start.alt_m = 0.0;
  start.eta = departure;
  plan.waypoints.push_back(start);

  TimeMs t = departure;
  LonLat prev = origin_.loc;
  for (const PlanWaypoint& wp : airway) {
    PlanWaypoint p = wp;
    p.alt_m = cruise_alt;
    t += static_cast<TimeMs>(HaversineM(prev, wp.loc) / speed *
                             kMillisPerSecond);
    p.eta = t;
    prev = wp.loc;
    plan.waypoints.push_back(p);
  }
  PlanWaypoint end;
  end.name = destination_.code;
  end.loc = destination_.loc;
  end.alt_m = 0.0;
  end.eta = t + static_cast<TimeMs>(HaversineM(prev, destination_.loc) /
                                    speed * kMillisPerSecond);
  plan.waypoints.push_back(end);
  return plan;
}

Trajectory FlightSimulator::FlyPlan(Rng& rng, const FlightPlan& plan,
                                    const AircraftInfo& aircraft,
                                    bool holding, bool runway_change) {
  Trajectory traj;
  traj.entity_id = plan.flight_id;

  const double dt =
      static_cast<double>(config_.report_interval_ms) / kMillisPerSecond;
  double cruise_alt = plan.waypoints.size() > 2
                          ? plan.waypoints[1].alt_m
                          : aircraft.cruise_alt_m;

  // Build the lateral target list: per-waypoint weather-driven offsets from
  // plan. The offset depends deterministically on the cross-wind at the
  // waypoint plus noise — learnable structure for the TP models.
  std::vector<LonLat> targets;
  for (size_t i = 1; i < plan.waypoints.size(); ++i) {
    const PlanWaypoint& wp = plan.waypoints[i];
    LonLat target = wp.loc;
    if (weather_ != nullptr && i + 1 < plan.waypoints.size()) {
      WeatherSample w = weather_->Sample(wp.loc.lon, wp.loc.lat, wp.eta);
      double course = BearingDeg(plan.waypoints[i - 1].loc, wp.loc);
      // Cross-track wind component (positive pushes right of course).
      double course_rad = geom::DegToRad(course);
      double cross = w.wind_east_mps * std::cos(course_rad) -
                     w.wind_north_mps * std::sin(course_rad);
      double offset = cross / 25.0 * config_.weather_deviation_m +
                      rng.Gaussian(0.0, 0.08 * config_.weather_deviation_m);
      target = Destination(wp.loc, NormalizeDeg(course + 90.0), offset);
    }
    targets.push_back(target);
  }

  // Holding pattern: insert a racetrack before final approach.
  if (holding && targets.size() >= 2) {
    LonLat fix = targets[targets.size() - 2];
    std::vector<LonLat> racetrack;
    for (int leg = 0; leg < 4; ++leg) {
      racetrack.push_back(
          Destination(fix, NormalizeDeg(90.0 * leg), 6000.0));
    }
    targets.insert(targets.end() - 1, racetrack.begin(), racetrack.end());
  }

  // Runway change: approach the destination from the opposite side.
  if (runway_change) {
    double approach = NormalizeDeg(destination_.runway_heading_deg + 180.0);
    LonLat far_fix = Destination(destination_.loc, approach, 15000.0);
    targets.insert(targets.end() - 1, far_fix);
  }

  // Kinematic state.
  LonLat pos = plan.waypoints.front().loc;
  double heading = BearingDeg(pos, targets.front());
  double alt = 0.0;
  double speed = 80.0;  // takeoff roll end speed
  double cruise_speed = aircraft.cruise_speed_mps;
  double climb_rate = aircraft.climb_rate_mps;
  size_t next = 0;
  const double turn_rate = 3.0;  // deg/s standard-rate-ish

  TimeMs t = plan.departure_time;
  const TimeMs hard_stop =
      plan.departure_time + 8 * kMillisPerHour;  // safety bound

  // Observation noise applied to emitted positions (ADS-B jitter); the
  // kinematic state itself stays clean.
  auto emit_point = [&](double vrate) {
    Position p;
    p.entity_id = plan.flight_id;
    p.t = t;
    LonLat observed = pos;
    if (config_.position_noise_m > 0) {
      observed = Destination(
          pos, rng.Uniform(0.0, 360.0),
          std::fabs(rng.Gaussian(0.0, config_.position_noise_m)));
    }
    p.lon = observed.lon;
    p.lat = observed.lat;
    p.alt_m = alt;
    p.speed_mps = speed;
    p.heading_deg = heading;
    p.vrate_mps = vrate;
    traj.points.push_back(p);
  };

  // Takeoff roll: a few on-ground reports before rotation, so the takeoff
  // transition is observable in the surveillance stream.
  speed = 30.0;
  for (int g = 0; g < 3; ++g) {
    if (g > 0) t += config_.report_interval_ms;
    emit_point(0.0);
    speed += 25.0;
    pos = Destination(pos, heading, speed * dt * 0.5);
  }
  // The main loop advances t by one report interval before emitting, so
  // the first airborne report lands exactly one interval after the roll.

  while (next < targets.size() && t < hard_stop) {
    const LonLat& wp = targets[next];
    double dist_to_wp = HaversineM(pos, wp);
    double dist_to_dest = HaversineM(pos, destination_.loc);
    bool final_leg = next + 1 == targets.size();

    // Lateral guidance.
    double desired = BearingDeg(pos, wp);
    double diff = AngleDiffDeg(desired, heading);
    double max_turn = turn_rate * dt;
    heading = NormalizeDeg(heading + std::clamp(diff, -max_turn, max_turn));

    // Vertical profile: climb to cruise; start descending once the
    // remaining distance fits the descent cone (time to lose the current
    // altitude at 0.8x climb rate, flown at the current speed, with
    // margin); flare to 0 at the destination.
    double descent_distance =
        speed * (alt / (0.8 * climb_rate)) * 1.25 + 3000.0;
    double vrate = 0.0;
    if (dist_to_dest < descent_distance) {
      vrate = -climb_rate * 0.8;
    } else if (alt < cruise_alt) {
      vrate = climb_rate;
    }
    alt = std::clamp(alt + vrate * dt, 0.0, cruise_alt);

    // Speed schedule: slower low, faster at cruise.
    double target_speed =
        80.0 + (cruise_speed - 80.0) * std::min(1.0, alt / (cruise_alt * 0.6));
    speed += (target_speed - speed) * std::min(1.0, 0.1 * dt);

    pos = Destination(pos, heading, speed * dt);
    t += config_.report_interval_ms;
    emit_point(vrate);

    if (dist_to_wp < std::max(1200.0, speed * dt * 2.5)) {
      ++next;
    }
    // Touch-down: terminate once low and close on the final leg.
    if (final_leg && alt <= 1.0 && dist_to_dest < 3000.0) break;
  }
  return traj;
}

std::vector<SimulatedFlight> FlightSimulator::Run() {
  Rng master(config_.seed);
  std::vector<AircraftInfo> fleet =
      MakeAircraftRegistry(master, config_.flight_count);
  std::vector<SimulatedFlight> out;
  out.reserve(config_.flight_count);
  for (size_t i = 0; i < config_.flight_count; ++i) {
    Rng rng = master.Fork();
    int airway =
        static_cast<int>(rng.UniformInt(0, airways_.size() - 1));
    TimeMs departure =
        config_.first_departure +
        static_cast<TimeMs>(rng.Uniform(
            0.0, static_cast<double>(config_.departure_spread_ms)));
    SimulatedFlight flight;
    flight.aircraft = fleet[i];
    flight.plan = MakePlan(rng, 500000 + i, fleet[i], airway, departure);
    flight.had_holding = rng.Bernoulli(config_.holding_probability);
    flight.had_runway_change =
        rng.Bernoulli(config_.runway_change_probability);
    flight.actual = FlyPlan(rng, flight.plan, fleet[i], flight.had_holding,
                            flight.had_runway_change);
    out.push_back(std::move(flight));
  }
  return out;
}

}  // namespace tcmf::datagen
