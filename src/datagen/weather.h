#ifndef TCMF_DATAGEN_WEATHER_H_
#define TCMF_DATAGEN_WEATHER_H_

#include <vector>

#include "common/position.h"
#include "common/rng.h"
#include "geom/geometry.h"
#include "stream/record.h"

namespace tcmf::datagen {

/// A sampled weather state at one point in space-time.
struct WeatherSample {
  double wind_east_mps = 0.0;
  double wind_north_mps = 0.0;
  /// 0 (calm) .. 1 (severe): drives vessel slowdown and flight deviation.
  double severity = 0.0;
  /// Significant wave height (maritime), meters.
  double wave_height_m = 0.0;
};

/// Smooth synthetic weather field — the stand-in for the paper's sea-state
/// and weather-forecast sources. Built from a few random long-wavelength
/// sinusoidal modes so it is continuous in space and time (no data files
/// needed) yet non-trivial to predict from positions alone.
class WeatherField {
 public:
  WeatherField(Rng& rng, const geom::BBox& extent, double max_wind_mps = 25.0);

  WeatherSample Sample(double lon, double lat, TimeMs t) const;

  /// Emits a forecast grid at time `t` with `cols` x `rows` cells — the
  /// analogue of one GRIB forecast file (used by the RDFizer and Table 1).
  std::vector<stream::Record> ForecastGrid(TimeMs t, int cols,
                                           int rows) const;

  const geom::BBox& extent() const { return extent_; }

 private:
  struct Mode {
    double kx, ky;      // spatial frequency (cycles per degree)
    double omega;       // temporal frequency (cycles per hour)
    double phase;
    double amp_e, amp_n;
  };

  geom::BBox extent_;
  double max_wind_mps_;
  std::vector<Mode> modes_;
};

}  // namespace tcmf::datagen

#endif  // TCMF_DATAGEN_WEATHER_H_
