#ifndef TCMF_DATAGEN_REGISTRY_H_
#define TCMF_DATAGEN_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace tcmf::datagen {

/// Vessel classes used across the simulator and the scenarios of Section 2.
enum class VesselType { kFishing, kCargo, kTanker, kFerry, kPassenger };

const char* VesselTypeName(VesselType type);

/// One row of the vessel-register contextual source (Table 1).
struct VesselInfo {
  uint64_t mmsi = 0;
  std::string name;
  VesselType type = VesselType::kCargo;
  std::string flag;
  double length_m = 0.0;
  double max_speed_mps = 0.0;
};

/// Aircraft size classes (the "aircraft size" enrichment feature of
/// Section 5's Hybrid Clustering/HMM).
enum class AircraftClass { kLight, kMedium, kHeavy };

const char* AircraftClassName(AircraftClass cls);

/// One row of the aircraft-register contextual source.
struct AircraftInfo {
  uint64_t icao24 = 0;
  std::string tail_number;
  AircraftClass cls = AircraftClass::kMedium;
  double cruise_speed_mps = 0.0;
  double cruise_alt_m = 0.0;
  double climb_rate_mps = 0.0;
};

/// Generates `count` registry rows with type mix `fishing_fraction` of
/// fishing vessels and the remainder split over commercial classes.
std::vector<VesselInfo> MakeVesselRegistry(Rng& rng, size_t count,
                                           double fishing_fraction = 0.4);

std::vector<AircraftInfo> MakeAircraftRegistry(Rng& rng, size_t count);

}  // namespace tcmf::datagen

#endif  // TCMF_DATAGEN_REGISTRY_H_
