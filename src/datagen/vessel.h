#ifndef TCMF_DATAGEN_VESSEL_H_
#define TCMF_DATAGEN_VESSEL_H_

#include <vector>

#include "common/position.h"
#include "common/rng.h"
#include "datagen/registry.h"
#include "datagen/weather.h"
#include "geom/geometry.h"

namespace tcmf::datagen {

/// Configuration of the AIS-like maritime traffic simulator.
struct VesselSimConfig {
  geom::BBox extent{-6.0, 35.0, 10.0, 44.0};  ///< western Mediterranean-ish
  size_t vessel_count = 50;
  TimeMs start_time = 0;
  TimeMs duration_ms = 6 * kMillisPerHour;
  /// Base AIS reporting interval for a moving vessel.
  TimeMs report_interval_ms = 10 * kMillisPerSecond;
  /// Reporting interval multiplier when (nearly) stationary — class-A AIS
  /// reports every 3 minutes at anchor.
  int stationary_interval_factor = 18;
  /// Standard deviation of GPS position jitter, meters.
  double position_noise_m = 15.0;
  /// Probability per report of starting a communication gap.
  double gap_probability = 0.0015;
  TimeMs gap_duration_mean_ms = 12 * kMillisPerMinute;
  /// Probability per report of a gross position outlier (data veracity).
  double outlier_probability = 0.0;
  double outlier_offset_m = 20000.0;
  /// Fraction of fishing vessels (they trawl inside fishing areas).
  double fishing_fraction = 0.4;
  uint64_t seed = 7;
};

/// Result of a maritime simulation run.
struct VesselSimOutput {
  std::vector<VesselInfo> registry;
  /// Per-vessel noise-free ground truth at every report time (including
  /// reports suppressed by communication gaps).
  std::vector<Trajectory> truth;
  /// The merged, time-ordered noisy surveillance stream actually "received".
  std::vector<Position> stream;
  /// Per-vessel index into `registry`/`truth` by entity id.
  size_t total_reports_generated = 0;
  size_t reports_lost_to_gaps = 0;
};

/// Simulates port-to-port commercial traffic plus trawling fishing vessels
/// (Section 2 maritime scenarios). Motion is kinematically consistent:
/// headings/speeds in emitted positions match successive displacements, so
/// the synopses generator and predictors see realistic dynamics.
class VesselSimulator {
 public:
  /// `ports` supplies route endpoints; `fishing_areas` the trawling zones.
  /// Both may be empty (random sea points are used instead). `weather` may
  /// be null (calm seas).
  VesselSimulator(const VesselSimConfig& config,
                  std::vector<geom::Area> ports,
                  std::vector<geom::Area> fishing_areas,
                  const WeatherField* weather);

  VesselSimOutput Run();

 private:
  VesselSimConfig config_;
  std::vector<geom::Area> ports_;
  std::vector<geom::Area> fishing_areas_;
  const WeatherField* weather_;
};

}  // namespace tcmf::datagen

#endif  // TCMF_DATAGEN_VESSEL_H_
