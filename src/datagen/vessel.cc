#include "datagen/vessel.h"

#include <algorithm>
#include <cmath>

#include "geom/geo.h"

namespace tcmf::datagen {

using geom::AngleDiffDeg;
using geom::BearingDeg;
using geom::Destination;
using geom::HaversineM;
using geom::LonLat;
using geom::NormalizeDeg;

namespace {

/// Per-vessel mutable simulation state.
struct VesselState {
  VesselInfo info;
  LonLat pos;
  double heading_deg = 0.0;
  double speed_mps = 0.0;
  double target_speed_mps = 0.0;
  double turn_rate_deg_s = 1.0;
  std::vector<LonLat> route;  ///< remaining waypoints
  size_t next_wp = 0;
  // Fishing-specific behaviour: when trawling the vessel runs parallel
  // passes inside a fishing area, reversing heading at each end.
  bool is_fishing_leg = false;
  int trawl_legs_left = 0;
  LonLat trawl_anchor;
  double trawl_heading = 0.0;
  // Communication-gap state.
  TimeMs gap_until = -1;
  // Port dwell before the next voyage (-1 = not dwelling).
  TimeMs dwell_until = -1;
  Rng rng{0};
};

LonLat RandomPointIn(Rng& rng, const geom::BBox& box) {
  return {rng.Uniform(box.min_lon, box.max_lon),
          rng.Uniform(box.min_lat, box.max_lat)};
}

LonLat AreaCenterOrRandom(Rng& rng, const std::vector<geom::Area>& areas,
                          const geom::BBox& extent, size_t* index_out) {
  if (areas.empty()) {
    *index_out = 0;
    return RandomPointIn(rng, extent);
  }
  size_t idx = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(areas.size()) - 1));
  *index_out = idx;
  return areas[idx].shape.Centroid();
}

/// Destination reachable within `max_range_m` of `from`: a random choice
/// among the up-to-3 nearest qualifying areas (nearest overall when none
/// qualifies). Keeps voyages completable within the simulation horizon.
LonLat ReachableAreaCenter(Rng& rng, const std::vector<geom::Area>& areas,
                           const geom::BBox& extent, const LonLat& from,
                           double max_range_m) {
  if (areas.empty()) {
    double bearing = rng.Uniform(0.0, 360.0);
    double dist = rng.Uniform(0.3, 1.0) * max_range_m;
    return Destination(from, bearing, dist);
  }
  std::vector<std::pair<double, size_t>> by_distance;
  by_distance.reserve(areas.size());
  for (size_t i = 0; i < areas.size(); ++i) {
    LonLat c = areas[i].shape.Centroid();
    double d = HaversineM(from, c);
    if (d > 1000.0) by_distance.push_back({d, i});  // skip "here"
  }
  if (by_distance.empty()) return RandomPointIn(rng, extent);
  std::sort(by_distance.begin(), by_distance.end());
  size_t qualifying = 0;
  while (qualifying < by_distance.size() &&
         by_distance[qualifying].first <= max_range_m) {
    ++qualifying;
  }
  if (qualifying == 0) {
    // No catalog area in range: use a local destination instead (a small
    // boat does not cross the basin; it works its local grounds).
    double bearing = rng.Uniform(0.0, 360.0);
    return Destination(from, bearing, rng.Uniform(0.3, 1.0) * max_range_m);
  }
  size_t pool = std::min<size_t>(3, qualifying);
  size_t pick = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(pool) - 1));
  return areas[by_distance[pick].second].shape.Centroid();
}

/// Intermediate waypoints along the from->to track with lateral jitter, so
/// voyages are mostly straight legs with occasional course changes.
std::vector<LonLat> RouteVia(Rng& rng, const LonLat& from, const LonLat& to,
                             int hops) {
  std::vector<LonLat> out;
  double total = HaversineM(from, to);
  double course = BearingDeg(from, to);
  for (int h = 1; h <= hops; ++h) {
    double frac = static_cast<double>(h) / (hops + 1);
    LonLat on_track = Destination(from, course, total * frac);
    double lateral = rng.Uniform(-0.12, 0.12) * total;
    out.push_back(Destination(on_track, NormalizeDeg(course + 90.0), lateral));
  }
  out.push_back(to);
  return out;
}

}  // namespace

VesselSimulator::VesselSimulator(const VesselSimConfig& config,
                                 std::vector<geom::Area> ports,
                                 std::vector<geom::Area> fishing_areas,
                                 const WeatherField* weather)
    : config_(config),
      ports_(std::move(ports)),
      fishing_areas_(std::move(fishing_areas)),
      weather_(weather) {}

VesselSimOutput VesselSimulator::Run() {
  Rng master(config_.seed);
  VesselSimOutput out;
  out.registry =
      MakeVesselRegistry(master, config_.vessel_count, config_.fishing_fraction);

  // Initialize per-vessel states and routes.
  std::vector<VesselState> states;
  states.reserve(out.registry.size());
  for (const VesselInfo& info : out.registry) {
    VesselState s;
    s.info = info;
    s.rng = master.Fork();
    size_t idx;
    s.pos = AreaCenterOrRandom(s.rng, ports_, config_.extent, &idx);
    s.target_speed_mps = info.max_speed_mps * s.rng.Uniform(0.7, 0.95);
    // Route: a destination reachable within the simulation horizon
    // (fishing vessels head to a fishing area and must get there early
    // enough to trawl; commercial traffic sails port to port), reached
    // via 1-3 jittered on-track waypoints.
    double duration_s =
        static_cast<double>(config_.duration_ms) / kMillisPerSecond;
    double reach_m = s.target_speed_mps * duration_s;
    int hops = static_cast<int>(s.rng.UniformInt(1, 3));
    LonLat destination;
    if (info.type == VesselType::kFishing) {
      destination = ReachableAreaCenter(s.rng, fishing_areas_, config_.extent,
                                        s.pos, 0.30 * reach_m);
      s.trawl_legs_left = static_cast<int>(s.rng.UniformInt(6, 14));
    } else {
      destination = ReachableAreaCenter(s.rng, ports_, config_.extent, s.pos,
                                        0.80 * reach_m);
    }
    s.route = RouteVia(s.rng, s.pos, destination, hops);
    s.speed_mps = s.target_speed_mps;
    s.heading_deg =
        s.route.empty() ? 0.0 : BearingDeg(s.pos, s.route.front());
    s.turn_rate_deg_s = info.type == VesselType::kFishing ? 3.0 : 0.6;
    states.push_back(std::move(s));
  }

  out.truth.resize(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    out.truth[i].entity_id = states[i].info.mmsi;
  }

  const double dt = static_cast<double>(config_.report_interval_ms) /
                    kMillisPerSecond;
  const TimeMs end_time = config_.start_time + config_.duration_ms;

  for (TimeMs t = config_.start_time; t < end_time;
       t += config_.report_interval_ms) {
    for (size_t vi = 0; vi < states.size(); ++vi) {
      VesselState& s = states[vi];

      // --- Behaviour/navigation update ---
      bool stationary = false;
      if (s.next_wp < s.route.size()) {
        const LonLat& wp = s.route[s.next_wp];
        double dist = HaversineM(s.pos, wp);
        if (dist < std::max(300.0, s.speed_mps * dt * 2)) {
          ++s.next_wp;
          if (s.next_wp >= s.route.size()) {
            if (s.info.type == VesselType::kFishing &&
                s.trawl_legs_left > 0) {
              double leg_len = s.rng.Uniform(1500.0, 4000.0);
              if (!s.is_fishing_leg) {
                // Arrived at the fishing ground: start the first pass.
                s.is_fishing_leg = true;
                s.trawl_anchor = s.pos;
                s.trawl_heading = s.rng.Uniform(0.0, 360.0);
                s.target_speed_mps = s.rng.Uniform(1.0, 2.2);
              } else {
                // Completed a pass: reverse (with jitter) for the next.
                --s.trawl_legs_left;
                s.trawl_heading = NormalizeDeg(s.trawl_heading + 180.0 +
                                               s.rng.Uniform(-15.0, 15.0));
              }
              if (s.trawl_legs_left > 0) {
                s.route.push_back(
                    Destination(s.pos, s.trawl_heading, leg_len));
              } else {
                // Trawling done: head home.
                size_t pidx;
                s.route.push_back(AreaCenterOrRandom(s.rng, ports_,
                                                     config_.extent, &pidx));
                s.is_fishing_leg = false;
                s.target_speed_mps = s.info.max_speed_mps * 0.8;
              }
            } else {
              // Voyage complete: dwell in port, then sail again.
              s.target_speed_mps = 0.0;
              s.dwell_until =
                  t + static_cast<TimeMs>(
                          s.rng.Uniform(20.0, 90.0) * kMillisPerMinute);
            }
          }
        } else {
          double desired = BearingDeg(s.pos, wp);
          double diff = AngleDiffDeg(desired, s.heading_deg);
          double max_turn = s.turn_rate_deg_s * dt;
          s.heading_deg =
              NormalizeDeg(s.heading_deg +
                           std::clamp(diff, -max_turn, max_turn));
        }
      } else {
        stationary = true;
        // Depart on a new voyage once the port dwell elapses.
        if (s.dwell_until >= 0 && t >= s.dwell_until) {
          s.dwell_until = -1;
          double duration_s =
              static_cast<double>(config_.duration_ms) / kMillisPerSecond;
          s.target_speed_mps = s.info.max_speed_mps * s.rng.Uniform(0.7, 0.95);
          double reach_m = s.target_speed_mps * duration_s;
          LonLat destination;
          if (s.info.type == VesselType::kFishing) {
            destination = ReachableAreaCenter(s.rng, fishing_areas_,
                                              config_.extent, s.pos,
                                              0.30 * reach_m);
            s.trawl_legs_left = static_cast<int>(s.rng.UniformInt(6, 14));
            s.is_fishing_leg = false;
          } else {
            destination = ReachableAreaCenter(s.rng, ports_, config_.extent,
                                              s.pos, 0.80 * reach_m);
          }
          s.route = RouteVia(s.rng, s.pos, destination,
                             static_cast<int>(s.rng.UniformInt(1, 3)));
          s.next_wp = 0;
          s.heading_deg = BearingDeg(s.pos, s.route.front());
        }
      }

      // Weather slows vessels down.
      double weather_factor = 1.0;
      if (weather_ != nullptr) {
        WeatherSample w = weather_->Sample(s.pos.lon, s.pos.lat, t);
        weather_factor = 1.0 - 0.4 * w.severity;
      }
      double effective_target = s.target_speed_mps * weather_factor;
      // First-order speed relaxation.
      s.speed_mps += (effective_target - s.speed_mps) * std::min(1.0, 0.2 * dt);
      if (s.speed_mps < 0.05) s.speed_mps = 0.0;

      // Advance position.
      if (s.speed_mps > 0.0) {
        s.pos = Destination(s.pos, s.heading_deg, s.speed_mps * dt);
      }
      (void)stationary;

      // --- Emission ---
      Position truth;
      truth.entity_id = s.info.mmsi;
      truth.t = t;
      truth.lon = s.pos.lon;
      truth.lat = s.pos.lat;
      truth.speed_mps = s.speed_mps;
      truth.heading_deg = s.heading_deg;
      out.truth[vi].points.push_back(truth);

      // Stationary vessels report less often.
      bool slow = s.speed_mps < 0.3;
      if (slow && config_.stationary_interval_factor > 1) {
        int64_t tick =
            (t - config_.start_time) / config_.report_interval_ms;
        if (tick % config_.stationary_interval_factor != 0) continue;
      }

      ++out.total_reports_generated;

      // Communication gaps.
      if (s.gap_until >= 0 && t < s.gap_until) {
        ++out.reports_lost_to_gaps;
        continue;
      }
      s.gap_until = -1;
      if (s.rng.Bernoulli(config_.gap_probability)) {
        double len = s.rng.Exponential(
            1.0 / static_cast<double>(config_.gap_duration_mean_ms));
        s.gap_until = t + static_cast<TimeMs>(len);
        ++out.reports_lost_to_gaps;
        continue;
      }

      Position noisy = truth;
      if (config_.position_noise_m > 0) {
        double bearing = s.rng.Uniform(0.0, 360.0);
        double offset = std::fabs(s.rng.Gaussian(0.0, config_.position_noise_m));
        LonLat jittered = Destination(s.pos, bearing, offset);
        noisy.lon = jittered.lon;
        noisy.lat = jittered.lat;
      }
      if (config_.outlier_probability > 0 &&
          s.rng.Bernoulli(config_.outlier_probability)) {
        LonLat off = Destination(s.pos, s.rng.Uniform(0.0, 360.0),
                                 config_.outlier_offset_m);
        noisy.lon = off.lon;
        noisy.lat = off.lat;
      }
      out.stream.push_back(noisy);
    }
  }

  std::stable_sort(out.stream.begin(), out.stream.end(),
                   [](const Position& a, const Position& b) {
                     return a.t < b.t;
                   });
  return out;
}

}  // namespace tcmf::datagen
