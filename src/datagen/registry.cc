#include "datagen/registry.h"

#include "common/strings.h"

namespace tcmf::datagen {

const char* VesselTypeName(VesselType type) {
  switch (type) {
    case VesselType::kFishing:
      return "fishing";
    case VesselType::kCargo:
      return "cargo";
    case VesselType::kTanker:
      return "tanker";
    case VesselType::kFerry:
      return "ferry";
    case VesselType::kPassenger:
      return "passenger";
  }
  return "unknown";
}

const char* AircraftClassName(AircraftClass cls) {
  switch (cls) {
    case AircraftClass::kLight:
      return "light";
    case AircraftClass::kMedium:
      return "medium";
    case AircraftClass::kHeavy:
      return "heavy";
  }
  return "unknown";
}

namespace {
constexpr const char* kFlags[] = {"GR", "ES", "FR", "IT", "DE", "PA", "MT"};
}  // namespace

std::vector<VesselInfo> MakeVesselRegistry(Rng& rng, size_t count,
                                           double fishing_fraction) {
  std::vector<VesselInfo> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    VesselInfo v;
    v.mmsi = 200000000 + i;
    if (rng.Bernoulli(fishing_fraction)) {
      v.type = VesselType::kFishing;
      v.length_m = rng.Uniform(12.0, 40.0);
      v.max_speed_mps = rng.Uniform(4.0, 7.0);
    } else {
      switch (rng.UniformInt(0, 3)) {
        case 0:
          v.type = VesselType::kCargo;
          v.length_m = rng.Uniform(80.0, 300.0);
          v.max_speed_mps = rng.Uniform(6.0, 11.0);
          break;
        case 1:
          v.type = VesselType::kTanker;
          v.length_m = rng.Uniform(100.0, 330.0);
          v.max_speed_mps = rng.Uniform(5.0, 9.0);
          break;
        case 2:
          v.type = VesselType::kFerry;
          v.length_m = rng.Uniform(40.0, 200.0);
          v.max_speed_mps = rng.Uniform(9.0, 14.0);
          break;
        default:
          v.type = VesselType::kPassenger;
          v.length_m = rng.Uniform(50.0, 250.0);
          v.max_speed_mps = rng.Uniform(8.0, 12.0);
          break;
      }
    }
    v.name = StrFormat("%s_%05zu", VesselTypeName(v.type), i);
    v.flag = kFlags[rng.UniformInt(0, 6)];
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<AircraftInfo> MakeAircraftRegistry(Rng& rng, size_t count) {
  std::vector<AircraftInfo> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AircraftInfo a;
    a.icao24 = 0xA00000 + i;
    switch (rng.UniformInt(0, 2)) {
      case 0:
        a.cls = AircraftClass::kLight;
        a.cruise_speed_mps = rng.Uniform(120.0, 170.0);
        a.cruise_alt_m = rng.Uniform(5000.0, 8000.0);
        a.climb_rate_mps = rng.Uniform(6.0, 10.0);
        break;
      case 1:
        a.cls = AircraftClass::kMedium;
        a.cruise_speed_mps = rng.Uniform(200.0, 240.0);
        a.cruise_alt_m = rng.Uniform(9000.0, 11500.0);
        a.climb_rate_mps = rng.Uniform(10.0, 15.0);
        break;
      default:
        a.cls = AircraftClass::kHeavy;
        a.cruise_speed_mps = rng.Uniform(230.0, 260.0);
        a.cruise_alt_m = rng.Uniform(10000.0, 12500.0);
        a.climb_rate_mps = rng.Uniform(8.0, 12.0);
        break;
    }
    a.tail_number = StrFormat("TC-%04zu", i);
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace tcmf::datagen
