#ifndef TCMF_DATAGEN_AREAS_H_
#define TCMF_DATAGEN_AREAS_H_

#include <vector>

#include "common/rng.h"
#include "geom/geometry.h"

namespace tcmf::datagen {

/// Synthetic stand-ins for the paper's contextual ESRI shapefile sources
/// (Table 1): protected/fishing regions (the Natura2000-like catalog used
/// by link discovery), ports, and airspace sectors.

/// Generates `count` irregular convex-ish regions of kind `kind` inside
/// `extent`, with radii drawn from [min_radius_m, max_radius_m].
std::vector<geom::Area> MakeRegions(Rng& rng, const geom::BBox& extent,
                                    size_t count, const std::string& kind,
                                    double min_radius_m, double max_radius_m);

/// Like MakeRegions, but region centers are placed within
/// [min_offset_m, max_offset_m] of randomly chosen anchor points (e.g.
/// port centroids or sampled traffic positions), so the catalog actually
/// interacts with the traffic the simulators produce.
std::vector<geom::Area> MakeRegionsNear(Rng& rng,
                                        const std::vector<geom::LonLat>& anchors,
                                        size_t count, const std::string& kind,
                                        double min_radius_m,
                                        double max_radius_m,
                                        double min_offset_m,
                                        double max_offset_m,
                                        int min_vertices = 6,
                                        int max_vertices = 12);

/// Centroids of a set of areas (convenience for anchoring).
std::vector<geom::LonLat> AreaCentroids(const std::vector<geom::Area>& areas);

/// Generates `count` port areas: small circular footprints whose centers
/// double as route endpoints for the vessel simulator.
std::vector<geom::Area> MakePorts(Rng& rng, const geom::BBox& extent,
                                  size_t count);

/// Partitions `extent` into a cols x rows lattice of rectangular airspace
/// sectors (the ATM sector-configuration context).
std::vector<geom::Area> MakeSectors(const geom::BBox& extent, int cols,
                                    int rows);

}  // namespace tcmf::datagen

#endif  // TCMF_DATAGEN_AREAS_H_
