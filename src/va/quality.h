#ifndef TCMF_VA_QUALITY_H_
#define TCMF_VA_QUALITY_H_

#include <string>
#include <vector>

#include "common/position.h"
#include "common/stats.h"

namespace tcmf::va {

/// Movement-data quality assessment ([5]): a typology of quality problems
/// computed per entity and aggregated — the automated half of the paper's
/// interactive visual reporting framework for data curation.
struct QualityReport {
  size_t entities = 0;
  size_t positions = 0;

  // Temporal properties.
  size_t duplicate_timestamps = 0;
  size_t out_of_order = 0;
  size_t gaps = 0;  ///< intervals above the gap threshold
  RunningStats report_interval_s;

  // Spatial properties.
  size_t speed_spikes = 0;    ///< implied speed above the physical bound
  size_t out_of_extent = 0;
  size_t coordinate_rounding_suspects = 0;  ///< low-precision coordinates

  // Mover-set properties.
  size_t single_report_entities = 0;

  /// Multi-line text rendering.
  std::string Render() const;
};

struct QualityOptions {
  TimeMs gap_threshold_ms = 10 * kMillisPerMinute;
  double max_speed_mps = 350.0;
  double extent_min_lon = -180.0, extent_min_lat = -90.0;
  double extent_max_lon = 180.0, extent_max_lat = 90.0;
};

/// Assesses a batch of per-entity trajectories.
QualityReport AssessQuality(const std::vector<Trajectory>& trajectories,
                            const QualityOptions& options);

}  // namespace tcmf::va

#endif  // TCMF_VA_QUALITY_H_
