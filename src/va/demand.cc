#include "va/demand.h"

#include <algorithm>

namespace tcmf::va {

void SectorDemandMonitor::RecordEntry(uint64_t sector, TimeMs t) {
  ++counts_[sector][BinOf(t)];
  ++total_entries_;
}

size_t SectorDemandMonitor::Demand(uint64_t sector, TimeMs t) const {
  auto sit = counts_.find(sector);
  if (sit == counts_.end()) return 0;
  auto bit = sit->second.find(BinOf(t));
  return bit == sit->second.end() ? 0 : bit->second;
}

std::vector<SectorDemandMonitor::Overload>
SectorDemandMonitor::DetectOverloads(
    const std::unordered_map<uint64_t, size_t>& capacities,
    size_t default_capacity) const {
  std::vector<Overload> out;
  for (const auto& [sector, bins] : counts_) {
    auto cit = capacities.find(sector);
    size_t capacity =
        cit == capacities.end() ? default_capacity : cit->second;
    for (const auto& [bin, demand] : bins) {
      if (demand > capacity) {
        out.push_back({sector, bin * bin_ms_, demand, capacity});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Overload& a, const Overload& b) {
              return a.bin_start < b.bin_start ||
                     (a.bin_start == b.bin_start && a.sector < b.sector);
            });
  return out;
}

double SectorDemandMonitor::ForecastDemand(uint64_t sector, TimeMs t) const {
  auto sit = counts_.find(sector);
  if (sit == counts_.end()) return 0.0;
  const int64_t bins_per_day = (24 * kMillisPerHour) / bin_ms_;
  if (bins_per_day <= 0) return 0.0;
  int64_t target = BinOf(t);
  double sum = 0.0;
  size_t days = 0;
  for (int64_t bin = target - bins_per_day; bin >= 0;
       bin -= bins_per_day) {
    auto bit = sit->second.find(bin);
    sum += bit == sit->second.end() ? 0.0 : static_cast<double>(bit->second);
    ++days;
  }
  return days == 0 ? 0.0 : sum / days;
}

}  // namespace tcmf::va
