#ifndef TCMF_VA_RELEVANCE_H_
#define TCMF_VA_RELEVANCE_H_

#include <functional>
#include <vector>

#include "common/position.h"
#include "prediction/clustering.h"

namespace tcmf::va {

/// A trajectory with per-point relevance flags ([6], Figure 11): the
/// analyst interactively marks which parts matter for the current task
/// (e.g. only the final approach of a flight, not the cruise).
struct FlaggedTrajectory {
  Trajectory traj;
  std::vector<bool> relevant;  ///< parallel to traj.points
};

/// Flags points by a predicate (e.g. altitude below a ceiling, inside a
/// spatial filter, within a time mask).
FlaggedTrajectory FlagByPredicate(
    const Trajectory& traj,
    const std::function<bool(const Position&)>& predicate);

/// Distance between the *relevant parts* of two trajectories: mean of
/// symmetric nearest-neighbour spatial distances over relevant points
/// only (a route-similarity distance that ignores irrelevant elements).
/// Returns +inf when either side has no relevant points.
double RelevantPartDistanceM(const FlaggedTrajectory& a,
                             const FlaggedTrajectory& b);

/// Clusters trajectories by the relevant-part distance via OPTICS.
/// Returns labels (-1 = noise).
std::vector<int> ClusterByRelevantParts(
    const std::vector<FlaggedTrajectory>& trajectories,
    double reachability_threshold_m, size_t min_pts = 3,
    size_t min_cluster_size = 3);

}  // namespace tcmf::va

#endif  // TCMF_VA_RELEVANCE_H_
