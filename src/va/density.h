#ifndef TCMF_VA_DENSITY_H_
#define TCMF_VA_DENSITY_H_

#include <string>
#include <vector>

#include "common/position.h"
#include "geom/geometry.h"

namespace tcmf::va {

/// Spatial density raster: the summary representation behind the map
/// displays of Figures 10 and 11. Counts positions per grid cell;
/// renders to ASCII (for terminal dashboards) or CSV (for plotting).
class DensityMap {
 public:
  DensityMap(const geom::BBox& extent, int cols, int rows);

  void Add(double lon, double lat);
  void AddAll(const std::vector<Position>& positions);

  size_t total() const { return total_; }
  size_t At(int col, int row) const {
    return cells_[static_cast<size_t>(row) * cols_ + col];
  }
  int cols() const { return cols_; }
  int rows() const { return rows_; }

  /// Cellwise difference density (this - other), normalized by each map's
  /// total, rendered as +/- intensity. Maps must have equal shape.
  std::string RenderDiffAscii(const DensityMap& other) const;

  /// ASCII art: ' ' (empty) through '#' (max density), row 0 at top
  /// (north).
  std::string RenderAscii() const;

  /// "col,row,count" lines.
  std::string ToCsv() const;

 private:
  geom::BBox extent_;
  int cols_;
  int rows_;
  std::vector<size_t> cells_;
  size_t total_ = 0;
};

/// Time histogram with per-label stacked counts (Figure 11's colored
/// bars): bins of `bin_ms` from t0; labels are small non-negative ints.
class TimeHistogram {
 public:
  TimeHistogram(TimeMs t0, TimeMs bin_ms, size_t bins, int labels);

  void Add(TimeMs t, int label);

  size_t Count(size_t bin, int label) const;
  size_t BinTotal(size_t bin) const;
  size_t bins() const { return bins_; }
  int labels() const { return labels_; }

  /// One row per bin: "bin_start_hour  total  [per-label counts]".
  std::string Render() const;

 private:
  TimeMs t0_;
  TimeMs bin_ms_;
  size_t bins_;
  int labels_;
  std::vector<size_t> counts_;  ///< bin * labels + label
};

}  // namespace tcmf::va

#endif  // TCMF_VA_DENSITY_H_
