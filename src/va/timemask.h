#ifndef TCMF_VA_TIMEMASK_H_
#define TCMF_VA_TIMEMASK_H_

#include <functional>
#include <vector>

#include "common/position.h"

namespace tcmf::va {

/// A time mask ([7], Figure 10): a set of disjoint time intervals selected
/// by query conditions over arbitrary attributes, used to filter
/// time-referenced objects (events, trajectory segments) and compare what
/// happened inside vs outside the selected times.
class TimeMask {
 public:
  struct Interval {
    TimeMs begin = 0;
    TimeMs end = 0;  ///< exclusive
  };

  TimeMask() = default;
  /// Intervals are normalized: sorted and overlaps merged.
  explicit TimeMask(std::vector<Interval> intervals);

  /// Builds a mask from a binned condition: bins of `bin_ms` covering
  /// [t0, t1); bin b is selected when `condition(b)` is true. Adjacent
  /// selected bins merge.
  static TimeMask FromBinnedCondition(TimeMs t0, TimeMs t1, TimeMs bin_ms,
                                      const std::function<bool(size_t)>& condition);

  /// Mask of +-pad_ms around each event time.
  static TimeMask AroundEvents(const std::vector<TimeMs>& event_times,
                               TimeMs pad_ms);

  bool Contains(TimeMs t) const;

  /// Complement within [t0, t1).
  TimeMask Complement(TimeMs t0, TimeMs t1) const;

  /// Positions of a trajectory falling inside the mask.
  std::vector<Position> Filter(const Trajectory& traj) const;

  const std::vector<Interval>& intervals() const { return intervals_; }
  TimeMs TotalDuration() const;

 private:
  std::vector<Interval> intervals_;  ///< sorted, disjoint
};

}  // namespace tcmf::va

#endif  // TCMF_VA_TIMEMASK_H_
