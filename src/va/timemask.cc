#include "va/timemask.h"

#include <algorithm>

namespace tcmf::va {

TimeMask::TimeMask(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  // Merge overlapping / touching intervals.
  std::vector<Interval> merged;
  for (const Interval& iv : intervals_) {
    if (iv.end <= iv.begin) continue;
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
}

TimeMask TimeMask::FromBinnedCondition(
    TimeMs t0, TimeMs t1, TimeMs bin_ms,
    const std::function<bool(size_t)>& condition) {
  std::vector<Interval> intervals;
  size_t bins = bin_ms > 0 ? static_cast<size_t>((t1 - t0 + bin_ms - 1) / bin_ms) : 0;
  for (size_t b = 0; b < bins; ++b) {
    if (condition(b)) {
      TimeMs begin = t0 + static_cast<TimeMs>(b) * bin_ms;
      intervals.push_back({begin, std::min(begin + bin_ms, t1)});
    }
  }
  return TimeMask(std::move(intervals));
}

TimeMask TimeMask::AroundEvents(const std::vector<TimeMs>& event_times,
                                TimeMs pad_ms) {
  std::vector<Interval> intervals;
  intervals.reserve(event_times.size());
  for (TimeMs t : event_times) {
    intervals.push_back({t - pad_ms, t + pad_ms});
  }
  return TimeMask(std::move(intervals));
}

bool TimeMask::Contains(TimeMs t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimeMs value, const Interval& iv) { return value < iv.begin; });
  if (it == intervals_.begin()) return false;
  --it;
  return t >= it->begin && t < it->end;
}

TimeMask TimeMask::Complement(TimeMs t0, TimeMs t1) const {
  std::vector<Interval> out;
  TimeMs cursor = t0;
  for (const Interval& iv : intervals_) {
    if (iv.end <= t0) continue;
    if (iv.begin >= t1) break;
    if (iv.begin > cursor) out.push_back({cursor, std::min(iv.begin, t1)});
    cursor = std::max(cursor, iv.end);
  }
  if (cursor < t1) out.push_back({cursor, t1});
  return TimeMask(std::move(out));
}

std::vector<Position> TimeMask::Filter(const Trajectory& traj) const {
  std::vector<Position> out;
  for (const Position& p : traj.points) {
    if (Contains(p.t)) out.push_back(p);
  }
  return out;
}

TimeMs TimeMask::TotalDuration() const {
  TimeMs total = 0;
  for (const Interval& iv : intervals_) total += iv.end - iv.begin;
  return total;
}

}  // namespace tcmf::va
