#include "va/relevance.h"

#include <algorithm>
#include <limits>

#include "geom/geo.h"

namespace tcmf::va {

FlaggedTrajectory FlagByPredicate(
    const Trajectory& traj,
    const std::function<bool(const Position&)>& predicate) {
  FlaggedTrajectory out;
  out.traj = traj;
  out.relevant.reserve(traj.points.size());
  for (const Position& p : traj.points) out.relevant.push_back(predicate(p));
  return out;
}

namespace {

std::vector<geom::LonLat> RelevantPoints(const FlaggedTrajectory& t,
                                         size_t stride = 1) {
  std::vector<geom::LonLat> out;
  for (size_t i = 0; i < t.traj.points.size(); i += stride) {
    if (i < t.relevant.size() && t.relevant[i]) {
      out.push_back({t.traj.points[i].lon, t.traj.points[i].lat});
    }
  }
  return out;
}

double DirectedMeanNn(const std::vector<geom::LonLat>& from,
                      const std::vector<geom::LonLat>& to) {
  double sum = 0.0;
  for (const geom::LonLat& p : from) {
    double best = std::numeric_limits<double>::infinity();
    for (const geom::LonLat& q : to) {
      best = std::min(best, geom::HaversineM(p, q));
    }
    sum += best;
  }
  return sum / from.size();
}

}  // namespace

double RelevantPartDistanceM(const FlaggedTrajectory& a,
                             const FlaggedTrajectory& b) {
  // Subsample long trajectories to bound the O(n*m) nearest-neighbour
  // cost; route-level similarity is insensitive to this.
  auto pick_stride = [](const FlaggedTrajectory& t) {
    size_t n = t.traj.points.size();
    return std::max<size_t>(1, n / 150);
  };
  std::vector<geom::LonLat> pa = RelevantPoints(a, pick_stride(a));
  std::vector<geom::LonLat> pb = RelevantPoints(b, pick_stride(b));
  if (pa.empty() || pb.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return (DirectedMeanNn(pa, pb) + DirectedMeanNn(pb, pa)) / 2.0;
}

std::vector<int> ClusterByRelevantParts(
    const std::vector<FlaggedTrajectory>& trajectories,
    double reachability_threshold_m, size_t min_pts,
    size_t min_cluster_size) {
  prediction::DistanceFn dist = [&](size_t i, size_t j) {
    return RelevantPartDistanceM(trajectories[i], trajectories[j]);
  };
  prediction::OpticsOptions options;
  options.eps = std::numeric_limits<double>::infinity();
  options.min_pts = min_pts;
  prediction::OpticsResult result =
      prediction::RunOptics(trajectories.size(), dist, options);
  return prediction::ExtractClusters(result, reachability_threshold_m,
                                     min_cluster_size);
}

}  // namespace tcmf::va
