#ifndef TCMF_VA_DEMAND_H_
#define TCMF_VA_DEMAND_H_

#include <unordered_map>
#include <vector>

#include "common/position.h"

namespace tcmf::va {

/// Demand/capacity monitoring for airspace sectors (Section 2: "maintaining
/// the balance between the demand ... and the capacity is one of the main
/// challenges"; "the number of published regulations could be more
/// accurately forecasted"). Counts sector entries per time bin, flags
/// overloads against declared capacities (the situations that trigger ATM
/// regulations), and forecasts demand with a seasonal-naive model over the
/// daily cycle.
class SectorDemandMonitor {
 public:
  /// `bin_ms` is the demand-counting period (e.g. 1 hour).
  explicit SectorDemandMonitor(TimeMs bin_ms) : bin_ms_(bin_ms) {}

  /// Records one sector entry at time t.
  void RecordEntry(uint64_t sector, TimeMs t);

  /// Demand (entries) of a sector in the bin containing t.
  size_t Demand(uint64_t sector, TimeMs t) const;

  /// An overload: demand above the declared capacity in one bin —
  /// the condition under which a regulation would be published.
  struct Overload {
    uint64_t sector = 0;
    TimeMs bin_start = 0;
    size_t demand = 0;
    size_t capacity = 0;
  };

  /// All overloads against per-sector capacities (sectors missing from
  /// the map use `default_capacity`).
  std::vector<Overload> DetectOverloads(
      const std::unordered_map<uint64_t, size_t>& capacities,
      size_t default_capacity) const;

  /// Seasonal-naive demand forecast for the bin containing `t`: the mean
  /// demand of the same time-of-day bin over the preceding days. Returns
  /// 0 when no history exists.
  double ForecastDemand(uint64_t sector, TimeMs t) const;

  size_t total_entries() const { return total_entries_; }

 private:
  int64_t BinOf(TimeMs t) const { return t / bin_ms_; }

  TimeMs bin_ms_;
  /// sector -> bin index -> count.
  std::unordered_map<uint64_t, std::unordered_map<int64_t, size_t>> counts_;
  size_t total_entries_ = 0;
};

}  // namespace tcmf::va

#endif  // TCMF_VA_DEMAND_H_
