#include "va/quality.h"

#include <cmath>

#include "common/strings.h"
#include "geom/geo.h"

namespace tcmf::va {

namespace {

/// A coordinate looks rounded when it sits on a 0.01-degree lattice —
/// the telltale of truncated-precision feeds in [5]'s typology.
bool LooksRounded(double v) {
  double scaled = v * 100.0;
  return std::fabs(scaled - std::round(scaled)) < 1e-9;
}

}  // namespace

QualityReport AssessQuality(const std::vector<Trajectory>& trajectories,
                            const QualityOptions& options) {
  QualityReport report;
  report.entities = trajectories.size();
  for (const Trajectory& traj : trajectories) {
    report.positions += traj.points.size();
    if (traj.points.size() <= 1) {
      ++report.single_report_entities;
      continue;
    }
    for (size_t i = 1; i < traj.points.size(); ++i) {
      const Position& prev = traj.points[i - 1];
      const Position& cur = traj.points[i];
      if (cur.t == prev.t) {
        ++report.duplicate_timestamps;
        continue;
      }
      if (cur.t < prev.t) {
        ++report.out_of_order;
        continue;
      }
      double dt = static_cast<double>(cur.t - prev.t) / kMillisPerSecond;
      report.report_interval_s.Add(dt);
      if (cur.t - prev.t >= options.gap_threshold_ms) ++report.gaps;
      double implied =
          geom::HaversineM(prev.lon, prev.lat, cur.lon, cur.lat) / dt;
      if (implied > options.max_speed_mps) ++report.speed_spikes;
    }
    for (const Position& p : traj.points) {
      if (p.lon < options.extent_min_lon || p.lon > options.extent_max_lon ||
          p.lat < options.extent_min_lat || p.lat > options.extent_max_lat) {
        ++report.out_of_extent;
      }
      if (LooksRounded(p.lon) && LooksRounded(p.lat)) {
        ++report.coordinate_rounding_suspects;
      }
    }
  }
  return report;
}

std::string QualityReport::Render() const {
  std::string out;
  out += StrFormat("movement data quality report\n");
  out += StrFormat("  entities: %zu, positions: %zu\n", entities, positions);
  out += StrFormat("  temporal: %zu duplicate ts, %zu out-of-order, %zu gaps\n",
                   duplicate_timestamps, out_of_order, gaps);
  out += StrFormat("  report interval: mean=%.1fs median=%.1fs max=%.1fs\n",
                   report_interval_s.mean(), report_interval_s.median(),
                   report_interval_s.max());
  out += StrFormat("  spatial: %zu speed spikes, %zu out of extent, "
                   "%zu rounding suspects\n",
                   speed_spikes, out_of_extent,
                   coordinate_rounding_suspects);
  out += StrFormat("  mover set: %zu single-report entities\n",
                   single_report_entities);
  return out;
}

}  // namespace tcmf::va
