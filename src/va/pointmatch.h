#ifndef TCMF_VA_POINTMATCH_H_
#define TCMF_VA_POINTMATCH_H_

#include <vector>

#include "common/position.h"
#include "common/stats.h"

namespace tcmf::va {

/// Point-matching comparison of a predicted trajectory against the actual
/// one (Figure 12): each predicted point matches when an actual point
/// exists within the space-time tolerance. The per-pair matched proportion
/// feeds a histogram across a whole prediction run; low-proportion pairs
/// are the outliers the analyst drills into.
struct PointMatchOptions {
  double max_distance_m = 2000.0;
  TimeMs max_time_diff_ms = 30 * kMillisPerSecond;
};

struct PointMatchResult {
  size_t predicted_points = 0;
  size_t matched_points = 0;
  double matched_proportion = 0.0;
  double mean_matched_distance_m = 0.0;
};

/// Matches `predicted` against `actual` (both time-ordered).
PointMatchResult MatchTrajectories(const Trajectory& predicted,
                                   const Trajectory& actual,
                                   const PointMatchOptions& options);

/// Batch evaluation over pairs: returns per-pair results and a 10-bucket
/// histogram of matched proportions over [0, 1].
struct BatchMatchReport {
  std::vector<PointMatchResult> pairs;
  Histogram proportion_histogram{0.0, 1.0, 10};
  /// Indexes of pairs whose proportion is below `outlier_threshold`.
  std::vector<size_t> outliers;
};

BatchMatchReport MatchBatch(const std::vector<Trajectory>& predicted,
                            const std::vector<Trajectory>& actual,
                            const PointMatchOptions& options,
                            double outlier_threshold = 0.5);

}  // namespace tcmf::va

#endif  // TCMF_VA_POINTMATCH_H_
