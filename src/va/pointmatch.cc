#include "va/pointmatch.h"

#include <algorithm>

#include "geom/geo.h"

namespace tcmf::va {

PointMatchResult MatchTrajectories(const Trajectory& predicted,
                                   const Trajectory& actual,
                                   const PointMatchOptions& options) {
  PointMatchResult out;
  out.predicted_points = predicted.points.size();
  if (predicted.points.empty() || actual.points.empty()) return out;

  double matched_distance_sum = 0.0;
  size_t lo = 0;  // sliding lower bound into `actual` (both time-ordered)
  for (const Position& p : predicted.points) {
    while (lo < actual.points.size() &&
           actual.points[lo].t < p.t - options.max_time_diff_ms) {
      ++lo;
    }
    double best = -1.0;
    for (size_t i = lo; i < actual.points.size(); ++i) {
      const Position& a = actual.points[i];
      if (a.t > p.t + options.max_time_diff_ms) break;
      double d = geom::Distance3dM(p, a);
      if (best < 0 || d < best) best = d;
    }
    if (best >= 0 && best <= options.max_distance_m) {
      ++out.matched_points;
      matched_distance_sum += best;
    }
  }
  out.matched_proportion =
      static_cast<double>(out.matched_points) / out.predicted_points;
  if (out.matched_points > 0) {
    out.mean_matched_distance_m = matched_distance_sum / out.matched_points;
  }
  return out;
}

BatchMatchReport MatchBatch(const std::vector<Trajectory>& predicted,
                            const std::vector<Trajectory>& actual,
                            const PointMatchOptions& options,
                            double outlier_threshold) {
  BatchMatchReport report;
  size_t n = std::min(predicted.size(), actual.size());
  report.pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PointMatchResult r = MatchTrajectories(predicted[i], actual[i], options);
    report.proportion_histogram.Add(r.matched_proportion);
    if (r.matched_proportion < outlier_threshold) {
      report.outliers.push_back(i);
    }
    report.pairs.push_back(r);
  }
  return report;
}

}  // namespace tcmf::va
