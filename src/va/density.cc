#include "va/density.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace tcmf::va {

DensityMap::DensityMap(const geom::BBox& extent, int cols, int rows)
    : extent_(extent),
      cols_(std::max(1, cols)),
      rows_(std::max(1, rows)),
      cells_(static_cast<size_t>(cols_) * rows_, 0) {}

void DensityMap::Add(double lon, double lat) {
  if (!extent_.Contains(lon, lat)) return;
  int c = std::min<int>(
      cols_ - 1,
      static_cast<int>((lon - extent_.min_lon) / extent_.width() * cols_));
  int r = std::min<int>(
      rows_ - 1,
      static_cast<int>((lat - extent_.min_lat) / extent_.height() * rows_));
  ++cells_[static_cast<size_t>(r) * cols_ + c];
  ++total_;
}

void DensityMap::AddAll(const std::vector<Position>& positions) {
  for (const Position& p : positions) Add(p.lon, p.lat);
}

std::string DensityMap::RenderAscii() const {
  static const char kRamp[] = " .:-=+*%@#";
  size_t max_count = 0;
  for (size_t c : cells_) max_count = std::max(max_count, c);
  std::string out;
  out.reserve(static_cast<size_t>(rows_) * (cols_ + 1));
  for (int r = rows_ - 1; r >= 0; --r) {  // north at top
    for (int c = 0; c < cols_; ++c) {
      size_t count = At(c, r);
      int level = 0;
      if (max_count > 0 && count > 0) {
        level = 1 + static_cast<int>(8.0 * count / max_count);
        level = std::min(level, 9);
      }
      out += kRamp[level];
    }
    out += '\n';
  }
  return out;
}

std::string DensityMap::RenderDiffAscii(const DensityMap& other) const {
  std::string out;
  if (other.cols_ != cols_ || other.rows_ != rows_) return out;
  double self_total = std::max<size_t>(1, total_);
  double other_total = std::max<size_t>(1, other.total_);
  for (int r = rows_ - 1; r >= 0; --r) {
    for (int c = 0; c < cols_; ++c) {
      double d = At(c, r) / self_total - other.At(c, r) / other_total;
      char ch = '.';
      if (d > 0.002) ch = '+';
      else if (d > 0.0005) ch = 'p';
      else if (d < -0.002) ch = '-';
      else if (d < -0.0005) ch = 'm';
      else if (At(c, r) + other.At(c, r) == 0) ch = ' ';
      out += ch;
    }
    out += '\n';
  }
  return out;
}

std::string DensityMap::ToCsv() const {
  std::string out = "col,row,count\n";
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (At(c, r) > 0) {
        out += StrFormat("%d,%d,%zu\n", c, r, At(c, r));
      }
    }
  }
  return out;
}

TimeHistogram::TimeHistogram(TimeMs t0, TimeMs bin_ms, size_t bins,
                             int labels)
    : t0_(t0),
      bin_ms_(bin_ms <= 0 ? 1 : bin_ms),
      bins_(bins),
      labels_(std::max(1, labels)),
      counts_(bins * static_cast<size_t>(labels_), 0) {}

void TimeHistogram::Add(TimeMs t, int label) {
  if (t < t0_) return;
  size_t bin = static_cast<size_t>((t - t0_) / bin_ms_);
  if (bin >= bins_) return;
  if (label < 0 || label >= labels_) label = labels_ - 1;
  ++counts_[bin * labels_ + label];
}

size_t TimeHistogram::Count(size_t bin, int label) const {
  return counts_[bin * labels_ + label];
}

size_t TimeHistogram::BinTotal(size_t bin) const {
  size_t total = 0;
  for (int l = 0; l < labels_; ++l) total += Count(bin, l);
  return total;
}

std::string TimeHistogram::Render() const {
  std::string out;
  for (size_t b = 0; b < bins_; ++b) {
    double hour =
        static_cast<double>(t0_ + static_cast<TimeMs>(b) * bin_ms_) /
        kMillisPerHour;
    out += StrFormat("%7.1fh %5zu |", hour, BinTotal(b));
    for (int l = 0; l < labels_; ++l) {
      out += StrFormat(" %4zu", Count(b, l));
    }
    out += '\n';
  }
  return out;
}

}  // namespace tcmf::va
