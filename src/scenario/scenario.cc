#include "scenario/scenario.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <utility>

#include "common/status.h"
#include "common/strings.h"
#include "mlog/partitioned.h"
#include "stream/metrics.h"
#include "stream/pipeline.h"
#include "stream/sharded.h"

namespace tcmf::scenario {

void LatencyTimeline::Record(TimeMs since_start_ms, uint64_t latency_us) {
  if (since_start_ms < 0) since_start_ms = 0;
  const size_t idx = static_cast<size_t>(since_start_ms / window_ms_);
  std::lock_guard<std::mutex> lock(mu_);
  if (max_us_.size() <= idx) max_us_.resize(idx + 1, 0);
  max_us_[idx] = std::max(max_us_[idx], latency_us);
}

void LatencyTimeline::Merge(const LatencyTimeline& other) {
  std::scoped_lock lock(mu_, other.mu_);
  if (max_us_.size() < other.max_us_.size()) {
    max_us_.resize(other.max_us_.size(), 0);
  }
  for (size_t i = 0; i < other.max_us_.size(); ++i) {
    max_us_[i] = std::max(max_us_[i], other.max_us_[i]);
  }
}

TimeMs LatencyTimeline::LastBreachEndMs(TimeMs from_ms,
                                        uint64_t threshold_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t first =
      static_cast<size_t>(std::max<TimeMs>(0, from_ms) / window_ms_);
  TimeMs end = -1;
  for (size_t i = first; i < max_us_.size(); ++i) {
    if (max_us_[i] > threshold_us) {
      end = static_cast<TimeMs>(i + 1) * window_ms_;
    }
  }
  return end;
}

std::string ScenarioReport::Json() const {
  std::string out = StrFormat(
      "{\"arrival\":\"%s\",\"offered_rate_per_s\":%.1f,\"partitions\":%zu,"
      "\"budget_ms\":%lld,"
      "\"produced\":%llu,\"appended\":%llu,\"consumed\":%llu,"
      "\"append_errors\":%llu,\"gaps\":%llu,\"dups\":%llu,"
      "\"restarts\":%llu,\"sync_stalls\":%llu,"
      "\"run_s\":%.3f,\"achieved_rate_per_s\":%.1f,"
      "\"mean_ms\":%.3f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"p999_ms\":%.3f,"
      "\"max_ms\":%.3f,\"p99_within_budget\":%s,"
      "\"disruption_ms\":%lld,\"recovery_ms\":%lld,\"error\":\"%s\"",
      arrival_model.c_str(), offered_rate_per_s, partitions,
      static_cast<long long>(budget_ms),
      static_cast<unsigned long long>(produced),
      static_cast<unsigned long long>(appended),
      static_cast<unsigned long long>(consumed),
      static_cast<unsigned long long>(append_errors),
      static_cast<unsigned long long>(gaps),
      static_cast<unsigned long long>(dups),
      static_cast<unsigned long long>(restarts),
      static_cast<unsigned long long>(sync_stalls), run_s,
      achieved_rate_per_s, mean_ms, p50_ms, p99_ms, p999_ms, max_ms,
      p99_within_budget ? "true" : "false",
      static_cast<long long>(disruption_ms),
      static_cast<long long>(recovery_ms),
      stream::JsonEscape(error).c_str());
  out += ",\"faults\":[";
  for (size_t i = 0; i < faults.size(); ++i) {
    if (i) out += ',';
    out += faults[i].Json();
  }
  out += "],\"pipeline\":";
  out += pipeline_json.empty() ? "null" : pipeline_json;
  out += '}';
  return out;
}

namespace {

/// Per-shard measurement state. The histogram/timeline/counters are
/// written by the shard's sink thread and merged after the run; the
/// cursor block is touched only by the shard's tail (source) thread —
/// it lives here, not in the tail lambda, because Flow copies its
/// callables.
struct ShardState {
  ShardState(size_t shard_index, size_t partitions, TimeMs window_ms)
      : shard(shard_index), timeline(window_ms) {
    next_expected.assign(partitions, 0);
  }

  const size_t shard;
  LatencyHistogram hist;
  LatencyTimeline timeline;
  std::atomic<uint64_t> consumed{0};
  std::atomic<uint64_t> gaps{0};
  std::atomic<uint64_t> dups{0};
  std::atomic<uint64_t> restarts{0};

  // Tail-thread-local.
  std::unique_ptr<mlog::GroupCursor> cursor;
  uint64_t seen_epoch = 0;
  std::vector<uint64_t> next_expected;  // per-partition next offset
};

}  // namespace

ScenarioReport RunScenario(const ScenarioOptions& options,
                           const FaultPlan& plan, Clock* clock) {
  namespace fs = std::filesystem;
  Clock* clk = clock ? clock : RealClock();

  ScenarioReport report;
  report.arrival_model = ArrivalModelName(options.arrival.model);
  report.offered_rate_per_s = options.arrival.MeanRatePerS();
  report.partitions = options.partitions;
  report.budget_ms = options.latency_budget_ms;

  std::mutex err_mu;
  const auto record_error = [&](const Status& s) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (report.error.empty()) report.error = s.message();
  };

  std::error_code ec;
  fs::remove_all(options.dir, ec);
  mlog::PartitionedLogOptions topic_options;
  topic_options.dir = options.dir;
  topic_options.partitions = options.partitions;
  topic_options.log.segment_bytes = options.segment_bytes;
  topic_options.log.fsync_policy = options.fsync_policy;
  auto topic_or = mlog::PartitionedLog::Open(topic_options);
  if (!topic_or.ok()) {
    record_error(topic_or.status());
    return report;
  }
  std::unique_ptr<mlog::PartitionedLog> topic = std::move(topic_or).value();

  const std::vector<FleetEvent> events = MakeFleet(options.fleet);
  if (events.empty()) {
    record_error(Status::FailedPrecondition("scenario: fleet mix is empty"));
    return report;
  }

  const size_t n_shards = std::max<size_t>(1, options.partitions);
  std::vector<std::unique_ptr<ShardState>> shards;
  shards.reserve(n_shards);
  for (size_t i = 0; i < n_shards; ++i) {
    shards.push_back(std::make_unique<ShardState>(i, options.partitions,
                                                  options.timeline_window_ms));
  }

  std::atomic<bool> producer_done{false};
  std::atomic<uint64_t> append_errors{0};
  std::atomic<int64_t> slow_sink_us{0};
  std::atomic<uint64_t> key_rotation{0};
  std::vector<std::atomic<uint64_t>> restart_epochs(options.partitions);

  const int64_t start_us = clk->NowUs();

  // Consumers: one shard per partition, each a consumer-group member
  // tailing its assigned partition and stamping end-to-end latency at
  // the sink.
  stream::ShardedPipeline sp(
      n_shards,
      {.name = "",
       .batch = stream::BatchPolicy::Batched(options.consumer_batch,
                                             /*linger_ms=*/1)});
  sp.Build([&](stream::Pipeline* p, size_t shard) {
    ShardState* st = shards[shard].get();

    auto tail = [&, st](std::vector<mlog::GroupRecord>* out,
                        size_t max_n) -> size_t {
      for (;;) {
        const uint64_t epoch =
            restart_epochs[st->shard].load(std::memory_order_acquire);
        if (!st->cursor || epoch != st->seen_epoch) {
          const bool is_restart = st->cursor != nullptr;
          st->cursor.reset();  // close first: release the old cursors
          auto cursor_or =
              topic->JoinGroup(options.group, st->shard, n_shards);
          if (!cursor_or.ok()) {
            record_error(cursor_or.status());
            return 0;
          }
          st->cursor = std::move(cursor_or).value();
          st->seen_epoch = epoch;
          if (is_restart) st->restarts.fetch_add(1, std::memory_order_relaxed);
        }
        const size_t n = st->cursor->NextBatch(out, max_n);
        if (n > 0) {
          // Resume verification: offsets per partition must be dense.
          for (size_t i = out->size() - n; i < out->size(); ++i) {
            const mlog::GroupRecord& gr = (*out)[i];
            uint64_t& expect = st->next_expected[gr.partition];
            if (gr.offset < expect) {
              st->dups.fetch_add(1, std::memory_order_relaxed);
            } else if (gr.offset > expect) {
              st->gaps.fetch_add(gr.offset - expect,
                                 std::memory_order_relaxed);
            }
            expect = std::max(expect, gr.offset + 1);
          }
          return n;
        }
        if (!st->cursor->status().ok()) {
          record_error(st->cursor->status());
          return 0;
        }
        if (producer_done.load(std::memory_order_acquire)) {
          bool caught_up = true;
          for (size_t part : st->cursor->assignment()) {
            if (st->cursor->committed(part) <
                topic->partition(part)->next_offset()) {
              caught_up = false;
              break;
            }
          }
          if (caught_up) {
            // A restart racing the end still owes a rejoin (it would
            // prove resume-at-watermark); loop once more in that case.
            if (restart_epochs[st->shard].load(std::memory_order_acquire) ==
                st->seen_epoch) {
              return 0;
            }
            continue;
          }
        }
        clk->SleepForUs(options.tail_poll_us);
      }
    };

    auto sink = [&, st](const mlog::GroupRecord& gr) {
      const int64_t now_us = clk->NowUs();
      const int64_t sched_us = gr.record.GetInt("sched_us").value_or(now_us);
      const int64_t lat_us = std::max<int64_t>(0, now_us - sched_us);
      st->hist.RecordUs(lat_us);
      st->timeline.Record((now_us - start_us) / 1000,
                          static_cast<uint64_t>(lat_us));
      st->consumed.fetch_add(1, std::memory_order_relaxed);
      const int64_t slow = slow_sink_us.load(std::memory_order_relaxed);
      if (slow > 0) clk->SleepForUs(slow);
    };

    stream::Flow<mlog::GroupRecord>::FromBatchGenerator(
        p, tail, {.name = "scenario.tail", .batch = sp.options().batch})
        .Sink(sink, {.name = "scenario.sink"});
  });

  // Producer: open-loop. Each record's latency clock starts at its
  // *scheduled* arrival instant, not the actual append instant, so time
  // the producer loses to a stalled append counts against the SLO
  // (coordinated omission would otherwise hide exactly the faults this
  // harness exists to measure).
  std::thread producer([&] {
    ArrivalSchedule schedule(options.arrival, options.seed);
    const TimeMs span = std::max<TimeMs>(1, options.fleet.duration_ms);
    for (size_t i = 0; i < options.total_records; ++i) {
      const int64_t deadline_us = start_us + schedule.NextArrivalUs();
      clk->SleepUntilUs(deadline_us);
      const FleetEvent& ev = events[i % events.size()];
      stream::Record rec = ev.record;
      // Cyclic replay: later laps shift simulated event time forward a
      // full span, keeping event_time monotone-ish across laps.
      const TimeMs wrap = static_cast<TimeMs>(i / events.size()) * span;
      rec.set_event_time(rec.event_time() + wrap);
      rec.Set("sched_us", deadline_us);
      const uint64_t key =
          ev.key + key_rotation.load(std::memory_order_relaxed);
      auto appended = topic->AppendKeyed(key, rec);
      if (!appended.ok()) {
        append_errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    producer_done.store(true, std::memory_order_release);
  });

  // Chaos: the fault plan replays on its own thread against the live
  // topic/consumer knobs.
  std::vector<FaultOutcome> outcomes;
  std::thread chaos;
  if (!plan.empty()) {
    chaos = std::thread([&] {
      ChaosTargets targets;
      targets.topic = topic.get();
      targets.slow_sink_us = &slow_sink_us;
      targets.key_rotation = &key_rotation;
      targets.restart_epochs = restart_epochs.data();
      targets.partition_count = options.partitions;
      FaultInjector injector(targets, clk);
      outcomes = injector.Run(plan, start_us);
    });
  }

  producer.join();
  if (chaos.joinable()) chaos.join();
  sp.Run();
  const int64_t end_us = clk->NowUs();

  // Merge shards and fill the report.
  LatencyHistogram hist;
  LatencyTimeline timeline(options.timeline_window_ms);
  for (const auto& st : shards) {
    hist.Merge(st->hist);
    timeline.Merge(st->timeline);
    report.consumed += st->consumed.load(std::memory_order_relaxed);
    report.gaps += st->gaps.load(std::memory_order_relaxed);
    report.dups += st->dups.load(std::memory_order_relaxed);
    report.restarts += st->restarts.load(std::memory_order_relaxed);
  }
  report.produced = options.total_records;
  report.append_errors = append_errors.load(std::memory_order_relaxed);
  report.appended = report.produced - report.append_errors;
  for (size_t p = 0; p < options.partitions; ++p) {
    report.sync_stalls += topic->partition(p)->metrics().sync_stalls;
  }
  report.run_s = static_cast<double>(end_us - start_us) / 1e6;
  report.achieved_rate_per_s =
      report.run_s > 0 ? report.consumed / report.run_s : 0;
  report.mean_ms = hist.MeanUs() / 1000.0;
  report.p50_ms = hist.ValueAtQuantileUs(0.50) / 1000.0;
  report.p99_ms = hist.ValueAtQuantileUs(0.99) / 1000.0;
  report.p999_ms = hist.ValueAtQuantileUs(0.999) / 1000.0;
  report.max_ms = hist.max_us() / 1000.0;
  report.p99_within_budget =
      report.p99_ms <= static_cast<double>(options.latency_budget_ms);

  report.faults = outcomes;
  const uint64_t threshold_us =
      static_cast<uint64_t>(options.latency_budget_ms) * 1000;
  for (const FaultOutcome& f : report.faults) {
    const TimeMs breach_end =
        timeline.LastBreachEndMs(f.applied_at_ms, threshold_us);
    if (breach_end < 0) continue;  // SLO held through this fault
    report.disruption_ms =
        std::max(report.disruption_ms, breach_end - f.applied_at_ms);
    report.recovery_ms =
        std::max(report.recovery_ms,
                 std::max<TimeMs>(0, breach_end - f.cleared_at_ms));
  }

  report.pipeline_json = sp.ReportJson();
  return report;
}

}  // namespace tcmf::scenario
