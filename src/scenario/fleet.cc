#include "scenario/fleet.h"

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "datagen/flight.h"
#include "datagen/vessel.h"
#include "datagen/weather.h"

namespace tcmf::scenario {

namespace {

FleetEvent PositionEvent(const Position& p, const char* source) {
  FleetEvent ev;
  ev.key = p.entity_id;
  ev.record = stream::PositionToRecord(p);
  ev.record.Set("source", std::string(source));
  return ev;
}

}  // namespace

std::vector<FleetEvent> MakeFleet(const FleetMix& mix) {
  std::vector<FleetEvent> events;
  Rng rng(mix.seed);
  datagen::WeatherField weather(rng, {-10.0, 34.0, 10.0, 45.0});

  if (mix.vessel_count > 0) {
    datagen::VesselSimConfig cfg;
    cfg.vessel_count = mix.vessel_count;
    cfg.duration_ms = mix.duration_ms;
    cfg.seed = mix.seed + 1;
    datagen::VesselSimulator sim(cfg, /*ports=*/{}, /*fishing_areas=*/{},
                                 &weather);
    datagen::VesselSimOutput out = sim.Run();
    events.reserve(out.stream.size());
    for (const Position& p : out.stream) {
      events.push_back(PositionEvent(p, "ais"));
    }
  }

  if (mix.flight_count > 0) {
    datagen::FlightSimConfig cfg;
    cfg.flight_count = mix.flight_count;
    cfg.departure_spread_ms = mix.duration_ms;
    cfg.seed = mix.seed + 2;
    datagen::FlightSimulator sim(cfg, datagen::DefaultOriginAirport(),
                                 datagen::DefaultDestinationAirport(),
                                 &weather);
    for (const datagen::SimulatedFlight& f : sim.Run()) {
      for (const Position& p : f.actual.points) {
        // Cap at the mix span so cyclic replay keeps a bounded window.
        if (p.t > mix.duration_ms) break;
        FleetEvent ev = PositionEvent(p, "adsb");
        if (ev.key == 0) ev.key = f.plan.icao24;
        events.push_back(std::move(ev));
      }
    }
  }

  if (mix.weather_cols > 0 && mix.weather_rows > 0 &&
      mix.weather_interval_ms > 0) {
    for (TimeMs t = 0; t <= mix.duration_ms; t += mix.weather_interval_ms) {
      std::vector<stream::Record> grid =
          weather.ForecastGrid(t, mix.weather_cols, mix.weather_rows);
      for (size_t i = 0; i < grid.size(); ++i) {
        FleetEvent ev;
        // Weather cells get synthetic keys far above real entity ids so
        // they spread over partitions without colliding with fleets.
        ev.key = 0x57454154u + i;  // 'WEAT' + cell index
        ev.record = std::move(grid[i]);
        ev.record.Set("source", std::string("weather"));
        events.push_back(std::move(ev));
      }
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const FleetEvent& a, const FleetEvent& b) {
                     return a.record.event_time() < b.record.event_time();
                   });
  return events;
}

}  // namespace tcmf::scenario
