#ifndef TCMF_SCENARIO_SCENARIO_H_
#define TCMF_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/position.h"
#include "mlog/log.h"
#include "scenario/arrival.h"
#include "scenario/chaos.h"
#include "scenario/clock.h"
#include "scenario/fleet.h"
#include "scenario/histogram.h"

namespace tcmf::scenario {

/// Per-window worst-case latency over scenario time: the coarse signal
/// recovery time is measured from. Each Record() folds one observation
/// into its window's running max; windows are merged across shards by
/// elementwise max. A fault's recovery instant is the end of the last
/// window (at or after the fault) whose max still breached the SLO.
class LatencyTimeline {
 public:
  explicit LatencyTimeline(TimeMs window_ms)
      : window_ms_(window_ms < 1 ? 1 : window_ms) {}

  void Record(TimeMs since_start_ms, uint64_t latency_us);
  void Merge(const LatencyTimeline& other);

  /// End (ms since scenario start) of the last window starting at or
  /// after `from_ms` whose max latency exceeded `threshold_us`; -1 when
  /// the SLO never broke in that range.
  TimeMs LastBreachEndMs(TimeMs from_ms, uint64_t threshold_us) const;

  TimeMs window_ms() const { return window_ms_; }

 private:
  TimeMs window_ms_;
  mutable std::mutex mu_;
  std::vector<uint64_t> max_us_;  // index = window, value = max latency
};

/// Configuration of one open-loop scenario run.
struct ScenarioOptions {
  /// Topic directory — wiped and recreated by RunScenario (each run
  /// measures a fresh log, not a prior run's leftovers).
  std::string dir = "scenario_topic_logs";
  size_t partitions = 4;
  ArrivalCurve arrival = ArrivalCurve::Constant(2000.0);
  /// Records to inject; the fleet feed is replayed cyclically if
  /// shorter.
  size_t total_records = 20000;
  FleetMix fleet{};
  /// End-to-end event-time latency SLO the report grades against.
  TimeMs latency_budget_ms = 50;
  /// Timeline resolution for recovery measurement.
  TimeMs timeline_window_ms = 50;
  mlog::FsyncPolicy fsync_policy = mlog::FsyncPolicy::kNever;
  size_t segment_bytes = 16u << 20;
  /// Consumer-side transport batch (the tail source's pull size).
  size_t consumer_batch = 256;
  /// Tail-poll interval when a shard is caught up, microseconds.
  int64_t tail_poll_us = 500;
  uint64_t seed = 17;
  std::string group = "scenario";
};

/// Everything one run measured. Latencies are end-to-end event-time
/// path: (sink wall time) - (scheduled arrival wall time), so producer
/// stalls count against the SLO (no coordinated omission: the schedule,
/// not the producer's progress, defines when a record *should* have
/// entered).
struct ScenarioReport {
  // Offered load.
  std::string arrival_model;
  double offered_rate_per_s = 0;
  size_t partitions = 0;
  TimeMs budget_ms = 0;

  // Volumes. appended == produced - append_errors; delivery is complete
  // when consumed == appended with gaps == dups == 0.
  uint64_t produced = 0;
  uint64_t appended = 0;
  uint64_t consumed = 0;
  uint64_t append_errors = 0;
  uint64_t gaps = 0;
  uint64_t dups = 0;
  uint64_t restarts = 0;     ///< GroupCursor rejoins served (kSourceRestart)
  uint64_t sync_stalls = 0;  ///< injected fsync stalls served by mlog

  double run_s = 0;
  double achieved_rate_per_s = 0;

  // End-to-end latency, milliseconds.
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
  bool p99_within_budget = false;

  // Chaos: what fired, and how long the SLO stayed broken.
  std::vector<FaultOutcome> faults;
  /// Fault start -> last SLO breach (max over faults; 0 = SLO held).
  TimeMs disruption_ms = 0;
  /// Fault clear -> last SLO breach (max over faults; 0 = recovered
  /// within the fault window itself).
  TimeMs recovery_ms = 0;

  /// First sticky producer/consumer error ("" = clean run).
  std::string error;

  /// The ShardedPipeline's own merged ReportJson (uptime + per-stage
  /// rows), embedded verbatim by Json().
  std::string pipeline_json;

  std::string Json() const;
};

/// Runs one scenario: wipes and opens the topic, generates the fleet,
/// starts one consumer shard per partition (a ShardedPipeline of
/// GroupCursor tail sources), replays the arrival schedule open-loop on
/// a producer thread, executes `plan` on a chaos thread, and returns the
/// merged report. `clock` null = real time.
ScenarioReport RunScenario(const ScenarioOptions& options,
                           const FaultPlan& plan = {},
                           Clock* clock = nullptr);

}  // namespace tcmf::scenario

#endif  // TCMF_SCENARIO_SCENARIO_H_
