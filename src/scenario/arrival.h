#ifndef TCMF_SCENARIO_ARRIVAL_H_
#define TCMF_SCENARIO_ARRIVAL_H_

#include <cstdint>

#include "common/position.h"
#include "common/rng.h"

namespace tcmf::scenario {

/// Shape of the offered-load curve an open-loop driver replays.
enum class ArrivalModel {
  kConstant,  ///< evenly spaced: one record every 1/rate seconds
  kPoisson,   ///< memoryless: i.i.d. exponential inter-arrivals
  kDiurnal,   ///< non-homogeneous Poisson with a sinusoidal rate swing
};

/// "constant" / "poisson" / "diurnal".
const char* ArrivalModelName(ArrivalModel model);

/// A rate curve: the target arrival intensity over scenario time.
///
/// kConstant and kPoisson hold `rate_per_s` flat. kDiurnal modulates it
/// sinusoidally between `rate_per_s` (trough, at t = 0) and
/// `rate_per_s * peak_factor` (peak, at t = period_ms / 2) with period
/// `period_ms` — a compressed day/night commute cycle (CityPulse-style
/// city feeds), useful for watching the adaptive transport chase load.
struct ArrivalCurve {
  ArrivalModel model = ArrivalModel::kPoisson;
  double rate_per_s = 1000.0;
  TimeMs period_ms = 60 * kMillisPerSecond;  // diurnal only
  double peak_factor = 4.0;                  // diurnal only

  static ArrivalCurve Constant(double rate_per_s) {
    return {ArrivalModel::kConstant, rate_per_s, 0, 1.0};
  }
  static ArrivalCurve Poisson(double rate_per_s) {
    return {ArrivalModel::kPoisson, rate_per_s, 0, 1.0};
  }
  static ArrivalCurve Diurnal(double trough_rate_per_s, TimeMs period_ms,
                              double peak_factor) {
    return {ArrivalModel::kDiurnal, trough_rate_per_s, period_ms, peak_factor};
  }

  /// Instantaneous target rate at scenario time `t_ms` (records/s).
  double RateAtMs(TimeMs t_ms) const;

  /// Mean rate over a whole period (== rate_per_s except diurnal, where
  /// the sinusoid averages to the midpoint of trough and peak).
  double MeanRatePerS() const;
};

/// Seeded generator of the arrival timeline: successive NextArrivalUs()
/// calls return the nondecreasing offsets (microseconds since scenario
/// start) at which the driver should inject records. Deterministic for a
/// given (curve, seed); uses no wall clock, so schedules are equally
/// valid against a VirtualClock.
///
/// kDiurnal draws from the non-homogeneous Poisson process by thinning
/// (Lewis & Shedler): candidates at the peak rate, accepted with
/// probability rate(t) / peak_rate.
class ArrivalSchedule {
 public:
  ArrivalSchedule(const ArrivalCurve& curve, uint64_t seed);

  /// Offset of the next arrival, microseconds since scenario start.
  int64_t NextArrivalUs();

  const ArrivalCurve& curve() const { return curve_; }

 private:
  ArrivalCurve curve_;
  Rng rng_;
  double next_us_ = 0.0;
};

}  // namespace tcmf::scenario

#endif  // TCMF_SCENARIO_ARRIVAL_H_
