#ifndef TCMF_SCENARIO_HISTOGRAM_H_
#define TCMF_SCENARIO_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace tcmf::scenario {

/// Lock-cheap HDR-style latency histogram (hdrhistogram's log-linear
/// bucketing): values are microseconds, bucketed into octaves of
/// kSubBuckets linear sub-buckets each, so relative quantile error is
/// bounded by 1/kSubBuckets (~1.6%) at every magnitude from 1us to ~2^58
/// us. Record() is one relaxed fetch_add on an atomic counter — cheap
/// enough to sit on the sink hot path of every shard — and histograms
/// merge by adding counters, so per-shard instances combine into the
/// fleet-wide distribution without any locking during the run.
///
/// Thread safety: Record() is safe from any number of threads.
/// Quantile/Merge/ToJson take a best-effort snapshot (exact once writers
/// have stopped, which is when reports are built).
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 64
  static constexpr int kOctaves = 64 - kSubBucketBits;
  static constexpr size_t kBucketCount =
      static_cast<size_t>(kOctaves) * kSubBuckets;

  LatencyHistogram();

  /// Records one latency observation (microseconds, clamped at >= 0).
  void RecordUs(int64_t latency_us);

  /// Adds `other`'s counters into this histogram.
  void Merge(const LatencyHistogram& other);

  /// Value at quantile q in [0, 1] (0.5 = median), microseconds. The
  /// bucket midpoint is returned, so the result carries the bucketing
  /// error bound above. 0 when empty.
  uint64_t ValueAtQuantileUs(double q) const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }
  double MeanUs() const;

  /// {"count":N,"mean_ms":..,"p50_ms":..,"p99_ms":..,"p999_ms":..,
  ///  "max_ms":..} — milliseconds with 3 decimals, the report shape.
  std::string ToJson() const;

 private:
  static size_t IndexOf(uint64_t value_us);
  static uint64_t BucketMidpointUs(size_t index);

  std::array<std::atomic<uint64_t>, kBucketCount> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

}  // namespace tcmf::scenario

#endif  // TCMF_SCENARIO_HISTOGRAM_H_
