#include "scenario/histogram.h"

#include <algorithm>
#include <bit>

#include "common/strings.h"

namespace tcmf::scenario {

LatencyHistogram::LatencyHistogram() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

size_t LatencyHistogram::IndexOf(uint64_t value_us) {
  if (value_us < kSubBuckets) return static_cast<size_t>(value_us);
  // Octave o holds values in [2^(o+kSubBucketBits-1), 2^(o+kSubBucketBits)):
  // v >> o lands in [kSubBuckets/2, kSubBuckets), a linear sub-bucket of
  // width 2^o — relative resolution 2/kSubBuckets at every magnitude.
  const int octave = std::bit_width(value_us) - kSubBucketBits;
  const size_t sub = static_cast<size_t>(value_us >> octave);
  return static_cast<size_t>(octave) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketMidpointUs(size_t index) {
  const size_t octave = index / kSubBuckets;
  const uint64_t sub = index % kSubBuckets;
  if (octave == 0) return sub;  // exact: sub-bucket width 1
  return (sub << octave) + (uint64_t{1} << (octave - 1));
}

void LatencyHistogram::RecordUs(int64_t latency_us) {
  const uint64_t v = latency_us < 0 ? 0 : static_cast<uint64_t>(latency_us);
  buckets_[IndexOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(v, std::memory_order_relaxed);
  uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (prev < v && !max_us_.compare_exchange_weak(
                         prev, v, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kBucketCount; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_us_.fetch_add(other.sum_us_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  const uint64_t other_max = other.max_us();
  uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (prev < other_max &&
         !max_us_.compare_exchange_weak(prev, other_max,
                                        std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::ValueAtQuantileUs(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * total + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) return BucketMidpointUs(i);
  }
  return max_us();
}

double LatencyHistogram::MeanUs() const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / total;
}

std::string LatencyHistogram::ToJson() const {
  return StrFormat(
      "{\"count\":%llu,\"mean_ms\":%.3f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"p999_ms\":%.3f,\"max_ms\":%.3f}",
      static_cast<unsigned long long>(count()), MeanUs() / 1000.0,
      ValueAtQuantileUs(0.50) / 1000.0, ValueAtQuantileUs(0.99) / 1000.0,
      ValueAtQuantileUs(0.999) / 1000.0, max_us() / 1000.0);
}

}  // namespace tcmf::scenario
