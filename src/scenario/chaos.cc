#include "scenario/chaos.h"

#include <algorithm>

#include "common/status.h"
#include "common/strings.h"

namespace tcmf::scenario {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kAppendFault:
      return "append_fault";
    case FaultKind::kFsyncStall:
      return "fsync_stall";
    case FaultKind::kSlowConsumer:
      return "slow_consumer";
    case FaultKind::kSkewShift:
      return "skew_shift";
    case FaultKind::kSourceRestart:
      return "source_restart";
  }
  return "unknown";
}

std::string FaultOutcome::Json() const {
  return StrFormat(
      "{\"kind\":\"%s\",\"at_ms\":%lld,\"duration_ms\":%lld,"
      "\"partition\":%zu,\"stall_ms\":%lld,\"applied_at_ms\":%lld,"
      "\"cleared_at_ms\":%lld}",
      FaultKindName(spec.kind), static_cast<long long>(spec.at_ms),
      static_cast<long long>(spec.duration_ms), spec.partition,
      static_cast<long long>(spec.stall_ms),
      static_cast<long long>(applied_at_ms),
      static_cast<long long>(cleared_at_ms));
}

namespace {
bool Instantaneous(FaultKind kind) {
  return kind == FaultKind::kSkewShift || kind == FaultKind::kSourceRestart;
}
}  // namespace

void FaultInjector::Apply(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kAppendFault:
      if (targets_.topic) {
        targets_.topic->SetAppendFault(
            spec.partition, Status::IoError("chaos: injected append fault"));
      }
      break;
    case FaultKind::kFsyncStall:
      if (targets_.topic) {
        targets_.topic->SetSyncDelay(spec.partition, spec.stall_ms);
      }
      break;
    case FaultKind::kSlowConsumer:
      if (targets_.slow_sink_us) {
        targets_.slow_sink_us->store(spec.stall_ms * 1000,
                                     std::memory_order_relaxed);
      }
      break;
    case FaultKind::kSkewShift:
      if (targets_.key_rotation) {
        targets_.key_rotation->fetch_add(spec.key_offset,
                                         std::memory_order_relaxed);
      }
      break;
    case FaultKind::kSourceRestart:
      if (targets_.restart_epochs &&
          spec.partition < targets_.partition_count) {
        targets_.restart_epochs[spec.partition].fetch_add(
            1, std::memory_order_release);
      }
      break;
  }
}

void FaultInjector::Clear(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kAppendFault:
      if (targets_.topic) {
        targets_.topic->SetAppendFault(spec.partition, Status::Ok());
      }
      break;
    case FaultKind::kFsyncStall:
      if (targets_.topic) targets_.topic->SetSyncDelay(spec.partition, 0);
      break;
    case FaultKind::kSlowConsumer:
      if (targets_.slow_sink_us) {
        targets_.slow_sink_us->store(0, std::memory_order_relaxed);
      }
      break;
    case FaultKind::kSkewShift:
    case FaultKind::kSourceRestart:
      break;  // instantaneous: nothing to disarm
  }
}

std::vector<FaultOutcome> FaultInjector::Run(const FaultPlan& plan,
                                             int64_t start_us) {
  std::vector<FaultSpec> timeline = plan.faults();
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.at_ms < b.at_ms;
                   });
  std::vector<FaultOutcome> outcomes;
  outcomes.reserve(timeline.size());
  for (const FaultSpec& spec : timeline) {
    clock_->SleepUntilUs(start_us + spec.at_ms * 1000);
    FaultOutcome outcome;
    outcome.spec = spec;
    outcome.applied_at_ms = (clock_->NowUs() - start_us) / 1000;
    Apply(spec);
    if (!Instantaneous(spec.kind) && spec.duration_ms > 0) {
      clock_->SleepUntilUs(start_us + (spec.at_ms + spec.duration_ms) * 1000);
      Clear(spec);
    }
    outcome.cleared_at_ms = (clock_->NowUs() - start_us) / 1000;
    outcomes.push_back(outcome);
  }
  return outcomes;
}

}  // namespace tcmf::scenario
