#include "scenario/arrival.h"

#include <cmath>

namespace tcmf::scenario {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kUsPerSecond = 1e6;
}  // namespace

const char* ArrivalModelName(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kConstant:
      return "constant";
    case ArrivalModel::kPoisson:
      return "poisson";
    case ArrivalModel::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

double ArrivalCurve::RateAtMs(TimeMs t_ms) const {
  if (model != ArrivalModel::kDiurnal || period_ms <= 0) return rate_per_s;
  // Trough at t = 0, peak at t = period/2: rate(t) = trough +
  // (peak - trough) * (1 - cos(2*pi*t/period)) / 2.
  const double phase =
      2.0 * kPi * static_cast<double>(t_ms % period_ms) / period_ms;
  const double swing = rate_per_s * (peak_factor - 1.0);
  return rate_per_s + swing * 0.5 * (1.0 - std::cos(phase));
}

double ArrivalCurve::MeanRatePerS() const {
  if (model != ArrivalModel::kDiurnal) return rate_per_s;
  return rate_per_s * (1.0 + peak_factor) / 2.0;
}

ArrivalSchedule::ArrivalSchedule(const ArrivalCurve& curve, uint64_t seed)
    : curve_(curve), rng_(seed) {}

int64_t ArrivalSchedule::NextArrivalUs() {
  switch (curve_.model) {
    case ArrivalModel::kConstant: {
      const int64_t at = static_cast<int64_t>(next_us_);
      next_us_ += kUsPerSecond / curve_.rate_per_s;
      return at;
    }
    case ArrivalModel::kPoisson: {
      const int64_t at = static_cast<int64_t>(next_us_);
      next_us_ += rng_.Exponential(curve_.rate_per_s / kUsPerSecond);
      return at;
    }
    case ArrivalModel::kDiurnal: {
      // Thinning: exponential candidate steps at the peak rate, accept
      // with probability rate(t)/peak — an exact draw from the
      // non-homogeneous process, still one monotone stream of offsets.
      const double peak_rate = curve_.rate_per_s * curve_.peak_factor;
      for (;;) {
        next_us_ += rng_.Exponential(peak_rate / kUsPerSecond);
        const TimeMs t_ms = static_cast<TimeMs>(next_us_ / 1000.0);
        if (rng_.Bernoulli(curve_.RateAtMs(t_ms) / peak_rate)) {
          return static_cast<int64_t>(next_us_);
        }
      }
    }
  }
  return static_cast<int64_t>(next_us_);
}

}  // namespace tcmf::scenario
