#ifndef TCMF_SCENARIO_CLOCK_H_
#define TCMF_SCENARIO_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/position.h"

namespace tcmf::scenario {

/// Injectable time source for the open-loop driver and chaos layer. The
/// scenario code never touches std::chrono directly for *scheduling*
/// decisions — it asks its Clock — so tests can run arrival schedules
/// and fault plans against a VirtualClock with zero wall-clock sleeps
/// and exact, deterministic timestamps.
///
/// Times are microseconds on an arbitrary monotonic epoch (the steady
/// clock's for SystemClock, 0 for a fresh VirtualClock). Millisecond
/// helpers are derived.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time, microseconds.
  virtual int64_t NowUs() = 0;

  /// Blocks (or virtually advances) until NowUs() >= deadline_us.
  virtual void SleepUntilUs(int64_t deadline_us) = 0;

  TimeMs NowMs() { return NowUs() / 1000; }
  void SleepForUs(int64_t us) { SleepUntilUs(NowUs() + us); }
};

/// Real time on std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  int64_t NowUs() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepUntilUs(int64_t deadline_us) override {
    const std::chrono::steady_clock::time_point deadline{
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::microseconds(deadline_us))};
    std::this_thread::sleep_until(deadline);
  }
};

/// Process-wide shared SystemClock (the default when a scenario is run
/// with clock == nullptr).
inline Clock* RealClock() {
  static SystemClock clock;
  return &clock;
}

/// Manually advanced clock: SleepUntilUs jumps time forward instead of
/// blocking, so a "10 minute" schedule or fault plan replays instantly
/// and lands on exact timestamps. Monotonic: time never moves backwards,
/// concurrent sleepers race forward via compare-exchange.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(int64_t start_us = 0) : now_us_(start_us) {}

  int64_t NowUs() override { return now_us_.load(std::memory_order_acquire); }

  void SleepUntilUs(int64_t deadline_us) override {
    int64_t cur = now_us_.load(std::memory_order_relaxed);
    while (cur < deadline_us &&
           !now_us_.compare_exchange_weak(cur, deadline_us,
                                          std::memory_order_acq_rel)) {
    }
  }

  void AdvanceUs(int64_t us) { SleepUntilUs(NowUs() + us); }

 private:
  std::atomic<int64_t> now_us_;
};

}  // namespace tcmf::scenario

#endif  // TCMF_SCENARIO_CLOCK_H_
