#ifndef TCMF_SCENARIO_CHAOS_H_
#define TCMF_SCENARIO_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/position.h"
#include "mlog/partitioned.h"
#include "scenario/clock.h"

namespace tcmf::scenario {

/// The failure modes a scenario can script. Each maps onto a concrete
/// hook in the system under test — no chaos-only code paths exist in the
/// runtime itself.
enum class FaultKind {
  /// Log::SetAppendFault on one partition: appends fail, data dropped.
  kAppendFault,
  /// Log::SetSyncDelay on one partition: every append stalls `stall_ms`
  /// under the writer mutex (slow-disk fsync).
  kFsyncStall,
  /// The scenario sink sleeps `stall_ms` per record (overloaded
  /// downstream consumer — backpressure builds upstream).
  kSlowConsumer,
  /// Instantaneous key-distribution rotation: every subsequent key is
  /// offset, shifting which partition each entity routes to (hot-shard
  /// skew migration).
  kSkewShift,
  /// Instantaneous: one shard's GroupCursor is closed and rejoined
  /// mid-tail — the consumer must resume at the group's committed
  /// watermark with no gaps or duplicates (source gap/restart).
  kSourceRestart,
};

/// "append_fault" / "fsync_stall" / "slow_consumer" / "skew_shift" /
/// "source_restart".
const char* FaultKindName(FaultKind kind);

/// One scripted injection. `at_ms` is scenario time (ms since driver
/// start). Windowed faults (duration_ms > 0) are cleared at
/// at_ms + duration_ms; kSkewShift and kSourceRestart are instantaneous
/// and ignore duration.
struct FaultSpec {
  FaultKind kind = FaultKind::kFsyncStall;
  TimeMs at_ms = 0;
  TimeMs duration_ms = 0;
  size_t partition = 0;     ///< target partition / shard
  TimeMs stall_ms = 0;      ///< kFsyncStall: per-append; kSlowConsumer: per-record
  uint64_t key_offset = 1;  ///< kSkewShift: added to the rotation
};

/// An ordered timeline of injections (sorted by at_ms at run time; the
/// injector executes them sequentially, so overlapping windows serialize
/// in timeline order).
class FaultPlan {
 public:
  FaultPlan& Add(const FaultSpec& spec) {
    faults_.push_back(spec);
    return *this;
  }
  const std::vector<FaultSpec>& faults() const { return faults_; }
  bool empty() const { return faults_.empty(); }

 private:
  std::vector<FaultSpec> faults_;
};

/// What actually happened: the spec plus the observed apply/clear times
/// (scenario ms) — the anchor recovery time is measured against.
struct FaultOutcome {
  FaultSpec spec;
  TimeMs applied_at_ms = 0;
  TimeMs cleared_at_ms = 0;  ///< == applied_at_ms for instantaneous kinds
  std::string Json() const;
};

/// The mutable knobs a FaultInjector drives. The scenario driver owns
/// the referenced state; consumer threads read the atomics on their hot
/// paths (relaxed), the injector writes them at fault boundaries.
struct ChaosTargets {
  mlog::PartitionedLog* topic = nullptr;
  /// Per-record sink sleep, microseconds (kSlowConsumer).
  std::atomic<int64_t>* slow_sink_us = nullptr;
  /// Added to every routing key before AppendKeyed (kSkewShift).
  std::atomic<uint64_t>* key_rotation = nullptr;
  /// Bumping restart_epochs[p] tells shard p's source to drop its
  /// GroupCursor and rejoin (kSourceRestart). Size >= partition count.
  std::atomic<uint64_t>* restart_epochs = nullptr;
  size_t partition_count = 0;
};

/// Replays a FaultPlan against the targets on the caller's thread
/// (drivers run it on a dedicated chaos thread), sleeping on `clock`
/// between injections. Apply/Clear are public so tests and custom
/// harnesses can fire single faults without a timeline.
class FaultInjector {
 public:
  FaultInjector(ChaosTargets targets, Clock* clock)
      : targets_(targets), clock_(clock ? clock : RealClock()) {}

  /// Executes the plan: sorts by at_ms, sleeps to each fault's time,
  /// applies it, sleeps out its window, clears it. Returns the observed
  /// outcomes in execution order. `start_us` anchors scenario time 0.
  std::vector<FaultOutcome> Run(const FaultPlan& plan, int64_t start_us);

  /// Arms one fault now (no sleeping).
  void Apply(const FaultSpec& spec);
  /// Disarms a windowed fault (no-op for instantaneous kinds).
  void Clear(const FaultSpec& spec);

 private:
  ChaosTargets targets_;
  Clock* clock_;
};

}  // namespace tcmf::scenario

#endif  // TCMF_SCENARIO_CHAOS_H_
