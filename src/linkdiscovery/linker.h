#ifndef TCMF_LINKDISCOVERY_LINKER_H_
#define TCMF_LINKDISCOVERY_LINKER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/position.h"
#include "geom/geometry.h"
#include "geom/grid.h"
#include "geom/spatial_index.h"

namespace tcmf::linkdiscovery {

/// A discovered spatio-temporal relation (Section 4.2.4): dul:within or
/// geosparql:nearTo between a streamed point and a stationary area, or
/// between two streamed points (proximity in space and time).
struct Link {
  enum class Relation { kWithin, kNearTo };
  Relation relation = Relation::kWithin;
  uint64_t subject_entity = 0;
  TimeMs subject_t = 0;
  /// Area id for point-area links; other entity id for point-point links.
  uint64_t object_id = 0;
  bool object_is_entity = false;
};

/// Configuration of the streaming linker.
struct LinkerConfig {
  geom::BBox extent{-6.0, 35.0, 10.0, 44.0};
  uint32_t grid_cols = 64;
  uint32_t grid_rows = 64;
  /// nearTo distance threshold, meters.
  double near_distance_m = 5000.0;
  /// Temporal window for point-point proximity; points further apart in
  /// time than this can never satisfy the relation, and are evicted by the
  /// book-keeping pass.
  TimeMs temporal_window_ms = 5 * kMillisPerMinute;
  /// Cell masks on/off (the paper's optimization; the ~5x lever).
  bool use_masks = true;
  /// Sub-raster resolution per cell for the mask (k x k subcells).
  int mask_resolution = 8;
  /// Evaluate point-point proximity links.
  bool link_moving_pairs = false;
  /// Index backing point-point candidate generation. All backends
  /// produce identical links and stats (the SpatialIndex contract);
  /// kRtree wins on skewed traffic, kGrid on uniform regional traffic.
  geom::SpatialBackend pair_index = geom::SpatialBackend::kRtree;
};

/// Counters for throughput/pruning analysis.
struct LinkerStats {
  size_t points_processed = 0;
  size_t polygon_tests = 0;     ///< refinement point-in-polygon calls
  size_t distance_tests = 0;    ///< refinement distance computations
  size_t mask_skips = 0;        ///< points short-circuited by the mask
  size_t pair_candidates = 0;   ///< point-point candidate pairs examined
  size_t links_within = 0;
  size_t links_near_area = 0;
  size_t links_near_entity = 0;
};

/// Streaming spatio-temporal link discovery with equi-grid blocking and
/// cell masks. The mask of a cell is the sub-raster of the cell not
/// covered (nor near-covered) by any candidate region: a point landing in
/// the mask needs no refinement at all.
class SpatioTemporalLinker {
 public:
  SpatioTemporalLinker(const LinkerConfig& config,
                       std::vector<geom::Area> regions);

  /// Processes one streamed point; returns the links it produced.
  std::vector<Link> Observe(const Position& p);

  const LinkerStats& stats() const { return stats_; }
  const std::vector<geom::Area>& regions() const { return regions_; }

  /// Fraction of cells fully free of any region (entirely in the mask).
  double FullyFreeCellFraction() const;

 private:
  LinkerConfig config_;
  std::vector<geom::Area> regions_;
  geom::EquiGrid grid_;
  /// cell -> candidate region indexes (bbox-dilated by near distance).
  std::vector<std::vector<uint32_t>> cell_regions_;
  /// cell -> bitmask of mask_resolution^2 subcells; bit set = region-free.
  std::vector<std::vector<bool>> cell_mask_;
  /// Recent moving-entity points (for point-point proximity), behind the
  /// configured SpatialIndex backend. Correctness of link outputs rests
  /// on the query-side temporal filter; eviction is amortized
  /// book-keeping that only bounds memory.
  std::unique_ptr<geom::SpatialIndex> pair_points_;
  int observes_since_evict_ = 0;
  LinkerStats stats_;
};

/// Baseline without blocking: every point refined against every region.
/// Used by the benchmarks to report the blocking + mask speedups.
class NaiveLinker {
 public:
  NaiveLinker(double near_distance_m, std::vector<geom::Area> regions);

  std::vector<Link> Observe(const Position& p);

  const LinkerStats& stats() const { return stats_; }

 private:
  double near_distance_m_;
  std::vector<geom::Area> regions_;
  LinkerStats stats_;
};

}  // namespace tcmf::linkdiscovery

#endif  // TCMF_LINKDISCOVERY_LINKER_H_
