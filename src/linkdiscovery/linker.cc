#include "linkdiscovery/linker.h"

#include <cmath>

#include "geom/geo.h"

namespace tcmf::linkdiscovery {

using geom::Area;
using geom::BBox;
using geom::LonLat;

namespace {

/// Dilates a bbox by approximately `meters` in every direction.
BBox Dilate(const BBox& box, double meters) {
  double dlat = meters / geom::kEarthRadiusM * 180.0 / geom::kPi;
  double coslat = std::cos(geom::DegToRad((box.min_lat + box.max_lat) / 2));
  double dlon = coslat > 1e-6 ? dlat / coslat : 180.0;
  BBox out = box;
  out.min_lon -= dlon;
  out.max_lon += dlon;
  out.min_lat -= dlat;
  out.max_lat += dlat;
  return out;
}

}  // namespace

SpatioTemporalLinker::SpatioTemporalLinker(const LinkerConfig& config,
                                           std::vector<Area> regions)
    : config_(config),
      regions_(std::move(regions)),
      grid_(config.extent, config.grid_cols, config.grid_rows),
      cell_regions_(grid_.cell_count()),
      cell_mask_(grid_.cell_count()),
      pair_points_(geom::MakeSpatialIndex(
          config.pair_index,
          geom::SpatialIndexConfig{config.extent, config.grid_cols,
                                   config.grid_rows})) {
  // Blocking: register each region with every cell its dilated bbox
  // overlaps (dilation accounts for the nearTo distance).
  for (uint32_t i = 0; i < regions_.size(); ++i) {
    BBox dilated = Dilate(regions_[i].shape.bbox(), config_.near_distance_m);
    for (uint32_t cell : grid_.CellsIntersecting(dilated)) {
      cell_regions_[cell].push_back(i);
    }
  }

  // Mask construction: a subcell is free iff no candidate region of the
  // cell is within near_distance + subcell half-diagonal of its center.
  if (config_.use_masks) {
    int k = config_.mask_resolution;
    for (uint32_t cell = 0; cell < grid_.cell_count(); ++cell) {
      const std::vector<uint32_t>& candidates = cell_regions_[cell];
      if (candidates.empty()) continue;  // empty vector: whole cell free
      BBox bounds = grid_.CellBounds(cell);
      double sub_w = bounds.width() / k;
      double sub_h = bounds.height() / k;
      // Half-diagonal of a subcell, in meters.
      LonLat c0{bounds.min_lon, bounds.min_lat};
      LonLat c1{bounds.min_lon + sub_w, bounds.min_lat + sub_h};
      double half_diag = geom::HaversineM(c0, c1) / 2.0;
      std::vector<bool> mask(static_cast<size_t>(k) * k, false);
      for (int sy = 0; sy < k; ++sy) {
        for (int sx = 0; sx < k; ++sx) {
          LonLat center{bounds.min_lon + (sx + 0.5) * sub_w,
                        bounds.min_lat + (sy + 0.5) * sub_h};
          bool free = true;
          for (uint32_t ri : candidates) {
            if (regions_[ri].shape.DistanceM(center) <=
                config_.near_distance_m + half_diag) {
              free = false;
              break;
            }
          }
          mask[static_cast<size_t>(sy) * k + sx] = free;
        }
      }
      cell_mask_[cell] = std::move(mask);
    }
  }
}

namespace {

/// Observes between amortized eviction sweeps of the pair index.
constexpr int kEvictEvery = 256;

}  // namespace

std::vector<Link> SpatioTemporalLinker::Observe(const Position& p) {
  ++stats_.points_processed;
  std::vector<Link> out;
  uint32_t cell = grid_.CellOf(p.lon, p.lat);

  // --- Point-area relations ---
  const std::vector<uint32_t>& candidates = cell_regions_[cell];
  bool skip_regions = candidates.empty();
  if (!skip_regions && config_.use_masks && !cell_mask_[cell].empty()) {
    BBox bounds = grid_.CellBounds(cell);
    int k = config_.mask_resolution;
    int sx = std::min<int>(
        k - 1, static_cast<int>((p.lon - bounds.min_lon) / bounds.width() * k));
    int sy = std::min<int>(
        k - 1,
        static_cast<int>((p.lat - bounds.min_lat) / bounds.height() * k));
    if (sx >= 0 && sy >= 0 &&
        cell_mask_[cell][static_cast<size_t>(sy) * k + sx]) {
      skip_regions = true;
      ++stats_.mask_skips;
    }
  }
  if (!skip_regions) {
    LonLat loc{p.lon, p.lat};
    for (uint32_t ri : candidates) {
      const Area& area = regions_[ri];
      ++stats_.polygon_tests;
      if (area.shape.Contains(loc)) {
        out.push_back({Link::Relation::kWithin, p.entity_id, p.t, area.id,
                       false});
        ++stats_.links_within;
        continue;
      }
      ++stats_.distance_tests;
      if (area.shape.DistanceM(loc) <= config_.near_distance_m) {
        out.push_back({Link::Relation::kNearTo, p.entity_id, p.t, area.id,
                       false});
        ++stats_.links_near_area;
      }
    }
  }

  // --- Point-point proximity ---
  if (config_.link_moving_pairs) {
    // The index visits exactly the stored points within near_distance_m
    // and no older than the temporal window, regardless of backend; the
    // |Δt| re-check only matters for out-of-order (future-stamped)
    // entries.
    pair_points_->VisitWithinRadius(
        p.lon, p.lat, config_.near_distance_m,
        p.t - config_.temporal_window_ms, [&](const geom::IndexPoint& e) {
          if (e.id == p.entity_id) return;
          ++stats_.pair_candidates;
          if (std::llabs(p.t - e.t) > config_.temporal_window_ms) return;
          ++stats_.distance_tests;
          out.push_back(
              {Link::Relation::kNearTo, p.entity_id, p.t, e.id, true});
          ++stats_.links_near_entity;
        });
    pair_points_->Insert({p.entity_id, p.t, p.lon, p.lat});
    if (++observes_since_evict_ >= kEvictEvery) {
      observes_since_evict_ = 0;
      pair_points_->EvictBefore(p.t - config_.temporal_window_ms);
    }
  }
  return out;
}

double SpatioTemporalLinker::FullyFreeCellFraction() const {
  size_t free_cells = 0;
  for (const std::vector<uint32_t>& candidates : cell_regions_) {
    if (candidates.empty()) ++free_cells;
  }
  return static_cast<double>(free_cells) / cell_regions_.size();
}

NaiveLinker::NaiveLinker(double near_distance_m, std::vector<Area> regions)
    : near_distance_m_(near_distance_m), regions_(std::move(regions)) {}

std::vector<Link> NaiveLinker::Observe(const Position& p) {
  ++stats_.points_processed;
  std::vector<Link> out;
  LonLat loc{p.lon, p.lat};
  for (const Area& area : regions_) {
    ++stats_.polygon_tests;
    if (area.shape.Contains(loc)) {
      out.push_back({Link::Relation::kWithin, p.entity_id, p.t, area.id,
                     false});
      ++stats_.links_within;
      continue;
    }
    ++stats_.distance_tests;
    if (area.shape.DistanceM(loc) <= near_distance_m_) {
      out.push_back({Link::Relation::kNearTo, p.entity_id, p.t, area.id,
                     false});
      ++stats_.links_near_area;
    }
  }
  return out;
}

}  // namespace tcmf::linkdiscovery
