#include "cep/pmc.h"

#include <cmath>

namespace tcmf::cep {

namespace {

int IntPow(int base, int exp) {
  int out = 1;
  for (int i = 0; i < exp; ++i) out *= base;
  return out;
}

}  // namespace

MarkovInputModel::MarkovInputModel(int alphabet_size, int order)
    : alphabet_size_(alphabet_size),
      order_(order < 0 ? 0 : order),
      context_count_(IntPow(alphabet_size, order_)),
      probs_(static_cast<size_t>(context_count_) * alphabet_size,
             1.0 / alphabet_size) {}

void MarkovInputModel::Fit(const std::vector<int>& stream, double smoothing) {
  std::vector<double> counts(probs_.size(), smoothing);
  int context = InitialContext();
  for (size_t i = 0; i < stream.size(); ++i) {
    int sym = stream[i];
    if (sym < 0 || sym >= alphabet_size_) continue;
    // Skip the first `order` positions: their contexts are padding.
    if (static_cast<int>(i) >= order_) {
      counts[static_cast<size_t>(context) * alphabet_size_ + sym] += 1.0;
    }
    context = UpdateContext(context, sym);
  }
  for (int c = 0; c < context_count_; ++c) {
    double total = 0.0;
    for (int s = 0; s < alphabet_size_; ++s) {
      total += counts[static_cast<size_t>(c) * alphabet_size_ + s];
    }
    for (int s = 0; s < alphabet_size_; ++s) {
      probs_[static_cast<size_t>(c) * alphabet_size_ + s] =
          counts[static_cast<size_t>(c) * alphabet_size_ + s] / total;
    }
  }
}

void MarkovInputModel::ObserveOnline(int symbol, double decay) {
  if (symbol < 0 || symbol >= alphabet_size_) return;
  if (!online_started_) {
    // Seed the decayed counts from the current distribution with an
    // effective sample size of alphabet_size per context (a weak prior
    // that new evidence quickly overrides).
    online_counts_.assign(probs_.size(), 0.0);
    for (size_t i = 0; i < probs_.size(); ++i) {
      online_counts_[i] = probs_[i] * alphabet_size_;
    }
    online_context_ = InitialContext();
    online_started_ = true;
  }
  size_t row = static_cast<size_t>(online_context_) * alphabet_size_;
  for (int s = 0; s < alphabet_size_; ++s) online_counts_[row + s] *= decay;
  online_counts_[row + symbol] += 1.0;
  double total = 0.0;
  for (int s = 0; s < alphabet_size_; ++s) total += online_counts_[row + s];
  for (int s = 0; s < alphabet_size_; ++s) {
    probs_[row + s] = online_counts_[row + s] / total;
  }
  online_context_ = UpdateContext(online_context_, symbol);
}

double MarkovInputModel::Prob(int context, int symbol) const {
  return probs_[static_cast<size_t>(context) * alphabet_size_ + symbol];
}

int MarkovInputModel::UpdateContext(int context, int symbol) const {
  if (order_ == 0) return 0;
  // Drop the oldest symbol (most significant digit), append the new one.
  int base = IntPow(alphabet_size_, order_ - 1);
  return (context % base) * alphabet_size_ + symbol;
}

PatternMarkovChain::PatternMarkovChain(const Dfa& dfa,
                                       const MarkovInputModel& input)
    : dfa_(dfa), input_(input) {
  state_count_ = dfa_.state_count * input_.context_count();
  edges_.resize(state_count_);
  for (int q = 0; q < dfa_.state_count; ++q) {
    for (int c = 0; c < input_.context_count(); ++c) {
      int s = StateOf(q, c);
      edges_[s].reserve(input_.alphabet_size());
      for (int y = 0; y < input_.alphabet_size(); ++y) {
        int q2 = dfa_.Next(q, y);
        int c2 = input_.UpdateContext(c, y);
        edges_[s].push_back(
            {StateOf(q2, c2), input_.Prob(c, y), dfa_.is_final[q2]});
      }
    }
  }
}

std::vector<double> PatternMarkovChain::WaitingTime(int pmc_state,
                                                    int horizon) const {
  // w_k(s) = sum over edges: to final -> prob * [k == 1];
  //          to non-final  -> prob * w_{k-1}(target).
  // Computed over all states per step (dynamic programming in k).
  std::vector<double> out;
  out.reserve(horizon);
  std::vector<double> w_prev(state_count_, 0.0);  // w_1 per state
  for (int s = 0; s < state_count_; ++s) {
    for (const Edge& e : edges_[s]) {
      if (e.target_final) w_prev[s] += e.prob;
    }
  }
  out.push_back(w_prev[pmc_state]);
  std::vector<double> w_cur(state_count_, 0.0);
  for (int k = 2; k <= horizon; ++k) {
    for (int s = 0; s < state_count_; ++s) {
      double sum = 0.0;
      for (const Edge& e : edges_[s]) {
        if (!e.target_final) sum += e.prob * w_prev[e.target];
      }
      w_cur[s] = sum;
    }
    out.push_back(w_cur[pmc_state]);
    std::swap(w_prev, w_cur);
  }
  return out;
}

std::optional<PatternMarkovChain::Interval>
PatternMarkovChain::SmallestInterval(const std::vector<double>& waiting_time,
                                     double theta) {
  const int n = static_cast<int>(waiting_time.size());
  std::optional<Interval> best;
  double window = 0.0;
  int lo = 0;
  for (int hi = 0; hi < n; ++hi) {
    window += waiting_time[hi];
    while (window - waiting_time[lo] >= theta && lo < hi) {
      window -= waiting_time[lo];
      ++lo;
    }
    if (window >= theta) {
      int length = hi - lo + 1;
      if (!best.has_value() || length < best->end - best->start + 1) {
        best = Interval{lo + 1, hi + 1, window};
      }
    }
  }
  return best;
}

}  // namespace tcmf::cep
