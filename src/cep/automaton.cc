#include "cep/automaton.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "common/strings.h"

namespace tcmf::cep {

namespace {

/// Thompson NFA with epsilon transitions (symbol -1).
struct Nfa {
  struct Edge {
    int symbol;  // -1 = epsilon
    int to;
  };
  std::vector<std::vector<Edge>> states;

  int AddState() {
    states.emplace_back();
    return static_cast<int>(states.size()) - 1;
  }
  void AddEdge(int from, int symbol, int to) {
    states[from].push_back({symbol, to});
  }
};

struct Fragment {
  int start;
  int accept;
};

Fragment Build(Nfa& nfa, const Pattern& p) {
  switch (p.kind()) {
    case Pattern::Kind::kSymbol: {
      int s = nfa.AddState();
      int a = nfa.AddState();
      nfa.AddEdge(s, p.symbol(), a);
      return {s, a};
    }
    case Pattern::Kind::kSeq: {
      if (p.children().empty()) {
        int s = nfa.AddState();
        return {s, s};
      }
      Fragment first = Build(nfa, p.children()[0]);
      Fragment acc = first;
      for (size_t i = 1; i < p.children().size(); ++i) {
        Fragment next = Build(nfa, p.children()[i]);
        nfa.AddEdge(acc.accept, -1, next.start);
        acc.accept = next.accept;
      }
      return acc;
    }
    case Pattern::Kind::kOr: {
      int s = nfa.AddState();
      int a = nfa.AddState();
      for (const Pattern& child : p.children()) {
        Fragment f = Build(nfa, child);
        nfa.AddEdge(s, -1, f.start);
        nfa.AddEdge(f.accept, -1, a);
      }
      return {s, a};
    }
    case Pattern::Kind::kStar: {
      int s = nfa.AddState();
      int a = nfa.AddState();
      Fragment f = Build(nfa, p.children()[0]);
      nfa.AddEdge(s, -1, f.start);
      nfa.AddEdge(s, -1, a);
      nfa.AddEdge(f.accept, -1, f.start);
      nfa.AddEdge(f.accept, -1, a);
      return {s, a};
    }
  }
  int s = nfa.AddState();
  return {s, s};
}

std::set<int> EpsilonClosure(const Nfa& nfa, const std::set<int>& states) {
  std::set<int> closure = states;
  std::queue<int> work;
  for (int s : states) work.push(s);
  while (!work.empty()) {
    int s = work.front();
    work.pop();
    for (const Nfa::Edge& e : nfa.states[s]) {
      if (e.symbol == -1 && closure.insert(e.to).second) work.push(e.to);
    }
  }
  return closure;
}

Dfa SubsetConstruct(const Nfa& nfa, int start, int accept,
                    int alphabet_size) {
  Dfa dfa;
  dfa.alphabet_size = alphabet_size;
  std::map<std::set<int>, int> ids;
  std::vector<std::set<int>> subsets;

  std::set<int> s0 = EpsilonClosure(nfa, {start});
  ids[s0] = 0;
  subsets.push_back(s0);
  std::queue<int> work;
  work.push(0);

  while (!work.empty()) {
    int id = work.front();
    work.pop();
    std::set<int> current = subsets[id];
    for (int sym = 0; sym < alphabet_size; ++sym) {
      std::set<int> moved;
      for (int s : current) {
        for (const Nfa::Edge& e : nfa.states[s]) {
          if (e.symbol == sym) moved.insert(e.to);
        }
      }
      std::set<int> closure = EpsilonClosure(nfa, moved);
      auto [it, inserted] =
          ids.try_emplace(closure, static_cast<int>(subsets.size()));
      if (inserted) {
        subsets.push_back(closure);
        work.push(it->second);
      }
      // Transition recorded after all states are known (resize below).
      if (dfa.next.size() <
          (static_cast<size_t>(id) + 1) * alphabet_size) {
        dfa.next.resize((static_cast<size_t>(id) + 1) * alphabet_size, 0);
      }
      dfa.next[static_cast<size_t>(id) * alphabet_size + sym] = it->second;
    }
  }
  dfa.state_count = static_cast<int>(subsets.size());
  dfa.next.resize(static_cast<size_t>(dfa.state_count) * alphabet_size, 0);
  dfa.is_final.assign(dfa.state_count, false);
  for (int i = 0; i < dfa.state_count; ++i) {
    dfa.is_final[i] = subsets[i].contains(accept);
  }
  return dfa;
}

/// Moore partition-refinement minimization (keeps state 0 the start).
Dfa Minimize(const Dfa& dfa) {
  int n = dfa.state_count;
  std::vector<int> part(n);
  for (int i = 0; i < n; ++i) part[i] = dfa.is_final[i] ? 1 : 0;

  while (true) {
    // Signature: (part, parts of successors per symbol).
    std::map<std::vector<int>, int> sig_ids;
    std::vector<int> next_part(n);
    for (int i = 0; i < n; ++i) {
      std::vector<int> sig;
      sig.reserve(dfa.alphabet_size + 1);
      sig.push_back(part[i]);
      for (int sym = 0; sym < dfa.alphabet_size; ++sym) {
        sig.push_back(part[dfa.Next(i, sym)]);
      }
      auto [it, inserted] =
          sig_ids.try_emplace(sig, static_cast<int>(sig_ids.size()));
      next_part[i] = it->second;
    }
    if (next_part == part) break;
    part = std::move(next_part);
  }

  // Renumber so the start state's class becomes 0.
  int classes = *std::max_element(part.begin(), part.end()) + 1;
  std::vector<int> remap(classes, -1);
  int next_id = 0;
  remap[part[0]] = next_id++;
  for (int i = 0; i < n; ++i) {
    if (remap[part[i]] == -1) remap[part[i]] = next_id++;
  }

  Dfa out;
  out.alphabet_size = dfa.alphabet_size;
  out.state_count = classes;
  out.next.assign(static_cast<size_t>(classes) * dfa.alphabet_size, 0);
  out.is_final.assign(classes, false);
  for (int i = 0; i < n; ++i) {
    int c = remap[part[i]];
    out.is_final[c] = dfa.is_final[i];
    for (int sym = 0; sym < dfa.alphabet_size; ++sym) {
      out.next[static_cast<size_t>(c) * dfa.alphabet_size + sym] =
          remap[part[dfa.Next(i, sym)]];
    }
  }
  return out;
}

Pattern AnySymbol(int alphabet_size) {
  std::vector<Pattern> symbols;
  symbols.reserve(alphabet_size);
  for (int s = 0; s < alphabet_size; ++s) symbols.push_back(Pattern::Symbol(s));
  return Pattern::Or(std::move(symbols));
}

}  // namespace

std::string Dfa::ToString() const {
  std::string out = StrFormat("DFA: %d states, alphabet %d\n", state_count,
                              alphabet_size);
  for (int s = 0; s < state_count; ++s) {
    out += StrFormat("  state %d%s:", s, is_final[s] ? " [final]" : "");
    for (int sym = 0; sym < alphabet_size; ++sym) {
      out += StrFormat(" %d->%d", sym, Next(s, sym));
    }
    out += "\n";
  }
  return out;
}

Dfa CompileDfa(const Pattern& pattern, int alphabet_size) {
  Nfa nfa;
  Fragment f = Build(nfa, pattern);
  return Minimize(SubsetConstruct(nfa, f.start, f.accept, alphabet_size));
}

Dfa CompileStreamingDfa(const Pattern& pattern, int alphabet_size) {
  Pattern copy = pattern;
  Pattern streaming = Pattern::Seq(
      {Pattern::Star(AnySymbol(alphabet_size)), std::move(copy)});
  return CompileDfa(streaming, alphabet_size);
}

std::vector<size_t> Detect(const Dfa& dfa, const std::vector<int>& stream) {
  std::vector<size_t> detections;
  int state = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    int sym = stream[i];
    if (sym < 0 || sym >= dfa.alphabet_size) continue;
    state = dfa.Next(state, sym);
    if (dfa.is_final[state]) detections.push_back(i);
  }
  return detections;
}

}  // namespace tcmf::cep
