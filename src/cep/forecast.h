#ifndef TCMF_CEP_FORECAST_H_
#define TCMF_CEP_FORECAST_H_

#include <functional>
#include <string>
#include <vector>

#include "cep/pmc.h"
#include "common/position.h"
#include "synopses/critical_points.h"

namespace tcmf::cep {

/// An emitted forecast: at stream index `at`, the engine predicted the
/// complex event would be detected between `at + start` and `at + end`
/// (event-count distance), with waiting-time mass `prob`.
struct Forecast {
  size_t at = 0;
  int start = 0;
  int end = 0;
  double prob = 0.0;
};

/// The online recognition & forecasting engine (the Wayeb system of
/// Section 6): tracks the streaming DFA state and input context, emits a
/// detection whenever the DFA reaches a final state, and per event emits
/// the smallest forecast interval meeting the threshold.
class WayebEngine {
 public:
  struct Options {
    double threshold = 0.5;
    int horizon = 50;
    /// When true a new forecast is only emitted after the previous one's
    /// interval has elapsed or a detection occurred.
    bool suppress_overlapping = true;
  };

  WayebEngine(const Dfa& dfa, const MarkovInputModel& input,
              const Options& options);

  struct StepResult {
    bool detected = false;
    bool forecast_emitted = false;
    Forecast forecast;
  };

  /// Processes one symbol.
  StepResult Observe(int symbol);

  size_t events_processed() const { return index_; }
  const PatternMarkovChain& pmc() const { return pmc_; }

 private:
  PatternMarkovChain pmc_;
  Options options_;
  int dfa_state_ = 0;
  int context_;
  size_t index_ = 0;
  /// Precomputed per-PMC-state smallest intervals.
  std::vector<std::optional<PatternMarkovChain::Interval>> intervals_;
  size_t suppressed_until_ = 0;
};

/// Forecast quality metrics for Figure 8.
struct ForecastScore {
  size_t forecasts = 0;
  size_t correct = 0;   ///< a detection fell inside the interval
  double precision = 0.0;
  double mean_spread = 0.0;  ///< mean interval length
};

/// Runs engine over `stream` and scores every emitted forecast against the
/// actual detections.
ForecastScore ScoreForecasts(const Dfa& dfa, const MarkovInputModel& input,
                             const std::vector<int>& stream, double threshold,
                             int horizon, bool suppress_overlapping = true);

/// Heading-bucket symbols for turn events (the NorthToSouthReversal
/// pattern of Section 6): N/E/S/W ChangeInHeading events plus a catch-all
/// "other" symbol for every other critical point.
enum HeadingSymbol : int {
  kTurnNorth = 0,
  kTurnEast = 1,
  kTurnSouth = 2,
  kTurnWest = 3,
  kOther = 4,
  kHeadingSymbolCount = 5,
};

/// Maps a critical point to its HeadingSymbol.
int CriticalPointSymbol(const synopses::CriticalPoint& cp);

/// Attribute-predicate symbol classifier — a step toward the
/// "relationality" challenge of Section 6 (handling events with
/// attributes and predicates like IsHeading(North) without a separate
/// pre-processing stage). Each named predicate claims one symbol; an
/// event maps to the first predicate it satisfies, or to the implicit
/// final "other" symbol. Patterns are then written over predicate names.
class SymbolClassifier {
 public:
  using Predicate = std::function<bool(const synopses::CriticalPoint&)>;

  /// Registers a predicate; returns its symbol index.
  int Define(std::string name, Predicate predicate);

  /// First-match classification; events matching nothing map to
  /// other_symbol() (always = predicate count).
  int Classify(const synopses::CriticalPoint& cp) const;

  /// Alphabet size including the implicit "other" symbol.
  int alphabet_size() const { return static_cast<int>(names_.size()) + 1; }
  int other_symbol() const { return static_cast<int>(names_.size()); }

  /// Symbol index of a named predicate; -1 when unknown.
  int SymbolOf(const std::string& name) const;
  const std::string& NameOf(int symbol) const;

  /// Compiles a pattern written over predicate names, e.g.
  /// "north (north|east)* south" with the names defined on this
  /// classifier. Whitespace-separated names with (), |, *, + as in
  /// ParsePattern.
  Result<Pattern> CompileNamedPattern(const std::string& text) const;

 private:
  std::vector<std::string> names_;
  std::vector<Predicate> predicates_;
};

/// The classifier behind CriticalPointSymbol: heading buckets north/
/// east/south/west on ChangeInHeading events.
SymbolClassifier MakeHeadingClassifier();

/// The paper's example pattern:
///   R = TurnNorth (TurnNorth + TurnEast)* TurnSouth
Pattern NorthToSouthReversalPattern();

}  // namespace tcmf::cep

#endif  // TCMF_CEP_FORECAST_H_
