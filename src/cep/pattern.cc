#include "cep/pattern.h"

#include <cctype>

namespace tcmf::cep {

namespace {

/// Recursive-descent parser over the grammar documented in pattern.h.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Pattern> Parse() {
    Result<Pattern> expr = ParseExpr();
    if (!expr.ok()) return expr;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(pos_));
    }
    return expr;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<Pattern> ParseExpr() {
    Result<Pattern> first = ParseSeq();
    if (!first.ok()) return first;
    std::vector<Pattern> options;
    options.push_back(std::move(first).value());
    while (Peek('|')) {
      ++pos_;
      Result<Pattern> next = ParseSeq();
      if (!next.ok()) return next;
      options.push_back(std::move(next).value());
    }
    if (options.size() == 1) return std::move(options[0]);
    return Pattern::Or(std::move(options));
  }

  Result<Pattern> ParseSeq() {
    std::vector<Pattern> parts;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] == ')' || text_[pos_] == '|') {
        break;
      }
      Result<Pattern> part = ParsePostfix();
      if (!part.ok()) return part;
      parts.push_back(std::move(part).value());
    }
    if (parts.empty()) return Status::ParseError("empty sequence");
    if (parts.size() == 1) return std::move(parts[0]);
    return Pattern::Seq(std::move(parts));
  }

  Result<Pattern> ParsePostfix() {
    Result<Pattern> atom = ParseAtom();
    if (!atom.ok()) return atom;
    Pattern out = std::move(atom).value();
    while (pos_ < text_.size() &&
           (text_[pos_] == '*' || text_[pos_] == '+')) {
      out = text_[pos_] == '*' ? Pattern::Star(std::move(out))
                               : Pattern::Plus(std::move(out));
      ++pos_;
    }
    return out;
  }

  Result<Pattern> ParseAtom() {
    SkipWs();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    if (text_[pos_] == '(') {
      ++pos_;
      Result<Pattern> inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (!Peek(')')) return Status::ParseError("missing ')'");
      ++pos_;
      return inner;
    }
    if (!std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Status::ParseError("expected symbol or '(' at offset " +
                                std::to_string(pos_));
    }
    int value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    return Pattern::Symbol(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Pattern> ParsePattern(const std::string& text) {
  return Parser(text).Parse();
}

Pattern Pattern::Symbol(int symbol) {
  Pattern p;
  p.kind_ = Kind::kSymbol;
  p.symbol_ = symbol;
  return p;
}

Pattern Pattern::Seq(std::vector<Pattern> parts) {
  Pattern p;
  p.kind_ = Kind::kSeq;
  p.children_ = std::move(parts);
  return p;
}

Pattern Pattern::Or(std::vector<Pattern> parts) {
  Pattern p;
  p.kind_ = Kind::kOr;
  p.children_ = std::move(parts);
  return p;
}

Pattern Pattern::Star(Pattern inner) {
  Pattern p;
  p.kind_ = Kind::kStar;
  p.children_.push_back(std::move(inner));
  return p;
}

Pattern Pattern::Plus(Pattern inner) {
  Pattern copy = inner;
  return Seq({std::move(copy), Star(std::move(inner))});
}

std::string Pattern::ToString() const {
  switch (kind_) {
    case Kind::kSymbol:
      return std::to_string(symbol_);
    case Kind::kSeq: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " ";
        out += children_[i].ToString();
      }
      return out + ")";
    }
    case Kind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += "|";
        out += children_[i].ToString();
      }
      return out + ")";
    }
    case Kind::kStar:
      return children_[0].ToString() + "*";
  }
  return "?";
}

}  // namespace tcmf::cep
