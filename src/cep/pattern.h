#ifndef TCMF_CEP_PATTERN_H_
#define TCMF_CEP_PATTERN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcmf::cep {

/// A symbolic regular-expression pattern over a finite event alphabet
/// {0, .., alphabet_size-1}: the complex-event definition language of
/// Section 6 (sequence, disjunction, iteration).
class Pattern {
 public:
  enum class Kind { kSymbol, kSeq, kOr, kStar };

  /// Single event type.
  static Pattern Symbol(int symbol);
  /// Concatenation: parts in order.
  static Pattern Seq(std::vector<Pattern> parts);
  /// Disjunction.
  static Pattern Or(std::vector<Pattern> parts);
  /// Kleene iteration (zero or more).
  static Pattern Star(Pattern inner);
  /// One or more (sugar: P Seq Star(P)).
  static Pattern Plus(Pattern inner);

  Kind kind() const { return kind_; }
  int symbol() const { return symbol_; }
  const std::vector<Pattern>& children() const { return children_; }

  /// Text rendering for logs, e.g. "(0 (0|1)* 2)".
  std::string ToString() const;

 private:
  Pattern() = default;

  Kind kind_ = Kind::kSymbol;
  int symbol_ = 0;
  std::vector<Pattern> children_;
};

/// Parses the textual pattern language used by ToString():
///   expr    := seq ('|' seq)*          (alternation, lowest precedence)
///   seq     := postfix+                (whitespace-separated sequence)
///   postfix := atom ('*' | '+')*       (iteration)
///   atom    := INTEGER | '(' expr ')'
/// e.g. "0 (0|1)* 2" is the NorthToSouthReversal shape. Symbols must be
/// non-negative integers.
Result<Pattern> ParsePattern(const std::string& text);

}  // namespace tcmf::cep

#endif  // TCMF_CEP_PATTERN_H_
