#include "cep/mining.h"

#include <algorithm>
#include <map>

namespace tcmf::cep {

namespace {

/// A projected occurrence: sequence index + position after the last
/// matched symbol.
struct Projection {
  size_t sequence;
  size_t next_pos;
};

/// Extends the projections by one symbol under the gap constraint;
/// returns per-symbol projected databases.
std::map<int, std::vector<Projection>> Extend(
    const std::vector<std::vector<int>>& sequences,
    const std::vector<Projection>& projections, size_t max_gap) {
  std::map<int, std::vector<Projection>> out;
  for (const Projection& proj : projections) {
    const std::vector<int>& seq = sequences[proj.sequence];
    size_t limit = max_gap == SIZE_MAX
                       ? seq.size()
                       : std::min(seq.size(), proj.next_pos + max_gap + 1);
    for (size_t pos = proj.next_pos; pos < limit; ++pos) {
      // All occurrence positions are kept (with a gap constraint the
      // earliest match alone would miss later, still-extensible ones);
      // exact duplicates from overlapping parents are dropped.
      auto& list = out[seq[pos]];
      if (!list.empty() && list.back().sequence == proj.sequence &&
          list.back().next_pos == pos + 1) {
        continue;
      }
      list.push_back({proj.sequence, pos + 1});
    }
  }
  return out;
}

size_t DistinctSequences(const std::vector<Projection>& projections) {
  size_t count = 0;
  size_t last = SIZE_MAX;
  for (const Projection& p : projections) {
    if (p.sequence != last) {
      ++count;
      last = p.sequence;
    }
  }
  return count;
}

void Mine(const std::vector<std::vector<int>>& sequences,
          const MiningOptions& options, std::vector<int>& prefix,
          const std::vector<Projection>& projections,
          std::vector<SequentialPattern>* out) {
  if (prefix.size() >= options.max_length) return;
  for (auto& [symbol, projected] : Extend(sequences, projections,
                                          prefix.empty() ? SIZE_MAX
                                                         : options.max_gap)) {
    size_t support = DistinctSequences(projected);
    if (support < options.min_support) continue;
    prefix.push_back(symbol);
    out->push_back({prefix, support});
    Mine(sequences, options, prefix, projected, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<SequentialPattern> MineSequentialPatterns(
    const std::vector<std::vector<int>>& sequences,
    const MiningOptions& options) {
  std::vector<Projection> root;
  root.reserve(sequences.size());
  for (size_t i = 0; i < sequences.size(); ++i) root.push_back({i, 0});
  std::vector<SequentialPattern> out;
  std::vector<int> prefix;
  Mine(sequences, options, prefix, root, &out);
  std::sort(out.begin(), out.end(),
            [](const SequentialPattern& a, const SequentialPattern& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.symbols.size() != b.symbols.size()) {
                return a.symbols.size() > b.symbols.size();
              }
              return a.symbols < b.symbols;
            });
  return out;
}

Pattern ToGapTolerantPattern(const SequentialPattern& mined,
                             int alphabet_size, size_t max_gap) {
  std::vector<Pattern> any_symbols;
  any_symbols.reserve(alphabet_size);
  for (int s = 0; s < alphabet_size; ++s) {
    any_symbols.push_back(Pattern::Symbol(s));
  }
  Pattern any = Pattern::Or(any_symbols);

  std::vector<Pattern> parts;
  for (size_t i = 0; i < mined.symbols.size(); ++i) {
    if (i > 0 && max_gap > 0) {
      // (epsilon | any | any any | ... ) up to max_gap fillers, expressed
      // without epsilon as optional nesting: each filler slot is
      // (any | nothing) — encoded as Or over explicit lengths.
      std::vector<Pattern> gap_options;
      for (size_t k = 1; k <= max_gap; ++k) {
        std::vector<Pattern> fill(k, any);
        gap_options.push_back(k == 1 ? any : Pattern::Seq(std::move(fill)));
      }
      // Zero-length gap handled by alternating the whole remainder:
      // Seq(prev, Or(next, gap next)). Simpler: wrap gap as
      // Or(gap_options)* bounded is awkward in this AST, so use
      // Star(any) limited by construction: we emulate the bound with
      // explicit alternatives including the empty case via pattern
      // algebra below.
      // Build: Or(next, Seq(g1, next), Seq(g2, next), ...)
      std::vector<Pattern> alternatives;
      alternatives.push_back(Pattern::Symbol(mined.symbols[i]));
      for (Pattern& g : gap_options) {
        alternatives.push_back(
            Pattern::Seq({g, Pattern::Symbol(mined.symbols[i])}));
      }
      parts.push_back(Pattern::Or(std::move(alternatives)));
    } else {
      parts.push_back(Pattern::Symbol(mined.symbols[i]));
    }
  }
  if (parts.size() == 1) return std::move(parts[0]);
  return Pattern::Seq(std::move(parts));
}

Pattern ToSequencePattern(const SequentialPattern& mined) {
  std::vector<Pattern> parts;
  parts.reserve(mined.symbols.size());
  for (int s : mined.symbols) parts.push_back(Pattern::Symbol(s));
  if (parts.size() == 1) return std::move(parts[0]);
  return Pattern::Seq(std::move(parts));
}

}  // namespace tcmf::cep
