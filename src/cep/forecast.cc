#include "cep/forecast.h"

#include <algorithm>
#include <cctype>

namespace tcmf::cep {

WayebEngine::WayebEngine(const Dfa& dfa, const MarkovInputModel& input,
                         const Options& options)
    : pmc_(dfa, input), options_(options), context_(input.InitialContext()) {
  intervals_.resize(pmc_.state_count());
  for (int s = 0; s < pmc_.state_count(); ++s) {
    std::vector<double> wt = pmc_.WaitingTime(s, options_.horizon);
    intervals_[s] = PatternMarkovChain::SmallestInterval(wt,
                                                         options_.threshold);
  }
}

WayebEngine::StepResult WayebEngine::Observe(int symbol) {
  StepResult out;
  if (symbol < 0 || symbol >= pmc_.dfa().alphabet_size) {
    ++index_;
    return out;
  }
  dfa_state_ = pmc_.dfa().Next(dfa_state_, symbol);
  context_ = pmc_.input().UpdateContext(context_, symbol);
  out.detected = pmc_.dfa().is_final[dfa_state_];
  if (out.detected) suppressed_until_ = 0;

  if (!out.detected) {
    int pmc_state = pmc_.StateOf(dfa_state_, context_);
    const auto& interval = intervals_[pmc_state];
    bool suppressed =
        options_.suppress_overlapping && index_ < suppressed_until_;
    if (interval.has_value() && !suppressed) {
      out.forecast_emitted = true;
      out.forecast.at = index_;
      out.forecast.start = interval->start;
      out.forecast.end = interval->end;
      out.forecast.prob = interval->prob;
      suppressed_until_ = index_ + interval->end + 1;
    }
  }
  ++index_;
  return out;
}

ForecastScore ScoreForecasts(const Dfa& dfa, const MarkovInputModel& input,
                             const std::vector<int>& stream, double threshold,
                             int horizon, bool suppress_overlapping) {
  WayebEngine::Options options;
  options.threshold = threshold;
  options.horizon = horizon;
  options.suppress_overlapping = suppress_overlapping;
  WayebEngine engine(dfa, input, options);

  std::vector<size_t> detections;
  std::vector<Forecast> forecasts;
  for (size_t i = 0; i < stream.size(); ++i) {
    WayebEngine::StepResult r = engine.Observe(stream[i]);
    if (r.detected) detections.push_back(i);
    if (r.forecast_emitted) forecasts.push_back(r.forecast);
  }

  ForecastScore score;
  score.forecasts = forecasts.size();
  double spread_sum = 0.0;
  for (const Forecast& f : forecasts) {
    size_t lo = f.at + f.start;
    size_t hi = f.at + f.end;
    spread_sum += f.end - f.start + 1;
    auto it = std::lower_bound(detections.begin(), detections.end(), lo);
    if (it != detections.end() && *it <= hi) ++score.correct;
  }
  if (score.forecasts > 0) {
    score.precision =
        static_cast<double>(score.correct) / score.forecasts;
    score.mean_spread = spread_sum / score.forecasts;
  }
  return score;
}

int CriticalPointSymbol(const synopses::CriticalPoint& cp) {
  if (cp.type != synopses::CriticalPointType::kChangeInHeading) {
    return kOther;
  }
  double h = cp.pos.heading_deg;
  if (h >= 315.0 || h < 45.0) return kTurnNorth;
  if (h < 135.0) return kTurnEast;
  if (h < 225.0) return kTurnSouth;
  return kTurnWest;
}


int SymbolClassifier::Define(std::string name, Predicate predicate) {
  names_.push_back(std::move(name));
  predicates_.push_back(std::move(predicate));
  return static_cast<int>(names_.size()) - 1;
}

int SymbolClassifier::Classify(const synopses::CriticalPoint& cp) const {
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (predicates_[i](cp)) return static_cast<int>(i);
  }
  return other_symbol();
}

int SymbolClassifier::SymbolOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  if (name == "other") return other_symbol();
  return -1;
}

const std::string& SymbolClassifier::NameOf(int symbol) const {
  static const std::string kOtherName = "other";
  if (symbol >= 0 && symbol < static_cast<int>(names_.size())) {
    return names_[symbol];
  }
  return kOtherName;
}

Result<Pattern> SymbolClassifier::CompileNamedPattern(
    const std::string& text) const {
  // Replace every name token with its symbol index, then reuse the
  // numeric pattern parser.
  std::string numeric;
  size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) ||
              text[end] == '_')) {
        ++end;
      }
      std::string name = text.substr(pos, end - pos);
      int symbol = SymbolOf(name);
      if (symbol < 0) {
        return Status::ParseError("unknown predicate name: " + name);
      }
      numeric += std::to_string(symbol);
      pos = end;
    } else {
      numeric += c;
      ++pos;
    }
  }
  return ParsePattern(numeric);
}

SymbolClassifier MakeHeadingClassifier() {
  using synopses::CriticalPointType;
  SymbolClassifier classifier;
  auto turn_between = [](double lo, double hi) {
    return [lo, hi](const synopses::CriticalPoint& cp) {
      if (cp.type != CriticalPointType::kChangeInHeading) return false;
      double h = cp.pos.heading_deg;
      if (lo > hi) return h >= lo || h < hi;  // wraps through north
      return h >= lo && h < hi;
    };
  };
  classifier.Define("north", turn_between(315.0, 45.0));
  classifier.Define("east", turn_between(45.0, 135.0));
  classifier.Define("south", turn_between(135.0, 225.0));
  classifier.Define("west", turn_between(225.0, 315.0));
  return classifier;
}

Pattern NorthToSouthReversalPattern() {
  return Pattern::Seq(
      {Pattern::Symbol(kTurnNorth),
       Pattern::Star(Pattern::Or(
           {Pattern::Symbol(kTurnNorth), Pattern::Symbol(kTurnEast)})),
       Pattern::Symbol(kTurnSouth)});
}

}  // namespace tcmf::cep
