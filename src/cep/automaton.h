#ifndef TCMF_CEP_AUTOMATON_H_
#define TCMF_CEP_AUTOMATON_H_

#include <string>
#include <vector>

#include "cep/pattern.h"

namespace tcmf::cep {

/// A deterministic finite automaton over the event alphabet, with a total
/// transition function (table form). State 0 is the start state.
struct Dfa {
  int alphabet_size = 0;
  int state_count = 0;
  /// next[state * alphabet_size + symbol]
  std::vector<int> next;
  std::vector<bool> is_final;

  int Next(int state, int symbol) const {
    return next[static_cast<size_t>(state) * alphabet_size + symbol];
  }

  /// Multi-line table rendering (used by the Figure 6 bench).
  std::string ToString() const;
};

/// Compiles the *streaming* DFA of a pattern R: the automaton of Σ*·R,
/// which is in a final state exactly when some suffix of the stream read
/// so far matches R — the recognition semantics of Section 6 (a detection
/// occurs every time the DFA reaches a final state).
Dfa CompileStreamingDfa(const Pattern& pattern, int alphabet_size);

/// Compiles the plain DFA of R itself (matching from the start only) —
/// used in tests to validate the construction.
Dfa CompileDfa(const Pattern& pattern, int alphabet_size);

/// Runs the DFA over a symbol sequence; returns the indexes at which a
/// detection (final state) occurred.
std::vector<size_t> Detect(const Dfa& dfa, const std::vector<int>& stream);

}  // namespace tcmf::cep

#endif  // TCMF_CEP_AUTOMATON_H_
