#ifndef TCMF_CEP_MINING_H_
#define TCMF_CEP_MINING_H_

#include <cstddef>
#include <vector>

#include "cep/pattern.h"

namespace tcmf::cep {

/// Sequential pattern mining over event-symbol sequences: the offline
/// "complex event analyser [that] operates on the historical data and
/// discovers patterns of events to be predicted" (Section 3), also
/// addressing the conclusions' challenge of "learning/refining patterns
/// by exploiting examples". PrefixSpan-style projection with an optional
/// gap constraint.
struct SequentialPattern {
  std::vector<int> symbols;
  /// Number of input sequences containing the pattern.
  size_t support = 0;
};

struct MiningOptions {
  /// Minimum number of sequences a pattern must occur in.
  size_t min_support = 2;
  /// Maximum pattern length.
  size_t max_length = 5;
  /// Maximum number of skipped events between consecutive pattern
  /// symbols (0 = strictly contiguous; SIZE_MAX = classic subsequences).
  size_t max_gap = 2;
};

/// Mines frequent sequential patterns; results are sorted by support
/// (descending), then by length (descending), then lexicographically.
/// Single-symbol patterns are included.
std::vector<SequentialPattern> MineSequentialPatterns(
    const std::vector<std::vector<int>>& sequences,
    const MiningOptions& options);

/// Lifts a mined pattern into the forecasting engine's pattern language
/// (a plain sequence; the analyst generalizes it with iteration or
/// disjunction as needed).
Pattern ToSequencePattern(const SequentialPattern& mined);

/// Lifts a mined pattern with the same gap semantics it was mined under:
/// between consecutive symbols, up to `max_gap` arbitrary events of the
/// `alphabet_size`-symbol alphabet may intervene. This is the pattern to
/// hand to the forecasting engine so detection frequency matches the
/// mined support.
Pattern ToGapTolerantPattern(const SequentialPattern& mined,
                             int alphabet_size, size_t max_gap);

}  // namespace tcmf::cep

#endif  // TCMF_CEP_MINING_H_
