#ifndef TCMF_CEP_PMC_H_
#define TCMF_CEP_PMC_H_

#include <optional>
#include <vector>

#include "cep/automaton.h"

namespace tcmf::cep {

/// Order-m Markov model of the input event stream: P(next symbol | last m
/// symbols). Order 0 = i.i.d. Contexts are encoded base-alphabet_size;
/// before m symbols have been seen the shorter history is padded with
/// symbol 0.
class MarkovInputModel {
 public:
  MarkovInputModel(int alphabet_size, int order);

  /// Maximum-likelihood fit with Laplace smoothing over a training stream.
  void Fit(const std::vector<int>& stream, double smoothing = 1.0);

  /// Online update for non-stationary streams (the Section 6 challenge:
  /// "the statistical properties of a stream may change over time"):
  /// exponentially decays past counts at `decay` per observation and adds
  /// the new transition, so the model tracks drifting processes. Call
  /// with each symbol in stream order; mix freely with an initial Fit().
  void ObserveOnline(int symbol, double decay = 0.999);

  double Prob(int context, int symbol) const;

  int alphabet_size() const { return alphabet_size_; }
  int order() const { return order_; }
  int context_count() const { return context_count_; }

  /// Context after observing `symbol` in `context` (sliding window).
  int UpdateContext(int context, int symbol) const;
  /// Initial (all-zero-padded) context.
  int InitialContext() const { return 0; }

 private:
  int alphabet_size_;
  int order_;
  int context_count_;
  /// probs_[context * alphabet + symbol]
  std::vector<double> probs_;
  /// Decayed counts backing ObserveOnline (lazily initialized from
  /// probs_ on the first online observation).
  std::vector<double> online_counts_;
  int online_context_ = 0;
  bool online_started_ = false;
};

/// Pattern Markov Chain (Alevizos et al., DEBS 2017 — Section 6): the
/// product of the streaming DFA with the order-m input model. Provides
/// waiting-time distributions (probability that the DFA first reaches a
/// final state in exactly k steps) per PMC state, and the smallest
/// forecast interval whose mass exceeds a threshold.
class PatternMarkovChain {
 public:
  PatternMarkovChain(const Dfa& dfa, const MarkovInputModel& input);

  int state_count() const { return state_count_; }
  int StateOf(int dfa_state, int context) const {
    return dfa_state * input_.context_count() + context;
  }
  int DfaStateOf(int pmc_state) const {
    return pmc_state / input_.context_count();
  }
  bool IsFinal(int pmc_state) const {
    return dfa_.is_final[DfaStateOf(pmc_state)];
  }

  /// Waiting-time distribution: element k-1 is P(first hit of a final
  /// state in exactly k steps | pmc_state), for k = 1..horizon.
  std::vector<double> WaitingTime(int pmc_state, int horizon) const;

  /// A forecast interval [start, end] in steps ahead (1-based, inclusive)
  /// with total waiting-time mass `prob`.
  struct Interval {
    int start = 0;
    int end = 0;
    double prob = 0.0;
  };

  /// Smallest-length interval of the waiting-time distribution with mass
  /// >= theta (single-pass two-pointer scan, as in the paper); nullopt
  /// when even the full horizon cannot reach theta.
  static std::optional<Interval> SmallestInterval(
      const std::vector<double>& waiting_time, double theta);

  const Dfa& dfa() const { return dfa_; }
  const MarkovInputModel& input() const { return input_; }

 private:
  struct Edge {
    int target;
    double prob;
    bool target_final;
  };

  Dfa dfa_;
  MarkovInputModel input_;
  int state_count_;
  std::vector<std::vector<Edge>> edges_;
};

}  // namespace tcmf::cep

#endif  // TCMF_CEP_PMC_H_
