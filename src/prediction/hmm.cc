#include "prediction/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tcmf::prediction {

namespace {

void NormalizeRow(std::vector<double>& row) {
  double sum = 0.0;
  for (double v : row) sum += v;
  if (sum <= 0.0) {
    double u = 1.0 / row.size();
    for (double& v : row) v = u;
    return;
  }
  for (double& v : row) v /= sum;
}

}  // namespace

Hmm::Hmm(size_t states, size_t symbols)
    : n_(std::max<size_t>(1, states)),
      m_(std::max<size_t>(1, symbols)),
      a_(n_, std::vector<double>(n_, 1.0 / n_)),
      b_(n_, std::vector<double>(m_, 1.0 / m_)),
      pi_(n_, 1.0 / n_) {}

void Hmm::InitRandom(Rng& rng) {
  for (auto& row : a_) {
    for (double& v : row) v = rng.Uniform(0.5, 1.5);
    NormalizeRow(row);
  }
  for (auto& row : b_) {
    for (double& v : row) v = rng.Uniform(0.5, 1.5);
    NormalizeRow(row);
  }
  for (double& v : pi_) v = rng.Uniform(0.5, 1.5);
  NormalizeRow(pi_);
}

bool Hmm::Forward(const std::vector<int>& seq,
                  std::vector<std::vector<double>>* alpha,
                  std::vector<double>* scale) const {
  const size_t len = seq.size();
  alpha->assign(len, std::vector<double>(n_, 0.0));
  scale->assign(len, 0.0);
  if (len == 0) return false;
  for (size_t i = 0; i < n_; ++i) {
    int o = seq[0];
    (*alpha)[0][i] = pi_[i] * (o >= 0 && o < static_cast<int>(m_)
                                   ? b_[i][o]
                                   : 0.0);
    (*scale)[0] += (*alpha)[0][i];
  }
  if ((*scale)[0] <= 0.0) return false;
  for (size_t i = 0; i < n_; ++i) (*alpha)[0][i] /= (*scale)[0];

  for (size_t t = 1; t < len; ++t) {
    int o = seq[t];
    if (o < 0 || o >= static_cast<int>(m_)) return false;
    for (size_t j = 0; j < n_; ++j) {
      double sum = 0.0;
      for (size_t i = 0; i < n_; ++i) sum += (*alpha)[t - 1][i] * a_[i][j];
      (*alpha)[t][j] = sum * b_[j][o];
      (*scale)[t] += (*alpha)[t][j];
    }
    if ((*scale)[t] <= 0.0) return false;
    for (size_t j = 0; j < n_; ++j) (*alpha)[t][j] /= (*scale)[t];
  }
  return true;
}

double Hmm::LogLikelihood(const std::vector<int>& sequence) const {
  std::vector<std::vector<double>> alpha;
  std::vector<double> scale;
  if (!Forward(sequence, &alpha, &scale)) {
    return -std::numeric_limits<double>::infinity();
  }
  double ll = 0.0;
  for (double s : scale) ll += std::log(s);
  return ll;
}

double Hmm::Train(const std::vector<std::vector<int>>& sequences,
                  int iterations, double tol) {
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < iterations; ++iter) {
    // Accumulators with Laplace smoothing.
    std::vector<std::vector<double>> a_num(n_, std::vector<double>(n_, 1e-6));
    std::vector<std::vector<double>> b_num(n_, std::vector<double>(m_, 1e-6));
    std::vector<double> pi_num(n_, 1e-6);
    double total_ll = 0.0;

    for (const std::vector<int>& seq : sequences) {
      const size_t len = seq.size();
      if (len == 0) continue;
      std::vector<std::vector<double>> alpha;
      std::vector<double> scale;
      if (!Forward(seq, &alpha, &scale)) continue;
      for (double s : scale) total_ll += std::log(s);

      // Scaled backward pass.
      std::vector<std::vector<double>> beta(len,
                                            std::vector<double>(n_, 0.0));
      for (size_t i = 0; i < n_; ++i) beta[len - 1][i] = 1.0;
      for (size_t t = len - 1; t-- > 0;) {
        int o = seq[t + 1];
        for (size_t i = 0; i < n_; ++i) {
          double sum = 0.0;
          for (size_t j = 0; j < n_; ++j) {
            sum += a_[i][j] * b_[j][o] * beta[t + 1][j];
          }
          beta[t][i] = sum / scale[t + 1];
        }
      }

      // Gamma / xi accumulation.
      for (size_t t = 0; t < len; ++t) {
        double norm = 0.0;
        for (size_t i = 0; i < n_; ++i) norm += alpha[t][i] * beta[t][i];
        if (norm <= 0.0) continue;
        for (size_t i = 0; i < n_; ++i) {
          double gamma = alpha[t][i] * beta[t][i] / norm;
          b_num[i][seq[t]] += gamma;
          if (t == 0) pi_num[i] += gamma;
        }
        if (t + 1 < len) {
          int o = seq[t + 1];
          double xin = 0.0;
          for (size_t i = 0; i < n_; ++i) {
            for (size_t j = 0; j < n_; ++j) {
              xin += alpha[t][i] * a_[i][j] * b_[j][o] * beta[t + 1][j];
            }
          }
          if (xin > 0.0) {
            for (size_t i = 0; i < n_; ++i) {
              for (size_t j = 0; j < n_; ++j) {
                a_num[i][j] += alpha[t][i] * a_[i][j] * b_[j][o] *
                               beta[t + 1][j] / xin;
              }
            }
          }
        }
      }
    }

    for (size_t i = 0; i < n_; ++i) {
      NormalizeRow(a_num[i]);
      NormalizeRow(b_num[i]);
    }
    NormalizeRow(pi_num);
    a_ = std::move(a_num);
    b_ = std::move(b_num);
    pi_ = std::move(pi_num);

    if (std::isfinite(prev_ll) && total_ll - prev_ll < tol) {
      return total_ll;
    }
    prev_ll = total_ll;
  }
  return prev_ll;
}

std::vector<int> Hmm::Viterbi(const std::vector<int>& sequence) const {
  const size_t len = sequence.size();
  if (len == 0) return {};
  std::vector<std::vector<double>> delta(len, std::vector<double>(n_));
  std::vector<std::vector<int>> psi(len, std::vector<int>(n_, 0));
  const double kNegInf = -std::numeric_limits<double>::infinity();

  auto log_safe = [](double v) {
    return v > 0 ? std::log(v) : -1e30;
  };
  for (size_t i = 0; i < n_; ++i) {
    int o = sequence[0];
    delta[0][i] =
        log_safe(pi_[i]) +
        (o >= 0 && o < static_cast<int>(m_) ? log_safe(b_[i][o]) : kNegInf);
  }
  for (size_t t = 1; t < len; ++t) {
    int o = sequence[t];
    for (size_t j = 0; j < n_; ++j) {
      double best = kNegInf;
      int arg = 0;
      for (size_t i = 0; i < n_; ++i) {
        double v = delta[t - 1][i] + log_safe(a_[i][j]);
        if (v > best) {
          best = v;
          arg = static_cast<int>(i);
        }
      }
      delta[t][j] =
          best +
          (o >= 0 && o < static_cast<int>(m_) ? log_safe(b_[j][o]) : kNegInf);
      psi[t][j] = arg;
    }
  }
  std::vector<int> path(len);
  int arg = 0;
  double best = kNegInf;
  for (size_t i = 0; i < n_; ++i) {
    if (delta[len - 1][i] > best) {
      best = delta[len - 1][i];
      arg = static_cast<int>(i);
    }
  }
  path[len - 1] = arg;
  for (size_t t = len - 1; t-- > 0;) path[t] = psi[t + 1][path[t + 1]];
  return path;
}

std::vector<double> Hmm::PredictObservation(const std::vector<int>& prefix,
                                            int ahead) const {
  // State belief after the prefix.
  std::vector<double> belief = pi_;
  if (!prefix.empty()) {
    std::vector<std::vector<double>> alpha;
    std::vector<double> scale;
    if (Forward(prefix, &alpha, &scale)) {
      belief = alpha.back();
      NormalizeRow(belief);
    }
  }
  // Evolve `ahead - 1` transitions (the first prediction step applies one
  // transition when a prefix exists, none when predicting the first
  // observation from pi).
  int hops = prefix.empty() ? ahead - 1 : ahead;
  for (int h = 0; h < hops; ++h) {
    std::vector<double> next(n_, 0.0);
    for (size_t i = 0; i < n_; ++i) {
      for (size_t j = 0; j < n_; ++j) next[j] += belief[i] * a_[i][j];
    }
    belief = std::move(next);
  }
  std::vector<double> dist(m_, 0.0);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t k = 0; k < m_; ++k) dist[k] += belief[i] * b_[i][k];
  }
  return dist;
}

double Hmm::PredictExpectedValue(
    const std::vector<int>& prefix, int ahead,
    const std::vector<double>& symbol_values) const {
  std::vector<double> dist = PredictObservation(prefix, ahead);
  double expect = 0.0;
  for (size_t k = 0; k < m_ && k < symbol_values.size(); ++k) {
    expect += dist[k] * symbol_values[k];
  }
  return expect;
}

int Quantize(double value, double lo, double hi, int buckets) {
  if (buckets <= 1) return 0;
  double f = (value - lo) / (hi - lo);
  int b = static_cast<int>(f * buckets);
  return std::clamp(b, 0, buckets - 1);
}

double BucketCenter(int bucket, double lo, double hi, int buckets) {
  double width = (hi - lo) / buckets;
  return lo + (bucket + 0.5) * width;
}

}  // namespace tcmf::prediction
