#include "prediction/linalg.h"

#include <cmath>

namespace tcmf::prediction {

bool SolveLinearSystem(std::vector<std::vector<double>>& a,
                       std::vector<double>& b) {
  const size_t n = a.size();
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    // Eliminate below.
    for (size_t r = col + 1; r < n; ++r) {
      double f = a[r][col] / a[col][col];
      for (size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t c = i + 1; c < n; ++c) sum -= a[i][c] * b[c];
    b[i] = sum / a[i][i];
  }
  return true;
}

std::vector<double> LeastSquares(const std::vector<std::vector<double>>& m,
                                 const std::vector<double>& y) {
  if (m.empty()) return {};
  const size_t rows = m.size();
  const size_t cols = m[0].size();
  if (rows < cols) return {};
  // Normal equations: (M^T M) x = M^T y, with a small ridge term for
  // numerical stability on near-collinear windows.
  std::vector<std::vector<double>> mtm(cols, std::vector<double>(cols, 0.0));
  std::vector<double> mty(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < cols; ++i) {
      for (size_t j = 0; j < cols; ++j) mtm[i][j] += m[r][i] * m[r][j];
      mty[i] += m[r][i] * y[r];
    }
  }
  for (size_t i = 0; i < cols; ++i) mtm[i][i] += 1e-9;
  if (!SolveLinearSystem(mtm, mty)) return {};
  return mty;
}

}  // namespace tcmf::prediction
