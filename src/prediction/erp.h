#ifndef TCMF_PREDICTION_ERP_H_
#define TCMF_PREDICTION_ERP_H_

#include <vector>

#include "common/position.h"
#include "geom/geo.h"

namespace tcmf::prediction {

/// A reference point of an enriched trajectory: a spatial position plus the
/// enrichment feature vector the datAcron ontology links to it (weather
/// severity, aircraft/vessel class, temporal features...). The similarity
/// used by SemT-OPTICS decomposes into a spatio-temporal part and an
/// enrichment part (Section 5).
struct EnrichedPoint {
  geom::LonLat loc;
  double alt_m = 0.0;
  TimeMs t = 0;
  std::vector<double> features;
};

using EnrichedSequence = std::vector<EnrichedPoint>;

/// Weights of the decomposed distance.
struct ErpOptions {
  /// Scale dividing the spatial distance (meters) before mixing.
  double spatial_scale_m = 10000.0;
  double spatial_weight = 1.0;
  double feature_weight = 1.0;
  /// Gap element for the Real Penalty: a point at this cost substitutes a
  /// skipped element (classical ERP uses distance to a fixed origin; we
  /// use a constant penalty in normalized units).
  double gap_penalty = 1.0;
};

/// Pointwise enriched distance (normalized units).
double EnrichedPointDistance(const EnrichedPoint& a, const EnrichedPoint& b,
                             const ErpOptions& options);

/// Edit distance with Real Penalty between enriched sequences, O(n*m) DP.
/// Metric (unlike DTW) because the gap cost is fixed — the property [10]
/// establishes and SemT-OPTICS relies on.
double ErpDistance(const EnrichedSequence& a, const EnrichedSequence& b,
                   const ErpOptions& options);

}  // namespace tcmf::prediction

#endif  // TCMF_PREDICTION_ERP_H_
