#ifndef TCMF_PREDICTION_HMM_H_
#define TCMF_PREDICTION_HMM_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace tcmf::prediction {

/// Discrete hidden Markov model with Baum-Welch training, Viterbi
/// decoding, and forward prediction of future observation distributions —
/// the probabilistic engine of the paper's TP approaches (Section 5).
class Hmm {
 public:
  /// `states` hidden states, `symbols` observation alphabet size.
  Hmm(size_t states, size_t symbols);

  /// Randomizes parameters (rows normalized) — the Baum-Welch start point.
  void InitRandom(Rng& rng);

  /// Baum-Welch EM over observation sequences. Stops after `iterations`
  /// or when the total log-likelihood improves by less than `tol`.
  /// Returns the final total log-likelihood.
  double Train(const std::vector<std::vector<int>>& sequences,
               int iterations = 30, double tol = 1e-4);

  /// Log-likelihood of one sequence (forward algorithm, scaled).
  double LogLikelihood(const std::vector<int>& sequence) const;

  /// Most likely state path for a sequence.
  std::vector<int> Viterbi(const std::vector<int>& sequence) const;

  /// Distribution over observations at step `ahead` (1-based) given an
  /// observed prefix (may be empty: prediction from the initial
  /// distribution alone).
  std::vector<double> PredictObservation(const std::vector<int>& prefix,
                                         int ahead) const;

  /// Expected observation value at step `ahead`, mapping symbol k to
  /// `symbol_values[k]` (e.g. bucket centers of quantized deviations).
  double PredictExpectedValue(const std::vector<int>& prefix, int ahead,
                              const std::vector<double>& symbol_values) const;

  size_t states() const { return n_; }
  size_t symbols() const { return m_; }
  /// Parameter count (transition + emission + initial) — the resource
  /// metric the paper compares across TP approaches.
  size_t ParameterCount() const { return n_ * n_ + n_ * m_ + n_; }

  const std::vector<std::vector<double>>& transitions() const { return a_; }
  const std::vector<std::vector<double>>& emissions() const { return b_; }
  const std::vector<double>& initial() const { return pi_; }

 private:
  /// Scaled forward pass; returns per-step scaling factors and fills
  /// alpha. Returns false for impossible sequences.
  bool Forward(const std::vector<int>& seq,
               std::vector<std::vector<double>>* alpha,
               std::vector<double>* scale) const;

  size_t n_, m_;
  std::vector<std::vector<double>> a_;   ///< n x n transition
  std::vector<std::vector<double>> b_;   ///< n x m emission
  std::vector<double> pi_;               ///< initial distribution
};

/// Quantizes a real value into one of `buckets` symbols over [lo, hi]
/// (clamped); BucketCenter maps back.
int Quantize(double value, double lo, double hi, int buckets);
double BucketCenter(int bucket, double lo, double hi, int buckets);

}  // namespace tcmf::prediction

#endif  // TCMF_PREDICTION_HMM_H_
