#include "prediction/kinetic.h"

#include <algorithm>

namespace tcmf::prediction {

PlanFollowingPredictor::PlanFollowingPredictor(
    std::vector<KineticWaypoint> plan, const KineticPerformance& performance)
    : plan_(std::move(plan)), performance_(performance) {}

Position PlanFollowingPredictor::PredictAt(TimeMs t) const {
  Position out;
  if (plan_.empty()) return out;
  if (t <= plan_.front().eta) {
    out.t = t;
    out.lon = plan_.front().loc.lon;
    out.lat = plan_.front().loc.lat;
    out.alt_m = plan_.front().alt_m;
    return out;
  }
  if (t >= plan_.back().eta) {
    out.t = t;
    out.lon = plan_.back().loc.lon;
    out.lat = plan_.back().loc.lat;
    out.alt_m = plan_.back().alt_m;
    return out;
  }
  // Find the bracketing leg.
  size_t hi = 1;
  while (hi < plan_.size() && plan_[hi].eta < t) ++hi;
  const KineticWaypoint& a = plan_[hi - 1];
  const KineticWaypoint& b = plan_[hi];
  double f = static_cast<double>(t - a.eta) /
             static_cast<double>(b.eta - a.eta);

  double leg_m = geom::HaversineM(a.loc, b.loc);
  double leg_s = static_cast<double>(b.eta - a.eta) / kMillisPerSecond;
  double ground_speed = leg_s > 0 ? leg_m / leg_s : 0.0;
  double bearing = geom::BearingDeg(a.loc, b.loc);
  geom::LonLat pos = geom::Destination(a.loc, bearing, leg_m * f);

  // Altitude: planned profile, rate-limited by the performance model.
  double planned_alt = a.alt_m + f * (b.alt_m - a.alt_m);
  double max_change =
      performance_.climb_rate_mps * f * leg_s;
  double alt = a.alt_m + std::clamp(planned_alt - a.alt_m, -max_change,
                                    max_change);

  out.t = t;
  out.lon = pos.lon;
  out.lat = pos.lat;
  out.alt_m = alt;
  out.speed_mps = std::min(ground_speed, performance_.cruise_speed_mps * 1.2);
  out.heading_deg = bearing;
  out.vrate_mps = leg_s > 0 ? (b.alt_m - a.alt_m) / leg_s : 0.0;
  return out;
}

Position PlanFollowingPredictor::PredictFrom(const Position& current,
                                             TimeMs look_ahead_ms) const {
  if (plan_.size() < 2) {
    Position out = current;
    out.t = current.t + look_ahead_ms;
    return out;
  }
  // Project the current position onto the plan polyline: nearest leg.
  size_t best_leg = 0;
  double best_d = 1e30;
  double best_frac = 0.0;
  for (size_t i = 0; i + 1 < plan_.size(); ++i) {
    geom::Enu a{0, 0};
    geom::Enu b = geom::ToEnu(plan_[i].loc, plan_[i + 1].loc);
    geom::Enu p = geom::ToEnu(plan_[i].loc, {current.lon, current.lat});
    double len2 = b.x * b.x + b.y * b.y;
    double frac = len2 > 0 ? (p.x * b.x + p.y * b.y) / len2 : 0.0;
    frac = std::clamp(frac, 0.0, 1.0);
    double dx = p.x - frac * b.x;
    double dy = p.y - frac * b.y;
    double d = dx * dx + dy * dy;
    if (d < best_d) {
      best_d = d;
      best_leg = i;
      best_frac = frac;
    }
    (void)a;
  }
  // Advance along the remaining path at the observed (or planned) speed.
  double speed = current.speed_mps > 20.0
                     ? current.speed_mps
                     : performance_.cruise_speed_mps;
  double remaining =
      speed * static_cast<double>(look_ahead_ms) / kMillisPerSecond;
  size_t leg = best_leg;
  double frac = best_frac;
  geom::LonLat pos{current.lon, current.lat};
  // Snap laterally onto the plan over the first leg advance (the kinetic
  // model assumes the aircraft returns to the route).
  while (leg + 1 < plan_.size() && remaining > 0) {
    double leg_m = geom::HaversineM(plan_[leg].loc, plan_[leg + 1].loc);
    double left_on_leg = leg_m * (1.0 - frac);
    double bearing = geom::BearingDeg(plan_[leg].loc, plan_[leg + 1].loc);
    if (remaining < left_on_leg) {
      geom::LonLat on_leg = geom::Destination(plan_[leg].loc, bearing,
                                              leg_m * frac + remaining);
      pos = on_leg;
      remaining = 0;
    } else {
      pos = plan_[leg + 1].loc;
      remaining -= left_on_leg;
      ++leg;
      frac = 0.0;
    }
  }
  Position out = current;
  out.t = current.t + look_ahead_ms;
  out.lon = pos.lon;
  out.lat = pos.lat;
  return out;
}

std::vector<Position> PlanFollowingPredictor::Predict(TimeMs from,
                                                      TimeMs interval_ms,
                                                      size_t steps) const {
  std::vector<Position> out;
  out.reserve(steps);
  for (size_t k = 1; k <= steps; ++k) {
    out.push_back(PredictAt(from + static_cast<TimeMs>(k) * interval_ms));
  }
  return out;
}

}  // namespace tcmf::prediction
