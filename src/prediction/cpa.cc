#include "prediction/cpa.h"

#include <cmath>

#include "geom/geo.h"

namespace tcmf::prediction {

CpaResult ComputeCpa(const Position& a, const Position& b) {
  // Work in the local ENU frame of the later report.
  const Position& ref = a.t >= b.t ? a : b;
  const Position& other = a.t >= b.t ? b : a;
  geom::LonLat origin{ref.lon, ref.lat};

  auto velocity = [](const Position& p) {
    double rad = geom::DegToRad(p.heading_deg);
    return geom::Enu{p.speed_mps * std::sin(rad),
                     p.speed_mps * std::cos(rad)};
  };
  geom::Enu v_ref = velocity(ref);
  geom::Enu v_other = velocity(other);

  // Advance the earlier state to the reference time.
  double lag_s = static_cast<double>(ref.t - other.t) / kMillisPerSecond;
  geom::Enu p_other = geom::ToEnu(origin, {other.lon, other.lat});
  p_other.x += v_other.x * lag_s;
  p_other.y += v_other.y * lag_s;

  // Relative kinematics: ref at origin, other at p_other, relative
  // velocity v = v_other - v_ref.
  double rx = p_other.x, ry = p_other.y;
  double vx = v_other.x - v_ref.x, vy = v_other.y - v_ref.y;

  CpaResult out;
  out.distance_now_m = std::hypot(rx, ry);
  double v2 = vx * vx + vy * vy;
  if (v2 < 1e-9) {
    // No relative motion: the distance never changes.
    out.tcpa_s = 0.0;
    out.dcpa_m = out.distance_now_m;
    return out;
  }
  double t_star = -(rx * vx + ry * vy) / v2;
  if (t_star < 0) t_star = 0.0;  // already past the closest approach
  out.tcpa_s = t_star;
  out.dcpa_m = std::hypot(rx + vx * t_star, ry + vy * t_star);
  return out;
}

std::vector<CollisionWarning> CpaScreen::Observe(const Position& p) {
  std::vector<CollisionWarning> warnings;
  // Range gate through the spatial index: visits exactly the entities
  // whose latest position is within max_range_m (inclusive).
  index_->VisitWithinRadius(
      p.lon, p.lat, options_.max_range_m, geom::kTimeMin,
      [&](const geom::IndexPoint& e) {
        if (e.id == p.entity_id) return;
        const Position& other = latest_.find(e.id)->second;
        ++pairs_evaluated_;
        CpaResult cpa = ComputeCpa(p, other);
        uint64_t key = (std::min(p.entity_id, e.id) << 32) |
                       (std::max(p.entity_id, e.id) & 0xFFFFFFFF);
        bool risky = cpa.dcpa_m < options_.dcpa_m && cpa.tcpa_s >= 0 &&
                     cpa.tcpa_s < options_.tcpa_s;
        if (risky) {
          if (active_.insert(key).second) {
            warnings.push_back({p.entity_id, e.id, p.t, cpa});
          }
        } else {
          active_.erase(key);
        }
      });
  index_->RemoveId(p.entity_id);
  index_->Insert({p.entity_id, p.t, p.lon, p.lat});
  latest_[p.entity_id] = p;
  return warnings;
}

}  // namespace tcmf::prediction
