#include "prediction/rmf.h"

#include <algorithm>
#include <cmath>

#include "prediction/linalg.h"

namespace tcmf::prediction {

using geom::Enu;
using geom::LonLat;

namespace {

/// Median report interval of a history window, seconds.
double EstimateDt(const std::deque<Position>& history) {
  if (history.size() < 2) return 1.0;
  std::vector<double> dts;
  dts.reserve(history.size() - 1);
  for (size_t i = 1; i < history.size(); ++i) {
    dts.push_back(static_cast<double>(history[i].t - history[i - 1].t) /
                  kMillisPerSecond);
  }
  std::nth_element(dts.begin(), dts.begin() + dts.size() / 2, dts.end());
  double dt = dts[dts.size() / 2];
  return dt > 0 ? dt : 1.0;
}

/// Fits z_t = sum c_i z_{t-i} and rolls it forward `steps` times.
std::vector<double> FitAndExtrapolate(const std::vector<double>& series,
                                      int order, size_t steps) {
  const size_t n = series.size();
  std::vector<double> out;
  if (n < static_cast<size_t>(order) + 1) return out;
  std::vector<std::vector<double>> m;
  std::vector<double> y;
  for (size_t t = order; t < n; ++t) {
    std::vector<double> row(order);
    for (int i = 0; i < order; ++i) row[i] = series[t - 1 - i];
    m.push_back(std::move(row));
    y.push_back(series[t]);
  }
  std::vector<double> c = LeastSquares(m, y);
  if (c.empty()) return out;
  std::vector<double> tail(series.end() - order, series.end());
  // tail is ordered oldest..newest; recurrence uses newest-first indexing.
  out.reserve(steps);
  for (size_t s = 0; s < steps; ++s) {
    double next = 0.0;
    for (int i = 0; i < order; ++i) {
      next += c[i] * tail[tail.size() - 1 - i];
    }
    out.push_back(next);
    tail.push_back(next);
  }
  return out;
}

}  // namespace

RmfPredictor::RmfPredictor(int order, size_t window)
    : order_(std::max(1, order)), window_(std::max<size_t>(window, 4)) {}

void RmfPredictor::Observe(const Position& p) {
  if (!history_.empty() && p.t <= history_.back().t) return;
  history_.push_back(p);
  while (history_.size() > window_) history_.pop_front();
}

std::vector<PredictedPoint> RmfPredictor::Predict(size_t steps) const {
  std::vector<PredictedPoint> out;
  if (history_.size() < 2) return out;
  const Position& last = history_.back();
  LonLat ref{last.lon, last.lat};
  double dt = EstimateDt(history_);

  std::vector<double> xs, ys, zs;
  for (const Position& p : history_) {
    Enu e = geom::ToEnu(ref, {p.lon, p.lat});
    xs.push_back(e.x);
    ys.push_back(e.y);
    zs.push_back(p.alt_m);
  }
  std::vector<double> fx = FitAndExtrapolate(xs, order_, steps);
  std::vector<double> fy = FitAndExtrapolate(ys, order_, steps);
  std::vector<double> fz = FitAndExtrapolate(zs, order_, steps);

  // Fallback: constant-velocity when the fit is unavailable.
  double vx = 0.0, vy = 0.0, vz = 0.0;
  if (fx.empty() || fy.empty()) {
    const Position& prev = history_[history_.size() - 2];
    double span = static_cast<double>(last.t - prev.t) / kMillisPerSecond;
    if (span <= 0) span = dt;
    Enu pe = geom::ToEnu(ref, {prev.lon, prev.lat});
    vx = -pe.x / span;
    vy = -pe.y / span;
    vz = (last.alt_m - prev.alt_m) / span;
  }

  for (size_t s = 0; s < steps; ++s) {
    PredictedPoint pp;
    pp.t = last.t + static_cast<TimeMs>((s + 1) * dt * kMillisPerSecond);
    double x = fx.empty() ? vx * dt * (s + 1) : fx[s];
    double y = fy.empty() ? vy * dt * (s + 1) : fy[s];
    double z = fz.empty() ? last.alt_m + vz * dt * (s + 1) : fz[s];
    pp.loc = geom::FromEnu(ref, {x, y});
    pp.alt_m = std::max(0.0, z);
    out.push_back(pp);
  }
  return out;
}

const char* MotionPatternName(MotionPattern p) {
  switch (p) {
    case MotionPattern::kLinear:
      return "linear";
    case MotionPattern::kCircular:
      return "circular";
    case MotionPattern::kQuadratic:
      return "quadratic";
  }
  return "unknown";
}

RmfStarPredictor::RmfStarPredictor(const Options& options)
    : options_(options) {}

void RmfStarPredictor::HintNonLinear() { hint_nonlinear_ = true; }

void RmfStarPredictor::Observe(const Position& p) {
  if (!history_.empty() && p.t <= history_.back().t) return;
  history_.push_back(p);
  while (history_.size() > options_.window) history_.pop_front();
  if (history_.size() < 4) {
    mode_ = MotionMode::kLinear;
    return;
  }

  // Drift detection: mean absolute heading change per report over the
  // recent half of the window, and vertical-rate swing.
  double heading_drift = 0.0;
  size_t count = 0;
  size_t start = history_.size() / 2;
  for (size_t i = start + 1; i < history_.size(); ++i) {
    heading_drift += std::fabs(geom::AngleDiffDeg(
        history_[i].heading_deg, history_[i - 1].heading_deg));
    ++count;
  }
  if (count > 0) heading_drift /= count;
  double vrate_change =
      std::fabs(history_.back().vrate_mps - history_[start].vrate_mps);

  bool nonlinear = heading_drift > options_.heading_drift_threshold_deg ||
                   vrate_change > options_.vrate_change_threshold_mps ||
                   hint_nonlinear_;
  // The explicit hint decays once the drift detector reports steady motion.
  if (hint_nonlinear_ &&
      heading_drift < options_.heading_drift_threshold_deg / 2) {
    hint_nonlinear_ = false;
  }
  mode_ = nonlinear ? MotionMode::kPattern : MotionMode::kLinear;
}

std::vector<PredictedPoint> RmfStarPredictor::Predict(size_t steps) const {
  std::vector<PredictedPoint> out;
  if (history_.size() < 2) return out;
  const Position& last = history_.back();
  LonLat ref{last.lon, last.lat};
  double dt = EstimateDt(history_);

  // Altitude: linear in the mean vertical rate (clamped at ground).
  double mean_vrate = 0.0;
  for (const Position& p : history_) mean_vrate += p.vrate_mps;
  mean_vrate /= history_.size();

  // Relative times and ENU coordinates of the window.
  std::vector<double> ts, xs, ys;
  for (const Position& p : history_) {
    ts.push_back(static_cast<double>(p.t - last.t) / kMillisPerSecond);
    Enu e = geom::ToEnu(ref, {p.lon, p.lat});
    xs.push_back(e.x);
    ys.push_back(e.y);
  }

  auto emit = [&](size_t step, double x, double y) {
    PredictedPoint pp;
    pp.t = last.t + static_cast<TimeMs>((step + 1) * dt * kMillisPerSecond);
    pp.loc = geom::FromEnu(ref, {x, y});
    pp.alt_m = std::max(0.0, last.alt_m + mean_vrate * dt * (step + 1));
    out.push_back(pp);
  };

  // Mean ground velocity over the last few reports (robust linear basis).
  auto mean_velocity = [&](size_t k) {
    k = std::min(k, history_.size() - 1);
    size_t first = history_.size() - 1 - k;
    double span = static_cast<double>(history_.back().t - history_[first].t) /
                  kMillisPerSecond;
    Enu e0 = geom::ToEnu(ref, {history_[first].lon, history_[first].lat});
    if (span <= 0) span = dt * k;
    return Enu{-e0.x / span, -e0.y / span};
  };

  if (mode_ == MotionMode::kLinear) {
    last_pattern_ = MotionPattern::kLinear;
    Enu v = mean_velocity(3);
    for (size_t s = 0; s < steps; ++s) {
      emit(s, v.x * dt * (s + 1), v.y * dt * (s + 1));
    }
    return out;
  }

  // --- Pattern mode: fit candidate primitives, pick the best residual ---
  struct Fit {
    MotionPattern pattern;
    double residual = 1e30;
  };
  Fit best{MotionPattern::kLinear, 1e30};

  // Linear LS fit x = a + b t.
  std::vector<std::vector<double>> m1;
  for (double t : ts) m1.push_back({1.0, t});
  std::vector<double> lx = LeastSquares(m1, xs);
  std::vector<double> ly = LeastSquares(m1, ys);
  if (!lx.empty() && !ly.empty()) {
    double r = 0.0;
    for (size_t i = 0; i < ts.size(); ++i) {
      double ex = lx[0] + lx[1] * ts[i] - xs[i];
      double ey = ly[0] + ly[1] * ts[i] - ys[i];
      r += std::hypot(ex, ey);
    }
    r /= ts.size();
    if (r < best.residual) best = {MotionPattern::kLinear, r};
  }

  // Quadratic LS fit x = a + b t + c t^2.
  std::vector<std::vector<double>> m2;
  for (double t : ts) m2.push_back({1.0, t, t * t});
  std::vector<double> qx = LeastSquares(m2, xs);
  std::vector<double> qy = LeastSquares(m2, ys);
  if (!qx.empty() && !qy.empty()) {
    double r = 0.0;
    for (size_t i = 0; i < ts.size(); ++i) {
      double ex = qx[0] + qx[1] * ts[i] + qx[2] * ts[i] * ts[i] - xs[i];
      double ey = qy[0] + qy[1] * ts[i] + qy[2] * ts[i] * ts[i] - ys[i];
      r += std::hypot(ex, ey);
    }
    r /= ts.size();
    if (r < best.residual) best = {MotionPattern::kQuadratic, r};
  }

  // Circular: constant speed + constant turn rate replay over the window.
  double omega = 0.0;
  double speed = 0.0;
  {
    size_t n = history_.size();
    double total_turn = 0.0;
    for (size_t i = 1; i < n; ++i) {
      total_turn += geom::AngleDiffDeg(history_[i].heading_deg,
                                       history_[i - 1].heading_deg);
      speed += history_[i].speed_mps;
    }
    double span = static_cast<double>(history_.back().t - history_.front().t) /
                  kMillisPerSecond;
    omega = span > 0 ? total_turn / span : 0.0;  // deg/s
    speed /= std::max<size_t>(1, n - 1);
    // Replay from the window start and measure residual.
    LonLat sim{history_.front().lon, history_.front().lat};
    double hdg = history_.front().heading_deg;
    double r = 0.0;
    for (size_t i = 1; i < n; ++i) {
      double step_s = static_cast<double>(history_[i].t - history_[i - 1].t) /
                      kMillisPerSecond;
      hdg = geom::NormalizeDeg(hdg + omega * step_s);
      sim = geom::Destination(sim, hdg, history_[i].speed_mps * step_s);
      r += geom::HaversineM(sim, {history_[i].lon, history_[i].lat});
    }
    r /= std::max<size_t>(1, n - 1);
    if (std::fabs(omega) > 0.05 && r < best.residual) {
      best = {MotionPattern::kCircular, r};
    }
  }

  last_pattern_ = best.pattern;
  switch (best.pattern) {
    case MotionPattern::kLinear: {
      for (size_t s = 0; s < steps; ++s) {
        double t = dt * (s + 1);
        emit(s, lx[0] + lx[1] * t, ly[0] + ly[1] * t);
      }
      break;
    }
    case MotionPattern::kQuadratic: {
      for (size_t s = 0; s < steps; ++s) {
        double t = dt * (s + 1);
        emit(s, qx[0] + qx[1] * t + qx[2] * t * t,
             qy[0] + qy[1] * t + qy[2] * t * t);
      }
      break;
    }
    case MotionPattern::kCircular: {
      LonLat sim = ref;
      double hdg = last.heading_deg;
      for (size_t s = 0; s < steps; ++s) {
        hdg = geom::NormalizeDeg(hdg + omega * dt);
        sim = geom::Destination(sim, hdg, speed * dt);
        Enu e = geom::ToEnu(ref, sim);
        emit(s, e.x, e.y);
      }
      break;
    }
  }
  return out;
}

}  // namespace tcmf::prediction
