#ifndef TCMF_PREDICTION_TRAJPRED_H_
#define TCMF_PREDICTION_TRAJPRED_H_

#include <vector>

#include "common/position.h"
#include "geom/geometry.h"
#include "prediction/clustering.h"
#include "prediction/erp.h"
#include "prediction/hmm.h"

namespace tcmf::prediction {

/// One training example for the TP task: the enriched reference points of
/// the intended trajectory (flight-plan waypoints with weather/aircraft
/// enrichment) and the observed signed cross-track deviation (meters) of
/// the actual flight at each reference point.
struct TpExample {
  EnrichedSequence reference;
  std::vector<double> deviations_m;  ///< parallel to reference
};

/// Signed cross-track deviation (meters) of `actual` at each reference
/// waypoint: the actual position at the waypoint's ETA (time-interpolated)
/// projected against the inbound plan leg. Positive = right of course.
std::vector<double> WaypointDeviations(
    const std::vector<geom::LonLat>& plan_waypoints,
    const std::vector<TimeMs>& etas, const Trajectory& actual);

/// Hyper-parameters of the Hybrid Clustering/HMM TP model (Section 5).
struct HybridTpOptions {
  /// Deviations are quantized into this many symbols over
  /// [-deviation_range_m, +deviation_range_m].
  int deviation_buckets = 15;
  double deviation_range_m = 6000.0;
  size_t hmm_states = 4;
  int hmm_iterations = 30;
  ErpOptions erp;
  OpticsOptions optics{/*eps=*/1e9, /*min_pts=*/3};
  double reachability_threshold = 1.5;
  size_t min_cluster_size = 3;
  uint64_t seed = 5;
};

/// The Hybrid Clustering/HMM trajectory predictor: SemT-OPTICS clusters
/// training flights by the ERP distance over enriched reference points;
/// one compact HMM per cluster models the per-waypoint deviation process,
/// trained on the cluster members and keyed by the cluster medoid.
class HybridTpModel {
 public:
  static HybridTpModel Train(const std::vector<TpExample>& examples,
                             const HybridTpOptions& options);

  /// Index of the cluster whose medoid reference is ERP-nearest.
  /// Returns -1 when the model is empty.
  int AssignCluster(const EnrichedSequence& reference) const;

  /// Predicted per-waypoint deviations for a flight with the given
  /// enriched reference points. `observed_prefix` (possibly empty) holds
  /// already-observed deviations at the first waypoints and conditions
  /// the HMM belief.
  std::vector<double> PredictDeviations(
      const EnrichedSequence& reference,
      const std::vector<double>& observed_prefix) const;

  int cluster_count() const { return static_cast<int>(clusters_.size()); }
  /// Training-set cluster labels (noise = -1), parallel to `examples`.
  const std::vector<int>& training_labels() const { return labels_; }
  /// Total model parameters across all cluster HMMs (resource metric).
  size_t TotalParameters() const;

  /// Members of cluster `c` in the training set.
  size_t ClusterSize(int c) const;

 private:
  struct ClusterModel {
    EnrichedSequence medoid_reference;
    Hmm hmm{1, 1};
    size_t members = 0;
  };

  int QuantizeDeviation(double d) const;
  std::vector<double> SymbolValues() const;

  HybridTpOptions options_;
  std::vector<ClusterModel> clusters_;
  std::vector<int> labels_;
};

/// The "blind" HMM baseline: a single HMM over coarse spatial grid cells
/// of full-rate raw positions, with no clustering, reference points or
/// enrichment ([8][9]-style). Predicts future positions as the expected
/// cell centroid. Orders of magnitude more parameters and training data
/// for far worse accuracy — the comparison of Section 5.
class BlindHmmTp {
 public:
  struct Options {
    geom::BBox extent;
    int grid_side = 24;  ///< symbols = grid_side^2
    size_t hmm_states = 8;
    int hmm_iterations = 10;
    uint64_t seed = 9;
  };

  static BlindHmmTp Train(const std::vector<Trajectory>& trajectories,
                          const Options& options);

  /// Expected position `ahead` steps after the end of `prefix`.
  geom::LonLat PredictPosition(const Trajectory& prefix, int ahead) const;

  size_t TotalParameters() const { return hmm_.ParameterCount(); }
  size_t training_observations() const { return training_observations_; }

  /// Symbol for a position (exposed for evaluation).
  int CellOf(double lon, double lat) const;
  geom::LonLat CellCenter(int cell) const;

 private:
  BlindHmmTp(const Options& options) : options_(options), hmm_(1, 1) {}

  Options options_;
  Hmm hmm_;
  size_t training_observations_ = 0;
};

}  // namespace tcmf::prediction

#endif  // TCMF_PREDICTION_TRAJPRED_H_
