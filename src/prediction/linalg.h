#ifndef TCMF_PREDICTION_LINALG_H_
#define TCMF_PREDICTION_LINALG_H_

#include <vector>

namespace tcmf::prediction {

/// Solves the dense linear system A x = b (n x n) by Gaussian elimination
/// with partial pivoting. Returns false when the system is singular
/// (within tolerance). A and b are modified in place; the solution lands
/// in b. Sizes here are tiny (recurrence orders / polynomial fits).
bool SolveLinearSystem(std::vector<std::vector<double>>& a,
                       std::vector<double>& b);

/// Ordinary least squares: finds x minimizing ||M x - y||^2 via normal
/// equations (M is rows x cols, rows >= cols). Returns empty on failure.
std::vector<double> LeastSquares(const std::vector<std::vector<double>>& m,
                                 const std::vector<double>& y);

}  // namespace tcmf::prediction

#endif  // TCMF_PREDICTION_LINALG_H_
