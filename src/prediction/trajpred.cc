#include "prediction/trajpred.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/geo.h"

namespace tcmf::prediction {

using geom::LonLat;

std::vector<double> WaypointDeviations(
    const std::vector<LonLat>& plan_waypoints, const std::vector<TimeMs>& etas,
    const Trajectory& actual) {
  std::vector<double> out;
  if (plan_waypoints.size() < 2 || actual.points.empty()) return out;
  out.reserve(plan_waypoints.size());

  // Time-interpolated actual position.
  auto position_at = [&](TimeMs t) -> LonLat {
    const auto& pts = actual.points;
    if (t <= pts.front().t) return {pts.front().lon, pts.front().lat};
    if (t >= pts.back().t) return {pts.back().lon, pts.back().lat};
    size_t lo = 0, hi = pts.size() - 1;
    while (hi - lo > 1) {
      size_t mid = (lo + hi) / 2;
      if (pts[mid].t <= t) lo = mid;
      else hi = mid;
    }
    double f = static_cast<double>(t - pts[lo].t) /
               static_cast<double>(pts[hi].t - pts[lo].t);
    return {pts[lo].lon + f * (pts[hi].lon - pts[lo].lon),
            pts[lo].lat + f * (pts[hi].lat - pts[lo].lat)};
  };

  for (size_t i = 0; i < plan_waypoints.size(); ++i) {
    LonLat at = position_at(etas[i]);
    // Leg direction: inbound leg for interior/final waypoints, outbound
    // for the first.
    const LonLat& a = plan_waypoints[i == 0 ? 0 : i - 1];
    const LonLat& b = plan_waypoints[i == 0 ? 1 : i];
    // Signed cross-track in the local frame of the waypoint: positive to
    // the right of the leg course.
    geom::Enu p = geom::ToEnu(b, at);
    double course = geom::DegToRad(geom::BearingDeg(a, b));
    // Unit vector to the right of the course: (cos, -sin) in ENU of
    // (east, north) when course measured from north clockwise.
    double right_e = std::cos(course);
    double right_n = -std::sin(course);
    out.push_back(p.x * right_e + p.y * right_n);
  }
  return out;
}

int HybridTpModel::QuantizeDeviation(double d) const {
  return Quantize(d, -options_.deviation_range_m, options_.deviation_range_m,
                  options_.deviation_buckets);
}

std::vector<double> HybridTpModel::SymbolValues() const {
  std::vector<double> values(options_.deviation_buckets);
  for (int k = 0; k < options_.deviation_buckets; ++k) {
    values[k] = BucketCenter(k, -options_.deviation_range_m,
                             options_.deviation_range_m,
                             options_.deviation_buckets);
  }
  return values;
}

HybridTpModel HybridTpModel::Train(const std::vector<TpExample>& examples,
                                   const HybridTpOptions& options) {
  HybridTpModel model;
  model.options_ = options;
  if (examples.empty()) return model;

  // Stage 1: SemT-OPTICS clustering by enriched ERP distance.
  DistanceFn dist = [&](size_t i, size_t j) {
    return ErpDistance(examples[i].reference, examples[j].reference,
                       options.erp);
  };
  OpticsResult optics = RunOptics(examples.size(), dist, options.optics);
  model.labels_ = ExtractClusters(optics, options.reachability_threshold,
                                  options.min_cluster_size);
  int clusters = ClusterCount(model.labels_);

  // Degenerate case: everything noise -> single cluster of all examples.
  if (clusters == 0) {
    model.labels_.assign(examples.size(), 0);
    clusters = 1;
  }

  // Stage 2: one HMM per cluster over quantized deviation sequences,
  // keyed by the medoid's reference points.
  Rng rng(options.seed);
  for (int c = 0; c < clusters; ++c) {
    ClusterModel cm;
    size_t medoid = ClusterMedoid(model.labels_, c, dist);
    if (medoid == std::numeric_limits<size_t>::max()) continue;
    cm.medoid_reference = examples[medoid].reference;

    std::vector<std::vector<int>> sequences;
    for (size_t i = 0; i < examples.size(); ++i) {
      if (model.labels_[i] != c) continue;
      std::vector<int> seq;
      seq.reserve(examples[i].deviations_m.size());
      for (double d : examples[i].deviations_m) {
        seq.push_back(model.QuantizeDeviation(d));
      }
      sequences.push_back(std::move(seq));
      ++cm.members;
    }
    cm.hmm = Hmm(options.hmm_states, options.deviation_buckets);
    cm.hmm.InitRandom(rng);
    cm.hmm.Train(sequences, options.hmm_iterations);
    model.clusters_.push_back(std::move(cm));
  }
  return model;
}

int HybridTpModel::AssignCluster(const EnrichedSequence& reference) const {
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < clusters_.size(); ++c) {
    double d =
        ErpDistance(reference, clusters_[c].medoid_reference, options_.erp);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<double> HybridTpModel::PredictDeviations(
    const EnrichedSequence& reference,
    const std::vector<double>& observed_prefix) const {
  std::vector<double> out(reference.size(), 0.0);
  int c = AssignCluster(reference);
  if (c < 0) return out;
  const Hmm& hmm = clusters_[c].hmm;
  std::vector<double> symbol_values = SymbolValues();

  std::vector<int> prefix;
  prefix.reserve(observed_prefix.size());
  for (double d : observed_prefix) prefix.push_back(QuantizeDeviation(d));

  for (size_t i = 0; i < reference.size(); ++i) {
    if (i < observed_prefix.size()) {
      out[i] = observed_prefix[i];  // already observed
      continue;
    }
    int ahead = static_cast<int>(i) - static_cast<int>(observed_prefix.size()) + 1;
    out[i] = hmm.PredictExpectedValue(prefix, ahead, symbol_values);
  }
  return out;
}

size_t HybridTpModel::TotalParameters() const {
  size_t total = 0;
  for (const ClusterModel& c : clusters_) total += c.hmm.ParameterCount();
  return total;
}

size_t HybridTpModel::ClusterSize(int c) const {
  if (c < 0 || c >= static_cast<int>(clusters_.size())) return 0;
  return clusters_[c].members;
}

int BlindHmmTp::CellOf(double lon, double lat) const {
  int k = options_.grid_side;
  double fx = (lon - options_.extent.min_lon) / options_.extent.width() * k;
  double fy = (lat - options_.extent.min_lat) / options_.extent.height() * k;
  int cx = std::clamp(static_cast<int>(fx), 0, k - 1);
  int cy = std::clamp(static_cast<int>(fy), 0, k - 1);
  return cy * k + cx;
}

LonLat BlindHmmTp::CellCenter(int cell) const {
  int k = options_.grid_side;
  int cx = cell % k;
  int cy = cell / k;
  double w = options_.extent.width() / k;
  double h = options_.extent.height() / k;
  return {options_.extent.min_lon + (cx + 0.5) * w,
          options_.extent.min_lat + (cy + 0.5) * h};
}

BlindHmmTp BlindHmmTp::Train(const std::vector<Trajectory>& trajectories,
                             const Options& options) {
  BlindHmmTp model(options);
  std::vector<std::vector<int>> sequences;
  sequences.reserve(trajectories.size());
  for (const Trajectory& traj : trajectories) {
    std::vector<int> seq;
    seq.reserve(traj.points.size());
    for (const Position& p : traj.points) {
      seq.push_back(model.CellOf(p.lon, p.lat));
    }
    model.training_observations_ += seq.size();
    sequences.push_back(std::move(seq));
  }
  model.hmm_ = Hmm(options.hmm_states,
                   static_cast<size_t>(options.grid_side) *
                       options.grid_side);
  Rng rng(options.seed);
  model.hmm_.InitRandom(rng);
  model.hmm_.Train(sequences, options.hmm_iterations);
  return model;
}

LonLat BlindHmmTp::PredictPosition(const Trajectory& prefix,
                                   int ahead) const {
  std::vector<int> seq;
  seq.reserve(prefix.points.size());
  for (const Position& p : prefix.points) {
    seq.push_back(CellOf(p.lon, p.lat));
  }
  std::vector<double> dist = hmm_.PredictObservation(seq, ahead);
  double lon = 0.0, lat = 0.0, mass = 0.0;
  for (size_t cell = 0; cell < dist.size(); ++cell) {
    if (dist[cell] <= 0.0) continue;
    LonLat c = CellCenter(static_cast<int>(cell));
    lon += dist[cell] * c.lon;
    lat += dist[cell] * c.lat;
    mass += dist[cell];
  }
  if (mass > 0) {
    lon /= mass;
    lat /= mass;
  }
  return {lon, lat};
}

}  // namespace tcmf::prediction
