#ifndef TCMF_PREDICTION_CLUSTERING_H_
#define TCMF_PREDICTION_CLUSTERING_H_

#include <functional>
#include <vector>

namespace tcmf::prediction {

/// Distance oracle over item indexes [0, n). Implementations typically
/// close over ErpDistance on enriched sequences.
using DistanceFn = std::function<double(size_t, size_t)>;

struct OpticsOptions {
  /// Neighbourhood radius.
  double eps = 1e9;
  /// Minimum neighbours for a core point.
  size_t min_pts = 4;
};

/// Output of the OPTICS ordering pass.
struct OpticsResult {
  std::vector<size_t> ordering;       ///< visit order of all items
  std::vector<double> reachability;   ///< reachability dist per item (inf = undefined)
  std::vector<double> core_distance;  ///< core dist per item (inf = not core)
};

/// OPTICS (Ankerst et al.) over an arbitrary metric — the clustering stage
/// of SemT-OPTICS [25]: robust density-based ordering using the enriched
/// ERP distance. O(n^2) distance evaluations (distances are memoized).
OpticsResult RunOptics(size_t n, const DistanceFn& distance,
                       const OpticsOptions& options);

/// Extracts flat clusters from the OPTICS ordering by reachability
/// threshold; returns cluster id per item (-1 = noise).
std::vector<int> ExtractClusters(const OpticsResult& result,
                                 double reachability_threshold,
                                 size_t min_cluster_size = 2);

/// Number of clusters in a labelling (ignoring noise).
int ClusterCount(const std::vector<int>& labels);

/// Index of the medoid (minimum summed distance to members) of `cluster`.
/// Returns SIZE_MAX when the cluster is empty.
size_t ClusterMedoid(const std::vector<int>& labels, int cluster,
                     const DistanceFn& distance);

}  // namespace tcmf::prediction

#endif  // TCMF_PREDICTION_CLUSTERING_H_
