#ifndef TCMF_PREDICTION_KINETIC_H_
#define TCMF_PREDICTION_KINETIC_H_

#include <vector>

#include "common/position.h"
#include "geom/geo.h"

namespace tcmf::prediction {

/// The *kinetic* approach of Section 5: predict by flying the intended
/// trajectory with a (simplified, BADA-like) performance model — maximal
/// accuracy when the entity follows its plan, no ability to adapt when it
/// deviates (weather rerouting, holdings, runway changes), and parameter
/// sensitivity over longer horizons. The data-driven predictors
/// (RMF*/hybrid HMM) are evaluated against this in the benches.
struct KineticWaypoint {
  geom::LonLat loc;
  double alt_m = 0.0;
  TimeMs eta = 0;
};

/// Performance envelope (the BADA substitute of DESIGN.md).
struct KineticPerformance {
  double cruise_speed_mps = 220.0;
  double climb_rate_mps = 12.0;
};

/// Flies the plan: position at time t is the point reached by traversing
/// the waypoint legs at the planned schedule (linear in time between
/// ETAs), with altitude following the planned profile. Before the first
/// ETA it holds the first waypoint; after the last it holds the last.
class PlanFollowingPredictor {
 public:
  PlanFollowingPredictor(std::vector<KineticWaypoint> plan,
                         const KineticPerformance& performance);

  /// Predicted state at time t.
  Position PredictAt(TimeMs t) const;

  /// Predicted positions at `steps` report intervals after `from`.
  std::vector<Position> Predict(TimeMs from, TimeMs interval_ms,
                                size_t steps) const;

  /// Kinetic short-term prediction re-anchored on the current observed
  /// state (how an FMS extrapolates): projects `current` onto the plan
  /// path and advances along it at the planned ground speed for
  /// `look_ahead_ms`. Robust to schedule slip; still blind to lateral
  /// deviations from the planned route.
  Position PredictFrom(const Position& current, TimeMs look_ahead_ms) const;

  const std::vector<KineticWaypoint>& plan() const { return plan_; }

 private:
  std::vector<KineticWaypoint> plan_;
  KineticPerformance performance_;
};

}  // namespace tcmf::prediction

#endif  // TCMF_PREDICTION_KINETIC_H_
