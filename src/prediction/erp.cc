#include "prediction/erp.h"

#include <algorithm>
#include <cmath>

namespace tcmf::prediction {

double EnrichedPointDistance(const EnrichedPoint& a, const EnrichedPoint& b,
                             const ErpOptions& options) {
  double horizontal = geom::HaversineM(a.loc, b.loc);
  double dz = a.alt_m - b.alt_m;
  double spatial =
      std::sqrt(horizontal * horizontal + dz * dz) / options.spatial_scale_m;
  double feat = 0.0;
  size_t n = std::min(a.features.size(), b.features.size());
  for (size_t i = 0; i < n; ++i) {
    double d = a.features[i] - b.features[i];
    feat += d * d;
  }
  // Missing features on one side count as full disagreement.
  feat += static_cast<double>(
      std::max(a.features.size(), b.features.size()) - n);
  feat = std::sqrt(feat);
  return options.spatial_weight * spatial + options.feature_weight * feat;
}

double ErpDistance(const EnrichedSequence& a, const EnrichedSequence& b,
                   const ErpOptions& options) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<double>(m) * options.gap_penalty;
  if (m == 0) return static_cast<double>(n) * options.gap_penalty;

  // Rolling two-row DP.
  std::vector<double> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j * options.gap_penalty;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i * options.gap_penalty;
    for (size_t j = 1; j <= m; ++j) {
      double subst =
          prev[j - 1] + EnrichedPointDistance(a[i - 1], b[j - 1], options);
      double del = prev[j] + options.gap_penalty;
      double ins = cur[j - 1] + options.gap_penalty;
      cur[j] = std::min({subst, del, ins});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace tcmf::prediction
