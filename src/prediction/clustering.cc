#include "prediction/clustering.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>

namespace tcmf::prediction {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Memoizing symmetric distance cache.
class DistCache {
 public:
  DistCache(size_t n, const DistanceFn& fn) : n_(n), fn_(fn) {}

  double operator()(size_t i, size_t j) {
    if (i == j) return 0.0;
    if (i > j) std::swap(i, j);
    uint64_t key = static_cast<uint64_t>(i) * n_ + j;
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    double d = fn_(i, j);
    cache_.emplace(key, d);
    return d;
  }

 private:
  size_t n_;
  const DistanceFn& fn_;
  std::unordered_map<uint64_t, double> cache_;
};

}  // namespace

OpticsResult RunOptics(size_t n, const DistanceFn& distance,
                       const OpticsOptions& options) {
  OpticsResult out;
  out.reachability.assign(n, kInf);
  out.core_distance.assign(n, kInf);
  if (n == 0) return out;

  DistCache dist(n, distance);
  std::vector<bool> processed(n, false);

  // Core distance of `i`: distance to its min_pts-th neighbour within eps.
  auto core_distance = [&](size_t i) {
    std::vector<double> ds;
    ds.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double d = dist(i, j);
      if (d <= options.eps) ds.push_back(d);
    }
    if (ds.size() < options.min_pts) return kInf;
    std::nth_element(ds.begin(), ds.begin() + (options.min_pts - 1),
                     ds.end());
    return ds[options.min_pts - 1];
  };

  // Min-heap of (reachability, item); stale entries skipped on pop.
  using Entry = std::pair<double, size_t>;
  auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };

  for (size_t seed = 0; seed < n; ++seed) {
    if (processed[seed]) continue;
    processed[seed] = true;
    out.ordering.push_back(seed);
    out.core_distance[seed] = core_distance(seed);
    if (out.core_distance[seed] == kInf) continue;

    std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
    auto update = [&](size_t center) {
      double cd = out.core_distance[center];
      for (size_t j = 0; j < n; ++j) {
        if (processed[j]) continue;
        double d = dist(center, j);
        if (d > options.eps) continue;
        double reach = std::max(cd, d);
        if (reach < out.reachability[j]) {
          out.reachability[j] = reach;
          heap.push({reach, j});
        }
      }
    };
    update(seed);

    while (!heap.empty()) {
      auto [reach, item] = heap.top();
      heap.pop();
      if (processed[item]) continue;
      if (reach > out.reachability[item]) continue;  // stale
      processed[item] = true;
      out.ordering.push_back(item);
      out.core_distance[item] = core_distance(item);
      if (out.core_distance[item] != kInf) update(item);
    }
  }
  return out;
}

std::vector<int> ExtractClusters(const OpticsResult& result,
                                 double reachability_threshold,
                                 size_t min_cluster_size) {
  size_t n = result.ordering.size();
  std::vector<int> labels(n, -1);
  int current = -1;
  std::vector<size_t> pending;  // items of the cluster being built

  auto commit = [&](std::vector<size_t>& items) {
    if (items.size() >= min_cluster_size) {
      ++current;
      for (size_t i : items) labels[i] = current;
    }
    items.clear();
  };

  for (size_t k = 0; k < n; ++k) {
    size_t item = result.ordering[k];
    if (result.reachability[item] > reachability_threshold) {
      // Reachability spike: previous cluster ends; this item starts a new
      // one only if it is a core point at the threshold scale.
      commit(pending);
      if (result.core_distance[item] <= reachability_threshold) {
        pending.push_back(item);
      }
    } else {
      pending.push_back(item);
    }
  }
  commit(pending);
  return labels;
}

int ClusterCount(const std::vector<int>& labels) {
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  return max_label + 1;
}

size_t ClusterMedoid(const std::vector<int>& labels, int cluster,
                     const DistanceFn& distance) {
  std::vector<size_t> members;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == cluster) members.push_back(i);
  }
  if (members.empty()) return std::numeric_limits<size_t>::max();
  size_t best = members[0];
  double best_sum = kInf;
  for (size_t i : members) {
    double sum = 0.0;
    for (size_t j : members) {
      if (i != j) sum += distance(i, j);
    }
    if (sum < best_sum) {
      best_sum = sum;
      best = i;
    }
  }
  return best;
}

}  // namespace tcmf::prediction
