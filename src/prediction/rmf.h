#ifndef TCMF_PREDICTION_RMF_H_
#define TCMF_PREDICTION_RMF_H_

#include <deque>
#include <vector>

#include "common/position.h"
#include "geom/geo.h"

namespace tcmf::prediction {

/// A predicted future location (with altitude for aviation).
struct PredictedPoint {
  TimeMs t = 0;
  geom::LonLat loc;
  double alt_m = 0.0;
};

/// Base Recursive Motion Function predictor (Tao et al., SIGMOD 2004):
/// fits a scalar linear recurrence z_t = sum_i c_i z_{t-i} per coordinate
/// (local ENU x, y, altitude) over the recent window and extrapolates it
/// recursively. This is the paper's FLP baseline; it degrades badly during
/// manoeuvres (Section 5).
class RmfPredictor {
 public:
  /// `order` = recurrence depth f; `window` = number of recent positions
  /// retained for fitting (>= 2 * order recommended).
  explicit RmfPredictor(int order = 3, size_t window = 12);

  /// Feeds the entity's next position (stream order, one entity per
  /// predictor instance).
  void Observe(const Position& p);

  /// Predicts the next `steps` positions, one report interval apart
  /// (the interval is estimated from the observed stream).
  std::vector<PredictedPoint> Predict(size_t steps) const;

  bool ready() const { return history_.size() > static_cast<size_t>(order_); }

 private:
  int order_;
  size_t window_;
  std::deque<Position> history_;
};

/// Motion regime the RMF* mode switcher is in.
enum class MotionMode {
  kLinear = 0,    ///< steady course: plain linear extrapolation
  kPattern,       ///< manoeuvre: best-fitting motion primitive
};

/// Motion primitives tried in pattern mode.
enum class MotionPattern { kLinear = 0, kCircular, kQuadratic };

const char* MotionPatternName(MotionPattern p);

/// RMF* (Section 5): linear extrapolation on steady segments, and on
/// detected drift to a non-linear phase (turn onset, altitude change, or
/// an explicit critical-point hint) switches to pattern-matching mode,
/// fitting linear/circular/quadratic primitives over the recent window
/// and extrapolating the best by residual.
class RmfStarPredictor {
 public:
  struct Options {
    size_t window = 12;
    /// Mean absolute heading delta (deg/report) above which the motion is
    /// considered a non-linear phase.
    double heading_drift_threshold_deg = 1.5;
    /// Vertical-rate change (m/s) signalling an altitude transition.
    double vrate_change_threshold_mps = 2.0;
  };

  RmfStarPredictor() : RmfStarPredictor(Options{}) {}
  explicit RmfStarPredictor(const Options& options);

  void Observe(const Position& p);

  /// Marks the entity as entering a non-linear phase (critical-point hint
  /// from the Synopses Generator); RMF* switches to pattern mode without
  /// waiting for the drift detector.
  void HintNonLinear();

  std::vector<PredictedPoint> Predict(size_t steps) const;

  MotionMode mode() const { return mode_; }
  MotionPattern last_pattern() const { return last_pattern_; }
  bool ready() const { return history_.size() >= 4; }

 private:
  Options options_;
  std::deque<Position> history_;
  MotionMode mode_ = MotionMode::kLinear;
  mutable MotionPattern last_pattern_ = MotionPattern::kLinear;
  bool hint_nonlinear_ = false;
};

}  // namespace tcmf::prediction

#endif  // TCMF_PREDICTION_RMF_H_
