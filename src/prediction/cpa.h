#ifndef TCMF_PREDICTION_CPA_H_
#define TCMF_PREDICTION_CPA_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/position.h"
#include "geom/spatial_index.h"

namespace tcmf::prediction {

/// Closest-point-of-approach analysis between two moving entities — the
/// collision-risk assessment of the paper's Section 2 maritime scenario
/// ("predict which other vessels will cross the areas where the fishing
/// vessels are fishing, sending a warning ... the potential risk
/// assessment should be as accurate as possible").
struct CpaResult {
  /// Time from `now` until the closest approach, seconds (0 when the
  /// entities are already diverging).
  double tcpa_s = 0.0;
  /// Distance at closest approach, meters.
  double dcpa_m = 0.0;
  /// Current distance, meters.
  double distance_now_m = 0.0;
};

/// Computes CPA/TCPA from the two entities' current states (position,
/// speed, heading), assuming constant velocity — the standard COLREG-style
/// risk screen. Positions may have different timestamps; the later one is
/// taken as "now" and the earlier state is advanced to it.
CpaResult ComputeCpa(const Position& a, const Position& b);

/// A collision warning produced by the screen.
struct CollisionWarning {
  uint64_t entity_a = 0;
  uint64_t entity_b = 0;
  TimeMs at = 0;
  CpaResult cpa;
};

/// Screening thresholds: warn when DCPA < `dcpa_m` and 0 <= TCPA <
/// `tcpa_s`.
struct CpaScreenOptions {
  double dcpa_m = 1000.0;
  double tcpa_s = 15 * 60.0;
  /// Pairs further apart than this right now are not evaluated.
  double max_range_m = 20000.0;
  /// Index pruning the per-report range query. Every backend evaluates
  /// exactly the entities within max_range_m, so warnings and
  /// pairs_evaluated() are backend-independent.
  geom::SpatialBackend index = geom::SpatialBackend::kRtree;
  geom::SpatialIndexConfig index_config;
};

/// Streaming pairwise CPA screen over position reports: tracks the latest
/// state per entity and evaluates new reports against the entities within
/// range, found through a SpatialIndex over each entity's latest
/// position — sub-linear per report on clustered fleets with the rtree
/// backend.
class CpaScreen {
 public:
  explicit CpaScreen(const CpaScreenOptions& options)
      : options_(options),
        index_(geom::MakeSpatialIndex(options.index, options.index_config)) {}

  /// Processes one report; returns warnings it triggered (deduplicated:
  /// a pair re-warns only after leaving the warning condition).
  std::vector<CollisionWarning> Observe(const Position& p);

  size_t pairs_evaluated() const { return pairs_evaluated_; }

 private:
  CpaScreenOptions options_;
  /// Latest position per entity, mirrored into index_ (one point per id).
  std::unique_ptr<geom::SpatialIndex> index_;
  std::unordered_map<uint64_t, Position> latest_;
  /// Pairs currently in the warning state (key = min_id << 32 | max_id).
  std::unordered_set<uint64_t> active_;
  size_t pairs_evaluated_ = 0;
};

}  // namespace tcmf::prediction

#endif  // TCMF_PREDICTION_CPA_H_
