#ifndef TCMF_SYNOPSES_BATCH_SIMPLIFY_H_
#define TCMF_SYNOPSES_BATCH_SIMPLIFY_H_

#include <vector>

#include "common/position.h"

namespace tcmf::synopses {

/// Batch trajectory simplification (Douglas-Peucker with a spatial error
/// bound) — the class of "costly trajectory simplification algorithms
/// operating in batch fashion" ([16][17] in the paper) that the Synopses
/// Generator deliberately avoids. Implemented as the comparison baseline:
/// it needs the complete trajectory before emitting anything (full-
/// trajectory latency) while the Synopses Generator is single-pass.
///
/// Returns the retained positions (always includes the endpoints).
std::vector<Position> DouglasPeucker(const std::vector<Position>& points,
                                     double epsilon_m);

/// Time-ratio synchronized Euclidean distance variant: the error of a
/// point is measured against the position interpolated *at its timestamp*
/// between the segment endpoints (the spatio-temporal error measure of
/// [20]); better suited to moving objects than pure spatial distance.
std::vector<Position> DouglasPeuckerSed(const std::vector<Position>& points,
                                        double epsilon_m);

}  // namespace tcmf::synopses

#endif  // TCMF_SYNOPSES_BATCH_SIMPLIFY_H_
