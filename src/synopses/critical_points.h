#ifndef TCMF_SYNOPSES_CRITICAL_POINTS_H_
#define TCMF_SYNOPSES_CRITICAL_POINTS_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/position.h"

namespace tcmf::synopses {

/// The critical-point vocabulary of Section 4.2.2, covering both domains.
enum class CriticalPointType {
  kStart = 0,        ///< first report of a trajectory
  kEnd,              ///< last report (emitted on flush)
  kStop,             ///< entity became stationary
  kStopEnd,          ///< entity resumed moving after a stop
  kSlowMotionStart,  ///< sustained low-speed movement began
  kSlowMotionEnd,    ///< low-speed movement ended
  kChangeInHeading,  ///< turn beyond threshold w.r.t. recent mean velocity
  kSpeedChange,      ///< speed rate-of-change beyond threshold
  kGapStart,         ///< last report before a communication gap
  kGapEnd,           ///< first report after a communication gap
  kChangeInAltitude, ///< climb/descent rate beyond threshold (aviation)
  kTakeoff,          ///< last on-ground report before getting airborne
  kLanding,          ///< first on-ground report after flight
};

const char* CriticalPointTypeName(CriticalPointType type);

/// A critical point: a retained position annotated with why it was kept.
struct CriticalPoint {
  Position pos;
  CriticalPointType type = CriticalPointType::kStart;
};

/// Thresholds of the single-pass heuristics. Defaults are tuned for AIS;
/// ForAviation() returns ADS-B-rate settings.
struct SynopsesConfig {
  double stop_speed_mps = 0.5;
  TimeMs stop_min_duration_ms = 60 * kMillisPerSecond;
  double slow_speed_mps = 2.5;
  TimeMs slow_min_duration_ms = 60 * kMillisPerSecond;
  /// Heading deviation (degrees) from the mean velocity vector of the
  /// recent course that triggers a ChangeInHeading point.
  double heading_threshold_deg = 12.0;
  /// Number of recent points forming the "recent course" window.
  size_t course_window = 6;
  /// Relative speed change w.r.t. recent mean speed that triggers a
  /// SpeedChange point.
  double speed_change_ratio = 0.25;
  TimeMs gap_threshold_ms = 10 * kMillisPerMinute;
  /// Vertical-rate magnitude (m/s) that triggers ChangeInAltitude points
  /// (aviation only). Points are emitted on threshold crossings.
  double altitude_rate_threshold_mps = 5.0;
  /// Altitude below which an aircraft counts as on the ground.
  double ground_altitude_m = 10.0;
  /// Minimum time between consecutive emitted critical points of the same
  /// type for one entity — a noise guard on top of the base heuristics.
  TimeMs min_emission_spacing_ms = 5 * kMillisPerSecond;
  Domain domain = Domain::kMaritime;

  static SynopsesConfig ForMaritime();
  static SynopsesConfig ForAviation();
};

/// Single-pass, per-entity streaming Synopses Generator. Feed every raw
/// position through Observe(); it returns the critical points (possibly
/// none) that the report triggered. O(course_window) state per entity.
class SynopsesGenerator {
 public:
  explicit SynopsesGenerator(const SynopsesConfig& config);

  /// Processes one raw report.
  std::vector<CriticalPoint> Observe(const Position& p);

  /// Emits kEnd points for all live entities (end of stream).
  std::vector<CriticalPoint> Flush();

  size_t raw_count() const { return raw_count_; }
  size_t critical_count() const { return critical_count_; }
  /// Fraction of raw positions dropped, in [0, 1].
  double CompressionRatio() const;

 private:
  struct EntityState {
    std::deque<Position> window;  ///< recent course (≤ course_window)
    bool started = false;
    bool in_stop = false;
    bool in_slow = false;
    TimeMs stop_since = 0;
    TimeMs slow_since = 0;
    bool stop_emitted = false;
    bool slow_emitted = false;
    bool airborne = false;
    bool climbing_or_descending = false;
    Position last;
    std::unordered_map<int, TimeMs> last_emit_by_type;
  };

  bool RateLimited(EntityState& s, CriticalPointType type, TimeMs t) const;
  void Emit(std::vector<CriticalPoint>* out, EntityState& s,
            const Position& p, CriticalPointType type);

  SynopsesConfig config_;
  std::unordered_map<uint64_t, EntityState> states_;
  size_t raw_count_ = 0;
  size_t critical_count_ = 0;
};

/// Reconstructs an approximate trajectory from a synopsis by linear
/// space-time interpolation and reports approximation quality against the
/// raw trajectory (Section 4.2.2's "tolerable error" evaluation).
struct ReconstructionError {
  double mean_m = 0.0;
  double max_m = 0.0;
  double rmse_m = 0.0;
};

ReconstructionError EvaluateReconstruction(
    const Trajectory& raw, const std::vector<CriticalPoint>& synopsis);

/// Interpolated position of the synopsis at time t (clamped to ends).
Position InterpolateSynopsis(const std::vector<CriticalPoint>& synopsis,
                             TimeMs t);

}  // namespace tcmf::synopses

#endif  // TCMF_SYNOPSES_CRITICAL_POINTS_H_
