#ifndef TCMF_SYNOPSES_STAGES_H_
#define TCMF_SYNOPSES_STAGES_H_

#include <memory>
#include <utility>

#include "stream/pipeline.h"
#include "synopses/critical_points.h"

namespace tcmf::synopses {

/// Runs the Synopses Generator as a keyed operator on the stream
/// substrate: positions are partitioned by entity id and each key owns a
/// private generator instance (parallelism-safe state, the Flink
/// keyed-stream execution model). Open synopses flush at end-of-stream.
///
/// Stage configuration follows the unified `(flow, config, StageOptions,
/// ...)` helper signature: `stage.name` defaults to "synopses" (plus
/// ".partN" edges when parallelism > 1) and `stage.batch` to the
/// adaptive batched transport — input, partition and output edges all
/// move amortized batch transfers, and the input/output edges carry
/// per-edge BatchTuners that find each edge's own batch size from
/// observed StageMetrics (pass `.batch = BatchPolicy::Batched(n)` for a
/// pinned static size, `BatchPolicy::Single()` for record-at-a-time;
/// `.capacity_tuning = CapacityPolicy::Adaptive()` makes the output
/// channel bound elastic; see docs/STREAM_TUNING.md).
inline stream::Flow<CriticalPoint> SynopsesStage(
    stream::Flow<Position> flow, const SynopsesConfig& config,
    size_t parallelism = 1, stream::StageOptions stage = {}) {
  struct State {
    std::unique_ptr<SynopsesGenerator> gen;
  };
  if (!stage.batch.has_value()) stage.batch = stream::BatchPolicy::Adaptive();
  if (stage.name.empty()) stage.name = "synopses";
  return flow.KeyedProcessParallel<CriticalPoint, State>(
      [](const Position& p) { return p.entity_id; },
      [config](const Position& p, State& state,
               const std::function<void(CriticalPoint)>& emit) {
        if (!state.gen) {
          state.gen = std::make_unique<SynopsesGenerator>(config);
        }
        for (auto& cp : state.gen->Observe(p)) emit(std::move(cp));
      },
      parallelism,
      [](uint64_t, State& state,
         const std::function<void(CriticalPoint)>& emit) {
        if (!state.gen) return;
        for (auto& cp : state.gen->Flush()) emit(std::move(cp));
      },
      std::move(stage));
}

/// Deprecated positional form — use the StageOptions overload.
[[deprecated("use SynopsesStage(flow, config, parallelism, StageOptions)")]]
inline stream::Flow<CriticalPoint> SynopsesStage(
    stream::Flow<Position> flow, const SynopsesConfig& config,
    size_t parallelism, size_t capacity,
    stream::BatchPolicy policy = stream::BatchPolicy::Adaptive()) {
  stream::StageOptions stage;
  stage.capacity = capacity;
  stage.batch = policy;
  return SynopsesStage(std::move(flow), config, parallelism,
                       std::move(stage));
}

}  // namespace tcmf::synopses

#endif  // TCMF_SYNOPSES_STAGES_H_
