#ifndef TCMF_SYNOPSES_STAGES_H_
#define TCMF_SYNOPSES_STAGES_H_

#include <memory>
#include <utility>

#include "stream/pipeline.h"
#include "synopses/critical_points.h"

namespace tcmf::synopses {

/// Runs the Synopses Generator as a keyed operator on the stream
/// substrate: positions are partitioned by entity id and each key owns a
/// private generator instance (parallelism-safe state, the Flink
/// keyed-stream execution model). Open synopses flush at end-of-stream.
/// Appears in Pipeline::Report() as "synopses" (plus ".partN" edges when
/// parallelism > 1). Runs on the adaptive batched transport by default:
/// the input, partition and output edges all move amortized batch
/// transfers, and the input/output edges carry per-edge BatchTuners that
/// find each edge's own batch size from observed StageMetrics (pass
/// BatchPolicy::Batched(n) for a pinned static size,
/// BatchPolicy::Single() for record-at-a-time; see
/// docs/STREAM_TUNING.md).
inline stream::Flow<CriticalPoint> SynopsesStage(
    stream::Flow<Position> flow, const SynopsesConfig& config,
    size_t parallelism = 1, size_t capacity = 1024,
    stream::BatchPolicy policy = stream::BatchPolicy::Adaptive()) {
  struct State {
    std::unique_ptr<SynopsesGenerator> gen;
  };
  return flow.WithBatching(policy).KeyedProcessParallel<CriticalPoint, State>(
      [](const Position& p) { return p.entity_id; },
      [config](const Position& p, State& state,
               const std::function<void(CriticalPoint)>& emit) {
        if (!state.gen) {
          state.gen = std::make_unique<SynopsesGenerator>(config);
        }
        for (auto& cp : state.gen->Observe(p)) emit(std::move(cp));
      },
      parallelism,
      [](uint64_t, State& state,
         const std::function<void(CriticalPoint)>& emit) {
        if (!state.gen) return;
        for (auto& cp : state.gen->Flush()) emit(std::move(cp));
      },
      capacity, "synopses");
}

}  // namespace tcmf::synopses

#endif  // TCMF_SYNOPSES_STAGES_H_
