#ifndef TCMF_SYNOPSES_STAGES_H_
#define TCMF_SYNOPSES_STAGES_H_

#include <memory>
#include <utility>

#include "stream/pipeline.h"
#include "synopses/critical_points.h"

namespace tcmf::synopses {

/// Runs the Synopses Generator as a keyed operator on the stream
/// substrate: positions are partitioned by entity id and each key owns a
/// private generator instance (parallelism-safe state, the Flink
/// keyed-stream execution model). Open synopses flush at end-of-stream.
///
/// Stage configuration follows the unified `(flow, config, StageOptions,
/// ...)` helper signature: `stage.name` defaults to "synopses" and
/// `stage.batch` to the adaptive batched transport — input, partition
/// and output edges all move amortized batch transfers. With
/// parallelism > 1 every router→worker partition edge carries its own
/// BatchTuner, surfaced as the stage row's `worker_edges` (with
/// `skew_ratio`) in ReportJson (pass `.batch = BatchPolicy::Batched(n)`
/// for a pinned static size, `BatchPolicy::Single()` for
/// record-at-a-time; `.capacity_tuning = CapacityPolicy::Adaptive()`
/// makes the channel bounds elastic; see docs/STREAM_TUNING.md).
namespace internal {

struct SynopsesState {
  std::unique_ptr<SynopsesGenerator> gen;
};

inline stream::KeyedProcessFn<Position, CriticalPoint, SynopsesState>
SynopsesProcess(const SynopsesConfig& config) {
  return [config](const Position& p, SynopsesState& state,
                  const std::function<void(CriticalPoint)>& emit) {
    if (!state.gen) {
      state.gen = std::make_unique<SynopsesGenerator>(config);
    }
    for (auto& cp : state.gen->Observe(p)) emit(std::move(cp));
  };
}

inline stream::KeyedFlushFn<CriticalPoint, SynopsesState> SynopsesFlush() {
  return [](uint64_t, SynopsesState& state,
            const std::function<void(CriticalPoint)>& emit) {
    if (!state.gen) return;
    for (auto& cp : state.gen->Flush()) emit(std::move(cp));
  };
}

}  // namespace internal

inline stream::Flow<CriticalPoint> SynopsesStage(
    stream::Flow<Position> flow, const SynopsesConfig& config,
    size_t parallelism = 1, stream::StageOptions stage = {}) {
  if (!stage.batch.has_value()) stage.batch = stream::BatchPolicy::Adaptive();
  if (stage.name.empty()) stage.name = "synopses";
  return flow.KeyedProcessParallel<CriticalPoint, internal::SynopsesState>(
      [](const Position& p) { return p.entity_id; },
      internal::SynopsesProcess(config), parallelism,
      internal::SynopsesFlush(), std::move(stage));
}

/// Fused-chain form: terminates a fused stateless prefix (e.g. in-situ
/// cleaning composed with `flow.Fuse()`) directly in the synopses keyed
/// stage — the prefix runs inside the partition router, so detection →
/// synopsis costs zero channel crossings up to the keyed boundary.
template <typename In>
stream::Flow<CriticalPoint> SynopsesStage(
    stream::FusedChain<In, Position> chain, const SynopsesConfig& config,
    size_t parallelism = 1, stream::StageOptions stage = {}) {
  if (!stage.batch.has_value()) stage.batch = stream::BatchPolicy::Adaptive();
  if (stage.name.empty()) stage.name = "synopses";
  return chain.template KeyedProcessParallel<CriticalPoint,
                                             internal::SynopsesState>(
      [](const Position& p) { return p.entity_id; },
      internal::SynopsesProcess(config), parallelism,
      internal::SynopsesFlush(), std::move(stage));
}

}  // namespace tcmf::synopses

#endif  // TCMF_SYNOPSES_STAGES_H_
