#include "synopses/batch_simplify.h"

#include <cmath>

#include "geom/geo.h"
#include "geom/geometry.h"

namespace tcmf::synopses {

namespace {

/// Spatial distance from points[i] to the segment points[lo]..points[hi].
double SpatialError(const std::vector<Position>& points, size_t lo,
                    size_t hi, size_t i) {
  return geom::PointSegmentDistanceM(
      {points[i].lon, points[i].lat}, {points[lo].lon, points[lo].lat},
      {points[hi].lon, points[hi].lat});
}

/// Synchronized Euclidean distance: points[i] vs the time-interpolated
/// position on the chord.
double SedError(const std::vector<Position>& points, size_t lo, size_t hi,
                size_t i) {
  const Position& a = points[lo];
  const Position& b = points[hi];
  double f = b.t == a.t ? 0.0
                        : static_cast<double>(points[i].t - a.t) /
                              static_cast<double>(b.t - a.t);
  double lon = a.lon + f * (b.lon - a.lon);
  double lat = a.lat + f * (b.lat - a.lat);
  return geom::HaversineM(points[i].lon, points[i].lat, lon, lat);
}

template <typename ErrorFn>
void Recurse(const std::vector<Position>& points, size_t lo, size_t hi,
             double epsilon_m, const ErrorFn& error,
             std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  double worst = 0.0;
  size_t worst_i = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    double e = error(points, lo, hi, i);
    if (e > worst) {
      worst = e;
      worst_i = i;
    }
  }
  if (worst > epsilon_m) {
    (*keep)[worst_i] = true;
    Recurse(points, lo, worst_i, epsilon_m, error, keep);
    Recurse(points, worst_i, hi, epsilon_m, error, keep);
  }
}

template <typename ErrorFn>
std::vector<Position> Simplify(const std::vector<Position>& points,
                               double epsilon_m, const ErrorFn& error) {
  if (points.size() <= 2) return points;
  std::vector<bool> keep(points.size(), false);
  keep.front() = keep.back() = true;
  Recurse(points, 0, points.size() - 1, epsilon_m, error, &keep);
  std::vector<Position> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (keep[i]) out.push_back(points[i]);
  }
  return out;
}

}  // namespace

std::vector<Position> DouglasPeucker(const std::vector<Position>& points,
                                     double epsilon_m) {
  return Simplify(points, epsilon_m, SpatialError);
}

std::vector<Position> DouglasPeuckerSed(const std::vector<Position>& points,
                                        double epsilon_m) {
  return Simplify(points, epsilon_m, SedError);
}

}  // namespace tcmf::synopses
