#include "synopses/critical_points.h"

#include <algorithm>
#include <cmath>

#include "geom/geo.h"

namespace tcmf::synopses {

const char* CriticalPointTypeName(CriticalPointType type) {
  switch (type) {
    case CriticalPointType::kStart:
      return "start";
    case CriticalPointType::kEnd:
      return "end";
    case CriticalPointType::kStop:
      return "stop";
    case CriticalPointType::kStopEnd:
      return "stop_end";
    case CriticalPointType::kSlowMotionStart:
      return "slow_motion_start";
    case CriticalPointType::kSlowMotionEnd:
      return "slow_motion_end";
    case CriticalPointType::kChangeInHeading:
      return "change_in_heading";
    case CriticalPointType::kSpeedChange:
      return "speed_change";
    case CriticalPointType::kGapStart:
      return "gap_start";
    case CriticalPointType::kGapEnd:
      return "gap_end";
    case CriticalPointType::kChangeInAltitude:
      return "change_in_altitude";
    case CriticalPointType::kTakeoff:
      return "takeoff";
    case CriticalPointType::kLanding:
      return "landing";
  }
  return "unknown";
}

SynopsesConfig SynopsesConfig::ForMaritime() { return SynopsesConfig{}; }

SynopsesConfig SynopsesConfig::ForAviation() {
  SynopsesConfig c;
  c.domain = Domain::kAviation;
  c.stop_speed_mps = 2.0;
  c.slow_speed_mps = 60.0;
  c.heading_threshold_deg = 8.0;
  c.speed_change_ratio = 0.15;
  c.gap_threshold_ms = 2 * kMillisPerMinute;
  c.min_emission_spacing_ms = 4 * kMillisPerSecond;
  return c;
}

SynopsesGenerator::SynopsesGenerator(const SynopsesConfig& config)
    : config_(config) {}

bool SynopsesGenerator::RateLimited(EntityState& s, CriticalPointType type,
                                    TimeMs t) const {
  auto it = s.last_emit_by_type.find(static_cast<int>(type));
  return it != s.last_emit_by_type.end() &&
         t - it->second < config_.min_emission_spacing_ms;
}

void SynopsesGenerator::Emit(std::vector<CriticalPoint>* out, EntityState& s,
                             const Position& p, CriticalPointType type) {
  s.last_emit_by_type[static_cast<int>(type)] = p.t;
  out->push_back({p, type});
  ++critical_count_;
}

std::vector<CriticalPoint> SynopsesGenerator::Observe(const Position& p) {
  ++raw_count_;
  std::vector<CriticalPoint> out;
  EntityState& s = states_[p.entity_id];

  if (!s.started) {
    s.started = true;
    s.airborne = p.alt_m > config_.ground_altitude_m;
    Emit(&out, s, p, CriticalPointType::kStart);
    s.last = p;
    s.window.push_back(p);
    return out;
  }

  // Reject regressions in time (cleaning is upstream; stay robust anyway).
  if (p.t <= s.last.t) return out;

  // --- Communication gap ---
  if (p.t - s.last.t >= config_.gap_threshold_ms) {
    if (!RateLimited(s, CriticalPointType::kGapStart, s.last.t)) {
      Emit(&out, s, s.last, CriticalPointType::kGapStart);
    }
    Emit(&out, s, p, CriticalPointType::kGapEnd);
    s.window.clear();  // course before the gap no longer informative
  }

  // --- Stop detection ---
  bool is_stationary = p.speed_mps < config_.stop_speed_mps;
  if (is_stationary) {
    if (!s.in_stop) {
      s.in_stop = true;
      s.stop_since = p.t;
      s.stop_emitted = false;
    } else if (!s.stop_emitted &&
               p.t - s.stop_since >= config_.stop_min_duration_ms) {
      Emit(&out, s, p, CriticalPointType::kStop);
      s.stop_emitted = true;
    }
  } else if (s.in_stop) {
    if (s.stop_emitted) Emit(&out, s, p, CriticalPointType::kStopEnd);
    s.in_stop = false;
  }

  // --- Slow motion ---
  bool is_slow = !is_stationary && p.speed_mps < config_.slow_speed_mps;
  if (is_slow) {
    if (!s.in_slow) {
      s.in_slow = true;
      s.slow_since = p.t;
      s.slow_emitted = false;
    } else if (!s.slow_emitted &&
               p.t - s.slow_since >= config_.slow_min_duration_ms) {
      Emit(&out, s, p, CriticalPointType::kSlowMotionStart);
      s.slow_emitted = true;
    }
  } else if (s.in_slow) {
    if (s.slow_emitted) Emit(&out, s, p, CriticalPointType::kSlowMotionEnd);
    s.in_slow = false;
  }

  // --- Change in heading w.r.t. mean velocity vector of recent course ---
  if (!is_stationary && s.window.size() >= 2) {
    double ve = 0.0, vn = 0.0;
    for (const Position& q : s.window) {
      double rad = geom::DegToRad(q.heading_deg);
      ve += q.speed_mps * std::sin(rad);
      vn += q.speed_mps * std::cos(rad);
    }
    double mean_heading =
        geom::NormalizeDeg(geom::RadToDeg(std::atan2(ve, vn)));
    double mean_speed = std::hypot(ve, vn) / s.window.size();
    double dev = std::fabs(geom::AngleDiffDeg(p.heading_deg, mean_heading));
    if (dev > config_.heading_threshold_deg &&
        !RateLimited(s, CriticalPointType::kChangeInHeading, p.t)) {
      Emit(&out, s, p, CriticalPointType::kChangeInHeading);
      s.window.clear();  // restart course estimate at the turn
    }

    // --- Speed change w.r.t. recent mean speed ---
    if (mean_speed > 0.2) {
      double ratio = std::fabs(p.speed_mps - mean_speed) / mean_speed;
      if (ratio > config_.speed_change_ratio &&
          !RateLimited(s, CriticalPointType::kSpeedChange, p.t)) {
        Emit(&out, s, p, CriticalPointType::kSpeedChange);
      }
    }
  }

  // --- Aviation: altitude events ---
  if (config_.domain == Domain::kAviation) {
    bool airborne_now = p.alt_m > config_.ground_altitude_m;
    if (!s.airborne && airborne_now) {
      // The previous report was the last on the ground.
      Emit(&out, s, s.last, CriticalPointType::kTakeoff);
    } else if (s.airborne && !airborne_now) {
      Emit(&out, s, p, CriticalPointType::kLanding);
    }
    s.airborne = airborne_now;

    bool steep = std::fabs(p.vrate_mps) > config_.altitude_rate_threshold_mps;
    if (steep != s.climbing_or_descending &&
        !RateLimited(s, CriticalPointType::kChangeInAltitude, p.t)) {
      Emit(&out, s, p, CriticalPointType::kChangeInAltitude);
    }
    s.climbing_or_descending = steep;
  }

  s.window.push_back(p);
  while (s.window.size() > config_.course_window) s.window.pop_front();
  s.last = p;
  return out;
}

std::vector<CriticalPoint> SynopsesGenerator::Flush() {
  std::vector<CriticalPoint> out;
  for (auto& [id, s] : states_) {
    if (s.started) Emit(&out, s, s.last, CriticalPointType::kEnd);
  }
  return out;
}

double SynopsesGenerator::CompressionRatio() const {
  if (raw_count_ == 0) return 0.0;
  double kept = static_cast<double>(critical_count_);
  return std::max(0.0, 1.0 - kept / static_cast<double>(raw_count_));
}

Position InterpolateSynopsis(const std::vector<CriticalPoint>& synopsis,
                             TimeMs t) {
  Position out;
  if (synopsis.empty()) return out;
  if (t <= synopsis.front().pos.t) return synopsis.front().pos;
  if (t >= synopsis.back().pos.t) return synopsis.back().pos;
  // Binary search for the bracketing pair.
  size_t lo = 0, hi = synopsis.size() - 1;
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (synopsis[mid].pos.t <= t) lo = mid;
    else hi = mid;
  }
  const Position& a = synopsis[lo].pos;
  const Position& b = synopsis[hi].pos;
  double f = b.t == a.t ? 0.0
                        : static_cast<double>(t - a.t) /
                              static_cast<double>(b.t - a.t);
  out = a;
  out.t = t;
  out.lon = a.lon + f * (b.lon - a.lon);
  out.lat = a.lat + f * (b.lat - a.lat);
  out.alt_m = a.alt_m + f * (b.alt_m - a.alt_m);
  out.speed_mps = a.speed_mps + f * (b.speed_mps - a.speed_mps);
  return out;
}

ReconstructionError EvaluateReconstruction(
    const Trajectory& raw, const std::vector<CriticalPoint>& synopsis) {
  ReconstructionError err;
  if (raw.points.empty() || synopsis.empty()) return err;
  double sum = 0.0, sum2 = 0.0;
  for (const Position& p : raw.points) {
    Position approx = InterpolateSynopsis(synopsis, p.t);
    double d = geom::HaversineM(p.lon, p.lat, approx.lon, approx.lat);
    sum += d;
    sum2 += d * d;
    err.max_m = std::max(err.max_m, d);
  }
  err.mean_m = sum / raw.points.size();
  err.rmse_m = std::sqrt(sum2 / raw.points.size());
  return err;
}

}  // namespace tcmf::synopses
