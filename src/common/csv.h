#ifndef TCMF_COMMON_CSV_H_
#define TCMF_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcmf {

/// Parses one CSV line honouring double-quoted fields with embedded commas
/// and doubled quotes ("" -> ").
std::vector<std::string> ParseCsvLine(const std::string& line,
                                      char delim = ',');

/// Escapes a field for CSV output (quotes it when it contains the delimiter,
/// a quote, or a newline).
std::string CsvEscape(const std::string& field, char delim = ',');

/// Streaming CSV reader over a file. Usage:
///   CsvReader reader;
///   TCMF_RETURN_IF_ERROR(reader.Open(path));
///   std::vector<std::string> row;
///   while (reader.Next(&row)) { ... }
class CsvReader {
 public:
  CsvReader() = default;

  /// Opens `path`; when `has_header` is true the first row is consumed into
  /// header().
  Status Open(const std::string& path, bool has_header = false,
              char delim = ',');

  /// Reads the next row; returns false at end of file.
  bool Next(std::vector<std::string>* row);

  const std::vector<std::string>& header() const { return header_; }
  size_t rows_read() const { return rows_read_; }

 private:
  std::ifstream in_;
  std::vector<std::string> header_;
  char delim_ = ',';
  size_t rows_read_ = 0;
};

/// Buffered CSV writer.
class CsvWriter {
 public:
  Status Open(const std::string& path, char delim = ',');
  void WriteRow(const std::vector<std::string>& row);
  Status Close();

 private:
  std::ofstream out_;
  char delim_ = ',';
};

}  // namespace tcmf

#endif  // TCMF_COMMON_CSV_H_
