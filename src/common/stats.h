#ifndef TCMF_COMMON_STATS_H_
#define TCMF_COMMON_STATS_H_

#include <array>
#include <cstddef>
#include <limits>
#include <vector>

namespace tcmf {

/// Online P² quantile estimator (Jain & Chlamtac 1985): tracks a single
/// quantile with O(1) memory — used by the in-situ layer to expose medians
/// over unbounded streams without buffering them (Section 4.2.1).
class P2Quantile {
 public:
  /// `q` in (0, 1); 0.5 tracks the median.
  explicit P2Quantile(double q = 0.5);

  void Add(double x);

  /// Current estimate; exact for fewer than 5 observations.
  double Value() const;

  size_t count() const { return count_; }

 private:
  double q_;
  size_t count_ = 0;
  // Marker heights, positions and desired positions per the P^2 paper.
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

/// Streaming summary of a numeric property: min / max / mean / variance
/// (Welford) / median (P²). This is the per-trajectory metadata block the
/// paper's low-level event detector emits (Section 4.2.1).
class RunningStats {
 public:
  RunningStats() : median_(0.5) {}

  void Add(double x);

  size_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance.
  double variance() const { return count_ ? m2_ / count_ : 0.0; }
  double stddev() const;
  double median() const { return median_.Value(); }

  /// Merges another summary into this one (parallel aggregation).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  P2Quantile median_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used by the VA point-matching and precision reports.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t bucket_count() const { return counts_.size(); }
  size_t bucket(size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(size_t i) const { return lo_ + i * width_; }
  size_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace tcmf

#endif  // TCMF_COMMON_STATS_H_
