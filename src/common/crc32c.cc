#include "common/crc32c.h"

namespace tcmf {
namespace {

/// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

/// 8 slice tables: table[0] is the classic byte-at-a-time table; table[k]
/// advances a byte through k+1 zero bytes, letting the hot loop fold 8
/// input bytes per iteration (slice-by-8, Intel 2006 technique).
struct Tables {
  uint32_t t[8][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Byte-at-a-time until the residual length is a multiple of 8.
  while (n != 0 && (n & 7) != 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
    --n;
  }
  // Slice-by-8 main loop.
  while (n >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               (static_cast<uint32_t>(p[1]) << 8) |
                               (static_cast<uint32_t>(p[2]) << 16) |
                               (static_cast<uint32_t>(p[3]) << 24));
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][(lo >> 24) & 0xff] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  return ~crc;
}

}  // namespace tcmf
