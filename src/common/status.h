#ifndef TCMF_COMMON_STATUS_H_
#define TCMF_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tcmf {

/// Error categories used across the library. Mirrors the RocksDB-style
/// Status idiom: no exceptions anywhere; fallible calls return Status or
/// Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  kIoError,
  kUnimplemented,
  kParseError,
};

/// Human-readable name for a StatusCode ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
/// Cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. Accessing value() on an
/// error result is a programming bug (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return x;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace tcmf

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define TCMF_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::tcmf::Status _tcmf_status = (expr);       \
    if (!_tcmf_status.ok()) return _tcmf_status; \
  } while (0)

#endif  // TCMF_COMMON_STATUS_H_
