#ifndef TCMF_COMMON_LOGGING_H_
#define TCMF_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace tcmf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Use via the TCMF_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tcmf

#define TCMF_LOG(level)                                                     \
  ::tcmf::internal_logging::LogMessage(::tcmf::LogLevel::level, __FILE__, \
                                       __LINE__)                            \
      .stream()

#endif  // TCMF_COMMON_LOGGING_H_
