#ifndef TCMF_COMMON_VARINT_H_
#define TCMF_COMMON_VARINT_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace tcmf {

/// Binary-codec primitives (LevelDB idiom): LEB128 varints, ZigZag mapping
/// for signed integers, and fixed-width little-endian integers. Parsers
/// take a [p, limit) byte range and return the position past the consumed
/// bytes, or nullptr on truncated/malformed input — they never read past
/// `limit`, which is what makes torn-tail log recovery safe.

/// Appends `v` to `*out` as a base-128 varint (1-10 bytes).
inline void AppendVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Number of bytes AppendVarint64 would write for `v`.
inline size_t VarintLength64(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Parses a varint from [p, limit). Returns the position after the varint
/// and stores the value in `*out`; nullptr when the range is exhausted
/// before the terminating byte (torn input) or the varint overflows 64
/// bits (corrupt input).
inline const char* ParseVarint64(const char* p, const char* limit,
                                 uint64_t* out) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    const uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *out = result;
      return p;
    }
  }
  return nullptr;
}

/// ZigZag maps signed integers to unsigned so small-magnitude negatives
/// stay short as varints: 0,-1,1,-2,... -> 0,1,2,3,...
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Fixed-width little-endian 32-bit append/parse (CRC fields).
inline void AppendFixed32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

/// Decodes 4 LE bytes at `p` (caller guarantees availability).
inline uint32_t DecodeFixed32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

/// Fixed-width little-endian 64-bit append/parse (double payloads, file
/// headers). Doubles round-trip bit-exactly (NaN payloads, -0.0, inf).
inline void AppendFixed64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, 8);
}

/// Decodes 8 LE bytes at `p` (caller guarantees availability).
inline uint64_t DecodeFixed64(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(u[i]) << (8 * i);
  }
  return v;
}

}  // namespace tcmf

#endif  // TCMF_COMMON_VARINT_H_
