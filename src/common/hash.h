#ifndef TCMF_COMMON_HASH_H_
#define TCMF_COMMON_HASH_H_

#include <cstdint>

namespace tcmf {

/// Finalizing 64-bit mixer (the splitmix64 output function, Vigna 2015):
/// every input bit avalanches into every output bit, so `Mix64(k) % n`
/// spreads *structured* key populations — vessel MMSIs stepping by a
/// stride, dense sequential IDs — uniformly across n buckets.
///
/// This is the one routing hash shared by everything that partitions by
/// key: KeyedProcessParallel's worker router and the partitioned-topic
/// producer path (mlog::PartitionedLog::AppendKeyed). libstdc++'s
/// std::hash<uint64_t> is the identity, which folds `key % n` straight
/// through — keys stepping by a multiple of n all land in bucket 0. Do
/// not route with std::hash.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Bucket of `key` among `n` partitions/workers (n > 0).
inline size_t HashPartition(uint64_t key, size_t n) {
  return static_cast<size_t>(Mix64(key) % n);
}

}  // namespace tcmf

#endif  // TCMF_COMMON_HASH_H_
