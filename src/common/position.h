#ifndef TCMF_COMMON_POSITION_H_
#define TCMF_COMMON_POSITION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tcmf {

/// Milliseconds since the epoch. All event time in the library is TimeMs.
using TimeMs = int64_t;

constexpr TimeMs kMillisPerSecond = 1000;
constexpr TimeMs kMillisPerMinute = 60 * kMillisPerSecond;
constexpr TimeMs kMillisPerHour = 60 * kMillisPerMinute;

/// Domain of a moving entity. The paper's two use cases.
enum class Domain { kMaritime, kAviation };

/// A single surveillance report (AIS or ADS-B like): the raw unit of
/// data-in-motion across the whole system.
struct Position {
  /// Entity identifier (MMSI-like for vessels, ICAO24-like for aircraft).
  uint64_t entity_id = 0;
  TimeMs t = 0;
  double lon = 0.0;  ///< degrees, [-180, 180]
  double lat = 0.0;  ///< degrees, [-90, 90]
  double alt_m = 0.0;  ///< altitude above ground, meters (0 for vessels)
  double speed_mps = 0.0;    ///< ground speed, meters/second
  double heading_deg = 0.0;  ///< course over ground, [0, 360)
  double vrate_mps = 0.0;    ///< vertical rate, meters/second (aviation)
};

/// A time-ordered sequence of positions of one entity.
struct Trajectory {
  uint64_t entity_id = 0;
  std::vector<Position> points;

  bool empty() const { return points.empty(); }
  size_t size() const { return points.size(); }
  TimeMs start_time() const { return points.empty() ? 0 : points.front().t; }
  TimeMs end_time() const { return points.empty() ? 0 : points.back().t; }
};

}  // namespace tcmf

#endif  // TCMF_COMMON_POSITION_H_
