#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace tcmf {

P2Quantile::P2Quantile(double q) : q_(q) {
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  increments_ = {0, q / 2, q, (1 + q) / 2, 1};
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  // Find cell k such that heights_[k] <= x < heights_[k+1].
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    for (int i = 1; i < 4; ++i) {
      if (x >= heights_[i]) k = i;
    }
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Adjust the three middle markers with parabolic interpolation.
  for (int i = 1; i < 4; ++i) {
    double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      int sign = d >= 0 ? 1 : -1;
      double np = positions_[i] + sign;
      double hp = heights_[i] +
                  sign / (positions_[i + 1] - positions_[i - 1]) *
                      ((positions_[i] - positions_[i - 1] + sign) *
                           (heights_[i + 1] - heights_[i]) /
                           (positions_[i + 1] - positions_[i]) +
                       (positions_[i + 1] - positions_[i] - sign) *
                           (heights_[i] - heights_[i - 1]) /
                           (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < hp && hp < heights_[i + 1]) {
        heights_[i] = hp;
      } else {
        // Fall back to linear interpolation.
        heights_[i] = heights_[i] + sign * (heights_[i + sign] - heights_[i]) /
                                        (positions_[i + sign] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the small buffer.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    size_t idx = static_cast<size_t>(q_ * (count_ - 1) + 0.5);
    return sorted[std::min(idx, count_ - 1)];
  }
  return heights_[2];
}

void RunningStats::Add(double x) {
  ++count_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  double delta = x - mean_;
  mean_ += delta / count_;
  m2_ += delta * (x - mean_);
  median_.Add(x);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  size_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double new_mean = mean_ + delta * other.count_ / n;
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(count_) * other.count_ / n;
  mean_ = new_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
  // Median estimators cannot be merged exactly; keep the larger side's.
  if (other.count_ > count_ - other.count_) median_ = other.median_;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), width_((hi - lo) / buckets), counts_(buckets, 0) {}

void Histogram::Add(double x) {
  long long idx = static_cast<long long>((x - lo_) / width_);
  if (idx < 0) idx = 0;
  if (idx >= static_cast<long long>(counts_.size())) {
    idx = static_cast<long long>(counts_.size()) - 1;
  }
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

}  // namespace tcmf
