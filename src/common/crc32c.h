#ifndef TCMF_COMMON_CRC32C_H_
#define TCMF_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace tcmf {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected form) — the
/// checksum every modern storage format uses for per-entry integrity
/// (LevelDB/RocksDB blocks, Kafka record batches, ext4 metadata).
/// Software slice-by-8 implementation, ~1-2 GB/s; no SSE4.2 dependency.

/// Extends `crc` (a previous Crc32c result) with `n` more bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC-32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Masks a CRC before storing it alongside the data it covers. Computing
/// a CRC over bytes that themselves contain CRCs yields pathological
/// results; the rotate-and-add mask (same constant as LevelDB) avoids
/// that while staying invertible.
inline uint32_t Crc32cMask(uint32_t crc) {
  static constexpr uint32_t kMaskDelta = 0xa282ead8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Crc32cMask.
inline uint32_t Crc32cUnmask(uint32_t masked) {
  static constexpr uint32_t kMaskDelta = 0xa282ead8u;
  const uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace tcmf

#endif  // TCMF_COMMON_CRC32C_H_
