#include "common/csv.h"

namespace tcmf {

std::vector<std::string> ParseCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string CsvEscape(const std::string& field, char delim) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Status CsvReader::Open(const std::string& path, bool has_header, char delim) {
  delim_ = delim;
  in_.open(path);
  if (!in_.is_open()) {
    return Status::IoError("cannot open CSV file: " + path);
  }
  if (has_header) {
    std::string line;
    if (std::getline(in_, line)) {
      header_ = ParseCsvLine(line, delim_);
    }
  }
  return Status::Ok();
}

bool CsvReader::Next(std::vector<std::string>* row) {
  std::string line;
  if (!std::getline(in_, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  *row = ParseCsvLine(line, delim_);
  ++rows_read_;
  return true;
}

Status CsvWriter::Open(const std::string& path, char delim) {
  delim_ = delim;
  out_.open(path);
  if (!out_.is_open()) {
    return Status::IoError("cannot open CSV file for writing: " + path);
  }
  return Status::Ok();
}

void CsvWriter::WriteRow(const std::vector<std::string>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out_ << delim_;
    out_ << CsvEscape(row[i], delim_);
  }
  out_ << '\n';
}

Status CsvWriter::Close() {
  out_.close();
  if (out_.fail()) return Status::IoError("error closing CSV file");
  return Status::Ok();
}

}  // namespace tcmf
