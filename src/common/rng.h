#ifndef TCMF_COMMON_RNG_H_
#define TCMF_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace tcmf {

/// Deterministic random source used by the data generators and samplers.
/// All randomness in the library flows through explicitly seeded Rng
/// instances so that experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given rate (events per unit).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Index in [0, weights.size()) drawn proportionally to weights.
  size_t Categorical(const std::vector<double>& weights) {
    std::discrete_distribution<size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  /// Derives an independent child generator (for per-entity streams).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tcmf

#endif  // TCMF_COMMON_RNG_H_
