#ifndef TCMF_COMMON_STRINGS_H_
#define TCMF_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tcmf {

/// Splits `input` on `delim`; empty fields are preserved.
std::vector<std::string> StrSplit(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view input);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

bool StrStartsWith(std::string_view s, std::string_view prefix);
bool StrEndsWith(std::string_view s, std::string_view suffix);

/// Lowercases ASCII characters.
std::string StrToLower(std::string_view s);

/// Strict parse of the whole string; fails on trailing garbage.
Result<double> ParseDouble(std::string_view s);
Result<long long> ParseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace tcmf

#endif  // TCMF_COMMON_STRINGS_H_
