#ifndef TCMF_STORE_STAGES_H_
#define TCMF_STORE_STAGES_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "store/kgstore.h"
#include "stream/pipeline.h"

namespace tcmf::store {

/// Terminal stage: drains a Flow<rdf::Triple> into `*store` — the glue
/// that lets rdf::TripleGeneratorStage / rdf::SemanticTrajectoryStage
/// stream-populate the knowledge store (Figure 2's RDFizer → RDF store
/// edge) instead of materializing triples and bulk-loading. The drain
/// uses the channel's batched pop (batch size = `stage.batch`'s PopMax,
/// default Batched(256)), so ingesting a batch costs one lock
/// acquisition per available chunk, mirroring mlog::LogSink.
///
/// Registers a `stage.name` stage (default "store.kgsink") whose
/// snapshot splices the store's cumulative StoreCounters into the kg_*
/// StageMetrics fields — this is the fix that makes star-query and
/// ingest work visible through Pipeline::ReportJson when the store is
/// driven from a pipeline (per-query StarQueryMetrics never reach the
/// report). records_in mirrors kg_triples_added so the stage table shows
/// ingest volume in its usual column.
///
/// The store must outlive the pipeline run. Ingestion is single-writer
/// (this stage's thread); call store->Compile() after the pipeline
/// completes, then query. Concurrent CountersSnapshot is safe.
inline void KgStoreSink(stream::Flow<rdf::Triple> flow, KnowledgeStore* store,
                        stream::StageOptions stage = {}) {
  stream::Pipeline* pipeline = flow.pipeline();
  if (stage.name.empty()) stage.name = "store.kgsink";
  pipeline->RegisterStage(std::move(stage.name), [store] {
    stream::StageMetrics m;
    const StoreCounters c = store->CountersSnapshot();
    m.kg = true;
    m.kg_triples_added = c.triples_added;
    m.kg_star_queries = c.star_queries;
    m.kg_star_rows = c.star_rows;
    m.kg_triples_scanned = c.triples_scanned;
    m.kg_st_filter_evaluations = c.st_filter_evaluations;
    m.records_in = c.triples_added;
    return m;
  });
  auto in = flow.channel();
  const size_t batch_size = std::max<size_t>(
      1, stage.batch.value_or(stream::BatchPolicy::Batched(256)).PopMax());
  pipeline->AddThread([in, store, batch_size] {
    std::vector<rdf::Triple> batch;
    batch.reserve(batch_size);
    while (true) {
      if (in->PopBatch(&batch, batch_size - batch.size()) == 0) break;
      if (batch.size() < batch_size) continue;
      for (const rdf::Triple& t : batch) store->Add(t);
      batch.clear();
    }
    for (const rdf::Triple& t : batch) store->Add(t);
  });
}

}  // namespace tcmf::store

#endif  // TCMF_STORE_STAGES_H_
