#include "store/columnar.h"

#include <fstream>

namespace tcmf::store {

namespace {

constexpr char kMagic[8] = {'T', 'C', 'M', 'F', 'C', 'O', 'L', '1'};

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool ReadVarint(const std::string& data, size_t* pos, uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < data.size()) {
    uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return true;
    }
    shift += 7;
    if (shift >= 64) return false;
  }
  return false;
}

std::string EncodeColumn(const std::vector<uint64_t>& values) {
  std::string out;
  AppendVarint(&out, values.size());
  uint64_t prev = 0;
  for (uint64_t v : values) {
    int64_t delta = static_cast<int64_t>(v) - static_cast<int64_t>(prev);
    AppendVarint(&out, ZigZag(delta));
    prev = v;
  }
  return out;
}

Result<std::vector<uint64_t>> DecodeColumn(const std::string& data) {
  size_t pos = 0;
  uint64_t count;
  if (!ReadVarint(data, &pos, &count)) {
    return Status::ParseError("columnar: truncated count");
  }
  std::vector<uint64_t> values;
  values.reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t raw;
    if (!ReadVarint(data, &pos, &raw)) {
      return Status::ParseError("columnar: truncated value");
    }
    prev = static_cast<uint64_t>(static_cast<int64_t>(prev) + UnZigZag(raw));
    values.push_back(prev);
  }
  return values;
}

Status WriteTriplePartition(const std::string& path,
                            const std::vector<rdf::EncodedTriple>& triples) {
  std::vector<uint64_t> s, p, o;
  s.reserve(triples.size());
  p.reserve(triples.size());
  o.reserve(triples.size());
  for (const rdf::EncodedTriple& t : triples) {
    s.push_back(t.s);
    p.push_back(t.p);
    o.push_back(t.o);
  }
  std::string sc = EncodeColumn(s);
  std::string pc = EncodeColumn(p);
  std::string oc = EncodeColumn(o);

  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IoError("cannot open partition for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  std::string header;
  AppendVarint(&header, sc.size());
  AppendVarint(&header, pc.size());
  AppendVarint(&header, oc.size());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(sc.data(), static_cast<std::streamsize>(sc.size()));
  out.write(pc.data(), static_cast<std::streamsize>(pc.size()));
  out.write(oc.data(), static_cast<std::streamsize>(oc.size()));
  out.close();
  if (out.fail()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<rdf::EncodedTriple>> ReadTriplePartition(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open partition: " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.size() < sizeof(kMagic) ||
      std::string_view(data.data(), sizeof(kMagic)) !=
          std::string_view(kMagic, sizeof(kMagic))) {
    return Status::ParseError("bad partition magic: " + path);
  }
  size_t pos = sizeof(kMagic);
  uint64_t slen, plen, olen;
  if (!ReadVarint(data, &pos, &slen) || !ReadVarint(data, &pos, &plen) ||
      !ReadVarint(data, &pos, &olen)) {
    return Status::ParseError("bad partition header: " + path);
  }
  if (pos + slen + plen + olen > data.size()) {
    return Status::ParseError("truncated partition: " + path);
  }
  auto s = DecodeColumn(data.substr(pos, slen));
  auto p = DecodeColumn(data.substr(pos + slen, plen));
  auto o = DecodeColumn(data.substr(pos + slen + plen, olen));
  if (!s.ok()) return s.status();
  if (!p.ok()) return p.status();
  if (!o.ok()) return o.status();
  if (s.value().size() != p.value().size() ||
      s.value().size() != o.value().size()) {
    return Status::ParseError("column length mismatch: " + path);
  }
  std::vector<rdf::EncodedTriple> out;
  out.reserve(s.value().size());
  for (size_t i = 0; i < s.value().size(); ++i) {
    out.push_back({s.value()[i], p.value()[i], o.value()[i]});
  }
  return out;
}

}  // namespace tcmf::store
