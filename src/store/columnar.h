#ifndef TCMF_STORE_COLUMNAR_H_
#define TCMF_STORE_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace tcmf::store {

/// Varint + delta encoding for sorted-ish uint64 columns — the compression
/// the paper gets from Parquet's columnar layout (Section 4.2.5), enough to
/// measure layout effects without the real format.
void AppendVarint(std::string* out, uint64_t v);
/// Reads one varint at `*pos`, advancing it. Returns false on truncation.
bool ReadVarint(const std::string& data, size_t* pos, uint64_t* out);

/// Encodes a column with zig-zag deltas between consecutive values.
std::string EncodeColumn(const std::vector<uint64_t>& values);
Result<std::vector<uint64_t>> DecodeColumn(const std::string& data);

/// One on-disk partition of encoded triples, stored column-wise:
/// header | S column | P column | O column. Triples should be sorted by
/// (s,p,o) before writing for best compression.
Status WriteTriplePartition(const std::string& path,
                            const std::vector<rdf::EncodedTriple>& triples);
Result<std::vector<rdf::EncodedTriple>> ReadTriplePartition(
    const std::string& path);

}  // namespace tcmf::store

#endif  // TCMF_STORE_COLUMNAR_H_
