#include "store/kgstore.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <numeric>
#include <thread>

#include "common/strings.h"
#include "geom/geometry.h"
#include "rdf/vocab.h"
#include "store/columnar.h"

namespace tcmf::store {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Advances `cur` within [cur, end) to the first posting with key >= s by
// exponential (galloping) search: cheap when the next match is near —
// the common case when both lists are subject-sorted — and O(log gap)
// when it is far.
const rdf::Posting* Gallop(const rdf::Posting* cur, const rdf::Posting* end,
                           uint64_t s) {
  if (cur == end || cur->key >= s) return cur;
  size_t step = 1;
  const rdf::Posting* probe = cur;
  while (probe + step < end && (probe + step)->key < s) {
    probe += step;
    step *= 2;
  }
  const rdf::Posting* hi = (probe + step < end) ? probe + step : end;
  return std::lower_bound(
      probe, hi, s,
      [](const rdf::Posting& p, uint64_t key) { return p.key < key; });
}

}  // namespace

const char* StarPlanName(StarPlan plan) {
  switch (plan) {
    case StarPlan::kTriplesTableScan:
      return "triples-table-scan";
    case StarPlan::kVerticalPartition:
      return "vertical-partitioning";
    case StarPlan::kVerticalPartitionPushdown:
      return "vertical-partitioning+st-pushdown";
    case StarPlan::kPropertyTable:
      return "property-table";
    case StarPlan::kPropertyTablePushdown:
      return "property-table+st-pushdown";
    case StarPlan::kAdjacencyIndex:
      return "adjacency-index";
    case StarPlan::kAdjacencyIndexPushdown:
      return "adjacency-index+st-pushdown";
  }
  return "unknown";
}

KnowledgeStore::KnowledgeStore(const geom::StCellEncoder& encoder,
                               size_t partitions)
    : encoder_(encoder), partitions_(partitions == 0 ? 1 : partitions) {
  // Intern the vocabulary the ingest fast path and the exact st-filter
  // compare against, so neither ever pays a per-call string lookup.
  stcell_pid_ = dict_.Encode(rdf::Iri(rdf::vocab::kHasStCell));
  wkt_pid_ = dict_.Encode(rdf::Iri(rdf::vocab::kAsWKT));
  ts_pid_ = dict_.Encode(rdf::Iri(rdf::vocab::kHasTimestamp));
}

void KnowledgeStore::Add(const rdf::Triple& triple) {
  rdf::EncodedTriple enc = dict_.Encode(triple);
  partitions_[next_partition_].push_back(enc);
  next_partition_ = (next_partition_ + 1) % partitions_.size();
  ++total_triples_;
  cum_added_.fetch_add(1, std::memory_order_relaxed);
  // hasStCell integer literals feed the subject -> st-cell side index so
  // streamed template ingestion keeps the pushdown plans usable.
  if (enc.p == stcell_pid_ && triple.o.kind == rdf::Term::Kind::kLiteral) {
    if (Result<long long> cell = ParseInt(triple.o.lexical); cell.ok()) {
      subject_stcell_[enc.s] = static_cast<uint64_t>(cell.value());
    }
  }
  compiled_ = false;
}

void KnowledgeStore::AddPositionNode(const rdf::Term& subject, double lon,
                                     double lat, TimeMs t) {
  uint64_t cell = encoder_.Encode(lon, lat, t);
  Add(rdf::Triple{subject, rdf::Iri(rdf::vocab::kHasStCell),
                  rdf::IntLiteral(static_cast<int64_t>(cell))});
  Add(rdf::Triple{subject, rdf::Iri(rdf::vocab::kAsWKT),
                  rdf::TypedLiteral(StrFormat("POINT (%.6f %.6f)", lon, lat),
                                    rdf::vocab::kWktLiteral)});
  Add(rdf::Triple{subject, rdf::Iri(rdf::vocab::kHasTimestamp),
                  rdf::IntLiteral(t)});
  uint64_t sid = dict_.Encode(subject);
  subject_stcell_[sid] = cell;
  subject_pos_[sid] = {lon, lat, t};
}

void KnowledgeStore::Compile() {
  vertical_.clear();
  std::vector<rdf::EncodedTriple> all;
  all.reserve(total_triples_);
  for (const auto& partition : partitions_) {
    for (const rdf::EncodedTriple& t : partition) {
      vertical_[t.p].push_back({t.s, t.o});
      all.push_back(t);
    }
  }
  for (auto& [p, list] : vertical_) {
    std::sort(list.begin(), list.end(), [](const SO& a, const SO& b) {
      return a.s < b.s || (a.s == b.s && a.o < b.o);
    });
  }
  adjacency_.Build(all);
  compiled_ = true;
  property_tables_.clear();
}

void KnowledgeStore::BuildPropertyTable(
    const std::vector<uint64_t>& predicate_ids) {
  if (!compiled_) Compile();
  PropertyTable table;
  table.columns = predicate_ids;
  // Subjects = those appearing in every requested column (complete rows
  // only: the property table materializes the star join).
  std::unordered_map<uint64_t, std::vector<uint64_t>> rows;
  for (size_t col = 0; col < predicate_ids.size(); ++col) {
    auto it = vertical_.find(predicate_ids[col]);
    if (it == vertical_.end()) {
      property_tables_.push_back(std::move(table));
      return;  // empty table: one column has no triples
    }
    for (const SO& so : it->second) {
      auto [rit, inserted] = rows.try_emplace(
          so.s, std::vector<uint64_t>(predicate_ids.size(), 0));
      if (rit->second[col] == 0) rit->second[col] = so.o;
    }
  }
  for (auto& [s, row] : rows) {
    bool complete = true;
    for (uint64_t o : row) complete = complete && o != 0;
    if (!complete) continue;
    table.subjects.push_back(s);
  }
  std::sort(table.subjects.begin(), table.subjects.end());
  table.rows.reserve(table.subjects.size());
  for (uint64_t s : table.subjects) table.rows.push_back(rows[s]);
  property_tables_.push_back(std::move(table));
}

const KnowledgeStore::PropertyTable* KnowledgeStore::FindPropertyTable(
    const std::vector<uint64_t>& predicate_ids) const {
  for (const PropertyTable& table : property_tables_) {
    bool all = true;
    for (uint64_t pid : predicate_ids) {
      if (std::find(table.columns.begin(), table.columns.end(), pid) ==
          table.columns.end()) {
        all = false;
        break;
      }
    }
    if (all) return &table;
  }
  return nullptr;
}

bool KnowledgeStore::ExactStMatch(
    uint64_t subject, const geom::StCellEncoder::StBox& box) const {
  // Deliberately pays the realistic post-processing cost: fetch the WKT
  // and timestamp literals of the subject and parse them, exactly what a
  // layout without pushdown has to do for every candidate.
  auto fetch = [&](uint64_t pid) -> const SO* {
    auto it = vertical_.find(pid);
    if (it == vertical_.end()) return nullptr;
    const std::vector<SO>& list = it->second;
    auto pos = std::lower_bound(
        list.begin(), list.end(), subject,
        [](const SO& so, uint64_t s) { return so.s < s; });
    if (pos == list.end() || pos->s != subject) return nullptr;
    return &*pos;
  };
  const SO* wkt = fetch(wkt_pid_);
  const SO* ts = fetch(ts_pid_);
  if (wkt == nullptr || ts == nullptr) return false;

  std::optional<rdf::Term> wkt_term = dict_.Decode(wkt->o);
  std::optional<rdf::Term> ts_term = dict_.Decode(ts->o);
  if (!wkt_term || !ts_term) return false;
  Result<geom::LonLat> point = geom::ParseWktPoint(wkt_term->lexical);
  Result<long long> t = ParseInt(ts_term->lexical);
  if (!point.ok() || !t.ok()) return false;
  return box.bounds.Contains(point.value().lon, point.value().lat) &&
         t.value() >= box.t_begin && t.value() <= box.t_end;
}

StoreCounters KnowledgeStore::CountersSnapshot() const {
  StoreCounters c;
  c.triples_added = cum_added_.load(std::memory_order_relaxed);
  c.star_queries = cum_queries_.load(std::memory_order_relaxed);
  c.star_rows = cum_rows_.load(std::memory_order_relaxed);
  c.triples_scanned = cum_scanned_.load(std::memory_order_relaxed);
  c.st_filter_evaluations = cum_st_filters_.load(std::memory_order_relaxed);
  return c;
}

std::vector<StarRow> KnowledgeStore::RunStar(const StarQuery& query,
                                             StarPlan plan,
                                             StarQueryMetrics* metrics) const {
  StarQueryMetrics local;
  Clock::time_point start = Clock::now();
  std::vector<StarRow> rows;
  const size_t k = query.predicate_ids.size();

  auto finish = [&](std::vector<StarRow> result) {
    local.rows = result.size();
    local.wall_ms = ElapsedMs(start);
    cum_queries_.fetch_add(1, std::memory_order_relaxed);
    cum_rows_.fetch_add(local.rows, std::memory_order_relaxed);
    cum_scanned_.fetch_add(local.triples_scanned, std::memory_order_relaxed);
    cum_st_filters_.fetch_add(local.st_filter_evaluations,
                              std::memory_order_relaxed);
    if (metrics != nullptr) *metrics = local;
    return result;
  };

  if (k == 0) return finish({});

  if (plan == StarPlan::kTriplesTableScan) {
    // Full scan of every partition, hash-joining subject -> slot values.
    // Partition groups are scanned by parallel workers.
    size_t workers = std::min<size_t>(
        partitions_.size(),
        std::max<unsigned>(1, std::thread::hardware_concurrency()));
    std::vector<std::unordered_map<uint64_t, std::vector<uint64_t>>> maps(
        workers);
    std::vector<size_t> scanned(workers, 0);
    std::vector<std::thread> threads;
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (size_t pi = w; pi < partitions_.size(); pi += workers) {
          for (const rdf::EncodedTriple& t : partitions_[pi]) {
            ++scanned[w];
            for (size_t slot = 0; slot < k; ++slot) {
              if (t.p == query.predicate_ids[slot]) {
                auto [it, inserted] = maps[w].try_emplace(
                    t.s, std::vector<uint64_t>(k, 0));
                if (it->second[slot] == 0) it->second[slot] = t.o;
              }
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();

    std::unordered_map<uint64_t, std::vector<uint64_t>> merged;
    for (size_t w = 0; w < workers; ++w) {
      local.triples_scanned += scanned[w];
      for (auto& [s, slots] : maps[w]) {
        auto [it, inserted] = merged.try_emplace(s, slots);
        if (!inserted) {
          for (size_t slot = 0; slot < k; ++slot) {
            if (it->second[slot] == 0) it->second[slot] = slots[slot];
          }
        }
      }
    }
    for (auto& [s, slots] : merged) {
      bool complete = std::all_of(slots.begin(), slots.end(),
                                  [](uint64_t o) { return o != 0; });
      if (!complete) continue;
      ++local.candidate_subjects;
      if (query.has_st_constraint) {
        ++local.st_filter_evaluations;
        if (!ExactStMatch(s, query.st_box)) continue;
      }
      rows.push_back({s, slots});
    }
    return finish(std::move(rows));
  }

  // The remaining layouts require Compile().
  if (!compiled_) return finish({});

  if (plan == StarPlan::kPropertyTable ||
      plan == StarPlan::kPropertyTablePushdown) {
    const PropertyTable* table = FindPropertyTable(query.predicate_ids);
    if (table == nullptr) return finish({});
    // Map query slots to table columns.
    std::vector<size_t> col_of(k);
    for (size_t i = 0; i < k; ++i) {
      col_of[i] = static_cast<size_t>(
          std::find(table->columns.begin(), table->columns.end(),
                    query.predicate_ids[i]) -
          table->columns.begin());
    }
    bool pushdown = plan == StarPlan::kPropertyTablePushdown &&
                    query.has_st_constraint;
    for (size_t i = 0; i < table->subjects.size(); ++i) {
      uint64_t s = table->subjects[i];
      ++local.triples_scanned;  // one wide-row visit
      if (pushdown) {
        auto it = subject_stcell_.find(s);
        if (it == subject_stcell_.end() ||
            !encoder_.MayIntersect(it->second, query.st_box)) {
          continue;
        }
      }
      ++local.candidate_subjects;
      if (query.has_st_constraint) {
        ++local.st_filter_evaluations;
        if (!ExactStMatch(s, query.st_box)) continue;
      }
      StarRow row;
      row.subject = s;
      row.objects.reserve(k);
      for (size_t slot = 0; slot < k; ++slot) {
        row.objects.push_back(table->rows[i][col_of[slot]]);
      }
      rows.push_back(std::move(row));
    }
    return finish(std::move(rows));
  }

  if (plan == StarPlan::kAdjacencyIndex ||
      plan == StarPlan::kAdjacencyIndexPushdown) {
    // Per-predicate sorted postings + stats from the adjacency index.
    std::vector<rdf::AdjacencyIndex::Span> spans(k);
    std::vector<const rdf::PredicateStats*> stats(k);
    for (size_t i = 0; i < k; ++i) {
      stats[i] = adjacency_.Stats(query.predicate_ids[i]);
      if (stats[i] == nullptr) return finish({});
      spans[i] = adjacency_.Subjects(query.predicate_ids[i]);
    }

    if (plan == StarPlan::kAdjacencyIndexPushdown &&
        query.has_st_constraint) {
      // Integer st-cell pre-filter, then one postings probe per slot.
      for (const auto& [s, cell] : subject_stcell_) {
        ++local.triples_scanned;  // side-index probe (integer compare)
        if (!encoder_.MayIntersect(cell, query.st_box)) continue;
        StarRow row;
        row.subject = s;
        row.objects.assign(k, 0);
        bool complete = true;
        for (size_t i = 0; i < k && complete; ++i) {
          ++local.triples_scanned;  // one indexed probe
          auto [lo, hi] = adjacency_.ObjectsOf(query.predicate_ids[i], s);
          if (lo == hi) {
            complete = false;
          } else {
            row.objects[i] = lo->value;  // smallest object: (s,o)-sorted
          }
        }
        if (!complete) continue;
        ++local.candidate_subjects;
        ++local.st_filter_evaluations;
        if (!ExactStMatch(s, query.st_box)) continue;
        rows.push_back(std::move(row));
      }
      return finish(std::move(rows));
    }

    // Stats-ordered postings intersection: drive from the predicate with
    // the fewest distinct subjects, then leapfrog the other lists with
    // galloping cursors (monotonic — each list is walked at most once).
    std::vector<size_t> ord(k);
    std::iota(ord.begin(), ord.end(), 0);
    std::sort(ord.begin(), ord.end(), [&](size_t a, size_t b) {
      return stats[a]->distinct_subjects < stats[b]->distinct_subjects;
    });
    std::vector<const rdf::Posting*> cur(k);
    for (size_t i = 0; i < k; ++i) cur[i] = spans[i].first;

    const size_t driver = ord[0];
    const rdf::Posting* d = spans[driver].first;
    const rdf::Posting* d_end = spans[driver].second;
    while (d != d_end) {
      const uint64_t s = d->key;
      const uint64_t driver_obj = d->value;  // smallest object of the run
      // Skip the rest of the equal-subject run.
      do {
        ++local.triples_scanned;
        ++d;
      } while (d != d_end && d->key == s);

      StarRow row;
      row.subject = s;
      row.objects.assign(k, 0);
      row.objects[driver] = driver_obj;
      bool complete = true;
      for (size_t j = 1; j < k && complete; ++j) {
        const size_t slot = ord[j];
        ++local.triples_scanned;  // one galloping probe
        cur[slot] = Gallop(cur[slot], spans[slot].second, s);
        if (cur[slot] == spans[slot].second || cur[slot]->key != s) {
          complete = false;
        } else {
          row.objects[slot] = cur[slot]->value;
        }
      }
      if (!complete) continue;
      ++local.candidate_subjects;
      if (query.has_st_constraint) {
        ++local.st_filter_evaluations;
        if (!ExactStMatch(s, query.st_box)) continue;
      }
      rows.push_back(std::move(row));
    }
    return finish(std::move(rows));
  }

  // Gather the per-predicate sorted lists.
  std::vector<const std::vector<SO>*> lists;
  for (uint64_t pid : query.predicate_ids) {
    auto it = vertical_.find(pid);
    if (it == vertical_.end()) return finish({});
    lists.push_back(&it->second);
  }

  auto probe = [&](const std::vector<SO>& list, uint64_t s) -> uint64_t {
    auto pos =
        std::lower_bound(list.begin(), list.end(), s,
                         [](const SO& so, uint64_t key) { return so.s < key; });
    if (pos == list.end() || pos->s != s) return 0;
    return pos->o;
  };

  if (plan == StarPlan::kVerticalPartition) {
    // Drive from the smallest predicate list.
    size_t driver = 0;
    for (size_t i = 1; i < k; ++i) {
      if (lists[i]->size() < lists[driver]->size()) driver = i;
    }
    local.triples_scanned += lists[driver]->size();
    uint64_t prev_s = 0;
    for (const SO& so : *lists[driver]) {
      if (so.s == prev_s) continue;  // distinct subjects
      prev_s = so.s;
      StarRow row;
      row.subject = so.s;
      row.objects.assign(k, 0);
      row.objects[driver] = so.o;
      bool complete = true;
      for (size_t i = 0; i < k && complete; ++i) {
        if (i == driver) continue;
        local.triples_scanned += 1;  // one indexed probe
        row.objects[i] = probe(*lists[i], so.s);
        if (row.objects[i] == 0) complete = false;
      }
      if (!complete) continue;
      ++local.candidate_subjects;
      if (query.has_st_constraint) {
        ++local.st_filter_evaluations;
        if (!ExactStMatch(so.s, query.st_box)) continue;
      }
      rows.push_back(std::move(row));
    }
    return finish(std::move(rows));
  }

  // kVerticalPartitionPushdown: integer st-cell pre-filter first.
  if (!query.has_st_constraint) {
    // Without a constraint the pushdown degenerates to the vertical plan.
    return RunStar(query, StarPlan::kVerticalPartition, metrics);
  }
  for (const auto& [s, cell] : subject_stcell_) {
    ++local.triples_scanned;  // side-index probe (integer compare)
    if (!encoder_.MayIntersect(cell, query.st_box)) continue;
    StarRow row;
    row.subject = s;
    row.objects.assign(k, 0);
    bool complete = true;
    for (size_t i = 0; i < k && complete; ++i) {
      local.triples_scanned += 1;
      row.objects[i] = probe(*lists[i], s);
      if (row.objects[i] == 0) complete = false;
    }
    if (!complete) continue;
    ++local.candidate_subjects;
    ++local.st_filter_evaluations;
    if (!ExactStMatch(s, query.st_box)) continue;
    rows.push_back(std::move(row));
  }
  return finish(std::move(rows));
}

Status KnowledgeStore::SaveTriples(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create directory: " + dir);
  for (size_t i = 0; i < partitions_.size(); ++i) {
    std::vector<rdf::EncodedTriple> sorted = partitions_[i];
    std::sort(sorted.begin(), sorted.end(),
              [](const rdf::EncodedTriple& a, const rdf::EncodedTriple& b) {
                return std::tuple(a.s, a.p, a.o) < std::tuple(b.s, b.p, b.o);
              });
    TCMF_RETURN_IF_ERROR(WriteTriplePartition(
        dir + StrFormat("/partition-%04zu.col", i), sorted));
  }
  return Status::Ok();
}

Result<size_t> KnowledgeStore::LoadTriples(const std::string& dir) {
  size_t loaded = 0;
  for (size_t i = 0; i < partitions_.size(); ++i) {
    std::string path = dir + StrFormat("/partition-%04zu.col", i);
    if (!std::filesystem::exists(path)) break;
    Result<std::vector<rdf::EncodedTriple>> part = ReadTriplePartition(path);
    if (!part.ok()) return part.status();
    partitions_[i] = std::move(part).value();
    loaded += partitions_[i].size();
  }
  total_triples_ = 0;
  for (const auto& p : partitions_) total_triples_ += p.size();
  compiled_ = false;
  return loaded;
}

bool KnowledgeStore::LookupPosition(uint64_t subject, double* lon,
                                    double* lat, TimeMs* t) const {
  auto it = subject_pos_.find(subject);
  if (it == subject_pos_.end()) return false;
  *lon = it->second.lon;
  *lat = it->second.lat;
  *t = it->second.t;
  return true;
}

}  // namespace tcmf::store
