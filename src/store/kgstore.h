#ifndef TCMF_STORE_KGSTORE_H_
#define TCMF_STORE_KGSTORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/position.h"
#include "common/status.h"
#include "geom/stcell.h"
#include "rdf/adjacency.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace tcmf::store {

/// Physical layout / plan selector for star queries (Section 4.2.5):
/// the paper's "one-triples-table" vs vertical partitioning, each with or
/// without the spatio-temporal dictionary-encoding pushdown, plus the
/// adjacency-indexed layout (per-predicate sorted postings + cardinality
/// stats, the SNIPPETS.md triplestore shape) that drives the star join
/// from the predicate with the fewest distinct subjects.
enum class StarPlan {
  kTriplesTableScan = 0,      ///< full scan + hash join + late st-filter
  kVerticalPartition,         ///< per-predicate merge join + late st-filter
  kVerticalPartitionPushdown, ///< integer st-cell pre-filter, then join
  kPropertyTable,             ///< pre-joined wide rows + late st-filter
  kPropertyTablePushdown,     ///< property table + integer st pre-filter
  kAdjacencyIndex,            ///< stats-ordered postings intersection
  kAdjacencyIndexPushdown,    ///< st-cell pre-filter + postings probes
};

const char* StarPlanName(StarPlan plan);

/// A star query: all listed predicates must be present on the subject,
/// optionally constrained to a spatio-temporal box.
struct StarQuery {
  std::vector<uint64_t> predicate_ids;
  bool has_st_constraint = false;
  geom::StCellEncoder::StBox st_box;
};

/// One result row of a star query: the subject plus the object bound per
/// queried predicate (first match = smallest object id for the indexed
/// plans; plans agree whenever subjects carry one object per predicate).
struct StarRow {
  uint64_t subject = 0;
  std::vector<uint64_t> objects;  ///< parallel to StarQuery::predicate_ids
};

/// Per-query evaluation counters, filled by RunStar.
struct StarQueryMetrics {
  size_t triples_scanned = 0;
  size_t candidate_subjects = 0;
  size_t st_filter_evaluations = 0;  ///< exact (string/geometry) st checks
  size_t rows = 0;
  double wall_ms = 0.0;
};

/// Cumulative, thread-safe store counters: every Add and every RunStar
/// accumulates here regardless of which caller held the metrics pointer.
/// This is what stage helpers (store::KgStoreSink) splice into
/// stream::StageMetrics so Pipeline::ReportJson surfaces the store's
/// work (the kg_* fields) — per-query StarQueryMetrics alone are
/// invisible once the store is driven from a pipeline stage.
struct StoreCounters {
  uint64_t triples_added = 0;
  uint64_t star_queries = 0;
  uint64_t star_rows = 0;
  uint64_t triples_scanned = 0;
  uint64_t st_filter_evaluations = 0;
};

/// Batch knowledge-graph store: dictionary-encoded triples, partitioned,
/// with per-layout star-join evaluation and spatio-temporal pruning via
/// the StCellEncoder integer ids. Partition-parallel scans use a thread
/// per partition group (the local stand-in for Spark executors).
///
/// Lifecycle contract: ingest (Add/AddPositionNode/LoadTriples), then
/// Compile(), then query (RunStar). Compile builds the vertical layout
/// and the adjacency index; adding afterwards requires re-Compile.
///
/// Thread-safety: ingestion and Compile are single-writer. After
/// Compile returns, any number of threads may call RunStar /
/// LookupPosition / CountersSnapshot concurrently (the layouts are
/// immutable between compiles; cumulative counters are atomics).
class KnowledgeStore {
 public:
  /// `encoder` defines the spatio-temporal discretization; `partitions`
  /// the number of storage partitions.
  KnowledgeStore(const geom::StCellEncoder& encoder, size_t partitions = 8);

  rdf::Dictionary& dictionary() { return dict_; }
  const rdf::Dictionary& dictionary() const { return dict_; }

  /// Adds a triple. Triples whose predicate is vocab::kHasStCell with an
  /// integer-literal object also feed the subject -> st-cell side index
  /// (the paper's dictionary-encoding of approximate positions), so
  /// streamed ingestion through a template that emits hasStCell keeps
  /// the pushdown plans usable.
  void Add(const rdf::Triple& triple);

  /// Registers the exact position of a subject for final st filtering
  /// (the store keeps it alongside the WKT literal, as decoding WKT at
  /// query time is exactly the "post-processing cost" being measured).
  /// Also assigns the subject's st-cell id.
  void AddPositionNode(const rdf::Term& subject, double lon, double lat,
                       TimeMs t);

  /// Freezes ingestion: builds the vertical-partitioning layout, the
  /// adjacency index (per-predicate sorted postings + cardinality
  /// stats), and sorts runs. Must be called before RunStar.
  void Compile();

  /// Materializes a property table over `predicate_ids` (one wide row per
  /// subject holding the first object per predicate). Property-table
  /// plans serve any star query whose predicates are a subset of a built
  /// table's columns. Requires Compile() first.
  void BuildPropertyTable(const std::vector<uint64_t>& predicate_ids);

  /// Evaluates a star query under the chosen plan. Safe for concurrent
  /// callers after Compile(). All plans return the same row set for the
  /// same query (the differential invariant the test suite and the
  /// bench gates enforce).
  std::vector<StarRow> RunStar(const StarQuery& query, StarPlan plan,
                               StarQueryMetrics* metrics) const;

  /// Persists/loads the triples table as columnar partition files under
  /// `dir` (partition-%04zu.col). Dictionary is not persisted (ids only).
  Status SaveTriples(const std::string& dir) const;
  Result<size_t> LoadTriples(const std::string& dir);

  size_t size() const { return total_triples_; }
  size_t partitions() const { return partitions_.size(); }
  const geom::StCellEncoder& encoder() const { return encoder_; }

  /// The adjacency index built by Compile() (empty before). Valid until
  /// the next Compile().
  const rdf::AdjacencyIndex& adjacency() const { return adjacency_; }

  /// Snapshot of the cumulative counters (thread-safe; see
  /// StoreCounters).
  StoreCounters CountersSnapshot() const;

  /// Exact spatio-temporal point of a subject (for verification); false
  /// when the subject has no registered position.
  bool LookupPosition(uint64_t subject, double* lon, double* lat,
                      TimeMs* t) const;

 private:
  struct SO {
    uint64_t s, o;
  };

  bool ExactStMatch(uint64_t subject,
                    const geom::StCellEncoder::StBox& box) const;

  geom::StCellEncoder encoder_;
  rdf::Dictionary dict_;
  std::vector<std::vector<rdf::EncodedTriple>> partitions_;
  size_t total_triples_ = 0;
  size_t next_partition_ = 0;
  /// Interned at construction: the vocabulary ids the ingest fast path
  /// and ExactStMatch compare against (no per-call Lookup).
  uint64_t stcell_pid_ = 0;
  uint64_t wkt_pid_ = 0;
  uint64_t ts_pid_ = 0;

  /// Vertical partitioning: predicate -> (s,o) pairs sorted by s.
  std::unordered_map<uint64_t, std::vector<SO>> vertical_;
  /// Adjacency index over all partitions (built by Compile).
  rdf::AdjacencyIndex adjacency_;
  /// Property tables: columns (predicate ids) + rows sorted by subject.
  struct PropertyTable {
    std::vector<uint64_t> columns;
    std::vector<uint64_t> subjects;        ///< sorted
    std::vector<std::vector<uint64_t>> rows;  ///< parallel to subjects
  };
  std::vector<PropertyTable> property_tables_;
  const PropertyTable* FindPropertyTable(
      const std::vector<uint64_t>& predicate_ids) const;
  /// subject -> st cell id (integer approximation of position+time).
  std::unordered_map<uint64_t, uint64_t> subject_stcell_;
  struct ExactPos {
    double lon, lat;
    TimeMs t;
  };
  std::unordered_map<uint64_t, ExactPos> subject_pos_;
  bool compiled_ = false;

  // Cumulative counters (StoreCounters). Mutable + relaxed atomics: the
  // const query path accumulates them and concurrent RunStar callers
  // must not race.
  mutable std::atomic<uint64_t> cum_added_{0};
  mutable std::atomic<uint64_t> cum_queries_{0};
  mutable std::atomic<uint64_t> cum_rows_{0};
  mutable std::atomic<uint64_t> cum_scanned_{0};
  mutable std::atomic<uint64_t> cum_st_filters_{0};
};

}  // namespace tcmf::store

#endif  // TCMF_STORE_KGSTORE_H_
