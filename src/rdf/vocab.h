#ifndef TCMF_RDF_VOCAB_H_
#define TCMF_RDF_VOCAB_H_

namespace tcmf::rdf::vocab {

/// The datAcron ontology vocabulary (Section 4.1, [27]) — the subset the
/// library's RDFizers and analytics use, plus the external terms the
/// ontology builds on (DUL events, GeoSPARQL relations).

// Namespaces.
inline constexpr char kDatacron[] = "http://www.datacron-project.eu/datAcron#";
inline constexpr char kDul[] =
    "http://www.ontologydesignpatterns.org/ont/dul/DUL.owl#";
inline constexpr char kGeo[] = "http://www.opengis.net/ont/geosparql#";
inline constexpr char kRdf[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";

// Classes.
inline constexpr char kTrajectory[] =
    "http://www.datacron-project.eu/datAcron#Trajectory";
inline constexpr char kTrajectoryPart[] =
    "http://www.datacron-project.eu/datAcron#TrajectoryPart";
inline constexpr char kSemanticNode[] =
    "http://www.datacron-project.eu/datAcron#SemanticNode";
inline constexpr char kRawPosition[] =
    "http://www.datacron-project.eu/datAcron#RawPosition";
inline constexpr char kMovingObject[] =
    "http://www.datacron-project.eu/datAcron#MovingObject";
inline constexpr char kVessel[] =
    "http://www.datacron-project.eu/datAcron#Vessel";
inline constexpr char kAircraft[] =
    "http://www.datacron-project.eu/datAcron#Aircraft";
inline constexpr char kEvent[] =
    "http://www.ontologydesignpatterns.org/ont/dul/DUL.owl#Event";
inline constexpr char kWeatherCondition[] =
    "http://www.datacron-project.eu/datAcron#WeatherCondition";
inline constexpr char kRegion[] =
    "http://www.datacron-project.eu/datAcron#Region";
inline constexpr char kPort[] = "http://www.datacron-project.eu/datAcron#Port";

// Properties.
inline constexpr char kType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kHasPart[] =
    "http://www.datacron-project.eu/datAcron#hasPart";
inline constexpr char kHasNode[] =
    "http://www.datacron-project.eu/datAcron#hasSemanticNode";
inline constexpr char kOfMovingObject[] =
    "http://www.datacron-project.eu/datAcron#ofMovingObject";
inline constexpr char kHasGeometry[] =
    "http://www.opengis.net/ont/geosparql#hasGeometry";
inline constexpr char kAsWKT[] = "http://www.opengis.net/ont/geosparql#asWKT";
inline constexpr char kWithin[] =
    "http://www.ontologydesignpatterns.org/ont/dul/DUL.owl#hasLocation";
inline constexpr char kNearTo[] =
    "http://www.opengis.net/ont/geosparql#nearTo";
inline constexpr char kHasTimestamp[] =
    "http://www.datacron-project.eu/datAcron#hasTimestamp";
inline constexpr char kHasSpeed[] =
    "http://www.datacron-project.eu/datAcron#hasSpeed";
inline constexpr char kHasHeading[] =
    "http://www.datacron-project.eu/datAcron#hasHeading";
inline constexpr char kHasAltitude[] =
    "http://www.datacron-project.eu/datAcron#hasAltitude";
inline constexpr char kEventType[] =
    "http://www.datacron-project.eu/datAcron#eventType";
inline constexpr char kOccurs[] =
    "http://www.datacron-project.eu/datAcron#occurs";
inline constexpr char kHasStCell[] =
    "http://www.datacron-project.eu/datAcron#hasSpatioTemporalCell";
inline constexpr char kHasWindSpeed[] =
    "http://www.datacron-project.eu/datAcron#hasWindSpeed";
inline constexpr char kHasWaveHeight[] =
    "http://www.datacron-project.eu/datAcron#hasWaveHeight";
inline constexpr char kHasSeverity[] =
    "http://www.datacron-project.eu/datAcron#hasSeverity";
inline constexpr char kHasName[] =
    "http://www.datacron-project.eu/datAcron#hasName";
inline constexpr char kHasKind[] =
    "http://www.datacron-project.eu/datAcron#hasKind";

// Datatypes.
inline constexpr char kWktLiteral[] =
    "http://www.opengis.net/ont/geosparql#wktLiteral";

}  // namespace tcmf::rdf::vocab

#endif  // TCMF_RDF_VOCAB_H_
