#ifndef TCMF_RDF_BGP_H_
#define TCMF_RDF_BGP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"

namespace tcmf::rdf {

/// One slot of a triple pattern: either a variable ("?x") or a constant
/// term. The SPARQL-subset query surface of the real-time knowledge graph.
struct PatternTerm {
  bool is_var = false;
  std::string var;  ///< variable name without '?'
  Term term;        ///< constant when !is_var

  static PatternTerm Var(std::string name) {
    PatternTerm p;
    p.is_var = true;
    p.var = std::move(name);
    return p;
  }
  static PatternTerm Const(Term t) {
    PatternTerm p;
    p.term = std::move(t);
    return p;
  }
};

struct TriplePattern {
  PatternTerm s, p, o;
};

/// A solution row: variable name -> bound term id (decode via the graph's
/// dictionary).
using Binding = std::unordered_map<std::string, uint64_t>;

/// Evaluates a basic graph pattern by index-nested-loop joins in pattern
/// order, backtracking over bindings. Suitable for the star and path
/// queries the paper's workflows use.
std::vector<Binding> EvaluateBgp(const Graph& graph,
                                 const std::vector<TriplePattern>& patterns);

/// Decodes one bound variable from a binding; nullopt when unbound.
std::optional<Term> BoundTerm(const Graph& graph, const Binding& binding,
                              const std::string& var);

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_BGP_H_
