#ifndef TCMF_RDF_BGP_H_
#define TCMF_RDF_BGP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"

namespace tcmf::rdf {

/// One slot of a triple pattern: either a variable ("?x") or a constant
/// term. The SPARQL-subset query surface of the real-time knowledge graph.
struct PatternTerm {
  bool is_var = false;
  std::string var;  ///< variable name without '?'
  Term term;        ///< constant when !is_var

  static PatternTerm Var(std::string name) {
    PatternTerm p;
    p.is_var = true;
    p.var = std::move(name);
    return p;
  }
  static PatternTerm Const(Term t) {
    PatternTerm p;
    p.term = std::move(t);
    return p;
  }
};

struct TriplePattern {
  PatternTerm s, p, o;
};

/// A solution row: variable name -> bound term id (decode via the graph's
/// dictionary).
using Binding = std::unordered_map<std::string, uint64_t>;

/// Evaluates a basic graph pattern by index-nested-loop joins with
/// worst-case-bounded join ordering: patterns are greedily reordered
/// smallest-estimated-cardinality-first, seeded by the adjacency index's
/// per-predicate stats (AdjacencyIndex::EstimateCardinality) and updated
/// as each chosen pattern's variables become bound. The result multiset
/// of bindings is invariant under pattern order (a BGP is a join), so
/// this returns exactly the rows EvaluateBgpInOrder does — verified by
/// the differential suite in tests/kg_equiv_test.cc — while never paying
/// the pathological cost of an unselective leading pattern.
///
/// Thread-safety: safe for concurrent callers on a graph that is not
/// being mutated (same contract as Graph::Match).
std::vector<Binding> EvaluateBgp(const Graph& graph,
                                 const std::vector<TriplePattern>& patterns);

/// Reference evaluator: index-nested-loop joins in the given pattern
/// order, no reordering. Same bindings as EvaluateBgp (as a multiset);
/// kept as the differential baseline and for callers that hand-order
/// their patterns.
std::vector<Binding> EvaluateBgpInOrder(
    const Graph& graph, const std::vector<TriplePattern>& patterns);

/// The join order EvaluateBgp would pick: indexes into `patterns`,
/// evaluation-order first. Exposed for tests and plan diagnostics
/// (docs/KG_STORE.md shows a worked example).
std::vector<size_t> PlanBgpOrder(const Graph& graph,
                                 const std::vector<TriplePattern>& patterns);

/// Decodes one bound variable from a binding; nullopt when unbound.
std::optional<Term> BoundTerm(const Graph& graph, const Binding& binding,
                              const std::string& var);

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_BGP_H_
