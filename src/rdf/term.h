#ifndef TCMF_RDF_TERM_H_
#define TCMF_RDF_TERM_H_

#include <cstdint>
#include <string>

namespace tcmf::rdf {

/// An RDF term: IRI, literal (with optional datatype), or blank node.
/// Stored decoded; the Dictionary maps terms to dense integer ids for the
/// store and indexes.
struct Term {
  enum class Kind : uint8_t { kIri = 0, kLiteral = 1, kBlank = 2 };

  Kind kind = Kind::kIri;
  std::string lexical;
  /// Datatype IRI for typed literals; empty for plain literals and IRIs.
  std::string datatype;

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical &&
           datatype == other.datatype;
  }

  /// N-Triples-style rendering: <iri>, "literal"^^<dt>, _:blank.
  std::string ToString() const;
};

/// Convenience constructors.
Term Iri(std::string iri);
Term Blank(std::string label);
Term Literal(std::string value);
Term TypedLiteral(std::string value, std::string datatype);
Term DoubleLiteral(double value);
Term IntLiteral(int64_t value);

/// Canonical encoding used as the dictionary key (kind-prefixed so IRIs and
/// literals with equal lexical forms stay distinct).
std::string TermKey(const Term& term);

/// A decoded triple.
struct Triple {
  Term s, p, o;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  std::string ToString() const;
};

/// A dictionary-encoded triple: the unit the store operates on.
struct EncodedTriple {
  uint64_t s = 0, p = 0, o = 0;

  bool operator==(const EncodedTriple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_TERM_H_
