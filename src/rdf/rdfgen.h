#ifndef TCMF_RDF_RDFGEN_H_
#define TCMF_RDF_RDFGEN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "rdf/term.h"
#include "stream/record.h"

namespace tcmf::rdf {

/// The generic RDF generation framework of Section 4.2.3: a *data
/// connector* pulls records from a source (applying cleaning/derivation),
/// and a *triple generator* converts each record into triples according to
/// a *graph template* whose slots reference a *variable vector*.

/// Produces one value (term) from a record; returning nullopt suppresses
/// every pattern referencing the variable for that record.
using VariableFn =
    std::function<std::optional<Term>(const stream::Record&)>;

/// Named derived variables: lets graph templates refer both to datasource
/// fields and to values generated during conversion (IRI minting, unit
/// conversions, WKT extraction...).
class VariableVector {
 public:
  /// Registers a derived variable.
  void Define(std::string name, VariableFn fn);

  /// Convenience: variable bound to a record field rendered as a plain or
  /// typed literal.
  void DefineFieldLiteral(const std::string& name, const std::string& field);
  void DefineFieldDouble(const std::string& name, const std::string& field);
  void DefineFieldInt(const std::string& name, const std::string& field);
  /// Variable bound to an IRI minted as prefix + field value.
  void DefineFieldIri(const std::string& name, const std::string& field,
                      const std::string& prefix);

  /// Resolves a variable against a record; nullopt when undefined or the
  /// variable function abstains.
  std::optional<Term> Resolve(const std::string& name,
                              const stream::Record& record) const;

  bool Has(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, VariableFn>> vars_;
};

/// One slot of a template pattern: constant term or variable reference.
struct TemplateSlot {
  bool is_var = false;
  std::string var;
  Term constant;

  static TemplateSlot Var(std::string name) {
    TemplateSlot s;
    s.is_var = true;
    s.var = std::move(name);
    return s;
  }
  static TemplateSlot Const(Term t) {
    TemplateSlot s;
    s.constant = std::move(t);
    return s;
  }
};

/// A graph template: triple patterns over constants and variables
/// (Figure 3 of the paper). Patterns whose variables cannot be resolved
/// for a record are skipped for that record (open-world generation).
class GraphTemplate {
 public:
  void Add(TemplateSlot s, TemplateSlot p, TemplateSlot o);

  /// Instantiates the template for one record.
  std::vector<Triple> Generate(const stream::Record& record,
                               const VariableVector& vars) const;

  size_t pattern_count() const { return patterns_.size(); }

 private:
  struct Pattern {
    TemplateSlot s, p, o;
  };
  std::vector<Pattern> patterns_;
};

/// Pulls records from a source, optionally filtering and enriching them
/// before triple generation — the "data connector" component.
class DataConnector {
 public:
  virtual ~DataConnector() = default;

  /// Next record, or nullopt at end of source.
  virtual std::optional<stream::Record> Next() = 0;
};

/// Connector over a pre-materialized record vector (used for streams that
/// were already ingested, and in tests).
class VectorConnector : public DataConnector {
 public:
  explicit VectorConnector(std::vector<stream::Record> records)
      : records_(std::move(records)) {}

  std::optional<stream::Record> Next() override;

 private:
  std::vector<stream::Record> records_;
  size_t pos_ = 0;
};

/// Connector over a CSV file with a header row: each row becomes a record
/// with string fields named by the header; numeric-looking fields are
/// parsed into numbers.
class CsvConnector : public DataConnector {
 public:
  /// Opens the file; surface errors early.
  static Result<std::unique_ptr<CsvConnector>> Open(const std::string& path);

  std::optional<stream::Record> Next() override;

 private:
  CsvConnector() = default;
  CsvReader reader_;
};

/// Wraps a connector with a transform (cleaning, value computation,
/// filtering — return nullopt to drop the record).
class TransformConnector : public DataConnector {
 public:
  TransformConnector(
      std::unique_ptr<DataConnector> inner,
      std::function<std::optional<stream::Record>(stream::Record)> fn)
      : inner_(std::move(inner)), fn_(std::move(fn)) {}

  std::optional<stream::Record> Next() override;

 private:
  std::unique_ptr<DataConnector> inner_;
  std::function<std::optional<stream::Record>(stream::Record)> fn_;
};

/// Drives connector -> template -> sink; the "RDFizer" of Figure 2.
class TripleGenerator {
 public:
  TripleGenerator(GraphTemplate tmpl, VariableVector vars)
      : template_(std::move(tmpl)), vars_(std::move(vars)) {}

  /// Converts every record from `source`, passing triples to `sink`.
  /// Returns the number of records processed.
  size_t Run(DataConnector& source,
             const std::function<void(const Triple&)>& sink);

  /// Converts a single record.
  std::vector<Triple> GenerateOne(const stream::Record& record) const {
    return template_.Generate(record, vars_);
  }

  size_t records_processed() const { return records_; }
  size_t triples_generated() const { return triples_; }

 private:
  GraphTemplate template_;
  VariableVector vars_;
  size_t records_ = 0;
  size_t triples_ = 0;
};

/// Prebuilt template + variables for surveillance positions (the
/// datAcron ontology's RawPosition/SemanticNode pattern). `node_prefix`
/// mints node IRIs; records must carry entity_id/t/lon/lat/speed/heading.
void MakePositionTemplate(const std::string& node_prefix,
                          GraphTemplate* tmpl, VariableVector* vars);

/// Prebuilt template + variables for weather grid records.
void MakeWeatherTemplate(const std::string& node_prefix, GraphTemplate* tmpl,
                         VariableVector* vars);

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_RDFGEN_H_
