#include "rdf/bgp.h"

namespace tcmf::rdf {

namespace {

// Resolves one pattern slot under the current binding: returns the bound
// id, 0 for a free variable (wildcard), or kUnsatisfiable when a constant
// term was never interned (no triple can match).
constexpr uint64_t kUnsatisfiable = ~0ull;

uint64_t ResolveSlot(const Graph& graph, const PatternTerm& slot,
                     const Binding& binding) {
  if (slot.is_var) {
    auto it = binding.find(slot.var);
    return it == binding.end() ? 0 : it->second;
  }
  uint64_t id = graph.dictionary().Lookup(slot.term);
  return id == Dictionary::kNoId ? kUnsatisfiable : id;
}

void Recurse(const Graph& graph, const std::vector<TriplePattern>& patterns,
             size_t depth, Binding& binding, std::vector<Binding>* out) {
  if (depth == patterns.size()) {
    out->push_back(binding);
    return;
  }
  const TriplePattern& pat = patterns[depth];
  uint64_t s = ResolveSlot(graph, pat.s, binding);
  uint64_t p = ResolveSlot(graph, pat.p, binding);
  uint64_t o = ResolveSlot(graph, pat.o, binding);
  if (s == kUnsatisfiable || p == kUnsatisfiable || o == kUnsatisfiable) {
    return;
  }
  graph.Match(s, p, o, [&](const EncodedTriple& t) {
    // Bind free variables; remember which we added to undo after descent.
    std::vector<std::string> added;
    auto bind = [&](const PatternTerm& slot, uint64_t was, uint64_t value) {
      if (slot.is_var && was == 0) {
        auto [it, inserted] = binding.try_emplace(slot.var, value);
        if (inserted) {
          added.push_back(slot.var);
        } else if (it->second != value) {
          return false;  // same variable bound twice inconsistently
        }
      }
      return true;
    };
    bool ok = bind(pat.s, s, t.s) && bind(pat.p, p, t.p) && bind(pat.o, o, t.o);
    if (ok) Recurse(graph, patterns, depth + 1, binding, out);
    for (const std::string& v : added) binding.erase(v);
  });
}

}  // namespace

std::vector<Binding> EvaluateBgp(const Graph& graph,
                                 const std::vector<TriplePattern>& patterns) {
  std::vector<Binding> out;
  Binding binding;
  Recurse(graph, patterns, 0, binding, &out);
  return out;
}

std::optional<Term> BoundTerm(const Graph& graph, const Binding& binding,
                              const std::string& var) {
  auto it = binding.find(var);
  if (it == binding.end()) return std::nullopt;
  return graph.dictionary().Decode(it->second);
}

}  // namespace tcmf::rdf
