#include "rdf/bgp.h"

#include <algorithm>
#include <unordered_set>

namespace tcmf::rdf {

namespace {

// Resolves one pattern slot under the current binding: returns the bound
// id, 0 for a free variable (wildcard), or kUnsatisfiable when a constant
// term was never interned (no triple can match).
constexpr uint64_t kUnsatisfiable = ~0ull;

uint64_t ResolveSlot(const Graph& graph, const PatternTerm& slot,
                     const Binding& binding) {
  if (slot.is_var) {
    auto it = binding.find(slot.var);
    return it == binding.end() ? 0 : it->second;
  }
  uint64_t id = graph.dictionary().Lookup(slot.term);
  return id == Dictionary::kNoId ? kUnsatisfiable : id;
}

void Recurse(const Graph& graph, const std::vector<TriplePattern>& patterns,
             size_t depth, Binding& binding, std::vector<Binding>* out) {
  if (depth == patterns.size()) {
    out->push_back(binding);
    return;
  }
  const TriplePattern& pat = patterns[depth];
  uint64_t s = ResolveSlot(graph, pat.s, binding);
  uint64_t p = ResolveSlot(graph, pat.p, binding);
  uint64_t o = ResolveSlot(graph, pat.o, binding);
  if (s == kUnsatisfiable || p == kUnsatisfiable || o == kUnsatisfiable) {
    return;
  }
  graph.Match(s, p, o, [&](const EncodedTriple& t) {
    // Bind free variables; remember which we added to undo after descent.
    std::vector<std::string> added;
    auto bind = [&](const PatternTerm& slot, uint64_t was, uint64_t value) {
      if (slot.is_var && was == 0) {
        auto [it, inserted] = binding.try_emplace(slot.var, value);
        if (inserted) {
          added.push_back(slot.var);
        } else if (it->second != value) {
          return false;  // same variable bound twice inconsistently
        }
      }
      return true;
    };
    bool ok = bind(pat.s, s, t.s) && bind(pat.p, p, t.p) && bind(pat.o, o, t.o);
    if (ok) Recurse(graph, patterns, depth + 1, binding, out);
    for (const std::string& v : added) binding.erase(v);
  });
}

// Estimated result cardinality of one pattern given the variables bound
// so far. Constants resolve through the dictionary; an un-interned
// constant estimates 0 (the pattern short-circuits the whole BGP, so it
// should run first).
double EstimatePattern(const Graph& graph, const TriplePattern& pat,
                       const std::unordered_set<std::string>& bound) {
  auto slot_bound = [&](const PatternTerm& slot) {
    return !slot.is_var || bound.count(slot.var) > 0;
  };
  const bool s_bound = slot_bound(pat.s);
  const bool o_bound = slot_bound(pat.o);
  bool p_bound = false;
  uint64_t pid = 0;
  if (!pat.p.is_var) {
    p_bound = true;
    pid = graph.dictionary().Lookup(pat.p.term);
    if (pid == Dictionary::kNoId) return 0.0;
  } else if (bound.count(pat.p.var) > 0) {
    // A predicate variable bound at runtime: its id is not known
    // statically, so estimate with the free-predicate totals.
    p_bound = false;
  }
  if (!pat.s.is_var && graph.dictionary().Lookup(pat.s.term) == 0) return 0.0;
  if (!pat.o.is_var && graph.dictionary().Lookup(pat.o.term) == 0) return 0.0;
  return graph.index().EstimateCardinality(s_bound, pid, p_bound, o_bound);
}

}  // namespace

std::vector<size_t> PlanBgpOrder(const Graph& graph,
                                 const std::vector<TriplePattern>& patterns) {
  std::vector<size_t> order;
  order.reserve(patterns.size());
  std::vector<bool> used(patterns.size(), false);
  std::unordered_set<std::string> bound;
  for (size_t step = 0; step < patterns.size(); ++step) {
    size_t best = patterns.size();
    double best_cost = 0.0;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      double cost = EstimatePattern(graph, patterns[i], bound);
      if (best == patterns.size() || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
    }
    used[best] = true;
    order.push_back(best);
    auto mark = [&](const PatternTerm& slot) {
      if (slot.is_var) bound.insert(slot.var);
    };
    mark(patterns[best].s);
    mark(patterns[best].p);
    mark(patterns[best].o);
  }
  return order;
}

std::vector<Binding> EvaluateBgp(const Graph& graph,
                                 const std::vector<TriplePattern>& patterns) {
  std::vector<size_t> order = PlanBgpOrder(graph, patterns);
  std::vector<TriplePattern> ordered;
  ordered.reserve(patterns.size());
  for (size_t i : order) ordered.push_back(patterns[i]);
  return EvaluateBgpInOrder(graph, ordered);
}

std::vector<Binding> EvaluateBgpInOrder(
    const Graph& graph, const std::vector<TriplePattern>& patterns) {
  std::vector<Binding> out;
  Binding binding;
  Recurse(graph, patterns, 0, binding, &out);
  return out;
}

std::optional<Term> BoundTerm(const Graph& graph, const Binding& binding,
                              const std::string& var) {
  auto it = binding.find(var);
  if (it == binding.end()) return std::nullopt;
  return graph.dictionary().Decode(it->second);
}

}  // namespace tcmf::rdf
