#include "rdf/semantic_trajectory.h"

#include "common/strings.h"
#include "rdf/vocab.h"

namespace tcmf::rdf {

namespace {

using synopses::CriticalPoint;
using synopses::CriticalPointType;

/// A new trajectory part begins after stops and communication gaps: they
/// delimit behavioural episodes (sail - fish - sail, flight legs...).
bool StartsNewPart(CriticalPointType type) {
  return type == CriticalPointType::kStopEnd ||
         type == CriticalPointType::kGapEnd ||
         type == CriticalPointType::kTakeoff;
}

}  // namespace

SemanticTrajectoryStats BuildSemanticTrajectory(
    const std::string& prefix, uint64_t entity_id,
    const std::vector<CriticalPoint>& critical_points,
    const std::function<void(const Triple&)>& sink) {
  SemanticTrajectoryStats stats;
  if (critical_points.empty()) return stats;

  auto emit = [&](Triple t) {
    sink(t);
    ++stats.triples;
  };
  Term entity =
      Iri(StrFormat("%sobj/%llu", prefix.c_str(),
                    static_cast<unsigned long long>(entity_id)));
  Term trajectory =
      Iri(StrFormat("%strajectory/%llu", prefix.c_str(),
                    static_cast<unsigned long long>(entity_id)));
  emit({trajectory, Iri(vocab::kType), Iri(vocab::kTrajectory)});
  emit({trajectory, Iri(vocab::kOfMovingObject), entity});
  ++stats.trajectories;

  size_t part_index = 0;
  Term part;
  auto open_part = [&](TimeMs t) {
    part = Iri(StrFormat("%strajectory/%llu/part/%zu", prefix.c_str(),
                         static_cast<unsigned long long>(entity_id),
                         part_index++));
    emit({part, Iri(vocab::kType), Iri(vocab::kTrajectoryPart)});
    emit({trajectory, Iri(vocab::kHasPart), part});
    emit({part, Iri(vocab::kHasTimestamp), IntLiteral(t)});
    ++stats.parts;
  };
  open_part(critical_points.front().pos.t);

  for (const CriticalPoint& cp : critical_points) {
    if (StartsNewPart(cp.type) && stats.nodes > 0) {
      open_part(cp.pos.t);
    }
    Term node = Iri(StrFormat(
        "%snode/%llu/%lld", prefix.c_str(),
        static_cast<unsigned long long>(entity_id),
        static_cast<long long>(cp.pos.t)));
    emit({node, Iri(vocab::kType), Iri(vocab::kSemanticNode)});
    emit({part, Iri(vocab::kHasNode), node});
    emit({node, Iri(vocab::kHasTimestamp), IntLiteral(cp.pos.t)});
    emit({node, Iri(vocab::kAsWKT),
          TypedLiteral(StrFormat("POINT (%.6f %.6f)", cp.pos.lon, cp.pos.lat),
                       vocab::kWktLiteral)});
    // The event annotation: what happened at this node.
    Term event = Iri(StrFormat(
        "%sevent/%llu/%lld/%s", prefix.c_str(),
        static_cast<unsigned long long>(entity_id),
        static_cast<long long>(cp.pos.t),
        synopses::CriticalPointTypeName(cp.type)));
    emit({event, Iri(vocab::kType), Iri(vocab::kEvent)});
    emit({event, Iri(vocab::kEventType),
          Literal(synopses::CriticalPointTypeName(cp.type))});
    emit({event, Iri(vocab::kOccurs), node});
    ++stats.nodes;
  }
  return stats;
}

SemanticTrajectoryStats BuildSemanticTrajectory(
    const std::string& prefix, uint64_t entity_id,
    const std::vector<CriticalPoint>& critical_points, Graph* graph) {
  return BuildSemanticTrajectory(
      prefix, entity_id, critical_points,
      [graph](const Triple& t) { graph->Add(t); });
}

}  // namespace tcmf::rdf
