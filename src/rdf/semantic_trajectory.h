#ifndef TCMF_RDF_SEMANTIC_TRAJECTORY_H_
#define TCMF_RDF_SEMANTIC_TRAJECTORY_H_

#include <functional>
#include <string>
#include <vector>

#include "rdf/graph.h"
#include "synopses/critical_points.h"

namespace tcmf::rdf {

/// Materializes the datAcron ontology's structured-trajectory pattern
/// (paper Figure 3): a Trajectory is segmented into TrajectoryParts, each
/// holding a temporally ordered sequence of SemanticNodes; nodes carry
/// the critical-point event annotations. Segmentation follows the
/// episodes the synopses reveal: a new part starts at every stop(-end)
/// and at every communication gap — the "meaningful trajectory segments,
/// each revealing specific behaviour" of Section 4.1.
struct SemanticTrajectoryStats {
  size_t trajectories = 0;
  size_t parts = 0;
  size_t nodes = 0;
  size_t triples = 0;
};

/// Builds the structured representation for one entity's critical points
/// (time-ordered), emitting every triple through `sink`. `prefix` mints
/// IRIs (<prefix>trajectory/<entity>, .../part/<n>, .../node/<t>). This
/// is the core the stream stage (rdf::SemanticTrajectoryStage) drives:
/// the sink lets triples flow into a pipeline edge, a KnowledgeStore, or
/// a Graph without an intermediate materialization.
SemanticTrajectoryStats BuildSemanticTrajectory(
    const std::string& prefix, uint64_t entity_id,
    const std::vector<synopses::CriticalPoint>& critical_points,
    const std::function<void(const Triple&)>& sink);

/// Convenience overload: emits into `graph` (delegates to the sink form).
SemanticTrajectoryStats BuildSemanticTrajectory(
    const std::string& prefix, uint64_t entity_id,
    const std::vector<synopses::CriticalPoint>& critical_points,
    Graph* graph);

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_SEMANTIC_TRAJECTORY_H_
