#include "rdf/ntriples.h"

#include <cctype>
#include <fstream>

#include "common/strings.h"

namespace tcmf::rdf {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) return Status::ParseError("dangling escape");
    switch (s[++i]) {
      case '\\':
        out += '\\';
        break;
      case '"':
        out += '"';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      default:
        return Status::ParseError("unknown escape sequence");
    }
  }
  return out;
}

/// Parses one term starting at position `*pos` of `line`; advances *pos
/// past the term and any following whitespace.
Result<Term> ParseTermAt(const std::string& line, size_t* pos) {
  while (*pos < line.size() && std::isspace(
             static_cast<unsigned char>(line[*pos]))) {
    ++*pos;
  }
  if (*pos >= line.size()) return Status::ParseError("missing term");

  auto skip_ws = [&] {
    while (*pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[*pos]))) {
      ++*pos;
    }
  };

  char c = line[*pos];
  if (c == '<') {
    size_t end = line.find('>', *pos);
    if (end == std::string::npos) {
      return Status::ParseError("unterminated IRI");
    }
    Term t = Iri(line.substr(*pos + 1, end - *pos - 1));
    *pos = end + 1;
    skip_ws();
    return t;
  }
  if (c == '_') {
    if (*pos + 1 >= line.size() || line[*pos + 1] != ':') {
      return Status::ParseError("bad blank node");
    }
    size_t end = *pos + 2;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    Term t = Blank(line.substr(*pos + 2, end - *pos - 2));
    *pos = end;
    skip_ws();
    return t;
  }
  if (c == '"') {
    // Find the closing unescaped quote.
    size_t end = *pos + 1;
    while (end < line.size()) {
      if (line[end] == '\\') {
        end += 2;
        continue;
      }
      if (line[end] == '"') break;
      ++end;
    }
    if (end >= line.size()) {
      return Status::ParseError("unterminated literal");
    }
    Result<std::string> lexical =
        Unescape(line.substr(*pos + 1, end - *pos - 1));
    if (!lexical.ok()) return lexical.status();
    *pos = end + 1;
    std::string datatype;
    if (*pos + 1 < line.size() && line[*pos] == '^' &&
        line[*pos + 1] == '^') {
      *pos += 2;
      if (*pos >= line.size() || line[*pos] != '<') {
        return Status::ParseError("bad datatype IRI");
      }
      size_t dt_end = line.find('>', *pos);
      if (dt_end == std::string::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      datatype = line.substr(*pos + 1, dt_end - *pos - 1);
      *pos = dt_end + 1;
    }
    skip_ws();
    if (datatype.empty()) return Literal(std::move(lexical).value());
    return TypedLiteral(std::move(lexical).value(), std::move(datatype));
  }
  return Status::ParseError("unrecognized term start: '" +
                            std::string(1, c) + "'");
}

}  // namespace

std::string ToNTriplesTerm(const Term& term) {
  switch (term.kind) {
    case Term::Kind::kIri:
      return "<" + term.lexical + ">";
    case Term::Kind::kBlank:
      return "_:" + term.lexical;
    case Term::Kind::kLiteral:
      if (term.datatype.empty()) return "\"" + Escape(term.lexical) + "\"";
      return "\"" + Escape(term.lexical) + "\"^^<" + term.datatype + ">";
  }
  return "";
}

std::string ToNTriplesLine(const Triple& triple) {
  return ToNTriplesTerm(triple.s) + " " + ToNTriplesTerm(triple.p) + " " +
         ToNTriplesTerm(triple.o) + " .";
}

Result<Triple> ParseNTriplesLine(const std::string& line) {
  std::string_view trimmed = StrTrim(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    return Status::NotFound("comment or blank line");
  }
  std::string body(trimmed);
  size_t pos = 0;
  Result<Term> s = ParseTermAt(body, &pos);
  if (!s.ok()) return s.status();
  Result<Term> p = ParseTermAt(body, &pos);
  if (!p.ok()) return p.status();
  Result<Term> o = ParseTermAt(body, &pos);
  if (!o.ok()) return o.status();
  if (pos >= body.size() || body[pos] != '.') {
    return Status::ParseError("missing terminating dot");
  }
  return Triple{std::move(s).value(), std::move(p).value(),
                std::move(o).value()};
}

Status WriteNTriples(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (const EncodedTriple& enc : graph.triples()) {
    std::optional<Triple> t = graph.dictionary().Decode(enc);
    if (!t) continue;
    out << ToNTriplesLine(*t) << '\n';
  }
  out.close();
  if (out.fail()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<size_t> ReadNTriples(const std::string& path, Graph* graph) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  std::string line;
  size_t loaded = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    Result<Triple> t = ParseNTriplesLine(line);
    if (!t.ok()) {
      if (t.status().code() == StatusCode::kNotFound) continue;  // comment
      return Status::ParseError(StrFormat("%s:%zu: %s", path.c_str(),
                                          line_no,
                                          t.status().message().c_str()));
    }
    graph->Add(t.value());
    ++loaded;
  }
  return loaded;
}

}  // namespace tcmf::rdf
