#ifndef TCMF_RDF_NTRIPLES_H_
#define TCMF_RDF_NTRIPLES_H_

#include <string>

#include "common/status.h"
#include "rdf/graph.h"
#include "rdf/term.h"

namespace tcmf::rdf {

/// N-Triples interchange (the flat-file RDF format the batch layer
/// exchanges with external tooling). Escaping covers the characters the
/// library emits: backslash, quote, newline, tab, carriage return.

/// Serializes one term ("<iri>", "\"lit\"^^<dt>", "_:b") with escaping.
std::string ToNTriplesTerm(const Term& term);

/// One "s p o ." line (no trailing newline).
std::string ToNTriplesLine(const Triple& triple);

/// Parses one N-Triples line; comments (#...) and blank lines yield
/// kNotFound (callers skip those).
Result<Triple> ParseNTriplesLine(const std::string& line);

/// Writes the whole graph to `path`.
Status WriteNTriples(const Graph& graph, const std::string& path);

/// Streams triples from `path` into `graph`; returns the number loaded.
/// Malformed lines abort with ParseError (strict mode).
Result<size_t> ReadNTriples(const std::string& path, Graph* graph);

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_NTRIPLES_H_
