#include "rdf/term.h"

#include "common/strings.h"

namespace tcmf::rdf {

namespace {
constexpr const char* kXsdDouble = "http://www.w3.org/2001/XMLSchema#double";
constexpr const char* kXsdLong = "http://www.w3.org/2001/XMLSchema#long";
}  // namespace

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kIri:
      return "<" + lexical + ">";
    case Kind::kBlank:
      return "_:" + lexical;
    case Kind::kLiteral:
      if (datatype.empty()) return "\"" + lexical + "\"";
      return "\"" + lexical + "\"^^<" + datatype + ">";
  }
  return lexical;
}

Term Iri(std::string iri) {
  Term t;
  t.kind = Term::Kind::kIri;
  t.lexical = std::move(iri);
  return t;
}

Term Blank(std::string label) {
  Term t;
  t.kind = Term::Kind::kBlank;
  t.lexical = std::move(label);
  return t;
}

Term Literal(std::string value) {
  Term t;
  t.kind = Term::Kind::kLiteral;
  t.lexical = std::move(value);
  return t;
}

Term TypedLiteral(std::string value, std::string datatype) {
  Term t;
  t.kind = Term::Kind::kLiteral;
  t.lexical = std::move(value);
  t.datatype = std::move(datatype);
  return t;
}

Term DoubleLiteral(double value) {
  return TypedLiteral(StrFormat("%.9g", value), kXsdDouble);
}

Term IntLiteral(int64_t value) {
  return TypedLiteral(std::to_string(value), kXsdLong);
}

std::string TermKey(const Term& term) {
  std::string key;
  key.reserve(term.lexical.size() + term.datatype.size() + 2);
  key += static_cast<char>('0' + static_cast<int>(term.kind));
  key += term.lexical;
  if (!term.datatype.empty()) {
    key += '^';
    key += term.datatype;
  }
  return key;
}

std::string Triple::ToString() const {
  return s.ToString() + " " + p.ToString() + " " + o.ToString() + " .";
}

}  // namespace tcmf::rdf
