#ifndef TCMF_RDF_DICTIONARY_H_
#define TCMF_RDF_DICTIONARY_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace tcmf::rdf {

/// Bidirectional term <-> id dictionary (the in-memory "REDIS" side of the
/// paper's store, Section 4.2.5). Ids are dense and start at 1; id 0 is
/// reserved as "no term" / wildcard.
class Dictionary {
 public:
  static constexpr uint64_t kNoId = 0;

  /// Returns the id of `term`, interning it on first sight.
  uint64_t Encode(const Term& term);

  /// Id of `term` or kNoId when never interned (does not intern).
  uint64_t Lookup(const Term& term) const;

  /// Decoded term for an id; nullopt for kNoId / unknown ids.
  std::optional<Term> Decode(uint64_t id) const;

  EncodedTriple Encode(const Triple& triple);
  std::optional<Triple> Decode(const EncodedTriple& t) const;

  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, uint64_t> ids_;
  std::vector<Term> terms_;  ///< index = id - 1
};

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_DICTIONARY_H_
