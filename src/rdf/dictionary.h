#ifndef TCMF_RDF_DICTIONARY_H_
#define TCMF_RDF_DICTIONARY_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace tcmf::rdf {

/// Hashes a Term directly over (kind, lexical, datatype) — no canonical
/// key string is materialized, so the hot Encode/Lookup path costs one
/// hash + one equality compare instead of a per-call allocation.
struct TermHash {
  size_t operator()(const Term& t) const {
    size_t h = std::hash<std::string>()(t.lexical);
    // splitmix-style mix keeps IRIs and literals with equal lexical
    // forms distinct without hashing a combined string.
    h ^= (static_cast<size_t>(t.kind) + 0x9e3779b97f4a7c15ull) + (h << 6) +
         (h >> 2);
    if (!t.datatype.empty()) {
      h ^= std::hash<std::string>()(t.datatype) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Bidirectional term <-> id dictionary (the in-memory "REDIS" side of the
/// paper's store, Section 4.2.5). Ids are dense and start at 1; id 0 is
/// reserved as "no term" / wildcard (kNoId), which is what makes encoded
/// triple patterns with wildcard slots representable.
///
/// Contracts:
///  - Encode is stable: the same term always yields the same id, and ids
///    are assigned densely in first-sight order (1, 2, 3, ...).
///  - Decode(Encode(t)) == t for every term, including empty lexical
///    forms and typed literals (round-trip property).
///  - Lookup never interns; it returns kNoId for unseen terms.
///
/// Complexity: Encode/Lookup are O(1) expected (one hash of the term's
/// strings); Decode is O(1) (vector index).
///
/// Thread-safety: const methods (Lookup/Decode/size) are safe to call
/// concurrently with each other. Encode mutates and requires external
/// synchronization — the intended pattern is single-writer ingest, then
/// any number of concurrent readers (see store::KnowledgeStore).
class Dictionary {
 public:
  static constexpr uint64_t kNoId = 0;

  /// Returns the id of `term`, interning it on first sight.
  uint64_t Encode(const Term& term);

  /// Id of `term` or kNoId when never interned (does not intern).
  uint64_t Lookup(const Term& term) const;

  /// Decoded term for an id; nullopt for kNoId / unknown ids.
  std::optional<Term> Decode(uint64_t id) const;

  EncodedTriple Encode(const Triple& triple);
  std::optional<Triple> Decode(const EncodedTriple& t) const;

  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<Term, uint64_t, TermHash> ids_;
  std::vector<const Term*> terms_;  ///< index = id - 1, points into ids_
};

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_DICTIONARY_H_
