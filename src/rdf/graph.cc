#include "rdf/graph.h"

#include <algorithm>
#include <tuple>

namespace tcmf::rdf {

void Graph::Add(const Triple& triple) { AddEncoded(dict_.Encode(triple)); }

void Graph::AddEncoded(const EncodedTriple& triple) {
  triples_.push_back(triple);
  indexes_dirty_ = true;
}

void Graph::EnsureIndexes() const {
  if (!indexes_dirty_) return;
  size_t n = triples_.size();
  spo_.resize(n);
  pos_.resize(n);
  osp_.resize(n);
  for (uint32_t i = 0; i < n; ++i) spo_[i] = pos_[i] = osp_[i] = i;
  auto key_spo = [this](uint32_t i) {
    const EncodedTriple& t = triples_[i];
    return std::tuple(t.s, t.p, t.o);
  };
  auto key_pos = [this](uint32_t i) {
    const EncodedTriple& t = triples_[i];
    return std::tuple(t.p, t.o, t.s);
  };
  auto key_osp = [this](uint32_t i) {
    const EncodedTriple& t = triples_[i];
    return std::tuple(t.o, t.s, t.p);
  };
  std::sort(spo_.begin(), spo_.end(),
            [&](uint32_t a, uint32_t b) { return key_spo(a) < key_spo(b); });
  std::sort(pos_.begin(), pos_.end(),
            [&](uint32_t a, uint32_t b) { return key_pos(a) < key_pos(b); });
  std::sort(osp_.begin(), osp_.end(),
            [&](uint32_t a, uint32_t b) { return key_osp(a) < key_osp(b); });
  indexes_dirty_ = false;
}

namespace {

// Binary-searches the sorted permutation `index` for the range whose
// primary key equals `key1` (and secondary equals `key2` when nonzero).
template <typename KeyFn>
std::pair<size_t, size_t> EqualRange(const std::vector<uint32_t>& index,
                                     KeyFn key, uint64_t key1,
                                     uint64_t key2) {
  auto first = std::partition_point(
      index.begin(), index.end(), [&](uint32_t i) {
        auto [a, b, c] = key(i);
        (void)c;
        if (a != key1) return a < key1;
        if (key2 != 0 && b != key2) return b < key2;
        return false;
      });
  auto last = std::partition_point(
      first, index.end(), [&](uint32_t i) {
        auto [a, b, c] = key(i);
        (void)c;
        if (a != key1) return false;
        if (key2 != 0 && b != key2) return b <= key2;
        return true;
      });
  return {static_cast<size_t>(first - index.begin()),
          static_cast<size_t>(last - index.begin())};
}

}  // namespace

void Graph::Match(uint64_t s, uint64_t p, uint64_t o,
                  const std::function<void(const EncodedTriple&)>& fn) const {
  EnsureIndexes();
  auto emit_if = [&](uint32_t i) {
    const EncodedTriple& t = triples_[i];
    if ((s == 0 || t.s == s) && (p == 0 || t.p == p) &&
        (o == 0 || t.o == o)) {
      fn(t);
    }
  };

  if (s != 0) {
    auto key = [this](uint32_t i) {
      const EncodedTriple& t = triples_[i];
      return std::tuple(t.s, t.p, t.o);
    };
    auto [lo, hi] = EqualRange(spo_, key, s, p);
    for (size_t i = lo; i < hi; ++i) emit_if(spo_[i]);
  } else if (p != 0) {
    auto key = [this](uint32_t i) {
      const EncodedTriple& t = triples_[i];
      return std::tuple(t.p, t.o, t.s);
    };
    auto [lo, hi] = EqualRange(pos_, key, p, o);
    for (size_t i = lo; i < hi; ++i) emit_if(pos_[i]);
  } else if (o != 0) {
    auto key = [this](uint32_t i) {
      const EncodedTriple& t = triples_[i];
      return std::tuple(t.o, t.s, t.p);
    };
    auto [lo, hi] = EqualRange(osp_, key, o, 0);
    for (size_t i = lo; i < hi; ++i) emit_if(osp_[i]);
  } else {
    for (const EncodedTriple& t : triples_) fn(t);
  }
}

std::vector<Triple> Graph::MatchDecoded(const Term* s, const Term* p,
                                        const Term* o) const {
  uint64_t sid = s ? dict_.Lookup(*s) : 0;
  uint64_t pid = p ? dict_.Lookup(*p) : 0;
  uint64_t oid = o ? dict_.Lookup(*o) : 0;
  // A bound term that was never interned matches nothing.
  if ((s && sid == 0) || (p && pid == 0) || (o && oid == 0)) return {};
  std::vector<Triple> out;
  Match(sid, pid, oid, [&](const EncodedTriple& t) {
    auto decoded = dict_.Decode(t);
    if (decoded) out.push_back(std::move(*decoded));
  });
  return out;
}

size_t Graph::Count(uint64_t s, uint64_t p, uint64_t o) const {
  size_t n = 0;
  Match(s, p, o, [&](const EncodedTriple&) { ++n; });
  return n;
}

}  // namespace tcmf::rdf
