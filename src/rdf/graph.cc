#include "rdf/graph.h"

#include <algorithm>

namespace tcmf::rdf {

void Graph::Add(const Triple& triple) { AddEncoded(dict_.Encode(triple)); }

void Graph::AddEncoded(const EncodedTriple& triple) {
  triples_.push_back(triple);
  index_dirty_.store(true, std::memory_order_release);
}

void Graph::EnsureIndex() const {
  if (!index_dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mu_);
  if (!index_dirty_.load(std::memory_order_relaxed)) return;
  index_.Build(triples_);
  index_dirty_.store(false, std::memory_order_release);
}

const AdjacencyIndex& Graph::index() const {
  EnsureIndex();
  return index_;
}

void Graph::Match(uint64_t s, uint64_t p, uint64_t o,
                  const std::function<void(const EncodedTriple&)>& fn) const {
  if (s == 0 && p == 0 && o == 0) {
    for (const EncodedTriple& t : triples_) fn(t);
    return;
  }
  EnsureIndex();

  if (p != 0) {
    if (s != 0) {
      // (s, p, ?) / (s, p, o): one postings-range lookup.
      auto [lo, hi] = index_.ObjectsOf(p, s);
      for (const Posting* e = lo; e != hi; ++e) {
        if (o == 0 || e->value == o) fn({s, p, e->value});
      }
    } else if (o != 0) {
      // (?, p, o): the object→subject list.
      auto [lo, hi] = index_.SubjectsOf(p, o);
      for (const Posting* e = lo; e != hi; ++e) fn({e->value, p, o});
    } else {
      // (?, p, ?): the predicate's whole subject→object list.
      auto [lo, hi] = index_.Subjects(p);
      for (const Posting* e = lo; e != hi; ++e) fn({e->key, p, e->value});
    }
    return;
  }

  // Free predicate with a bound subject and/or object: probe every
  // predicate's postings (P is small for ontology-shaped data).
  for (uint64_t pid : index_.predicates()) {
    if (s != 0) {
      auto [lo, hi] = index_.ObjectsOf(pid, s);
      for (const Posting* e = lo; e != hi; ++e) {
        if (o == 0 || e->value == o) fn({s, pid, e->value});
      }
    } else {
      auto [lo, hi] = index_.SubjectsOf(pid, o);
      for (const Posting* e = lo; e != hi; ++e) fn({e->value, pid, o});
    }
  }
}

std::vector<Triple> Graph::MatchDecoded(const Term* s, const Term* p,
                                        const Term* o) const {
  uint64_t sid = s ? dict_.Lookup(*s) : 0;
  uint64_t pid = p ? dict_.Lookup(*p) : 0;
  uint64_t oid = o ? dict_.Lookup(*o) : 0;
  // A bound term that was never interned matches nothing.
  if ((s && sid == 0) || (p && pid == 0) || (o && oid == 0)) return {};
  std::vector<Triple> out;
  Match(sid, pid, oid, [&](const EncodedTriple& t) {
    auto decoded = dict_.Decode(t);
    if (decoded) out.push_back(std::move(*decoded));
  });
  return out;
}

size_t Graph::Count(uint64_t s, uint64_t p, uint64_t o) const {
  if (s == 0 && p == 0 && o == 0) return triples_.size();
  EnsureIndex();
  if (p != 0) {
    // Range arithmetic instead of iteration where the pattern allows.
    if (s != 0 && o == 0) {
      auto [lo, hi] = index_.ObjectsOf(p, s);
      return static_cast<size_t>(hi - lo);
    }
    if (s == 0 && o != 0) {
      auto [lo, hi] = index_.SubjectsOf(p, o);
      return static_cast<size_t>(hi - lo);
    }
    if (s == 0 && o == 0) {
      const PredicateStats* st = index_.Stats(p);
      return st == nullptr ? 0 : st->triples;
    }
  }
  size_t n = 0;
  Match(s, p, o, [&](const EncodedTriple&) { ++n; });
  return n;
}

}  // namespace tcmf::rdf
