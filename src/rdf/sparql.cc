#include "rdf/sparql.h"

#include <cctype>
#include <map>
#include <set>

#include "common/strings.h"

namespace tcmf::rdf {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Minimal tokenizer: IRIs, prefixed names, variables, literals, numbers,
/// punctuation and keywords.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  /// Next token; empty string at end of input.
  Result<std::string> Next() {
    SkipWs();
    if (pos_ >= text_.size()) return std::string();
    char c = text_[pos_];
    if (c == '<') {
      // '<' starts an IRI only when a '>' closes it before whitespace;
      // otherwise it is the less-than operator.
      size_t end = pos_ + 1;
      while (end < text_.size() &&
             !std::isspace(static_cast<unsigned char>(text_[end])) &&
             text_[end] != '>') {
        ++end;
      }
      if (end < text_.size() && text_[end] == '>') {
        std::string token = text_.substr(pos_, end - pos_ + 1);
        pos_ = end + 1;
        return token;
      }
      // Fall through to operator handling below.
    }
    if (c == '"') {
      size_t end = pos_ + 1;
      while (end < text_.size() && text_[end] != '"') {
        if (text_[end] == '\\') ++end;
        ++end;
      }
      if (end >= text_.size()) {
        return Status::ParseError("unterminated literal");
      }
      // Include a ^^<datatype> suffix if present.
      size_t stop = end + 1;
      if (stop + 1 < text_.size() && text_[stop] == '^' &&
          text_[stop + 1] == '^') {
        size_t dt_end = text_.find('>', stop);
        if (dt_end == std::string::npos) {
          return Status::ParseError("unterminated datatype");
        }
        stop = dt_end + 1;
      }
      std::string token = text_.substr(pos_, stop - pos_);
      pos_ = stop;
      return token;
    }
    if (std::string("{}().,*").find(c) != std::string::npos) {
      ++pos_;
      return std::string(1, c);
    }
    if (std::string("<>=!&").find(c) != std::string::npos) {
      // Comparison / logical operators.
      size_t end = pos_;
      while (end < text_.size() &&
             std::string("<>=!&").find(text_[end]) != std::string::npos) {
        ++end;
      }
      std::string token = text_.substr(pos_, end - pos_);
      pos_ = end;
      return token;
    }
    // Bare word: variable, prefixed name, keyword or number.
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[end])) ||
            std::string("?_:.-+").find(text_[end]) != std::string::npos)) {
      ++end;
    }
    if (end == pos_) {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "'");
    }
    std::string token = text_.substr(pos_, end - pos_);
    // A trailing '.' on a word is the triple terminator, not part of it
    // (unless the word is a number like "3.5").
    while (!token.empty() && token.back() == '.' &&
           !(token.size() > 1 &&
             std::isdigit(static_cast<unsigned char>(token[0])) &&
             ParseDouble(token).ok())) {
      token.pop_back();
      --end;
    }
    pos_ = end;
    return token;
  }

  /// Peeks without consuming.
  Result<std::string> Peek() {
    size_t saved = pos_;
    Result<std::string> token = Next();
    pos_ = saved;
    return token;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool IsVariable(const std::string& token) {
  return token.size() > 1 && token[0] == '?';
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(
      static_cast<unsigned char>(c)));
  return out;
}

/// Resolves one pattern-term token against the prefix map.
Result<PatternTerm> ResolveTerm(
    const std::string& token,
    const std::map<std::string, std::string>& prefixes) {
  if (IsVariable(token)) return PatternTerm::Var(token.substr(1));
  if (token == "a") return PatternTerm::Const(Iri(kRdfType));
  if (token.size() >= 2 && token.front() == '<' && token.back() == '>') {
    return PatternTerm::Const(Iri(token.substr(1, token.size() - 2)));
  }
  if (!token.empty() && token.front() == '"') {
    size_t close = token.find('"', 1);
    if (close == std::string::npos) {
      return Status::ParseError("bad literal: " + token);
    }
    std::string lexical = token.substr(1, close - 1);
    if (close + 2 < token.size() && token[close + 1] == '^' &&
        token[close + 2] == '^') {
      std::string dt = token.substr(close + 3);
      if (dt.size() >= 2 && dt.front() == '<' && dt.back() == '>') {
        dt = dt.substr(1, dt.size() - 2);
      }
      return PatternTerm::Const(TypedLiteral(lexical, dt));
    }
    return PatternTerm::Const(Literal(lexical));
  }
  // Numeric constant: double or integer literal.
  if (ParseInt(token).ok()) {
    return PatternTerm::Const(IntLiteral(ParseInt(token).value()));
  }
  if (ParseDouble(token).ok()) {
    return PatternTerm::Const(DoubleLiteral(ParseDouble(token).value()));
  }
  // Prefixed name.
  size_t colon = token.find(':');
  if (colon != std::string::npos) {
    std::string prefix = token.substr(0, colon + 1);
    auto it = prefixes.find(prefix);
    if (it == prefixes.end()) {
      return Status::ParseError("unknown prefix: " + prefix);
    }
    return PatternTerm::Const(Iri(it->second + token.substr(colon + 1)));
  }
  return Status::ParseError("cannot parse term: " + token);
}

/// Parses "FILTER( cond [&& cond]* )" — the FILTER keyword has already
/// been consumed. Appends each condition to `out`.
Status ParseFilter(Lexer& lexer, std::vector<SparqlQuery::Filter>* out) {
  auto expect = [&](const std::string& want) -> Status {
    Result<std::string> token = lexer.Next();
    if (!token.ok()) return token.status();
    if (token.value() != want) {
      return Status::ParseError("expected '" + want + "', got '" +
                                token.value() + "'");
    }
    return Status::Ok();
  };
  TCMF_RETURN_IF_ERROR(expect("("));
  while (true) {
    SparqlQuery::Filter filter;
    Result<std::string> var = lexer.Next();
    if (!var.ok()) return var.status();
    if (!IsVariable(var.value())) {
      return Status::ParseError("FILTER condition must start with a "
                                "variable");
    }
    filter.var = var.value().substr(1);
    Result<std::string> op = lexer.Next();
    if (!op.ok()) return op.status();
    using Op = SparqlQuery::Filter::Op;
    if (op.value() == "<") filter.op = Op::kLt;
    else if (op.value() == "<=") filter.op = Op::kLe;
    else if (op.value() == ">") filter.op = Op::kGt;
    else if (op.value() == ">=") filter.op = Op::kGe;
    else if (op.value() == "=" || op.value() == "==") filter.op = Op::kEq;
    else if (op.value() == "!=") filter.op = Op::kNe;
    else return Status::ParseError("unknown operator: " + op.value());
    Result<std::string> value = lexer.Next();
    if (!value.ok()) return value.status();
    Result<double> number = ParseDouble(value.value());
    if (!number.ok()) {
      return Status::ParseError("FILTER value must be numeric: " +
                                value.value());
    }
    filter.value = number.value();
    out->push_back(filter);
    Result<std::string> next = lexer.Next();
    if (!next.ok()) return next.status();
    if (next.value() == ")") return Status::Ok();
    if (next.value() != "&&") {
      return Status::ParseError("expected ')' or '&&', got '" +
                                next.value() + "'");
    }
  }
}

}  // namespace

Result<SparqlQuery> ParseSparql(const std::string& text) {
  Lexer lexer(text);
  SparqlQuery query;
  std::map<std::string, std::string> prefixes;

  // Header: PREFIX* SELECT vars WHERE {
  while (true) {
    Result<std::string> token = lexer.Next();
    if (!token.ok()) return token.status();
    std::string upper = Upper(token.value());
    if (upper == "PREFIX") {
      Result<std::string> name = lexer.Next();
      Result<std::string> iri = lexer.Next();
      if (!name.ok()) return name.status();
      if (!iri.ok()) return iri.status();
      if (iri.value().size() < 2 || iri.value().front() != '<') {
        return Status::ParseError("PREFIX needs an IRI");
      }
      prefixes[name.value()] =
          iri.value().substr(1, iri.value().size() - 2);
      continue;
    }
    if (upper == "SELECT") break;
    return Status::ParseError("expected PREFIX or SELECT, got '" +
                              token.value() + "'");
  }

  // Projection.
  while (true) {
    Result<std::string> token = lexer.Peek();
    if (!token.ok()) return token.status();
    if (Upper(token.value()) == "WHERE" || token.value() == "{") break;
    Result<std::string> var = lexer.Next();
    if (!var.ok()) return var.status();
    if (var.value() == "*") continue;  // SELECT * = empty projection
    if (!IsVariable(var.value())) {
      return Status::ParseError("SELECT expects variables, got '" +
                                var.value() + "'");
    }
    query.select.push_back(var.value().substr(1));
  }
  {
    Result<std::string> token = lexer.Next();
    if (!token.ok()) return token.status();
    if (Upper(token.value()) == "WHERE") {
      token = lexer.Next();
      if (!token.ok()) return token.status();
    }
    if (token.value() != "{") {
      return Status::ParseError("expected '{'");
    }
  }

  // Body: triple patterns and FILTERs until '}'.
  while (true) {
    Result<std::string> token = lexer.Next();
    if (!token.ok()) return token.status();
    if (token.value() == "}") break;
    if (token.value().empty()) {
      return Status::ParseError("unexpected end of query (missing '}')");
    }
    if (token.value() == ".") continue;
    if (Upper(token.value()) == "FILTER") {
      TCMF_RETURN_IF_ERROR(ParseFilter(lexer, &query.filters));
      continue;
    }
    // A triple pattern: subject predicate object.
    Result<PatternTerm> s = ResolveTerm(token.value(), prefixes);
    if (!s.ok()) return s.status();
    Result<std::string> p_token = lexer.Next();
    if (!p_token.ok()) return p_token.status();
    Result<PatternTerm> p = ResolveTerm(p_token.value(), prefixes);
    if (!p.ok()) return p.status();
    Result<std::string> o_token = lexer.Next();
    if (!o_token.ok()) return o_token.status();
    Result<PatternTerm> o = ResolveTerm(o_token.value(), prefixes);
    if (!o.ok()) return o.status();
    query.patterns.push_back({s.value(), p.value(), o.value()});
  }
  if (query.patterns.empty()) {
    return Status::ParseError("empty graph pattern");
  }
  return query;
}

SelectResult EvaluateSparql(const Graph& graph, const SparqlQuery& query) {
  SelectResult out;
  std::vector<Binding> solutions = EvaluateBgp(graph, query.patterns);

  // Projection: explicit SELECT list or all variables in pattern order.
  if (!query.select.empty()) {
    out.vars = query.select;
  } else {
    std::set<std::string> seen;
    for (const TriplePattern& pat : query.patterns) {
      for (const PatternTerm* term : {&pat.s, &pat.p, &pat.o}) {
        if (term->is_var && seen.insert(term->var).second) {
          out.vars.push_back(term->var);
        }
      }
    }
  }

  using Op = SparqlQuery::Filter::Op;
  for (const Binding& binding : solutions) {
    bool keep = true;
    for (const SparqlQuery::Filter& filter : query.filters) {
      std::optional<Term> term = BoundTerm(graph, binding, filter.var);
      if (!term || term->kind != Term::Kind::kLiteral) {
        keep = false;
        break;
      }
      Result<double> value = ParseDouble(term->lexical);
      if (!value.ok()) {
        keep = false;
        break;
      }
      double v = value.value();
      switch (filter.op) {
        case Op::kLt: keep = v < filter.value; break;
        case Op::kLe: keep = v <= filter.value; break;
        case Op::kGt: keep = v > filter.value; break;
        case Op::kGe: keep = v >= filter.value; break;
        case Op::kEq: keep = v == filter.value; break;
        case Op::kNe: keep = v != filter.value; break;
      }
      if (!keep) break;
    }
    if (!keep) continue;
    std::vector<Term> row;
    row.reserve(out.vars.size());
    bool complete = true;
    for (const std::string& var : out.vars) {
      std::optional<Term> term = BoundTerm(graph, binding, var);
      if (!term) {
        complete = false;
        break;
      }
      row.push_back(std::move(*term));
    }
    if (complete) out.rows.push_back(std::move(row));
  }
  return out;
}

Result<SelectResult> RunSparql(const Graph& graph, const std::string& text) {
  Result<SparqlQuery> query = ParseSparql(text);
  if (!query.ok()) return query.status();
  return EvaluateSparql(graph, query.value());
}

}  // namespace tcmf::rdf
