#include "rdf/dictionary.h"

namespace tcmf::rdf {

uint64_t Dictionary::Encode(const Term& term) {
  auto [it, inserted] = ids_.try_emplace(term, terms_.size() + 1);
  // unordered_map is node-based: rehashing never moves elements, so the
  // pointer into the key stays valid for the dictionary's lifetime.
  if (inserted) terms_.push_back(&it->first);
  return it->second;
}

uint64_t Dictionary::Lookup(const Term& term) const {
  auto it = ids_.find(term);
  return it == ids_.end() ? kNoId : it->second;
}

std::optional<Term> Dictionary::Decode(uint64_t id) const {
  if (id == kNoId || id > terms_.size()) return std::nullopt;
  return *terms_[id - 1];
}

EncodedTriple Dictionary::Encode(const Triple& triple) {
  return {Encode(triple.s), Encode(triple.p), Encode(triple.o)};
}

std::optional<Triple> Dictionary::Decode(const EncodedTriple& t) const {
  auto s = Decode(t.s);
  auto p = Decode(t.p);
  auto o = Decode(t.o);
  if (!s || !p || !o) return std::nullopt;
  return Triple{std::move(*s), std::move(*p), std::move(*o)};
}

}  // namespace tcmf::rdf
