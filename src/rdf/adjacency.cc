#include "rdf/adjacency.h"

#include <algorithm>
#include <unordered_set>

namespace tcmf::rdf {

namespace {

bool ByKeyValue(const Posting& a, const Posting& b) {
  return a.key < b.key || (a.key == b.key && a.value < b.value);
}

// Distinct keys in a (key, value)-sorted postings list.
uint64_t DistinctKeys(const std::vector<Posting>& sorted) {
  uint64_t n = 0;
  uint64_t prev = 0;
  bool first = true;
  for (const Posting& p : sorted) {
    if (first || p.key != prev) ++n;
    prev = p.key;
    first = false;
  }
  return n;
}

// Equal-key run [lo, hi) within a sorted postings list.
AdjacencyIndex::Span EqualKeyRun(const std::vector<Posting>& sorted,
                                 uint64_t key) {
  auto lo = std::lower_bound(
      sorted.begin(), sorted.end(), key,
      [](const Posting& p, uint64_t k) { return p.key < k; });
  auto hi = std::upper_bound(
      lo, sorted.end(), key,
      [](uint64_t k, const Posting& p) { return k < p.key; });
  return {sorted.data() + (lo - sorted.begin()),
          sorted.data() + (hi - sorted.begin())};
}

}  // namespace

void AdjacencyIndex::Build(const std::vector<EncodedTriple>& triples) {
  Clear();
  size_ = triples.size();
  for (const EncodedTriple& t : triples) {
    PredicateIndex& idx = by_predicate_[t.p];
    idx.so.push_back({t.s, t.o});
    idx.os.push_back({t.o, t.s});
  }
  std::unordered_set<uint64_t> subjects, objects;
  for (auto& [p, idx] : by_predicate_) {
    std::sort(idx.so.begin(), idx.so.end(), ByKeyValue);
    std::sort(idx.os.begin(), idx.os.end(), ByKeyValue);
    idx.stats.triples = idx.so.size();
    idx.stats.distinct_subjects = DistinctKeys(idx.so);
    idx.stats.distinct_objects = DistinctKeys(idx.os);
    predicates_.push_back(p);
    for (const Posting& e : idx.so) {
      subjects.insert(e.key);
      objects.insert(e.value);
    }
  }
  std::sort(predicates_.begin(), predicates_.end());
  distinct_subjects_ = subjects.size();
  distinct_objects_ = objects.size();
}

void AdjacencyIndex::Clear() {
  by_predicate_.clear();
  predicates_.clear();
  size_ = 0;
  distinct_subjects_ = 0;
  distinct_objects_ = 0;
}

const PredicateStats* AdjacencyIndex::Stats(uint64_t p) const {
  auto it = by_predicate_.find(p);
  return it == by_predicate_.end() ? nullptr : &it->second.stats;
}

AdjacencyIndex::Span AdjacencyIndex::Subjects(uint64_t p) const {
  auto it = by_predicate_.find(p);
  if (it == by_predicate_.end()) return {nullptr, nullptr};
  return {it->second.so.data(), it->second.so.data() + it->second.so.size()};
}

AdjacencyIndex::Span AdjacencyIndex::Objects(uint64_t p) const {
  auto it = by_predicate_.find(p);
  if (it == by_predicate_.end()) return {nullptr, nullptr};
  return {it->second.os.data(), it->second.os.data() + it->second.os.size()};
}

AdjacencyIndex::Span AdjacencyIndex::ObjectsOf(uint64_t p, uint64_t s) const {
  auto it = by_predicate_.find(p);
  if (it == by_predicate_.end()) return {nullptr, nullptr};
  return EqualKeyRun(it->second.so, s);
}

AdjacencyIndex::Span AdjacencyIndex::SubjectsOf(uint64_t p,
                                                uint64_t o) const {
  auto it = by_predicate_.find(p);
  if (it == by_predicate_.end()) return {nullptr, nullptr};
  return EqualKeyRun(it->second.os, o);
}

double AdjacencyIndex::EstimateCardinality(bool s_bound, uint64_t p,
                                           bool p_bound,
                                           bool o_bound) const {
  if (p_bound) {
    const PredicateStats* st = Stats(p);
    if (st == nullptr || st->triples == 0) return 0.0;
    const double triples = static_cast<double>(st->triples);
    if (s_bound && o_bound) return 1.0;
    if (s_bound) {
      return triples / static_cast<double>(std::max<uint64_t>(
                           1, st->distinct_subjects));
    }
    if (o_bound) {
      return triples /
             static_cast<double>(std::max<uint64_t>(1, st->distinct_objects));
    }
    return triples;
  }
  // Predicate free: totals across every adjacency list.
  const double total = static_cast<double>(size_);
  if (s_bound && o_bound) {
    return static_cast<double>(predicates_.size());
  }
  if (s_bound) {
    return total /
           static_cast<double>(std::max<uint64_t>(1, distinct_subjects_));
  }
  if (o_bound) {
    return total /
           static_cast<double>(std::max<uint64_t>(1, distinct_objects_));
  }
  return total;
}

}  // namespace tcmf::rdf
