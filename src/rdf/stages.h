#ifndef TCMF_RDF_STAGES_H_
#define TCMF_RDF_STAGES_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rdf/rdfgen.h"
#include "rdf/semantic_trajectory.h"
#include "stream/pipeline.h"
#include "stream/record.h"
#include "synopses/critical_points.h"

namespace tcmf::rdf {

/// Dataflow stage helpers gluing the RDF generation framework (Section
/// 4.2.3's RDFizers) into stream::Pipeline graphs, so enrichment runs at
/// stream rate behind the same adaptive-batching transport as every
/// other stage — the fused alternative to batch TripleGenerator::Run.
/// Both helpers follow the unified `(flow, config, StageOptions)` stage
/// signature shared with the insitu/synopses/mlog helpers.

/// 1:N stage: instantiates `tmpl` over `vars` for every record —
/// the streaming form of TripleGenerator (one record in, its template
/// triples out). `stage.name` defaults to "rdf.generate"; adaptive
/// batched transport by default (see docs/STREAM_TUNING.md). Pair with
/// store::KgStoreSink to stream-populate a KnowledgeStore.
inline stream::Flow<Triple> TripleGeneratorStage(
    stream::Flow<stream::Record> flow, GraphTemplate tmpl,
    VariableVector vars, stream::StageOptions stage = {}) {
  auto generator = std::make_shared<TripleGenerator>(std::move(tmpl),
                                                     std::move(vars));
  if (!stage.batch.has_value()) stage.batch = stream::BatchPolicy::Adaptive();
  if (stage.name.empty()) stage.name = "rdf.generate";
  return flow.FlatMap<Triple>(
      [generator = std::move(generator)](const stream::Record& r) {
        return generator->GenerateOne(r);
      },
      std::move(stage));
}

/// Keyed stage: accumulates each entity's critical points (per-key order
/// is the synopses' emission order, i.e. time order) and materializes the
/// datAcron structured-trajectory pattern at end-of-stream via
/// BuildSemanticTrajectory's sink form — Trajectory/TrajectoryPart/
/// SemanticNode triples flow straight into the output edge with no
/// intermediate graph. `prefix` mints IRIs; `stage.name` defaults to
/// "rdf.trajectory"; adaptive batched transport by default.
namespace internal {

/// Per-entity accumulation of critical points for the trajectory builder.
using TrajectoryState = std::vector<synopses::CriticalPoint>;

inline stream::KeyedProcessFn<synopses::CriticalPoint, Triple,
                              TrajectoryState>
TrajectoryProcess() {
  return [](const synopses::CriticalPoint& cp, TrajectoryState& state,
            const std::function<void(Triple)>&) { state.push_back(cp); };
}

inline stream::KeyedFlushFn<Triple, TrajectoryState> TrajectoryFlush(
    std::string prefix) {
  return [prefix = std::move(prefix)](
             uint64_t key, TrajectoryState& state,
             const std::function<void(Triple)>& emit) {
    BuildSemanticTrajectory(prefix, key, state,
                            [&emit](const Triple& t) { emit(t); });
  };
}

}  // namespace internal

inline stream::Flow<Triple> SemanticTrajectoryStage(
    stream::Flow<synopses::CriticalPoint> flow, std::string prefix,
    stream::StageOptions stage = {}) {
  if (!stage.batch.has_value()) stage.batch = stream::BatchPolicy::Adaptive();
  if (stage.name.empty()) stage.name = "rdf.trajectory";
  return flow.KeyedProcess<Triple, internal::TrajectoryState>(
      [](const synopses::CriticalPoint& cp) { return cp.pos.entity_id; },
      internal::TrajectoryProcess(),
      internal::TrajectoryFlush(std::move(prefix)), std::move(stage));
}

/// Fused-chain form: terminates a fused stateless prefix (e.g. a synopsis
/// post-filter composed with `flow.Fuse()`) directly in the trajectory
/// keyed stage; with `parallelism > 1` entities are hash-partitioned
/// across workers and the prefix runs inside the partition router.
template <typename In>
stream::Flow<Triple> SemanticTrajectoryStage(
    stream::FusedChain<In, synopses::CriticalPoint> chain, std::string prefix,
    size_t parallelism = 1, stream::StageOptions stage = {}) {
  if (!stage.batch.has_value()) stage.batch = stream::BatchPolicy::Adaptive();
  if (stage.name.empty()) stage.name = "rdf.trajectory";
  return chain.template KeyedProcessParallel<Triple,
                                             internal::TrajectoryState>(
      [](const synopses::CriticalPoint& cp) { return cp.pos.entity_id; },
      internal::TrajectoryProcess(),
      parallelism, internal::TrajectoryFlush(std::move(prefix)),
      std::move(stage));
}

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_STAGES_H_
