#include "rdf/rdfgen.h"

#include <cmath>

#include "common/strings.h"
#include "rdf/vocab.h"

namespace tcmf::rdf {

void VariableVector::Define(std::string name, VariableFn fn) {
  for (auto& [n, f] : vars_) {
    if (n == name) {
      f = std::move(fn);
      return;
    }
  }
  vars_.emplace_back(std::move(name), std::move(fn));
}

void VariableVector::DefineFieldLiteral(const std::string& name,
                                        const std::string& field) {
  Define(name, [field](const stream::Record& r) -> std::optional<Term> {
    if (auto s = r.GetString(field)) return Literal(*s);
    if (auto d = r.GetNumeric(field)) return DoubleLiteral(*d);
    return std::nullopt;
  });
}

void VariableVector::DefineFieldDouble(const std::string& name,
                                       const std::string& field) {
  Define(name, [field](const stream::Record& r) -> std::optional<Term> {
    if (auto d = r.GetNumeric(field)) return DoubleLiteral(*d);
    return std::nullopt;
  });
}

void VariableVector::DefineFieldInt(const std::string& name,
                                    const std::string& field) {
  Define(name, [field](const stream::Record& r) -> std::optional<Term> {
    if (auto i = r.GetInt(field)) return IntLiteral(*i);
    return std::nullopt;
  });
}

void VariableVector::DefineFieldIri(const std::string& name,
                                    const std::string& field,
                                    const std::string& prefix) {
  Define(name,
         [field, prefix](const stream::Record& r) -> std::optional<Term> {
           if (auto i = r.GetInt(field)) {
             return Iri(prefix + std::to_string(*i));
           }
           if (auto s = r.GetString(field)) return Iri(prefix + *s);
           return std::nullopt;
         });
}

std::optional<Term> VariableVector::Resolve(
    const std::string& name, const stream::Record& record) const {
  for (const auto& [n, fn] : vars_) {
    if (n == name) return fn(record);
  }
  return std::nullopt;
}

bool VariableVector::Has(const std::string& name) const {
  for (const auto& [n, fn] : vars_) {
    if (n == name) return true;
  }
  return false;
}

void GraphTemplate::Add(TemplateSlot s, TemplateSlot p, TemplateSlot o) {
  patterns_.push_back({std::move(s), std::move(p), std::move(o)});
}

std::vector<Triple> GraphTemplate::Generate(const stream::Record& record,
                                            const VariableVector& vars) const {
  std::vector<Triple> out;
  out.reserve(patterns_.size());
  for (const Pattern& pat : patterns_) {
    auto resolve = [&](const TemplateSlot& slot) -> std::optional<Term> {
      if (!slot.is_var) return slot.constant;
      return vars.Resolve(slot.var, record);
    };
    std::optional<Term> s = resolve(pat.s);
    std::optional<Term> p = resolve(pat.p);
    std::optional<Term> o = resolve(pat.o);
    if (s && p && o) {
      out.push_back(Triple{std::move(*s), std::move(*p), std::move(*o)});
    }
  }
  return out;
}

std::optional<stream::Record> VectorConnector::Next() {
  if (pos_ >= records_.size()) return std::nullopt;
  return records_[pos_++];
}

Result<std::unique_ptr<CsvConnector>> CsvConnector::Open(
    const std::string& path) {
  auto connector = std::unique_ptr<CsvConnector>(new CsvConnector());
  TCMF_RETURN_IF_ERROR(connector->reader_.Open(path, /*has_header=*/true));
  return connector;
}

std::optional<stream::Record> CsvConnector::Next() {
  std::vector<std::string> row;
  if (!reader_.Next(&row)) return std::nullopt;
  stream::Record rec;
  const auto& header = reader_.header();
  for (size_t i = 0; i < row.size() && i < header.size(); ++i) {
    // Numeric-looking fields become numbers; everything else stays string.
    Result<double> d = ParseDouble(row[i]);
    Result<long long> n = ParseInt(row[i]);
    if (n.ok()) {
      rec.Set(header[i], static_cast<int64_t>(n.value()));
    } else if (d.ok()) {
      rec.Set(header[i], d.value());
    } else {
      rec.Set(header[i], row[i]);
    }
  }
  return rec;
}

std::optional<stream::Record> TransformConnector::Next() {
  while (true) {
    std::optional<stream::Record> rec = inner_->Next();
    if (!rec.has_value()) return std::nullopt;
    std::optional<stream::Record> transformed = fn_(std::move(*rec));
    if (transformed.has_value()) return transformed;
    // Filtered out: pull the next one.
  }
}

size_t TripleGenerator::Run(DataConnector& source,
                            const std::function<void(const Triple&)>& sink) {
  size_t count = 0;
  while (std::optional<stream::Record> rec = source.Next()) {
    for (const Triple& t : template_.Generate(*rec, vars_)) {
      sink(t);
      ++triples_;
    }
    ++count;
    ++records_;
  }
  return count;
}

void MakePositionTemplate(const std::string& node_prefix,
                          GraphTemplate* tmpl, VariableVector* vars) {
  vars->Define("node", [node_prefix](
                           const stream::Record& r) -> std::optional<Term> {
    auto id = r.GetInt("entity_id");
    auto t = r.GetInt("t");
    if (!id || !t) return std::nullopt;
    return Iri(StrFormat("%snode/%lld/%lld", node_prefix.c_str(),
                         static_cast<long long>(*id),
                         static_cast<long long>(*t)));
  });
  vars->DefineFieldIri("entity", "entity_id",
                       std::string(vocab::kDatacron) + "obj/");
  vars->DefineFieldInt("t", "t");
  vars->DefineFieldDouble("speed", "speed_mps");
  vars->DefineFieldDouble("heading", "heading_deg");
  vars->DefineFieldDouble("altitude", "alt_m");
  vars->Define("wkt", [](const stream::Record& r) -> std::optional<Term> {
    auto lon = r.GetNumeric("lon");
    auto lat = r.GetNumeric("lat");
    if (!lon || !lat) return std::nullopt;
    return TypedLiteral(StrFormat("POINT (%.6f %.6f)", *lon, *lat),
                        vocab::kWktLiteral);
  });

  tmpl->Add(TemplateSlot::Var("node"), TemplateSlot::Const(Iri(vocab::kType)),
            TemplateSlot::Const(Iri(vocab::kSemanticNode)));
  tmpl->Add(TemplateSlot::Var("node"),
            TemplateSlot::Const(Iri(vocab::kOfMovingObject)),
            TemplateSlot::Var("entity"));
  tmpl->Add(TemplateSlot::Var("node"),
            TemplateSlot::Const(Iri(vocab::kHasTimestamp)),
            TemplateSlot::Var("t"));
  tmpl->Add(TemplateSlot::Var("node"),
            TemplateSlot::Const(Iri(vocab::kHasSpeed)),
            TemplateSlot::Var("speed"));
  tmpl->Add(TemplateSlot::Var("node"),
            TemplateSlot::Const(Iri(vocab::kHasHeading)),
            TemplateSlot::Var("heading"));
  tmpl->Add(TemplateSlot::Var("node"),
            TemplateSlot::Const(Iri(vocab::kHasAltitude)),
            TemplateSlot::Var("altitude"));
  tmpl->Add(TemplateSlot::Var("node"),
            TemplateSlot::Const(Iri(vocab::kAsWKT)),
            TemplateSlot::Var("wkt"));
}

void MakeWeatherTemplate(const std::string& node_prefix, GraphTemplate* tmpl,
                         VariableVector* vars) {
  vars->Define("cell", [node_prefix](
                           const stream::Record& r) -> std::optional<Term> {
    auto t = r.GetInt("t");
    auto lon = r.GetNumeric("lon");
    auto lat = r.GetNumeric("lat");
    if (!t || !lon || !lat) return std::nullopt;
    return Iri(StrFormat("%sweather/%lld/%.3f/%.3f", node_prefix.c_str(),
                         static_cast<long long>(*t), *lon, *lat));
  });
  vars->DefineFieldInt("t", "t");
  vars->Define("wind", [](const stream::Record& r) -> std::optional<Term> {
    auto e = r.GetNumeric("wind_east_mps");
    auto n = r.GetNumeric("wind_north_mps");
    if (!e || !n) return std::nullopt;
    return DoubleLiteral(std::hypot(*e, *n));
  });
  vars->DefineFieldDouble("wave", "wave_height_m");
  vars->DefineFieldDouble("severity", "severity");
  vars->Define("wkt", [](const stream::Record& r) -> std::optional<Term> {
    auto lon = r.GetNumeric("lon");
    auto lat = r.GetNumeric("lat");
    if (!lon || !lat) return std::nullopt;
    return TypedLiteral(StrFormat("POINT (%.6f %.6f)", *lon, *lat),
                        vocab::kWktLiteral);
  });

  tmpl->Add(TemplateSlot::Var("cell"), TemplateSlot::Const(Iri(vocab::kType)),
            TemplateSlot::Const(Iri(vocab::kWeatherCondition)));
  tmpl->Add(TemplateSlot::Var("cell"),
            TemplateSlot::Const(Iri(vocab::kHasTimestamp)),
            TemplateSlot::Var("t"));
  tmpl->Add(TemplateSlot::Var("cell"),
            TemplateSlot::Const(Iri(vocab::kHasWindSpeed)),
            TemplateSlot::Var("wind"));
  tmpl->Add(TemplateSlot::Var("cell"),
            TemplateSlot::Const(Iri(vocab::kHasWaveHeight)),
            TemplateSlot::Var("wave"));
  tmpl->Add(TemplateSlot::Var("cell"),
            TemplateSlot::Const(Iri(vocab::kHasSeverity)),
            TemplateSlot::Var("severity"));
  tmpl->Add(TemplateSlot::Var("cell"),
            TemplateSlot::Const(Iri(vocab::kAsWKT)),
            TemplateSlot::Var("wkt"));
}

}  // namespace tcmf::rdf
