#ifndef TCMF_RDF_SPARQL_H_
#define TCMF_RDF_SPARQL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/bgp.h"
#include "rdf/graph.h"

namespace tcmf::rdf {

/// A SPARQL subset sufficient for the paper's workflows ("anyone who can
/// write simple SPARQL queries", Section 4.2.3): SELECT over one basic
/// graph pattern with numeric FILTERs.
///
///   PREFIX dc: <http://www.datacron-project.eu/datAcron#>
///   SELECT ?n ?v
///   WHERE {
///     ?n a dc:SemanticNode .
///     ?n dc:hasSpeed ?v .
///     FILTER(?v >= 3.0)
///     FILTER(?v < 10)
///   }
///
/// Supported: PREFIX declarations; `a` for rdf:type; IRIs in <>; prefixed
/// names; variables; plain, typed and numeric literals; FILTER with
/// comparisons (<, <=, >, >=, =, !=) between a variable and a numeric
/// constant, combined with &&.
struct SparqlQuery {
  /// Projection; empty = SELECT * (all variables).
  std::vector<std::string> select;
  std::vector<TriplePattern> patterns;

  struct Filter {
    std::string var;
    enum class Op { kLt, kLe, kGt, kGe, kEq, kNe } op = Op::kLt;
    double value = 0.0;
  };
  std::vector<Filter> filters;
};

/// Parses the query text.
Result<SparqlQuery> ParseSparql(const std::string& text);

/// A solved SELECT: variable names and one row of decoded terms per
/// solution (row order follows `vars`).
struct SelectResult {
  std::vector<std::string> vars;
  std::vector<std::vector<Term>> rows;
};

/// Evaluates the query against the graph (BGP join + numeric filters;
/// a filter on an unbound or non-numeric binding rejects the row).
SelectResult EvaluateSparql(const Graph& graph, const SparqlQuery& query);

/// Parse + evaluate in one call.
Result<SelectResult> RunSparql(const Graph& graph, const std::string& text);

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_SPARQL_H_
