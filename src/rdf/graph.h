#ifndef TCMF_RDF_GRAPH_H_
#define TCMF_RDF_GRAPH_H_

#include <functional>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace tcmf::rdf {

/// In-memory triple store with lazily-built SPO/POS/OSP sorted indexes.
/// This is the knowledge-graph working set of the real-time layer; the
/// batch store with layouts and spatio-temporal pruning lives in
/// src/store.
class Graph {
 public:
  Graph() = default;

  /// Adds a decoded triple (interning its terms).
  void Add(const Triple& triple);
  /// Adds a pre-encoded triple (ids must come from dictionary()).
  void AddEncoded(const EncodedTriple& triple);

  size_t size() const { return triples_.size(); }

  Dictionary& dictionary() { return dict_; }
  const Dictionary& dictionary() const { return dict_; }

  /// Matches a pattern where Dictionary::kNoId slots are wildcards; calls
  /// `fn` for every matching encoded triple. Uses whichever index fits the
  /// bound slots.
  void Match(uint64_t s, uint64_t p, uint64_t o,
             const std::function<void(const EncodedTriple&)>& fn) const;

  /// Convenience: materializes matches as decoded triples.
  std::vector<Triple> MatchDecoded(const Term* s, const Term* p,
                                   const Term* o) const;

  /// Number of triples matching a pattern.
  size_t Count(uint64_t s, uint64_t p, uint64_t o) const;

  const std::vector<EncodedTriple>& triples() const { return triples_; }

 private:
  enum class Order { kSpo, kPos, kOsp };

  void EnsureIndexes() const;

  Dictionary dict_;
  std::vector<EncodedTriple> triples_;
  // Sorted permutation indexes, rebuilt on demand after inserts.
  mutable std::vector<uint32_t> spo_, pos_, osp_;
  mutable bool indexes_dirty_ = true;
};

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_GRAPH_H_
