#ifndef TCMF_RDF_GRAPH_H_
#define TCMF_RDF_GRAPH_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <vector>

#include "rdf/adjacency.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace tcmf::rdf {

/// In-memory triple store backed by a lazily-built AdjacencyIndex:
/// per-predicate subject→object / object→subject postings with
/// cardinality stats. This is the knowledge-graph working set of the
/// real-time layer; the batch store with layouts and spatio-temporal
/// pruning lives in src/store.
///
/// Contracts:
///  - Match/Count treat Dictionary::kNoId slots as wildcards and emit
///    one callback per matching triple occurrence (multiplicity
///    preserved; emission order is unspecified).
///  - Adds are visible to the next Match/Count/index() call — the index
///    rebuild is deferred and amortized over insert bursts.
///
/// Complexity: a pattern with a bound predicate is answered from that
/// predicate's postings in O(log n_p + k); a bound subject or object
/// with a free predicate probes every predicate list (O(P log n));
/// the all-wildcard pattern scans the triples table.
///
/// Thread-safety: any number of threads may call the const query
/// surface (Match/MatchDecoded/Count/index/triples) concurrently — the
/// lazy index build behind them is double-checked-locked. Add/AddEncoded
/// require exclusive access (single-writer ingest, then concurrent
/// readers).
class Graph {
 public:
  Graph() = default;

  /// Adds a decoded triple (interning its terms).
  void Add(const Triple& triple);
  /// Adds a pre-encoded triple (ids must come from dictionary()).
  void AddEncoded(const EncodedTriple& triple);

  size_t size() const { return triples_.size(); }

  Dictionary& dictionary() { return dict_; }
  const Dictionary& dictionary() const { return dict_; }

  /// Matches a pattern where Dictionary::kNoId slots are wildcards; calls
  /// `fn` for every matching encoded triple. Uses the adjacency list that
  /// fits the bound slots.
  void Match(uint64_t s, uint64_t p, uint64_t o,
             const std::function<void(const EncodedTriple&)>& fn) const;

  /// Convenience: materializes matches as decoded triples.
  std::vector<Triple> MatchDecoded(const Term* s, const Term* p,
                                   const Term* o) const;

  /// Number of triples matching a pattern. O(log n_p) for patterns with
  /// a bound predicate (postings-range arithmetic, no iteration).
  size_t Count(uint64_t s, uint64_t p, uint64_t o) const;

  /// The adjacency index over the current triples (built on demand).
  /// The reference stays valid until the next Add.
  const AdjacencyIndex& index() const;

  const std::vector<EncodedTriple>& triples() const { return triples_; }

 private:
  void EnsureIndex() const;

  Dictionary dict_;
  std::vector<EncodedTriple> triples_;
  // Lazily (re)built adjacency index. `index_dirty_` is the fast-path
  // flag: acquire-load pairs with the release-store after a build, so a
  // reader that sees `false` also sees the fully-built index. The mutex
  // serializes concurrent first builds.
  mutable AdjacencyIndex index_;
  mutable std::mutex index_mu_;
  mutable std::atomic<bool> index_dirty_{true};
};

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_GRAPH_H_
