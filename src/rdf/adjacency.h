#ifndef TCMF_RDF_ADJACENCY_H_
#define TCMF_RDF_ADJACENCY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace tcmf::rdf {

/// One edge of a per-predicate adjacency list. In a subject→object list
/// `key` is the subject and `value` the object; in an object→subject list
/// the roles flip. Postings are kept sorted by (key, value), so a run of
/// equal keys is contiguous and joinable by merge/gallop without hashing.
struct Posting {
  uint64_t key = 0;
  uint64_t value = 0;

  bool operator==(const Posting& other) const {
    return key == other.key && value == other.value;
  }
};

/// Per-predicate cardinality statistics — the selectivity seed for BGP
/// join ordering (EstimateCardinality) and for the store's star-plan
/// driver selection. `triples / distinct_subjects` is the average
/// out-degree, `triples / distinct_objects` the average in-degree.
struct PredicateStats {
  uint64_t triples = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
};

/// Dictionary-encoded adjacency index over a triple multiset: for every
/// predicate, a subject→object postings list sorted by (s, o) and an
/// object→subject postings list sorted by (o, s), plus cardinality stats.
/// This is the SNIPPETS.md triplestore shape (per-node in/out edge chains
/// keyed by predicate) flattened into cache-friendly sorted arrays:
/// lookups are binary searches over contiguous postings, joins are merges
/// over runs of equal keys.
///
/// Multiplicity is preserved: a triple inserted twice appears twice in
/// both lists, so match/count semantics are identical to a raw scan.
///
/// Complexity: Build is O(n log n) (two sorts per predicate);
/// ObjectsOf/SubjectsOf are O(log n_p + k) for a predicate with n_p
/// postings and k results; Stats/Subjects/Objects are O(1) expected.
///
/// Thread-safety: Build/Clear require exclusive access; all const
/// methods are safe to call concurrently once Build has returned (the
/// index is immutable between builds).
class AdjacencyIndex {
 public:
  /// A contiguous, sorted run of postings [first, second).
  using Span = std::pair<const Posting*, const Posting*>;

  AdjacencyIndex() = default;

  /// (Re)builds the index from a triple multiset. Replaces any previous
  /// contents.
  void Build(const std::vector<EncodedTriple>& triples);

  void Clear();

  /// Total triples indexed.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Predicate ids present, ascending.
  const std::vector<uint64_t>& predicates() const { return predicates_; }

  /// Stats for a predicate; nullptr when the predicate has no triples.
  const PredicateStats* Stats(uint64_t p) const;

  /// All subject→object postings of `p`, sorted by (subject, object).
  /// Empty span for unknown predicates.
  Span Subjects(uint64_t p) const;
  /// All object→subject postings of `p`, sorted by (object, subject).
  Span Objects(uint64_t p) const;

  /// Postings of `p` with subject `s` (their values are the objects),
  /// found by binary search within the predicate's subject list.
  Span ObjectsOf(uint64_t p, uint64_t s) const;
  /// Postings of `p` with object `o` (their values are the subjects).
  Span SubjectsOf(uint64_t p, uint64_t o) const;

  /// Estimated result cardinality of a triple pattern against this
  /// index, used as the selectivity seed for join ordering. `p` is the
  /// predicate id or 0 when the predicate slot is free; `s_bound` /
  /// `o_bound` say whether the subject/object slots are fixed (by a
  /// constant or an already-bound variable). Estimates derive from
  /// PredicateStats under a uniformity assumption; a bound-but-unknown
  /// predicate estimates 0 (nothing can match).
  double EstimateCardinality(bool s_bound, uint64_t p, bool p_bound,
                             bool o_bound) const;

  /// Distinct subjects / objects across all predicates (exact, computed
  /// at Build); the p-free estimate denominators.
  uint64_t distinct_subjects() const { return distinct_subjects_; }
  uint64_t distinct_objects() const { return distinct_objects_; }

 private:
  struct PredicateIndex {
    std::vector<Posting> so;  ///< sorted by (subject, object)
    std::vector<Posting> os;  ///< sorted by (object, subject)
    PredicateStats stats;
  };

  std::unordered_map<uint64_t, PredicateIndex> by_predicate_;
  std::vector<uint64_t> predicates_;
  size_t size_ = 0;
  uint64_t distinct_subjects_ = 0;
  uint64_t distinct_objects_ = 0;
};

}  // namespace tcmf::rdf

#endif  // TCMF_RDF_ADJACENCY_H_
