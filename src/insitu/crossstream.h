#ifndef TCMF_INSITU_CROSSSTREAM_H_
#define TCMF_INSITU_CROSSSTREAM_H_

#include <optional>
#include <unordered_map>

#include "common/position.h"

namespace tcmf::insitu {

/// Cross-stream fusion (the "next step" of Section 4.2.2: correlating
/// surveillance data from multiple — and perhaps contradicting — sources
/// into a coherent trajectory representation). Each entity is tracked by
/// an alpha-beta filter over all sources: duplicated observations within
/// the dedupe window refine the estimate instead of duplicating output,
/// and contradicting reports are gated by their innovation against the
/// dead-reckoned state.
struct FusionOptions {
  /// Reports of one entity closer in time than this are treated as the
  /// same observation seen by different receivers: merged, not re-emitted.
  TimeMs dedupe_window_ms = 3 * kMillisPerSecond;
  /// Innovation gate: a report further than this from the dead-reckoned
  /// position (plus speed allowance) is a contradiction and is rejected.
  double gate_base_m = 500.0;
  /// Extra gate allowance per second since the last update.
  double gate_per_second_m = 60.0;
  /// Alpha-beta filter gains.
  double alpha = 0.5;
  double beta = 0.15;
  /// A track is dropped (restarted on next report) after this silence.
  TimeMs track_timeout_ms = 10 * kMillisPerMinute;
};

struct FusionStats {
  size_t reports_in = 0;
  size_t emitted = 0;
  size_t duplicates_merged = 0;
  size_t contradictions_rejected = 0;
  size_t tracks_started = 0;
};

/// Streaming fuser: feed reports from any number of sources in arrival
/// order; returns the fused position to forward downstream (or nullopt
/// when the report was merged into the current estimate or rejected).
class CrossStreamFuser {
 public:
  explicit CrossStreamFuser(const FusionOptions& options)
      : options_(options) {}

  std::optional<Position> Observe(const Position& report);

  const FusionStats& stats() const { return stats_; }

 private:
  struct Track {
    Position state;       ///< fused position + velocity (speed/heading)
    TimeMs last_emit = 0;
  };

  FusionOptions options_;
  std::unordered_map<uint64_t, Track> tracks_;
  FusionStats stats_;
};

}  // namespace tcmf::insitu

#endif  // TCMF_INSITU_CROSSSTREAM_H_
