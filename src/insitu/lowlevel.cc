#include "insitu/lowlevel.h"

#include "geom/geo.h"

namespace tcmf::insitu {

void TrajectoryStatsTracker::Observe(const Position& p) {
  EntityStats& s = stats_[p.entity_id];
  s.speed.Add(p.speed_mps);
  if (s.has_last) {
    double dt = static_cast<double>(p.t - s.last.t) / kMillisPerSecond;
    if (dt > 0) {
      s.acceleration.Add((p.speed_mps - s.last.speed_mps) / dt);
      s.report_interval_s.Add(dt);
    }
  }
  s.last = p;
  s.has_last = true;
}

const TrajectoryStatsTracker::EntityStats* TrajectoryStatsTracker::Get(
    uint64_t entity_id) const {
  auto it = stats_.find(entity_id);
  return it == stats_.end() ? nullptr : &it->second;
}

AreaTransitionDetector::AreaTransitionDetector(std::vector<geom::Area> areas,
                                               const geom::BBox& extent,
                                               uint32_t grid_cols,
                                               uint32_t grid_rows)
    : areas_(std::move(areas)),
      grid_(extent, grid_cols, grid_rows),
      cell_areas_(grid_.cell_count()) {
  for (uint32_t i = 0; i < areas_.size(); ++i) {
    for (uint32_t cell : grid_.CellsIntersecting(areas_[i].shape.bbox())) {
      cell_areas_[cell].push_back(i);
    }
  }
}

std::vector<AreaEvent> AreaTransitionDetector::Observe(const Position& p) {
  std::vector<AreaEvent> events;
  std::unordered_set<uint64_t>& inside = inside_[p.entity_id];

  uint32_t cell = grid_.CellOf(p.lon, p.lat);
  std::unordered_set<uint64_t> now;
  for (uint32_t ai : cell_areas_[cell]) {
    if (areas_[ai].shape.Contains(p.lon, p.lat)) {
      now.insert(areas_[ai].id);
    }
  }

  for (uint64_t area_id : now) {
    if (!inside.contains(area_id)) {
      // Find kind for the event (linear scan acceptable: events are rare).
      std::string kind;
      for (const geom::Area& a : areas_) {
        if (a.id == area_id) {
          kind = a.kind;
          break;
        }
      }
      events.push_back({AreaEvent::Type::kEntry, p.entity_id, area_id, kind,
                        p.t, p.lon, p.lat});
    }
  }
  for (uint64_t area_id : inside) {
    if (!now.contains(area_id)) {
      std::string kind;
      for (const geom::Area& a : areas_) {
        if (a.id == area_id) {
          kind = a.kind;
          break;
        }
      }
      events.push_back({AreaEvent::Type::kExit, p.entity_id, area_id, kind,
                        p.t, p.lon, p.lat});
    }
  }
  inside = std::move(now);
  return events;
}

std::vector<uint64_t> AreaTransitionDetector::CurrentAreas(
    uint64_t entity_id) const {
  auto it = inside_.find(entity_id);
  if (it == inside_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

const char* CleanVerdictName(CleanVerdict v) {
  switch (v) {
    case CleanVerdict::kOk:
      return "ok";
    case CleanVerdict::kDuplicate:
      return "duplicate";
    case CleanVerdict::kOutOfOrder:
      return "out_of_order";
    case CleanVerdict::kSpeedSpike:
      return "speed_spike";
    case CleanVerdict::kOutOfRange:
      return "out_of_range";
  }
  return "unknown";
}

CleanVerdict StreamCleaner::Observe(const Position& p) {
  CleanVerdict verdict = CleanVerdict::kOk;
  if (!options_.extent.Contains(p.lon, p.lat)) {
    verdict = CleanVerdict::kOutOfRange;
  } else {
    auto it = last_.find(p.entity_id);
    if (it != last_.end()) {
      const Position& last = it->second;
      if (p.t == last.t) {
        verdict = CleanVerdict::kDuplicate;
      } else if (p.t < last.t) {
        verdict = CleanVerdict::kOutOfOrder;
      } else {
        double dt = static_cast<double>(p.t - last.t) / kMillisPerSecond;
        double implied =
            geom::HaversineM(last.lon, last.lat, p.lon, p.lat) / dt;
        if (implied > options_.max_speed_mps) {
          verdict = CleanVerdict::kSpeedSpike;
        }
      }
    }
  }
  if (verdict == CleanVerdict::kOk) {
    last_[p.entity_id] = p;
    ++accepted_;
  } else {
    ++rejected_;
    ++rejects_by_kind_[verdict];
  }
  return verdict;
}

}  // namespace tcmf::insitu
