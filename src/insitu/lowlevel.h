#ifndef TCMF_INSITU_LOWLEVEL_H_
#define TCMF_INSITU_LOWLEVEL_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/position.h"
#include "common/stats.h"
#include "geom/geometry.h"
#include "geom/grid.h"

namespace tcmf::insitu {

/// Per-trajectory streaming metadata: min/max/mean/median of speed and
/// acceleration, as computed by the paper's in-situ low-level detector
/// (Section 4.2.1) to support downstream data-quality assessment.
class TrajectoryStatsTracker {
 public:
  /// Folds one position report of one entity into its running summary.
  void Observe(const Position& p);

  struct EntityStats {
    RunningStats speed;
    RunningStats acceleration;
    RunningStats report_interval_s;
    Position last;
    bool has_last = false;
  };

  /// nullptr when the entity has not been seen.
  const EntityStats* Get(uint64_t entity_id) const;

  const std::unordered_map<uint64_t, EntityStats>& all() const {
    return stats_;
  }

 private:
  std::unordered_map<uint64_t, EntityStats> stats_;
};

/// A low-level area-transition event: an entity entering or leaving an
/// area of interest.
struct AreaEvent {
  enum class Type { kEntry, kExit };
  Type type = Type::kEntry;
  uint64_t entity_id = 0;
  uint64_t area_id = 0;
  std::string area_kind;
  TimeMs t = 0;
  double lon = 0.0;
  double lat = 0.0;
};

/// Streaming detector of entry/exit events against a catalog of areas,
/// accelerated by an equi-grid over area bounding boxes so each position
/// only tests areas overlapping its cell.
class AreaTransitionDetector {
 public:
  AreaTransitionDetector(std::vector<geom::Area> areas,
                         const geom::BBox& extent, uint32_t grid_cols = 64,
                         uint32_t grid_rows = 64);

  /// Processes one report; returns the transitions it triggered.
  std::vector<AreaEvent> Observe(const Position& p);

  /// Areas currently containing the entity (by id).
  std::vector<uint64_t> CurrentAreas(uint64_t entity_id) const;

  const std::vector<geom::Area>& areas() const { return areas_; }

 private:
  std::vector<geom::Area> areas_;
  geom::EquiGrid grid_;
  /// cell -> indexes of areas whose bbox overlaps the cell.
  std::vector<std::vector<uint32_t>> cell_areas_;
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> inside_;
};

/// Verdict of the online cleaner for one report.
enum class CleanVerdict {
  kOk = 0,
  kDuplicate,       ///< same entity and timestamp as the previous report
  kOutOfOrder,      ///< timestamp earlier than the last accepted report
  kSpeedSpike,      ///< implied speed between reports is physically absurd
  kOutOfRange,      ///< coordinates outside the configured extent
};

const char* CleanVerdictName(CleanVerdict v);

/// Online per-entity data cleaning (Section 3 "online data cleaning of
/// erroneous data"): single pass, O(1) state per entity.
class StreamCleaner {
 public:
  struct Options {
    double max_speed_mps = 350.0;  ///< above this, the jump is an outlier
    geom::BBox extent{-180.0, -90.0, 180.0, 90.0};
  };

  explicit StreamCleaner(const Options& options) : options_(options) {}

  /// Classifies the report and (only when kOk) commits it as the entity's
  /// new last-known position.
  CleanVerdict Observe(const Position& p);

  size_t accepted() const { return accepted_; }
  size_t rejected() const { return rejected_; }
  const std::unordered_map<CleanVerdict, size_t>& rejects_by_kind() const {
    return rejects_by_kind_;
  }

 private:
  Options options_;
  std::unordered_map<uint64_t, Position> last_;
  size_t accepted_ = 0;
  size_t rejected_ = 0;
  std::unordered_map<CleanVerdict, size_t> rejects_by_kind_;
};

}  // namespace tcmf::insitu

#endif  // TCMF_INSITU_LOWLEVEL_H_
