#include "insitu/crossstream.h"

#include <cmath>

#include "geom/geo.h"

namespace tcmf::insitu {

std::optional<Position> CrossStreamFuser::Observe(const Position& report) {
  ++stats_.reports_in;
  auto it = tracks_.find(report.entity_id);

  // New or stale track: adopt the report as the initial state.
  if (it == tracks_.end() ||
      report.t - it->second.state.t > options_.track_timeout_ms) {
    Track track;
    track.state = report;
    track.last_emit = report.t;
    tracks_[report.entity_id] = track;
    ++stats_.tracks_started;
    ++stats_.emitted;
    return report;
  }

  Track& track = it->second;
  if (report.t < track.state.t) {
    // Late cross-receiver duplicate of an already-fused observation.
    ++stats_.duplicates_merged;
    return std::nullopt;
  }

  double dt = static_cast<double>(report.t - track.state.t) /
              kMillisPerSecond;

  // Dead-reckon the track to the report time.
  geom::LonLat predicted = geom::Destination(
      {track.state.lon, track.state.lat}, track.state.heading_deg,
      track.state.speed_mps * dt);

  // Innovation gating: contradicting sources are rejected.
  double innovation =
      geom::HaversineM(predicted.lon, predicted.lat, report.lon, report.lat);
  double gate = options_.gate_base_m + options_.gate_per_second_m * dt;
  if (innovation > gate) {
    ++stats_.contradictions_rejected;
    return std::nullopt;
  }

  // Alpha-beta update in the ENU frame of the prediction.
  geom::Enu residual = geom::ToEnu(predicted, {report.lon, report.lat});
  geom::LonLat fused = geom::FromEnu(
      predicted, {options_.alpha * residual.x, options_.alpha * residual.y});

  double rad = geom::DegToRad(track.state.heading_deg);
  double vx = track.state.speed_mps * std::sin(rad);
  double vy = track.state.speed_mps * std::cos(rad);
  if (dt > 0.1) {
    // The velocity gain divides by the elapsed time; cross-receiver
    // skews make dt arbitrarily small, so floor it at the nominal
    // reporting interval to keep the noise amplification bounded.
    double dt_eff = std::max(
        dt, static_cast<double>(options_.dedupe_window_ms) /
                kMillisPerSecond * 2.0);
    vx += options_.beta * residual.x / dt_eff;
    vy += options_.beta * residual.y / dt_eff;
  }

  track.state.lon = fused.lon;
  track.state.lat = fused.lat;
  track.state.t = report.t;
  track.state.speed_mps = std::hypot(vx, vy);
  if (track.state.speed_mps > 0.05) {
    track.state.heading_deg =
        geom::NormalizeDeg(geom::RadToDeg(std::atan2(vx, vy)));
  }
  track.state.alt_m = report.alt_m;
  track.state.vrate_mps = report.vrate_mps;

  // Same-observation window: refine silently instead of re-emitting.
  if (report.t - track.last_emit < options_.dedupe_window_ms) {
    ++stats_.duplicates_merged;
    return std::nullopt;
  }
  track.last_emit = report.t;
  ++stats_.emitted;
  return track.state;
}

}  // namespace tcmf::insitu
