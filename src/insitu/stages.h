#ifndef TCMF_INSITU_STAGES_H_
#define TCMF_INSITU_STAGES_H_

#include <memory>
#include <utility>

#include "insitu/lowlevel.h"
#include "stream/pipeline.h"

namespace tcmf::insitu {

/// Wraps StreamCleaner as a dataflow stage on the stream substrate:
/// forwards only reports the online cleaner classifies kOk. The cleaner
/// instance runs inside the single stage thread (no locking needed); pass
/// `cleaner_out` to keep a handle for post-run accept/reject stats.
/// The stage appears in Pipeline::Report() as "insitu.clean". Runs on the
/// adaptive batched transport by default — its output edge gets a private
/// BatchTuner that finds the edge's own batch size from observed
/// StageMetrics (observation-equivalent to record-at-a-time; pass
/// BatchPolicy::Batched(n) to pin a static size or BatchPolicy::Single()
/// to opt out; see docs/STREAM_TUNING.md).
inline stream::Flow<Position> CleaningStage(
    stream::Flow<Position> flow, const StreamCleaner::Options& options,
    size_t capacity = 1024,
    std::shared_ptr<StreamCleaner>* cleaner_out = nullptr,
    stream::BatchPolicy policy = stream::BatchPolicy::Adaptive()) {
  auto cleaner = std::make_shared<StreamCleaner>(options);
  if (cleaner_out) *cleaner_out = cleaner;
  return flow.WithBatching(policy).Filter(
      [cleaner = std::move(cleaner)](const Position& p) {
        return cleaner->Observe(p) == CleanVerdict::kOk;
      },
      capacity, "insitu.clean");
}

/// Wraps AreaTransitionDetector as a 1:N dataflow stage: each position
/// expands to the area entry/exit events it triggers. Appears in
/// Pipeline::Report() as "insitu.area_events". Adaptive batched transport
/// by default, like CleaningStage.
inline stream::Flow<AreaEvent> AreaEventStage(
    stream::Flow<Position> flow, std::vector<geom::Area> areas,
    const geom::BBox& extent, size_t capacity = 1024,
    stream::BatchPolicy policy = stream::BatchPolicy::Adaptive()) {
  auto detector = std::make_shared<AreaTransitionDetector>(std::move(areas),
                                                           extent);
  return flow.WithBatching(policy).FlatMap<AreaEvent>(
      [detector = std::move(detector)](const Position& p) {
        return detector->Observe(p);
      },
      capacity, "insitu.area_events");
}

}  // namespace tcmf::insitu

#endif  // TCMF_INSITU_STAGES_H_
