#ifndef TCMF_INSITU_STAGES_H_
#define TCMF_INSITU_STAGES_H_

#include <memory>
#include <utility>

#include "insitu/lowlevel.h"
#include "stream/pipeline.h"

namespace tcmf::insitu {

/// In-situ processing stage helpers — the first hop of the Figure-2
/// pipeline. Downstream, the same `(flow, config, StageOptions)` family
/// continues through synopses (critical points), rdf/stages.h (template
/// enrichment, semantic trajectories) and store/stages.h (KgStoreSink
/// into the knowledge store), so a full detect→enrich→store chain
/// composes from these helpers alone.

/// Wraps StreamCleaner as a dataflow stage on the stream substrate:
/// forwards only reports the online cleaner classifies kOk. The cleaner
/// instance runs inside the single stage thread (no locking needed); pass
/// `cleaner_out` to keep a handle for post-run accept/reject stats.
///
/// Stage configuration follows the unified `(flow, config, StageOptions,
/// ...)` helper signature: `stage.name` defaults to "insitu.clean" and
/// `stage.batch` to the adaptive batched transport (its output edge gets
/// a private BatchTuner; observation-equivalent to record-at-a-time —
/// pass `.batch = BatchPolicy::Batched(n)` to pin a static size or
/// `BatchPolicy::Single()` to opt out; `.capacity_tuning =
/// CapacityPolicy::Adaptive()` additionally makes the channel bound
/// elastic; see docs/STREAM_TUNING.md).
inline stream::Flow<Position> CleaningStage(
    stream::Flow<Position> flow, const StreamCleaner::Options& options,
    stream::StageOptions stage = {},
    std::shared_ptr<StreamCleaner>* cleaner_out = nullptr) {
  auto cleaner = std::make_shared<StreamCleaner>(options);
  if (cleaner_out) *cleaner_out = cleaner;
  if (!stage.batch.has_value()) stage.batch = stream::BatchPolicy::Adaptive();
  if (stage.name.empty()) stage.name = "insitu.clean";
  return flow.Filter(
      [cleaner = std::move(cleaner)](const Position& p) {
        return cleaner->Observe(p) == CleanVerdict::kOk;
      },
      std::move(stage));
}

/// Wraps AreaTransitionDetector as a 1:N dataflow stage: each position
/// expands to the area entry/exit events it triggers. `stage.name`
/// defaults to "insitu.area_events"; adaptive batched transport by
/// default, like CleaningStage.
inline stream::Flow<AreaEvent> AreaEventStage(
    stream::Flow<Position> flow, std::vector<geom::Area> areas,
    const geom::BBox& extent, stream::StageOptions stage = {}) {
  auto detector = std::make_shared<AreaTransitionDetector>(std::move(areas),
                                                           extent);
  if (!stage.batch.has_value()) stage.batch = stream::BatchPolicy::Adaptive();
  if (stage.name.empty()) stage.name = "insitu.area_events";
  return flow.FlatMap<AreaEvent>(
      [detector = std::move(detector)](const Position& p) {
        return detector->Observe(p);
      },
      std::move(stage));
}

}  // namespace tcmf::insitu

#endif  // TCMF_INSITU_STAGES_H_
