#ifndef TCMF_MLOG_LOG_H_
#define TCMF_MLOG_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/position.h"
#include "common/status.h"
#include "stream/metrics.h"
#include "stream/record.h"

namespace tcmf::mlog {

class Cursor;

/// When appends are forced to stable storage. The classic
/// durability/throughput dial (Kafka's flush.messages, RocksDB's WAL
/// sync): kNever leaves flushing to the OS page cache, kPerBatch issues
/// one fdatasync per Append/AppendBatch call, kPerAppend syncs after
/// every single record.
enum class FsyncPolicy { kNever, kPerBatch, kPerAppend };

/// "never" / "per_batch" / "per_append".
const char* FsyncPolicyName(FsyncPolicy policy);

/// Configuration of a Log.
struct LogOptions {
  /// Directory holding the segment files (created if missing). One Log
  /// owns one directory.
  std::string dir;
  /// Segment roll threshold: a segment is sealed once appending the next
  /// entry would push its size past this (a segment always holds at least
  /// one record, so oversized records still append).
  size_t segment_bytes = 64u << 20;
  FsyncPolicy fsync_policy = FsyncPolicy::kNever;
  /// Retention limits, applied at segment roll, oldest-first; the active
  /// segment is never deleted. 0 means unlimited.
  size_t retention_segments = 0;
  uint64_t retention_bytes = 0;
  /// Sparse offset→byte-position index granularity: one index entry per
  /// this many appended bytes (per segment).
  size_t index_interval_bytes = 4096;
};

/// Counters for the whole log (appends, reads, recovery, segment churn).
struct LogMetrics {
  uint64_t appended_records = 0;
  uint64_t appended_bytes = 0;   ///< framed bytes written to segment files
  uint64_t fsyncs = 0;
  uint64_t read_records = 0;     ///< records handed out by cursors
  uint64_t read_bytes = 0;
  uint64_t segments_created = 0;
  uint64_t segments_deleted = 0;
  uint64_t recovered_records = 0;  ///< intact tail entries found by Open()
  uint64_t truncated_bytes = 0;    ///< torn/corrupt tail bytes cut by Open()
  uint64_t sync_stalls = 0;        ///< injected fsync stalls served (chaos)
  std::string ToJson() const;
};

/// One record handed out by a cursor: its log offset plus the decoded
/// record (replayed records compare == to the appended originals).
struct ReadRecord {
  uint64_t offset = 0;
  stream::Record record;
};

/// Append-only, segmented, CRC-checked record log on local disk — the
/// band-2 stand-in for a Kafka topic-partition (DESIGN.md
/// §Substitutions). Records get dense monotonic offsets; data lives in
/// numbered segment files (`<base_offset>.mseg`, 16-byte header + framed
/// entries, see codec.h); Open() scans the tail segment and truncates
/// torn or CRC-failing entries so a crash mid-append never poisons the
/// log; any number of independent Cursors replay the stream by offset or
/// event-time lower bound, concurrently with a writer.
///
/// Thread safety: one writer thread (Append* / Sync) plus any number of
/// cursor threads. All mutating calls are serialized on an internal
/// mutex; cursors read committed bytes lock-free via per-segment atomics
/// and only take the mutex at segment boundaries.
class Log {
 public:
  /// Opens (creating the directory and first segment if needed) and runs
  /// tail recovery. On success the log is ready for appends and reads.
  static Result<std::unique_ptr<Log>> Open(const LogOptions& options);

  ~Log();
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// Appends one record; returns its offset.
  Result<uint64_t> Append(const stream::Record& record);

  /// Appends records contiguously; returns the offset of the first (the
  /// rest follow densely). One fsync per call under kPerBatch.
  Result<uint64_t> AppendBatch(const std::vector<stream::Record>& records);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Fault-injection hook (tests / chaos harness): every subsequent
  /// Append/AppendBatch fails with `fault` — no bytes are written —
  /// until cleared with an OK status. Lets the durable-sink error paths
  /// (mid-stream and final tail flush) be exercised deterministically.
  void SetAppendFault(Status fault);

  /// Fault-injection hook (chaos harness): every subsequent
  /// Append/AppendBatch/Sync stalls `delay_ms` while holding the writer
  /// mutex before returning — the observable shape of a device whose
  /// fsync has gone slow (stable-storage stall). Unlike SetAppendFault
  /// the data IS written and the call succeeds; only timing degrades.
  /// 0 clears. Stalls served are counted in LogMetrics::sync_stalls.
  void SetSyncDelay(TimeMs delay_ms);

  /// First retained offset (advances when retention deletes segments).
  uint64_t start_offset() const;
  /// Offset the next append will get (== total records ever appended,
  /// across reopens, minus nothing: offsets are never reused).
  uint64_t next_offset() const;
  /// Number of live segment files.
  size_t segment_count() const;
  /// Total committed bytes across live segments.
  uint64_t size_bytes() const;

  const LogOptions& options() const { return options_; }

  LogMetrics metrics() const;

  /// The log's counters mapped onto the dataflow StageMetrics shape
  /// (records_in = appends, records_out = cursor reads, plus the
  /// bytes/io_syncs/recovered/truncated_bytes durable-stage fields) —
  /// what LogSink/LogSource register with a Pipeline.
  stream::StageMetrics StageMetricsSnapshot() const;

  /// New independent cursor positioned at start_offset(). The Log must
  /// outlive it.
  std::unique_ptr<Cursor> NewCursor();

 private:
  friend class Cursor;
  struct Segment;

  explicit Log(LogOptions options);

  /// Scans the directory, validates segment headers, recovers the tail.
  Status OpenDir();
  /// Creates segment file with the given base offset; appends to
  /// segments_. Requires mutex_.
  Status CreateSegmentLocked(uint64_t base_offset);
  /// Seals the active segment and opens a fresh one. Requires mutex_.
  Status RollLocked();
  /// Deletes oldest segments past the retention limits. Requires mutex_.
  void ApplyRetentionLocked();
  /// Shared append path. `sync_each` forces an fsync per record.
  Result<uint64_t> AppendEncoded(const std::string& buf, uint64_t count,
                                 const std::vector<size_t>& entry_ends);
  /// Serves an armed SetSyncDelay stall (called on the append/sync path,
  /// with mutex_ held, so the stall blocks the writer like a real slow
  /// fsync would).
  void StallForSyncDelay();

  /// Segment containing `offset`, or the first one after it (retention
  /// gap), or nullptr when offset >= next_offset. Requires mutex_.
  std::shared_ptr<Segment> SegmentForOffsetLocked(uint64_t offset) const;
  /// First segment with base_offset > `base`, nullptr if none (cursor
  /// advance).
  std::shared_ptr<Segment> SegmentAfter(uint64_t base) const;

  const LogOptions options_;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Segment>> segments_;  // oldest → active
  Status append_fault_;  // injected append failure (ok = disarmed)
  // Injected fsync stall (ms per append/sync; 0 = disarmed). Atomic so
  // a chaos thread can arm/clear it without taking the writer mutex.
  std::atomic<int64_t> sync_delay_ms_{0};
  std::atomic<uint64_t> sync_stalls_{0};

  // Metrics: atomics so cursor threads can bump read counters without
  // the writer mutex.
  std::atomic<uint64_t> appended_records_{0};
  std::atomic<uint64_t> appended_bytes_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> read_records_{0};
  std::atomic<uint64_t> read_bytes_{0};
  std::atomic<uint64_t> segments_created_{0};
  std::atomic<uint64_t> segments_deleted_{0};
  uint64_t recovered_records_ = 0;  // written once, by OpenDir
  uint64_t truncated_bytes_ = 0;    // written once, by OpenDir
};

/// A read position in a Log: an independent consumer (Kafka consumer
/// analogue — the log itself tracks nothing about its readers). Cursors
/// are cheap; create one per consumer. Not thread-safe individually;
/// different cursors may be used from different threads concurrently
/// with the writer.
class Cursor {
 public:
  ~Cursor();
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  /// Positions at `offset`, clamped into [start_offset, next_offset] —
  /// seeking below the retention horizon lands at the oldest retained
  /// record, like a Kafka consumer resetting to "earliest".
  Status Seek(uint64_t offset);

  /// Positions at the first record (scanning forward from the log start)
  /// whose event_time is >= `t`. Linear in log size; only entry headers
  /// and the leading event-time varint are decoded. If no record
  /// qualifies the cursor lands at next_offset (end).
  Status SeekToTime(TimeMs t);

  /// Next committed record, or nullopt when the cursor has caught up with
  /// the writer (call again later — tailing is legal) or a sticky error
  /// occurred (check status()). Never returns partially-written data.
  std::optional<ReadRecord> Next();

  /// Appends up to `max_n` committed records to `out` and returns how
  /// many were appended (0 = caught up with the writer, or sticky error —
  /// check status()). Equivalent to calling Next() `max_n` times but
  /// segment-aware: the per-segment committed watermark is sampled once
  /// and reused for every frame in the batch (committed offsets only
  /// grow and are always published at entry boundaries, so a cached
  /// watermark can never split a frame), and the log's read counters are
  /// bumped once per batch instead of once per record. This is the
  /// replay path behind stages.h LogSource: one NextBatch call produces
  /// exactly one downstream channel transfer.
  size_t NextBatch(std::vector<ReadRecord>* out, size_t max_n);

  /// Offset of the record Next() would return.
  uint64_t offset() const { return next_offset_; }

  /// OK unless the cursor hit a corrupt mid-log entry, after which the
  /// cursor refuses to advance (torn *tails* are handled by Log::Open;
  /// mid-log damage is surfaced, not skipped).
  const Status& status() const { return status_; }

 private:
  friend class Log;
  explicit Cursor(Log* log);

  /// Points seg_/byte_pos_ at `offset` (must be within the log). Scans
  /// from the nearest sparse-index entry at or before the target.
  Status PositionAt(uint64_t offset);
  /// Peeks the next committed entry without consuming it, advancing
  /// across sealed segment boundaries. Returns 1 with `*payload` /
  /// `*frame_size` filled, 0 when caught up with the writer, -1 on a
  /// (sticky) error. `committed_cache` (optional, batch reads) caches the
  /// current segment's committed watermark across calls: when it already
  /// proves bytes ahead of the cursor, the per-frame acquire load is
  /// skipped; it is refreshed when exhausted and reset on segment
  /// advance. Safe because committed watermarks only grow and always lie
  /// on entry boundaries.
  int ReadFrame(std::string_view* payload, uint64_t* frame_size,
                uint64_t* committed_cache = nullptr);
  /// Returns a pointer to `n` bytes at absolute file position `pos` of
  /// the current segment, reading through an internal chunk buffer.
  const char* View(uint64_t pos, uint64_t n);

  Log* log_;
  std::shared_ptr<Log::Segment> seg_;
  uint64_t byte_pos_ = 0;      ///< next unread byte within seg_
  uint64_t next_offset_ = 0;   ///< global offset of the next record
  Status status_;

  std::string buf_;            ///< read-ahead chunk
  uint64_t buf_pos_ = 0;       ///< file position of buf_[0]
};

}  // namespace tcmf::mlog

#endif  // TCMF_MLOG_LOG_H_
