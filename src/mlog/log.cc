#include "mlog/log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/crc32c.h"
#include "common/strings.h"
#include "common/varint.h"
#include "mlog/codec.h"

namespace tcmf::mlog {

namespace fs = std::filesystem;

namespace {

/// Segment file header: magic "MLG1", version (u32 LE), base offset
/// (u64 LE). The base offset is also encoded in the filename; the header
/// copy guards against renamed/foreign files.
constexpr char kMagic[4] = {'M', 'L', 'G', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint64_t kSegmentHeaderSize = 16;
constexpr char kSegmentExt[] = ".mseg";

/// Largest possible entry header: 10-byte length varint + 4-byte CRC.
constexpr uint64_t kMaxEntryHeader = 14;

/// Cursor read-ahead chunk.
constexpr uint64_t kReadChunk = 64 * 1024;

std::string SegmentFileName(uint64_t base_offset) {
  return StrFormat("%020llu%s",
                   static_cast<unsigned long long>(base_offset), kSegmentExt);
}

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Full pwrite (handles short writes / EINTR).
Status PwriteAll(int fd, const char* data, size_t n, uint64_t pos) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::pwrite(fd, data + done, n - done, pos + done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("mlog: pwrite");
    }
    done += static_cast<size_t>(w);
  }
  return Status::Ok();
}

/// Full pread; returns false on IO error or premature EOF.
bool PreadAll(int fd, char* data, size_t n, uint64_t pos) {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd, data + done, n - done, pos + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    done += static_cast<size_t>(r);
  }
  return true;
}

std::string EncodeSegmentHeader(uint64_t base_offset) {
  std::string h(kMagic, 4);
  AppendFixed32(&h, kFormatVersion);
  AppendFixed64(&h, base_offset);
  return h;
}

bool ValidSegmentHeader(const char* h, uint64_t expected_base) {
  return std::memcmp(h, kMagic, 4) == 0 &&
         DecodeFixed32(h + 4) == kFormatVersion &&
         DecodeFixed64(h + 8) == expected_base;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kPerBatch:
      return "per_batch";
    case FsyncPolicy::kPerAppend:
      return "per_append";
  }
  return "unknown";
}

std::string LogMetrics::ToJson() const {
  return StrFormat(
      "{\"appended_records\":%llu,\"appended_bytes\":%llu,\"fsyncs\":%llu,"
      "\"read_records\":%llu,\"read_bytes\":%llu,"
      "\"segments_created\":%llu,\"segments_deleted\":%llu,"
      "\"recovered_records\":%llu,\"truncated_bytes\":%llu,"
      "\"sync_stalls\":%llu}",
      static_cast<unsigned long long>(appended_records),
      static_cast<unsigned long long>(appended_bytes),
      static_cast<unsigned long long>(fsyncs),
      static_cast<unsigned long long>(read_records),
      static_cast<unsigned long long>(read_bytes),
      static_cast<unsigned long long>(segments_created),
      static_cast<unsigned long long>(segments_deleted),
      static_cast<unsigned long long>(recovered_records),
      static_cast<unsigned long long>(truncated_bytes),
      static_cast<unsigned long long>(sync_stalls));
}

/// One segment file. `committed_*` only ever grow and are published with
/// release stores after the corresponding bytes hit the file, so a cursor
/// that acquires them never observes a partially-written entry.
struct Log::Segment {
  uint64_t base_offset = 0;
  std::string path;
  int fd = -1;
  std::atomic<uint64_t> committed_bytes{0};    ///< file bytes incl. header
  std::atomic<uint64_t> committed_records{0};
  std::atomic<bool> sealed{false};

  /// Sparse index: (relative record index, byte position of its entry),
  /// strictly increasing in both components. Built during append (and
  /// tail recovery); sealed segments reopened from disk have none and
  /// are scanned from their start on seek.
  std::mutex index_mutex;
  std::vector<std::pair<uint64_t, uint64_t>> index;
  uint64_t last_index_pos = kSegmentHeaderSize;  ///< writer-only

  ~Segment() {
    if (fd >= 0) ::close(fd);
  }
};

Log::Log(LogOptions options) : options_(std::move(options)) {}

Log::~Log() = default;

Result<std::unique_ptr<Log>> Log::Open(const LogOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("mlog: LogOptions.dir is required");
  }
  std::unique_ptr<Log> log(new Log(options));
  TCMF_RETURN_IF_ERROR(log->OpenDir());
  return log;
}

Status Log::OpenDir() {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return Status::IoError("mlog: create_directories " + options_.dir + ": " +
                           ec.message());
  }

  // Collect segment files, sorted by their filename-encoded base offset.
  std::vector<std::pair<uint64_t, std::string>> files;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != kSegmentExt) continue;
    Result<long long> base = ParseInt(p.stem().string());
    if (!base.ok() || base.value() < 0) {
      return Status::IoError("mlog: unparsable segment name " + p.string());
    }
    files.emplace_back(static_cast<uint64_t>(base.value()), p.string());
  }
  if (ec) return Status::IoError("mlog: listing " + options_.dir);
  std::sort(files.begin(), files.end());

  std::lock_guard<std::mutex> lock(mutex_);
  if (files.empty()) return CreateSegmentLocked(0);

  for (size_t i = 0; i < files.size(); ++i) {
    const auto& [base, path] = files[i];
    const bool is_tail = (i + 1 == files.size());
    const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("mlog: open " + path);
    auto seg = std::make_shared<Segment>();
    seg->base_offset = base;
    seg->path = path;
    seg->fd = fd;

    struct stat st;
    if (::fstat(fd, &st) != 0) return ErrnoStatus("mlog: fstat " + path);
    const uint64_t size = static_cast<uint64_t>(st.st_size);

    char header[kSegmentHeaderSize];
    const bool header_ok = size >= kSegmentHeaderSize &&
                           PreadAll(fd, header, kSegmentHeaderSize, 0) &&
                           ValidSegmentHeader(header, base);

    if (!is_tail) {
      // Sealed segment: header must be intact; the record count is
      // implied by the next segment's base offset.
      if (!header_ok) {
        return Status::IoError("mlog: bad header in sealed segment " + path);
      }
      if (files[i + 1].first < base) {
        return Status::IoError("mlog: segment base offsets not monotonic");
      }
      seg->committed_bytes.store(size, std::memory_order_release);
      seg->committed_records.store(files[i + 1].first - base,
                                   std::memory_order_release);
      seg->sealed.store(true, std::memory_order_release);
      segments_.push_back(std::move(seg));
      continue;
    }

    // Tail segment: recovery scan. Everything up to the first torn or
    // CRC-failing entry survives; the rest is truncated so the next
    // append continues at the next offset with no gap and no duplicate.
    if (!header_ok) {
      // Torn before the header finished (or foreign bytes): reset the
      // segment to empty, keeping its base offset.
      if (::ftruncate(fd, 0) != 0) return ErrnoStatus("mlog: ftruncate");
      const std::string h = EncodeSegmentHeader(base);
      TCMF_RETURN_IF_ERROR(PwriteAll(fd, h.data(), h.size(), 0));
      truncated_bytes_ += size;
      seg->committed_bytes.store(kSegmentHeaderSize,
                                 std::memory_order_release);
      segments_.push_back(std::move(seg));
      continue;
    }

    std::string data(size - kSegmentHeaderSize, '\0');
    if (!data.empty() &&
        !PreadAll(fd, data.data(), data.size(), kSegmentHeaderSize)) {
      return ErrnoStatus("mlog: pread " + path);
    }
    const char* p = data.data();
    const char* limit = p + data.size();
    uint64_t records = 0;
    uint64_t pos = kSegmentHeaderSize;
    stream::Record scratch;
    while (p < limit) {
      EntryView entry;
      if (!ParseEntry(p, limit, &entry)) break;
      // The CRC already vouches for integrity; decoding as well
      // guarantees cursors can never fail on recovered entries.
      if (!DecodeRecordPayload(entry.payload, &scratch)) break;
      pos += static_cast<uint64_t>(entry.next - p);
      p = entry.next;
      ++records;
      if (pos - seg->last_index_pos >= options_.index_interval_bytes) {
        seg->index.emplace_back(records, pos);
        seg->last_index_pos = pos;
      }
    }
    if (pos < size) {
      if (::ftruncate(fd, static_cast<off_t>(pos)) != 0) {
        return ErrnoStatus("mlog: ftruncate " + path);
      }
      truncated_bytes_ += size - pos;
    }
    recovered_records_ = records;
    seg->committed_bytes.store(pos, std::memory_order_release);
    seg->committed_records.store(records, std::memory_order_release);
    segments_.push_back(std::move(seg));
  }
  return Status::Ok();
}

Status Log::CreateSegmentLocked(uint64_t base_offset) {
  const std::string path =
      (fs::path(options_.dir) / SegmentFileName(base_offset)).string();
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("mlog: create " + path);
  const std::string h = EncodeSegmentHeader(base_offset);
  Status s = PwriteAll(fd, h.data(), h.size(), 0);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  if (options_.fsync_policy != FsyncPolicy::kNever) {
    ::fdatasync(fd);
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  auto seg = std::make_shared<Segment>();
  seg->base_offset = base_offset;
  seg->path = path;
  seg->fd = fd;
  seg->committed_bytes.store(kSegmentHeaderSize, std::memory_order_release);
  segments_.push_back(std::move(seg));
  segments_created_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Log::RollLocked() {
  Segment* seg = segments_.back().get();
  if (options_.fsync_policy != FsyncPolicy::kNever) {
    ::fdatasync(seg->fd);
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  seg->sealed.store(true, std::memory_order_release);
  TCMF_RETURN_IF_ERROR(CreateSegmentLocked(
      seg->base_offset +
      seg->committed_records.load(std::memory_order_relaxed)));
  ApplyRetentionLocked();
  return Status::Ok();
}

void Log::ApplyRetentionLocked() {
  while (segments_.size() > 1) {
    const bool over_count = options_.retention_segments > 0 &&
                            segments_.size() > options_.retention_segments;
    uint64_t total = 0;
    for (const auto& seg : segments_) {
      total += seg->committed_bytes.load(std::memory_order_relaxed);
    }
    const bool over_bytes =
        options_.retention_bytes > 0 && total > options_.retention_bytes;
    if (!over_count && !over_bytes) break;
    // Cursors holding the segment keep reading it through their
    // shared_ptr (POSIX keeps unlinked-but-open files readable); new
    // seeks clamp to the advanced start_offset.
    ::unlink(segments_.front()->path.c_str());
    segments_.erase(segments_.begin());
    segments_deleted_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<uint64_t> Log::Append(const stream::Record& record) {
  std::string buf;
  std::vector<size_t> entry_ends;
  AppendEntry(&buf, record);
  entry_ends.push_back(buf.size());
  return AppendEncoded(buf, 1, entry_ends);
}

Result<uint64_t> Log::AppendBatch(const std::vector<stream::Record>& records) {
  if (records.empty()) return next_offset();
  std::string buf;
  std::vector<size_t> entry_ends;
  entry_ends.reserve(records.size());
  for (const stream::Record& r : records) {
    AppendEntry(&buf, r);
    entry_ends.push_back(buf.size());
  }
  return AppendEncoded(buf, records.size(), entry_ends);
}

Result<uint64_t> Log::AppendEncoded(const std::string& buf, uint64_t count,
                                    const std::vector<size_t>& entry_ends) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!append_fault_.ok()) return append_fault_;
  Segment* seg = segments_.back().get();
  if (seg->committed_records.load(std::memory_order_relaxed) > 0 &&
      seg->committed_bytes.load(std::memory_order_relaxed) + buf.size() >
          options_.segment_bytes) {
    TCMF_RETURN_IF_ERROR(RollLocked());
    seg = segments_.back().get();
  }
  const uint64_t records_before =
      seg->committed_records.load(std::memory_order_relaxed);
  const uint64_t pos = seg->committed_bytes.load(std::memory_order_relaxed);
  const uint64_t first_offset = seg->base_offset + records_before;

  if (options_.fsync_policy == FsyncPolicy::kPerAppend) {
    // Durability-max mode: write + sync + publish one record at a time,
    // so every returned offset is already on stable storage.
    size_t from = 0;
    uint64_t recs = records_before;
    for (const size_t end : entry_ends) {
      TCMF_RETURN_IF_ERROR(
          PwriteAll(seg->fd, buf.data() + from, end - from, pos + from));
      ::fdatasync(seg->fd);
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
      ++recs;
      seg->committed_bytes.store(pos + end, std::memory_order_release);
      seg->committed_records.store(recs, std::memory_order_release);
      from = end;
    }
  } else {
    TCMF_RETURN_IF_ERROR(PwriteAll(seg->fd, buf.data(), buf.size(), pos));
    if (options_.fsync_policy == FsyncPolicy::kPerBatch) {
      ::fdatasync(seg->fd);
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
    }
    seg->committed_bytes.store(pos + buf.size(), std::memory_order_release);
    seg->committed_records.store(records_before + count,
                                 std::memory_order_release);
  }

  // Extend the sparse index at record boundaries.
  {
    std::lock_guard<std::mutex> index_lock(seg->index_mutex);
    for (size_t i = 0; i < entry_ends.size(); ++i) {
      const uint64_t boundary = pos + entry_ends[i];
      if (boundary - seg->last_index_pos >= options_.index_interval_bytes) {
        seg->index.emplace_back(records_before + i + 1, boundary);
        seg->last_index_pos = boundary;
      }
    }
  }

  appended_records_.fetch_add(count, std::memory_order_relaxed);
  appended_bytes_.fetch_add(buf.size(), std::memory_order_relaxed);
  StallForSyncDelay();
  return first_offset;
}

void Log::SetAppendFault(Status fault) {
  std::lock_guard<std::mutex> lock(mutex_);
  append_fault_ = std::move(fault);
}

void Log::SetSyncDelay(TimeMs delay_ms) {
  sync_delay_ms_.store(delay_ms < 0 ? 0 : delay_ms, std::memory_order_relaxed);
}

void Log::StallForSyncDelay() {
  const int64_t delay = sync_delay_ms_.load(std::memory_order_relaxed);
  if (delay <= 0) return;
  sync_stalls_.fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

Status Log::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (::fdatasync(segments_.back()->fd) != 0) {
    return ErrnoStatus("mlog: fdatasync");
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  StallForSyncDelay();
  return Status::Ok();
}

uint64_t Log::start_offset() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.front()->base_offset;
}

uint64_t Log::next_offset() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Segment* seg = segments_.back().get();
  return seg->base_offset +
         seg->committed_records.load(std::memory_order_acquire);
}

size_t Log::segment_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.size();
}

uint64_t Log::size_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& seg : segments_) {
    total += seg->committed_bytes.load(std::memory_order_acquire);
  }
  return total;
}

LogMetrics Log::metrics() const {
  LogMetrics m;
  m.appended_records = appended_records_.load(std::memory_order_relaxed);
  m.appended_bytes = appended_bytes_.load(std::memory_order_relaxed);
  m.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  m.read_records = read_records_.load(std::memory_order_relaxed);
  m.read_bytes = read_bytes_.load(std::memory_order_relaxed);
  m.segments_created = segments_created_.load(std::memory_order_relaxed);
  m.segments_deleted = segments_deleted_.load(std::memory_order_relaxed);
  m.recovered_records = recovered_records_;
  m.truncated_bytes = truncated_bytes_;
  m.sync_stalls = sync_stalls_.load(std::memory_order_relaxed);
  return m;
}

stream::StageMetrics Log::StageMetricsSnapshot() const {
  const LogMetrics lm = metrics();
  stream::StageMetrics m;
  m.records_in = lm.appended_records;
  m.records_out = lm.read_records;
  m.bytes = lm.appended_bytes;
  m.io_syncs = lm.fsyncs;
  m.recovered = lm.recovered_records;
  m.truncated_bytes = lm.truncated_bytes;
  return m;
}

std::unique_ptr<Cursor> Log::NewCursor() {
  std::unique_ptr<Cursor> cursor(new Cursor(this));
  cursor->Seek(start_offset());
  return cursor;
}

std::shared_ptr<Log::Segment> Log::SegmentForOffsetLocked(
    uint64_t offset) const {
  for (const auto& seg : segments_) {
    if (offset < seg->base_offset) return seg;  // retention gap: first after
    const uint64_t end =
        seg->base_offset +
        seg->committed_records.load(std::memory_order_acquire);
    if (offset < end) return seg;
  }
  return segments_.back();  // offset == next_offset: park at the tail
}

std::shared_ptr<Log::Segment> Log::SegmentAfter(uint64_t base) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& seg : segments_) {
    if (seg->base_offset > base) return seg;
  }
  return nullptr;
}

Cursor::Cursor(Log* log) : log_(log) {}

Cursor::~Cursor() = default;

Status Cursor::Seek(uint64_t offset) {
  status_ = Status::Ok();
  const uint64_t lo = log_->start_offset();
  const uint64_t hi = log_->next_offset();
  offset = std::min(std::max(offset, lo), hi);
  status_ = PositionAt(offset);
  return status_;
}

Status Cursor::PositionAt(uint64_t offset) {
  std::shared_ptr<Log::Segment> seg;
  {
    std::lock_guard<std::mutex> lock(log_->mutex_);
    seg = log_->SegmentForOffsetLocked(offset);
  }
  if (seg->base_offset > offset) offset = seg->base_offset;
  const uint64_t rel = offset - seg->base_offset;

  uint64_t rec = 0;
  uint64_t pos = kSegmentHeaderSize;
  {
    std::lock_guard<std::mutex> index_lock(seg->index_mutex);
    auto it = std::upper_bound(
        seg->index.begin(), seg->index.end(), rel,
        [](uint64_t r, const std::pair<uint64_t, uint64_t>& e) {
          return r < e.first;
        });
    if (it != seg->index.begin()) {
      --it;
      rec = it->first;
      pos = it->second;
    }
  }

  seg_ = std::move(seg);
  buf_.clear();
  buf_pos_ = 0;
  const uint64_t committed =
      seg_->committed_bytes.load(std::memory_order_acquire);
  // Walk entry headers from the index point to the target record.
  while (rec < rel) {
    const uint64_t avail =
        std::min<uint64_t>(committed - pos, kMaxEntryHeader);
    const char* p = View(pos, avail);
    uint64_t len = 0;
    const char* q = p ? ParseVarint64(p, p + avail, &len) : nullptr;
    if (q == nullptr || pos + (q - p) + 4 + len > committed) {
      const std::string path = seg_->path;
      seg_.reset();
      return Status::IoError("mlog: corrupt entry during seek in " + path);
    }
    pos += static_cast<uint64_t>(q - p) + 4 + len;
    ++rec;
  }
  byte_pos_ = pos;
  next_offset_ = seg_->base_offset + rel;
  return Status::Ok();
}

Status Cursor::SeekToTime(TimeMs t) {
  TCMF_RETURN_IF_ERROR(Seek(log_->start_offset()));
  while (true) {
    std::string_view payload;
    uint64_t frame_size = 0;
    const int st = ReadFrame(&payload, &frame_size);
    if (st < 0) return status_;
    if (st == 0) return Status::Ok();  // exhausted: parked at the end
    TimeMs event_time = 0;
    if (!DecodePayloadEventTime(payload, &event_time)) {
      status_ = Status::IoError("mlog: corrupt payload during time seek");
      return status_;
    }
    if (event_time >= t) return Status::Ok();  // positioned, not consumed
    byte_pos_ += frame_size;
    ++next_offset_;
  }
}

std::optional<ReadRecord> Cursor::Next() {
  if (!status_.ok() || seg_ == nullptr) return std::nullopt;
  std::string_view payload;
  uint64_t frame_size = 0;
  const int st = ReadFrame(&payload, &frame_size);
  if (st <= 0) return std::nullopt;
  ReadRecord out;
  out.offset = next_offset_;
  if (!DecodeRecordPayload(payload, &out.record)) {
    status_ = Status::IoError("mlog: undecodable entry at offset " +
                              std::to_string(next_offset_));
    return std::nullopt;
  }
  byte_pos_ += frame_size;
  ++next_offset_;
  log_->read_records_.fetch_add(1, std::memory_order_relaxed);
  log_->read_bytes_.fetch_add(frame_size, std::memory_order_relaxed);
  return out;
}

size_t Cursor::NextBatch(std::vector<ReadRecord>* out, size_t max_n) {
  if (!status_.ok() || seg_ == nullptr || max_n == 0) return 0;
  size_t n = 0;
  uint64_t bytes = 0;
  // One committed-watermark sample is reused for every frame decoded from
  // the same segment in this batch (see ReadFrame's cache contract).
  uint64_t committed_cache = 0;
  while (n < max_n) {
    std::string_view payload;
    uint64_t frame_size = 0;
    const int st = ReadFrame(&payload, &frame_size, &committed_cache);
    if (st <= 0) break;
    ReadRecord rec;
    rec.offset = next_offset_;
    if (!DecodeRecordPayload(payload, &rec.record)) {
      status_ = Status::IoError("mlog: undecodable entry at offset " +
                                std::to_string(next_offset_));
      break;
    }
    out->push_back(std::move(rec));
    byte_pos_ += frame_size;
    ++next_offset_;
    bytes += frame_size;
    ++n;
  }
  if (n > 0) {
    // Amortized metrics: one fetch_add pair per batch, not per record.
    log_->read_records_.fetch_add(n, std::memory_order_relaxed);
    log_->read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  return n;
}

int Cursor::ReadFrame(std::string_view* payload, uint64_t* frame_size,
                      uint64_t* committed_cache) {
  if (!status_.ok() || seg_ == nullptr) return -1;
  while (true) {
    // The cached watermark is only trusted while it proves bytes ahead of
    // the cursor; otherwise take (and re-publish) a fresh acquire load.
    uint64_t committed;
    if (committed_cache != nullptr && *committed_cache > byte_pos_) {
      committed = *committed_cache;
    } else {
      committed = seg_->committed_bytes.load(std::memory_order_acquire);
      if (committed_cache != nullptr) *committed_cache = committed;
    }
    if (byte_pos_ >= committed) {
      // Caught up with this segment. If it is sealed a successor must
      // exist (roll publishes both under the log mutex); otherwise we
      // are tailing the active segment.
      if (!seg_->sealed.load(std::memory_order_acquire)) return 0;
      std::shared_ptr<Log::Segment> next =
          log_->SegmentAfter(seg_->base_offset);
      if (next == nullptr) return 0;
      seg_ = std::move(next);
      byte_pos_ = kSegmentHeaderSize;
      // Retention may have removed intermediate segments: jump forward.
      if (next_offset_ < seg_->base_offset) next_offset_ = seg_->base_offset;
      buf_.clear();
      buf_pos_ = 0;
      // New segment, new watermark: invalidate the caller's cache.
      if (committed_cache != nullptr) *committed_cache = 0;
      continue;
    }
    const uint64_t avail =
        std::min<uint64_t>(committed - byte_pos_, kMaxEntryHeader);
    const char* p = View(byte_pos_, avail);
    if (p == nullptr) {
      status_ = Status::IoError("mlog: read failed in " + seg_->path);
      return -1;
    }
    uint64_t len = 0;
    const char* q = ParseVarint64(p, p + avail, &len);
    if (q == nullptr ||
        byte_pos_ + static_cast<uint64_t>(q - p) + 4 + len > committed) {
      // Committed data never ends mid-entry; this is mid-log damage
      // (bit rot in a sealed segment), surfaced as a sticky error.
      status_ = Status::IoError("mlog: corrupt entry at offset " +
                                std::to_string(next_offset_) + " in " +
                                seg_->path);
      return -1;
    }
    const uint64_t header_len = static_cast<uint64_t>(q - p);
    const uint64_t frame = header_len + 4 + len;
    const char* f = View(byte_pos_, frame);
    if (f == nullptr) {
      status_ = Status::IoError("mlog: read failed in " + seg_->path);
      return -1;
    }
    const uint32_t stored = DecodeFixed32(f + header_len);
    const char* payload_ptr = f + header_len + 4;
    if (Crc32cMask(Crc32c(payload_ptr, len)) != stored) {
      status_ = Status::IoError("mlog: CRC mismatch at offset " +
                                std::to_string(next_offset_) + " in " +
                                seg_->path);
      return -1;
    }
    *payload = std::string_view(payload_ptr, len);
    *frame_size = frame;
    return 1;
  }
}

const char* Cursor::View(uint64_t pos, uint64_t n) {
  if (n == 0) return buf_.data();
  if (pos >= buf_pos_ && pos + n <= buf_pos_ + buf_.size()) {
    return buf_.data() + (pos - buf_pos_);
  }
  const uint64_t committed =
      seg_->committed_bytes.load(std::memory_order_acquire);
  if (pos + n > committed) return nullptr;
  const uint64_t want =
      std::min<uint64_t>(std::max<uint64_t>(n, kReadChunk), committed - pos);
  buf_.resize(want);
  if (!PreadAll(seg_->fd, buf_.data(), want, pos)) {
    buf_.clear();
    buf_pos_ = 0;
    return nullptr;
  }
  buf_pos_ = pos;
  return buf_.data();
}

}  // namespace tcmf::mlog
