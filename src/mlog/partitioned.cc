#include "mlog/partitioned.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "common/strings.h"

namespace tcmf::mlog {

namespace fs = std::filesystem;

std::string GroupFrontier::ToJson() const {
  std::string out = "{\"committed\":[";
  for (size_t i = 0; i < committed.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(committed[i]);
  }
  out += "],\"committed_total\":" + std::to_string(committed_total);
  out += ",\"end_total\":" + std::to_string(end_total);
  out += ",\"lag\":" + std::to_string(lag) + "}";
  return out;
}

PartitionedLog::PartitionedLog(PartitionedLogOptions options)
    : options_(std::move(options)) {}

namespace {

/// Partition subdirectory name for index `k`.
std::string PartitionDirName(size_t k) {
  std::string name = "p";
  name += std::to_string(k);
  return name;
}

/// Counts contiguous `p0/ p1/ ... p<n-1>/` subdirectories of `dir`
/// (0 when the directory does not exist yet). Gaps are an error: a topic
/// either has partitions 0..n-1 or is new.
Result<size_t> CountPartitionDirs(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return size_t{0};
  std::vector<bool> present;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 2 || name[0] != 'p') continue;
    Result<long long> k = ParseInt(name.substr(1));
    if (!k.ok() || k.value() < 0) continue;
    const size_t idx = static_cast<size_t>(k.value());
    if (present.size() <= idx) present.resize(idx + 1, false);
    present[idx] = true;
  }
  if (ec) return Status::IoError("mlog: listing topic dir " + dir);
  for (size_t i = 0; i < present.size(); ++i) {
    if (!present[i]) {
      return Status::IoError("mlog: topic " + dir + " is missing partition " +
                             PartitionDirName(i));
    }
  }
  return present.size();
}

}  // namespace

Result<std::unique_ptr<PartitionedLog>> PartitionedLog::Open(
    const PartitionedLogOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("mlog: PartitionedLogOptions.dir is empty");
  }
  Result<size_t> on_disk = CountPartitionDirs(options.dir);
  TCMF_RETURN_IF_ERROR(on_disk.status());
  size_t n = options.partitions;
  if (n == 0) {
    n = on_disk.value() > 0 ? on_disk.value() : 1;
  } else if (on_disk.value() > 0 && on_disk.value() != n) {
    // Rehashing keys over a different partition count would silently
    // break per-key order; partition count is immutable once created.
    return Status::FailedPrecondition(
        "mlog: topic " + options.dir + " has " +
        std::to_string(on_disk.value()) + " partitions, asked for " +
        std::to_string(n));
  }
  std::unique_ptr<PartitionedLog> plog(new PartitionedLog(options));
  plog->partitions_.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    LogOptions lo = options.log;
    lo.dir = options.dir + "/" + PartitionDirName(k);
    Result<std::unique_ptr<Log>> part = Log::Open(lo);
    TCMF_RETURN_IF_ERROR(part.status());
    plog->partitions_.push_back(std::move(part).value());
  }
  return plog;
}

Result<uint64_t> PartitionedLog::AppendKeyed(uint64_t key,
                                             const stream::Record& record) {
  return partitions_[PartitionFor(key)]->Append(record);
}

Status PartitionedLog::AppendKeyedBatch(
    const std::vector<std::pair<uint64_t, stream::Record>>& records) {
  std::vector<std::vector<stream::Record>> scatter(partitions_.size());
  for (const auto& [key, record] : records) {
    scatter[PartitionFor(key)].push_back(record);
  }
  for (size_t p = 0; p < scatter.size(); ++p) {
    if (scatter[p].empty()) continue;
    TCMF_RETURN_IF_ERROR(partitions_[p]->AppendBatch(scatter[p]).status());
  }
  return Status::Ok();
}

uint64_t PartitionedLog::next_offset_total() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += p->next_offset();
  return total;
}

uint64_t PartitionedLog::size_bytes_total() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += p->size_bytes();
  return total;
}

stream::StageMetrics PartitionedLog::StageMetricsSnapshot() const {
  std::vector<stream::StageMetrics> rows;
  rows.reserve(partitions_.size());
  for (const auto& p : partitions_) rows.push_back(p->StageMetricsSnapshot());
  return stream::AggregateStageMetrics("", rows);
}

std::shared_ptr<PartitionedLog::GroupState> PartitionedLog::GroupFor(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(groups_mu_);
  std::shared_ptr<GroupState>& state = groups_[name];
  if (!state) {
    state = std::make_shared<GroupState>();
    state->committed.reserve(partitions_.size());
    for (const auto& p : partitions_) {
      state->committed.push_back(p->start_offset());
    }
  }
  return state;
}

Result<std::unique_ptr<GroupCursor>> PartitionedLog::JoinGroup(
    const std::string& group, size_t member, size_t member_count) {
  std::unique_ptr<GroupCursor> cursor(new GroupCursor(this, GroupFor(group)));
  TCMF_RETURN_IF_ERROR(cursor->Rebalance(member, member_count));
  return cursor;
}

GroupCursor::GroupCursor(PartitionedLog* log,
                         std::shared_ptr<PartitionedLog::GroupState> state)
    : log_(log), state_(std::move(state)) {}

Status GroupCursor::Rebalance(size_t member, size_t member_count) {
  assignment_.clear();
  cursors_.clear();
  rr_ = 0;
  if (member_count == 0 || member >= member_count) {
    status_ = Status::InvalidArgument(
        "mlog: group member " + std::to_string(member) + " of " +
        std::to_string(member_count));
    return status_;
  }
  member_ = member;
  member_count_ = member_count;
  for (size_t p = member; p < log_->partition_count(); p += member_count) {
    std::unique_ptr<Cursor> cursor = log_->partition(p)->NewCursor();
    uint64_t resume;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      resume = state_->committed[p];
    }
    Status seek = cursor->Seek(resume);
    if (!seek.ok()) {
      assignment_.clear();
      cursors_.clear();
      status_ = seek;
      return status_;
    }
    assignment_.push_back(p);
    cursors_.push_back(std::move(cursor));
  }
  status_ = Status::Ok();
  return status_;
}

std::optional<GroupRecord> GroupCursor::Next() {
  if (!status_.ok() || assignment_.empty()) return std::nullopt;
  for (size_t i = 0; i < assignment_.size(); ++i) {
    const size_t idx = (rr_ + i) % assignment_.size();
    std::optional<ReadRecord> next = cursors_[idx]->Next();
    if (!next.has_value()) {
      if (!cursors_[idx]->status().ok()) {
        status_ = cursors_[idx]->status();
        return std::nullopt;
      }
      continue;  // this partition is caught up; try the next one
    }
    const size_t p = assignment_[idx];
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->committed[p] = next->offset + 1;
    }
    rr_ = (idx + 1) % assignment_.size();
    return GroupRecord{p, next->offset, std::move(next->record)};
  }
  return std::nullopt;
}

size_t GroupCursor::NextBatch(std::vector<GroupRecord>* out, size_t max_n) {
  if (!status_.ok() || assignment_.empty()) return 0;
  size_t total = 0;
  size_t dry = 0;
  std::vector<ReadRecord> scratch;
  while (total < max_n && dry < assignment_.size()) {
    const size_t idx = rr_ % assignment_.size();
    const size_t p = assignment_[idx];
    scratch.clear();
    const size_t n = cursors_[idx]->NextBatch(&scratch, max_n - total);
    if (n == 0) {
      if (!cursors_[idx]->status().ok()) {
        status_ = cursors_[idx]->status();
        break;
      }
      ++dry;
    } else {
      dry = 0;
      {
        std::lock_guard<std::mutex> lock(state_->mu);
        state_->committed[p] = scratch[n - 1].offset + 1;
      }
      for (size_t i = 0; i < n; ++i) {
        out->push_back(
            GroupRecord{p, scratch[i].offset, std::move(scratch[i].record)});
      }
      total += n;
    }
    rr_ = (rr_ + 1) % assignment_.size();
  }
  return total;
}

uint64_t GroupCursor::committed(size_t partition) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->committed[partition];
}

GroupFrontier GroupCursor::Frontier() const {
  GroupFrontier f;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    f.committed = state_->committed;
  }
  for (const uint64_t c : f.committed) f.committed_total += c;
  for (size_t p = 0; p < log_->partition_count(); ++p) {
    f.end_total += log_->partition(p)->next_offset();
  }
  f.lag = f.end_total > f.committed_total ? f.end_total - f.committed_total : 0;
  return f;
}

}  // namespace tcmf::mlog
