#include "mlog/codec.h"

#include <cstring>
#include <variant>

#include "common/crc32c.h"
#include "common/varint.h"

namespace tcmf::mlog {

namespace {

/// Hard cap on a single field-name/string length (1 GiB) — rejects the
/// absurd lengths a corrupted varint can decode to before they turn into
/// an allocation.
constexpr uint64_t kMaxBlobLen = 1ull << 30;

void AppendValue(const stream::Value& v, std::string* out) {
  struct Visitor {
    std::string* out;
    void operator()(std::monostate) const {
      out->push_back(static_cast<char>(kTagNull));
    }
    void operator()(int64_t x) const {
      out->push_back(static_cast<char>(kTagInt));
      AppendVarint64(out, ZigZagEncode64(x));
    }
    void operator()(double x) const {
      out->push_back(static_cast<char>(kTagDouble));
      uint64_t bits;
      std::memcpy(&bits, &x, sizeof(bits));
      AppendFixed64(out, bits);
    }
    void operator()(const std::string& x) const {
      out->push_back(static_cast<char>(kTagString));
      AppendVarint64(out, x.size());
      out->append(x);
    }
    void operator()(bool x) const {
      out->push_back(static_cast<char>(kTagBool));
      out->push_back(x ? 1 : 0);
    }
  };
  std::visit(Visitor{out}, v);
}

/// Parses one tagged value; returns position past it or nullptr.
const char* ParseValue(const char* p, const char* limit, stream::Value* v) {
  if (p >= limit) return nullptr;
  const uint8_t tag = static_cast<uint8_t>(*p++);
  switch (tag) {
    case kTagNull:
      *v = std::monostate{};
      return p;
    case kTagInt: {
      uint64_t zz;
      p = ParseVarint64(p, limit, &zz);
      if (p == nullptr) return nullptr;
      *v = ZigZagDecode64(zz);
      return p;
    }
    case kTagDouble: {
      if (limit - p < 8) return nullptr;
      const uint64_t bits = DecodeFixed64(p);
      double x;
      std::memcpy(&x, &bits, sizeof(x));
      *v = x;
      return p + 8;
    }
    case kTagString: {
      uint64_t len;
      p = ParseVarint64(p, limit, &len);
      if (p == nullptr || len > kMaxBlobLen ||
          static_cast<uint64_t>(limit - p) < len) {
        return nullptr;
      }
      *v = std::string(p, len);
      return p + len;
    }
    case kTagBool: {
      if (p >= limit) return nullptr;
      const char b = *p++;
      if (b != 0 && b != 1) return nullptr;
      *v = (b == 1);
      return p;
    }
    default:
      return nullptr;
  }
}

}  // namespace

size_t EncodeRecordPayload(const stream::Record& r, std::string* out) {
  const size_t start = out->size();
  AppendVarint64(out, ZigZagEncode64(r.event_time()));
  AppendVarint64(out, r.size());
  for (const auto& [name, value] : r.fields()) {
    AppendVarint64(out, name.size());
    out->append(name);
    AppendValue(value, out);
  }
  return out->size() - start;
}

bool DecodeRecordPayload(std::string_view payload, stream::Record* rec) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  uint64_t zz;
  p = ParseVarint64(p, limit, &zz);
  if (p == nullptr) return false;
  stream::Record out;
  out.set_event_time(ZigZagDecode64(zz));
  uint64_t field_count;
  p = ParseVarint64(p, limit, &field_count);
  if (p == nullptr) return false;
  for (uint64_t i = 0; i < field_count; ++i) {
    uint64_t name_len;
    p = ParseVarint64(p, limit, &name_len);
    if (p == nullptr || name_len > kMaxBlobLen ||
        static_cast<uint64_t>(limit - p) < name_len) {
      return false;
    }
    std::string name(p, name_len);
    p += name_len;
    stream::Value value;
    p = ParseValue(p, limit, &value);
    if (p == nullptr) return false;
    out.Set(std::move(name), std::move(value));
  }
  if (p != limit) return false;  // trailing garbage
  *rec = std::move(out);
  return true;
}

bool DecodePayloadEventTime(std::string_view payload, TimeMs* event_time) {
  uint64_t zz;
  const char* p =
      ParseVarint64(payload.data(), payload.data() + payload.size(), &zz);
  if (p == nullptr) return false;
  *event_time = ZigZagDecode64(zz);
  return true;
}

size_t AppendEntry(std::string* out, const stream::Record& r) {
  const size_t start = out->size();
  std::string payload;
  EncodeRecordPayload(r, &payload);
  AppendVarint64(out, payload.size());
  AppendFixed32(out, Crc32cMask(Crc32c(payload.data(), payload.size())));
  out->append(payload);
  return out->size() - start;
}

bool ParseEntry(const char* p, const char* limit, EntryView* out) {
  uint64_t len;
  const char* q = ParseVarint64(p, limit, &len);
  if (q == nullptr || len > kMaxBlobLen) return false;
  if (static_cast<uint64_t>(limit - q) < 4 + len) return false;
  const uint32_t stored = DecodeFixed32(q);
  q += 4;
  if (Crc32cMask(Crc32c(q, len)) != stored) return false;
  out->payload = std::string_view(q, len);
  out->next = q + len;
  return true;
}

}  // namespace tcmf::mlog
