#ifndef TCMF_MLOG_STAGES_H_
#define TCMF_MLOG_STAGES_H_

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mlog/log.h"
#include "stream/pipeline.h"
#include "stream/record.h"

namespace tcmf::mlog {

/// Dataflow stage helpers gluing a durable Log into stream::Pipeline
/// graphs: LogSink persists any Flow<Record>, LogSource replays one —
/// together they give every pipeline the capture-then-replay semantics
/// the paper gets from Kafka topics. Replayed records compare == to the
/// appended originals (fields, order, event time). Both helpers follow
/// the unified `(flow/pipeline, config, StageOptions)` signature shared
/// with the insitu/synopses stage helpers.

/// Terminal stage: drains `flow` into `*log` using batched appends (one
/// fsync per batch under FsyncPolicy::kPerBatch). The append batch size
/// is `stage.batch`'s transfer cap (PopMax; defaults to Batched(256)
/// when unset). The drain uses the channel's batched pop, so filling an
/// append batch costs one lock acquisition per available chunk instead
/// of one per record — the fsync amortization and the transport
/// amortization line up. Registers a `stage.name` stage (default
/// "mlog.sink") with the pipeline exposing the log's counters (bytes
/// written, fsyncs, recovery stats). On an append error the stage
/// cancels upstream (CloseAndDrain) so the pipeline shuts down instead
/// of losing data silently. The log must outlive the pipeline run.
inline void LogSink(stream::Flow<stream::Record> flow, Log* log,
                    stream::StageOptions stage = {}) {
  stream::Pipeline* pipeline = flow.pipeline();
  if (stage.name.empty()) stage.name = "mlog.sink";
  pipeline->RegisterStage(std::move(stage.name),
                          [log] { return log->StageMetricsSnapshot(); });
  auto in = flow.channel();
  const size_t batch_size = std::max<size_t>(
      1, stage.batch.value_or(stream::BatchPolicy::Batched(256)).PopMax());
  pipeline->AddThread([in, log, batch_size] {
    std::vector<stream::Record> batch;
    batch.reserve(batch_size);
    while (true) {
      // Top the batch up from whatever is queued (blocks when empty);
      // append + fsync once it is full.
      if (in->PopBatch(&batch, batch_size - batch.size()) == 0) break;
      if (batch.size() < batch_size) continue;
      if (!log->AppendBatch(batch).ok()) {
        in->CloseAndDrain();  // propagate failure upstream
        return;
      }
      batch.clear();
    }
    if (!batch.empty()) log->AppendBatch(batch);
  });
}

/// Deprecated positional form — use the StageOptions overload.
[[deprecated("use LogSink(flow, log, StageOptions)")]]
inline void LogSink(stream::Flow<stream::Record> flow, Log* log,
                    size_t batch_size, std::string name = "mlog.sink") {
  stream::StageOptions stage;
  stage.name = std::move(name);
  stage.batch =
      stream::BatchPolicy::Batched(batch_size == 0 ? 1 : batch_size);
  LogSink(std::move(flow), log, std::move(stage));
}

/// Replay configuration for LogSource.
struct LogSourceOptions {
  /// First offset to replay (clamped to the retention horizon). Ignored
  /// when `start_time` is set.
  uint64_t start_offset = 0;
  /// Replay from the first record with event_time >= start_time.
  std::optional<TimeMs> start_time;
  /// One past the last offset to replay. Defaults to the log's
  /// next_offset() at construction — i.e. "replay everything captured so
  /// far, then end the stream".
  std::optional<uint64_t> end_offset;
  /// Stage configuration for the replay edge (the same StageOptions every
  /// Flow operator takes). `stage.name` defaults to "mlog.source";
  /// `stage.batch` defaults to the adaptive batched transport — the
  /// replay edge is the throughput-bound path and its best batch size
  /// depends on the consumer, so the per-edge BatchTuner finds it
  /// (docs/STREAM_TUNING.md). Use BatchPolicy::Batched(n) to pin a static
  /// size or BatchPolicy::Single() for record-at-a-time transport.
  stream::StageOptions stage{};
};

/// Source stage: replays `[start, end)` of `*log` as a Flow<Record>.
/// Each LogSource owns an independent cursor, so any number of consumers
/// can replay the same log concurrently (multi-consumer fan-out). The
/// log must outlive the pipeline run.
///
/// Replay is segment-aware batched end to end: the stage pulls via
/// Cursor::NextBatch sized to the edge's live batch target, so one call
/// decodes one channel transfer's worth of records, the committed
/// watermark is sampled once per batch, and the log's read counters are
/// bumped once per batch — source-side decode amortization matched to
/// the transport amortization (one lock acquisition per batch).
inline stream::Flow<stream::Record> LogSource(stream::Pipeline* pipeline,
                                              Log* log,
                                              LogSourceOptions options = {}) {
  std::shared_ptr<Cursor> cursor(log->NewCursor().release());
  if (options.start_time.has_value()) {
    cursor->SeekToTime(*options.start_time);
  } else {
    cursor->Seek(options.start_offset);
  }
  const uint64_t end = options.end_offset.value_or(log->next_offset());
  stream::StageOptions stage = std::move(options.stage);
  if (!stage.batch.has_value()) stage.batch = stream::BatchPolicy::Adaptive();
  if (stage.name.empty()) stage.name = "mlog.source";
  pipeline->RegisterStage(stage.name + ".log",
                          [log] { return log->StageMetricsSnapshot(); });
  if (!stage.batch->batched()) {
    // Record-at-a-time replay: preserved for bit-compatible comparisons.
    return stream::Flow<stream::Record>::FromGenerator(
        pipeline,
        [cursor, end]() -> std::optional<stream::Record> {
          if (cursor->offset() >= end) return std::nullopt;
          std::optional<ReadRecord> next = cursor->Next();
          if (!next.has_value()) return std::nullopt;  // caught up or error
          return std::move(next->record);
        },
        std::move(stage));
  }
  auto scratch = std::make_shared<std::vector<ReadRecord>>();
  return stream::Flow<stream::Record>::FromBatchGenerator(
      pipeline,
      [cursor, end, scratch](std::vector<stream::Record>* out,
                             size_t max_n) -> size_t {
        if (cursor->offset() >= end) return 0;
        max_n = std::min<uint64_t>(max_n, end - cursor->offset());
        scratch->clear();
        const size_t n = cursor->NextBatch(scratch.get(), max_n);
        for (size_t i = 0; i < n; ++i) {
          out->push_back(std::move((*scratch)[i].record));
        }
        return n;  // 0 = caught up with the writer or error: end of stream
      },
      std::move(stage));
}

}  // namespace tcmf::mlog

#endif  // TCMF_MLOG_STAGES_H_
