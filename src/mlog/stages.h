#ifndef TCMF_MLOG_STAGES_H_
#define TCMF_MLOG_STAGES_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mlog/log.h"
#include "mlog/partitioned.h"
#include "stream/pipeline.h"
#include "stream/record.h"

namespace tcmf::mlog {

/// Dataflow stage helpers gluing a durable Log into stream::Pipeline
/// graphs: LogSink persists any Flow<Record>, LogSource replays one —
/// together they give every pipeline the capture-then-replay semantics
/// the paper gets from Kafka topics. Replayed records compare == to the
/// appended originals (fields, order, event time). Both helpers follow
/// the unified `(flow/pipeline, config, StageOptions)` signature shared
/// with the insitu/synopses stage helpers.

/// Terminal stage: drains `flow` into `*log` using batched appends (one
/// fsync per batch under FsyncPolicy::kPerBatch). The append batch size
/// is `stage.batch`'s transfer cap (PopMax; defaults to Batched(256)
/// when unset). The drain uses the channel's batched pop, so filling an
/// append batch costs one lock acquisition per available chunk instead
/// of one per record — the fsync amortization and the transport
/// amortization line up. Registers a `stage.name` stage (default
/// "mlog.sink") with the pipeline exposing the log's counters (bytes
/// written, fsyncs, recovery stats). On an append error — mid-stream or
/// on the final tail flush — the failure is recorded as a sticky stage
/// error (StageMetrics.error, visible in Report()/ReportJson()); the
/// mid-stream path additionally cancels upstream (CloseAndDrain) so the
/// pipeline shuts down instead of losing data silently. The log must
/// outlive the pipeline run.
inline void LogSink(stream::Flow<stream::Record> flow, Log* log,
                    stream::StageOptions stage = {}) {
  stream::Pipeline* pipeline = flow.pipeline();
  if (stage.name.empty()) stage.name = "mlog.sink";
  auto error = std::make_shared<stream::StickyStageError>();
  pipeline->RegisterStage(std::move(stage.name), [log, error] {
    stream::StageMetrics m = log->StageMetricsSnapshot();
    m.error = error->Get();
    return m;
  });
  auto in = flow.channel();
  const size_t batch_size = std::max<size_t>(
      1, stage.batch.value_or(stream::BatchPolicy::Batched(256)).PopMax());
  pipeline->AddThread([in, log, batch_size, error] {
    std::vector<stream::Record> batch;
    batch.reserve(batch_size);
    while (true) {
      // Top the batch up from whatever is queued (blocks when empty);
      // append + fsync once it is full.
      if (in->PopBatch(&batch, batch_size - batch.size()) == 0) break;
      if (batch.size() < batch_size) continue;
      if (Status s = log->AppendBatch(batch).status(); !s.ok()) {
        error->Set(s.ToString());
        in->CloseAndDrain();  // propagate failure upstream
        return;
      }
      batch.clear();
    }
    // Final tail flush at EOS. There is no upstream left to cancel, so
    // the sticky error is the only way a failure here can surface —
    // dropping this Status would be silent loss of the stream's last
    // records.
    if (!batch.empty()) {
      if (Status s = log->AppendBatch(batch).status(); !s.ok()) {
        error->Set(s.ToString());
      }
    }
  });
}

/// Replay configuration for LogSource.
struct LogSourceOptions {
  /// First offset to replay (clamped to the retention horizon). Ignored
  /// when `start_time` is set.
  uint64_t start_offset = 0;
  /// Replay from the first record with event_time >= start_time.
  std::optional<TimeMs> start_time;
  /// One past the last offset to replay. Defaults to the log's
  /// next_offset() at construction — i.e. "replay everything captured so
  /// far, then end the stream".
  std::optional<uint64_t> end_offset;
  /// Stage configuration for the replay edge (the same StageOptions every
  /// Flow operator takes). `stage.name` defaults to "mlog.source";
  /// `stage.batch` defaults to the adaptive batched transport — the
  /// replay edge is the throughput-bound path and its best batch size
  /// depends on the consumer, so the per-edge BatchTuner finds it
  /// (docs/STREAM_TUNING.md). Use BatchPolicy::Batched(n) to pin a static
  /// size or BatchPolicy::Single() for record-at-a-time transport.
  stream::StageOptions stage{};
};

/// Source stage: replays `[start, end)` of `*log` as a Flow<Record>.
/// Each LogSource owns an independent cursor, so any number of consumers
/// can replay the same log concurrently (multi-consumer fan-out). The
/// log must outlive the pipeline run.
///
/// Replay is segment-aware batched end to end: the stage pulls via
/// Cursor::NextBatch sized to the edge's live batch target, so one call
/// decodes one channel transfer's worth of records, the committed
/// watermark is sampled once per batch, and the log's read counters are
/// bumped once per batch — source-side decode amortization matched to
/// the transport amortization (one lock acquisition per batch).
inline stream::Flow<stream::Record> LogSource(stream::Pipeline* pipeline,
                                              Log* log,
                                              LogSourceOptions options = {}) {
  std::shared_ptr<Cursor> cursor(log->NewCursor().release());
  const Status seek = options.start_time.has_value()
                          ? cursor->SeekToTime(*options.start_time)
                          : cursor->Seek(options.start_offset);
  const uint64_t end = options.end_offset.value_or(log->next_offset());
  stream::StageOptions stage = std::move(options.stage);
  if (!stage.batch.has_value()) stage.batch = stream::BatchPolicy::Adaptive();
  if (stage.name.empty()) stage.name = "mlog.source";
  auto error = std::make_shared<stream::StickyStageError>();
  pipeline->RegisterStage(stage.name + ".log", [log, error] {
    stream::StageMetrics m = log->StageMetricsSnapshot();
    m.error = error->Get();
    return m;
  });
  if (!seek.ok()) {
    // A failed seek means the requested position is unreachable (corrupt
    // mid-log entry on the scan path). Replaying from wherever the
    // cursor happened to land would silently yield the wrong records —
    // surface the error and end the stream empty instead.
    error->Set(seek.ToString());
    return stream::Flow<stream::Record>::FromVector(pipeline, {},
                                                    std::move(stage));
  }
  if (!stage.batch->batched()) {
    // Record-at-a-time replay: preserved for bit-compatible comparisons.
    return stream::Flow<stream::Record>::FromGenerator(
        pipeline,
        [cursor, end]() -> std::optional<stream::Record> {
          if (cursor->offset() >= end) return std::nullopt;
          std::optional<ReadRecord> next = cursor->Next();
          if (!next.has_value()) return std::nullopt;  // caught up or error
          return std::move(next->record);
        },
        std::move(stage));
  }
  auto scratch = std::make_shared<std::vector<ReadRecord>>();
  return stream::Flow<stream::Record>::FromBatchGenerator(
      pipeline,
      [cursor, end, scratch](std::vector<stream::Record>* out,
                             size_t max_n) -> size_t {
        if (cursor->offset() >= end) return 0;
        max_n = std::min<uint64_t>(max_n, end - cursor->offset());
        scratch->clear();
        const size_t n = cursor->NextBatch(scratch.get(), max_n);
        for (size_t i = 0; i < n; ++i) {
          out->push_back(std::move((*scratch)[i].record));
        }
        return n;  // 0 = caught up with the writer or error: end of stream
      },
      std::move(stage));
}

/// Extracts the routing key of a record for the partitioned producers
/// (same role as KeyedProcessParallel's key_fn).
using RecordKeyFn = std::function<uint64_t(const stream::Record&)>;

/// Terminal stage: drains `flow` into `*topic`, routing every record to
/// its key's partition (Mix64(key_fn(r)) % N — the topic's producer
/// hash). Each popped channel batch is scattered by partition and
/// appended with one AppendBatch per touched partition, so the fsync
/// amortization of LogSink is preserved per partition. Registers
/// `stage.name` (default "mlog.psink") exposing the topic's aggregated
/// counters; append failures — mid-stream or on the final tail flush —
/// become a sticky stage error exactly as in LogSink. The topic must
/// outlive the pipeline run.
inline void PartitionedLogSink(stream::Flow<stream::Record> flow,
                               PartitionedLog* topic, RecordKeyFn key_fn,
                               stream::StageOptions stage = {}) {
  stream::Pipeline* pipeline = flow.pipeline();
  if (stage.name.empty()) stage.name = "mlog.psink";
  auto error = std::make_shared<stream::StickyStageError>();
  pipeline->RegisterStage(std::move(stage.name), [topic, error] {
    stream::StageMetrics m = topic->StageMetricsSnapshot();
    m.error = error->Get();
    return m;
  });
  auto in = flow.channel();
  const size_t batch_size = std::max<size_t>(
      1, stage.batch.value_or(stream::BatchPolicy::Batched(256)).PopMax());
  pipeline->AddThread([in, topic, key_fn = std::move(key_fn), batch_size,
                       error] {
    std::vector<stream::Record> batch;
    batch.reserve(batch_size);
    std::vector<std::vector<stream::Record>> scatter(topic->partition_count());
    // Scatters the staged batch by partition and appends each partition's
    // share; the first failing partition's status wins (the rest are
    // still attempted so healthy partitions keep their data).
    auto append_scattered = [&]() -> Status {
      for (stream::Record& r : batch) {
        scatter[topic->PartitionFor(key_fn(r))].push_back(std::move(r));
      }
      batch.clear();
      Status first;
      for (size_t p = 0; p < scatter.size(); ++p) {
        if (scatter[p].empty()) continue;
        Status s = topic->partition(p)->AppendBatch(scatter[p]).status();
        scatter[p].clear();
        if (first.ok() && !s.ok()) first = std::move(s);
      }
      return first;
    };
    while (true) {
      if (in->PopBatch(&batch, batch_size - batch.size()) == 0) break;
      if (batch.size() < batch_size) continue;
      if (Status s = append_scattered(); !s.ok()) {
        error->Set(s.ToString());
        in->CloseAndDrain();  // propagate failure upstream
        return;
      }
    }
    if (!batch.empty()) {
      if (Status s = append_scattered(); !s.ok()) error->Set(s.ToString());
    }
  });
}

/// Source stage: replays partition `p` of `*topic` as a Flow<Record> —
/// the per-shard ingest edge of a ShardedPipeline (one instance per
/// partition, shard index = partition index). Thin wrapper over
/// LogSource on topic->partition(p); give every shard the same
/// `options.stage.name` (default "mlog.source") so ShardedPipeline's
/// merged report aggregates the replay edges into one logical stage.
inline stream::Flow<stream::Record> PartitionedLogSource(
    stream::Pipeline* pipeline, PartitionedLog* topic, size_t p,
    LogSourceOptions options = {}) {
  return LogSource(pipeline, topic->partition(p), std::move(options));
}

}  // namespace tcmf::mlog

#endif  // TCMF_MLOG_STAGES_H_
