#ifndef TCMF_MLOG_PARTITIONED_H_
#define TCMF_MLOG_PARTITIONED_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "mlog/log.h"
#include "stream/metrics.h"
#include "stream/record.h"

namespace tcmf::mlog {

class GroupCursor;

/// Configuration of a PartitionedLog ("topic").
struct PartitionedLogOptions {
  /// Topic directory; partition k's segment log lives in `p<k>/`.
  std::string dir;
  /// Partition count. Immutable once the topic exists on disk: reopening
  /// with a different non-zero count is an error (rehashing keys across
  /// partitions would break per-key order). 0 = infer from the `p<k>/`
  /// subdirectories, creating a 1-partition topic when the directory is
  /// new.
  size_t partitions = 1;
  /// Per-partition Log template (`log.dir` is ignored; each partition
  /// gets its own subdirectory). Segment size, fsync policy and
  /// retention apply per partition.
  LogOptions log;
};

/// One record handed out by a consumer-group read: the partition it came
/// from plus its per-partition offset (offsets are dense *within* a
/// partition; there is no global total order — exactly Kafka's
/// contract).
struct GroupRecord {
  size_t partition = 0;
  uint64_t offset = 0;
  stream::Record record;
};

/// A consumer group's merged read frontier: the per-partition committed
/// watermarks plus the aggregate position/lag derived from them.
struct GroupFrontier {
  std::vector<uint64_t> committed;  ///< per-partition next-unread offset
  uint64_t committed_total = 0;     ///< sum of committed watermarks
  uint64_t end_total = 0;           ///< sum of partition next_offset()s
  uint64_t lag = 0;                 ///< end_total - committed_total
  std::string ToJson() const;
};

/// Kafka-style partitioned topic: N independent segment Logs under one
/// topic directory (`p<k>/` subdirs), with key-hash producer routing and
/// consumer-group cursors (DESIGN.md §Substitutions; the sharded-topic
/// model of "Real-time Data Infrastructure at Uber").
///
/// Producers route with AppendKeyed: partition = Mix64(key) % N — the
/// same mixer KeyedProcessParallel routes workers with, so a topic
/// partition and a worker shard see the same key population. All records
/// for a key land in one partition, which preserves per-key order; each
/// partition is an ordinary Log, so torn-tail recovery, retention and
/// fsync policies apply independently per partition.
///
/// Thread safety: one producer thread per partition (concurrent
/// AppendKeyed calls racing to the *same* partition serialize on that
/// partition's writer mutex but interleave batches; use one producer per
/// partition — e.g. via ShardedPipeline — for scale-out), any number of
/// cursor/group readers.
class PartitionedLog {
 public:
  /// Opens (creating directories as needed) every partition and runs
  /// per-partition tail recovery.
  static Result<std::unique_ptr<PartitionedLog>> Open(
      const PartitionedLogOptions& options);

  size_t partition_count() const { return partitions_.size(); }

  /// Partition `p`'s underlying Log (p < partition_count()). Stable for
  /// the life of the PartitionedLog.
  Log* partition(size_t p) const { return partitions_[p].get(); }

  /// The partition `key` routes to: Mix64(key) % partition_count().
  size_t PartitionFor(uint64_t key) const {
    return HashPartition(key, partitions_.size());
  }

  /// Appends one record to its key's partition; returns the record's
  /// per-partition offset.
  Result<uint64_t> AppendKeyed(uint64_t key, const stream::Record& record);

  /// Chaos hooks scoped to one partition (p < partition_count()): stall
  /// every append/sync on partition `p` by `delay_ms` (0 clears), or
  /// fail its appends with `fault` (ok clears) — lets a fault plan
  /// degrade a single partition while its siblings stay healthy. See
  /// Log::SetSyncDelay / Log::SetAppendFault.
  void SetSyncDelay(size_t p, TimeMs delay_ms) {
    partitions_[p]->SetSyncDelay(delay_ms);
  }
  void SetAppendFault(size_t p, Status fault) {
    partitions_[p]->SetAppendFault(std::move(fault));
  }

  /// Scatters a keyed batch by partition and issues one AppendBatch per
  /// touched partition (one fsync per touched partition under
  /// kPerBatch). Stops at the first failing partition.
  Status AppendKeyedBatch(
      const std::vector<std::pair<uint64_t, stream::Record>>& records);

  /// Sum of next_offset() across partitions (= records ever appended).
  uint64_t next_offset_total() const;
  /// Sum of committed bytes across partitions.
  uint64_t size_bytes_total() const;

  /// Aggregate of every partition's StageMetricsSnapshot (counters
  /// summed — the shape PartitionedLogSink registers with a Pipeline).
  stream::StageMetrics StageMetricsSnapshot() const;

  /// Joins consumer group `group` as `member` of `member_count`: returns
  /// a cursor over the statically assigned partitions {p : p %
  /// member_count == member}, positioned at the group's committed
  /// watermarks. Group state (the watermarks) is shared by name, so
  /// members of the same group never re-read what another member already
  /// consumed, and a later JoinGroup/Rebalance resumes exactly at the
  /// frontier. The PartitionedLog must outlive the cursor.
  Result<std::unique_ptr<GroupCursor>> JoinGroup(const std::string& group,
                                                size_t member,
                                                size_t member_count);

  const PartitionedLogOptions& options() const { return options_; }

 private:
  friend class GroupCursor;

  /// Shared per-group state: one committed watermark per partition.
  struct GroupState {
    std::mutex mu;
    std::vector<uint64_t> committed;
  };

  explicit PartitionedLog(PartitionedLogOptions options);
  std::shared_ptr<GroupState> GroupFor(const std::string& name);

  const PartitionedLogOptions options_;
  std::vector<std::unique_ptr<Log>> partitions_;

  std::mutex groups_mu_;
  std::unordered_map<std::string, std::shared_ptr<GroupState>> groups_;
};

/// One member's handle on a consumer group: reads the partitions
/// statically assigned to it (round-robin across them for fairness) and
/// auto-commits the group watermark as records are handed out.
///
/// Rebalance(member, count) re-derives the assignment under a new group
/// size: partitions this member loses keep their progress in the shared
/// watermarks, partitions it gains resume from them — so across a
/// rebalance in which every member re-derives its assignment before
/// reading on, no record is lost or double-read. Assignment is static
/// (p % count == member), the cooperative model: callers rebalance all
/// members between reads, there is no generation fencing of stragglers.
///
/// Not thread-safe individually; one member per thread is the intended
/// deployment (different members of one group may run concurrently —
/// their partition sets are disjoint and watermark updates are locked).
class GroupCursor {
 public:
  /// Re-derives this member's assignment for a group of `member_count`
  /// and seeks each assigned partition to the group's committed
  /// watermark. Fails (leaving the cursor unassigned) on an invalid
  /// membership or a failing seek.
  Status Rebalance(size_t member, size_t member_count);

  /// Assigned partitions, ascending.
  const std::vector<size_t>& assignment() const { return assignment_; }

  /// Next committed record from any assigned partition, or nullopt when
  /// all assigned partitions are caught up (tailing is legal — call
  /// again later) or a sticky error occurred (check status()).
  std::optional<GroupRecord> Next();

  /// Appends up to `max_n` records to `out`, pulling batches from the
  /// assigned partitions round-robin; returns how many were appended
  /// (0 = caught up or sticky error).
  size_t NextBatch(std::vector<GroupRecord>* out, size_t max_n);

  /// The group's committed watermark for `partition` (next unread
  /// offset — advances as *any* member of the group reads it).
  uint64_t committed(size_t partition) const;

  /// Snapshot of the group's merged read frontier (all partitions, not
  /// just this member's).
  GroupFrontier Frontier() const;

  /// OK unless an assigned cursor hit corrupt data or a Rebalance seek
  /// failed; sticky.
  const Status& status() const { return status_; }

 private:
  friend class PartitionedLog;
  GroupCursor(PartitionedLog* log, std::shared_ptr<PartitionedLog::GroupState> state);

  PartitionedLog* log_;
  std::shared_ptr<PartitionedLog::GroupState> state_;
  size_t member_ = 0;
  size_t member_count_ = 1;
  std::vector<size_t> assignment_;
  std::vector<std::unique_ptr<Cursor>> cursors_;  // parallel to assignment_
  size_t rr_ = 0;  ///< round-robin position within assignment_
  Status status_;
};

}  // namespace tcmf::mlog

#endif  // TCMF_MLOG_PARTITIONED_H_
