#ifndef TCMF_MLOG_CODEC_H_
#define TCMF_MLOG_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/position.h"
#include "stream/record.h"

namespace tcmf::mlog {

/// Binary serialization for stream::Record — the wire/disk format the
/// paper's architecture delegates to Kafka's record batches. Two layers:
///
/// **Payload** (one Record, self-delimiting):
///   varint(zigzag(event_time_ms))
///   varint(field_count)
///   field_count times:
///     varint(name_len) name_bytes
///     tag_byte  value_bytes
/// with tags
///   0 null (no bytes)             1 int64  varint(zigzag(v))
///   2 double fixed64-LE bit cast  3 string varint(len) bytes
///   4 bool   1 byte (0/1)
/// Doubles are bit-cast, so NaN payloads, infinities and -0.0 round-trip
/// exactly; DecodeRecordPayload requires the payload to be consumed
/// exactly, so every proper prefix of a valid payload is rejected.
///
/// **Entry** (one framed payload, the unit the segmented log appends):
///   varint(payload_len)  fixed32-LE masked_crc32c(payload)  payload
/// The CRC is masked (common/crc32c.h) and covers the payload bytes; the
/// length varint lets a recovery scan skip a payload without decoding it,
/// and the parse-never-reads-past-limit property of both layers is what
/// makes torn-tail truncation detection exact.

/// Value tag bytes (exposed for tests).
inline constexpr uint8_t kTagNull = 0;
inline constexpr uint8_t kTagInt = 1;
inline constexpr uint8_t kTagDouble = 2;
inline constexpr uint8_t kTagString = 3;
inline constexpr uint8_t kTagBool = 4;

/// Appends the payload encoding of `r` to `*out`. Returns the number of
/// bytes appended.
size_t EncodeRecordPayload(const stream::Record& r, std::string* out);

/// Decodes a full payload into `*rec` (replacing its contents). Returns
/// false on any truncation, bad tag, overlong length, or trailing bytes.
bool DecodeRecordPayload(std::string_view payload, stream::Record* rec);

/// Decodes only the event time (the payload's first varint) — the cheap
/// probe time-based log seeks use. Returns false on truncated input.
bool DecodePayloadEventTime(std::string_view payload, TimeMs* event_time);

/// Appends a framed entry (length + masked CRC + payload) for `r` to
/// `*out`. Returns the number of bytes appended (the full frame size).
size_t AppendEntry(std::string* out, const stream::Record& r);

/// Result of scanning one entry out of a byte range.
struct EntryView {
  std::string_view payload;  ///< the CRC-verified payload bytes
  const char* next = nullptr;  ///< first byte after the entry
};

/// Parses and CRC-verifies one framed entry from [p, limit). Returns true
/// and fills `*out` on success; false when the range holds a torn,
/// truncated or corrupt entry (callers treat every failure identically:
/// the log is intact only up to `p`).
bool ParseEntry(const char* p, const char* limit, EntryView* out);

}  // namespace tcmf::mlog

#endif  // TCMF_MLOG_CODEC_H_
