#ifndef TCMF_STREAM_RECORD_H_
#define TCMF_STREAM_RECORD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/position.h"

namespace tcmf::stream {

/// A dynamically-typed field value. Records are the generic row format
/// flowing between heterogeneous sources and the RDF generators — the role
/// JSON/CSV messages play on the paper's Kafka topics.
using Value = std::variant<std::monostate, int64_t, double, std::string, bool>;

/// Returns a printable form of a value ("" for null).
std::string ValueToString(const Value& v);

/// Representational equality for values. Identical to the variant's own
/// operator== except that doubles compare by *bit pattern*: NaN equals an
/// identically-encoded NaN and 0.0 differs from -0.0. This is the notion
/// of equality codec round-trip and log replay-fidelity tests need —
/// "the bytes that came back decode to exactly the value that went in".
bool ValueEquals(const Value& a, const Value& b);

/// A flat, schema-less record: ordered (field, value) pairs plus an event
/// timestamp. Field lookup is linear — records are small (tens of fields).
class Record {
 public:
  Record() = default;

  TimeMs event_time() const { return event_time_; }
  void set_event_time(TimeMs t) { event_time_ = t; }

  /// Sets a field, overwriting any existing value under the same name.
  void Set(std::string name, Value value);

  /// Null-state queries and typed getters; Get* return nullopt when the
  /// field is absent or has a different type.
  bool Has(const std::string& name) const;
  std::optional<int64_t> GetInt(const std::string& name) const;
  std::optional<double> GetDouble(const std::string& name) const;
  std::optional<std::string> GetString(const std::string& name) const;
  std::optional<bool> GetBool(const std::string& name) const;

  /// Numeric convenience: int fields widen to double.
  std::optional<double> GetNumeric(const std::string& name) const;

  const std::vector<std::pair<std::string, Value>>& fields() const {
    return fields_;
  }
  size_t size() const { return fields_.size(); }

  /// "{a=1, b=x}" — for logs and tests.
  std::string ToString() const;

  /// Representational equality: same event time and the same ordered
  /// (name, value) sequence under ValueEquals (doubles bit-exact, so a
  /// record survives encode→decode as `==` even with NaN fields).
  friend bool operator==(const Record& a, const Record& b);
  friend bool operator!=(const Record& a, const Record& b) {
    return !(a == b);
  }

 private:
  const Value* Find(const std::string& name) const;

  TimeMs event_time_ = 0;
  std::vector<std::pair<std::string, Value>> fields_;
};

/// Converts a surveillance position into the generic record form used by
/// the RDFizers and the dashboard sinks.
Record PositionToRecord(const Position& p);

/// Reverse mapping; fails silently to zeros for missing fields.
Position RecordToPosition(const Record& r);

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_RECORD_H_
