#ifndef TCMF_STREAM_RECORD_H_
#define TCMF_STREAM_RECORD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/position.h"

namespace tcmf::stream {

/// A dynamically-typed field value. Records are the generic row format
/// flowing between heterogeneous sources and the RDF generators — the role
/// JSON/CSV messages play on the paper's Kafka topics.
using Value = std::variant<std::monostate, int64_t, double, std::string, bool>;

/// Returns a printable form of a value ("" for null).
std::string ValueToString(const Value& v);

/// A flat, schema-less record: ordered (field, value) pairs plus an event
/// timestamp. Field lookup is linear — records are small (tens of fields).
class Record {
 public:
  Record() = default;

  TimeMs event_time() const { return event_time_; }
  void set_event_time(TimeMs t) { event_time_ = t; }

  /// Sets a field, overwriting any existing value under the same name.
  void Set(std::string name, Value value);

  /// Null-state queries and typed getters; Get* return nullopt when the
  /// field is absent or has a different type.
  bool Has(const std::string& name) const;
  std::optional<int64_t> GetInt(const std::string& name) const;
  std::optional<double> GetDouble(const std::string& name) const;
  std::optional<std::string> GetString(const std::string& name) const;
  std::optional<bool> GetBool(const std::string& name) const;

  /// Numeric convenience: int fields widen to double.
  std::optional<double> GetNumeric(const std::string& name) const;

  const std::vector<std::pair<std::string, Value>>& fields() const {
    return fields_;
  }
  size_t size() const { return fields_.size(); }

  /// "{a=1, b=x}" — for logs and tests.
  std::string ToString() const;

 private:
  const Value* Find(const std::string& name) const;

  TimeMs event_time_ = 0;
  std::vector<std::pair<std::string, Value>> fields_;
};

/// Converts a surveillance position into the generic record form used by
/// the RDFizers and the dashboard sinks.
Record PositionToRecord(const Position& p);

/// Reverse mapping; fails silently to zeros for missing fields.
Position RecordToPosition(const Record& r);

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_RECORD_H_
