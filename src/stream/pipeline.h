#ifndef TCMF_STREAM_PIPELINE_H_
#define TCMF_STREAM_PIPELINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "stream/channel.h"

namespace tcmf::stream {

/// Owns the threads of a dataflow job. Build a graph with Flow<T>, then
/// Run() blocks until every source is exhausted and every stage has
/// drained — the in-process equivalent of submitting a Flink job.
class Pipeline {
 public:
  Pipeline() = default;
  ~Pipeline() { Run(); }

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Registers a stage thread. Internal — called by Flow operators.
  void AddThread(std::function<void()> body) {
    threads_.emplace_back(std::move(body));
  }

  /// Joins all stage threads; idempotent.
  void Run() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

 private:
  std::vector<std::thread> threads_;
};

/// Per-key processing function with explicit state: the Flink
/// KeyedProcessFunction analogue. Called once per element with the state
/// slot for the element's key; may emit any number of outputs via `emit`.
template <typename T, typename Out, typename State>
using KeyedProcessFn =
    std::function<void(const T& element, State& state,
                       const std::function<void(Out)>& emit)>;

/// Called for every live key when the stream ends, to flush pending state.
template <typename Out, typename State>
using KeyedFlushFn =
    std::function<void(uint64_t key, State& state,
                       const std::function<void(Out)>& emit)>;

/// A typed edge in the dataflow graph. Flow values are cheap handles:
/// they share the underlying channel.
template <typename T>
class Flow {
 public:
  Flow(Pipeline* pipeline, std::shared_ptr<Channel<T>> channel)
      : pipeline_(pipeline), channel_(std::move(channel)) {}

  /// Source from a pull function; the function returns nullopt when the
  /// stream is exhausted.
  static Flow<T> FromGenerator(Pipeline* pipeline,
                               std::function<std::optional<T>()> next,
                               size_t capacity = 1024) {
    auto channel = std::make_shared<Channel<T>>(capacity);
    pipeline->AddThread([channel, next = std::move(next)]() mutable {
      while (true) {
        std::optional<T> item = next();
        if (!item.has_value()) break;
        if (!channel->Push(std::move(*item))) break;
      }
      channel->Close();
    });
    return Flow<T>(pipeline, std::move(channel));
  }

  /// Source from a pre-materialized vector.
  static Flow<T> FromVector(Pipeline* pipeline, std::vector<T> items,
                            size_t capacity = 1024) {
    auto it = std::make_shared<size_t>(0);
    auto data = std::make_shared<std::vector<T>>(std::move(items));
    return FromGenerator(
        pipeline,
        [it, data]() -> std::optional<T> {
          if (*it >= data->size()) return std::nullopt;
          return (*data)[(*it)++];
        },
        capacity);
  }

  /// 1:1 transform.
  template <typename Out>
  Flow<Out> Map(std::function<Out(const T&)> fn, size_t capacity = 1024) {
    auto out = std::make_shared<Channel<Out>>(capacity);
    auto in = channel_;
    pipeline_->AddThread([in, out, fn = std::move(fn)] {
      while (auto item = in->Pop()) {
        if (!out->Push(fn(*item))) break;
      }
      out->Close();
    });
    return Flow<Out>(pipeline_, std::move(out));
  }

  /// 1:N transform.
  template <typename Out>
  Flow<Out> FlatMap(std::function<std::vector<Out>(const T&)> fn,
                    size_t capacity = 1024) {
    auto out = std::make_shared<Channel<Out>>(capacity);
    auto in = channel_;
    pipeline_->AddThread([in, out, fn = std::move(fn)] {
      while (auto item = in->Pop()) {
        for (Out& o : fn(*item)) {
          if (!out->Push(std::move(o))) return;
        }
      }
      out->Close();
    });
    return Flow<Out>(pipeline_, std::move(out));
  }

  /// Keeps elements satisfying the predicate.
  Flow<T> Filter(std::function<bool(const T&)> pred, size_t capacity = 1024) {
    auto out = std::make_shared<Channel<T>>(capacity);
    auto in = channel_;
    pipeline_->AddThread([in, out, pred = std::move(pred)] {
      while (auto item = in->Pop()) {
        if (pred(*item)) {
          if (!out->Push(std::move(*item))) break;
        }
      }
      out->Close();
    });
    return Flow<T>(pipeline_, std::move(out));
  }

  /// Keyed stateful processing with per-key state of type State.
  /// State instances are default-constructed on first sight of a key.
  /// `flush` (optional) runs for every key at end-of-stream.
  template <typename Out, typename State>
  Flow<Out> KeyedProcess(std::function<uint64_t(const T&)> key_fn,
                         KeyedProcessFn<T, Out, State> process,
                         KeyedFlushFn<Out, State> flush = nullptr,
                         size_t capacity = 1024) {
    auto out = std::make_shared<Channel<Out>>(capacity);
    auto in = channel_;
    pipeline_->AddThread([in, out, key_fn = std::move(key_fn),
                          process = std::move(process),
                          flush = std::move(flush)] {
      std::unordered_map<uint64_t, State> states;
      bool open = true;
      auto emit = [&](Out o) {
        if (open && !out->Push(std::move(o))) open = false;
      };
      while (auto item = in->Pop()) {
        State& state = states[key_fn(*item)];
        process(*item, state, emit);
        if (!open) break;
      }
      if (open && flush) {
        for (auto& [key, state] : states) flush(key, state, emit);
      }
      out->Close();
    });
    return Flow<Out>(pipeline_, std::move(out));
  }

  /// Keyed stateful processing with `parallelism` worker threads: elements
  /// are hash-partitioned by key, each worker owns the state of its key
  /// range (the Flink keyed-stream execution model). Output order across
  /// workers is nondeterministic; per-key order is preserved.
  template <typename Out, typename State>
  Flow<Out> KeyedProcessParallel(std::function<uint64_t(const T&)> key_fn,
                                 KeyedProcessFn<T, Out, State> process,
                                 size_t parallelism,
                                 KeyedFlushFn<Out, State> flush = nullptr,
                                 size_t capacity = 1024) {
    if (parallelism <= 1) {
      return KeyedProcess<Out, State>(std::move(key_fn), std::move(process),
                                      std::move(flush), capacity);
    }
    auto out = std::make_shared<Channel<Out>>(capacity);
    auto in = channel_;
    // Partition router: one input channel per worker.
    auto partitions =
        std::make_shared<std::vector<std::shared_ptr<Channel<T>>>>();
    for (size_t w = 0; w < parallelism; ++w) {
      partitions->push_back(std::make_shared<Channel<T>>(capacity));
    }
    pipeline_->AddThread([in, partitions, key_fn, parallelism] {
      while (auto item = in->Pop()) {
        size_t w = std::hash<uint64_t>{}(key_fn(*item)) % parallelism;
        if (!(*partitions)[w]->Push(std::move(*item))) break;
      }
      for (auto& p : *partitions) p->Close();
    });
    // Workers share the output channel; the last one to finish closes it.
    auto live_workers = std::make_shared<std::atomic<size_t>>(parallelism);
    for (size_t w = 0; w < parallelism; ++w) {
      auto my_in = (*partitions)[w];
      pipeline_->AddThread([my_in, out, key_fn, process, flush,
                            live_workers] {
        std::unordered_map<uint64_t, State> states;
        bool open = true;
        auto emit = [&](Out o) {
          if (open && !out->Push(std::move(o))) open = false;
        };
        while (auto item = my_in->Pop()) {
          State& state = states[key_fn(*item)];
          process(*item, state, emit);
          if (!open) break;
        }
        if (open && flush) {
          for (auto& [key, state] : states) flush(key, state, emit);
        }
        if (live_workers->fetch_sub(1) == 1) out->Close();
      });
    }
    return Flow<Out>(pipeline_, std::move(out));
  }

  /// Terminal: applies `fn` to every element.
  void Sink(std::function<void(const T&)> fn) {
    auto in = channel_;
    pipeline_->AddThread([in, fn = std::move(fn)] {
      while (auto item = in->Pop()) fn(*item);
    });
  }

  /// Terminal: collects all elements into `out` (caller keeps it alive
  /// until Pipeline::Run returns).
  void CollectInto(std::vector<T>* out) {
    Sink([out](const T& item) { out->push_back(item); });
  }

  std::shared_ptr<Channel<T>> channel() const { return channel_; }

 private:
  Pipeline* pipeline_;
  std::shared_ptr<Channel<T>> channel_;
};

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_PIPELINE_H_
