#ifndef TCMF_STREAM_PIPELINE_H_
#define TCMF_STREAM_PIPELINE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "stream/channel.h"
#include "stream/metrics.h"
#include "stream/tuning.h"
#include "stream/window.h"

namespace tcmf::stream {

/// Unified per-stage configuration for every Flow operator and stage
/// helper — the one options struct that replaced the positional
/// `(capacity, name)` tails (removed after their one-release deprecation
/// window; tools/check_deprecated_api.py keeps them from coming back).
/// Designated initializers make call sites self-describing:
///
///   flow.Map<Out>(fn, {.name = "clean", .capacity = 256});
///   flow.Filter(pred, {.batch = BatchPolicy::Adaptive(),
///                      .latency_budget_ms = 20,
///                      .capacity_tuning = CapacityPolicy::Adaptive()});
///
/// Fields:
///  - `name`: stage name in StageMetrics reports ("" = auto "<op>#<i>").
///  - `capacity`: the output channel's queue-depth bound (the adaptive
///    seed when `capacity_tuning` is adaptive).
///  - `batch`: per-stage BatchPolicy override; nullopt inherits the
///    upstream Flow's policy (sources fall back to their own default —
///    Single for FromGenerator/FromVector, Batched for
///    FromBatchGenerator).
///  - `latency_budget_ms`: staging-latency contract applied on top of
///    the effective policy (<0 keeps the policy's own budget).
///  - `capacity_tuning`: elastic-capacity controller range; the default
///    is inert (static capacity).
struct StageOptions {
  std::string name;
  size_t capacity = kDefaultCapacity;
  std::optional<BatchPolicy> batch;
  int64_t latency_budget_ms = -1;
  CapacityPolicy capacity_tuning{};

  /// The BatchPolicy this stage actually runs: the per-stage override if
  /// set, else `inherited` (the upstream Flow's policy), with the
  /// latency budget layered on top.
  BatchPolicy EffectivePolicy(const BatchPolicy& inherited) const {
    BatchPolicy p = batch.has_value() ? *batch : inherited;
    if (latency_budget_ms >= 0) p.latency_budget_ms = latency_budget_ms;
    return p;
  }
};

/// Buffers operator outputs and flushes them downstream according to a
/// BatchPolicy. In record-at-a-time mode it degenerates to Channel::Push.
/// Emit/Flush return false when the downstream edge rejected the transfer
/// (consumer cancelled) — the signal to propagate cancellation upstream.
///
/// When the owning edge is adaptive the emitter carries its BatchTuner:
/// the flush threshold tracks the live tuner target instead of the static
/// `max_batch`, and every successful flush feeds the record count back to
/// the tuner (BatchTuner::OnRecords) — this is the producer-side hook
/// that drives the whole controller, piggybacked on the existing emit
/// loop with no extra threads.
template <typename Out>
class BatchEmitter {
 public:
  BatchEmitter(std::shared_ptr<Channel<Out>> out, BatchPolicy policy,
               std::shared_ptr<BatchTuner> tuner = nullptr)
      : out_(std::move(out)), policy_(policy), tuner_(std::move(tuner)) {
    if (policy_.batched()) buf_.reserve(policy_.PopMax());
  }

  /// Live flush threshold: the tuner target on adaptive edges, the static
  /// `max_batch` otherwise.
  size_t CurrentTarget() const {
    return tuner_ ? tuner_->target() : policy_.max_batch;
  }

  bool Emit(Out value) {
    if (!policy_.batched()) {
      const bool ok = out_->Push(std::move(value));
      // Capacity-only tuners still need the sample cadence driven on
      // record-at-a-time edges (no batch flushes to piggyback on).
      if (ok && tuner_) tuner_->OnRecords(1);
      return ok;
    }
    if (buf_.empty()) first_buffered_ = std::chrono::steady_clock::now();
    buf_.push_back(std::move(value));
    if (buf_.size() >= CurrentTarget()) return Flush();
    return true;
  }

  bool Flush() {
    if (buf_.empty()) return true;
    const size_t n = buf_.size();
    const bool ok = out_->PushBatch(std::move(buf_)) == n;
    buf_.clear();
    buf_.reserve(policy_.PopMax());
    if (ok && tuner_) tuner_->OnRecords(n);
    return ok;
  }

  bool has_pending() const { return !buf_.empty(); }

  /// The live linger bound in ms: min of the static `max_linger_ms` knob
  /// and the latency-budget residual `budget - predicted_fill_ms`, where
  /// predicted_fill_ms = target / fill_rate is how long the current batch
  /// target is expected to keep staging records (tuner rate estimate; 0
  /// without a tuner or before the first sample). As the adaptive
  /// controller grows the target, the residual linger shrinks, so
  /// fill time + linger stays <= budget — worst-case staging latency
  /// bounded by contract (derivation: docs/STREAM_TUNING.md). Returns
  /// +inf when neither knob is active (never flush on a timer).
  double EffectiveLingerMs() const {
    double linger = policy_.max_linger_ms >= 0
                        ? static_cast<double>(policy_.max_linger_ms)
                        : std::numeric_limits<double>::infinity();
    if (policy_.latency_budget_ms >= 0) {
      const double rate = tuner_ ? tuner_->rate_per_ms() : 0.0;
      const double fill_ms =
          rate > 0.0 ? static_cast<double>(CurrentTarget()) / rate : 0.0;
      const double residual =
          std::max(0.0, static_cast<double>(policy_.latency_budget_ms) -
                            fill_ms);
      linger = std::min(linger, residual);
    }
    return linger;
  }

  /// Time until the oldest buffered element exceeds the linger bound.
  std::chrono::milliseconds LingerRemaining() const {
    double linger_ms = EffectiveLingerMs();
    // Defensive clamp: callers only poll when LingerEnabled(), but keep
    // the math finite regardless.
    if (!std::isfinite(linger_ms)) linger_ms = 1e9;
    const auto linger = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(linger_ms));
    if (buf_.empty()) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(linger);
    }
    const auto deadline = first_buffered_ + linger;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::chrono::milliseconds(0);
    return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                 now);
  }

 private:
  std::shared_ptr<Channel<Out>> out_;
  BatchPolicy policy_;
  std::shared_ptr<BatchTuner> tuner_;  ///< output edge's controller (or null)
  std::vector<Out> buf_;
  std::chrono::steady_clock::time_point first_buffered_;
};

namespace internal {

/// Creates the per-edge adaptive controller for `channel` when either
/// policy asks for one (BatchPolicy::adaptive() re-targets the batch
/// size; CapacityPolicy::adaptive() additionally attaches a
/// CapacityTuner that elastically resizes the channel bound, driven from
/// the same sample windows). Returns nullptr for fully static edges —
/// callers treat a null tuner as "use the static policy".
template <typename U>
std::shared_ptr<BatchTuner> MakeTuner(const BatchPolicy& policy,
                                      const CapacityPolicy& capacity_policy,
                                      const std::shared_ptr<Channel<U>>& ch) {
  if (!policy.adaptive() && !capacity_policy.adaptive()) return nullptr;
  auto tuner = std::make_shared<BatchTuner>(
      policy, [ch] { return ch->MetricsSnapshot(); });
  if (capacity_policy.adaptive()) {
    tuner->AttachCapacityTuner(std::make_shared<CapacityTuner>(
        capacity_policy, ch->capacity(),
        [ch](size_t c) { ch->Resize(c); },
        [ch] { return ch->TakeQueueWatermarkWindow(); }));
  }
  return tuner;
}

template <typename U>
std::shared_ptr<BatchTuner> MakeTuner(const BatchPolicy& policy,
                                      const std::shared_ptr<Channel<U>>& ch) {
  return MakeTuner(policy, CapacityPolicy{}, ch);
}

/// The shared consume/transform/emit loop behind every 1-input operator.
/// Drains `in` (record-at-a-time or in batches per `policy`), feeds each
/// element to `per_element(item, emitter) -> bool` (false = downstream
/// rejected, i.e. the consumer cancelled), and on end-of-stream runs
/// `at_exit(open, emitter)` — stateful operators flush per-key state
/// there when `open` is true. Handles the shutdown contract: a rejected
/// emit cancels `in` via CloseAndDrain so upstream producers unblock.
/// Closing the *output* channel is the caller's responsibility (shared
/// outputs — KeyedProcessParallel — are closed by the last worker).
///
/// In batched mode the loop uses the timed PopBatchFor while outputs are
/// staged so a partially-filled batch is flushed after `max_linger_ms`
/// even when the input goes quiet (linger < 0 disables the timer).
///
/// `in_tuner` is the adaptive controller of the INPUT edge (nullptr for
/// static edges): when set, the pop size tracks the live tuner target
/// each iteration, so a producer-side re-target propagates to this
/// consumer within one transfer.
template <typename In, typename Out, typename PerElement, typename AtExit>
void RunStage(const std::shared_ptr<Channel<In>>& in,
              BatchEmitter<Out>& emitter, BatchPolicy policy,
              const std::shared_ptr<BatchTuner>& in_tuner,
              PerElement&& per_element, AtExit&& at_exit) {
  bool open = true;
  if (!policy.batched()) {
    while (auto item = in->Pop()) {
      if (!per_element(*item, emitter)) {
        open = false;
        break;
      }
    }
  } else {
    std::vector<In> batch;
    batch.reserve(policy.PopMax());
    while (open) {
      batch.clear();
      const size_t want = in_tuner ? in_tuner->target() : policy.PopMax();
      size_t n = 0;
      if (emitter.has_pending() && policy.LingerEnabled()) {
        const PollStatus status =
            in->PopBatchFor(&batch, want, emitter.LingerRemaining(), &n);
        if (status == PollStatus::kEmpty) {
          // Linger expired with staged outputs: flush the partial batch.
          if (!emitter.Flush()) open = false;
          continue;
        }
        if (status == PollStatus::kClosed) break;
      } else {
        n = in->PopBatch(&batch, want);
        if (n == 0) break;
      }
      for (size_t i = 0; i < n; ++i) {
        if (!per_element(batch[i], emitter)) {
          open = false;
          break;
        }
      }
    }
  }
  if (!open) in->CloseAndDrain();  // propagate cancellation upstream
  at_exit(open, emitter);
  if (open) emitter.Flush();
}

}  // namespace internal

/// Owns the threads of a dataflow job. Build a graph with Flow<T>, then
/// Run() blocks until every source is exhausted and every stage has
/// drained — the in-process equivalent of submitting a Flink job.
///
/// Runtime semantics: end-of-stream flows downstream via Channel::Close();
/// cancellation flows *upstream* via Channel::CloseAndDrain() — every
/// operator that stops consuming early cancels its input channel, so no
/// producer is ever left blocked in Push. Run() therefore returns even
/// when a sink abandons the stream mid-flight.
///
/// Every operator registers its output channel as a named stage; after
/// (or during) a run, Report() snapshots per-stage StageMetrics and
/// ReportString()/ReportJson() render them.
class Pipeline {
 public:
  Pipeline() = default;
  ~Pipeline() { Run(); }

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Registers a stage thread. Internal — called by Flow operators.
  void AddThread(std::function<void()> body) {
    threads_.emplace_back(std::move(body));
  }

  /// Joins all stage threads; idempotent. The first Run() that joins an
  /// actual stage thread freezes uptime_ms() at the pipeline's total
  /// running time, so post-run reports describe the run, not the
  /// reporting delay.
  void Run() {
    const bool had_threads = !threads_.empty();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    if (had_threads) {
      int64_t expected = -1;
      finished_uptime_ms_.compare_exchange_strong(expected, LiveUptimeMs());
    }
  }

  /// Monotonic construction instant, in ms on the steady clock's epoch.
  /// Same timebase for every Pipeline in the process, so reports from
  /// different shards can be ordered and open-loop rates computed from
  /// the report alone (records / uptime).
  int64_t started_at_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               started_at_.time_since_epoch())
        .count();
  }

  /// Milliseconds since construction, frozen at Run() completion (live
  /// while stages are still running).
  int64_t uptime_ms() const {
    const int64_t frozen = finished_uptime_ms_.load(std::memory_order_relaxed);
    return frozen >= 0 ? frozen : LiveUptimeMs();
  }

  /// Registers a named metrics source. Internal — called by Flow
  /// operators; also usable for custom stages.
  void RegisterStage(std::string name, std::function<StageMetrics()> snap) {
    std::lock_guard<std::mutex> lock(stages_mutex_);
    stages_.emplace_back(std::move(name), std::move(snap));
  }

  /// Resolves a stage's final report name: empty names get the auto-name
  /// "<op>#<index>" from the pipeline-wide counter. RegisterChannelStage
  /// applies this itself; composite stages (KeyedProcessParallel) resolve
  /// first so their nested worker_edges rows can share the prefix.
  std::string ResolveStageName(const char* op, std::string name) {
    if (name.empty()) {
      name = std::string(op) + "#" + std::to_string(next_stage_index_++);
    }
    return name;
  }

  /// Registers a channel as the named stage's output edge. If `name` is
  /// empty, an auto-name "<op>#<index>" is generated. When the edge is
  /// adaptive, pass its BatchTuner so stage snapshots carry the live
  /// controller state (StageMetrics tuner_* fields). Returns the final
  /// stage name.
  template <typename U>
  std::string RegisterChannelStage(const char* op, std::string name,
                                   std::shared_ptr<Channel<U>> channel,
                                   std::shared_ptr<BatchTuner> tuner =
                                       nullptr) {
    name = ResolveStageName(op, std::move(name));
    RegisterStage(name, [channel, tuner = std::move(tuner)] {
      StageMetrics m = channel->MetricsSnapshot();
      if (tuner) tuner->FillStageMetrics(&m);
      return m;
    });
    return name;
  }

  /// Snapshots every registered stage, in registration (graph) order.
  std::vector<StageMetrics> Report() const {
    std::lock_guard<std::mutex> lock(stages_mutex_);
    std::vector<StageMetrics> out;
    out.reserve(stages_.size());
    for (const auto& [name, snap] : stages_) {
      StageMetrics m = snap();
      m.stage = name;
      out.push_back(std::move(m));
    }
    return out;
  }

  /// Printable fixed-width per-stage table.
  std::string ReportString() const { return StageMetricsTable(Report()); }

  /// JSON report: `{"started_at_ms":..,"uptime_ms":..,"stages":[...]}` —
  /// the run clock plus the per-stage array (StageMetricsJson), so a
  /// report consumer can compute rates without having timed the run
  /// itself.
  std::string ReportJson() const {
    return "{\"started_at_ms\":" + std::to_string(started_at_ms()) +
           ",\"uptime_ms\":" + std::to_string(uptime_ms()) +
           ",\"stages\":" + StageMetricsJson(Report()) + "}";
  }

 private:
  int64_t LiveUptimeMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - started_at_)
        .count();
  }

  const std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();
  std::atomic<int64_t> finished_uptime_ms_{-1};
  std::vector<std::thread> threads_;
  mutable std::mutex stages_mutex_;
  std::vector<std::pair<std::string, std::function<StageMetrics()>>> stages_;
  std::atomic<size_t> next_stage_index_{0};
};

/// Per-key processing function with explicit state: the Flink
/// KeyedProcessFunction analogue. Called once per element with the state
/// slot for the element's key; may emit any number of outputs via `emit`.
template <typename T, typename Out, typename State>
using KeyedProcessFn =
    std::function<void(const T& element, State& state,
                       const std::function<void(Out)>& emit)>;

/// Called for every live key when the stream ends, to flush pending state.
template <typename Out, typename State>
using KeyedFlushFn =
    std::function<void(uint64_t key, State& state,
                       const std::function<void(Out)>& emit)>;

template <typename T>
class Flow;

template <typename In, typename Cur>
class FusedChain;

namespace internal {

/// Shared construction behind Flow::KeyedProcessParallel and
/// FusedChain::KeyedProcessParallel (declared here, defined after Flow):
/// a partition router plus `parallelism` keyed workers over per-worker
/// partition edges, with the optional fused stateless `prefix` executed
/// inside the router thread (nullptr = identity, the plain un-fused
/// path).
template <typename In, typename T, typename Out, typename State>
Flow<Out> KeyedParallelStage(
    Pipeline* pipeline, std::shared_ptr<Channel<In>> in,
    std::shared_ptr<BatchTuner> upstream_tuner, const BatchPolicy& inherited,
    std::function<void(In&&, const std::function<void(T&&)>&)> prefix,
    std::function<uint64_t(const T&)> key_fn,
    KeyedProcessFn<T, Out, State> process, size_t parallelism,
    KeyedFlushFn<Out, State> flush, StageOptions opts, const char* op);

}  // namespace internal

/// A typed edge in the dataflow graph. Flow values are cheap handles:
/// they share the underlying channel. Each handle also carries a
/// BatchPolicy that governs how operators built from it move elements —
/// `WithBatching(BatchPolicy::Batched(64))` switches every downstream
/// stage to amortized batch transfers, and
/// `WithBatching(BatchPolicy::Adaptive())` gives every downstream edge
/// its own self-tuning BatchTuner (the policy is inherited by the Flows
/// those operators return, so one call at the source configures the
/// whole graph). Adaptive handles additionally carry the tuner of the
/// edge they reference, so the consumer an operator builds pops at the
/// live target the edge's producer is flushing at.
///
/// Shutdown contract for every operator: when the downstream edge stops
/// accepting (Push returns false because the consumer cancelled), the
/// operator cancels its own input via CloseAndDrain() and exits — the
/// cancel signal propagates all the way to the source. Conversely each
/// operator Close()s its output on every exit path, so downstream stages
/// always observe end-of-stream. Cancellation mid-batch behaves exactly
/// like cancellation mid-stream: staged elements are dropped, the signal
/// is never lost (see BatchShutdownTest). Adaptive re-targeting never
/// changes these semantics — only transfer granularity (proved by the
/// adaptive arm of tests/stream_batch_equiv_test.cc).
template <typename T>
class Flow {
 public:
  Flow(Pipeline* pipeline, std::shared_ptr<Channel<T>> channel,
       BatchPolicy policy = {}, std::shared_ptr<BatchTuner> tuner = nullptr)
      : pipeline_(pipeline),
        channel_(std::move(channel)),
        policy_(policy),
        tuner_(std::move(tuner)) {}

  /// Returns a handle to the same edge whose downstream operators use
  /// `policy` for channel transfers. Semantics are unchanged — only the
  /// transfer granularity (and therefore lock amortization) differs.
  /// Switching an adaptive edge to a static policy detaches the tuner
  /// from the returned handle (the consumer then pops at the static
  /// `max_batch`).
  Flow<T> WithBatching(BatchPolicy policy) const {
    return Flow<T>(pipeline_, channel_, policy,
                   policy.adaptive() ? tuner_ : nullptr);
  }

  const BatchPolicy& batch_policy() const { return policy_; }

  /// The adaptive controller of this edge (nullptr on static edges).
  /// Owned by the edge's producer; exposed for consumers, stage helpers
  /// and tests that want the live target or a TunerState snapshot.
  const std::shared_ptr<BatchTuner>& tuner() const { return tuner_; }

  /// Source from a pull function; the function returns nullopt when the
  /// stream is exhausted. With a batched policy the generator stages up
  /// to the batch target (bounded by the effective linger) per transfer;
  /// with an adaptive policy the staging threshold tracks the edge's
  /// BatchTuner target. Default policy when `opts.batch` is unset:
  /// record-at-a-time (Single).
  static Flow<T> FromGenerator(Pipeline* pipeline,
                               std::function<std::optional<T>()> next,
                               StageOptions opts = {}) {
    const BatchPolicy policy = opts.EffectivePolicy(BatchPolicy{});
    auto channel = std::make_shared<Channel<T>>(opts.capacity);
    auto tuner = internal::MakeTuner(policy, opts.capacity_tuning, channel);
    pipeline->RegisterChannelStage("source", std::move(opts.name), channel,
                                   tuner);
    pipeline->AddThread([channel, policy, tuner,
                         next = std::move(next)]() mutable {
      BatchEmitter<T> emitter(channel, policy, tuner);
      while (true) {
        std::optional<T> item = next();
        if (!item.has_value()) break;
        // Emit fails only when downstream cancelled: stop generating.
        if (!emitter.Emit(std::move(*item))) break;
        if (emitter.has_pending() && policy.LingerEnabled() &&
            emitter.LingerRemaining() <= std::chrono::milliseconds(0)) {
          if (!emitter.Flush()) break;
        }
      }
      emitter.Flush();
      channel->Close();
    });
    return Flow<T>(pipeline, std::move(channel), policy, std::move(tuner));
  }

  /// Source from a batch pull function: `next_batch(out, max_n)` appends
  /// up to `max_n` elements to `out` and returns how many it appended
  /// (0 = end of stream). The per-call `max_n` is the edge's live batch
  /// target, so batch-oriented producers (e.g. mlog's segment-aware
  /// replay, mlog::Cursor::NextBatch) decode exactly one channel
  /// transfer's worth of records per call — source-side amortization
  /// matched to transport amortization. Prefer this over FromGenerator
  /// whenever the underlying producer can hand out more than one element
  /// per call.
  static Flow<T> FromBatchGenerator(
      Pipeline* pipeline,
      std::function<size_t(std::vector<T>*, size_t)> next_batch,
      StageOptions opts = {}) {
    const BatchPolicy policy = opts.EffectivePolicy(BatchPolicy::Batched());
    auto channel = std::make_shared<Channel<T>>(opts.capacity);
    auto tuner = internal::MakeTuner(policy, opts.capacity_tuning, channel);
    pipeline->RegisterChannelStage("source", std::move(opts.name), channel,
                                   tuner);
    pipeline->AddThread(
        [channel, policy, tuner, next_batch = std::move(next_batch)] {
          std::vector<T> buf;
          buf.reserve(policy.PopMax());
          while (true) {
            buf.clear();
            const size_t want = std::max<size_t>(
                1, tuner ? tuner->target() : policy.max_batch);
            const size_t n = next_batch(&buf, want);
            if (n == 0) break;
            // PushBatch accepting fewer than offered means the consumer
            // cancelled: stop generating.
            if (channel->PushBatch(std::move(buf)) != n) break;
            buf.reserve(policy.PopMax());
            if (tuner) tuner->OnRecords(n);
          }
          channel->Close();
        });
    return Flow<T>(pipeline, std::move(channel), policy, std::move(tuner));
  }

  /// Source from a pre-materialized vector.
  static Flow<T> FromVector(Pipeline* pipeline, std::vector<T> items,
                            StageOptions opts = {}) {
    auto it = std::make_shared<size_t>(0);
    auto data = std::make_shared<std::vector<T>>(std::move(items));
    return FromGenerator(
        pipeline,
        [it, data]() -> std::optional<T> {
          if (*it >= data->size()) return std::nullopt;
          return (*data)[(*it)++];
        },
        std::move(opts));
  }

  /// 1:1 transform.
  template <typename Out>
  Flow<Out> Map(std::function<Out(const T&)> fn, StageOptions opts = {}) {
    const BatchPolicy policy = opts.EffectivePolicy(policy_);
    auto out = std::make_shared<Channel<Out>>(opts.capacity);
    auto out_tuner = internal::MakeTuner(policy, opts.capacity_tuning, out);
    pipeline_->RegisterChannelStage("map", std::move(opts.name), out,
                                    out_tuner);
    auto in = channel_;
    auto in_tuner = policy.adaptive() ? tuner_ : nullptr;
    pipeline_->AddThread([in, out, policy, in_tuner, out_tuner,
                          fn = std::move(fn)] {
      BatchEmitter<Out> emitter(out, policy, out_tuner);
      internal::RunStage(
          in, emitter, policy, in_tuner,
          [&fn](T& item, BatchEmitter<Out>& em) { return em.Emit(fn(item)); },
          [](bool, BatchEmitter<Out>&) {});
      out->Close();
    });
    return Flow<Out>(pipeline_, std::move(out), policy, std::move(out_tuner));
  }

  /// 1:N transform.
  template <typename Out>
  Flow<Out> FlatMap(std::function<std::vector<Out>(const T&)> fn,
                    StageOptions opts = {}) {
    const BatchPolicy policy = opts.EffectivePolicy(policy_);
    auto out = std::make_shared<Channel<Out>>(opts.capacity);
    auto out_tuner = internal::MakeTuner(policy, opts.capacity_tuning, out);
    pipeline_->RegisterChannelStage("flatmap", std::move(opts.name), out,
                                    out_tuner);
    auto in = channel_;
    auto in_tuner = policy.adaptive() ? tuner_ : nullptr;
    pipeline_->AddThread([in, out, policy, in_tuner, out_tuner,
                          fn = std::move(fn)] {
      BatchEmitter<Out> emitter(out, policy, out_tuner);
      internal::RunStage(
          in, emitter, policy, in_tuner,
          [&fn](T& item, BatchEmitter<Out>& em) {
            for (Out& o : fn(item)) {
              if (!em.Emit(std::move(o))) return false;
            }
            return true;
          },
          [](bool, BatchEmitter<Out>&) {});
      // Close on EVERY exit path — an early return here used to leave
      // downstream Pop blocked forever.
      out->Close();
    });
    return Flow<Out>(pipeline_, std::move(out), policy, std::move(out_tuner));
  }

  /// Keeps elements satisfying the predicate.
  Flow<T> Filter(std::function<bool(const T&)> pred, StageOptions opts = {}) {
    const BatchPolicy policy = opts.EffectivePolicy(policy_);
    auto out = std::make_shared<Channel<T>>(opts.capacity);
    auto out_tuner = internal::MakeTuner(policy, opts.capacity_tuning, out);
    pipeline_->RegisterChannelStage("filter", std::move(opts.name), out,
                                    out_tuner);
    auto in = channel_;
    auto in_tuner = policy.adaptive() ? tuner_ : nullptr;
    pipeline_->AddThread([in, out, policy, in_tuner, out_tuner,
                          pred = std::move(pred)] {
      BatchEmitter<T> emitter(out, policy, out_tuner);
      internal::RunStage(
          in, emitter, policy, in_tuner,
          [&pred](T& item, BatchEmitter<T>& em) {
            if (!pred(item)) return true;
            return em.Emit(std::move(item));
          },
          [](bool, BatchEmitter<T>&) {});
      out->Close();
    });
    return Flow<T>(pipeline_, std::move(out), policy, std::move(out_tuner));
  }

  /// Starts a fused chain: adjacent stateless stages (Map/Filter/FlatMap)
  /// composed onto it run in ONE thread with ZERO channel crossings —
  /// `flow.Fuse().Map(f).Filter(p).Map(g).Emit()` materializes a single
  /// "fused" stage instead of three channel-separated ones, and
  /// `flow.Fuse().Map(f).Filter(p).KeyedProcessParallel(...)` terminates
  /// the chain in a keyed stage whose router runs the prefix inline.
  /// Equivalent to the unfused chain by construction (and by the
  /// differential harness).
  FusedChain<T, T> Fuse() const;

  /// Keyed stateful processing with per-key state of type State.
  /// State instances are default-constructed on first sight of a key.
  /// `flush` (optional) runs for every key at end-of-stream.
  template <typename Out, typename State>
  Flow<Out> KeyedProcess(std::function<uint64_t(const T&)> key_fn,
                         KeyedProcessFn<T, Out, State> process,
                         KeyedFlushFn<Out, State> flush = nullptr,
                         StageOptions opts = {}) {
    const BatchPolicy policy = opts.EffectivePolicy(policy_);
    auto out = std::make_shared<Channel<Out>>(opts.capacity);
    auto out_tuner = internal::MakeTuner(policy, opts.capacity_tuning, out);
    pipeline_->RegisterChannelStage("keyed", std::move(opts.name), out,
                                    out_tuner);
    auto in = channel_;
    auto in_tuner = policy.adaptive() ? tuner_ : nullptr;
    pipeline_->AddThread([in, out, policy, in_tuner, out_tuner,
                          key_fn = std::move(key_fn),
                          process = std::move(process),
                          flush = std::move(flush)] {
      BatchEmitter<Out> emitter(out, policy, out_tuner);
      std::unordered_map<uint64_t, State> states;
      internal::RunStage(
          in, emitter, policy, in_tuner,
          [&](T& item, BatchEmitter<Out>& em) {
            bool ok = true;
            auto emit = [&](Out o) {
              if (ok && !em.Emit(std::move(o))) ok = false;
            };
            process(item, states[key_fn(item)], emit);
            return ok;
          },
          [&](bool open, BatchEmitter<Out>& em) {
            if (!open || !flush) return;
            bool ok = true;
            auto emit = [&](Out o) {
              if (ok && !em.Emit(std::move(o))) ok = false;
            };
            for (auto& [key, state] : states) flush(key, state, emit);
          });
      out->Close();
    });
    return Flow<Out>(pipeline_, std::move(out), policy, std::move(out_tuner));
  }

  /// Keyed stateful processing with `parallelism` worker threads: elements
  /// are hash-partitioned by key, each worker owns the state of its key
  /// range (the Flink keyed-stream execution model). Output order across
  /// workers is nondeterministic; per-key order is preserved.
  ///
  /// Each router→worker partition edge carries its own BatchTuner /
  /// CapacityTuner (adaptive policies only): a hot partition re-targets
  /// its own edge without moving the cold ones, and the per-edge
  /// controller state surfaces as `worker_edges` (plus `skew_ratio`) on
  /// this stage's row in Report()/ReportJson() — see
  /// docs/STREAM_TUNING.md §7.
  template <typename Out, typename State>
  Flow<Out> KeyedProcessParallel(std::function<uint64_t(const T&)> key_fn,
                                 KeyedProcessFn<T, Out, State> process,
                                 size_t parallelism,
                                 KeyedFlushFn<Out, State> flush = nullptr,
                                 StageOptions opts = {}) {
    if (parallelism <= 1) {
      return KeyedProcess<Out, State>(std::move(key_fn), std::move(process),
                                      std::move(flush), std::move(opts));
    }
    return internal::KeyedParallelStage<T, T, Out, State>(
        pipeline_, channel_, tuner_, policy_, /*prefix=*/nullptr,
        std::move(key_fn), std::move(process), parallelism, std::move(flush),
        std::move(opts), "keyed_par");
  }

  /// Keyed event-time tumbling windows with bounded lateness: elements are
  /// folded per (key, window) via `add`; a window is emitted once the
  /// key's watermark (max event time - lateness) passes its end, and every
  /// open window flushes at end-of-stream. Late elements beyond the
  /// watermark are dropped and surface as `late_dropped` in this stage's
  /// StageMetrics.
  template <typename Acc>
  Flow<std::pair<uint64_t, typename TumblingWindower<T, Acc>::WindowResult>>
  KeyedTumblingWindow(std::function<uint64_t(const T&)> key_fn,
                      std::function<TimeMs(const T&)> time_fn,
                      TimeMs window_ms, TimeMs allowed_lateness_ms,
                      std::function<void(Acc&, const T&, TimeMs)> add,
                      StageOptions opts = {}) {
    using Result =
        std::pair<uint64_t, typename TumblingWindower<T, Acc>::WindowResult>;
    const BatchPolicy policy = opts.EffectivePolicy(policy_);
    auto out = std::make_shared<Channel<Result>>(opts.capacity);
    auto out_tuner = internal::MakeTuner(policy, opts.capacity_tuning, out);
    pipeline_->RegisterChannelStage("window", std::move(opts.name), out,
                                    out_tuner);
    auto in = channel_;
    auto in_tuner = policy.adaptive() ? tuner_ : nullptr;
    pipeline_->AddThread([in, out, policy, in_tuner, out_tuner,
                          key_fn = std::move(key_fn),
                          time_fn = std::move(time_fn), window_ms,
                          allowed_lateness_ms, add = std::move(add)] {
      BatchEmitter<Result> emitter(out, policy, out_tuner);
      std::unordered_map<uint64_t, TumblingWindower<T, Acc>> windowers;
      internal::RunStage(
          in, emitter, policy, in_tuner,
          [&](T& item, BatchEmitter<Result>& em) {
            const uint64_t key = key_fn(item);
            auto [it, inserted] = windowers.try_emplace(
                key, window_ms, allowed_lateness_ms, add);
            for (auto& wr : it->second.Add(item, time_fn(item))) {
              if (!em.Emit({key, std::move(wr)})) return false;
            }
            return true;
          },
          [&](bool open, BatchEmitter<Result>& em) {
            uint64_t late = 0;
            bool ok = open;
            for (auto& [key, w] : windowers) {
              if (ok) {
                for (auto& wr : w.Close()) {
                  if (!em.Emit({key, std::move(wr)})) {
                    ok = false;
                    break;
                  }
                }
              }
              late += w.late_dropped();
            }
            out->RecordLateDropped(late);
          });
      out->Close();
    });
    return Flow<Result>(pipeline_, std::move(out), policy,
                        std::move(out_tuner));
  }

  /// Terminal: applies `fn` to every element. Runs until end-of-stream;
  /// under batching it pops amortized transfers (at the live tuner target
  /// on adaptive edges) and applies `fn` element-at-a-time. A sink owns
  /// no output channel, so only `opts.batch` (pop-policy override) is
  /// meaningful here; the other StageOptions fields are ignored.
  void Sink(std::function<void(const T&)> fn, StageOptions opts = {}) {
    const BatchPolicy policy = opts.EffectivePolicy(policy_);
    auto in = channel_;
    auto in_tuner = policy.adaptive() ? tuner_ : nullptr;
    pipeline_->AddThread([in, policy, in_tuner, fn = std::move(fn)] {
      if (!policy.batched()) {
        while (auto item = in->Pop()) fn(*item);
        return;
      }
      std::vector<T> batch;
      batch.reserve(policy.PopMax());
      while (true) {
        batch.clear();
        const size_t want = in_tuner ? in_tuner->target() : policy.PopMax();
        const size_t n = in->PopBatch(&batch, want);
        if (n == 0) break;
        for (size_t i = 0; i < n; ++i) fn(batch[i]);
      }
    });
  }

  /// Terminal: applies `fn` until it returns false, then cancels the
  /// stream — upstream stages unblock and exit (no deadlock even with
  /// producers mid-Push). The early-stopping sink. Under batching,
  /// elements already popped in the cancelling batch are dropped — the
  /// same fate queued elements meet under CloseAndDrain.
  void SinkWhile(std::function<bool(const T&)> fn, StageOptions opts = {}) {
    const BatchPolicy policy = opts.EffectivePolicy(policy_);
    auto in = channel_;
    auto in_tuner = policy.adaptive() ? tuner_ : nullptr;
    pipeline_->AddThread([in, policy, in_tuner, fn = std::move(fn)] {
      if (!policy.batched()) {
        while (auto item = in->Pop()) {
          if (!fn(*item)) {
            in->CloseAndDrain();
            break;
          }
        }
        return;
      }
      std::vector<T> batch;
      batch.reserve(policy.PopMax());
      bool open = true;
      while (open) {
        batch.clear();
        const size_t want = in_tuner ? in_tuner->target() : policy.PopMax();
        const size_t n = in->PopBatch(&batch, want);
        if (n == 0) break;
        for (size_t i = 0; i < n; ++i) {
          if (!fn(batch[i])) {
            open = false;
            break;
          }
        }
      }
      if (!open) in->CloseAndDrain();
    });
  }

  /// Terminal: collects all elements into `out` (caller keeps it alive
  /// until Pipeline::Run returns).
  void CollectInto(std::vector<T>* out) {
    Sink([out](const T& item) { out->push_back(item); });
  }

  std::shared_ptr<Channel<T>> channel() const { return channel_; }

  /// The owning pipeline — lets external stage helpers (e.g. mlog's
  /// LogSink) attach threads and metrics without threading an extra
  /// Pipeline* through every call site.
  Pipeline* pipeline() const { return pipeline_; }

 private:
  Pipeline* pipeline_;
  std::shared_ptr<Channel<T>> channel_;
  BatchPolicy policy_;
  std::shared_ptr<BatchTuner> tuner_;  ///< this edge's controller (or null)
};

namespace internal {

/// Shared keyed-parallel construction (see the declaration above Flow).
/// `prefix` is the fused stateless chain executed INSIDE the router
/// thread (nullptr = identity, the plain un-fused path): the router pops
/// `In` elements from the upstream edge, runs the prefix inline, and
/// hash-partitions the resulting `T` elements straight into the
/// per-worker partition edges — zero channels between the upstream edge
/// and the keyed boundary.
///
/// Partition-edge tuning: every router→worker edge gets its own
/// BatchTuner/CapacityTuner (adaptive policies only). The router drives
/// each edge's controller with the records it scatters there and each
/// worker pops at its own edge's live target, so a hot partition's
/// back-off (slow per-pop windows on a loaded worker) stays on its own
/// edge while the starvation gate (BatchPolicy::
/// backoff_max_starved_fraction) keeps the arrival-limited cold edges
/// from shrinking in sympathy. The per-edge snapshots nest under the
/// stage's report row as `worker_edges` (with `skew_ratio`); aggregate
/// them with SummarizeWorkerEdges.
///
/// Router-input edge: the router's pop size is governed by its own
/// controller over the upstream channel, seeded from the upstream
/// tuner's live target — NOT by the upstream producer's tuner. The fused
/// prefix runs inside the router, so per-pop cost is no longer what the
/// upstream controller measured; sharing that controller would let the
/// router's consumption profile re-target the producer's flush size.
/// Registered as "<stage>.router_in" on adaptive policies.
template <typename In, typename T, typename Out, typename State>
Flow<Out> KeyedParallelStage(
    Pipeline* pipeline, std::shared_ptr<Channel<In>> in,
    std::shared_ptr<BatchTuner> upstream_tuner, const BatchPolicy& inherited,
    std::function<void(In&&, const std::function<void(T&&)>&)> prefix,
    std::function<uint64_t(const T&)> key_fn,
    KeyedProcessFn<T, Out, State> process, size_t parallelism,
    KeyedFlushFn<Out, State> flush, StageOptions opts, const char* op) {
  const BatchPolicy policy = opts.EffectivePolicy(inherited);
  auto out = std::make_shared<Channel<Out>>(opts.capacity);
  // One tuner for the shared output edge: all workers flush at the same
  // live target and feed the same controller (OnRecords is thread-safe).
  auto out_tuner = MakeTuner(policy, opts.capacity_tuning, out);
  const std::string stage = pipeline->ResolveStageName(op, std::move(opts.name));

  if (parallelism <= 1) {
    // One worker: the prefix and the keyed state machine share a single
    // stage thread — no router, no partition edges.
    pipeline->RegisterChannelStage(op, stage, out, out_tuner);
    auto in_tuner = policy.adaptive() ? upstream_tuner : nullptr;
    pipeline->AddThread([in, out, policy, in_tuner, out_tuner,
                         prefix = std::move(prefix),
                         key_fn = std::move(key_fn),
                         process = std::move(process),
                         flush = std::move(flush)] {
      BatchEmitter<Out> emitter(out, policy, out_tuner);
      std::unordered_map<uint64_t, State> states;
      RunStage(
          in, emitter, policy, in_tuner,
          [&](In& item, BatchEmitter<Out>& em) {
            bool ok = true;
            auto emit = [&](Out o) {
              if (ok && !em.Emit(std::move(o))) ok = false;
            };
            auto keyed = [&](T&& t) { process(t, states[key_fn(t)], emit); };
            if constexpr (std::is_same_v<In, T>) {
              if (!prefix) {
                keyed(std::move(item));
                return ok;
              }
            }
            prefix(std::move(item), keyed);
            return ok;
          },
          [&](bool open, BatchEmitter<Out>& em) {
            if (!open || !flush) return;
            bool ok = true;
            auto emit = [&](Out o) {
              if (ok && !em.Emit(std::move(o))) ok = false;
            };
            for (auto& [key, state] : states) flush(key, state, emit);
          });
      out->Close();
    });
    return Flow<Out>(pipeline, std::move(out), policy, std::move(out_tuner));
  }

  // Partition router: one input channel per worker, each edge with its
  // own adaptive controllers.
  auto partitions =
      std::make_shared<std::vector<std::shared_ptr<Channel<T>>>>();
  auto part_tuners =
      std::make_shared<std::vector<std::shared_ptr<BatchTuner>>>();
  for (size_t w = 0; w < parallelism; ++w) {
    auto part = std::make_shared<Channel<T>>(opts.capacity);
    part_tuners->push_back(MakeTuner(policy, opts.capacity_tuning, part));
    partitions->push_back(std::move(part));
  }
  // One report row for the whole stage: the shared output edge plus the
  // per-partition edges nested as worker_edges.
  pipeline->RegisterStage(
      stage, [out, out_tuner, partitions, part_tuners, stage] {
        StageMetrics m = out->MetricsSnapshot();
        if (out_tuner) out_tuner->FillStageMetrics(&m);
        m.worker_edges.reserve(partitions->size());
        for (size_t w = 0; w < partitions->size(); ++w) {
          StageMetrics e = (*partitions)[w]->MetricsSnapshot();
          e.stage = stage + ".part" + std::to_string(w);
          if ((*part_tuners)[w]) (*part_tuners)[w]->FillStageMetrics(&e);
          m.worker_edges.push_back(std::move(e));
        }
        m.skew_ratio = WorkerEdgeSkewRatio(m.worker_edges);
        return m;
      });

  // The router's own input controller (see the doc comment above). No
  // capacity tuner is attached: the upstream channel's bound belongs to
  // the upstream stage's options, and only one CapacityTuner may own a
  // channel's watermark window.
  std::shared_ptr<BatchTuner> router_in_tuner;
  if (policy.adaptive()) {
    BatchPolicy seeded = policy;
    if (upstream_tuner) {
      seeded.max_batch = std::clamp(upstream_tuner->target(),
                                    policy.min_batch, policy.max_batch_cap);
    }
    router_in_tuner = std::make_shared<BatchTuner>(
        seeded, [in] { return in->MetricsSnapshot(); });
    pipeline->RegisterStage(stage + ".router_in", [in, router_in_tuner] {
      StageMetrics m = in->MetricsSnapshot();
      router_in_tuner->FillStageMetrics(&m);
      return m;
    });
  }

  pipeline->AddThread([in, partitions, part_tuners, parallelism, policy,
                       router_in_tuner, key_fn,
                       prefix = std::move(prefix)] {
    // Route through the Mix64 finalizer, not std::hash: libstdc++'s
    // identity hash would fold structured keys (vessel IDs stepping by
    // a multiple of `parallelism`) onto a single worker.
    if (!policy.batched()) {
      bool open = true;
      auto route = [&](T&& t) {
        if (!open) return;
        const size_t w = HashPartition(key_fn(t), parallelism);
        if (!(*partitions)[w]->Push(std::move(t))) {
          // A worker cancelled its partition (downstream gone): stop
          // routing and propagate the cancel to our own input.
          open = false;
        } else if ((*part_tuners)[w]) {
          (*part_tuners)[w]->OnRecords(1);
        }
      };
      while (open) {
        std::optional<In> item = in->Pop();
        if (!item.has_value()) break;
        if constexpr (std::is_same_v<In, T>) {
          if (!prefix) {
            route(std::move(*item));
            continue;
          }
        }
        prefix(std::move(*item), route);
      }
      if (!open) in->CloseAndDrain();
    } else {
      // Scatter each input batch into per-worker batches so partition
      // edges also move amortized transfers; the fused prefix runs here,
      // between the pop and the scatter.
      std::vector<In> batch;
      std::vector<std::vector<T>> scatter(parallelism);
      batch.reserve(policy.PopMax());
      bool open = true;
      auto stage_elem = [&](T&& t) {
        scatter[HashPartition(key_fn(t), parallelism)].push_back(
            std::move(t));
      };
      while (open) {
        batch.clear();
        const size_t want =
            router_in_tuner ? router_in_tuner->target() : policy.PopMax();
        const size_t n = in->PopBatch(&batch, want);
        if (n == 0) break;
        for (size_t i = 0; i < n; ++i) {
          if constexpr (std::is_same_v<In, T>) {
            if (!prefix) {
              stage_elem(std::move(batch[i]));
              continue;
            }
          }
          prefix(std::move(batch[i]), stage_elem);
        }
        if (router_in_tuner) router_in_tuner->OnRecords(n);
        for (size_t w = 0; w < parallelism && open; ++w) {
          if (scatter[w].empty()) continue;
          const size_t offered = scatter[w].size();
          if ((*partitions)[w]->PushBatch(std::move(scatter[w])) !=
              offered) {
            open = false;
          } else if ((*part_tuners)[w]) {
            (*part_tuners)[w]->OnRecords(offered);
          }
          scatter[w].clear();
        }
      }
      if (!open) in->CloseAndDrain();
    }
    for (auto& p : *partitions) p->Close();
  });

  // Workers share the output channel; the last one to finish closes it.
  // Each worker pops its partition at that edge's own live target.
  auto live_workers = std::make_shared<std::atomic<size_t>>(parallelism);
  for (size_t w = 0; w < parallelism; ++w) {
    auto my_in = (*partitions)[w];
    auto my_tuner = (*part_tuners)[w];
    pipeline->AddThread([my_in, my_tuner, out, out_tuner, key_fn, process,
                         flush, live_workers, policy] {
      BatchEmitter<Out> emitter(out, policy, out_tuner);
      std::unordered_map<uint64_t, State> states;
      RunStage(
          my_in, emitter, policy, my_tuner,
          [&](T& item, BatchEmitter<Out>& em) {
            bool ok = true;
            auto emit = [&](Out o) {
              if (ok && !em.Emit(std::move(o))) ok = false;
            };
            process(item, states[key_fn(item)], emit);
            return ok;
          },
          [&](bool open, BatchEmitter<Out>& em) {
            if (!open || !flush) return;
            bool ok = true;
            auto emit = [&](Out o) {
              if (ok && !em.Emit(std::move(o))) ok = false;
            };
            for (auto& [key, state] : states) flush(key, state, emit);
          });
      if (live_workers->fetch_sub(1) == 1) out->Close();
    });
  }
  return Flow<Out>(pipeline, std::move(out), policy, std::move(out_tuner));
}

}  // namespace internal

/// A chain of stateless operators fused into one stage: the composed
/// transform runs element-at-a-time inside a single thread, so a
/// Map→Filter→Map pipeline segment costs one channel crossing instead of
/// three (operator fusion — the other half of the transport amortization
/// story). Build with Flow::Fuse(), compose with Map/Filter/FlatMap, then
/// materialize: Emit() produces the single stateless stage (registered as
/// "fused"), or terminate the chain in a keyed stage with
/// KeyedProcessParallel — the composed prefix then runs inside the
/// partition router itself (registered as "fused_keyed"), with zero
/// channels between the source edge and the keyed boundary.
///
/// `In` is the input type of the fused stage, `Cur` the current output
/// type of the composed chain.
template <typename In, typename Cur>
class FusedChain {
 public:
  /// sink(value): forwards one output of the composed transform.
  using Sink = std::function<void(Cur&&)>;
  /// apply(item, sink): runs the whole composed chain on one element.
  using Apply = std::function<void(In&&, const Sink&)>;

  FusedChain(Flow<In> source, Apply apply)
      : source_(std::move(source)), apply_(std::move(apply)) {}

  /// Fuses a 1:1 transform onto the chain.
  template <typename Out>
  FusedChain<In, Out> Map(std::function<Out(const Cur&)> fn) const {
    Apply prev = apply_;
    typename FusedChain<In, Out>::Apply next =
        [prev, fn = std::move(fn)](
            In&& item, const typename FusedChain<In, Out>::Sink& sink) {
          prev(std::move(item), [&](Cur&& c) { sink(fn(c)); });
        };
    return FusedChain<In, Out>(source_, std::move(next));
  }

  /// Fuses a predicate onto the chain.
  FusedChain<In, Cur> Filter(std::function<bool(const Cur&)> pred) const {
    Apply prev = apply_;
    Apply next = [prev, pred = std::move(pred)](In&& item, const Sink& sink) {
      prev(std::move(item), [&](Cur&& c) {
        if (pred(c)) sink(std::move(c));
      });
    };
    return FusedChain<In, Cur>(source_, std::move(next));
  }

  /// Fuses a 1:N transform onto the chain.
  template <typename Out>
  FusedChain<In, Out> FlatMap(
      std::function<std::vector<Out>(const Cur&)> fn) const {
    Apply prev = apply_;
    typename FusedChain<In, Out>::Apply next =
        [prev, fn = std::move(fn)](
            In&& item, const typename FusedChain<In, Out>::Sink& sink) {
          prev(std::move(item), [&](Cur&& c) {
            for (Out& o : fn(c)) sink(std::move(o));
          });
        };
    return FusedChain<In, Out>(source_, std::move(next));
  }

  /// Terminates the chain in a keyed-parallel stage: the composed
  /// stateless prefix executes INSIDE the partition router thread, so the
  /// chain costs zero channel crossings between the source edge and the
  /// keyed boundary (Flink-style operator chaining up to the keyed
  /// shuffle). Semantics are exactly `...Emit()` followed by
  /// Flow::KeyedProcessParallel minus the intermediate channel: same
  /// Mix64 partitioning, same per-key order, same flush-at-end and
  /// cancellation contracts — the two-hop construction remains the
  /// differential reference (tests/stream_batch_equiv_test.cc). With
  /// `parallelism <= 1` the prefix and the keyed state machine share one
  /// stage thread. Returns the stage's output Flow directly; keyed
  /// terminals have no separate Emit step.
  template <typename Out, typename State>
  Flow<Out> KeyedProcessParallel(std::function<uint64_t(const Cur&)> key_fn,
                                 KeyedProcessFn<Cur, Out, State> process,
                                 size_t parallelism,
                                 KeyedFlushFn<Out, State> flush = nullptr,
                                 StageOptions opts = {}) const {
    return internal::KeyedParallelStage<In, Cur, Out, State>(
        source_.pipeline(), source_.channel(), source_.tuner(),
        source_.batch_policy(), apply_, std::move(key_fn), std::move(process),
        parallelism, std::move(flush), std::move(opts), "fused_keyed");
  }

  /// Materializes the fused chain as one pipeline stage with one output
  /// channel, draining and emitting per the source Flow's BatchPolicy
  /// (overridable via `opts.batch` like any other operator).
  Flow<Cur> Emit(StageOptions opts = {}) const {
    Pipeline* pipeline = source_.pipeline();
    const BatchPolicy policy = opts.EffectivePolicy(source_.batch_policy());
    auto out = std::make_shared<Channel<Cur>>(opts.capacity);
    auto out_tuner = internal::MakeTuner(policy, opts.capacity_tuning, out);
    pipeline->RegisterChannelStage("fused", std::move(opts.name), out,
                                   out_tuner);
    auto in = source_.channel();
    auto in_tuner = policy.adaptive() ? source_.tuner() : nullptr;
    pipeline->AddThread([in, out, policy, in_tuner, out_tuner,
                         apply = apply_] {
      BatchEmitter<Cur> emitter(out, policy, out_tuner);
      internal::RunStage(
          in, emitter, policy, in_tuner,
          [&apply](In& item, BatchEmitter<Cur>& em) {
            bool ok = true;
            apply(std::move(item), [&](Cur&& c) {
              if (ok && !em.Emit(std::move(c))) ok = false;
            });
            return ok;
          },
          [](bool, BatchEmitter<Cur>&) {});
      out->Close();
    });
    return Flow<Cur>(pipeline, std::move(out), policy, std::move(out_tuner));
  }

 private:
  Flow<In> source_;
  Apply apply_;
};

template <typename T>
FusedChain<T, T> Flow<T>::Fuse() const {
  return FusedChain<T, T>(
      *this, [](T&& item, const typename FusedChain<T, T>::Sink& sink) {
        sink(std::move(item));
      });
}

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_PIPELINE_H_
