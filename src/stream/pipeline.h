#ifndef TCMF_STREAM_PIPELINE_H_
#define TCMF_STREAM_PIPELINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stream/channel.h"
#include "stream/metrics.h"
#include "stream/window.h"

namespace tcmf::stream {

/// Owns the threads of a dataflow job. Build a graph with Flow<T>, then
/// Run() blocks until every source is exhausted and every stage has
/// drained — the in-process equivalent of submitting a Flink job.
///
/// Runtime semantics: end-of-stream flows downstream via Channel::Close();
/// cancellation flows *upstream* via Channel::CloseAndDrain() — every
/// operator that stops consuming early cancels its input channel, so no
/// producer is ever left blocked in Push. Run() therefore returns even
/// when a sink abandons the stream mid-flight.
///
/// Every operator registers its output channel as a named stage; after
/// (or during) a run, Report() snapshots per-stage StageMetrics and
/// ReportString()/ReportJson() render them.
class Pipeline {
 public:
  Pipeline() = default;
  ~Pipeline() { Run(); }

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Registers a stage thread. Internal — called by Flow operators.
  void AddThread(std::function<void()> body) {
    threads_.emplace_back(std::move(body));
  }

  /// Joins all stage threads; idempotent.
  void Run() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  /// Registers a named metrics source. Internal — called by Flow
  /// operators; also usable for custom stages.
  void RegisterStage(std::string name, std::function<StageMetrics()> snap) {
    std::lock_guard<std::mutex> lock(stages_mutex_);
    stages_.emplace_back(std::move(name), std::move(snap));
  }

  /// Registers a channel as the named stage's output edge. If `name` is
  /// empty, an auto-name "<op>#<index>" is generated. Returns the final
  /// stage name.
  template <typename U>
  std::string RegisterChannelStage(const char* op, std::string name,
                                   std::shared_ptr<Channel<U>> channel) {
    if (name.empty()) {
      name = std::string(op) + "#" + std::to_string(next_stage_index_++);
    }
    RegisterStage(name, [channel] { return channel->MetricsSnapshot(); });
    return name;
  }

  /// Snapshots every registered stage, in registration (graph) order.
  std::vector<StageMetrics> Report() const {
    std::lock_guard<std::mutex> lock(stages_mutex_);
    std::vector<StageMetrics> out;
    out.reserve(stages_.size());
    for (const auto& [name, snap] : stages_) {
      StageMetrics m = snap();
      m.stage = name;
      out.push_back(std::move(m));
    }
    return out;
  }

  /// Printable fixed-width per-stage table.
  std::string ReportString() const { return StageMetricsTable(Report()); }

  /// JSON array of per-stage objects.
  std::string ReportJson() const { return StageMetricsJson(Report()); }

 private:
  std::vector<std::thread> threads_;
  mutable std::mutex stages_mutex_;
  std::vector<std::pair<std::string, std::function<StageMetrics()>>> stages_;
  std::atomic<size_t> next_stage_index_{0};
};

/// Per-key processing function with explicit state: the Flink
/// KeyedProcessFunction analogue. Called once per element with the state
/// slot for the element's key; may emit any number of outputs via `emit`.
template <typename T, typename Out, typename State>
using KeyedProcessFn =
    std::function<void(const T& element, State& state,
                       const std::function<void(Out)>& emit)>;

/// Called for every live key when the stream ends, to flush pending state.
template <typename Out, typename State>
using KeyedFlushFn =
    std::function<void(uint64_t key, State& state,
                       const std::function<void(Out)>& emit)>;

/// A typed edge in the dataflow graph. Flow values are cheap handles:
/// they share the underlying channel.
///
/// Shutdown contract for every operator: when the downstream edge stops
/// accepting (Push returns false because the consumer cancelled), the
/// operator cancels its own input via CloseAndDrain() and exits — the
/// cancel signal propagates all the way to the source. Conversely each
/// operator Close()s its output on every exit path, so downstream stages
/// always observe end-of-stream.
template <typename T>
class Flow {
 public:
  Flow(Pipeline* pipeline, std::shared_ptr<Channel<T>> channel)
      : pipeline_(pipeline), channel_(std::move(channel)) {}

  /// Source from a pull function; the function returns nullopt when the
  /// stream is exhausted.
  static Flow<T> FromGenerator(Pipeline* pipeline,
                               std::function<std::optional<T>()> next,
                               size_t capacity = 1024,
                               std::string name = "") {
    auto channel = std::make_shared<Channel<T>>(capacity);
    pipeline->RegisterChannelStage("source", std::move(name), channel);
    pipeline->AddThread([channel, next = std::move(next)]() mutable {
      while (true) {
        std::optional<T> item = next();
        if (!item.has_value()) break;
        // Push fails only when downstream cancelled: stop generating.
        if (!channel->Push(std::move(*item))) break;
      }
      channel->Close();
    });
    return Flow<T>(pipeline, std::move(channel));
  }

  /// Source from a pre-materialized vector.
  static Flow<T> FromVector(Pipeline* pipeline, std::vector<T> items,
                            size_t capacity = 1024, std::string name = "") {
    auto it = std::make_shared<size_t>(0);
    auto data = std::make_shared<std::vector<T>>(std::move(items));
    return FromGenerator(
        pipeline,
        [it, data]() -> std::optional<T> {
          if (*it >= data->size()) return std::nullopt;
          return (*data)[(*it)++];
        },
        capacity, std::move(name));
  }

  /// 1:1 transform.
  template <typename Out>
  Flow<Out> Map(std::function<Out(const T&)> fn, size_t capacity = 1024,
                std::string name = "") {
    auto out = std::make_shared<Channel<Out>>(capacity);
    pipeline_->RegisterChannelStage("map", std::move(name), out);
    auto in = channel_;
    pipeline_->AddThread([in, out, fn = std::move(fn)] {
      while (auto item = in->Pop()) {
        if (!out->Push(fn(*item))) {
          in->CloseAndDrain();  // propagate cancellation upstream
          break;
        }
      }
      out->Close();
    });
    return Flow<Out>(pipeline_, std::move(out));
  }

  /// 1:N transform.
  template <typename Out>
  Flow<Out> FlatMap(std::function<std::vector<Out>(const T&)> fn,
                    size_t capacity = 1024, std::string name = "") {
    auto out = std::make_shared<Channel<Out>>(capacity);
    pipeline_->RegisterChannelStage("flatmap", std::move(name), out);
    auto in = channel_;
    pipeline_->AddThread([in, out, fn = std::move(fn)] {
      bool open = true;
      while (open) {
        auto item = in->Pop();
        if (!item) break;
        for (Out& o : fn(*item)) {
          if (!out->Push(std::move(o))) {
            open = false;
            break;
          }
        }
      }
      if (!open) in->CloseAndDrain();
      // Close on EVERY exit path — an early return here used to leave
      // downstream Pop blocked forever.
      out->Close();
    });
    return Flow<Out>(pipeline_, std::move(out));
  }

  /// Keeps elements satisfying the predicate.
  Flow<T> Filter(std::function<bool(const T&)> pred, size_t capacity = 1024,
                 std::string name = "") {
    auto out = std::make_shared<Channel<T>>(capacity);
    pipeline_->RegisterChannelStage("filter", std::move(name), out);
    auto in = channel_;
    pipeline_->AddThread([in, out, pred = std::move(pred)] {
      while (auto item = in->Pop()) {
        if (pred(*item)) {
          if (!out->Push(std::move(*item))) {
            in->CloseAndDrain();
            break;
          }
        }
      }
      out->Close();
    });
    return Flow<T>(pipeline_, std::move(out));
  }

  /// Keyed stateful processing with per-key state of type State.
  /// State instances are default-constructed on first sight of a key.
  /// `flush` (optional) runs for every key at end-of-stream.
  template <typename Out, typename State>
  Flow<Out> KeyedProcess(std::function<uint64_t(const T&)> key_fn,
                         KeyedProcessFn<T, Out, State> process,
                         KeyedFlushFn<Out, State> flush = nullptr,
                         size_t capacity = 1024, std::string name = "") {
    auto out = std::make_shared<Channel<Out>>(capacity);
    pipeline_->RegisterChannelStage("keyed", std::move(name), out);
    auto in = channel_;
    pipeline_->AddThread([in, out, key_fn = std::move(key_fn),
                          process = std::move(process),
                          flush = std::move(flush)] {
      std::unordered_map<uint64_t, State> states;
      bool open = true;
      auto emit = [&](Out o) {
        if (open && !out->Push(std::move(o))) open = false;
      };
      while (auto item = in->Pop()) {
        State& state = states[key_fn(*item)];
        process(*item, state, emit);
        if (!open) {
          in->CloseAndDrain();
          break;
        }
      }
      if (open && flush) {
        for (auto& [key, state] : states) flush(key, state, emit);
      }
      out->Close();
    });
    return Flow<Out>(pipeline_, std::move(out));
  }

  /// Keyed stateful processing with `parallelism` worker threads: elements
  /// are hash-partitioned by key, each worker owns the state of its key
  /// range (the Flink keyed-stream execution model). Output order across
  /// workers is nondeterministic; per-key order is preserved.
  template <typename Out, typename State>
  Flow<Out> KeyedProcessParallel(std::function<uint64_t(const T&)> key_fn,
                                 KeyedProcessFn<T, Out, State> process,
                                 size_t parallelism,
                                 KeyedFlushFn<Out, State> flush = nullptr,
                                 size_t capacity = 1024,
                                 std::string name = "") {
    if (parallelism <= 1) {
      return KeyedProcess<Out, State>(std::move(key_fn), std::move(process),
                                      std::move(flush), capacity,
                                      std::move(name));
    }
    auto out = std::make_shared<Channel<Out>>(capacity);
    std::string stage =
        pipeline_->RegisterChannelStage("keyed_par", std::move(name), out);
    auto in = channel_;
    // Partition router: one input channel per worker.
    auto partitions =
        std::make_shared<std::vector<std::shared_ptr<Channel<T>>>>();
    for (size_t w = 0; w < parallelism; ++w) {
      auto part = std::make_shared<Channel<T>>(capacity);
      pipeline_->RegisterChannelStage(
          "", stage + ".part" + std::to_string(w), part);
      partitions->push_back(std::move(part));
    }
    pipeline_->AddThread([in, partitions, key_fn, parallelism] {
      while (auto item = in->Pop()) {
        size_t w = std::hash<uint64_t>{}(key_fn(*item)) % parallelism;
        if (!(*partitions)[w]->Push(std::move(*item))) {
          // A worker cancelled its partition (downstream gone): stop
          // routing and propagate the cancel to our own input.
          in->CloseAndDrain();
          break;
        }
      }
      for (auto& p : *partitions) p->Close();
    });
    // Workers share the output channel; the last one to finish closes it.
    auto live_workers = std::make_shared<std::atomic<size_t>>(parallelism);
    for (size_t w = 0; w < parallelism; ++w) {
      auto my_in = (*partitions)[w];
      pipeline_->AddThread([my_in, out, key_fn, process, flush,
                            live_workers] {
        std::unordered_map<uint64_t, State> states;
        bool open = true;
        auto emit = [&](Out o) {
          if (open && !out->Push(std::move(o))) open = false;
        };
        while (auto item = my_in->Pop()) {
          State& state = states[key_fn(*item)];
          process(*item, state, emit);
          if (!open) {
            // Cancel our partition so the router unblocks; the router
            // then cancels the shared upstream input.
            my_in->CloseAndDrain();
            break;
          }
        }
        if (open && flush) {
          for (auto& [key, state] : states) flush(key, state, emit);
        }
        if (live_workers->fetch_sub(1) == 1) out->Close();
      });
    }
    return Flow<Out>(pipeline_, std::move(out));
  }

  /// Keyed event-time tumbling windows with bounded lateness: elements are
  /// folded per (key, window) via `add`; a window is emitted once the
  /// key's watermark (max event time - lateness) passes its end, and every
  /// open window flushes at end-of-stream. Late elements beyond the
  /// watermark are dropped and surface as `late_dropped` in this stage's
  /// StageMetrics.
  template <typename Acc>
  Flow<std::pair<uint64_t, typename TumblingWindower<T, Acc>::WindowResult>>
  KeyedTumblingWindow(std::function<uint64_t(const T&)> key_fn,
                      std::function<TimeMs(const T&)> time_fn,
                      TimeMs window_ms, TimeMs allowed_lateness_ms,
                      std::function<void(Acc&, const T&, TimeMs)> add,
                      size_t capacity = 1024, std::string name = "") {
    using Result =
        std::pair<uint64_t, typename TumblingWindower<T, Acc>::WindowResult>;
    auto out = std::make_shared<Channel<Result>>(capacity);
    pipeline_->RegisterChannelStage("window", std::move(name), out);
    auto in = channel_;
    pipeline_->AddThread([in, out, key_fn = std::move(key_fn),
                          time_fn = std::move(time_fn), window_ms,
                          allowed_lateness_ms, add = std::move(add)] {
      std::unordered_map<uint64_t, TumblingWindower<T, Acc>> windowers;
      bool open = true;
      auto emit_all = [&](uint64_t key, auto&& results) {
        for (auto& wr : results) {
          if (!out->Push({key, std::move(wr)})) {
            open = false;
            break;
          }
        }
      };
      while (auto item = in->Pop()) {
        const uint64_t key = key_fn(*item);
        auto [it, inserted] = windowers.try_emplace(
            key, window_ms, allowed_lateness_ms, add);
        emit_all(key, it->second.Add(*item, time_fn(*item)));
        if (!open) {
          in->CloseAndDrain();
          break;
        }
      }
      uint64_t late = 0;
      for (auto& [key, w] : windowers) {
        if (open) emit_all(key, w.Close());
        late += w.late_dropped();
      }
      out->RecordLateDropped(late);
      out->Close();
    });
    return Flow<Result>(pipeline_, std::move(out));
  }

  /// Terminal: applies `fn` to every element.
  void Sink(std::function<void(const T&)> fn) {
    auto in = channel_;
    pipeline_->AddThread([in, fn = std::move(fn)] {
      while (auto item = in->Pop()) fn(*item);
    });
  }

  /// Terminal: applies `fn` until it returns false, then cancels the
  /// stream — upstream stages unblock and exit (no deadlock even with
  /// producers mid-Push). The early-stopping sink.
  void SinkWhile(std::function<bool(const T&)> fn) {
    auto in = channel_;
    pipeline_->AddThread([in, fn = std::move(fn)] {
      while (auto item = in->Pop()) {
        if (!fn(*item)) {
          in->CloseAndDrain();
          break;
        }
      }
    });
  }

  /// Terminal: collects all elements into `out` (caller keeps it alive
  /// until Pipeline::Run returns).
  void CollectInto(std::vector<T>* out) {
    Sink([out](const T& item) { out->push_back(item); });
  }

  std::shared_ptr<Channel<T>> channel() const { return channel_; }

  /// The owning pipeline — lets external stage helpers (e.g. mlog's
  /// LogSink) attach threads and metrics without threading an extra
  /// Pipeline* through every call site.
  Pipeline* pipeline() const { return pipeline_; }

 private:
  Pipeline* pipeline_;
  std::shared_ptr<Channel<T>> channel_;
};

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_PIPELINE_H_
