#ifndef TCMF_STREAM_METRICS_H_
#define TCMF_STREAM_METRICS_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace tcmf::stream {

/// Per-stage runtime counters, collected by each Channel (one channel is
/// the output edge of one stage) and aggregated by Pipeline::Report().
/// The blocked-time counters are the backpressure signal: producer time
/// means the stage downstream of this edge is the bottleneck, consumer
/// time means the stage upstream is.
struct StageMetrics {
  std::string stage;                   ///< stage name (set by the pipeline)
  uint64_t records_in = 0;             ///< elements accepted by Push
  uint64_t records_out = 0;            ///< elements handed out by Pop
  uint64_t batches_in = 0;             ///< push transfers (Push counts as 1)
  uint64_t batches_out = 0;            ///< pop transfers (Pop counts as 1)
  uint64_t queue_high_watermark = 0;   ///< max queue depth ever observed
  uint64_t capacity = 0;               ///< current queue-depth bound (elastic)
  uint64_t producer_blocked_ns = 0;    ///< total ns Push spent waiting (full)
  uint64_t consumer_blocked_ns = 0;    ///< total ns Pop spent waiting (empty)
  uint64_t push_rejected = 0;          ///< pushes refused (closed/cancelled)
  uint64_t dropped_on_cancel = 0;      ///< queued elements discarded by cancel
  uint64_t late_dropped = 0;           ///< too-late elements (windowed stages)
  bool cancelled = false;              ///< consumer cancelled this edge
  // Durable-stage counters (mlog LogSink/LogSource; 0 for in-memory
  // edges). Reported in ToJson(); the fixed-width table keeps its
  // original columns.
  uint64_t bytes = 0;            ///< bytes durably written by the stage
  uint64_t io_syncs = 0;         ///< fsync/fdatasync calls issued
  uint64_t recovered = 0;        ///< entries recovered by tail-scan on open
  uint64_t truncated_bytes = 0;  ///< torn-tail bytes truncated on open
  // Adaptive-batching tuner state (BatchPolicy::Adaptive edges only; see
  // src/stream/tuning.h and docs/STREAM_TUNING.md). `tuned` is false for
  // static edges and all tuner_* fields stay zero.
  bool tuned = false;                  ///< edge has a live BatchTuner
  uint64_t tuner_target_batch = 0;     ///< current per-transfer target
  uint64_t tuner_min_batch = 0;        ///< search range lower bound
  uint64_t tuner_batch_cap = 0;        ///< search range upper bound
  uint64_t tuner_samples = 0;          ///< controller samples taken
  uint64_t tuner_adjust_up = 0;        ///< times the target was raised
  uint64_t tuner_adjust_down = 0;      ///< times the target was lowered
  uint64_t tuner_converged_batch = 0;  ///< stable target (0 until converged)
  double tuner_mean_push_batch = 0.0;  ///< mean push size, last window
  double tuner_pop_ms = 0.0;  ///< wall ms/pop, last window (-1: no pops)
  // Adaptive-capacity controller state (CapacityPolicy::Adaptive edges
  // only; see src/stream/tuning.h). `capacity_tuned` is false for static
  // channels and all capacity_* controller fields stay zero.
  bool capacity_tuned = false;        ///< edge has a live CapacityTuner
  uint64_t capacity_min = 0;          ///< resize range lower bound
  uint64_t capacity_max = 0;          ///< resize range upper bound
  uint64_t capacity_resize_up = 0;    ///< times the bound was grown (x2)
  uint64_t capacity_resize_down = 0;  ///< times the bound was shrunk (x0.5)
  uint64_t capacity_converged = 0;    ///< stable bound (0 until converged)

  /// Mean elements moved per push/pop transfer — the amortization factor
  /// the batched transport buys on this edge (1.0 ⇒ record-at-a-time).
  double MeanBatchIn() const {
    return batches_in ? static_cast<double>(records_in) / batches_in : 0.0;
  }
  double MeanBatchOut() const {
    return batches_out ? static_cast<double>(records_out) / batches_out : 0.0;
  }

  /// Header line matching ToString()'s columns.
  static std::string TableHeader() {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-24s %12s %12s %8s %12s %12s %8s %8s %6s %5s", "stage",
                  "in", "out", "q-hwm", "prod-blk-ms", "cons-blk-ms", "rej",
                  "drop", "late", "canc");
    return buf;
  }

  /// One fixed-width line per stage (pairs with TableHeader()).
  std::string ToString() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-24s %12llu %12llu %8llu %12.3f %12.3f %8llu %8llu %6llu "
                  "%5s",
                  stage.c_str(),
                  static_cast<unsigned long long>(records_in),
                  static_cast<unsigned long long>(records_out),
                  static_cast<unsigned long long>(queue_high_watermark),
                  producer_blocked_ns / 1e6, consumer_blocked_ns / 1e6,
                  static_cast<unsigned long long>(push_rejected),
                  static_cast<unsigned long long>(dropped_on_cancel),
                  static_cast<unsigned long long>(late_dropped),
                  cancelled ? "yes" : "no");
    return buf;
  }

  /// Single JSON object (no trailing newline). Tuned edges append the
  /// tuner_* block so every controller decision is observable downstream
  /// (bench_micro JSON rows, tools/bench_check.py relative gates).
  std::string ToJson() const {
    char buf[2048];
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"stage\":\"%s\",\"records_in\":%llu,\"records_out\":%llu,"
        "\"batches_in\":%llu,\"batches_out\":%llu,"
        "\"mean_batch_in\":%.2f,\"mean_batch_out\":%.2f,"
        "\"queue_high_watermark\":%llu,\"capacity\":%llu,"
        "\"producer_blocked_ns\":%llu,"
        "\"consumer_blocked_ns\":%llu,\"push_rejected\":%llu,"
        "\"dropped_on_cancel\":%llu,\"late_dropped\":%llu,"
        "\"cancelled\":%s,\"bytes\":%llu,\"io_syncs\":%llu,"
        "\"recovered\":%llu,\"truncated_bytes\":%llu,\"tuned\":%s",
        stage.c_str(), static_cast<unsigned long long>(records_in),
        static_cast<unsigned long long>(records_out),
        static_cast<unsigned long long>(batches_in),
        static_cast<unsigned long long>(batches_out),
        MeanBatchIn(), MeanBatchOut(),
        static_cast<unsigned long long>(queue_high_watermark),
        static_cast<unsigned long long>(capacity),
        static_cast<unsigned long long>(producer_blocked_ns),
        static_cast<unsigned long long>(consumer_blocked_ns),
        static_cast<unsigned long long>(push_rejected),
        static_cast<unsigned long long>(dropped_on_cancel),
        static_cast<unsigned long long>(late_dropped),
        cancelled ? "true" : "false",
        static_cast<unsigned long long>(bytes),
        static_cast<unsigned long long>(io_syncs),
        static_cast<unsigned long long>(recovered),
        static_cast<unsigned long long>(truncated_bytes),
        tuned ? "true" : "false");
    if (tuned && n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
      n += std::snprintf(
          buf + n, sizeof(buf) - n,
          ",\"tuner_target_batch\":%llu,\"tuner_min_batch\":%llu,"
          "\"tuner_batch_cap\":%llu,\"tuner_samples\":%llu,"
          "\"tuner_adjust_up\":%llu,\"tuner_adjust_down\":%llu,"
          "\"tuner_converged_batch\":%llu,"
          "\"tuner_mean_push_batch\":%.2f,\"tuner_pop_ms\":%.3f",
          static_cast<unsigned long long>(tuner_target_batch),
          static_cast<unsigned long long>(tuner_min_batch),
          static_cast<unsigned long long>(tuner_batch_cap),
          static_cast<unsigned long long>(tuner_samples),
          static_cast<unsigned long long>(tuner_adjust_up),
          static_cast<unsigned long long>(tuner_adjust_down),
          static_cast<unsigned long long>(tuner_converged_batch),
          tuner_mean_push_batch, tuner_pop_ms);
    }
    if (capacity_tuned && n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
      n += std::snprintf(
          buf + n, sizeof(buf) - n,
          ",\"capacity_tuned\":true,\"capacity_min\":%llu,"
          "\"capacity_max\":%llu,\"capacity_resize_up\":%llu,"
          "\"capacity_resize_down\":%llu,\"capacity_converged\":%llu",
          static_cast<unsigned long long>(capacity_min),
          static_cast<unsigned long long>(capacity_max),
          static_cast<unsigned long long>(capacity_resize_up),
          static_cast<unsigned long long>(capacity_resize_down),
          static_cast<unsigned long long>(capacity_converged));
    }
    if (n > 0 && static_cast<size_t>(n) < sizeof(buf) - 1) {
      buf[n] = '}';
      buf[n + 1] = '\0';
    } else {
      buf[sizeof(buf) - 2] = '}';
      buf[sizeof(buf) - 1] = '\0';
    }
    return buf;
  }
};

/// Formats a set of stage snapshots as a printable table.
inline std::string StageMetricsTable(const std::vector<StageMetrics>& stages) {
  std::string out = StageMetrics::TableHeader();
  out += '\n';
  for (const StageMetrics& m : stages) {
    out += m.ToString();
    out += '\n';
  }
  return out;
}

/// Formats a set of stage snapshots as a JSON array.
inline std::string StageMetricsJson(const std::vector<StageMetrics>& stages) {
  std::string out = "[";
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i) out += ',';
    out += stages[i].ToJson();
  }
  out += ']';
  return out;
}

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_METRICS_H_
