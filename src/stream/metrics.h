#ifndef TCMF_STREAM_METRICS_H_
#define TCMF_STREAM_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace tcmf::stream {

/// Minimal JSON string escape (quotes, backslashes, control bytes) for
/// the error messages embedded in StageMetrics::ToJson().
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Per-stage runtime counters, collected by each Channel (one channel is
/// the output edge of one stage) and aggregated by Pipeline::Report().
/// The blocked-time counters are the backpressure signal: producer time
/// means the stage downstream of this edge is the bottleneck, consumer
/// time means the stage upstream is.
struct StageMetrics {
  std::string stage;                   ///< stage name (set by the pipeline)
  uint64_t records_in = 0;             ///< elements accepted by Push
  uint64_t records_out = 0;            ///< elements handed out by Pop
  uint64_t batches_in = 0;             ///< push transfers (Push counts as 1)
  uint64_t batches_out = 0;            ///< pop transfers (Pop counts as 1)
  uint64_t queue_high_watermark = 0;   ///< max queue depth ever observed
  uint64_t capacity = 0;               ///< current queue-depth bound (elastic)
  uint64_t producer_blocked_ns = 0;    ///< total ns Push spent waiting (full)
  uint64_t consumer_blocked_ns = 0;    ///< total ns Pop spent waiting (empty)
  uint64_t push_rejected = 0;          ///< pushes refused (closed/cancelled)
  uint64_t dropped_on_cancel = 0;      ///< queued elements discarded by cancel
  uint64_t late_dropped = 0;           ///< too-late elements (windowed stages)
  bool cancelled = false;              ///< consumer cancelled this edge
  /// First error the stage hit ("" = healthy). Durable stages (mlog
  /// LogSink/LogSource) record append/seek failures here so a failed
  /// final flush or a corrupt replay position is visible in
  /// Report()/ReportJson() instead of being silent data loss.
  std::string error;
  // Durable-stage counters (mlog LogSink/LogSource; 0 for in-memory
  // edges). Reported in ToJson(); the fixed-width table keeps its
  // original columns.
  uint64_t bytes = 0;            ///< bytes durably written by the stage
  uint64_t io_syncs = 0;         ///< fsync/fdatasync calls issued
  uint64_t recovered = 0;        ///< entries recovered by tail-scan on open
  uint64_t truncated_bytes = 0;  ///< torn-tail bytes truncated on open
  // Knowledge-store counters (store::KgStoreSink stages; `kg` stays
  // false for every other edge and the fields are omitted from ToJson).
  // This is how StarQueryMetrics-level work becomes visible through
  // Pipeline::ReportJson when the store is driven from a stage — the
  // same flag-gated splice the durable mlog fields use.
  bool kg = false;                     ///< stage fronts a KnowledgeStore
  uint64_t kg_triples_added = 0;       ///< cumulative KnowledgeStore::Add
  uint64_t kg_star_queries = 0;        ///< cumulative RunStar invocations
  uint64_t kg_star_rows = 0;           ///< total star-join result rows
  uint64_t kg_triples_scanned = 0;     ///< postings/rows visited by RunStar
  uint64_t kg_st_filter_evaluations = 0;  ///< exact st-filter checks
  // Adaptive-batching tuner state (BatchPolicy::Adaptive edges only; see
  // src/stream/tuning.h and docs/STREAM_TUNING.md). `tuned` is false for
  // static edges and all tuner_* fields stay zero.
  bool tuned = false;                  ///< edge has a live BatchTuner
  uint64_t tuner_target_batch = 0;     ///< current per-transfer target
  uint64_t tuner_min_batch = 0;        ///< search range lower bound
  uint64_t tuner_batch_cap = 0;        ///< search range upper bound
  uint64_t tuner_samples = 0;          ///< controller samples taken
  uint64_t tuner_adjust_up = 0;        ///< times the target was raised
  uint64_t tuner_adjust_down = 0;      ///< times the target was lowered
  uint64_t tuner_converged_batch = 0;  ///< stable target (0 until converged)
  double tuner_mean_push_batch = 0.0;  ///< mean push size, last window
  double tuner_pop_ms = 0.0;  ///< wall ms/pop, last window (-1: no pops)
  // Adaptive-capacity controller state (CapacityPolicy::Adaptive edges
  // only; see src/stream/tuning.h). `capacity_tuned` is false for static
  // channels and all capacity_* controller fields stay zero.
  bool capacity_tuned = false;        ///< edge has a live CapacityTuner
  uint64_t capacity_min = 0;          ///< resize range lower bound
  uint64_t capacity_max = 0;          ///< resize range upper bound
  uint64_t capacity_resize_up = 0;    ///< times the bound was grown (x2)
  uint64_t capacity_resize_down = 0;  ///< times the bound was shrunk (x0.5)
  uint64_t capacity_converged = 0;    ///< stable bound (0 until converged)
  // Partition-edge breakdown (keyed-parallel stages only; empty for every
  // other edge). One nested snapshot per router→worker partition edge,
  // each carrying its own tuner_*/capacity_* controller blocks; rendered
  // by ToJson() as a "worker_edges" array plus the "skew_ratio" summary.
  std::vector<StageMetrics> worker_edges;
  /// Hottest partition edge's records_in over the mean across edges
  /// (WorkerEdgeSkewRatio): 1.0 ⇒ uniform fan-out, 0 ⇒ no edges/records.
  double skew_ratio = 0.0;

  /// Mean elements moved per push/pop transfer — the amortization factor
  /// the batched transport buys on this edge (1.0 ⇒ record-at-a-time).
  double MeanBatchIn() const {
    return batches_in ? static_cast<double>(records_in) / batches_in : 0.0;
  }
  double MeanBatchOut() const {
    return batches_out ? static_cast<double>(records_out) / batches_out : 0.0;
  }

  /// Header line matching ToString()'s columns.
  static std::string TableHeader() {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-24s %12s %12s %8s %12s %12s %8s %8s %6s %5s", "stage",
                  "in", "out", "q-hwm", "prod-blk-ms", "cons-blk-ms", "rej",
                  "drop", "late", "canc");
    return buf;
  }

  /// One fixed-width line per stage (pairs with TableHeader()).
  std::string ToString() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-24s %12llu %12llu %8llu %12.3f %12.3f %8llu %8llu %6llu "
                  "%5s",
                  stage.c_str(),
                  static_cast<unsigned long long>(records_in),
                  static_cast<unsigned long long>(records_out),
                  static_cast<unsigned long long>(queue_high_watermark),
                  producer_blocked_ns / 1e6, consumer_blocked_ns / 1e6,
                  static_cast<unsigned long long>(push_rejected),
                  static_cast<unsigned long long>(dropped_on_cancel),
                  static_cast<unsigned long long>(late_dropped),
                  cancelled ? "yes" : "no");
    return buf;
  }

  /// Single JSON object (no trailing newline). Tuned edges append the
  /// tuner_* block so every controller decision is observable downstream
  /// (bench_micro JSON rows, tools/bench_check.py relative gates).
  std::string ToJson() const {
    char buf[2048];
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"stage\":\"%s\",\"records_in\":%llu,\"records_out\":%llu,"
        "\"batches_in\":%llu,\"batches_out\":%llu,"
        "\"mean_batch_in\":%.2f,\"mean_batch_out\":%.2f,"
        "\"queue_high_watermark\":%llu,\"capacity\":%llu,"
        "\"producer_blocked_ns\":%llu,"
        "\"consumer_blocked_ns\":%llu,\"push_rejected\":%llu,"
        "\"dropped_on_cancel\":%llu,\"late_dropped\":%llu,"
        "\"cancelled\":%s,\"bytes\":%llu,\"io_syncs\":%llu,"
        "\"recovered\":%llu,\"truncated_bytes\":%llu,\"tuned\":%s",
        stage.c_str(), static_cast<unsigned long long>(records_in),
        static_cast<unsigned long long>(records_out),
        static_cast<unsigned long long>(batches_in),
        static_cast<unsigned long long>(batches_out),
        MeanBatchIn(), MeanBatchOut(),
        static_cast<unsigned long long>(queue_high_watermark),
        static_cast<unsigned long long>(capacity),
        static_cast<unsigned long long>(producer_blocked_ns),
        static_cast<unsigned long long>(consumer_blocked_ns),
        static_cast<unsigned long long>(push_rejected),
        static_cast<unsigned long long>(dropped_on_cancel),
        static_cast<unsigned long long>(late_dropped),
        cancelled ? "true" : "false",
        static_cast<unsigned long long>(bytes),
        static_cast<unsigned long long>(io_syncs),
        static_cast<unsigned long long>(recovered),
        static_cast<unsigned long long>(truncated_bytes),
        tuned ? "true" : "false");
    if (kg && n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
      n += std::snprintf(
          buf + n, sizeof(buf) - n,
          ",\"kg\":true,\"kg_triples_added\":%llu,"
          "\"kg_star_queries\":%llu,\"kg_star_rows\":%llu,"
          "\"kg_triples_scanned\":%llu,\"kg_st_filter_evaluations\":%llu",
          static_cast<unsigned long long>(kg_triples_added),
          static_cast<unsigned long long>(kg_star_queries),
          static_cast<unsigned long long>(kg_star_rows),
          static_cast<unsigned long long>(kg_triples_scanned),
          static_cast<unsigned long long>(kg_st_filter_evaluations));
    }
    if (tuned && n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
      n += std::snprintf(
          buf + n, sizeof(buf) - n,
          ",\"tuner_target_batch\":%llu,\"tuner_min_batch\":%llu,"
          "\"tuner_batch_cap\":%llu,\"tuner_samples\":%llu,"
          "\"tuner_adjust_up\":%llu,\"tuner_adjust_down\":%llu,"
          "\"tuner_converged_batch\":%llu,"
          "\"tuner_mean_push_batch\":%.2f,\"tuner_pop_ms\":%.3f",
          static_cast<unsigned long long>(tuner_target_batch),
          static_cast<unsigned long long>(tuner_min_batch),
          static_cast<unsigned long long>(tuner_batch_cap),
          static_cast<unsigned long long>(tuner_samples),
          static_cast<unsigned long long>(tuner_adjust_up),
          static_cast<unsigned long long>(tuner_adjust_down),
          static_cast<unsigned long long>(tuner_converged_batch),
          tuner_mean_push_batch, tuner_pop_ms);
    }
    if (capacity_tuned && n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
      n += std::snprintf(
          buf + n, sizeof(buf) - n,
          ",\"capacity_tuned\":true,\"capacity_min\":%llu,"
          "\"capacity_max\":%llu,\"capacity_resize_up\":%llu,"
          "\"capacity_resize_down\":%llu,\"capacity_converged\":%llu",
          static_cast<unsigned long long>(capacity_min),
          static_cast<unsigned long long>(capacity_max),
          static_cast<unsigned long long>(capacity_resize_up),
          static_cast<unsigned long long>(capacity_resize_down),
          static_cast<unsigned long long>(capacity_converged));
    }
    if (!error.empty() && n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
      n += std::snprintf(buf + n, sizeof(buf) - n, ",\"error\":\"%s\"",
                         JsonEscape(error).c_str());
    }
    std::string out(buf,
                    n > 0 ? std::min(static_cast<size_t>(n), sizeof(buf) - 1)
                          : 0);
    if (!worker_edges.empty()) {
      char tail[48];
      std::snprintf(tail, sizeof(tail), ",\"skew_ratio\":%.2f", skew_ratio);
      out += tail;
      out += ",\"worker_edges\":[";
      for (size_t i = 0; i < worker_edges.size(); ++i) {
        if (i) out += ',';
        out += worker_edges[i].ToJson();
      }
      out += ']';
    }
    out += '}';
    return out;
  }
};

/// Hottest-edge load factor over a keyed stage's partition edges:
/// max(records_in) / mean(records_in). 1.0 ⇒ perfectly uniform fan-out,
/// K ⇒ the hottest worker saw K× the average load; 0 when there are no
/// edges or no records yet. This is the headline number for deciding
/// whether per-edge tuner divergence reflects key skew or noise (see
/// stream::SummarizeWorkerEdges in tuning.h for the full breakdown).
inline double WorkerEdgeSkewRatio(const std::vector<StageMetrics>& edges) {
  if (edges.empty()) return 0.0;
  uint64_t total = 0;
  uint64_t hottest = 0;
  for (const StageMetrics& e : edges) {
    total += e.records_in;
    hottest = std::max(hottest, e.records_in);
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / edges.size();
  return static_cast<double>(hottest) / mean;
}

/// Thread-safe first-error-wins holder shared between a stage thread and
/// the metrics snapshot lambda registered with Pipeline::RegisterStage.
/// Durable stages (mlog LogSink/LogSource) Set() on append/seek failure
/// and splice Get() into their StageMetrics snapshots, making the error
/// sticky and observable in Report()/ReportJson().
class StickyStageError {
 public:
  /// Records `msg` if no error is held yet (the first failure is the
  /// root cause; later ones are usually fallout).
  void Set(const std::string& msg) {
    std::lock_guard<std::mutex> lock(mu_);
    if (error_.empty() && !msg.empty()) error_ = msg;
  }

  /// The held error, "" when healthy.
  std::string Get() const {
    std::lock_guard<std::mutex> lock(mu_);
    return error_;
  }

  bool ok() const { return Get().empty(); }

 private:
  mutable std::mutex mu_;
  std::string error_;
};

/// Merges per-shard snapshots of the *same logical stage* into one
/// aggregate row (ShardedPipeline's merged report): counters sum, queue
/// high-watermarks take the max (a per-queue bound, not additive),
/// capacities sum (total buffering across shards), `cancelled` ORs, and
/// the first non-empty error wins. Controller state (tuner_*/capacity_*)
/// is per-edge and meaningless summed, so the aggregate row reports
/// tuned=false; read the per-shard breakdown for controller detail.
/// Keyed stages' nested worker_edges merge positionally — shard s's
/// partition w and shard t's partition w are the same logical edge (same
/// Mix64 key range), so edge w of the aggregate sums edge w of every
/// shard and the skew ratio is recomputed over the merged edges.
inline StageMetrics AggregateStageMetrics(
    const std::string& stage_name, const std::vector<StageMetrics>& shards) {
  StageMetrics agg;
  agg.stage = stage_name;
  for (const StageMetrics& m : shards) {
    agg.records_in += m.records_in;
    agg.records_out += m.records_out;
    agg.batches_in += m.batches_in;
    agg.batches_out += m.batches_out;
    agg.queue_high_watermark =
        std::max(agg.queue_high_watermark, m.queue_high_watermark);
    agg.capacity += m.capacity;
    agg.producer_blocked_ns += m.producer_blocked_ns;
    agg.consumer_blocked_ns += m.consumer_blocked_ns;
    agg.push_rejected += m.push_rejected;
    agg.dropped_on_cancel += m.dropped_on_cancel;
    agg.late_dropped += m.late_dropped;
    agg.cancelled = agg.cancelled || m.cancelled;
    if (agg.error.empty()) agg.error = m.error;
    agg.bytes += m.bytes;
    agg.io_syncs += m.io_syncs;
    agg.recovered += m.recovered;
    agg.truncated_bytes += m.truncated_bytes;
    agg.kg = agg.kg || m.kg;
    agg.kg_triples_added += m.kg_triples_added;
    agg.kg_star_queries += m.kg_star_queries;
    agg.kg_star_rows += m.kg_star_rows;
    agg.kg_triples_scanned += m.kg_triples_scanned;
    agg.kg_st_filter_evaluations += m.kg_st_filter_evaluations;
  }
  size_t max_edges = 0;
  for (const StageMetrics& m : shards) {
    max_edges = std::max(max_edges, m.worker_edges.size());
  }
  for (size_t w = 0; w < max_edges; ++w) {
    std::vector<StageMetrics> edge_shards;
    std::string edge_name;
    for (const StageMetrics& m : shards) {
      if (w >= m.worker_edges.size()) continue;
      if (edge_name.empty()) edge_name = m.worker_edges[w].stage;
      edge_shards.push_back(m.worker_edges[w]);
    }
    agg.worker_edges.push_back(AggregateStageMetrics(edge_name, edge_shards));
  }
  agg.skew_ratio = WorkerEdgeSkewRatio(agg.worker_edges);
  return agg;
}

/// Formats a set of stage snapshots as a printable table.
inline std::string StageMetricsTable(const std::vector<StageMetrics>& stages) {
  std::string out = StageMetrics::TableHeader();
  out += '\n';
  for (const StageMetrics& m : stages) {
    out += m.ToString();
    out += '\n';
  }
  return out;
}

/// Formats a set of stage snapshots as a JSON array.
inline std::string StageMetricsJson(const std::vector<StageMetrics>& stages) {
  std::string out = "[";
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i) out += ',';
    out += stages[i].ToJson();
  }
  out += ']';
  return out;
}

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_METRICS_H_
