#ifndef TCMF_STREAM_WINDOW_H_
#define TCMF_STREAM_WINDOW_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "common/position.h"

namespace tcmf::stream {

/// Tumbling event-time window assembler with bounded lateness — a
/// single-key building block the operators compose per key. Feed elements
/// with their event times; completed windows are emitted once the
/// watermark (max event time - allowed lateness) passes their end.
template <typename T, typename Acc>
class TumblingWindower {
 public:
  struct WindowResult {
    TimeMs window_start = 0;
    TimeMs window_end = 0;
    Acc value{};
  };

  /// `add` folds an element into the per-window accumulator.
  TumblingWindower(TimeMs window_ms, TimeMs allowed_lateness_ms,
                   std::function<void(Acc&, const T&, TimeMs)> add)
      : window_ms_(window_ms <= 0 ? 1 : window_ms),
        lateness_ms_(allowed_lateness_ms < 0 ? 0 : allowed_lateness_ms),
        add_(std::move(add)) {}

  /// Feeds one element; returns any windows closed by the advancing
  /// watermark (possibly empty). Late elements beyond the watermark are
  /// dropped and counted.
  std::vector<WindowResult> Add(const T& element, TimeMs event_time) {
    if (event_time < watermark_) {
      ++late_dropped_;
      return Flush(watermark_);
    }
    TimeMs start = WindowStart(event_time);
    add_(windows_[start], element, event_time);
    if (event_time > max_event_time_) {
      max_event_time_ = event_time;
      // Clamp instead of computing max_event_time_ - lateness_ms_
      // directly: for large lateness (or event times near the sentinel
      // minimum) the subtraction underflows TimeMs and wraps to a huge
      // positive watermark, silently dropping every subsequent element.
      constexpr TimeMs kMin = std::numeric_limits<TimeMs>::min();
      watermark_ = (max_event_time_ < kMin + lateness_ms_)
                       ? kMin
                       : max_event_time_ - lateness_ms_;
    }
    return Flush(watermark_);
  }

  /// Emits every remaining open window (end of stream).
  std::vector<WindowResult> Close() {
    return Flush(std::numeric_limits<TimeMs>::max());
  }

  size_t late_dropped() const { return late_dropped_; }
  TimeMs watermark() const { return watermark_; }

 private:
  TimeMs WindowStart(TimeMs t) const {
    TimeMs start = t - (t % window_ms_);
    if (t < 0 && t % window_ms_ != 0) start -= window_ms_;
    return start;
  }

  std::vector<WindowResult> Flush(TimeMs up_to) {
    std::vector<WindowResult> out;
    auto it = windows_.begin();
    while (it != windows_.end() && it->first + window_ms_ <= up_to) {
      out.push_back({it->first, it->first + window_ms_, std::move(it->second)});
      it = windows_.erase(it);
    }
    return out;
  }

  TimeMs window_ms_;
  TimeMs lateness_ms_;
  std::function<void(Acc&, const T&, TimeMs)> add_;
  std::map<TimeMs, Acc> windows_;
  TimeMs max_event_time_ = std::numeric_limits<TimeMs>::min();
  TimeMs watermark_ = std::numeric_limits<TimeMs>::min();
  size_t late_dropped_ = 0;
};

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_WINDOW_H_
