#include "stream/record.h"

#include <cstring>

#include "common/strings.h"

namespace tcmf::stream {

std::string ValueToString(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return ""; }
    std::string operator()(int64_t x) const { return std::to_string(x); }
    std::string operator()(double x) const { return StrFormat("%.6g", x); }
    std::string operator()(const std::string& x) const { return x; }
    std::string operator()(bool x) const { return x ? "true" : "false"; }
  };
  return std::visit(Visitor{}, v);
}

bool ValueEquals(const Value& a, const Value& b) {
  if (a.index() != b.index()) return false;
  if (const double* x = std::get_if<double>(&a)) {
    // Bit-pattern comparison: NaN == NaN, 0.0 != -0.0.
    uint64_t xa, xb;
    std::memcpy(&xa, x, sizeof(xa));
    std::memcpy(&xb, std::get_if<double>(&b), sizeof(xb));
    return xa == xb;
  }
  return a == b;
}

bool operator==(const Record& a, const Record& b) {
  if (a.event_time_ != b.event_time_) return false;
  if (a.fields_.size() != b.fields_.size()) return false;
  for (size_t i = 0; i < a.fields_.size(); ++i) {
    if (a.fields_[i].first != b.fields_[i].first) return false;
    if (!ValueEquals(a.fields_[i].second, b.fields_[i].second)) return false;
  }
  return true;
}

void Record::Set(std::string name, Value value) {
  for (auto& [k, v] : fields_) {
    if (k == name) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(std::move(name), std::move(value));
}

const Value* Record::Find(const std::string& name) const {
  for (const auto& [k, v] : fields_) {
    if (k == name) return &v;
  }
  return nullptr;
}

bool Record::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

std::optional<int64_t> Record::GetInt(const std::string& name) const {
  const Value* v = Find(name);
  if (v == nullptr) return std::nullopt;
  if (const int64_t* x = std::get_if<int64_t>(v)) return *x;
  return std::nullopt;
}

std::optional<double> Record::GetDouble(const std::string& name) const {
  const Value* v = Find(name);
  if (v == nullptr) return std::nullopt;
  if (const double* x = std::get_if<double>(v)) return *x;
  return std::nullopt;
}

std::optional<std::string> Record::GetString(const std::string& name) const {
  const Value* v = Find(name);
  if (v == nullptr) return std::nullopt;
  if (const std::string* x = std::get_if<std::string>(v)) return *x;
  return std::nullopt;
}

std::optional<bool> Record::GetBool(const std::string& name) const {
  const Value* v = Find(name);
  if (v == nullptr) return std::nullopt;
  if (const bool* x = std::get_if<bool>(v)) return *x;
  return std::nullopt;
}

std::optional<double> Record::GetNumeric(const std::string& name) const {
  const Value* v = Find(name);
  if (v == nullptr) return std::nullopt;
  if (const double* x = std::get_if<double>(v)) return *x;
  if (const int64_t* x = std::get_if<int64_t>(v)) {
    return static_cast<double>(*x);
  }
  return std::nullopt;
}

std::string Record::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].first;
    out += "=";
    out += ValueToString(fields_[i].second);
  }
  out += "}";
  return out;
}

Record PositionToRecord(const Position& p) {
  Record r;
  r.set_event_time(p.t);
  r.Set("entity_id", static_cast<int64_t>(p.entity_id));
  r.Set("t", static_cast<int64_t>(p.t));
  r.Set("lon", p.lon);
  r.Set("lat", p.lat);
  r.Set("alt_m", p.alt_m);
  r.Set("speed_mps", p.speed_mps);
  r.Set("heading_deg", p.heading_deg);
  r.Set("vrate_mps", p.vrate_mps);
  return r;
}

Position RecordToPosition(const Record& r) {
  Position p;
  p.entity_id = static_cast<uint64_t>(r.GetInt("entity_id").value_or(0));
  p.t = r.GetInt("t").value_or(0);
  p.lon = r.GetNumeric("lon").value_or(0.0);
  p.lat = r.GetNumeric("lat").value_or(0.0);
  p.alt_m = r.GetNumeric("alt_m").value_or(0.0);
  p.speed_mps = r.GetNumeric("speed_mps").value_or(0.0);
  p.heading_deg = r.GetNumeric("heading_deg").value_or(0.0);
  p.vrate_mps = r.GetNumeric("vrate_mps").value_or(0.0);
  return p;
}

}  // namespace tcmf::stream
