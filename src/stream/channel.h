#ifndef TCMF_STREAM_CHANNEL_H_
#define TCMF_STREAM_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "stream/metrics.h"

namespace tcmf::stream {

/// Result of a non-blocking poll: distinguishes "nothing right now" from
/// "this stream is finished" (closed AND drained), which the optional-based
/// API cannot express.
enum class PollStatus {
  kItem,    ///< an element was dequeued
  kEmpty,   ///< queue empty but the channel may still produce elements
  kClosed,  ///< closed and drained: no element will ever arrive again
};

/// Bounded multi-producer/multi-consumer blocking queue with close and
/// cancel semantics: the stream-transport substrate standing in for Kafka
/// topics. Push blocks when full (backpressure); Pop blocks until an
/// element is available or the channel is closed and drained.
///
/// Shutdown protocol (see DESIGN.md "runtime semantics"):
///  - Producer side: Close() marks end-of-stream; consumers drain the
///    remaining queue, then Pop returns nullopt.
///  - Consumer side: CloseAndDrain() *cancels* the edge — the queue is
///    discarded, blocked producers unblock with Push() == false, and any
///    other consumer sees end-of-stream immediately. Every operator that
///    stops consuming early MUST cancel its input so upstream stages can
///    exit instead of deadlocking in Push.
///
/// The channel also records StageMetrics: elements in/out, queue-depth
/// high-watermark, cumulative producer/consumer blocked time, rejected
/// pushes and cancel-dropped elements (see metrics.h).
template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks until there is room. Returns false when the channel is closed
  /// or cancelled (the element is dropped).
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && queue_.size() >= capacity_) {
      const auto t0 = std::chrono::steady_clock::now();
      not_full_.wait(lock,
                     [this] { return closed_ || queue_.size() < capacity_; });
      producer_blocked_ns_ += BlockedNsSince(t0);
    }
    if (closed_) {
      ++push_rejected_;
      return false;
    }
    queue_.push_back(std::move(value));
    ++pushed_;
    if (queue_.size() > high_watermark_) high_watermark_ = queue_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full, closed or cancelled.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        ++push_rejected_;
        return false;
      }
      if (queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(value));
      ++pushed_;
      if (queue_.size() > high_watermark_) high_watermark_ = queue_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element arrives; nullopt when closed and drained
  /// (or cancelled).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && queue_.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      consumer_blocked_ns_ += BlockedNsSince(t0);
    }
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    ++popped_;
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking pop. NOTE: nullopt conflates "empty but open" with
  /// "closed and drained" — polling consumers should use the tri-state
  /// overload below (or check closed_and_empty()).
  std::optional<T> TryPop() {
    T out;
    if (TryPop(&out) == PollStatus::kItem) return out;
    return std::nullopt;
  }

  /// Non-blocking tri-state pop: on kItem, `*out` receives the element.
  /// kEmpty means "try again later"; kClosed means "never again".
  PollStatus TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) return closed_ ? PollStatus::kClosed
                                         : PollStatus::kEmpty;
      *out = std::move(queue_.front());
      queue_.pop_front();
      ++popped_;
    }
    not_full_.notify_one();
    return PollStatus::kItem;
  }

  /// Marks the channel closed; consumers drain remaining elements then see
  /// nullopt. Idempotent. (Producer-side end-of-stream.)
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Consumer-side cancellation: closes the channel AND discards anything
  /// still queued, so blocked producers return false immediately and other
  /// consumers see end-of-stream without draining. Idempotent. This is the
  /// signal every early-exiting stage sends upstream.
  void CloseAndDrain() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      cancelled_ = true;
      dropped_on_cancel_ += queue_.size();
      queue_.clear();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cancelled_;
  }

  /// True once no element will ever be produced again: closed (or
  /// cancelled) and fully drained. The polling-consumer termination test.
  bool closed_and_empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_ && queue_.empty();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Adds to the late/dropped counter (wired by windowed operators from
  /// TumblingWindower::late_dropped()).
  void RecordLateDropped(uint64_t n) {
    std::lock_guard<std::mutex> lock(mutex_);
    late_dropped_ += n;
  }

  /// Consistent snapshot of this edge's counters. The stage name is filled
  /// in by the owning Pipeline.
  StageMetrics MetricsSnapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    StageMetrics m;
    m.records_in = pushed_;
    m.records_out = popped_;
    m.queue_high_watermark = high_watermark_;
    m.producer_blocked_ns = producer_blocked_ns_;
    m.consumer_blocked_ns = consumer_blocked_ns_;
    m.push_rejected = push_rejected_;
    m.dropped_on_cancel = dropped_on_cancel_;
    m.late_dropped = late_dropped_;
    m.cancelled = cancelled_;
    return m;
  }

 private:
  static uint64_t BlockedNsSince(std::chrono::steady_clock::time_point t0) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
  bool cancelled_ = false;
  // Metrics (guarded by mutex_).
  uint64_t pushed_ = 0;
  uint64_t popped_ = 0;
  uint64_t high_watermark_ = 0;
  uint64_t producer_blocked_ns_ = 0;
  uint64_t consumer_blocked_ns_ = 0;
  uint64_t push_rejected_ = 0;
  uint64_t dropped_on_cancel_ = 0;
  uint64_t late_dropped_ = 0;
};

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_CHANNEL_H_
