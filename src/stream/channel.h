#ifndef TCMF_STREAM_CHANNEL_H_
#define TCMF_STREAM_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "stream/metrics.h"

namespace tcmf::stream {

/// Default channel capacity (queue-depth bound) used by every operator
/// when no explicit capacity is given, and the seed from which the
/// adaptive capacity controller (tuning.h) starts resizing. One constant
/// instead of a per-operator literal so the transport default is a single
/// knob.
inline constexpr size_t kDefaultCapacity = 1024;

/// Result of a non-blocking poll: distinguishes "nothing right now" from
/// "this stream is finished" (closed AND drained), which the optional-based
/// API cannot express.
enum class PollStatus {
  kItem,    ///< an element was dequeued
  kEmpty,   ///< queue empty but the channel may still produce elements
  kClosed,  ///< closed and drained: no element will ever arrive again
};

/// Bounded multi-producer/multi-consumer blocking queue with close and
/// cancel semantics: the stream-transport substrate standing in for Kafka
/// topics. Push blocks when full (backpressure); Pop blocks until an
/// element is available or the channel is closed and drained.
///
/// Besides the record-at-a-time Push/Pop, the channel supports amortized
/// batch transfer: PushBatch/PopBatch move many elements under one lock
/// acquisition (one per capacity chunk on the push side), which is the
/// dominant throughput lever for the single-pass operator pipelines every
/// datAcron component compiles down to — the full cost model (what the
/// lock amortization buys, what batch staging costs, how the per-edge
/// adaptive controller picks the batch size) is docs/STREAM_TUNING.md.
/// Batch transfers use notify_all wakeups: releasing k resources with a
/// single notify_one would strand up to k-1 waiters (see
/// ChannelTest.BatchWakeups* regressions).
///
/// Shutdown protocol (see DESIGN.md "runtime semantics"):
///  - Producer side: Close() marks end-of-stream; consumers drain the
///    remaining queue, then Pop returns nullopt.
///  - Consumer side: CloseAndDrain() *cancels* the edge — the queue is
///    discarded, blocked producers unblock with Push() == false, and any
///    other consumer sees end-of-stream immediately. Every operator that
///    stops consuming early MUST cancel its input so upstream stages can
///    exit instead of deadlocking in Push.
///
/// The channel also records StageMetrics: elements in/out, queue-depth
/// high-watermark, cumulative producer/consumer blocked time, rejected
/// pushes and cancel-dropped elements (see metrics.h).
template <typename T>
class Channel {
 public:
  /// `capacity` bounds the queue depth (0 is promoted to 1). Capacity is
  /// the backpressure knob: a full queue blocks producers, and the time
  /// they spend blocked is surfaced as producer_blocked_ns in
  /// StageMetrics. It also bounds the largest contiguous PushBatch chunk.
  /// The bound is *elastic*: Resize() may change it at runtime (the
  /// adaptive capacity controller in tuning.h drives this).
  explicit Channel(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks until there is room. Returns false when the channel is closed
  /// or cancelled (the element is dropped).
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && queue_.size() >= capacity_) {
      const auto t0 = std::chrono::steady_clock::now();
      not_full_.wait(lock,
                     [this] { return closed_ || queue_.size() < capacity_; });
      producer_blocked_ns_ += BlockedNsSince(t0);
    }
    if (closed_) {
      ++push_rejected_;
      return false;
    }
    queue_.push_back(std::move(value));
    ++pushed_;
    ++push_batches_;
    UpdateWatermarksLocked();
    lock.unlock();
    NotifyConsumers(1);
    return true;
  }

  /// Non-blocking push; returns false when full, closed or cancelled.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        ++push_rejected_;
        return false;
      }
      if (queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(value));
      ++pushed_;
      ++push_batches_;
      UpdateWatermarksLocked();
    }
    NotifyConsumers(1);
    return true;
  }

  /// Batched push: moves the whole vector into the channel, taking the
  /// lock once per capacity chunk instead of once per element. Blocks for
  /// room (backpressure) between chunks. When the channel is closed or
  /// cancelled mid-transfer the remaining elements are dropped and the
  /// number accepted so far is returned (*partial accept*); full
  /// acceptance returns batch.size(). The vector is left empty either
  /// way. Counts as one batch in StageMetrics regardless of chunking.
  size_t PushBatch(std::vector<T>&& batch) {
    const size_t n = batch.size();
    size_t accepted = 0;
    while (accepted < n) {
      size_t chunk = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!closed_ && queue_.size() >= capacity_) {
          const auto t0 = std::chrono::steady_clock::now();
          not_full_.wait(
              lock, [this] { return closed_ || queue_.size() < capacity_; });
          producer_blocked_ns_ += BlockedNsSince(t0);
        }
        if (closed_) {
          push_rejected_ += n - accepted;
          break;
        }
        chunk = std::min(capacity_ - queue_.size(), n - accepted);
        for (size_t i = 0; i < chunk; ++i) {
          queue_.push_back(std::move(batch[accepted + i]));
        }
        if (accepted == 0 && chunk > 0) ++push_batches_;
        accepted += chunk;
        pushed_ += chunk;
        UpdateWatermarksLocked();
      }
      NotifyConsumers(chunk);
    }
    batch.clear();
    return accepted;
  }

  /// Batched pop: blocks until at least one element is available (or the
  /// channel is closed and drained), then appends up to `max_n` elements
  /// to `*out` under a single lock acquisition. Returns the number
  /// appended; 0 means end-of-stream (closed or cancelled, nothing left).
  size_t PopBatch(std::vector<T>* out, size_t max_n) {
    if (max_n == 0) return 0;
    size_t got = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!closed_ && queue_.empty()) {
        const auto t0 = std::chrono::steady_clock::now();
        not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
        consumer_blocked_ns_ += BlockedNsSince(t0);
      }
      got = DrainLocked(out, max_n);
    }
    NotifyProducers(got);
    return got;
  }

  /// Timed batched pop for linger-bounded consumers: like PopBatch but
  /// additionally returns after `timeout` with nothing appended while the
  /// channel is still open. kItem ⇒ ≥1 element appended (`*n_out`, if
  /// non-null, receives the count); kEmpty ⇒ timed out, try again later;
  /// kClosed ⇒ end-of-stream.
  PollStatus PopBatchFor(std::vector<T>* out, size_t max_n,
                         std::chrono::milliseconds timeout,
                         size_t* n_out = nullptr) {
    size_t got = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!closed_ && queue_.empty()) {
        const auto t0 = std::chrono::steady_clock::now();
        not_empty_.wait_for(lock, timeout,
                            [this] { return closed_ || !queue_.empty(); });
        consumer_blocked_ns_ += BlockedNsSince(t0);
      }
      if (queue_.empty()) {
        if (n_out) *n_out = 0;
        return closed_ ? PollStatus::kClosed : PollStatus::kEmpty;
      }
      got = DrainLocked(out, max_n);
    }
    NotifyProducers(got);
    if (n_out) *n_out = got;
    return PollStatus::kItem;
  }

  /// Blocks until an element arrives; nullopt when closed and drained
  /// (or cancelled).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && queue_.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      consumer_blocked_ns_ += BlockedNsSince(t0);
    }
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    ++popped_;
    ++pop_batches_;
    lock.unlock();
    NotifyProducers(1);
    return out;
  }

  /// Non-blocking pop. NOTE: nullopt conflates "empty but open" with
  /// "closed and drained" — polling consumers should use the tri-state
  /// overload below (or check closed_and_empty()).
  std::optional<T> TryPop() {
    T out;
    if (TryPop(&out) == PollStatus::kItem) return out;
    return std::nullopt;
  }

  /// Non-blocking tri-state pop: on kItem, `*out` receives the element.
  /// kEmpty means "try again later"; kClosed means "never again".
  PollStatus TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) return closed_ ? PollStatus::kClosed
                                         : PollStatus::kEmpty;
      *out = std::move(queue_.front());
      queue_.pop_front();
      ++popped_;
      ++pop_batches_;
    }
    NotifyProducers(1);
    return PollStatus::kItem;
  }

  /// Marks the channel closed; consumers drain remaining elements then see
  /// nullopt. Idempotent. (Producer-side end-of-stream.)
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Consumer-side cancellation: closes the channel AND discards anything
  /// still queued, so blocked producers return false immediately and other
  /// consumers see end-of-stream without draining. Idempotent. This is the
  /// signal every early-exiting stage sends upstream.
  void CloseAndDrain() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      cancelled_ = true;
      dropped_on_cancel_ += queue_.size();
      queue_.clear();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// True once Close() or CloseAndDrain() has been called. Elements may
  /// still be queued (use closed_and_empty() for the termination test).
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// True once a consumer cancelled the edge via CloseAndDrain().
  /// Distinguishes upstream cancellation from normal end-of-stream in
  /// shutdown paths and in the StageMetrics report.
  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cancelled_;
  }

  /// True once no element will ever be produced again: closed (or
  /// cancelled) and fully drained. The polling-consumer termination test.
  bool closed_and_empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_ && queue_.empty();
  }

  /// Current queue depth (instantaneous; racy by nature — use the
  /// queue_high_watermark metric for tuning decisions).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// The current queue-depth bound. Starts at the constructor value; may
  /// change at runtime via Resize() when an adaptive capacity controller
  /// is attached.
  size_t capacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
  }

  /// Elastically changes the queue-depth bound (0 promoted to 1).
  /// Growing re-notifies *all* blocked producers — each freed slot can
  /// admit one waiter, and a grow frees many at once, so notify_one would
  /// strand waiters exactly like an under-notified batch transfer.
  /// Shrinking never evicts queued elements: the queue may transiently
  /// exceed the new bound, and producers simply block until consumers
  /// drain it below the bound again. Returns the previous bound.
  size_t Resize(size_t new_capacity) {
    if (new_capacity == 0) new_capacity = 1;
    size_t prev;
    bool grew;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      prev = capacity_;
      grew = new_capacity > capacity_;
      capacity_ = new_capacity;
    }
    if (grew) not_full_.notify_all();
    return prev;
  }

  /// Returns the max queue depth observed since the previous call, and
  /// restarts the window at the *current* depth (so a queue that stays
  /// deep keeps reporting deep). This is the capacity controller's
  /// saturation/shallowness signal: unlike queue_high_watermark (which is
  /// cumulative and can never decrease), the window watermark reflects
  /// only the most recent sample interval.
  size_t TakeQueueWatermarkWindow() {
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t w = window_watermark_;
    window_watermark_ = queue_.size();
    return w;
  }

  /// Adds to the late/dropped counter (wired by windowed operators from
  /// TumblingWindower::late_dropped()).
  void RecordLateDropped(uint64_t n) {
    std::lock_guard<std::mutex> lock(mutex_);
    late_dropped_ += n;
  }

  /// Consistent snapshot of this edge's counters. The stage name is filled
  /// in by the owning Pipeline.
  StageMetrics MetricsSnapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    StageMetrics m;
    m.capacity = capacity_;
    m.records_in = pushed_;
    m.records_out = popped_;
    m.batches_in = push_batches_;
    m.batches_out = pop_batches_;
    m.queue_high_watermark = high_watermark_;
    m.producer_blocked_ns = producer_blocked_ns_;
    m.consumer_blocked_ns = consumer_blocked_ns_;
    m.push_rejected = push_rejected_;
    m.dropped_on_cancel = dropped_on_cancel_;
    m.late_dropped = late_dropped_;
    m.cancelled = cancelled_;
    return m;
  }

 private:
  static uint64_t BlockedNsSince(std::chrono::steady_clock::time_point t0) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  /// Bumps the cumulative and per-window depth watermarks. Caller holds
  /// mutex_.
  void UpdateWatermarksLocked() {
    const uint64_t depth = queue_.size();
    if (depth > high_watermark_) high_watermark_ = depth;
    if (depth > window_watermark_) window_watermark_ = depth;
  }

  /// Moves up to max_n queued elements into *out. Caller holds mutex_.
  size_t DrainLocked(std::vector<T>* out, size_t max_n) {
    const size_t got = std::min(queue_.size(), max_n);
    for (size_t i = 0; i < got; ++i) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    popped_ += got;
    if (got > 0) ++pop_batches_;
    return got;
  }

  /// Wakeups sized to the number of resources released: a batch transfer
  /// that enqueues (or frees) k > 1 slots must wake every waiter —
  /// notify_one would hand the whole release to a single thread and
  /// strand the rest (each waiter consumes ≥ 1 resource, so notify_all
  /// over-waking is benign; under-waking deadlocks).
  void NotifyConsumers(size_t added) {
    if (added > 1) {
      not_empty_.notify_all();
    } else if (added == 1) {
      not_empty_.notify_one();
    }
  }

  void NotifyProducers(size_t freed) {
    if (freed > 1) {
      not_full_.notify_all();
    } else if (freed == 1) {
      not_full_.notify_one();
    }
  }

  size_t capacity_;  // elastic; guarded by mutex_ (see Resize)
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
  bool cancelled_ = false;
  // Metrics (guarded by mutex_).
  uint64_t pushed_ = 0;
  uint64_t popped_ = 0;
  uint64_t push_batches_ = 0;
  uint64_t pop_batches_ = 0;
  uint64_t high_watermark_ = 0;
  uint64_t window_watermark_ = 0;  // reset by TakeQueueWatermarkWindow()
  uint64_t producer_blocked_ns_ = 0;
  uint64_t consumer_blocked_ns_ = 0;
  uint64_t push_rejected_ = 0;
  uint64_t dropped_on_cancel_ = 0;
  uint64_t late_dropped_ = 0;
};

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_CHANNEL_H_
