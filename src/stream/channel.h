#ifndef TCMF_STREAM_CHANNEL_H_
#define TCMF_STREAM_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace tcmf::stream {

/// Bounded multi-producer/multi-consumer blocking queue with close
/// semantics: the stream-transport substrate standing in for Kafka topics.
/// Push blocks when full (backpressure); Pop blocks until an element is
/// available or the channel is closed and drained.
template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity = 1024) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks until there is room. Returns false when the channel is closed
  /// (the element is dropped).
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element arrives; nullopt when closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Marks the channel closed; consumers drain remaining elements then see
  /// nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_CHANNEL_H_
