#ifndef TCMF_STREAM_TUNING_H_
#define TCMF_STREAM_TUNING_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>

#include "stream/metrics.h"

namespace tcmf::stream {

/// Batch transport policy for dataflow operators — the per-edge knob set
/// of the stream substrate. The full written performance model (what each
/// knob does, how to read the metrics, how the adaptive controller
/// behaves) lives in docs/STREAM_TUNING.md.
///
/// Static mode: `max_batch` is the largest number of elements moved per
/// channel transfer (1 = the record-at-a-time path, bit-compatible with
/// the pre-batching runtime); `max_linger_ms` bounds how long a
/// partially-filled output batch may be held back waiting to fill up —
/// the classic throughput/latency linger knob (Kafka `linger.ms`). A
/// negative linger means "flush only when the batch is full or the
/// stream ends" (maximum amortization, unbounded staging latency).
///
/// Adaptive mode (`max_batch_cap > min_batch`, build with `Adaptive()`):
/// `max_batch` is only the *seed*; every operator edge gets a private
/// BatchTuner that re-targets the batch size inside
/// [min_batch, max_batch_cap] from the edge's own StageMetrics — no
/// hand-tuning per edge. When `min_batch == max_batch_cap` the policy
/// degenerates to the static policy `Batched(min_batch)`: no tuner is
/// created and no adjustments ever happen.
///
/// Batch boundaries — static, adaptive, or mid-run re-targeted — are
/// invisible to operators and to observers of the output: the
/// differential harness (tests/stream_batch_equiv_test.cc) proves every
/// {batch, capacity, parallelism, adaptivity} combination produces the
/// same output multiset as record-at-a-time execution.
struct BatchPolicy {
  size_t max_batch = 1;      ///< per-transfer element cap (adaptive: seed)
  int64_t max_linger_ms = 5; ///< partial-batch flush bound (<0 = never)

  // --- adaptive controller configuration (inert unless adaptive()) ---
  /// Lower bound of the tuner's search range.
  size_t min_batch = 1;
  /// Upper bound of the tuner's search range; 0 (or == min_batch)
  /// disables the controller entirely.
  size_t max_batch_cap = 0;
  /// Controller cadence: one sample/adjustment per this many records the
  /// producing stage pushes through the edge.
  uint64_t tune_every_records = 2048;
  /// Latency bound: when one consumer pop's worth of downstream work
  /// exceeds this, transport amortization is irrelevant (the consumer is
  /// compute/IO-bound, not lock-bound) and the tuner halves the target to
  /// cut batch-staging latency.
  double slow_batch_ms = 1.0;
  /// Growth gate: the tuner only raises the target while producers
  /// actually fill batches to at least this fraction of it (a trickling
  /// edge gains nothing from a bigger target).
  double fill_threshold = 0.5;
  /// Hill-climb step factors (next = target * factor, clamped).
  double increase_factor = 2.0;
  double decrease_factor = 0.5;
  /// Consecutive no-change samples before the tuner reports the target
  /// as converged (StageMetrics::tuner_converged_batch).
  uint32_t converge_after = 4;

  bool batched() const { return max_batch > 1 || adaptive(); }

  /// True when the adaptive controller has a non-degenerate search range.
  bool adaptive() const { return max_batch_cap > min_batch; }

  /// Upper bound a consumer should pass to PopBatch: popping up to the
  /// cap is always safe (DrainLocked takes what is queued), and adaptive
  /// consumers additionally track the live tuner target.
  size_t PopMax() const { return adaptive() ? max_batch_cap : max_batch; }

  /// Record-at-a-time transport (the default).
  static BatchPolicy Single() { return BatchPolicy{1, 0}; }

  /// Amortized transport: up to `max_batch` elements per lock
  /// acquisition, partial batches flushed after `linger_ms`.
  static BatchPolicy Batched(size_t max_batch = 64, int64_t linger_ms = 5) {
    return BatchPolicy{max_batch == 0 ? 1 : max_batch, linger_ms};
  }

  /// Self-tuning transport: starts at `seed_batch` and hill-climbs the
  /// per-edge target within [min_batch, max_batch_cap] from observed
  /// StageMetrics (see BatchTuner). `min_batch == max_batch_cap`
  /// degenerates to Batched(min_batch).
  static BatchPolicy Adaptive(size_t seed_batch = 16, size_t min_batch = 1,
                              size_t max_batch_cap = 1024,
                              int64_t linger_ms = 5) {
    BatchPolicy p;
    if (min_batch == 0) min_batch = 1;
    if (max_batch_cap < min_batch) max_batch_cap = min_batch;
    p.max_batch = std::clamp(seed_batch, min_batch, max_batch_cap);
    p.max_linger_ms = linger_ms;
    p.min_batch = min_batch;
    p.max_batch_cap = max_batch_cap;
    return p;
  }
};

/// A consistent snapshot of one edge's controller state (see
/// BatchTuner::Snapshot and the matching StageMetrics tuner_* fields).
struct TunerState {
  size_t target_batch = 0;    ///< current flush/pop target
  size_t min_batch = 0;       ///< search range lower bound
  size_t max_batch_cap = 0;   ///< search range upper bound
  uint64_t samples = 0;       ///< non-idle controller samples taken
  uint64_t adjust_up = 0;     ///< times the target was raised
  uint64_t adjust_down = 0;   ///< times the target was lowered
  size_t converged_batch = 0; ///< stable target (0 until converged)
  double last_mean_push_batch = 0.0; ///< mean push size, last window
  double last_pop_ms = 0.0;   ///< wall ms per consumer pop, last window
                              ///< (-1 when the consumer made no pops)
};

/// Per-edge adaptive batching controller: the auto-tuner behind
/// BatchPolicy::Adaptive(). One BatchTuner is attached to one channel
/// edge; the edge's *producer* drives it (OnRecords piggybacks on the
/// existing RunStage/BatchEmitter loop — no extra threads, no timers)
/// and both sides read the live target: the producer as its batch flush
/// threshold, the consumer as its PopBatch size.
///
/// Controller ("hill-climbing within [min_batch, max_batch_cap]"): every
/// `tune_every_records` records it samples the edge's StageMetrics,
/// computes window deltas, and applies one move —
///
///   1. BACK OFF (multiplicative decrease) when the consumer's wall time
///      per pop exceeds `slow_batch_ms`: downstream work per transfer
///      already dwarfs the lock cost, so a bigger batch buys no
///      throughput and only inflates batch-staging latency. This is the
///      slow-consumer phase-change response.
///   2. GROW (multiplicative increase, clamped to the cap) when
///      producers fill at least `fill_threshold` of the current target:
///      the edge is transfer-granularity-limited and a larger batch
///      amortizes the channel lock further.
///   3. HOLD otherwise; `converge_after` consecutive holds publish the
///      target as the converged batch size.
///
/// Every decision is observable: Pipeline::Report()/ReportJson() carry
/// the tuner state (target, adjustments up/down, converged size, last
/// window signals) in the edge's StageMetrics. The full derivation and
/// worked examples live in docs/STREAM_TUNING.md.
///
/// Thread safety: target() is a relaxed atomic read (hot path, both
/// sides); OnRecords may be called by several producer threads (shared
/// output edges — KeyedProcessParallel workers); sampling and state
/// snapshots serialize on an internal mutex.
class BatchTuner {
 public:
  /// `edge_snapshot` must return the owning channel's MetricsSnapshot();
  /// `policy` supplies the seed, range and controller knobs.
  BatchTuner(const BatchPolicy& policy,
             std::function<StageMetrics()> edge_snapshot)
      : policy_(policy),
        snapshot_(std::move(edge_snapshot)),
        target_(std::clamp(policy.max_batch, policy.min_batch,
                           policy.max_batch_cap)),
        last_time_(std::chrono::steady_clock::now()) {}

  BatchTuner(const BatchTuner&) = delete;
  BatchTuner& operator=(const BatchTuner&) = delete;

  /// Current per-transfer target. Producers flush staged batches at this
  /// size; consumers pop up to it.
  size_t target() const { return target_.load(std::memory_order_relaxed); }

  /// Producer-side hook: account `n` records moved through the edge and
  /// run one controller sample when the cadence is due. Cheap when not
  /// due (one relaxed fetch_add).
  void OnRecords(uint64_t n) {
    if (pending_.fetch_add(n, std::memory_order_relaxed) + n <
        policy_.tune_every_records) {
      return;
    }
    pending_.store(0, std::memory_order_relaxed);
    Sample();
  }

  /// Takes one controller sample immediately (normally driven by
  /// OnRecords; exposed for end-of-stream flushes and tests).
  void Sample() {
    const StageMetrics snap = snapshot_();
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(now - last_time_).count();
    const uint64_t d_rec_in = snap.records_in - last_.records_in;
    const uint64_t d_bat_in = snap.batches_in - last_.batches_in;
    const uint64_t d_bat_out = snap.batches_out - last_.batches_out;
    last_ = snap;
    last_time_ = now;
    if (wall_ms <= 0.0 || d_rec_in == 0) return;  // idle window: no evidence
    ++samples_;

    const double mean_push =
        d_bat_in ? static_cast<double>(d_rec_in) / d_bat_in : 0.0;
    const double pop_ms =
        d_bat_out ? wall_ms / d_bat_out
                  : std::numeric_limits<double>::infinity();
    last_mean_push_ = mean_push;
    last_pop_ms_ = pop_ms;

    const size_t cur = target_.load(std::memory_order_relaxed);
    size_t next = cur;
    if (pop_ms > policy_.slow_batch_ms) {
      // Slow consumer: back off, or hold at the floor. Growing here would
      // only add batch-staging latency (and oscillate at min_batch).
      if (cur > policy_.min_batch) {
        next = std::max(policy_.min_batch,
                        static_cast<size_t>(cur * policy_.decrease_factor));
        if (next < cur) ++adjust_down_;
      }
    } else if (cur < policy_.max_batch_cap &&
               mean_push >= policy_.fill_threshold * cur) {
      next = std::min(policy_.max_batch_cap,
                      std::max(cur + 1, static_cast<size_t>(
                                            cur * policy_.increase_factor)));
      if (next > cur) ++adjust_up_;
    }
    if (next != cur) {
      target_.store(next, std::memory_order_relaxed);
      holds_ = 0;
      converged_ = 0;
    } else if (converged_ == 0 && ++holds_ >= policy_.converge_after) {
      converged_ = cur;
    }
  }

  /// Consistent state snapshot (for reports and tests).
  TunerState Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    TunerState s;
    s.target_batch = target_.load(std::memory_order_relaxed);
    s.min_batch = policy_.min_batch;
    s.max_batch_cap = policy_.max_batch_cap;
    s.samples = samples_;
    s.adjust_up = adjust_up_;
    s.adjust_down = adjust_down_;
    s.converged_batch = converged_;
    s.last_mean_push_batch = last_mean_push_;
    s.last_pop_ms = std::isinf(last_pop_ms_) ? -1.0 : last_pop_ms_;
    return s;
  }

  /// Merges the tuner state into an edge's StageMetrics snapshot (wired
  /// by Pipeline::RegisterChannelStage so ReportJson exposes it).
  void FillStageMetrics(StageMetrics* m) const {
    const TunerState s = Snapshot();
    m->tuned = true;
    m->tuner_target_batch = s.target_batch;
    m->tuner_min_batch = s.min_batch;
    m->tuner_batch_cap = s.max_batch_cap;
    m->tuner_samples = s.samples;
    m->tuner_adjust_up = s.adjust_up;
    m->tuner_adjust_down = s.adjust_down;
    m->tuner_converged_batch = s.converged_batch;
    m->tuner_mean_push_batch = s.last_mean_push_batch;
    m->tuner_pop_ms = s.last_pop_ms;
  }

 private:
  const BatchPolicy policy_;
  const std::function<StageMetrics()> snapshot_;

  std::atomic<size_t> target_;
  std::atomic<uint64_t> pending_{0};  ///< records since the last sample

  mutable std::mutex mutex_;  // guards everything below
  StageMetrics last_;         ///< edge snapshot at the last sample
  std::chrono::steady_clock::time_point last_time_;
  uint64_t samples_ = 0;
  uint64_t adjust_up_ = 0;
  uint64_t adjust_down_ = 0;
  uint64_t holds_ = 0;
  size_t converged_ = 0;
  double last_mean_push_ = 0.0;
  double last_pop_ms_ = 0.0;
};

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_TUNING_H_
