#ifndef TCMF_STREAM_TUNING_H_
#define TCMF_STREAM_TUNING_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>

#include "stream/metrics.h"

namespace tcmf::stream {

/// Batch transport policy for dataflow operators — the per-edge knob set
/// of the stream substrate. The full written performance model (what each
/// knob does, how to read the metrics, how the adaptive controller
/// behaves) lives in docs/STREAM_TUNING.md.
///
/// Static mode: `max_batch` is the largest number of elements moved per
/// channel transfer (1 = the record-at-a-time path, bit-compatible with
/// the pre-batching runtime); `max_linger_ms` bounds how long a
/// partially-filled output batch may be held back waiting to fill up —
/// the classic throughput/latency linger knob (Kafka `linger.ms`). A
/// negative linger means "flush only when the batch is full or the
/// stream ends" (maximum amortization, unbounded staging latency).
///
/// Adaptive mode (`max_batch_cap > min_batch`, build with `Adaptive()`):
/// `max_batch` is only the *seed*; every operator edge gets a private
/// BatchTuner that re-targets the batch size inside
/// [min_batch, max_batch_cap] from the edge's own StageMetrics — no
/// hand-tuning per edge. When `min_batch == max_batch_cap` the policy
/// degenerates to the static policy `Batched(min_batch)`: no tuner is
/// created and no adjustments ever happen.
///
/// Batch boundaries — static, adaptive, or mid-run re-targeted — are
/// invisible to operators and to observers of the output: the
/// differential harness (tests/stream_batch_equiv_test.cc) proves every
/// {batch, capacity, parallelism, adaptivity} combination produces the
/// same output multiset as record-at-a-time execution.
struct BatchPolicy {
  size_t max_batch = 1;      ///< per-transfer element cap (adaptive: seed)
  int64_t max_linger_ms = 5; ///< partial-batch flush bound (<0 = never)

  /// Worst-case *staging* latency contract for this edge, in ms (<0 = no
  /// contract). When set, the effective linger applied to a partial batch
  /// shrinks as the batch target grows:
  ///
  ///   effective_linger = min(max_linger_ms,
  ///                          latency_budget_ms - predicted_fill_ms)
  ///
  /// where predicted_fill_ms = target / observed_fill_rate is the time the
  /// batch is expected to keep staging records before it fills naturally
  /// (taken from the edge's BatchTuner rate estimate; 0 without a tuner).
  /// So `fill time + residual linger <= budget` holds by construction and
  /// the worst-case time a record spends staged producer-side stays
  /// bounded by contract even when the adaptive controller drives the
  /// target up. A budget alone (max_linger_ms < 0) also enables timed
  /// flushes, bounded by the budget. Derivation: docs/STREAM_TUNING.md.
  int64_t latency_budget_ms = -1;

  // --- adaptive controller configuration (inert unless adaptive()) ---
  /// Lower bound of the tuner's search range.
  size_t min_batch = 1;
  /// Upper bound of the tuner's search range; 0 (or == min_batch)
  /// disables the controller entirely.
  size_t max_batch_cap = 0;
  /// Controller cadence: one sample/adjustment per this many records the
  /// producing stage pushes through the edge.
  uint64_t tune_every_records = 2048;
  /// Latency bound: when one consumer pop's worth of downstream work
  /// exceeds this, transport amortization is irrelevant (the consumer is
  /// compute/IO-bound, not lock-bound) and the tuner halves the target to
  /// cut batch-staging latency.
  double slow_batch_ms = 1.0;
  /// Back-off gate: a slow-pop window only triggers back-off when the
  /// consumer spent LESS than this fraction of the window blocked waiting
  /// for input. A starved edge (consumer mostly parked in Pop) shows a
  /// large wall-time-per-pop too, but that is arrival-limited, not
  /// work-limited — shrinking its target buys nothing. The per-partition
  /// edges of a skewed keyed fan-out rely on this: cold partitions starve
  /// while the hot worker grinds, and without the gate every cold edge
  /// would back off in sympathy with the hot one.
  double backoff_max_starved_fraction = 0.5;
  /// Growth gate: the tuner only raises the target while producers
  /// actually fill batches to at least this fraction of it (a trickling
  /// edge gains nothing from a bigger target).
  double fill_threshold = 0.5;
  /// Hill-climb step factors (next = target * factor, clamped).
  double increase_factor = 2.0;
  double decrease_factor = 0.5;
  /// Consecutive no-change samples before the tuner reports the target
  /// as converged (StageMetrics::tuner_converged_batch).
  uint32_t converge_after = 4;

  bool batched() const { return max_batch > 1 || adaptive(); }

  /// True when the adaptive controller has a non-degenerate search range.
  bool adaptive() const { return max_batch_cap > min_batch; }

  /// True when partial batches are flushed on a timer: either the classic
  /// linger knob or a latency budget gives the staging buffer a deadline.
  bool LingerEnabled() const {
    return max_linger_ms >= 0 || latency_budget_ms >= 0;
  }

  /// Fluent copy with a staging-latency contract attached.
  BatchPolicy WithLatencyBudget(int64_t budget_ms) const {
    BatchPolicy p = *this;
    p.latency_budget_ms = budget_ms;
    return p;
  }

  /// Upper bound a consumer should pass to PopBatch: popping up to the
  /// cap is always safe (DrainLocked takes what is queued), and adaptive
  /// consumers additionally track the live tuner target.
  size_t PopMax() const { return adaptive() ? max_batch_cap : max_batch; }

  /// Record-at-a-time transport (the default).
  static BatchPolicy Single() { return BatchPolicy{1, 0}; }

  /// Amortized transport: up to `max_batch` elements per lock
  /// acquisition, partial batches flushed after `linger_ms`.
  static BatchPolicy Batched(size_t max_batch = 64, int64_t linger_ms = 5) {
    return BatchPolicy{max_batch == 0 ? 1 : max_batch, linger_ms};
  }

  /// Self-tuning transport: starts at `seed_batch` and hill-climbs the
  /// per-edge target within [min_batch, max_batch_cap] from observed
  /// StageMetrics (see BatchTuner). `min_batch == max_batch_cap`
  /// degenerates to Batched(min_batch).
  static BatchPolicy Adaptive(size_t seed_batch = 16, size_t min_batch = 1,
                              size_t max_batch_cap = 1024,
                              int64_t linger_ms = 5) {
    BatchPolicy p;
    if (min_batch == 0) min_batch = 1;
    if (max_batch_cap < min_batch) max_batch_cap = min_batch;
    p.max_batch = std::clamp(seed_batch, min_batch, max_batch_cap);
    p.max_linger_ms = linger_ms;
    p.min_batch = min_batch;
    p.max_batch_cap = max_batch_cap;
    return p;
  }
};

/// Elastic channel-capacity policy — the second half of the transport
/// self-tuning loop (batch target = records per transfer; capacity =
/// records in flight). Inert by default (`adaptive()` false: the channel
/// keeps its constructed bound forever). With a non-degenerate range
/// (build with `Adaptive()`), the edge gets a CapacityTuner that resizes
/// the channel bound from the same per-window evidence the BatchTuner
/// samples:
///
///   - GROW (x grow_factor, clamped to max_capacity) when the queue
///     *saturated* during the window (per-window depth watermark reached
///     the bound) AND producers spent at least `grow_blocked_fraction` of
///     the window wall time blocked in Push — i.e. the bound itself is
///     the bottleneck, so memory buys throughput.
///   - SHRINK (x shrink_factor, clamped to min_capacity) after
///     `shrink_after` consecutive windows in which the depth watermark
///     stayed below `shallow_fraction` of the bound — the queue never
///     gets deep, so the memory is dead weight.
///   - HOLD otherwise; `converge_after` consecutive holds publish the
///     bound as converged (StageMetrics::capacity_converged).
struct CapacityPolicy {
  /// Resize range; max_capacity == min_capacity (or 0/0, the default)
  /// disables the controller entirely.
  size_t min_capacity = 0;
  size_t max_capacity = 0;
  /// Grow gate: fraction of window wall time producers must have spent
  /// blocked (full queue) for a saturated window to trigger a grow.
  double grow_blocked_fraction = 0.10;
  /// Shrink gate: windows whose depth watermark stays below this fraction
  /// of the bound count as shallow.
  double shallow_fraction = 0.25;
  /// Consecutive shallow windows before the bound is shrunk (one deep
  /// burst resets the streak, so transient spikes keep their headroom).
  uint32_t shrink_after = 2;
  /// Multiplicative resize step factors.
  double grow_factor = 2.0;
  double shrink_factor = 0.5;
  /// Consecutive no-resize windows before the bound is published as
  /// converged.
  uint32_t converge_after = 4;

  /// True when the controller has a non-degenerate resize range.
  bool adaptive() const { return max_capacity > min_capacity; }

  /// Self-tuning capacity within [min_capacity, max_capacity].
  static CapacityPolicy Adaptive(size_t min_capacity = 64,
                                 size_t max_capacity = 8192) {
    CapacityPolicy p;
    if (min_capacity == 0) min_capacity = 1;
    if (max_capacity < min_capacity) max_capacity = min_capacity;
    p.min_capacity = min_capacity;
    p.max_capacity = max_capacity;
    return p;
  }
};

/// A consistent snapshot of one edge's capacity-controller state (see
/// CapacityTuner::Snapshot and the StageMetrics capacity_* fields).
struct CapacityState {
  size_t capacity = 0;        ///< current queue-depth bound
  size_t min_capacity = 0;    ///< resize range lower bound
  size_t max_capacity = 0;    ///< resize range upper bound
  uint64_t windows = 0;       ///< non-idle windows observed
  uint64_t resize_up = 0;     ///< times the bound was grown
  uint64_t resize_down = 0;   ///< times the bound was shrunk
  size_t converged = 0;       ///< stable bound (0 until converged)
};

/// Per-edge elastic capacity controller: the auto-tuner behind
/// CapacityPolicy::Adaptive(). It owns no thread and takes no samples of
/// its own — it piggybacks on the BatchTuner's sample windows (see
/// BatchTuner::AttachCapacityTuner): once per window it receives the
/// producer-blocked-ns delta and window wall time, pulls the channel's
/// per-window depth watermark, and applies at most one resize through the
/// type-erased `resize` callback (Channel<T>::Resize — performed under
/// the channel lock with notify_all re-notification of blocked
/// producers). Type-erased so the tuner itself is template-free and one
/// implementation serves every Channel<T>.
class CapacityTuner {
 public:
  /// `seed_capacity` is the channel's constructed bound (clamped into the
  /// policy range — the clamp is applied through `resize` immediately so
  /// the channel and controller agree). `take_window_watermark` must be
  /// Channel::TakeQueueWatermarkWindow; `resize` must be Channel::Resize.
  CapacityTuner(const CapacityPolicy& policy, size_t seed_capacity,
                std::function<void(size_t)> resize,
                std::function<size_t()> take_window_watermark)
      : policy_(policy),
        resize_(std::move(resize)),
        take_window_watermark_(std::move(take_window_watermark)),
        capacity_(policy.adaptive()
                      ? std::clamp(seed_capacity, policy.min_capacity,
                                   policy.max_capacity)
                      : seed_capacity) {
    if (policy_.adaptive() && capacity_ != seed_capacity) resize_(capacity_);
  }

  CapacityTuner(const CapacityTuner&) = delete;
  CapacityTuner& operator=(const CapacityTuner&) = delete;

  /// Current bound as the controller believes it (mirrors the channel).
  size_t capacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
  }

  /// One controller window: `d_blocked_ns` is the producer-blocked-ns
  /// delta over the window, `wall_ms` its wall-clock length. Applies at
  /// most one resize. Driven by BatchTuner::Sample (same cadence, same
  /// idle-window skip); callable directly in tests.
  void OnWindow(uint64_t d_blocked_ns, double wall_ms) {
    if (!policy_.adaptive() || wall_ms <= 0.0) return;
    const size_t watermark = take_window_watermark_();
    size_t apply = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++windows_;
      const double blocked_fraction =
          static_cast<double>(d_blocked_ns) / (wall_ms * 1e6);
      const size_t cur = capacity_;
      size_t next = cur;
      if (watermark >= cur &&
          blocked_fraction >= policy_.grow_blocked_fraction) {
        shallow_streak_ = 0;
        if (cur < policy_.max_capacity) {
          next = std::min(
              policy_.max_capacity,
              std::max(cur + 1,
                       static_cast<size_t>(cur * policy_.grow_factor)));
          if (next > cur) ++resize_up_;
        }
      } else if (watermark <
                 static_cast<size_t>(policy_.shallow_fraction * cur)) {
        if (++shallow_streak_ >= policy_.shrink_after &&
            cur > policy_.min_capacity) {
          next = std::max(
              policy_.min_capacity,
              static_cast<size_t>(cur * policy_.shrink_factor));
          shallow_streak_ = 0;
          if (next < cur) ++resize_down_;
        }
      } else {
        shallow_streak_ = 0;
      }
      if (next != cur) {
        capacity_ = next;
        apply = next;
        holds_ = 0;
        converged_ = 0;
      } else if (converged_ == 0 && ++holds_ >= policy_.converge_after) {
        converged_ = cur;
      }
    }
    if (apply != 0) resize_(apply);
  }

  /// Consistent state snapshot (for reports and tests).
  CapacityState Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    CapacityState s;
    s.capacity = capacity_;
    s.min_capacity = policy_.min_capacity;
    s.max_capacity = policy_.max_capacity;
    s.windows = windows_;
    s.resize_up = resize_up_;
    s.resize_down = resize_down_;
    s.converged = converged_;
    return s;
  }

  /// Merges the controller state into an edge's StageMetrics snapshot.
  void FillStageMetrics(StageMetrics* m) const {
    const CapacityState s = Snapshot();
    m->capacity_tuned = true;
    m->capacity_min = s.min_capacity;
    m->capacity_max = s.max_capacity;
    m->capacity_resize_up = s.resize_up;
    m->capacity_resize_down = s.resize_down;
    m->capacity_converged = s.converged;
  }

 private:
  const CapacityPolicy policy_;
  const std::function<void(size_t)> resize_;
  const std::function<size_t()> take_window_watermark_;

  mutable std::mutex mutex_;  // guards everything below
  size_t capacity_;
  uint64_t windows_ = 0;
  uint64_t resize_up_ = 0;
  uint64_t resize_down_ = 0;
  uint32_t shallow_streak_ = 0;
  uint32_t holds_ = 0;
  size_t converged_ = 0;
};

/// A consistent snapshot of one edge's controller state (see
/// BatchTuner::Snapshot and the matching StageMetrics tuner_* fields).
struct TunerState {
  size_t target_batch = 0;    ///< current flush/pop target
  size_t min_batch = 0;       ///< search range lower bound
  size_t max_batch_cap = 0;   ///< search range upper bound
  uint64_t samples = 0;       ///< non-idle controller samples taken
  uint64_t adjust_up = 0;     ///< times the target was raised
  uint64_t adjust_down = 0;   ///< times the target was lowered
  size_t converged_batch = 0; ///< stable target (0 until converged)
  double last_mean_push_batch = 0.0; ///< mean push size, last window
  double last_pop_ms = 0.0;   ///< wall ms per consumer pop, last window
                              ///< (-1 when the consumer made no pops)
};

/// Per-edge adaptive batching controller: the auto-tuner behind
/// BatchPolicy::Adaptive(). One BatchTuner is attached to one channel
/// edge; the edge's *producer* drives it (OnRecords piggybacks on the
/// existing RunStage/BatchEmitter loop — no extra threads, no timers)
/// and both sides read the live target: the producer as its batch flush
/// threshold, the consumer as its PopBatch size.
///
/// Controller ("hill-climbing within [min_batch, max_batch_cap]"): every
/// `tune_every_records` records it samples the edge's StageMetrics,
/// computes window deltas, and applies one move —
///
///   1. BACK OFF (multiplicative decrease) when the consumer's wall time
///      per pop exceeds `slow_batch_ms`: downstream work per transfer
///      already dwarfs the lock cost, so a bigger batch buys no
///      throughput and only inflates batch-staging latency. This is the
///      slow-consumer phase-change response.
///   2. GROW (multiplicative increase, clamped to the cap) when
///      producers fill at least `fill_threshold` of the current target:
///      the edge is transfer-granularity-limited and a larger batch
///      amortizes the channel lock further.
///   3. HOLD otherwise; `converge_after` consecutive holds publish the
///      target as the converged batch size.
///
/// Every decision is observable: Pipeline::Report()/ReportJson() carry
/// the tuner state (target, adjustments up/down, converged size, last
/// window signals) in the edge's StageMetrics. The full derivation and
/// worked examples live in docs/STREAM_TUNING.md.
///
/// Thread safety: target() is a relaxed atomic read (hot path, both
/// sides); OnRecords may be called by several producer threads (shared
/// output edges — KeyedProcessParallel workers); sampling and state
/// snapshots serialize on an internal mutex.
class BatchTuner {
 public:
  /// `edge_snapshot` must return the owning channel's MetricsSnapshot();
  /// `policy` supplies the seed, range and controller knobs.
  BatchTuner(const BatchPolicy& policy,
             std::function<StageMetrics()> edge_snapshot)
      : policy_(policy),
        snapshot_(std::move(edge_snapshot)),
        target_(policy.adaptive()
                    ? std::clamp(policy.max_batch, policy.min_batch,
                                 policy.max_batch_cap)
                    : std::max<size_t>(1, policy.max_batch)),
        last_time_(std::chrono::steady_clock::now()) {}

  BatchTuner(const BatchTuner&) = delete;
  BatchTuner& operator=(const BatchTuner&) = delete;

  /// Current per-transfer target. Producers flush staged batches at this
  /// size; consumers pop up to it.
  size_t target() const { return target_.load(std::memory_order_relaxed); }

  /// Records-per-millisecond fill-rate estimate from the last non-idle
  /// window (0 until the first sample). The latency-budget linger uses
  /// this to predict how long the current batch target takes to fill.
  double rate_per_ms() const {
    return rate_per_ms_.load(std::memory_order_relaxed);
  }

  /// Attaches the elastic-capacity controller for this edge: every
  /// non-idle sample window additionally drives one CapacityTuner window
  /// (same cadence, no extra threads). Call before the edge starts
  /// moving records (MakeTuner wires this at pipeline-build time).
  void AttachCapacityTuner(std::shared_ptr<CapacityTuner> capacity_tuner) {
    capacity_tuner_ = std::move(capacity_tuner);
  }

  /// The attached capacity controller, if any.
  const std::shared_ptr<CapacityTuner>& capacity_tuner() const {
    return capacity_tuner_;
  }

  /// Producer-side hook: account `n` records moved through the edge and
  /// run one controller sample when the cadence is due. Cheap when not
  /// due (one relaxed fetch_add).
  void OnRecords(uint64_t n) {
    if (pending_.fetch_add(n, std::memory_order_relaxed) + n <
        policy_.tune_every_records) {
      return;
    }
    pending_.store(0, std::memory_order_relaxed);
    Sample();
  }

  /// Takes one controller sample immediately (normally driven by
  /// OnRecords; exposed for end-of-stream flushes and tests).
  void Sample() {
    const StageMetrics snap = snapshot_();
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(now - last_time_).count();
    const uint64_t d_rec_in = snap.records_in - last_.records_in;
    const uint64_t d_bat_in = snap.batches_in - last_.batches_in;
    const uint64_t d_bat_out = snap.batches_out - last_.batches_out;
    const uint64_t d_blocked_ns =
        snap.producer_blocked_ns - last_.producer_blocked_ns;
    const uint64_t d_cons_blocked_ns =
        snap.consumer_blocked_ns - last_.consumer_blocked_ns;
    last_ = snap;
    last_time_ = now;
    if (wall_ms <= 0.0 || d_rec_in == 0) return;  // idle window: no evidence
    ++samples_;
    rate_per_ms_.store(static_cast<double>(d_rec_in) / wall_ms,
                       std::memory_order_relaxed);

    const double mean_push =
        d_bat_in ? static_cast<double>(d_rec_in) / d_bat_in : 0.0;
    const double pop_ms =
        d_bat_out ? wall_ms / d_bat_out
                  : std::numeric_limits<double>::infinity();
    last_mean_push_ = mean_push;
    last_pop_ms_ = pop_ms;

    if (policy_.adaptive()) {
      const size_t cur = target_.load(std::memory_order_relaxed);
      size_t next = cur;
      const double starved_fraction =
          static_cast<double>(d_cons_blocked_ns) / (wall_ms * 1e6);
      if (pop_ms > policy_.slow_batch_ms &&
          starved_fraction < policy_.backoff_max_starved_fraction) {
        // Slow consumer: back off, or hold at the floor. Growing here
        // would only add batch-staging latency (and oscillate at
        // min_batch). A *starved* consumer is exempt: its pops are rare
        // because records trickle in, not because each pop's work is
        // heavy — the cold partitions of a skewed keyed fan-out would
        // otherwise back off in sympathy with the hot one.
        if (cur > policy_.min_batch) {
          next = std::max(policy_.min_batch,
                          static_cast<size_t>(cur * policy_.decrease_factor));
          if (next < cur) ++adjust_down_;
        }
      } else if (cur < policy_.max_batch_cap &&
                 mean_push >= policy_.fill_threshold * cur) {
        next = std::min(policy_.max_batch_cap,
                        std::max(cur + 1,
                                 static_cast<size_t>(
                                     cur * policy_.increase_factor)));
        if (next > cur) ++adjust_up_;
      }
      if (next != cur) {
        target_.store(next, std::memory_order_relaxed);
        holds_ = 0;
        converged_ = 0;
      } else if (converged_ == 0 && ++holds_ >= policy_.converge_after) {
        converged_ = cur;
      }
    }

    // Piggyback: one elastic-capacity window per batch-tuner sample. The
    // capacity controller sees the same evidence interval (producer
    // blocked-ns delta + wall time) plus the channel's per-window depth
    // watermark, which it pulls itself.
    if (capacity_tuner_) capacity_tuner_->OnWindow(d_blocked_ns, wall_ms);
  }

  /// Consistent state snapshot (for reports and tests).
  TunerState Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    TunerState s;
    s.target_batch = target_.load(std::memory_order_relaxed);
    s.min_batch = policy_.min_batch;
    s.max_batch_cap = policy_.max_batch_cap;
    s.samples = samples_;
    s.adjust_up = adjust_up_;
    s.adjust_down = adjust_down_;
    s.converged_batch = converged_;
    s.last_mean_push_batch = last_mean_push_;
    s.last_pop_ms = std::isinf(last_pop_ms_) ? -1.0 : last_pop_ms_;
    return s;
  }

  /// Merges the tuner state into an edge's StageMetrics snapshot (wired
  /// by Pipeline::RegisterChannelStage so ReportJson exposes it). The
  /// batch-tuner block is published only when the *batch* controller is
  /// live; a capacity-only tuner reports just the capacity_* block.
  void FillStageMetrics(StageMetrics* m) const {
    if (policy_.adaptive()) {
      const TunerState s = Snapshot();
      m->tuned = true;
      m->tuner_target_batch = s.target_batch;
      m->tuner_min_batch = s.min_batch;
      m->tuner_batch_cap = s.max_batch_cap;
      m->tuner_samples = s.samples;
      m->tuner_adjust_up = s.adjust_up;
      m->tuner_adjust_down = s.adjust_down;
      m->tuner_converged_batch = s.converged_batch;
      m->tuner_mean_push_batch = s.last_mean_push_batch;
      m->tuner_pop_ms = s.last_pop_ms;
    }
    if (capacity_tuner_) capacity_tuner_->FillStageMetrics(m);
  }

 private:
  const BatchPolicy policy_;
  const std::function<StageMetrics()> snapshot_;
  /// Optional elastic-capacity controller, driven from Sample(). Set once
  /// at pipeline-build time (AttachCapacityTuner), before records flow.
  std::shared_ptr<CapacityTuner> capacity_tuner_;

  std::atomic<size_t> target_;
  std::atomic<uint64_t> pending_{0};  ///< records since the last sample
  std::atomic<double> rate_per_ms_{0.0};  ///< last-window fill rate

  mutable std::mutex mutex_;  // guards everything below
  StageMetrics last_;         ///< edge snapshot at the last sample
  std::chrono::steady_clock::time_point last_time_;
  uint64_t samples_ = 0;
  uint64_t adjust_up_ = 0;
  uint64_t adjust_down_ = 0;
  uint64_t holds_ = 0;
  size_t converged_ = 0;
  double last_mean_push_ = 0.0;
  double last_pop_ms_ = 0.0;
};

/// Skew-aware aggregate over a keyed stage's partition-edge snapshots
/// (StageMetrics::worker_edges). The per-edge controllers are independent
/// by construction — a hot partition backs off on its own slow-pop
/// evidence while the starvation gate (BatchPolicy::
/// backoff_max_starved_fraction) keeps cold edges from shrinking in
/// sympathy — so aggregation here is pure reporting: it must classify
/// edges against the record distribution instead of averaging controller
/// state away (a mean target over one hot and three cold edges describes
/// no edge at all).
struct WorkerEdgeSkew {
  size_t edges = 0;          ///< partition edges summarized
  size_t hot_edges = 0;      ///< edges with records_in ≥ hot_factor × mean
  uint64_t hot_records = 0;  ///< records_in summed over the hot edges
  double mean_records = 0.0; ///< mean records_in across all edges
  double skew_ratio = 0.0;   ///< hottest edge / mean (WorkerEdgeSkewRatio)
  size_t min_target = 0;     ///< smallest live tuner target across edges
  size_t max_target = 0;     ///< largest live tuner target across edges
  uint64_t hot_adjust_down = 0;   ///< back-offs taken by hot edges
  uint64_t cold_adjust_down = 0;  ///< back-offs taken by cold edges
};

/// Classifies each partition edge as hot (records_in ≥ `hot_factor` ×
/// the mean across edges) or cold and splits the controllers' back-off
/// counts accordingly. A healthy skewed stage shows hot_adjust_down > 0
/// with cold_adjust_down == 0: the hot worker's edge shrank its batch
/// target (slow-pop evidence) and the cold edges held theirs.
inline WorkerEdgeSkew SummarizeWorkerEdges(
    const std::vector<StageMetrics>& edges, double hot_factor = 2.0) {
  WorkerEdgeSkew s;
  s.edges = edges.size();
  if (edges.empty()) return s;
  uint64_t total = 0;
  for (const StageMetrics& e : edges) total += e.records_in;
  s.mean_records = static_cast<double>(total) / edges.size();
  s.skew_ratio = WorkerEdgeSkewRatio(edges);
  for (const StageMetrics& e : edges) {
    const bool hot = s.mean_records > 0.0 &&
                     static_cast<double>(e.records_in) >=
                         hot_factor * s.mean_records;
    if (hot) {
      ++s.hot_edges;
      s.hot_records += e.records_in;
      s.hot_adjust_down += e.tuner_adjust_down;
    } else {
      s.cold_adjust_down += e.tuner_adjust_down;
    }
    if (e.tuned) {
      if (s.min_target == 0 || e.tuner_target_batch < s.min_target) {
        s.min_target = e.tuner_target_batch;
      }
      s.max_target = std::max<size_t>(s.max_target, e.tuner_target_batch);
    }
  }
  return s;
}

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_TUNING_H_
