#ifndef TCMF_STREAM_SHARDED_H_
#define TCMF_STREAM_SHARDED_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stream/metrics.h"
#include "stream/pipeline.h"

namespace tcmf::stream {

/// Scale-out runner: N structurally identical Pipeline instances — one
/// per topic partition / key shard — behind a single facade. This is the
/// process-per-partition execution model of the paper's Kafka+Flink
/// substrate collapsed into one address space: records are routed to a
/// shard by key hash (tcmf::Mix64, the same mixer the partitioned-topic
/// producers use), each shard runs the full stage graph over its key
/// range, and because a key never crosses shards, per-key semantics
/// (stateful folds, windows, per-key order) are exactly those of the
/// single-pipeline run.
///
/// Usage:
///
///   ShardedPipeline sp(4, {.batch = BatchPolicy::Adaptive()});
///   sp.Build([&](Pipeline* p, size_t shard) {
///     auto flow = mlog::PartitionedLogSource(p, topic, shard,
///                                            {.stage = sp.options()});
///     ... same per-shard graph, using sp.options() as the stage
///     defaults ...
///   });
///   sp.Run();
///   std::string merged = sp.ReportJson();
///
/// Builders give the same logical stage the same `name` in every shard;
/// the merged report aggregates rows by name (AggregateStageMetrics) and
/// keeps the per-shard breakdown alongside. Threads start as each
/// shard's graph is built (Pipeline semantics); Run() joins them all, so
/// shards execute concurrently.
class ShardedPipeline {
 public:
  /// `defaults` is the facade's StageOptions template: one place to
  /// configure batching/capacity/latency-budget for every stage of every
  /// shard (builders fetch it via options() and override per stage).
  explicit ShardedPipeline(size_t shards, StageOptions defaults = {})
      : defaults_(std::move(defaults)) {
    if (shards == 0) shards = 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Pipeline>());
    }
  }

  size_t shard_count() const { return shards_.size(); }

  /// Shard `i`'s pipeline (for ad-hoc inspection; graphs are normally
  /// built through Build).
  Pipeline* shard(size_t i) { return shards_[i].get(); }

  /// The facade's per-stage defaults. Copy, then override per stage.
  const StageOptions& options() const { return defaults_; }

  /// Instantiates the graph on every shard: `build(pipeline, shard)` runs
  /// once per shard, in shard order. Stage threads are live as soon as
  /// each operator is built.
  void Build(const std::function<void(Pipeline*, size_t)>& build) {
    for (size_t i = 0; i < shards_.size(); ++i) build(shards_[i].get(), i);
  }

  /// Joins every shard's stage threads; idempotent.
  void Run() {
    for (auto& p : shards_) p->Run();
  }

  /// Per-shard snapshots, shard-major (result[i] = shard i's Report()).
  std::vector<std::vector<StageMetrics>> PerShardReport() const {
    std::vector<std::vector<StageMetrics>> out;
    out.reserve(shards_.size());
    for (const auto& p : shards_) out.push_back(p->Report());
    return out;
  }

  /// Merged per-stage rows: same-named stages across shards aggregated
  /// with AggregateStageMetrics, in first-registration order.
  std::vector<StageMetrics> AggregateReport() const {
    std::vector<std::string> order;
    std::unordered_map<std::string, std::vector<StageMetrics>> by_name;
    for (const auto& p : shards_) {
      for (StageMetrics& m : p->Report()) {
        auto [it, inserted] = by_name.try_emplace(m.stage);
        if (inserted) order.push_back(m.stage);
        it->second.push_back(std::move(m));
      }
    }
    std::vector<StageMetrics> out;
    out.reserve(order.size());
    for (const std::string& name : order) {
      out.push_back(AggregateStageMetrics(name, by_name[name]));
    }
    return out;
  }

  /// Printable aggregate table (one merged row per logical stage).
  std::string ReportString() const {
    return StageMetricsTable(AggregateReport());
  }

  /// Longest shard uptime (see Pipeline::uptime_ms) — the facade's wall
  /// running time, since shards execute concurrently.
  int64_t uptime_ms() const {
    int64_t max_ms = 0;
    for (const auto& shard : shards_) {
      max_ms = std::max(max_ms, shard->uptime_ms());
    }
    return max_ms;
  }

  /// Merged report:
  ///   {"shards":N,"uptime_ms":..,
  ///    "aggregate":[<merged stage rows>],
  ///    "per_shard":[{"shard":0,"stages":[...]}, ...]}
  std::string ReportJson() const {
    std::string out = "{\"shards\":" + std::to_string(shards_.size());
    out += ",\"uptime_ms\":" + std::to_string(uptime_ms());
    out += ",\"aggregate\":";
    out += StageMetricsJson(AggregateReport());
    out += ",\"per_shard\":[";
    const auto per_shard = PerShardReport();
    for (size_t i = 0; i < per_shard.size(); ++i) {
      if (i) out += ',';
      out += "{\"shard\":" + std::to_string(i) + ",\"stages\":";
      out += StageMetricsJson(per_shard[i]);
      out += '}';
    }
    out += "]}";
    return out;
  }

 private:
  StageOptions defaults_;
  std::vector<std::unique_ptr<Pipeline>> shards_;
};

}  // namespace tcmf::stream

#endif  // TCMF_STREAM_SHARDED_H_
