#include "geom/stcell.h"

#include <algorithm>

namespace tcmf::geom {

namespace {

// Spreads the low 16 bits of x so there is a zero bit between each.
uint32_t SpreadBits16(uint32_t x) {
  x &= 0x0000FFFF;
  x = (x | (x << 8)) & 0x00FF00FF;
  x = (x | (x << 4)) & 0x0F0F0F0F;
  x = (x | (x << 2)) & 0x33333333;
  x = (x | (x << 1)) & 0x55555555;
  return x;
}

uint16_t CompactBits16(uint32_t x) {
  x &= 0x55555555;
  x = (x | (x >> 1)) & 0x33333333;
  x = (x | (x >> 2)) & 0x0F0F0F0F;
  x = (x | (x >> 4)) & 0x00FF00FF;
  x = (x | (x >> 8)) & 0x0000FFFF;
  return static_cast<uint16_t>(x);
}

}  // namespace

uint32_t MortonInterleave16(uint16_t x, uint16_t y) {
  return SpreadBits16(x) | (SpreadBits16(y) << 1);
}

void MortonDeinterleave16(uint32_t z, uint16_t* x, uint16_t* y) {
  *x = CompactBits16(z);
  *y = CompactBits16(z >> 1);
}

StCellEncoder::StCellEncoder(const BBox& extent, uint32_t bits, TimeMs t0,
                             TimeMs slot_ms)
    : extent_(extent),
      bits_(std::min<uint32_t>(bits, 16)),
      t0_(t0),
      slot_ms_(slot_ms <= 0 ? 1 : slot_ms) {}

uint64_t StCellEncoder::Encode(double lon, double lat, TimeMs t) const {
  uint32_t n = side();
  double fx = (lon - extent_.min_lon) / extent_.width() * n;
  double fy = (lat - extent_.min_lat) / extent_.height() * n;
  int64_t cx = std::clamp<int64_t>(static_cast<int64_t>(fx), 0, n - 1);
  int64_t cy = std::clamp<int64_t>(static_cast<int64_t>(fy), 0, n - 1);
  int64_t slot = (t - t0_) / slot_ms_;
  slot = std::clamp<int64_t>(slot, 0, 0xFFFF);
  uint32_t z = MortonInterleave16(static_cast<uint16_t>(cx),
                                  static_cast<uint16_t>(cy));
  return (static_cast<uint64_t>(slot) << 32) | z;
}

StCellEncoder::Cell StCellEncoder::Decode(uint64_t id) const {
  uint16_t cx, cy;
  MortonDeinterleave16(static_cast<uint32_t>(id & 0xFFFFFFFF), &cx, &cy);
  uint64_t slot = (id >> 32) & 0xFFFF;
  uint32_t n = side();
  double cw = extent_.width() / n;
  double ch = extent_.height() / n;
  Cell out;
  out.bounds.min_lon = extent_.min_lon + cx * cw;
  out.bounds.max_lon = out.bounds.min_lon + cw;
  out.bounds.min_lat = extent_.min_lat + cy * ch;
  out.bounds.max_lat = out.bounds.min_lat + ch;
  out.t_begin = t0_ + static_cast<TimeMs>(slot) * slot_ms_;
  out.t_end = out.t_begin + slot_ms_;
  return out;
}

bool StCellEncoder::MayIntersect(uint64_t id, const StBox& box) const {
  // Integer-only comparison: reconstruct cell coordinates, compare against
  // the box's precomputed cell range. Cheap relative to decoding geometry.
  uint16_t cx, cy;
  MortonDeinterleave16(static_cast<uint32_t>(id & 0xFFFFFFFF), &cx, &cy);
  int64_t slot = static_cast<int64_t>((id >> 32) & 0xFFFF);

  uint32_t n = side();
  double cw = extent_.width() / n;
  double ch = extent_.height() / n;
  int64_t c0 = static_cast<int64_t>((box.bounds.min_lon - extent_.min_lon) / cw);
  int64_t c1 = static_cast<int64_t>((box.bounds.max_lon - extent_.min_lon) / cw);
  int64_t r0 = static_cast<int64_t>((box.bounds.min_lat - extent_.min_lat) / ch);
  int64_t r1 = static_cast<int64_t>((box.bounds.max_lat - extent_.min_lat) / ch);
  int64_t s0 = (box.t_begin - t0_) / slot_ms_;
  int64_t s1 = (box.t_end - t0_) / slot_ms_;
  return cx >= c0 && cx <= c1 && cy >= r0 && cy <= r1 && slot >= s0 &&
         slot <= s1;
}

}  // namespace tcmf::geom
