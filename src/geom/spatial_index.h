#ifndef TCMF_GEOM_SPATIAL_INDEX_H_
#define TCMF_GEOM_SPATIAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/position.h"
#include "geom/geometry.h"
#include "geom/rtree.h"

namespace tcmf::geom {

/// Which structure backs a SpatialIndex. kScan is the O(n) reference
/// implementation kept for differential testing; kGrid is the equi-grid
/// blocking index; kRtree is the STR/R*-tree.
enum class SpatialBackend { kScan, kGrid, kRtree };

const char* ToString(SpatialBackend backend);

/// One indexed point observation.
struct IndexPoint {
  uint64_t id = 0;
  TimeMs t = 0;
  double lon = 0.0;
  double lat = 0.0;

  bool operator==(const IndexPoint&) const = default;
};

struct SpatialIndexConfig {
  /// Used only by the grid backend (cell tiling); points outside clamp
  /// to edge cells, exactly as EquiGrid does.
  BBox extent{-6.0, 35.0, 10.0, 44.0};
  uint32_t grid_cols = 64;
  uint32_t grid_rows = 64;
  /// Used only by the rtree backend.
  RStarTree::Options rtree;
};

/// Dynamic point index with one query kernel shared by link discovery
/// and CPA pair pruning. The filtering contract is EXACT and identical
/// across backends: VisitWithinRadius visits precisely the stored points
/// with HaversineM(query, point) <= radius_m (inclusive) and t >= min_t,
/// in unspecified order. Candidate generation inside a backend may
/// over-approximate, but every backend refines with the same haversine,
/// so swapping backends never changes consumer outputs *or* their
/// candidate/test counters.
///
/// Not thread-safe for mutation; concurrent VisitWithinRadius calls on a
/// quiescent index are safe on every backend.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  virtual void Insert(const IndexPoint& p) = 0;
  /// Removes every stored point with this id; returns how many.
  virtual size_t RemoveId(uint64_t id) = 0;
  /// Removes every stored point with t < cutoff; returns how many.
  virtual size_t EvictBefore(TimeMs cutoff) = 0;

  /// Visits exactly the points within radius_m great-circle meters
  /// (inclusive) of (lon, lat) with t >= min_t.
  virtual void VisitWithinRadius(
      double lon, double lat, double radius_m, TimeMs min_t,
      const std::function<void(const IndexPoint&)>& fn) const = 0;

  virtual size_t size() const = 0;
  virtual const char* name() const = 0;
};

/// Factory. `bulk` seeds the index with an initial point set — the rtree
/// backend STR-bulk-loads it, the others insert point by point.
std::unique_ptr<SpatialIndex> MakeSpatialIndex(
    SpatialBackend backend, const SpatialIndexConfig& config = {},
    std::vector<IndexPoint> bulk = {});

}  // namespace tcmf::geom

#endif  // TCMF_GEOM_SPATIAL_INDEX_H_
