#ifndef TCMF_GEOM_GEOMETRY_H_
#define TCMF_GEOM_GEOMETRY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geom/geo.h"

namespace tcmf::geom {

/// Axis-aligned bounding box in lon/lat degrees.
struct BBox {
  double min_lon = 0.0, min_lat = 0.0, max_lon = 0.0, max_lat = 0.0;

  bool Contains(double lon, double lat) const {
    return lon >= min_lon && lon <= max_lon && lat >= min_lat &&
           lat <= max_lat;
  }
  bool Intersects(const BBox& other) const {
    return !(other.min_lon > max_lon || other.max_lon < min_lon ||
             other.min_lat > max_lat || other.max_lat < min_lat);
  }
  double width() const { return max_lon - min_lon; }
  double height() const { return max_lat - min_lat; }
};

/// Simple polygon (single outer ring, implicit closure, no holes): the
/// shape of every area of interest in the system — protected areas, fishing
/// zones, airspace sectors, port footprints.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<LonLat> ring);

  /// Regular n-gon approximation of a circle around `center`.
  static Polygon Circle(const LonLat& center, double radius_m,
                        int segments = 24);
  /// Rectangle from a bounding box.
  static Polygon FromBBox(const BBox& box);

  const std::vector<LonLat>& ring() const { return ring_; }
  const BBox& bbox() const { return bbox_; }
  bool empty() const { return ring_.empty(); }

  /// Even-odd rule point-in-polygon test (bbox pre-filtered).
  bool Contains(double lon, double lat) const;
  bool Contains(const LonLat& p) const { return Contains(p.lon, p.lat); }

  /// Great-circle distance from p to the polygon boundary or 0 when inside.
  double DistanceM(const LonLat& p) const;

  /// Signed area in square degrees (planar; used only for relative
  /// comparisons and mask coverage heuristics).
  double PlanarArea() const;

  /// Polygon centroid (planar approximation).
  LonLat Centroid() const;

 private:
  std::vector<LonLat> ring_;
  BBox bbox_;
};

/// A named geographic area of interest (Natura2000 zone, sector, port...).
struct Area {
  uint64_t id = 0;
  std::string name;
  std::string kind;  ///< e.g. "protected", "fishing", "sector", "port"
  Polygon shape;
};

/// Distance in meters from a point to a great-circle segment a-b
/// (planar ENU approximation around the segment — accurate at the scales
/// the library operates on).
double PointSegmentDistanceM(const LonLat& p, const LonLat& a,
                             const LonLat& b);

// --- WKT (Well-Known Text) support: the interchange format the paper's
// RDF generators extract from shapefiles (Section 4.2.3). ---

/// Serializes "POINT (lon lat)".
std::string ToWktPoint(const LonLat& p);
/// Serializes "LINESTRING (lon lat, ...)".
std::string ToWktLineString(const std::vector<LonLat>& pts);
/// Serializes "POLYGON ((lon lat, ...))"; repeats the first vertex.
std::string ToWktPolygon(const Polygon& poly);

/// Parses POINT / LINESTRING / POLYGON (outer ring only).
Result<LonLat> ParseWktPoint(const std::string& wkt);
Result<std::vector<LonLat>> ParseWktLineString(const std::string& wkt);
Result<Polygon> ParseWktPolygon(const std::string& wkt);

}  // namespace tcmf::geom

#endif  // TCMF_GEOM_GEOMETRY_H_
