#include "geom/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geom/geo.h"
#include "geom/grid.h"

namespace tcmf::geom {

const char* ToString(SpatialBackend backend) {
  switch (backend) {
    case SpatialBackend::kScan:
      return "scan";
    case SpatialBackend::kGrid:
      return "grid";
    case SpatialBackend::kRtree:
      return "rtree";
  }
  return "unknown";
}

namespace {

/// Bounding box guaranteed to contain every point within radius_m of
/// (lon, lat) — the grid backend's candidate dilation (rigorous
/// tangent-meridian bound, degenerating to the full longitude span near
/// the poles).
BBox DilatedBox(double lon, double lat, double radius_m) {
  double dlat = 0.0, dlon = 0.0;
  RadiusBoundsDeg(lat, radius_m, &dlat, &dlon);
  return BBox{lon - dlon, lat - dlat, lon + dlon, lat + dlat};
}

class ScanIndex final : public SpatialIndex {
 public:
  void Insert(const IndexPoint& p) override { points_.push_back(p); }

  size_t RemoveId(uint64_t id) override {
    size_t before = points_.size();
    std::erase_if(points_, [id](const IndexPoint& p) { return p.id == id; });
    return before - points_.size();
  }

  size_t EvictBefore(TimeMs cutoff) override {
    size_t before = points_.size();
    std::erase_if(points_,
                  [cutoff](const IndexPoint& p) { return p.t < cutoff; });
    return before - points_.size();
  }

  void VisitWithinRadius(
      double lon, double lat, double radius_m, TimeMs min_t,
      const std::function<void(const IndexPoint&)>& fn) const override {
    for (const IndexPoint& p : points_) {
      if (p.t < min_t) continue;
      if (HaversineM(lon, lat, p.lon, p.lat) <= radius_m) fn(p);
    }
  }

  size_t size() const override { return points_.size(); }
  const char* name() const override { return "scan"; }

 private:
  std::vector<IndexPoint> points_;
};

class GridIndex final : public SpatialIndex {
 public:
  explicit GridIndex(const SpatialIndexConfig& config)
      : grid_(config.extent, config.grid_cols, config.grid_rows),
        cells_(grid_.cell_count()) {}

  void Insert(const IndexPoint& p) override {
    cells_[grid_.CellOf(p.lon, p.lat)].push_back(p);
    ++size_;
  }

  size_t RemoveId(uint64_t id) override {
    size_t removed = 0;
    for (auto& cell : cells_) {
      size_t before = cell.size();
      std::erase_if(cell, [id](const IndexPoint& p) { return p.id == id; });
      removed += before - cell.size();
    }
    size_ -= removed;
    return removed;
  }

  size_t EvictBefore(TimeMs cutoff) override {
    size_t removed = 0;
    for (auto& cell : cells_) {
      size_t before = cell.size();
      std::erase_if(cell,
                    [cutoff](const IndexPoint& p) { return p.t < cutoff; });
      removed += before - cell.size();
    }
    size_ -= removed;
    return removed;
  }

  void VisitWithinRadius(
      double lon, double lat, double radius_m, TimeMs min_t,
      const std::function<void(const IndexPoint&)>& fn) const override {
    // CellOf clamps monotonically, so every stored point inside the
    // dilated box (even out-of-extent ones clamped to edge cells) lives
    // in a cell this sweep visits — the exact-filter contract holds.
    for (uint32_t cell : grid_.CellsIntersecting(
             DilatedBox(lon, lat, radius_m))) {
      for (const IndexPoint& p : cells_[cell]) {
        if (p.t < min_t) continue;
        if (HaversineM(lon, lat, p.lon, p.lat) <= radius_m) fn(p);
      }
    }
  }

  size_t size() const override { return size_; }
  const char* name() const override { return "grid"; }

 private:
  EquiGrid grid_;
  std::vector<std::vector<IndexPoint>> cells_;
  size_t size_ = 0;
};

class RtreeIndex final : public SpatialIndex {
 public:
  RtreeIndex(const SpatialIndexConfig& config, std::vector<IndexPoint> bulk)
      : tree_(config.rtree) {
    if (bulk.empty()) return;
    std::vector<RtreeItem> items;
    items.reserve(bulk.size());
    for (const IndexPoint& p : bulk) {
      items.push_back({StBox::Point(p.lon, p.lat, p.t), p.id});
      by_id_.emplace(p.id, StBox::Point(p.lon, p.lat, p.t));
    }
    tree_ = RStarTree::BulkLoad(std::move(items), config.rtree);
  }

  void Insert(const IndexPoint& p) override {
    StBox box = StBox::Point(p.lon, p.lat, p.t);
    tree_.Insert({box, p.id});
    by_id_.emplace(p.id, box);
  }

  size_t RemoveId(uint64_t id) override {
    auto [first, last] = by_id_.equal_range(id);
    size_t removed = 0;
    for (auto it = first; it != last; ++it) {
      if (tree_.Remove({it->second, id})) ++removed;
    }
    by_id_.erase(first, last);
    return removed;
  }

  size_t EvictBefore(TimeMs cutoff) override {
    if (cutoff == kTimeMin) return 0;
    // Stored boxes are points (min_t == max_t), so a full-extent range
    // query with max_t = cutoff-1 enumerates exactly the stale entries;
    // time pruning skips whole subtrees of fresh points.
    StBox stale_window = StBox::Spatial(BBox{-180.0, -90.0, 180.0, 90.0});
    stale_window.max_t = cutoff - 1;
    std::vector<RtreeItem> stale;
    tree_.Range(stale_window,
                [&](const RtreeItem& it) { stale.push_back(it); });
    for (const RtreeItem& it : stale) {
      tree_.Remove(it);
      auto [first, last] = by_id_.equal_range(it.id);
      for (auto m = first; m != last; ++m) {
        if (m->second == it.box) {
          by_id_.erase(m);
          break;
        }
      }
    }
    return stale.size();
  }

  void VisitWithinRadius(
      double lon, double lat, double radius_m, TimeMs min_t,
      const std::function<void(const IndexPoint&)>& fn) const override {
    tree_.WithinRadius(lon, lat, radius_m, min_t, kTimeMax,
                       [&](const RtreeItem& it) {
                         fn(IndexPoint{it.id, it.box.min_t,
                                       it.box.CenterLon(),
                                       it.box.CenterLat()});
                       });
  }

  size_t size() const override { return tree_.size(); }
  const char* name() const override { return "rtree"; }

  const RStarTree& tree() const { return tree_; }

 private:
  RStarTree tree_;
  std::unordered_multimap<uint64_t, StBox> by_id_;
};

}  // namespace

std::unique_ptr<SpatialIndex> MakeSpatialIndex(SpatialBackend backend,
                                               const SpatialIndexConfig& config,
                                               std::vector<IndexPoint> bulk) {
  std::unique_ptr<SpatialIndex> index;
  switch (backend) {
    case SpatialBackend::kScan:
      index = std::make_unique<ScanIndex>();
      break;
    case SpatialBackend::kGrid:
      index = std::make_unique<GridIndex>(config);
      break;
    case SpatialBackend::kRtree:
      return std::make_unique<RtreeIndex>(config, std::move(bulk));
  }
  for (const IndexPoint& p : bulk) index->Insert(p);
  return index;
}

}  // namespace tcmf::geom
