#ifndef TCMF_GEOM_STCELL_H_
#define TCMF_GEOM_STCELL_H_

#include <cstdint>

#include "common/position.h"
#include "geom/geometry.h"

namespace tcmf::geom {

/// Spatio-temporal cell encoder (Section 4.2.5): maps an approximate
/// (lon, lat, time) to a single integer identifier by bit-interleaving the
/// cell coordinates of a fixed space/time discretization. The store's
/// dictionary assigns these ids to spatio-temporal entities so that query
/// evaluation can prune triples against a spatio-temporal box with pure
/// integer tests, before any string or geometry work.
///
/// Layout of the 64-bit id:
///   [63:48] reserved zero | [47:32] time slot | [31:0] Z-order of (col,row)
class StCellEncoder {
 public:
  /// `bits` per spatial axis (grid is 2^bits x 2^bits), and the length of a
  /// time slot in milliseconds.
  StCellEncoder(const BBox& extent, uint32_t bits, TimeMs t0,
                TimeMs slot_ms);

  uint64_t Encode(double lon, double lat, TimeMs t) const;

  /// Decodes an id back to its cell bounds and time slot.
  struct Cell {
    BBox bounds;
    TimeMs t_begin = 0;
    TimeMs t_end = 0;
  };
  Cell Decode(uint64_t id) const;

  /// A query box in space and time.
  struct StBox {
    BBox bounds;
    TimeMs t_begin = 0;
    TimeMs t_end = 0;
  };

  /// True when the cell identified by `id` can intersect `box` —
  /// the integer-only pruning test used during query evaluation.
  bool MayIntersect(uint64_t id, const StBox& box) const;

  uint32_t bits() const { return bits_; }
  uint32_t side() const { return 1u << bits_; }

 private:
  BBox extent_;
  uint32_t bits_;
  TimeMs t0_;
  TimeMs slot_ms_;
};

/// Interleaves the low 16 bits of x and y (Morton / Z-order).
uint32_t MortonInterleave16(uint16_t x, uint16_t y);
void MortonDeinterleave16(uint32_t z, uint16_t* x, uint16_t* y);

}  // namespace tcmf::geom

#endif  // TCMF_GEOM_STCELL_H_
