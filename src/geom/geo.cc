#include "geom/geo.h"

#include <cmath>

namespace tcmf::geom {

double DegToRad(double deg) { return deg * kPi / 180.0; }
double RadToDeg(double rad) { return rad * 180.0 / kPi; }

double NormalizeDeg(double deg) {
  double d = std::fmod(deg, 360.0);
  if (d < 0) d += 360.0;
  return d;
}

double AngleDiffDeg(double a, double b) {
  double d = std::fmod(a - b, 360.0);
  if (d > 180.0) d -= 360.0;
  if (d <= -180.0) d += 360.0;
  return d;
}

double HaversineM(const LonLat& a, const LonLat& b) {
  return HaversineM(a.lon, a.lat, b.lon, b.lat);
}

double HaversineM(double lon1, double lat1, double lon2, double lat2) {
  double phi1 = DegToRad(lat1);
  double phi2 = DegToRad(lat2);
  double dphi = DegToRad(lat2 - lat1);
  double dlambda = DegToRad(lon2 - lon1);
  double s = std::sin(dphi / 2);
  double t = std::sin(dlambda / 2);
  double h = s * s + std::cos(phi1) * std::cos(phi2) * t * t;
  return 2 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

void RadiusBoundsDeg(double lat, double radius_m, double* dlat_deg,
                     double* dlon_deg) {
  double rho = radius_m / kEarthRadiusM;  // central angle, radians
  if (rho >= kPi / 2) {
    *dlat_deg = 180.0;
    *dlon_deg = 180.0;
    return;
  }
  // The disc spans exactly [lat - rho, lat + rho] in latitude; pad a
  // hair for downstream rounding.
  *dlat_deg = RadToDeg(rho) + 1e-9;
  double coslat = std::cos(DegToRad(lat));
  double sinrho = std::sin(rho);
  if (coslat <= sinrho) {  // a pole lies inside the disc
    *dlon_deg = 180.0;
    return;
  }
  // Tangent-meridian bound: the meridians touching the disc sit at
  // Δλ = asin(sin ρ / cos φ), slightly MORE than the naive ρ / cos φ.
  *dlon_deg = RadToDeg(std::asin(sinrho / coslat)) * (1.0 + 1e-12) + 1e-9;
}

double BearingDeg(const LonLat& a, const LonLat& b) {
  double phi1 = DegToRad(a.lat);
  double phi2 = DegToRad(b.lat);
  double dlambda = DegToRad(b.lon - a.lon);
  double y = std::sin(dlambda) * std::cos(phi2);
  double x = std::cos(phi1) * std::sin(phi2) -
             std::sin(phi1) * std::cos(phi2) * std::cos(dlambda);
  return NormalizeDeg(RadToDeg(std::atan2(y, x)));
}

LonLat Destination(const LonLat& origin, double bearing_deg,
                   double distance_m) {
  double delta = distance_m / kEarthRadiusM;
  double theta = DegToRad(bearing_deg);
  double phi1 = DegToRad(origin.lat);
  double lambda1 = DegToRad(origin.lon);
  double phi2 = std::asin(std::sin(phi1) * std::cos(delta) +
                          std::cos(phi1) * std::sin(delta) * std::cos(theta));
  double lambda2 =
      lambda1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(phi1),
                           std::cos(delta) - std::sin(phi1) * std::sin(phi2));
  LonLat out;
  out.lat = RadToDeg(phi2);
  out.lon = RadToDeg(lambda2);
  if (out.lon > 180.0) out.lon -= 360.0;
  if (out.lon < -180.0) out.lon += 360.0;
  return out;
}

Enu ToEnu(const LonLat& ref, const LonLat& p) {
  double coslat = std::cos(DegToRad(ref.lat));
  Enu out;
  out.x = DegToRad(p.lon - ref.lon) * kEarthRadiusM * coslat;
  out.y = DegToRad(p.lat - ref.lat) * kEarthRadiusM;
  return out;
}

LonLat FromEnu(const LonLat& ref, const Enu& p) {
  double coslat = std::cos(DegToRad(ref.lat));
  LonLat out;
  out.lon = ref.lon + RadToDeg(p.x / (kEarthRadiusM * coslat));
  out.lat = ref.lat + RadToDeg(p.y / kEarthRadiusM);
  return out;
}

double Distance3dM(const Position& a, const Position& b) {
  double h = HaversineM(a.lon, a.lat, b.lon, b.lat);
  double dz = a.alt_m - b.alt_m;
  return std::sqrt(h * h + dz * dz);
}

double CrossTrackM(const LonLat& a, const LonLat& b, const LonLat& p) {
  double d13 = HaversineM(a, p) / kEarthRadiusM;
  double theta13 = DegToRad(BearingDeg(a, p));
  double theta12 = DegToRad(BearingDeg(a, b));
  double xt = std::asin(std::sin(d13) * std::sin(theta13 - theta12));
  return std::fabs(xt) * kEarthRadiusM;
}

}  // namespace tcmf::geom
