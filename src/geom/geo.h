#ifndef TCMF_GEOM_GEO_H_
#define TCMF_GEOM_GEO_H_

#include "common/position.h"

namespace tcmf::geom {

/// Mean Earth radius, meters (spherical model — adequate for surveillance
/// scales; the paper's components never need ellipsoidal accuracy).
constexpr double kEarthRadiusM = 6371008.8;

constexpr double kPi = 3.14159265358979323846;

double DegToRad(double deg);
double RadToDeg(double rad);

/// Normalizes an angle to [0, 360).
double NormalizeDeg(double deg);

/// Signed smallest difference a-b in degrees, in (-180, 180].
double AngleDiffDeg(double a, double b);

/// A geographic coordinate in degrees.
struct LonLat {
  double lon = 0.0;
  double lat = 0.0;
};

/// Great-circle distance in meters (haversine).
double HaversineM(const LonLat& a, const LonLat& b);
double HaversineM(double lon1, double lat1, double lon2, double lat2);

/// Half-extents (degrees) of a lon/lat box guaranteed to contain every
/// point within `radius_m` great-circle meters of a point at latitude
/// `lat`: *dlat_deg is the exact meridional half-span, *dlon_deg the
/// exact tangent-meridian bound asin(sin ρ / cos φ) plus a rounding
/// margin (180 when the disc reaches a pole). Note the naive ρ/cos φ
/// UNDER-estimates the longitude span — always use this for pruning.
/// The returned lon span may exceed [-180, 180] when the disc crosses
/// the antimeridian; callers must wrap or fall back.
void RadiusBoundsDeg(double lat, double radius_m, double* dlat_deg,
                     double* dlon_deg);

/// Initial great-circle bearing from a to b, degrees in [0, 360).
double BearingDeg(const LonLat& a, const LonLat& b);

/// Point reached from `origin` moving `distance_m` along `bearing_deg`.
LonLat Destination(const LonLat& origin, double bearing_deg,
                   double distance_m);

/// Local tangent-plane (ENU) coordinates in meters relative to a reference.
/// Valid for the regional extents used throughout (hundreds of km).
struct Enu {
  double x = 0.0;  ///< east, meters
  double y = 0.0;  ///< north, meters
};

Enu ToEnu(const LonLat& ref, const LonLat& p);
LonLat FromEnu(const LonLat& ref, const Enu& p);

/// 3-D distance in meters between two positions (horizontal great-circle
/// plus altitude difference).
double Distance3dM(const Position& a, const Position& b);

/// Cross-track distance of point p from the great-circle path a->b, meters
/// (sign dropped). Used by prediction error metrics.
double CrossTrackM(const LonLat& a, const LonLat& b, const LonLat& p);

}  // namespace tcmf::geom

#endif  // TCMF_GEOM_GEO_H_
