#ifndef TCMF_GEOM_RTREE_H_
#define TCMF_GEOM_RTREE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/position.h"
#include "geom/geometry.h"

namespace tcmf::geom {

/// Full-range time bounds for purely spatial boxes.
inline constexpr TimeMs kTimeMin = std::numeric_limits<TimeMs>::min();
inline constexpr TimeMs kTimeMax = std::numeric_limits<TimeMs>::max();

/// Spatio-temporal minimum bounding rectangle: a lon/lat box plus an
/// inclusive event-time window. Point observations are degenerate boxes
/// (min == max on every axis). Stored boxes must not straddle the
/// antimeridian; *query* boxes may (min_lon > max_lon means the box wraps
/// through 180°, and RStarTree::Range splits it into two halves).
struct StBox {
  double min_lon = 0.0, min_lat = 0.0;
  double max_lon = 0.0, max_lat = 0.0;
  TimeMs min_t = kTimeMin;
  TimeMs max_t = kTimeMax;

  static StBox Point(double lon, double lat, TimeMs t) {
    return {lon, lat, lon, lat, t, t};
  }
  /// Purely spatial box covering all time.
  static StBox Spatial(const BBox& b) {
    return {b.min_lon, b.min_lat, b.max_lon, b.max_lat, kTimeMin, kTimeMax};
  }

  double CenterLon() const { return (min_lon + max_lon) / 2.0; }
  double CenterLat() const { return (min_lat + max_lat) / 2.0; }
  double Width() const { return max_lon - min_lon; }
  double Height() const { return max_lat - min_lat; }
  double Area() const { return Width() * Height(); }
  double Margin() const { return Width() + Height(); }

  /// Inclusive on every axis (shared edges intersect), overlapping time
  /// windows intersect.
  bool Intersects(const StBox& o) const {
    return !(o.min_lon > max_lon || o.max_lon < min_lon ||
             o.min_lat > max_lat || o.max_lat < min_lat ||
             o.min_t > max_t || o.max_t < min_t);
  }
  bool Contains(const StBox& o) const {
    return o.min_lon >= min_lon && o.max_lon <= max_lon &&
           o.min_lat >= min_lat && o.max_lat <= max_lat &&
           o.min_t >= min_t && o.max_t <= max_t;
  }
  /// Overlap of an inclusive time window [lo, hi].
  bool TimeOverlaps(TimeMs lo, TimeMs hi) const {
    return lo <= max_t && hi >= min_t;
  }

  void ExpandTo(const StBox& o) {
    if (o.min_lon < min_lon) min_lon = o.min_lon;
    if (o.min_lat < min_lat) min_lat = o.min_lat;
    if (o.max_lon > max_lon) max_lon = o.max_lon;
    if (o.max_lat > max_lat) max_lat = o.max_lat;
    if (o.min_t < min_t) min_t = o.min_t;
    if (o.max_t > max_t) max_t = o.max_t;
  }

  double IntersectionArea(const StBox& o) const {
    double w = std::min(max_lon, o.max_lon) - std::max(min_lon, o.min_lon);
    double h = std::min(max_lat, o.max_lat) - std::max(min_lat, o.min_lat);
    return (w > 0 && h > 0) ? w * h : 0.0;
  }

  /// Spatial area growth needed to absorb `o` (time ignored — the R*
  /// heuristics are purely spatial, time rides along in the bounds).
  double EnlargementArea(const StBox& o) const;

  /// Lower bound on the great-circle distance (meters) from (lon, lat)
  /// to *any* point of the box, antimeridian-aware. Exact 0 when the
  /// point is spatially inside. Used to prune k-NN / radius traversals;
  /// looseness only costs node visits, never correctness.
  double MinDistM(double lon, double lat) const;

  bool operator==(const StBox&) const = default;
};

/// One indexed entry: an st-box plus the caller's payload id. For point
/// observations the box is the point and min_t carries the timestamp.
struct RtreeItem {
  StBox box;
  uint64_t id = 0;

  bool operator==(const RtreeItem&) const = default;
};

/// Native bulk-loadable spatial index over spatio-temporal MBRs:
/// Sort-Tile-Recursive (STR) bulk load, R*-style incremental insert
/// (ChooseSubtree by overlap enlargement, forced reinsertion before the
/// first split of an insertion) and delete (condense + reinsert), and
/// three query kernels — Range (box intersect), NearestK (best-first over
/// the great-circle MBR lower bound) and WithinRadius (branch-and-bound
/// on great-circle distance, reusing geom/geo.h haversine).
///
/// Distances are great-circle meters measured to each item's box center
/// (exact for point items). Queries are const and touch no shared
/// mutable state, so any number of reader threads may query a tree
/// concurrently as long as no thread mutates it.
class RStarTree {
 public:
  struct Options {
    /// Max entries per node (M). Min is ~40% of M, the R* sweet spot.
    int max_entries = 16;
    int min_entries = 6;
    /// Entries force-reinserted on the first leaf overflow per insert
    /// (~30% of M); 0 disables forced reinsertion.
    int reinsert_count = 5;
  };

  RStarTree() : RStarTree(Options{}) {}
  explicit RStarTree(const Options& options);
  ~RStarTree();
  RStarTree(RStarTree&& other) noexcept;
  RStarTree& operator=(RStarTree&& other) noexcept;
  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// STR bulk load: sort by center longitude into vertical slices, sort
  /// each slice by center latitude, pack runs of max_entries into full
  /// leaves, repeat on the node level until a single root remains.
  /// O(n log n), ~100% node fill — the construction path for static or
  /// rebuild-per-window indexes.
  static RStarTree BulkLoad(std::vector<RtreeItem> items) {
    return BulkLoad(std::move(items), Options{});
  }
  static RStarTree BulkLoad(std::vector<RtreeItem> items,
                            const Options& options);

  void Insert(const RtreeItem& item);

  /// Removes one entry exactly matching (box, id); returns false when no
  /// such entry exists. Underflowing nodes are condensed and their
  /// remaining entries reinserted.
  bool Remove(const RtreeItem& item);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// 0 when empty, 1 for a single leaf root.
  int height() const;
  /// Bounding box of everything stored (default StBox when empty).
  StBox bounds() const;

  /// Visits every item whose box intersects `query` (inclusive edges,
  /// overlapping time windows). A query box with min_lon > max_lon is
  /// interpreted as straddling the antimeridian and evaluated as the
  /// union of [min_lon, 180] and [-180, max_lon].
  void Range(const StBox& query,
             const std::function<void(const RtreeItem&)>& fn) const;

  /// K nearest item centers by great-circle distance, deterministically
  /// ordered by (distance, id) — ties at equal distance resolve to the
  /// smaller id. Fewer than k results when the tree holds fewer items.
  std::vector<RtreeItem> NearestK(double lon, double lat, size_t k) const {
    return NearestK(lon, lat, k, kTimeMin, kTimeMax);
  }
  /// Same, restricted to items whose time window overlaps [min_t, max_t].
  std::vector<RtreeItem> NearestK(double lon, double lat, size_t k,
                                  TimeMs min_t, TimeMs max_t) const;

  /// Visits every item whose center lies within `radius_m` great-circle
  /// meters (inclusive) of (lon, lat).
  void WithinRadius(double lon, double lat, double radius_m,
                    const std::function<void(const RtreeItem&)>& fn) const {
    WithinRadius(lon, lat, radius_m, kTimeMin, kTimeMax, fn);
  }
  /// Same, restricted to items whose time window overlaps [min_t, max_t].
  void WithinRadius(double lon, double lat, double radius_m, TimeMs min_t,
                    TimeMs max_t,
                    const std::function<void(const RtreeItem&)>& fn) const;

  /// Cumulative mutation counters (never touched by queries, so
  /// concurrent readers stay race-free).
  struct Stats {
    size_t splits = 0;
    size_t forced_reinserts = 0;  ///< items moved by forced reinsertion
    size_t condensed_nodes = 0;   ///< underflowing nodes dissolved
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Node;

  Node* ChooseSubtree(Node* node, const StBox& box) const;
  void InsertImpl(const RtreeItem& item, bool allow_reinsert);
  void HandleOverflow(std::vector<Node*>& path, size_t level,
                      bool allow_reinsert);
  void ForcedReinsert(std::vector<Node*>& path);
  void SplitNode(std::vector<Node*>& path, size_t level);
  bool RemoveRec(Node* node, const RtreeItem& item,
                 std::vector<Node*>& path);
  void CondenseTree(std::vector<Node*>& path);

  Options options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  Stats stats_;
};

}  // namespace tcmf::geom

#endif  // TCMF_GEOM_RTREE_H_
