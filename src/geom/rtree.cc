#include "geom/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "geom/geo.h"

namespace tcmf::geom {

namespace {

/// Absolute angular difference wrapped to [0, 180] degrees.
double WrapAbsDeg(double d) {
  d = std::fmod(std::fabs(d), 360.0);
  return d > 180.0 ? 360.0 - d : d;
}

}  // namespace

double StBox::EnlargementArea(const StBox& o) const {
  double w = std::max(max_lon, o.max_lon) - std::min(min_lon, o.min_lon);
  double h = std::max(max_lat, o.max_lat) - std::min(min_lat, o.min_lat);
  return w * h - Area();
}

double StBox::MinDistM(double lon, double lat) const {
  double dlon_deg = 0.0;
  if (lon < min_lon || lon > max_lon) {
    dlon_deg = std::min(WrapAbsDeg(lon - min_lon), WrapAbsDeg(lon - max_lon));
  }
  double dlat_deg = 0.0;
  if (lat < min_lat) {
    dlat_deg = min_lat - lat;
  } else if (lat > max_lat) {
    dlat_deg = lat - max_lat;
  }
  if (dlon_deg == 0.0 && dlat_deg == 0.0) return 0.0;

  // Meridional leg: central angle >= |Δφ| regardless of longitude.
  double theta_lat = DegToRad(dlat_deg);
  // Longitudinal leg: haversine gives sin²(θ/2) >= cosφ1·cosφ2·sin²(Δλ/2);
  // lower-bound cosφ2 by the smaller cosine at the box's lat extremes.
  double c1 = std::cos(DegToRad(lat));
  double c2 =
      std::min(std::cos(DegToRad(min_lat)), std::cos(DegToRad(max_lat)));
  double cc = std::max(0.0, c1 * c2);  // guard -0 rounding at the poles
  double s = std::sqrt(cc) * std::sin(DegToRad(dlon_deg) / 2.0);
  double theta_lon = 2.0 * std::asin(std::min(1.0, s));
  return std::max(theta_lat, theta_lon) * kEarthRadiusM;
}

struct RStarTree::Node {
  bool leaf = true;
  StBox box;
  std::vector<std::unique_ptr<Node>> children;  // internal nodes
  std::vector<RtreeItem> items;                 // leaves

  int count() const {
    return static_cast<int>(leaf ? items.size() : children.size());
  }

  static const StBox& EntryBox(const RtreeItem& item) { return item.box; }
  static const StBox& EntryBox(const std::unique_ptr<Node>& node) {
    return node->box;
  }

  static void RecomputeBox(Node* node) {
    if (node->leaf) {
      if (node->items.empty()) return;
      node->box = node->items.front().box;
      for (size_t i = 1; i < node->items.size(); ++i) {
        node->box.ExpandTo(node->items[i].box);
      }
    } else {
      if (node->children.empty()) return;
      node->box = node->children.front()->box;
      for (size_t i = 1; i < node->children.size(); ++i) {
        node->box.ExpandTo(node->children[i]->box);
      }
    }
  }

  /// R* split: choose the axis with the least total margin over all
  /// lower/upper-sorted distributions, then the distribution with the
  /// least overlap (ties: least total area). Returns the permutation to
  /// apply and the split position within it.
  static void ChooseSplit(const std::vector<StBox>& boxes,
                          const Options& options, std::vector<int>* perm_out,
                          int* split_out) {
    const int n = static_cast<int>(boxes.size());
    const int m =
        std::clamp(options.min_entries, 1, std::max(1, n / 2));

    auto key_low = [&](int axis, int i) {
      return axis == 0 ? boxes[i].min_lon : boxes[i].min_lat;
    };
    auto key_high = [&](int axis, int i) {
      return axis == 0 ? boxes[i].max_lon : boxes[i].max_lat;
    };
    auto make_perm = [&](int axis, int order) {
      std::vector<int> perm(n);
      for (int i = 0; i < n; ++i) perm[i] = i;
      std::sort(perm.begin(), perm.end(), [&](int a, int b) {
        double ka = order == 0 ? key_low(axis, a) : key_high(axis, a);
        double kb = order == 0 ? key_low(axis, b) : key_high(axis, b);
        if (ka != kb) return ka < kb;
        double sa = order == 0 ? key_high(axis, a) : key_low(axis, a);
        double sb = order == 0 ? key_high(axis, b) : key_low(axis, b);
        if (sa != sb) return sa < sb;
        return a < b;
      });
      return perm;
    };
    // prefix[i] = union of boxes[perm[0..i]]; suffix[i] = union [i..n).
    auto sweep = [&](const std::vector<int>& perm, std::vector<StBox>* pre,
                     std::vector<StBox>* suf) {
      pre->resize(n);
      suf->resize(n);
      (*pre)[0] = boxes[perm[0]];
      for (int i = 1; i < n; ++i) {
        (*pre)[i] = (*pre)[i - 1];
        (*pre)[i].ExpandTo(boxes[perm[i]]);
      }
      (*suf)[n - 1] = boxes[perm[n - 1]];
      for (int i = n - 2; i >= 0; --i) {
        (*suf)[i] = (*suf)[i + 1];
        (*suf)[i].ExpandTo(boxes[perm[i]]);
      }
    };

    int best_axis = 0;
    double best_margin = std::numeric_limits<double>::infinity();
    std::vector<StBox> pre, suf;
    for (int axis = 0; axis < 2; ++axis) {
      double margin_sum = 0.0;
      for (int order = 0; order < 2; ++order) {
        std::vector<int> perm = make_perm(axis, order);
        sweep(perm, &pre, &suf);
        for (int k = m; k <= n - m; ++k) {
          margin_sum += pre[k - 1].Margin() + suf[k].Margin();
        }
      }
      if (margin_sum < best_margin) {
        best_margin = margin_sum;
        best_axis = axis;
      }
    }

    double best_overlap = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    std::vector<int> best_perm;
    int best_split = m;
    for (int order = 0; order < 2; ++order) {
      std::vector<int> perm = make_perm(best_axis, order);
      sweep(perm, &pre, &suf);
      for (int k = m; k <= n - m; ++k) {
        double overlap = pre[k - 1].IntersectionArea(suf[k]);
        double area = pre[k - 1].Area() + suf[k].Area();
        if (overlap < best_overlap ||
            (overlap == best_overlap && area < best_area)) {
          best_overlap = overlap;
          best_area = area;
          best_perm = perm;
          best_split = k;
        }
      }
    }
    *perm_out = std::move(best_perm);
    *split_out = best_split;
  }

  template <typename Entry>
  static void SplitEntries(std::vector<Entry>* left,
                           std::vector<Entry>* right,
                           const Options& options) {
    std::vector<StBox> boxes;
    boxes.reserve(left->size());
    for (const Entry& e : *left) boxes.push_back(EntryBox(e));
    std::vector<int> perm;
    int split = 0;
    ChooseSplit(boxes, options, &perm, &split);
    std::vector<Entry> reordered;
    reordered.reserve(left->size());
    for (int idx : perm) reordered.push_back(std::move((*left)[idx]));
    left->clear();
    right->clear();
    for (int i = 0; i < static_cast<int>(reordered.size()); ++i) {
      if (i < split) {
        left->push_back(std::move(reordered[i]));
      } else {
        right->push_back(std::move(reordered[i]));
      }
    }
  }

  /// STR packing of one level: sort by center longitude into
  /// ceil(sqrt(pages)) vertical slices, sort each slice by center
  /// latitude, cut runs of `capacity` into nodes.
  template <typename Entry>
  static std::vector<std::unique_ptr<Node>> StrPack(
      std::vector<Entry> entries, int capacity, bool leaf_level) {
    const size_t n = entries.size();
    const size_t cap = static_cast<size_t>(capacity);
    const size_t pages = (n + cap - 1) / cap;
    const size_t slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(pages))));
    const size_t slice_size = (n + slices - 1) / slices;

    auto center_lon = [](const Entry& e) { return EntryBox(e).CenterLon(); };
    auto center_lat = [](const Entry& e) { return EntryBox(e).CenterLat(); };
    std::sort(entries.begin(), entries.end(),
              [&](const Entry& a, const Entry& b) {
                double ka = center_lon(a), kb = center_lon(b);
                if (ka != kb) return ka < kb;
                return center_lat(a) < center_lat(b);
              });
    for (size_t s = 0; s * slice_size < n; ++s) {
      auto first = entries.begin() + s * slice_size;
      auto last =
          entries.begin() + std::min(n, (s + 1) * slice_size);
      std::sort(first, last, [&](const Entry& a, const Entry& b) {
        double ka = center_lat(a), kb = center_lat(b);
        if (ka != kb) return ka < kb;
        return center_lon(a) < center_lon(b);
      });
    }

    std::vector<std::unique_ptr<Node>> out;
    out.reserve(pages);
    for (size_t i = 0; i < n; i += cap) {
      auto node = std::make_unique<Node>();
      node->leaf = leaf_level;
      size_t end = std::min(n, i + cap);
      for (size_t j = i; j < end; ++j) {
        if constexpr (std::is_same_v<Entry, RtreeItem>) {
          node->items.push_back(std::move(entries[j]));
        } else {
          node->children.push_back(std::move(entries[j]));
        }
      }
      RecomputeBox(node.get());
      out.push_back(std::move(node));
    }
    return out;
  }

  static void RangeVisit(const Node* node, const StBox& q,
                         const std::function<void(const RtreeItem&)>& fn) {
    if (!node->box.Intersects(q)) return;
    if (node->leaf) {
      for (const RtreeItem& item : node->items) {
        if (item.box.Intersects(q)) fn(item);
      }
      return;
    }
    for (const auto& child : node->children) RangeVisit(child.get(), q, fn);
  }

  /// `prune`, when set, is a tight box superset of the radius disc
  /// (time window included): four comparisons reject a subtree with no
  /// trigonometry at all, which is what keeps the rtree competitive
  /// with the grid's O(1) cell lookup on uniform traffic. `prune` is
  /// null for discs crossing the antimeridian, where only the wrapped
  /// MinDistM great-circle bound is valid.
  static void RadiusVisit(const Node* node, const StBox* prune, double lon,
                          double lat, double radius_m, TimeMs min_t,
                          TimeMs max_t,
                          const std::function<void(const RtreeItem&)>& fn) {
    if (prune) {
      if (!node->box.Intersects(*prune)) return;
    } else {
      if (!node->box.TimeOverlaps(min_t, max_t)) return;
      if (node->box.MinDistM(lon, lat) > radius_m) return;
    }
    if (node->leaf) {
      for (const RtreeItem& item : node->items) {
        if (prune ? !item.box.Intersects(*prune)
                  : !item.box.TimeOverlaps(min_t, max_t)) {
          continue;
        }
        if (HaversineM(lon, lat, item.box.CenterLon(),
                       item.box.CenterLat()) <= radius_m) {
          fn(item);
        }
      }
      return;
    }
    for (const auto& child : node->children) {
      RadiusVisit(child.get(), prune, lon, lat, radius_m, min_t, max_t, fn);
    }
  }

  static void CollectItems(Node* node, std::vector<RtreeItem>* out) {
    if (node->leaf) {
      out->insert(out->end(), node->items.begin(), node->items.end());
      return;
    }
    for (auto& child : node->children) CollectItems(child.get(), out);
  }
};

RStarTree::RStarTree(const Options& options) : options_(options) {
  options_.max_entries = std::max(4, options_.max_entries);
  options_.min_entries =
      std::clamp(options_.min_entries, 1, options_.max_entries / 2);
  options_.reinsert_count = std::clamp(
      options_.reinsert_count, 0, options_.max_entries - options_.min_entries);
}

RStarTree::~RStarTree() = default;
RStarTree::RStarTree(RStarTree&& other) noexcept = default;
RStarTree& RStarTree::operator=(RStarTree&& other) noexcept = default;

RStarTree RStarTree::BulkLoad(std::vector<RtreeItem> items,
                              const Options& options) {
  RStarTree tree(options);
  if (items.empty()) return tree;
  tree.size_ = items.size();
  const int cap = tree.options_.max_entries;
  std::vector<std::unique_ptr<Node>> level =
      Node::StrPack(std::move(items), cap, /*leaf_level=*/true);
  while (level.size() > 1) {
    level = Node::StrPack(std::move(level), cap, /*leaf_level=*/false);
  }
  tree.root_ = std::move(level.front());
  return tree;
}

RStarTree::Node* RStarTree::ChooseSubtree(Node* node, const StBox& box) const {
  const auto& children = node->children;
  // At the level above the leaves R* minimizes *overlap* enlargement;
  // higher up, plain area enlargement (ties: smaller area) suffices.
  bool leaf_level = children.front()->leaf;
  Node* best = children.front().get();
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const auto& child : children) {
    double enlarge = child->box.EnlargementArea(box);
    double area = child->box.Area();
    double overlap_delta = 0.0;
    if (leaf_level) {
      StBox enlarged = child->box;
      enlarged.ExpandTo(box);
      for (const auto& other : children) {
        if (other.get() == child.get()) continue;
        overlap_delta += enlarged.IntersectionArea(other->box) -
                         child->box.IntersectionArea(other->box);
      }
    }
    bool better;
    if (leaf_level && overlap_delta != best_overlap) {
      better = overlap_delta < best_overlap;
    } else if (enlarge != best_enlarge) {
      better = enlarge < best_enlarge;
    } else {
      better = area < best_area;
    }
    if (better) {
      best = child.get();
      best_overlap = overlap_delta;
      best_enlarge = enlarge;
      best_area = area;
    }
  }
  return best;
}

void RStarTree::Insert(const RtreeItem& item) {
  InsertImpl(item, /*allow_reinsert=*/true);
  ++size_;
}

void RStarTree::InsertImpl(const RtreeItem& item, bool allow_reinsert) {
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->leaf = true;
    root_->box = item.box;
    root_->items.push_back(item);
    return;
  }
  std::vector<Node*> path;
  Node* node = root_.get();
  path.push_back(node);
  while (!node->leaf) {
    node = ChooseSubtree(node, item.box);
    path.push_back(node);
  }
  node->items.push_back(item);
  for (Node* n : path) n->box.ExpandTo(item.box);
  if (node->count() > options_.max_entries) {
    HandleOverflow(path, path.size() - 1, allow_reinsert);
  }
}

void RStarTree::HandleOverflow(std::vector<Node*>& path, size_t level,
                               bool allow_reinsert) {
  Node* node = path[level];
  // Forced reinsertion: once per insertion, non-root leaves shed their
  // farthest entries back through the top — the R* trick that defers
  // splits and tightens clustered nodes.
  if (node->leaf && allow_reinsert && options_.reinsert_count > 0 &&
      level > 0 &&
      node->count() - options_.reinsert_count >= options_.min_entries) {
    ForcedReinsert(path);
    return;
  }
  SplitNode(path, level);
  if (level > 0 && path[level - 1]->count() > options_.max_entries) {
    HandleOverflow(path, level - 1, /*allow_reinsert=*/false);
  }
}

void RStarTree::ForcedReinsert(std::vector<Node*>& path) {
  Node* leaf = path.back();
  const int p = options_.reinsert_count;
  double clon = leaf->box.CenterLon();
  double clat = leaf->box.CenterLat();
  // Farthest-first: entries whose centers sit farthest from the node
  // center (planar degrees — a heuristic, not a metric claim).
  std::sort(leaf->items.begin(), leaf->items.end(),
            [&](const RtreeItem& a, const RtreeItem& b) {
              double da = std::hypot(a.box.CenterLon() - clon,
                                     a.box.CenterLat() - clat);
              double db = std::hypot(b.box.CenterLon() - clon,
                                     b.box.CenterLat() - clat);
              if (da != db) return da > db;
              return a.id < b.id;
            });
  std::vector<RtreeItem> evicted(leaf->items.begin(),
                                 leaf->items.begin() + p);
  leaf->items.erase(leaf->items.begin(), leaf->items.begin() + p);
  for (size_t i = path.size(); i-- > 0;) {
    Node::RecomputeBox(path[i]);
  }
  stats_.forced_reinserts += evicted.size();
  for (const RtreeItem& item : evicted) {
    InsertImpl(item, /*allow_reinsert=*/false);
  }
}

void RStarTree::SplitNode(std::vector<Node*>& path, size_t level) {
  Node* node = path[level];
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;
  if (node->leaf) {
    Node::SplitEntries(&node->items, &sibling->items, options_);
  } else {
    Node::SplitEntries(&node->children, &sibling->children, options_);
  }
  Node::RecomputeBox(node);
  Node::RecomputeBox(sibling.get());
  ++stats_.splits;
  if (level == 0) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    Node::RecomputeBox(new_root.get());
    root_ = std::move(new_root);
  } else {
    Node* parent = path[level - 1];
    parent->children.push_back(std::move(sibling));
    Node::RecomputeBox(parent);
  }
}

bool RStarTree::Remove(const RtreeItem& item) {
  if (!root_) return false;
  std::vector<Node*> path;
  path.push_back(root_.get());
  if (!RemoveRec(root_.get(), item, path)) return false;
  --size_;
  return true;
}

bool RStarTree::RemoveRec(Node* node, const RtreeItem& item,
                          std::vector<Node*>& path) {
  if (node->leaf) {
    for (auto it = node->items.begin(); it != node->items.end(); ++it) {
      if (*it == item) {
        node->items.erase(it);
        CondenseTree(path);
        return true;
      }
    }
    return false;
  }
  for (auto& child : node->children) {
    if (!child->box.Contains(item.box)) continue;
    path.push_back(child.get());
    if (RemoveRec(child.get(), item, path)) return true;  // path consumed
    path.pop_back();
  }
  return false;
}

void RStarTree::CondenseTree(std::vector<Node*>& path) {
  std::vector<RtreeItem> orphans;
  for (size_t level = path.size(); level-- > 1;) {
    Node* node = path[level];
    Node* parent = path[level - 1];
    if (node->count() < options_.min_entries) {
      Node::CollectItems(node, &orphans);
      auto it = std::find_if(
          parent->children.begin(), parent->children.end(),
          [&](const std::unique_ptr<Node>& c) { return c.get() == node; });
      parent->children.erase(it);
      ++stats_.condensed_nodes;
    } else {
      Node::RecomputeBox(node);
    }
  }
  if (root_->count() > 0) Node::RecomputeBox(root_.get());
  while (root_ && !root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  if (root_ && root_->count() == 0) root_.reset();
  for (const RtreeItem& item : orphans) {
    InsertImpl(item, /*allow_reinsert=*/false);
  }
}

int RStarTree::height() const {
  int h = 0;
  for (const Node* n = root_.get(); n != nullptr;
       n = n->leaf ? nullptr : n->children.front().get()) {
    ++h;
  }
  return h;
}

StBox RStarTree::bounds() const { return root_ ? root_->box : StBox{}; }

void RStarTree::Range(const StBox& query,
                      const std::function<void(const RtreeItem&)>& fn) const {
  if (!root_) return;
  if (query.min_lon > query.max_lon) {
    // Antimeridian-straddling query: evaluate both halves. Stored boxes
    // never wrap, so no item can match twice.
    StBox east = query;
    east.max_lon = 180.0;
    StBox west = query;
    west.min_lon = -180.0;
    Node::RangeVisit(root_.get(), east, fn);
    Node::RangeVisit(root_.get(), west, fn);
    return;
  }
  Node::RangeVisit(root_.get(), query, fn);
}

void RStarTree::WithinRadius(
    double lon, double lat, double radius_m, TimeMs min_t, TimeMs max_t,
    const std::function<void(const RtreeItem&)>& fn) const {
  if (!root_) return;
  double dlat = 0.0, dlon = 0.0;
  RadiusBoundsDeg(lat, radius_m, &dlat, &dlon);
  StBox prune{lon - dlon, lat - dlat, lon + dlon, lat + dlat, min_t, max_t};
  const StBox* pp =
      (prune.min_lon >= -180.0 && prune.max_lon <= 180.0) ? &prune : nullptr;
  Node::RadiusVisit(root_.get(), pp, lon, lat, radius_m, min_t, max_t, fn);
}

std::vector<RtreeItem> RStarTree::NearestK(double lon, double lat, size_t k,
                                           TimeMs min_t, TimeMs max_t) const {
  std::vector<RtreeItem> out;
  if (!root_ || k == 0) return out;

  struct HeapEntry {
    double dist;
    bool is_item;
    uint64_t tie;  // item id; 0 for nodes
    const Node* node;
    const RtreeItem* item;
  };
  // Min-heap on (dist, nodes-before-items, id): popping nodes at equal
  // key first guarantees every tied item is discovered before any tied
  // item is emitted, making results deterministic by (distance, id).
  auto worse = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.dist != b.dist) return a.dist > b.dist;
    if (a.is_item != b.is_item) return a.is_item;
    return a.tie > b.tie;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(worse)> pq(
      worse);
  pq.push({root_->box.MinDistM(lon, lat), false, 0, root_.get(), nullptr});
  while (!pq.empty()) {
    HeapEntry e = pq.top();
    pq.pop();
    if (e.is_item) {
      out.push_back(*e.item);
      if (out.size() == k) break;
      continue;
    }
    if (e.node->leaf) {
      for (const RtreeItem& item : e.node->items) {
        if (!item.box.TimeOverlaps(min_t, max_t)) continue;
        double d = HaversineM(lon, lat, item.box.CenterLon(),
                              item.box.CenterLat());
        pq.push({d, true, item.id, nullptr, &item});
      }
    } else {
      for (const auto& child : e.node->children) {
        if (!child->box.TimeOverlaps(min_t, max_t)) continue;
        pq.push({child->box.MinDistM(lon, lat), false, 0, child.get(),
                 nullptr});
      }
    }
  }
  return out;
}

}  // namespace tcmf::geom
