#include "geom/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace tcmf::geom {

Polygon::Polygon(std::vector<LonLat> ring) : ring_(std::move(ring)) {
  if (ring_.empty()) return;
  // Drop an explicit closing vertex if present.
  if (ring_.size() > 1 &&
      ring_.front().lon == ring_.back().lon &&
      ring_.front().lat == ring_.back().lat) {
    ring_.pop_back();
  }
  bbox_.min_lon = bbox_.max_lon = ring_[0].lon;
  bbox_.min_lat = bbox_.max_lat = ring_[0].lat;
  for (const LonLat& p : ring_) {
    bbox_.min_lon = std::min(bbox_.min_lon, p.lon);
    bbox_.max_lon = std::max(bbox_.max_lon, p.lon);
    bbox_.min_lat = std::min(bbox_.min_lat, p.lat);
    bbox_.max_lat = std::max(bbox_.max_lat, p.lat);
  }
}

Polygon Polygon::Circle(const LonLat& center, double radius_m, int segments) {
  std::vector<LonLat> ring;
  ring.reserve(segments);
  for (int i = 0; i < segments; ++i) {
    double bearing = 360.0 * i / segments;
    ring.push_back(Destination(center, bearing, radius_m));
  }
  return Polygon(std::move(ring));
}

Polygon Polygon::FromBBox(const BBox& box) {
  return Polygon({{box.min_lon, box.min_lat},
                  {box.max_lon, box.min_lat},
                  {box.max_lon, box.max_lat},
                  {box.min_lon, box.max_lat}});
}

bool Polygon::Contains(double lon, double lat) const {
  if (ring_.size() < 3) return false;
  if (!bbox_.Contains(lon, lat)) return false;
  bool inside = false;
  size_t n = ring_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    double xi = ring_[i].lon, yi = ring_[i].lat;
    double xj = ring_[j].lon, yj = ring_[j].lat;
    bool crosses = ((yi > lat) != (yj > lat)) &&
                   (lon < (xj - xi) * (lat - yi) / (yj - yi) + xi);
    if (crosses) inside = !inside;
  }
  return inside;
}

double Polygon::DistanceM(const LonLat& p) const {
  if (ring_.size() < 2) return std::numeric_limits<double>::infinity();
  if (Contains(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  size_t n = ring_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    best = std::min(best, PointSegmentDistanceM(p, ring_[j], ring_[i]));
  }
  return best;
}

double Polygon::PlanarArea() const {
  double area = 0.0;
  size_t n = ring_.size();
  if (n < 3) return 0.0;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    area += (ring_[j].lon + ring_[i].lon) * (ring_[j].lat - ring_[i].lat);
  }
  return std::fabs(area) / 2.0;
}

LonLat Polygon::Centroid() const {
  LonLat c;
  if (ring_.empty()) return c;
  for (const LonLat& p : ring_) {
    c.lon += p.lon;
    c.lat += p.lat;
  }
  c.lon /= ring_.size();
  c.lat /= ring_.size();
  return c;
}

double PointSegmentDistanceM(const LonLat& p, const LonLat& a,
                             const LonLat& b) {
  // Project into a local tangent plane centred at `a`.
  Enu pe = ToEnu(a, p);
  Enu be = ToEnu(a, b);
  double len2 = be.x * be.x + be.y * be.y;
  if (len2 <= 0.0) return HaversineM(p, a);
  double t = (pe.x * be.x + pe.y * be.y) / len2;
  t = std::clamp(t, 0.0, 1.0);
  double dx = pe.x - t * be.x;
  double dy = pe.y - t * be.y;
  return std::sqrt(dx * dx + dy * dy);
}

std::string ToWktPoint(const LonLat& p) {
  return StrFormat("POINT (%.6f %.6f)", p.lon, p.lat);
}

std::string ToWktLineString(const std::vector<LonLat>& pts) {
  std::string out = "LINESTRING (";
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.6f %.6f", pts[i].lon, pts[i].lat);
  }
  out += ")";
  return out;
}

std::string ToWktPolygon(const Polygon& poly) {
  std::string out = "POLYGON ((";
  const auto& ring = poly.ring();
  for (size_t i = 0; i < ring.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.6f %.6f", ring[i].lon, ring[i].lat);
  }
  if (!ring.empty()) {
    out += StrFormat(", %.6f %.6f", ring[0].lon, ring[0].lat);
  }
  out += "))";
  return out;
}

namespace {

// Parses "x y, x y, ..." coordinate lists.
Result<std::vector<LonLat>> ParseCoordList(std::string_view body) {
  std::vector<LonLat> pts;
  for (const std::string& pair : StrSplit(body, ',')) {
    std::string_view trimmed = StrTrim(pair);
    size_t space = trimmed.find(' ');
    if (space == std::string_view::npos) {
      return Status::ParseError("bad WKT coordinate pair: '" +
                                std::string(trimmed) + "'");
    }
    Result<double> lon = ParseDouble(trimmed.substr(0, space));
    Result<double> lat = ParseDouble(trimmed.substr(space + 1));
    if (!lon.ok()) return lon.status();
    if (!lat.ok()) return lat.status();
    pts.push_back({lon.value(), lat.value()});
  }
  return pts;
}

// Extracts the text between the first '(' at `depth` parens and its match.
Result<std::string> InnerParens(const std::string& wkt, int depth) {
  size_t start = 0;
  int d = 0;
  for (size_t i = 0; i < wkt.size(); ++i) {
    if (wkt[i] == '(') {
      ++d;
      if (d == depth) start = i + 1;
    } else if (wkt[i] == ')') {
      if (d == depth) return wkt.substr(start, i - start);
      --d;
    }
  }
  return Status::ParseError("unbalanced parentheses in WKT");
}

}  // namespace

Result<LonLat> ParseWktPoint(const std::string& wkt) {
  if (!StrStartsWith(StrToLower(wkt), "point")) {
    return Status::ParseError("not a WKT POINT: " + wkt);
  }
  Result<std::string> body = InnerParens(wkt, 1);
  if (!body.ok()) return body.status();
  Result<std::vector<LonLat>> pts = ParseCoordList(body.value());
  if (!pts.ok()) return pts.status();
  if (pts.value().size() != 1) {
    return Status::ParseError("POINT must have exactly one coordinate");
  }
  return pts.value()[0];
}

Result<std::vector<LonLat>> ParseWktLineString(const std::string& wkt) {
  if (!StrStartsWith(StrToLower(wkt), "linestring")) {
    return Status::ParseError("not a WKT LINESTRING: " + wkt);
  }
  Result<std::string> body = InnerParens(wkt, 1);
  if (!body.ok()) return body.status();
  return ParseCoordList(body.value());
}

Result<Polygon> ParseWktPolygon(const std::string& wkt) {
  if (!StrStartsWith(StrToLower(wkt), "polygon")) {
    return Status::ParseError("not a WKT POLYGON: " + wkt);
  }
  Result<std::string> body = InnerParens(wkt, 2);
  if (!body.ok()) return body.status();
  Result<std::vector<LonLat>> pts = ParseCoordList(body.value());
  if (!pts.ok()) return pts.status();
  if (pts.value().size() < 4) {
    return Status::ParseError("POLYGON ring needs at least 4 vertices");
  }
  return Polygon(std::move(pts).value());
}

}  // namespace tcmf::geom
