#ifndef TCMF_GEOM_GRID_H_
#define TCMF_GEOM_GRID_H_

#include <cstdint>
#include <vector>

#include "geom/geometry.h"

namespace tcmf::geom {

/// Equi-grid space partitioning over a bounding box (Section 4.2.4): the
/// blocking structure used by link discovery and the spatial half of the
/// store's spatio-temporal encoding. Cells are indexed row-major.
class EquiGrid {
 public:
  EquiGrid(const BBox& extent, uint32_t cols, uint32_t rows);

  uint32_t cols() const { return cols_; }
  uint32_t rows() const { return rows_; }
  uint32_t cell_count() const { return cols_ * rows_; }
  const BBox& extent() const { return extent_; }

  /// Cell index of a point; out-of-extent points clamp to edge cells.
  uint32_t CellOf(double lon, double lat) const;

  /// Column/row of a point (clamped).
  void ColRowOf(double lon, double lat, uint32_t* col, uint32_t* row) const;

  uint32_t CellIndex(uint32_t col, uint32_t row) const {
    return row * cols_ + col;
  }

  /// Geographic bounds of a cell.
  BBox CellBounds(uint32_t cell) const;

  /// Indexes of all cells whose bounds intersect `box`.
  std::vector<uint32_t> CellsIntersecting(const BBox& box) const;

  /// Indexes of the 3x3 neighbourhood (including `cell`), clipped at the
  /// grid edges. Used for proximity (nearTo) candidate generation.
  std::vector<uint32_t> Neighborhood(uint32_t cell) const;

 private:
  BBox extent_;
  uint32_t cols_;
  uint32_t rows_;
  double cell_w_;
  double cell_h_;
};

}  // namespace tcmf::geom

#endif  // TCMF_GEOM_GRID_H_
