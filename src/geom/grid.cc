#include "geom/grid.h"

#include <algorithm>

namespace tcmf::geom {

EquiGrid::EquiGrid(const BBox& extent, uint32_t cols, uint32_t rows)
    : extent_(extent),
      cols_(cols == 0 ? 1 : cols),
      rows_(rows == 0 ? 1 : rows),
      cell_w_(extent.width() / (cols == 0 ? 1 : cols)),
      cell_h_(extent.height() / (rows == 0 ? 1 : rows)) {}

void EquiGrid::ColRowOf(double lon, double lat, uint32_t* col,
                        uint32_t* row) const {
  double fx = (lon - extent_.min_lon) / cell_w_;
  double fy = (lat - extent_.min_lat) / cell_h_;
  int64_t c = static_cast<int64_t>(fx);
  int64_t r = static_cast<int64_t>(fy);
  c = std::clamp<int64_t>(c, 0, cols_ - 1);
  r = std::clamp<int64_t>(r, 0, rows_ - 1);
  *col = static_cast<uint32_t>(c);
  *row = static_cast<uint32_t>(r);
}

uint32_t EquiGrid::CellOf(double lon, double lat) const {
  uint32_t col, row;
  ColRowOf(lon, lat, &col, &row);
  return CellIndex(col, row);
}

BBox EquiGrid::CellBounds(uint32_t cell) const {
  uint32_t row = cell / cols_;
  uint32_t col = cell % cols_;
  BBox out;
  out.min_lon = extent_.min_lon + col * cell_w_;
  out.max_lon = out.min_lon + cell_w_;
  out.min_lat = extent_.min_lat + row * cell_h_;
  out.max_lat = out.min_lat + cell_h_;
  return out;
}

std::vector<uint32_t> EquiGrid::CellsIntersecting(const BBox& box) const {
  uint32_t c0, r0, c1, r1;
  ColRowOf(box.min_lon, box.min_lat, &c0, &r0);
  ColRowOf(box.max_lon, box.max_lat, &c1, &r1);
  std::vector<uint32_t> out;
  out.reserve(static_cast<size_t>(c1 - c0 + 1) * (r1 - r0 + 1));
  for (uint32_t r = r0; r <= r1; ++r) {
    for (uint32_t c = c0; c <= c1; ++c) {
      out.push_back(CellIndex(c, r));
    }
  }
  return out;
}

std::vector<uint32_t> EquiGrid::Neighborhood(uint32_t cell) const {
  int64_t row = cell / cols_;
  int64_t col = cell % cols_;
  std::vector<uint32_t> out;
  out.reserve(9);
  for (int64_t dr = -1; dr <= 1; ++dr) {
    for (int64_t dc = -1; dc <= 1; ++dc) {
      int64_t r = row + dr;
      int64_t c = col + dc;
      if (r < 0 || c < 0 || r >= rows_ || c >= cols_) continue;
      out.push_back(CellIndex(static_cast<uint32_t>(c),
                              static_cast<uint32_t>(r)));
    }
  }
  return out;
}

}  // namespace tcmf::geom
