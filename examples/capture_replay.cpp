// Capture-then-replay: the durable-broker pattern at the heart of the
// datAcron architecture (the paper wires every pair of components through
// Kafka topics). Here a synthetic AIS feed is captured into an mlog — the
// single-node Kafka substitute — then replayed twice from disk: once in
// full by a late-joining consumer, once from an event-time lower bound.
// Replayed records are byte-faithful: they compare == to the originals.

#include <cstdio>
#include <filesystem>

#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "mlog/log.h"
#include "mlog/stages.h"
#include "stream/pipeline.h"
#include "stream/record.h"

using namespace tcmf;

int main() {
  const std::string kLogDir = "capture_replay_log";
  std::filesystem::remove_all(kLogDir);

  // 1. A synthetic AIS feed: 10 vessels for one hour.
  datagen::VesselSimConfig config;
  config.vessel_count = 10;
  config.duration_ms = kMillisPerHour;
  config.report_interval_ms = 10000;
  Rng rng(7);
  auto ports = datagen::MakePorts(rng, config.extent, 6);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  datagen::VesselSimOutput data = sim.Run();
  std::printf("simulated %zu AIS reports\n", data.stream.size());

  // 2. Capture: stream the feed through a pipeline into a durable log.
  mlog::LogOptions options;
  options.dir = kLogDir;
  options.segment_bytes = 256 << 10;  // roll every 256 KiB
  options.fsync_policy = mlog::FsyncPolicy::kPerBatch;
  {
    auto log = mlog::Log::Open(options).value();
    stream::Pipeline pipeline;
    auto records =
        stream::Flow<Position>::FromVector(
            &pipeline, data.stream, {.name = "ais.source", .capacity = 512})
            .Map<stream::Record>(
                [](const Position& p) { return stream::PositionToRecord(p); },
                {.name = "to_record", .capacity = 512});
    // The append batch (one fsync per flush) maps to the sink stage's
    // batch policy.
    mlog::LogSink(std::move(records), log.get(),
                  {.batch = stream::BatchPolicy::Batched(/*max_batch=*/128)});
    pipeline.Run();
    std::printf("captured %llu records into %zu segment(s), %llu fsyncs\n",
                static_cast<unsigned long long>(log->next_offset()),
                log->segment_count(),
                static_cast<unsigned long long>(log->metrics().fsyncs));
  }  // log closed — records survive on disk

  // 3. Replay #1: a late-joining consumer reads the whole capture.
  auto log = mlog::Log::Open(options).value();
  std::printf("reopened: offsets [%llu, %llu), recovered %llu records\n",
              static_cast<unsigned long long>(log->start_offset()),
              static_cast<unsigned long long>(log->next_offset()),
              static_cast<unsigned long long>(
                  log->metrics().recovered_records));
  {
    stream::Pipeline pipeline;
    size_t replayed = 0, matched = 0;
    mlog::LogSource(&pipeline, log.get())
        .Sink([&](const stream::Record& r) {
          if (replayed < data.stream.size() &&
              r == stream::PositionToRecord(data.stream[replayed])) {
            ++matched;
          }
          ++replayed;
        });
    pipeline.Run();
    std::printf("full replay: %zu records, %zu byte-faithful matches\n",
                replayed, matched);
  }

  // 4. Replay #2: only the second half-hour, by event-time lower bound —
  //    what a prediction component does when it rebuilds state after a
  //    restart without reprocessing history it no longer needs.
  {
    stream::Pipeline pipeline;
    mlog::LogSourceOptions source_options;
    source_options.start_time = data.stream.front().t + 30 * kMillisPerMinute;
    source_options.stage.name = "replay.tail";
    size_t tail = 0;
    mlog::LogSource(&pipeline, log.get(), source_options)
        .Sink([&tail](const stream::Record&) { ++tail; });
    pipeline.Run();
    std::printf("time-bounded replay (last 30 min): %zu records\n", tail);
  }

  std::filesystem::remove_all(kLogDir);
  return 0;
}
