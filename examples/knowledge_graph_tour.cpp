// Knowledge-graph tour (Section 4): RDFize surveillance and weather data
// with graph templates, discover spatio-temporal links, load everything
// into the batch store, and answer spatio-temporal star queries under
// different physical plans.

#include <cstdio>

#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "datagen/weather.h"
#include "linkdiscovery/linker.h"
#include "rdf/bgp.h"
#include "rdf/graph.h"
#include "rdf/rdfgen.h"
#include "rdf/sparql.h"
#include "rdf/vocab.h"
#include "store/kgstore.h"
#include "synopses/critical_points.h"

using namespace tcmf;

int main() {
  // --- Sources ---
  datagen::VesselSimConfig config;
  config.vessel_count = 20;
  config.duration_ms = 3 * kMillisPerHour;
  Rng rng(17);
  auto ports = datagen::MakePorts(rng, config.extent, 8);
  auto regions = datagen::MakeRegionsNear(
      rng, datagen::AreaCentroids(ports), 10, "natura", 8000, 25000,
      4000, 25000);
  datagen::WeatherField weather(rng, config.extent);
  datagen::VesselSimulator sim(config, ports, regions, &weather);
  auto data = sim.Run();

  // --- Synopses (the stream we lift to RDF) ---
  synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
  std::vector<synopses::CriticalPoint> critical;
  for (const Position& p : data.stream) {
    for (auto& cp : gen.Observe(p)) critical.push_back(cp);
  }
  std::printf("stream: %zu raw reports -> %zu critical points\n",
              data.stream.size(), critical.size());

  // --- RDFization with graph templates ---
  rdf::GraphTemplate position_tmpl;
  rdf::VariableVector position_vars;
  rdf::MakePositionTemplate("http://tcmf/", &position_tmpl, &position_vars);
  rdf::TripleGenerator position_gen(position_tmpl, position_vars);

  rdf::GraphTemplate weather_tmpl;
  rdf::VariableVector weather_vars;
  rdf::MakeWeatherTemplate("http://tcmf/", &weather_tmpl, &weather_vars);
  rdf::TripleGenerator weather_gen(weather_tmpl, weather_vars);

  rdf::Graph graph;
  for (const auto& cp : critical) {
    for (const rdf::Triple& t :
         position_gen.GenerateOne(stream::PositionToRecord(cp.pos))) {
      graph.Add(t);
    }
  }
  for (TimeMs t = 0; t < config.duration_ms; t += 3 * kMillisPerHour) {
    rdf::VectorConnector conn(weather.ForecastGrid(t, 8, 6));
    weather_gen.Run(conn, [&](const rdf::Triple& tr) { graph.Add(tr); });
  }
  std::printf("knowledge graph: %zu triples, %zu dictionary terms\n",
              graph.size(), graph.dictionary().size());

  // --- Link discovery: enrich with dul:within / nearTo relations ---
  linkdiscovery::LinkerConfig link_config;
  link_config.extent = config.extent;
  linkdiscovery::SpatioTemporalLinker linker(link_config, regions);
  size_t within = 0, near = 0;
  for (const auto& cp : critical) {
    for (const auto& link : linker.Observe(cp.pos)) {
      rdf::Term node = rdf::Iri(
          "http://tcmf/node/" + std::to_string(link.subject_entity) + "/" +
          std::to_string(link.subject_t));
      rdf::Term area =
          rdf::Iri("http://tcmf/area/" + std::to_string(link.object_id));
      bool is_within = link.relation == linkdiscovery::Link::Relation::kWithin;
      graph.Add({node,
                 rdf::Iri(is_within ? rdf::vocab::kWithin
                                    : rdf::vocab::kNearTo),
                 area});
      ++(is_within ? within : near);
    }
  }
  std::printf("link discovery: %zu within, %zu nearTo relations "
              "(%zu mask skips)\n",
              within, near, linker.stats().mask_skips);

  // --- SPARQL-style BGP: vessels that entered a monitored region ---
  auto rows = rdf::EvaluateBgp(
      graph, {{rdf::PatternTerm::Var("n"),
               rdf::PatternTerm::Const(rdf::Iri(rdf::vocab::kWithin)),
               rdf::PatternTerm::Var("a")},
              {rdf::PatternTerm::Var("n"),
               rdf::PatternTerm::Const(rdf::Iri(rdf::vocab::kOfMovingObject)),
               rdf::PatternTerm::Var("v")}});
  std::printf("BGP 'node within area, node of vessel': %zu bindings\n",
              rows.size());

  // The same question in SPARQL text syntax, plus a speed filter.
  auto sparql = rdf::RunSparql(graph, R"(
    PREFIX dc: <http://www.datacron-project.eu/datAcron#>
    PREFIX dul: <http://www.ontologydesignpatterns.org/ont/dul/DUL.owl#>
    SELECT ?n ?v
    WHERE {
      ?n dul:hasLocation ?a .
      ?n dc:ofMovingObject ?vessel .
      ?n dc:hasSpeed ?v .
      FILTER(?v > 1.0)
    }
  )");
  if (sparql.ok()) {
    std::printf("SPARQL (same query + speed > 1 m/s filter): %zu rows\n",
                sparql.value().rows.size());
  } else {
    std::printf("SPARQL error: %s\n", sparql.status().ToString().c_str());
  }

  // --- Batch store: spatio-temporal star queries under three plans ---
  geom::StCellEncoder encoder(config.extent, 8, 0, 15 * kMillisPerMinute);
  store::KnowledgeStore kg(encoder, 8);
  for (const auto& cp : critical) {
    rdf::Term node = rdf::Iri(
        "http://tcmf/node/" + std::to_string(cp.pos.entity_id) + "/" +
        std::to_string(cp.pos.t));
    kg.AddPositionNode(node, cp.pos.lon, cp.pos.lat, cp.pos.t);
    kg.Add({node, rdf::Iri(rdf::vocab::kHasSpeed),
            rdf::DoubleLiteral(cp.pos.speed_mps)});
    kg.Add({node, rdf::Iri(rdf::vocab::kHasHeading),
            rdf::DoubleLiteral(cp.pos.heading_deg)});
  }
  kg.Compile();

  store::StarQuery query;
  query.predicate_ids = {
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasSpeed)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasHeading)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasTimestamp))};
  query.has_st_constraint = true;
  query.st_box.bounds = {-2.0, 37.0, 6.0, 42.0};
  query.st_box.t_begin = 30 * kMillisPerMinute;
  query.st_box.t_end = 150 * kMillisPerMinute;

  std::printf("\nstar query with spatio-temporal box, by plan:\n");
  kg.BuildPropertyTable(query.predicate_ids);
  for (store::StarPlan plan :
       {store::StarPlan::kTriplesTableScan,
        store::StarPlan::kVerticalPartition,
        store::StarPlan::kPropertyTable,
        store::StarPlan::kVerticalPartitionPushdown,
        store::StarPlan::kPropertyTablePushdown}) {
    store::StarQueryMetrics metrics;
    auto result = kg.RunStar(query, plan, &metrics);
    std::printf("  %-36s %4zu rows, %7zu scanned, %5zu exact st-filters, "
                "%.2f ms\n",
                store::StarPlanName(plan), result.size(),
                metrics.triples_scanned, metrics.st_filter_evaluations,
                metrics.wall_ms);
  }
  return 0;
}
