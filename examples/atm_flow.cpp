// ATM scenario (Section 2): flight-plan adherence monitoring, route
// clustering, per-waypoint deviation prediction with the Hybrid
// Clustering/HMM model, and sector demand counting.

#include <cstdio>
#include <map>

#include "datagen/areas.h"
#include "datagen/flight.h"
#include "datagen/weather.h"
#include "insitu/lowlevel.h"
#include "prediction/trajpred.h"
#include "va/demand.h"
#include "va/relevance.h"

using namespace tcmf;

namespace {

prediction::TpExample MakeExample(const datagen::SimulatedFlight& flight,
                                  const datagen::WeatherField& weather) {
  prediction::TpExample ex;
  std::vector<geom::LonLat> wps;
  std::vector<TimeMs> etas;
  for (const auto& wp : flight.plan.waypoints) {
    wps.push_back(wp.loc);
    etas.push_back(wp.eta);
    prediction::EnrichedPoint ep;
    ep.loc = wp.loc;
    ep.t = wp.eta;
    auto w = weather.Sample(wp.loc.lon, wp.loc.lat, wp.eta);
    ep.features = {w.severity,
                   static_cast<double>(flight.aircraft.cls) / 2.0};
    ex.reference.push_back(ep);
  }
  ex.deviations_m = prediction::WaypointDeviations(wps, etas, flight.actual);
  return ex;
}

}  // namespace

int main() {
  datagen::FlightSimConfig config;
  config.flight_count = 60;
  config.airway_count = 3;
  Rng rng(31);
  datagen::WeatherField weather(rng, config.extent, 22.0);
  datagen::FlightSimulator sim(config, datagen::DefaultOriginAirport(),
                               datagen::DefaultDestinationAirport(),
                               &weather);
  auto flights = sim.Run();
  std::printf("=== ATM flow analysis: %zu flights %s -> %s ===\n\n",
              flights.size(), flights[0].plan.origin.c_str(),
              flights[0].plan.destination.c_str());

  // --- Flight-plan adherence ---
  double total_dev = 0.0;
  size_t waypoints = 0;
  for (const auto& f : flights) {
    prediction::TpExample ex = MakeExample(f, weather);
    for (size_t i = 1; i + 1 < ex.deviations_m.size(); ++i) {
      total_dev += std::fabs(ex.deviations_m[i]);
      ++waypoints;
    }
  }
  std::printf("mean |cross-track deviation| from plan: %.0f m over %zu "
              "waypoint passages\n",
              total_dev / waypoints, waypoints);

  // --- Route clustering on the cruise phase only (relevance-aware) ---
  std::vector<va::FlaggedTrajectory> flagged;
  for (const auto& f : flights) {
    flagged.push_back(va::FlagByPredicate(
        f.actual, [](const Position& p) { return p.alt_m > 5000.0; }));
  }
  auto labels = va::ClusterByRelevantParts(flagged, 25000.0, 3, 3);
  std::map<int, size_t> cluster_sizes;
  for (int l : labels) ++cluster_sizes[l];
  std::printf("\ncruise-phase route clusters:\n");
  for (const auto& [label, count] : cluster_sizes) {
    if (label < 0) {
      std::printf("  noise      : %zu flights\n", count);
    } else {
      std::printf("  cluster %2d : %zu flights\n", label, count);
    }
  }

  // --- Hybrid Clustering/HMM deviation prediction ---
  std::vector<prediction::TpExample> examples;
  for (const auto& f : flights) examples.push_back(MakeExample(f, weather));
  size_t train_n = examples.size() * 3 / 4;
  std::vector<prediction::TpExample> train(examples.begin(),
                                           examples.begin() + train_n);
  prediction::HybridTpOptions options;
  options.erp.spatial_scale_m = 20000.0;
  options.reachability_threshold = 3.0;
  auto model = prediction::HybridTpModel::Train(train, options);
  std::printf("\nhybrid TP model: %d clusters, %zu parameters\n",
              model.cluster_count(), model.TotalParameters());

  double se = 0.0;
  size_t n = 0;
  for (size_t i = train_n; i < examples.size(); ++i) {
    auto predicted = model.PredictDeviations(examples[i].reference, {});
    for (size_t w = 1; w + 1 < predicted.size(); ++w) {
      double err = predicted[w] - examples[i].deviations_m[w];
      se += err * err;
      ++n;
    }
  }
  std::printf("held-out per-waypoint deviation RMSE: %.0f m (%zu waypoints)\n",
              std::sqrt(se / n), n);

  // --- Sector demand: entries per airspace sector ---
  auto sectors = datagen::MakeSectors(config.extent, 4, 3);
  insitu::AreaTransitionDetector detector(sectors, config.extent);
  std::map<uint64_t, size_t> demand;
  for (const auto& f : flights) {
    for (const Position& p : f.actual.points) {
      for (const auto& event : detector.Observe(p)) {
        if (event.type == insitu::AreaEvent::Type::kEntry) {
          ++demand[event.area_id];
        }
      }
    }
  }
  std::printf("\nsector demand (entries):\n");
  for (const auto& [sector, count] : demand) {
    std::printf("  sector %llu: %zu\n",
                static_cast<unsigned long long>(sector), count);
  }

  // --- Demand/capacity balance: overloads trigger regulations ---
  va::SectorDemandMonitor monitor(kMillisPerHour);
  insitu::AreaTransitionDetector detector2(sectors, config.extent);
  for (const auto& f : flights) {
    for (const Position& p : f.actual.points) {
      for (const auto& event : detector2.Observe(p)) {
        if (event.type == insitu::AreaEvent::Type::kEntry) {
          monitor.RecordEntry(event.area_id, event.t);
        }
      }
    }
  }
  auto overloads = monitor.DetectOverloads({}, /*default_capacity=*/8);
  std::printf("\ndemand/capacity: %zu overloaded sector-hours at capacity 8"
              " (each would publish a regulation)\n", overloads.size());
  for (size_t i = 0; i < std::min<size_t>(overloads.size(), 5); ++i) {
    std::printf("  sector %llu at %+.0f h: demand %zu > capacity %zu\n",
                static_cast<unsigned long long>(overloads[i].sector),
                static_cast<double>(overloads[i].bin_start) / kMillisPerHour,
                overloads[i].demand, overloads[i].capacity);
  }
  return 0;
}
