// Maritime monitoring scenario (Section 2 of the paper): protected-area
// surveillance, collision warnings between fishing vessels and commercial
// traffic, heading-reversal forecasting for trawlers, and a situation
// dashboard — the components of the real-time layer wired together.

#include <cstdio>
#include <map>
#include <unordered_map>

#include "cep/forecast.h"
#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "datagen/weather.h"
#include "insitu/lowlevel.h"
#include "prediction/cpa.h"
#include "linkdiscovery/linker.h"
#include "va/density.h"
#include "va/quality.h"

using namespace tcmf;

int main() {
  datagen::VesselSimConfig config;
  config.vessel_count = 40;
  config.duration_ms = 6 * kMillisPerHour;
  config.fishing_fraction = 0.5;
  config.gap_probability = 0.003;
  Rng rng(21);
  auto ports = datagen::MakePorts(rng, config.extent, 10);
  auto anchors = datagen::AreaCentroids(ports);
  auto protected_areas = datagen::MakeRegionsNear(
      rng, anchors, 12, "protected", 6000, 18000, 4000, 30000);
  auto fishing_areas = datagen::MakeRegionsNear(
      rng, anchors, 8, "fishing", 10000, 25000, 8000, 25000);
  datagen::WeatherField weather(rng, config.extent);
  datagen::VesselSimulator sim(config, ports, fishing_areas, &weather);
  datagen::VesselSimOutput data = sim.Run();

  std::printf("=== maritime situation monitoring ===\n");
  std::printf("traffic: %zu vessels, %zu reports, %zu lost to comm gaps\n\n",
              data.registry.size(), data.stream.size(),
              data.reports_lost_to_gaps);

  std::unordered_map<uint64_t, datagen::VesselType> vessel_type;
  for (const auto& v : data.registry) vessel_type[v.mmsi] = v.type;

  // --- Protected-area surveillance (IUU fishing watch) ---
  insitu::AreaTransitionDetector protector(protected_areas, config.extent);
  std::map<uint64_t, size_t> entries_by_area;
  size_t fishing_intrusions = 0;
  for (const Position& p : data.stream) {
    for (const auto& event : protector.Observe(p)) {
      if (event.type != insitu::AreaEvent::Type::kEntry) continue;
      ++entries_by_area[event.area_id];
      if (vessel_type[event.entity_id] == datagen::VesselType::kFishing) {
        ++fishing_intrusions;
      }
    }
  }
  std::printf("protected-area entries: %zu areas visited, "
              "%zu fishing-vessel intrusions flagged\n",
              entries_by_area.size(), fishing_intrusions);

  // --- Collision warnings: commercial traffic near fishing vessels ---
  linkdiscovery::LinkerConfig link_config;
  link_config.extent = config.extent;
  link_config.near_distance_m = 3000.0;
  link_config.temporal_window_ms = 2 * kMillisPerMinute;
  link_config.link_moving_pairs = true;
  linkdiscovery::SpatioTemporalLinker linker(link_config, {});
  size_t collision_warnings = 0;
  for (const Position& p : data.stream) {
    for (const auto& link : linker.Observe(p)) {
      if (!link.object_is_entity) continue;
      bool one_fishing =
          vessel_type[link.subject_entity] == datagen::VesselType::kFishing ||
          vessel_type[link.object_id] == datagen::VesselType::kFishing;
      if (one_fishing) ++collision_warnings;
    }
  }
  std::printf("close encounters involving a fishing vessel: %zu\n",
              collision_warnings);

  // --- CPA/TCPA risk screen (COLREG-style warnings) ---
  prediction::CpaScreenOptions cpa_options;
  cpa_options.dcpa_m = 500.0;
  cpa_options.tcpa_s = 10 * 60.0;
  cpa_options.max_range_m = 10000.0;
  prediction::CpaScreen cpa_screen(cpa_options);
  size_t cpa_warnings = 0, cpa_fishing = 0;
  for (const Position& p : data.stream) {
    if (p.speed_mps < 0.5) continue;  // moored traffic is not a risk
    for (const auto& warning : cpa_screen.Observe(p)) {
      ++cpa_warnings;
      if (vessel_type[warning.entity_a] == datagen::VesselType::kFishing ||
          vessel_type[warning.entity_b] == datagen::VesselType::kFishing) {
        ++cpa_fishing;
      }
    }
  }
  std::printf("CPA risk screen: %zu collision warnings "
              "(%zu involving fishing vessels)\n",
              cpa_warnings, cpa_fishing);

  // --- Heading-reversal forecasting for trawlers (Wayeb) ---
  synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
  std::unordered_map<uint64_t, std::vector<int>> symbols;
  for (const Position& p : data.stream) {
    for (const auto& cp : gen.Observe(p)) {
      symbols[cp.pos.entity_id].push_back(cep::CriticalPointSymbol(cp));
    }
  }
  cep::Dfa dfa = cep::CompileStreamingDfa(cep::NorthToSouthReversalPattern(),
                                          cep::kHeadingSymbolCount);
  // Train the input model on all vessels' symbol streams, then forecast.
  std::vector<int> training;
  for (const auto& [id, seq] : symbols) {
    training.insert(training.end(), seq.begin(), seq.end());
  }
  cep::MarkovInputModel input(cep::kHeadingSymbolCount, 1);
  input.Fit(training);
  size_t detections = 0, forecasts = 0, correct = 0;
  for (const auto& [id, seq] : symbols) {
    cep::ForecastScore score =
        cep::ScoreForecasts(dfa, input, seq, 0.4, 30);
    forecasts += score.forecasts;
    correct += score.correct;
    detections += cep::Detect(dfa, seq).size();
  }
  std::printf("north-to-south reversals: %zu detected; %zu forecasts, "
              "precision %.2f\n",
              detections, forecasts,
              forecasts ? static_cast<double>(correct) / forecasts : 0.0);

  // --- Data quality snapshot ---
  std::unordered_map<uint64_t, Trajectory> by_entity;
  for (const Position& p : data.stream) {
    by_entity[p.entity_id].points.push_back(p);
  }
  std::vector<Trajectory> trajs;
  for (auto& [id, t] : by_entity) trajs.push_back(std::move(t));
  va::QualityOptions qopt;
  qopt.max_speed_mps = 30.0;
  std::printf("\n%s", va::AssessQuality(trajs, qopt).Render().c_str());

  // --- Dashboard: traffic density map ---
  va::DensityMap density(config.extent, 64, 24);
  for (const Position& p : data.stream) density.Add(p.lon, p.lat);
  std::printf("\ntraffic density (north at top):\n%s",
              density.RenderAscii().c_str());
  return 0;
}
