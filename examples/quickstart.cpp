// Quickstart: simulate vessel traffic, compress it into synopses, detect
// low-level events, and predict future locations — the real-time layer of
// the tcmf library in ~80 lines.

#include <cstdio>
#include <unordered_map>

#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "insitu/lowlevel.h"
#include "prediction/rmf.h"
#include "synopses/critical_points.h"

using namespace tcmf;

int main() {
  // 1. A synthetic AIS feed: 15 vessels for two hours.
  datagen::VesselSimConfig config;
  config.vessel_count = 15;
  config.duration_ms = 2 * kMillisPerHour;
  Rng rng(7);
  auto ports = datagen::MakePorts(rng, config.extent, 6);
  auto fishing = datagen::MakeRegionsNear(
      rng, datagen::AreaCentroids(ports), 6, "fishing", 8000, 20000,
      6000, 18000);
  datagen::VesselSimulator sim(config, ports, fishing, nullptr);
  datagen::VesselSimOutput data = sim.Run();
  std::printf("simulated %zu AIS reports from %zu vessels\n",
              data.stream.size(), data.registry.size());

  // 2. Synopses: keep only the critical points.
  synopses::SynopsesGenerator synopses_gen(
      synopses::SynopsesConfig::ForMaritime());
  std::unordered_map<int, size_t> by_type;
  for (const Position& p : data.stream) {
    for (const auto& cp : synopses_gen.Observe(p)) {
      ++by_type[static_cast<int>(cp.type)];
    }
  }
  std::printf("compression: %.1f%% of reports dropped\n",
              100.0 * synopses_gen.CompressionRatio());
  for (const auto& [type, count] : by_type) {
    std::printf("  %-20s %zu\n",
                synopses::CriticalPointTypeName(
                    static_cast<synopses::CriticalPointType>(type)),
                count);
  }

  // 3. Low-level events: who entered a fishing area?
  insitu::AreaTransitionDetector detector(fishing, config.extent);
  size_t entries = 0;
  for (const Position& p : data.stream) {
    for (const auto& event : detector.Observe(p)) {
      if (event.type == insitu::AreaEvent::Type::kEntry) ++entries;
    }
  }
  std::printf("fishing-area entries detected: %zu\n", entries);

  // 4. Future location prediction with RMF* on the first vessel.
  const Trajectory& traj = data.truth[0];
  prediction::RmfStarPredictor predictor;
  size_t split = traj.points.size() / 2;
  for (size_t i = 0; i < split; ++i) predictor.Observe(traj.points[i]);
  auto predicted = predictor.Predict(6);
  std::printf("vessel %llu, predicting %zu steps ahead:\n",
              static_cast<unsigned long long>(traj.entity_id),
              predicted.size());
  for (size_t k = 0; k < predicted.size(); ++k) {
    const Position& truth = traj.points[split + k];
    double err = geom::HaversineM(predicted[k].loc.lon, predicted[k].loc.lat,
                                  truth.lon, truth.lat);
    std::printf("  +%zus: predicted (%.4f, %.4f), error %.0f m\n",
                (k + 1) * 10, predicted[k].loc.lon, predicted[k].loc.lat,
                err);
  }
  return 0;
}
