// Ablations over the design choices DESIGN.md calls out:
//   A1  synopses heading threshold — the compression/error frontier
//   A2  RMF* history window — accuracy at the 1-minute horizon
//   A3  link-discovery mask resolution — throughput vs build cost
//   A4  store partitions & columnar encoding — scan time and bytes/triple
// Each knob is swept with everything else fixed, on the same workloads the
// headline benches use.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "common/stats.h"
#include "common/strings.h"
#include "datagen/areas.h"
#include "datagen/flight.h"
#include "datagen/vessel.h"
#include "geom/geo.h"
#include "linkdiscovery/linker.h"
#include "prediction/rmf.h"
#include "rdf/vocab.h"
#include "store/columnar.h"
#include "store/kgstore.h"
#include "synopses/critical_points.h"

using namespace tcmf;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  std::printf("=== ablations ===\n");

  // ---------------- A1: synopses heading threshold ----------------
  {
    std::printf("\n[A1] synopses heading threshold "
                "(compression vs reconstruction error):\n");
    datagen::VesselSimConfig config;
    config.vessel_count = 20;
    config.duration_ms = 3 * kMillisPerHour;
    config.position_noise_m = 10.0;
    config.gap_probability = 0.0;
    Rng rng(5);
    auto ports = datagen::MakePorts(rng, config.extent, 8);
    auto fishing = datagen::MakeRegionsNear(
        rng, datagen::AreaCentroids(ports), 5, "fishing", 10000, 25000,
        8000, 20000);
    datagen::VesselSimulator sim(config, ports, fishing, nullptr);
    auto data = sim.Run();

    std::printf("  %-12s %12s %12s %12s\n", "threshold", "compression",
                "rmse (m)", "max (m)");
    for (double threshold : {4.0, 8.0, 12.0, 20.0, 35.0, 60.0}) {
      synopses::SynopsesConfig sc = synopses::SynopsesConfig::ForMaritime();
      sc.heading_threshold_deg = threshold;
      synopses::SynopsesGenerator gen(sc);
      std::unordered_map<uint64_t, std::vector<synopses::CriticalPoint>>
          synopses_map;
      for (const Position& p : data.stream) {
        for (auto& cp : gen.Observe(p)) {
          synopses_map[cp.pos.entity_id].push_back(cp);
        }
      }
      for (auto& cp : gen.Flush()) {
        synopses_map[cp.pos.entity_id].push_back(cp);
      }
      double se = 0.0, max_m = 0.0;
      size_t n = 0;
      for (const auto& traj : data.truth) {
        auto err = synopses::EvaluateReconstruction(
            traj, synopses_map[traj.entity_id]);
        se += err.rmse_m * err.rmse_m * traj.points.size();
        n += traj.points.size();
        max_m = std::max(max_m, err.max_m);
      }
      std::printf("  %9.0f deg %11.1f%% %12.0f %12.0f\n", threshold,
                  100.0 * gen.CompressionRatio(), std::sqrt(se / n), max_m);
    }
    std::printf("  (looser thresholds compress more but reconstruct worse "
                "— the 12 deg default sits at the knee)\n");
  }

  // ---------------- A2: RMF* window size ----------------
  {
    std::printf("\n[A2] RMF* history window (mean error at 1-minute "
                "look-ahead):\n");
    datagen::FlightSimConfig config;
    config.flight_count = 20;
    config.position_noise_m = 30.0;
    Rng wrng(23);
    datagen::WeatherField weather(wrng, config.extent, 20.0);
    datagen::FlightSimulator sim(config, datagen::DefaultOriginAirport(),
                                 datagen::DefaultDestinationAirport(),
                                 &weather);
    auto flights = sim.Run();

    std::printf("  %-10s %14s\n", "window", "mean err @ 64 s");
    for (size_t window : {6, 9, 12, 18, 30}) {
      RunningStats err;
      for (const auto& f : flights) {
        prediction::RmfStarPredictor::Options options;
        options.window = window;
        prediction::RmfStarPredictor star(options);
        const auto& pts = f.actual.points;
        for (size_t i = 0; i + 8 < pts.size(); ++i) {
          star.Observe(pts[i]);
          if (i < 30 || i % 5 != 0) continue;
          auto predicted = star.Predict(8);
          err.Add(geom::HaversineM(predicted[7].loc.lon,
                                   predicted[7].loc.lat, pts[i + 8].lon,
                                   pts[i + 8].lat));
        }
      }
      std::printf("  %-10zu %12.0f m\n", window, err.mean());
    }
    std::printf("  (short windows chase noise; long windows smear "
                "manoeuvres)\n");
  }

  // ---------------- A3: link-discovery mask resolution ----------------
  {
    std::printf("\n[A3] cell-mask resolution (throughput vs one-off build "
                "cost):\n");
    datagen::VesselSimConfig config;
    config.vessel_count = 40;
    config.duration_ms = 3 * kMillisPerHour;
    config.report_interval_ms = 5000;
    Rng rng(9);
    auto ports = datagen::MakePorts(rng, config.extent, 12);
    auto regions = datagen::MakeRegionsNear(
        rng, datagen::AreaCentroids(ports), 400, "natura", 2000, 9000,
        25000, 120000, 60, 140);
    datagen::VesselSimulator sim(config, ports, {}, nullptr);
    auto data = sim.Run();
    synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
    std::vector<Position> points;
    for (const Position& p : data.stream) {
      for (auto& cp : gen.Observe(p)) points.push_back(cp.pos);
    }
    while (points.size() < 20000 && !points.empty()) {
      points.insert(points.end(), points.begin(),
                    points.begin() + std::min<size_t>(points.size(), 5000));
    }

    std::printf("  %-12s %14s %12s %12s\n", "resolution", "entities/s",
                "mask skips", "build ms");
    for (int resolution : {0, 4, 8, 16, 32}) {
      linkdiscovery::LinkerConfig lc;
      lc.extent = config.extent;
      lc.near_distance_m = 500.0;
      lc.use_masks = resolution > 0;
      lc.mask_resolution = std::max(1, resolution);
      double build_start = NowMs();
      linkdiscovery::SpatioTemporalLinker linker(lc, regions);
      double build_ms = NowMs() - build_start;
      double run_start = NowMs();
      for (const Position& p : points) linker.Observe(p);
      double run_ms = NowMs() - run_start;
      std::printf("  %-12s %14.0f %12zu %12.0f\n",
                  resolution == 0 ? "off" : StrFormat("%dx%d", resolution,
                                                      resolution)
                                                .c_str(),
                  points.size() / (run_ms / 1000.0),
                  linker.stats().mask_skips, build_ms);
    }
    std::printf("  (finer masks skip more points; the build cost is paid "
                "once per catalog)\n");
  }

  // ---------------- A4: store partitions + columnar encoding -------------
  {
    std::printf("\n[A4] store partitioning and columnar encoding:\n");
    geom::StCellEncoder encoder({-6, 35, 10, 44}, 10, 0,
                                15 * kMillisPerMinute);
    datagen::VesselSimConfig config;
    config.vessel_count = 60;
    config.duration_ms = 2 * kMillisPerHour;
    Rng rng(13);
    auto ports = datagen::MakePorts(rng, config.extent, 10);
    datagen::VesselSimulator sim(config, ports, {}, nullptr);
    auto data = sim.Run();

    std::printf("  %-12s %14s %12s\n", "partitions", "scan ms", "rows");
    for (size_t partitions : {1, 2, 4, 8, 16}) {
      store::KnowledgeStore kg(encoder, partitions);
      for (const Position& p : data.stream) {
        rdf::Term node = rdf::Iri(
            "http://tcmf/node/" + std::to_string(p.entity_id) + "/" +
            std::to_string(p.t));
        kg.AddPositionNode(node, p.lon, p.lat, p.t);
        kg.Add({node, rdf::Iri(rdf::vocab::kHasSpeed),
                rdf::DoubleLiteral(p.speed_mps)});
      }
      kg.Compile();
      store::StarQuery query;
      query.predicate_ids = {
          kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasSpeed)),
          kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasTimestamp))};
      store::StarQueryMetrics best;
      best.wall_ms = 1e18;
      size_t rows = 0;
      for (int run = 0; run < 3; ++run) {
        store::StarQueryMetrics m;
        rows = kg.RunStar(query, store::StarPlan::kTriplesTableScan, &m)
                   .size();
        if (m.wall_ms < best.wall_ms) best = m;
      }
      std::printf("  %-12zu %14.1f %12zu\n", partitions, best.wall_ms, rows);

      if (partitions == 8) {
        // Columnar encoding payoff: persisted size vs raw 24 B/triple.
        std::string dir = "/tmp/tcmf_ablation_store";
        if (kg.SaveTriples(dir).ok()) {
          size_t bytes = 0;
          for (const auto& entry :
               std::filesystem::directory_iterator(dir)) {
            bytes += std::filesystem::file_size(entry.path());
          }
          std::printf("  columnar files at 8 partitions: %.1f bytes/triple "
                      "(raw struct: 24)\n",
                      static_cast<double>(bytes) / kg.size());
          std::filesystem::remove_all(dir);
        }
      }
    }
    std::printf("  (partition-parallel scans help until per-partition work "
                "is too small; delta+varint columns cut storage)\n");
  }
  return 0;
}
