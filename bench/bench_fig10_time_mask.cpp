// Figure 10 reproduction: time-mask exploration. Top of the figure: time
// series of vessel counts and near-location events in 1-hour steps, with
// a query selecting the intervals containing at least one event. Bottom:
// the density of the trajectories during the selected times vs the
// remaining times. We reproduce both summaries and report how strongly
// the densities differ (events co-occur with concentrated traffic).

#include <cstdio>
#include <set>
#include <vector>

#include "common/rng.h"
#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "linkdiscovery/linker.h"
#include "va/density.h"
#include "va/timemask.h"

using namespace tcmf;

int main() {
  std::printf("=== Figure 10: time-mask filtering and dynamic summaries "
              "===\n\n");

  datagen::VesselSimConfig config;
  config.vessel_count = 20;
  config.duration_ms = 24 * kMillisPerHour;
  Rng rng(61);
  auto ports = datagen::MakePorts(rng, config.extent, 6);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();

  // Near-location events between moving vessels (the figure's event set).
  linkdiscovery::LinkerConfig lc;
  lc.extent = config.extent;
  lc.near_distance_m = 400.0;
  lc.temporal_window_ms = 30 * kMillisPerSecond;
  lc.link_moving_pairs = true;
  linkdiscovery::SpatioTemporalLinker linker(lc, {});
  std::vector<TimeMs> event_times;
  for (const Position& p : data.stream) {
    // Moored vessels sharing a port stay "near" forever; the interesting
    // near-location events are between vessels under way.
    if (p.speed_mps < 1.0) continue;
    for (const auto& link : linker.Observe(p)) {
      if (link.object_is_entity) event_times.push_back(p.t);
    }
  }

  // Top panel: hourly counts of active vessels and events.
  const size_t kBins = 24;
  std::vector<std::set<uint64_t>> vessels_per_bin(kBins);
  std::vector<size_t> events_per_bin(kBins, 0);
  for (const Position& p : data.stream) {
    size_t bin = static_cast<size_t>(p.t / kMillisPerHour);
    if (bin < kBins) vessels_per_bin[bin].insert(p.entity_id);
  }
  for (TimeMs t : event_times) {
    size_t bin = static_cast<size_t>(t / kMillisPerHour);
    if (bin < kBins) ++events_per_bin[bin];
  }
  std::printf("hour | vessels | near-location events | selected\n");
  for (size_t b = 0; b < kBins; ++b) {
    std::printf("%4zu | %7zu | %20zu | %s\n", b, vessels_per_bin[b].size(),
                events_per_bin[b], events_per_bin[b] > 0 ? "*" : "");
  }

  // The time mask: hours containing at least one event.
  va::TimeMask mask = va::TimeMask::FromBinnedCondition(
      0, config.duration_ms, kMillisPerHour,
      [&](size_t b) { return b < kBins && events_per_bin[b] > 0; });
  va::TimeMask complement = mask.Complement(0, config.duration_ms);
  std::printf("\nmask: %zu intervals, %.1f h selected of %.1f h total\n",
              mask.intervals().size(),
              static_cast<double>(mask.TotalDuration()) / kMillisPerHour,
              static_cast<double>(config.duration_ms) / kMillisPerHour);

  // Bottom panel: densities inside vs outside the mask.
  va::DensityMap density_in(config.extent, 60, 22);
  va::DensityMap density_out(config.extent, 60, 22);
  for (const Position& p : data.stream) {
    (mask.Contains(p.t) ? density_in : density_out).Add(p.lon, p.lat);
  }
  std::printf("\ntrajectory density during event times (%zu positions):\n%s",
              density_in.total(), density_in.RenderAscii().c_str());
  std::printf("\ntrajectory density during remaining times (%zu positions):"
              "\n%s",
              density_out.total(), density_out.RenderAscii().c_str());
  std::printf("\ndifference (+: more traffic share during event times):\n%s",
              density_in.RenderDiffAscii(density_out).c_str());

  (void)complement;
  std::printf("\npaper: comparing the two densities reveals where the\n"
              "traffic was when the events occurred — the time mask makes\n"
              "cross-dataset temporal relationships visible.\n");
  return 0;
}
