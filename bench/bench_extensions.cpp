// Benches for the paper's stated next steps and the kinetic/kinematic
// trade-off of Section 5:
//   E1  cross-stream fusion: multi-receiver accuracy + contradiction
//       rejection (Section 4.2.2 "next step")
//   E2  kinetic plan-following vs data-driven RMF* across deviation
//       severities (Section 5's two approaches)
//   E3  sequential pattern mining over trawler event streams feeding the
//       forecasting engine (Section 3 offline analyser / conclusions'
//       pattern-learning challenge)

#include <cstdio>
#include <unordered_map>

#include "cep/forecast.h"
#include "cep/mining.h"
#include "common/stats.h"
#include "common/strings.h"
#include "datagen/areas.h"
#include "datagen/flight.h"
#include "datagen/vessel.h"
#include "datagen/weather.h"
#include "geom/geo.h"
#include "insitu/crossstream.h"
#include "prediction/kinetic.h"
#include "prediction/rmf.h"
#include "synopses/critical_points.h"

using namespace tcmf;

int main() {
  std::printf("=== extensions: cross-stream fusion, kinetic baseline, "
              "pattern mining ===\n");

  // ---------------- E1: cross-stream fusion ----------------
  {
    std::printf("\n[E1] cross-stream fusion (two receivers, per-receiver "
                "noise sweep):\n");
    datagen::VesselSimConfig config;
    config.vessel_count = 10;
    config.duration_ms = 2 * kMillisPerHour;
    config.position_noise_m = 0.0;  // receivers add their own noise below
    config.gap_probability = 0.0;
    Rng rng(91);
    auto ports = datagen::MakePorts(rng, config.extent, 6);
    datagen::VesselSimulator sim(config, ports, {}, nullptr);
    auto data = sim.Run();

    std::printf("  %-14s %16s %14s %12s\n", "noise/receiver",
                "single-rx err", "fused err", "rejected");
    for (double noise : {40.0, 80.0, 160.0}) {
      Rng nrng(17);
      insitu::CrossStreamFuser fuser(insitu::FusionOptions{});
      RunningStats single_err, fused_err;
      for (const Position& truth : data.stream) {
        auto jitter = [&](TimeMs skew) {
          Position r = truth;
          geom::LonLat moved = geom::Destination(
              {truth.lon, truth.lat}, nrng.Uniform(0, 360),
              std::fabs(nrng.Gaussian(0, noise)));
          r.lon = moved.lon;
          r.lat = moved.lat;
          r.t += skew;
          return r;
        };
        Position r1 = jitter(0);
        Position r2 = jitter(400);
        // 2% of receiver-2 reports are gross contradictions (multipath).
        if (nrng.Bernoulli(0.02)) {
          geom::LonLat off = geom::Destination({r2.lon, r2.lat},
                                               nrng.Uniform(0, 360), 25000.0);
          r2.lon = off.lon;
          r2.lat = off.lat;
        }
        single_err.Add(geom::HaversineM(r1.lon, r1.lat, truth.lon,
                                        truth.lat));
        auto f1 = fuser.Observe(r1);
        auto f2 = fuser.Observe(r2);
        const Position* fused = f1 ? &*f1 : (f2 ? &*f2 : nullptr);
        if (fused != nullptr) {
          fused_err.Add(geom::HaversineM(fused->lon, fused->lat, truth.lon,
                                         truth.lat));
        }
      }
      std::printf("  %11.0f m %14.0f m %12.0f m %12zu\n", noise,
                  single_err.mean(), fused_err.mean(),
                  fuser.stats().contradictions_rejected);
    }
    std::printf("  (at surveillance noise levels the fused track beats any single receiver and drops "
                "the contradicting reports)\n");
  }

  // ---------------- E2: kinetic vs kinematic ----------------
  {
    std::printf("\n[E2] kinetic plan-following vs data-driven RMF* "
                "(1-minute look-ahead error):\n");
    std::printf("  %-26s %14s %14s\n", "conditions", "kinetic", "RMF*");
    for (double deviation_m : {0.0, 4000.0, 12000.0}) {
      datagen::FlightSimConfig config;
      config.flight_count = 15;
      config.weather_deviation_m = deviation_m;
      config.position_noise_m = 30.0;
      Rng wrng(23);
      datagen::WeatherField weather(wrng, config.extent, 20.0);
      datagen::FlightSimulator sim(config, datagen::DefaultOriginAirport(),
                                   datagen::DefaultDestinationAirport(),
                                   deviation_m > 0 ? &weather : nullptr);
      auto flights = sim.Run();
      RunningStats kinetic_err, star_err;
      for (const auto& f : flights) {
        std::vector<prediction::KineticWaypoint> plan;
        for (const auto& wp : f.plan.waypoints) {
          plan.push_back({wp.loc, wp.alt_m, wp.eta});
        }
        prediction::PlanFollowingPredictor kinetic(
            plan, {f.aircraft.cruise_speed_mps, f.aircraft.climb_rate_mps});
        prediction::RmfStarPredictor star;
        const auto& pts = f.actual.points;
        for (size_t i = 0; i + 8 < pts.size(); ++i) {
          star.Observe(pts[i]);
          if (i < 30 || i % 7 != 0) continue;
          const Position& truth = pts[i + 8];
          Position k = kinetic.PredictFrom(pts[i], truth.t - pts[i].t);
          auto s = star.Predict(8);
          kinetic_err.Add(
              geom::HaversineM(k.lon, k.lat, truth.lon, truth.lat));
          star_err.Add(geom::HaversineM(s[7].loc.lon, s[7].loc.lat,
                                        truth.lon, truth.lat));
        }
      }
      std::printf("  deviation scale %6.0f m %12.0f m %12.0f m\n",
                  deviation_m, kinetic_err.mean(), star_err.mean());
    }
    std::printf("  (the kinetic model wins only when flights fly the plan; "
                "once weather pushes them off it,\n   the data-driven "
                "predictor adapts and the kinetic one cannot — the "
                "Section 5 trade-off)\n");
  }

  // ---------------- E3: pattern mining feeds forecasting ----------------
  {
    std::printf("\n[E3] mined trawler event patterns -> forecasting "
                "engine:\n");
    datagen::VesselSimConfig config;
    config.vessel_count = 80;
    config.duration_ms = 12 * kMillisPerHour;
    config.fishing_fraction = 0.8;
    Rng rng(51);
    auto ports = datagen::MakePorts(rng, config.extent, 8);
    auto fishing = datagen::MakeRegionsNear(
        rng, datagen::AreaCentroids(ports), 8, "fishing", 10000, 25000,
        8000, 20000);
    datagen::VesselSimulator sim(config, ports, fishing, nullptr);
    auto data = sim.Run();
    synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
    std::unordered_map<uint64_t, std::vector<int>> streams;
    for (const Position& p : data.stream) {
      for (auto& cp : gen.Observe(p)) {
        int symbol = cep::CriticalPointSymbol(cp);
        // Mine the turn motifs: the catch-all symbol would dominate the
        // patterns without carrying behavioural signal.
        if (symbol != cep::kOther) {
          streams[cp.pos.entity_id].push_back(symbol);
        }
      }
    }
    std::vector<std::vector<int>> sequences;
    for (auto& [id, seq] : streams) sequences.push_back(seq);

    cep::MiningOptions options;
    options.min_support = sequences.size() / 4;
    options.max_length = 3;
    options.max_gap = 2;
    auto mined = cep::MineSequentialPatterns(sequences, options);
    const char* names[] = {"N", "E", "S", "W", "other"};
    std::printf("  top mined patterns (symbols: turn buckets + other), "
                "%zu sequences:\n", sequences.size());
    size_t shown = 0;
    for (const auto& p : mined) {
      if (p.symbols.size() < 2) continue;
      std::printf("    support %3zu:", p.support);
      for (int s : p.symbols) std::printf(" %s", names[s]);
      std::printf("\n");
      if (++shown == 5) break;
    }

    // The strongest mined 2+-pattern becomes a forecast target.
    for (const auto& p : mined) {
      if (p.symbols.size() < 2) continue;
      cep::Dfa dfa = cep::CompileStreamingDfa(
          cep::ToGapTolerantPattern(p, cep::kHeadingSymbolCount,
                                    options.max_gap),
          cep::kHeadingSymbolCount);
      // Train on half the fleet; score each remaining vessel's stream
      // separately (the engine state must not splice across vessels).
      std::vector<int> train;
      std::vector<std::vector<int>> test_seqs;
      bool flip = false;
      for (auto& seq : sequences) {
        if (flip) {
          train.insert(train.end(), seq.begin(), seq.end());
        } else {
          test_seqs.push_back(seq);
        }
        flip = !flip;
      }
      cep::MarkovInputModel input(cep::kHeadingSymbolCount, 1);
      input.Fit(train);
      // The fleet is heterogeneous (an east-west trawler never produces
      // the turns of a north-south one), so a single global model is
      // miscalibrated per vessel: adapt a per-vessel copy online on the
      // first half of each stream (the non-stationarity machinery of
      // Section 6's challenges), then forecast the second half.
      auto run = [&](bool adapt) {
        size_t forecasts = 0, correct = 0;
        for (const auto& seq : test_seqs) {
          cep::MarkovInputModel local = input;
          size_t half = seq.size() / 2;
          if (adapt) {
            for (size_t i = 0; i < half; ++i) {
              local.ObserveOnline(seq[i], 0.99);
            }
          }
          std::vector<int> tail(seq.begin() + half, seq.end());
          cep::ForecastScore score =
              cep::ScoreForecasts(dfa, local, tail, 0.3, 100);
          forecasts += score.forecasts;
          correct += score.correct;
        }
        return std::pair<size_t, double>(
            forecasts,
            forecasts ? static_cast<double>(correct) / forecasts : 0.0);
      };
      auto [f_global, p_global] = run(false);
      auto [f_adapt, p_adapt] = run(true);
      std::printf("  forecasting the top pattern at theta=0.3 "
                  "(%zu test vessels):\n", test_seqs.size());
      std::printf("    global model            : %4zu forecasts, "
                  "precision %.2f\n", f_global, p_global);
      std::printf("    + per-vessel adaptation : %4zu forecasts, "
                  "precision %.2f\n", f_adapt, p_adapt);
      break;
    }
  }
  return 0;
}
