// Section 4.2.2 reproduction: Synopses Generator compression ratio as a
// function of the input reporting rate (paper: ~80% at low/moderate rates
// up to 99% at very frequent reporting, with tolerable reconstruction
// error), plus real-time throughput (critical points emitted in pace with
// the incoming stream).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "common/strings.h"
#include "datagen/areas.h"
#include "datagen/flight.h"
#include "datagen/vessel.h"
#include "insitu/stages.h"
#include "stream/pipeline.h"
#include "synopses/batch_simplify.h"
#include "synopses/critical_points.h"
#include "synopses/stages.h"

using namespace tcmf;

namespace {

struct SweepResult {
  TimeMs interval_ms;
  size_t raw;
  size_t critical;
  double compression;
  double rmse_m;
  double max_m;
  double throughput_msgs_per_s;
};

SweepResult RunMaritime(TimeMs interval_ms) {
  datagen::VesselSimConfig config;
  config.vessel_count = 30;
  config.duration_ms = 3 * kMillisPerHour;
  config.report_interval_ms = interval_ms;
  config.position_noise_m = 10.0;
  config.gap_probability = 0.0;
  Rng rng(5);
  auto ports = datagen::MakePorts(rng, config.extent, 10);
  auto fishing = datagen::MakeRegionsNear(
      rng, datagen::AreaCentroids(ports), 6, "fishing", 10000, 25000, 8000,
      20000);
  datagen::VesselSimulator sim(config, ports, fishing, nullptr);
  auto data = sim.Run();

  synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
  std::unordered_map<uint64_t, std::vector<synopses::CriticalPoint>> synopses;
  auto start = std::chrono::steady_clock::now();
  for (const Position& p : data.stream) {
    for (auto& cp : gen.Observe(p)) {
      synopses[cp.pos.entity_id].push_back(cp);
    }
  }
  for (auto& cp : gen.Flush()) synopses[cp.pos.entity_id].push_back(cp);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SweepResult out;
  out.interval_ms = interval_ms;
  out.raw = gen.raw_count();
  out.critical = gen.critical_count();
  out.compression = gen.CompressionRatio();
  out.throughput_msgs_per_s = gen.raw_count() / seconds;

  // Reconstruction error against the noise-free truth.
  double se = 0.0, max_m = 0.0;
  size_t n = 0;
  for (const auto& traj : data.truth) {
    synopses::ReconstructionError err = synopses::EvaluateReconstruction(
        traj, synopses[traj.entity_id]);
    se += err.rmse_m * err.rmse_m * traj.points.size();
    n += traj.points.size();
    max_m = std::max(max_m, err.max_m);
  }
  out.rmse_m = std::sqrt(se / n);
  out.max_m = max_m;
  return out;
}

}  // namespace

int main() {
  std::printf("=== Section 4.2.2: trajectory synopses ===\n\n");
  std::printf("maritime traffic, 30 vessels x 3 h, per reporting rate:\n\n");
  std::printf("%-14s %10s %10s %12s %12s %10s %16s\n", "interval",
              "raw msgs", "critical", "compression", "rmse (m)", "max (m)",
              "throughput");
  for (TimeMs interval : {60000, 30000, 10000, 5000, 2000, 1000}) {
    SweepResult r = RunMaritime(interval);
    std::printf("%9lld ms %10zu %10zu %11.1f%% %12.0f %10.0f %13.0f/s\n",
                static_cast<long long>(r.interval_ms), r.raw, r.critical,
                100.0 * r.compression, r.rmse_m, r.max_m,
                r.throughput_msgs_per_s);
  }

  // Aviation: the same generator with the aviation profile.
  std::printf("\naviation traffic (40 flights, ADS-B at 8 s / 2 s):\n\n");
  for (TimeMs interval : {8000, 2000}) {
    datagen::FlightSimConfig config;
    config.flight_count = 40;
    config.report_interval_ms = interval;
    datagen::FlightSimulator sim(config, datagen::DefaultOriginAirport(),
                                 datagen::DefaultDestinationAirport(),
                                 nullptr);
    auto flights = sim.Run();
    synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForAviation());
    size_t takeoffs = 0, landings = 0;
    for (const auto& f : flights) {
      for (const Position& p : f.actual.points) {
        for (auto& cp : gen.Observe(p)) {
          takeoffs += cp.type == synopses::CriticalPointType::kTakeoff;
          landings += cp.type == synopses::CriticalPointType::kLanding;
        }
      }
    }
    std::printf("  %4lld ms: %zu raw -> %zu critical (%.1f%% compression), "
                "%zu takeoffs, %zu landings\n",
                static_cast<long long>(interval), gen.raw_count(),
                gen.critical_count(), 100.0 * gen.CompressionRatio(),
                takeoffs, landings);
  }

  // --- Batch simplification baseline ([16][17]): quality comparable,
  // but the whole trajectory is needed before anything can be emitted. ---
  {
    datagen::VesselSimConfig config;
    config.vessel_count = 30;
    config.duration_ms = 3 * kMillisPerHour;
    config.report_interval_ms = 10000;
    config.position_noise_m = 10.0;
    config.gap_probability = 0.0;
    Rng rng(5);
    auto ports = datagen::MakePorts(rng, config.extent, 10);
    auto fishing = datagen::MakeRegionsNear(
        rng, datagen::AreaCentroids(ports), 6, "fishing", 10000, 25000,
        8000, 20000);
    datagen::VesselSimulator sim(config, ports, fishing, nullptr);
    auto data = sim.Run();

    std::printf("\nvs batch simplification (Douglas-Peucker / SED) on the "
                "10 s workload:\n\n");
    std::printf("%-26s %12s %12s %16s\n", "method", "compression",
                "rmse (m)", "emission latency");

    // Online synopses.
    {
      synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
      std::unordered_map<uint64_t, std::vector<synopses::CriticalPoint>> syn;
      for (const Position& p : data.stream) {
        for (auto& cp : gen.Observe(p)) syn[cp.pos.entity_id].push_back(cp);
      }
      for (auto& cp : gen.Flush()) syn[cp.pos.entity_id].push_back(cp);
      double se = 0; size_t n = 0;
      for (const auto& traj : data.truth) {
        auto err = synopses::EvaluateReconstruction(traj,
                                                    syn[traj.entity_id]);
        se += err.rmse_m * err.rmse_m * traj.points.size();
        n += traj.points.size();
      }
      std::printf("%-26s %11.1f%% %12.0f %16s\n",
                  "Synopses Generator", 100.0 * gen.CompressionRatio(),
                  std::sqrt(se / n), "single pass");
    }

    // Batch baselines per epsilon.
    for (double eps : {200.0, 500.0, 1200.0}) {
      size_t raw = 0, kept_dp = 0, kept_sed = 0;
      double se_dp = 0, se_sed = 0;
      size_t n = 0;
      for (const auto& traj : data.truth) {
        raw += traj.points.size();
        auto dp = synopses::DouglasPeucker(traj.points, eps);
        auto sed = synopses::DouglasPeuckerSed(traj.points, eps);
        kept_dp += dp.size();
        kept_sed += sed.size();
        auto wrap = [](const std::vector<Position>& pts) {
          std::vector<synopses::CriticalPoint> out;
          for (const Position& p : pts) {
            out.push_back({p, synopses::CriticalPointType::kStart});
          }
          return out;
        };
        auto err_dp = synopses::EvaluateReconstruction(traj, wrap(dp));
        auto err_sed = synopses::EvaluateReconstruction(traj, wrap(sed));
        se_dp += err_dp.rmse_m * err_dp.rmse_m * traj.points.size();
        se_sed += err_sed.rmse_m * err_sed.rmse_m * traj.points.size();
        n += traj.points.size();
      }
      std::printf("%-26s %11.1f%% %12.0f %16s\n",
                  StrFormat("Douglas-Peucker eps=%.0f", eps).c_str(),
                  100.0 * (1.0 - static_cast<double>(kept_dp) / raw),
                  std::sqrt(se_dp / n), "full trajectory");
      std::printf("%-26s %11.1f%% %12.0f %16s\n",
                  StrFormat("DP-SED eps=%.0f", eps).c_str(),
                  100.0 * (1.0 - static_cast<double>(kept_sed) / raw),
                  std::sqrt(se_sed / n), "full trajectory");
    }
    std::printf("\n(batch methods buy accuracy with full-trajectory "
                "latency; the single-pass generator keeps pace with the "
                "stream — the Section 4.2.2 design argument)\n");
  }

  // --- The same workload as a dataflow job on the stream substrate:
  // source -> in-situ cleaning -> keyed synopses (4 workers) -> sink,
  // run once record-at-a-time and once on the batched transport
  // (BatchPolicy::Batched(64)); the per-stage StageMetrics report makes
  // backpressure visible and the two rows quantify what batch transfer
  // amortization buys on a real keyed workload. ---
  {
    datagen::VesselSimConfig config;
    config.vessel_count = 30;
    config.duration_ms = 12 * kMillisPerHour;
    config.report_interval_ms = 5000;
    config.position_noise_m = 10.0;
    Rng rng(5);
    auto ports = datagen::MakePorts(rng, config.extent, 10);
    datagen::VesselSimulator sim(config, ports, {}, nullptr);
    auto data = sim.Run();

    insitu::StreamCleaner::Options clean_options;
    clean_options.extent = config.extent;

    struct Mode {
      const char* name;
      stream::BatchPolicy policy;
    };
    const Mode kModes[] = {
        {"record-at-a-time", stream::BatchPolicy::Single()},
        {"batched(64)", stream::BatchPolicy::Batched(64)},
        // Auto-tuned per-edge batching (docs/STREAM_TUNING.md): should
        // land within a few percent of the hand-picked static size.
        {"adaptive", stream::BatchPolicy::Adaptive()},
    };
    constexpr int kReps = 3;  // keep the best rep: least scheduler noise
    size_t last_critical = 0;
    std::string last_report;
    std::printf(
        "\nas a dataflow job (source -> insitu.clean -> synopses x4 -> "
        "sink, best of %d):\n", kReps);
    for (const Mode& mode : kModes) {
      double best_seconds = 0.0;
      size_t critical = 0;
      stream::TunerState tuner;
      bool tuned = false;
      for (int rep = 0; rep < kReps; ++rep) {
        stream::Pipeline pipeline;
        critical = 0;
        auto start = std::chrono::steady_clock::now();
        auto source = stream::Flow<Position>::FromVector(
            &pipeline, data.stream,
            {.name = "source", .capacity = 512, .batch = mode.policy});
        auto source_tuner = source.tuner();
        synopses::SynopsesStage(
            insitu::CleaningStage(source, clean_options,
                                  {.capacity = 512, .batch = mode.policy}),
            synopses::SynopsesConfig::ForMaritime(), /*parallelism=*/4,
            {.capacity = 512, .batch = mode.policy})
            .Sink(
                [&critical](const synopses::CriticalPoint&) { ++critical; });
        pipeline.Run();
        double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (best_seconds == 0.0 || seconds < best_seconds) {
          best_seconds = seconds;
          if (source_tuner) {
            tuned = true;
            tuner = source_tuner->Snapshot();
          }
        }
        last_report = pipeline.ReportString();
      }
      std::printf("  %-18s %zu raw -> %zu critical in %.2f s (%.0f msgs/s)\n",
                  mode.name, data.stream.size(), critical, best_seconds,
                  data.stream.size() / best_seconds);
      if (tuned) {
        std::printf("  %-18s source tuner: target=%zu range=[%zu,%zu] "
                    "up=%llu down=%llu converged=%zu\n", "",
                    tuner.target_batch, tuner.min_batch, tuner.max_batch_cap,
                    static_cast<unsigned long long>(tuner.adjust_up),
                    static_cast<unsigned long long>(tuner.adjust_down),
                    tuner.converged_batch);
      }
      if (last_critical != 0 && critical != last_critical) {
        std::printf("  WARNING: batched output diverges from "
                    "record-at-a-time (%zu != %zu)\n",
                    critical, last_critical);
      }
      last_critical = critical;
    }
    std::printf("\n%s", last_report.c_str());
  }

  std::printf(
      "\npaper: ~80%% reduction at low/moderate rates, up to 99%% at very\n"
      "frequent position reports, without harming synopsis quality.\n");
  return 0;
}
