// Figure 8 reproduction: forecast precision for the NorthToSouthReversal
// pattern at different prediction thresholds, comparing 1st- and
// 2nd-order Markov assumptions on the input stream. Paper: precision
// grows with the threshold and the 2nd-order model dominates the
// 1st-order one on real vessel data. We evaluate on (a) turn-event
// streams derived from simulated trawling vessels via the Synopses
// Generator, and (b) a controlled strictly-2nd-order stream where the
// order effect is guaranteed.

#include <cstdio>
#include <unordered_map>

#include "cep/forecast.h"
#include "common/rng.h"
#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "synopses/critical_points.h"

using namespace tcmf;
using namespace tcmf::cep;

int main() {
  std::printf("=== Figure 8: forecast precision vs threshold, by Markov "
              "order ===\n\n");

  // --- (a) Vessel turn-event stream ---
  datagen::VesselSimConfig config;
  config.vessel_count = 150;
  config.duration_ms = 24 * kMillisPerHour;
  config.fishing_fraction = 0.8;
  Rng rng(51);
  auto ports = datagen::MakePorts(rng, config.extent, 10);
  auto fishing = datagen::MakeRegionsNear(
      rng, datagen::AreaCentroids(ports), 8, "fishing", 10000, 25000, 8000,
      20000);
  datagen::VesselSimulator sim(config, ports, fishing, nullptr);
  auto data = sim.Run();

  synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
  std::unordered_map<uint64_t, std::vector<int>> symbol_streams;
  for (const Position& p : data.stream) {
    for (auto& cp : gen.Observe(p)) {
      symbol_streams[cp.pos.entity_id].push_back(CriticalPointSymbol(cp));
    }
  }
  // Concatenate per-vessel streams: half for training, half for testing.
  std::vector<int> train, test;
  bool flip = false;
  for (const auto& [id, seq] : symbol_streams) {
    (flip ? train : test).insert((flip ? train : test).end(), seq.begin(),
                                 seq.end());
    flip = !flip;
  }
  std::printf("vessel workload: %zu training / %zu test turn events\n\n",
              train.size(), test.size());

  Dfa dfa = CompileStreamingDfa(NorthToSouthReversalPattern(),
                                kHeadingSymbolCount);
  std::printf("pattern: TurnNorth (TurnNorth+TurnEast)* TurnSouth "
              "(DFA: %d states)\n\n", dfa.state_count);

  std::printf("%-10s", "theta");
  for (int order : {1, 2}) {
    std::printf("  | order %d: %9s %9s %7s", order, "forecasts", "precision",
                "spread");
  }
  std::printf("\n");
  for (double theta : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    std::printf("%-10.2f", theta);
    for (int order : {1, 2}) {
      MarkovInputModel input(kHeadingSymbolCount, order);
      input.Fit(train);
      ForecastScore score = ScoreForecasts(dfa, input, test, theta, 60);
      std::printf("  | %17zu %8.2f %8.1f", score.forecasts, score.precision,
                  score.mean_spread);
    }
    std::printf("\n");
  }

  // --- (b) Controlled strictly-2nd-order stream ---
  std::printf("\ncontrolled 2nd-order stream (order effect guaranteed):\n\n");
  auto order2_stream = [&](int length) {
    std::vector<int> out;
    int a = 1, b = 1;
    for (int i = 0; i < length; ++i) {
      int next;
      if (b == 0) {
        next = (a == 1) ? (rng.Bernoulli(0.95) ? 2 : 1)
                        : (rng.Bernoulli(0.95) ? 1 : 0);
      } else {
        double u = rng.Uniform(0.0, 1.0);
        next = u < 0.5 ? 0 : (u < 0.8 ? (b == 1 ? 2 : 1) : b);
      }
      out.push_back(next);
      a = b;
      b = next;
    }
    return out;
  };
  std::vector<int> train2 = order2_stream(40000);
  std::vector<int> test2 = order2_stream(40000);
  Pattern r02 = Pattern::Seq({Pattern::Symbol(0), Pattern::Symbol(2)});
  Dfa dfa2 = CompileStreamingDfa(r02, 3);
  std::printf("%-10s %12s %9s %12s %9s\n", "theta", "order 1", "spread",
              "order 2", "spread");
  for (double theta : {0.2, 0.3, 0.4, 0.6, 0.8}) {
    std::printf("%-10.2f", theta);
    for (int order : {1, 2}) {
      MarkovInputModel input(3, order);
      input.Fit(train2);
      ForecastScore score = ScoreForecasts(dfa2, input, test2, theta, 100);
      std::printf(" %11.2f %9.1f", score.precision, score.mean_spread);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper Figure 8: precision rises with the threshold and the\n"
      "2nd-order model improves on the 1st-order one. Both effects\n"
      "reproduce: precision is monotone in theta everywhere; on the\n"
      "strictly-2nd-order stream order 2 dominates at low/medium theta,\n"
      "and on the trawl stream it extends the reachable frontier (it\n"
      "emits calibrated forecasts at theta=0.8 where order 1 cannot emit\n"
      "at all) while matching order 1 precision at equal spread.\n");
  return 0;
}
