// Open-loop city-scale load harness: end-to-end event-time latency SLOs
// under steady, diurnal-burst and chaos arrival scenarios.
//
// Unlike every other bench in the repo this one is *open-loop*: the
// producer follows a seeded ArrivalSchedule and each record's latency
// clock starts at its scheduled arrival instant, so producer stalls
// (e.g. a partition whose fsync goes slow) count against the SLO
// instead of silently slowing the load down (no coordinated omission).
//
// Arms:
//   scenario/steady  — constant rate, no faults. Gated: p99 within the
//                      declared latency budget x tolerance.
//   scenario/diurnal — non-homogeneous Poisson burst curve (trough ->
//                      4x peak) at the same mean rate.
//   scenario/chaos   — constant rate plus a FaultPlan: slow consumer,
//                      source restarts (GroupCursor close/rejoin
//                      mid-tail), a 250ms-per-append fsync stall on one
//                      partition, and a key-skew shift. Gated: p999
//                      spike visible, delivery still exactly-once
//                      (gaps == dups == 0), recovery time bounded.
//
// Emits a human table plus BENCH_scenario.json in the working directory
// (flat gate fields per row + the full nested ScenarioReport), checked
// by tools/bench_check.py. `--smoke` shrinks sizes for CI.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "scenario/scenario.h"

using namespace tcmf;           // NOLINT
using namespace tcmf::scenario; // NOLINT

namespace {

constexpr TimeMs kBudgetMs = 50;
constexpr TimeMs kStallMs = 250;  // injected per-append fsync stall

struct Arm {
  std::string name;
  ScenarioReport report;
};

ScenarioOptions BaseOptions(const std::string& dir, double rate,
                            size_t total, bool smoke) {
  ScenarioOptions opts;
  opts.dir = dir;
  opts.partitions = 4;
  opts.total_records = total;
  opts.latency_budget_ms = kBudgetMs;
  opts.timeline_window_ms = 50;
  opts.arrival = ArrivalCurve::Constant(rate);
  // Keep fleet generation (not the thing under test) proportionate.
  opts.fleet.vessel_count = smoke ? 40 : 120;
  opts.fleet.flight_count = smoke ? 10 : 30;
  opts.fleet.duration_ms = (smoke ? 15 : 60) * kMillisPerMinute;
  opts.fleet.weather_interval_ms = 5 * kMillisPerMinute;
  return opts;
}

void PrintRow(const Arm& arm) {
  const ScenarioReport& r = arm.report;
  std::printf(
      "%-18s %-9s %9.0f %9.0f | %8.2f %8.2f %9.2f %9.2f | %5llu %4llu "
      "%4llu %4llu %4llu | %6lld %6lld\n",
      arm.name.c_str(), r.arrival_model.c_str(), r.offered_rate_per_s,
      r.achieved_rate_per_s, r.p50_ms, r.p99_ms, r.p999_ms, r.max_ms,
      static_cast<unsigned long long>(r.consumed),
      static_cast<unsigned long long>(r.gaps),
      static_cast<unsigned long long>(r.dups),
      static_cast<unsigned long long>(r.restarts),
      static_cast<unsigned long long>(r.sync_stalls),
      static_cast<long long>(r.disruption_ms),
      static_cast<long long>(r.recovery_ms));
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double rate = smoke ? 4000.0 : 15000.0;
  const size_t total = smoke ? 8000 : 75000;
  // Expected schedule length anchors the fault timeline.
  const TimeMs t_ms = static_cast<TimeMs>(1000.0 * total / rate);

  std::printf("open-loop scenario harness: %zu records/arm, budget %lldms, "
              "4 partitions%s\n\n",
              total, static_cast<long long>(kBudgetMs),
              smoke ? " (smoke)" : "");
  std::printf("%-18s %-9s %9s %9s | %8s %8s %9s %9s | %5s %4s %4s %4s %4s "
              "| %6s %6s\n",
              "arm", "arrival", "offer/s", "ach/s", "p50ms", "p99ms",
              "p999ms", "maxms", "cons", "gap", "dup", "rst", "stal",
              "disr", "recov");

  std::vector<Arm> arms;

  {
    ScenarioOptions opts =
        BaseOptions("bench_scenario_steady_logs", rate, total, smoke);
    arms.push_back({"scenario/steady", RunScenario(opts)});
    PrintRow(arms.back());
  }

  {
    ScenarioOptions opts =
        BaseOptions("bench_scenario_diurnal_logs", rate, total, smoke);
    // Same *mean* rate as steady: trough at 2/(1+peak) of it, 4x swing.
    opts.arrival = ArrivalCurve::Diurnal(rate * 2.0 / 5.0,
                                         std::max<TimeMs>(t_ms / 2, 500),
                                         4.0);
    arms.push_back({"scenario/diurnal", RunScenario(opts)});
    PrintRow(arms.back());
  }

  {
    ScenarioOptions opts =
        BaseOptions("bench_scenario_chaos_logs", rate, total, smoke);
    FaultPlan plan;
    // Timeline (sequential; fractions of the schedule length): an
    // overloaded sink, a mid-tail consumer restart, the fsync stall on
    // partition 0 — the producer wedges on it, so *every* partition's
    // latency spikes — a skew shift, and a second restart during the
    // post-stall catch-up burst.
    plan.Add({.kind = FaultKind::kSlowConsumer,
              .at_ms = t_ms * 15 / 100,
              .duration_ms = t_ms / 10,
              .stall_ms = 1});
    plan.Add({.kind = FaultKind::kSourceRestart,
              .at_ms = t_ms / 4,
              .partition = 1});
    plan.Add({.kind = FaultKind::kFsyncStall,
              .at_ms = t_ms * 2 / 5,
              .duration_ms = t_ms / 5,
              .partition = 0,
              .stall_ms = kStallMs});
    plan.Add({.kind = FaultKind::kSkewShift,
              .at_ms = t_ms * 65 / 100,
              .key_offset = 7});
    plan.Add({.kind = FaultKind::kSourceRestart,
              .at_ms = t_ms * 3 / 4,
              .partition = 2});
    arms.push_back({"scenario/chaos", RunScenario(opts, plan)});
    PrintRow(arms.back());
  }

  for (const Arm& arm : arms) {
    if (!arm.report.error.empty()) {
      std::printf("\n%s FAILED: %s\n", arm.name.c_str(),
                  arm.report.error.c_str());
      return 1;
    }
  }

  if (std::FILE* f = std::fopen("BENCH_scenario.json", "w")) {
    std::fprintf(f, "[\n");
    const unsigned hw = std::thread::hardware_concurrency();
    for (size_t i = 0; i < arms.size(); ++i) {
      const ScenarioReport& r = arms[i].report;
      // Flat gate fields first (what bench_check.py reads), then the
      // full report for humans debugging a failure.
      std::fprintf(
          f,
          "  {\"name\": \"%s\", \"hw_threads\": %u, \"budget_ms\": %lld, "
          "\"stall_ms\": %lld, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
          "\"p999_ms\": %.3f, \"max_ms\": %.3f, "
          "\"produced\": %llu, \"appended\": %llu, \"consumed\": %llu, "
          "\"gaps\": %llu, \"dups\": %llu, \"restarts\": %llu, "
          "\"sync_stalls\": %llu, \"append_errors\": %llu, "
          "\"disruption_ms\": %lld, \"recovery_ms\": %lld, "
          "\"achieved_rate_per_s\": %.1f, \"run_s\": %.3f,\n   "
          "\"report\": %s}%s\n",
          arms[i].name.c_str(), hw, static_cast<long long>(r.budget_ms),
          static_cast<long long>(arms[i].name == "scenario/chaos" ? kStallMs
                                                                  : 0),
          r.p50_ms, r.p99_ms, r.p999_ms, r.max_ms,
          static_cast<unsigned long long>(r.produced),
          static_cast<unsigned long long>(r.appended),
          static_cast<unsigned long long>(r.consumed),
          static_cast<unsigned long long>(r.gaps),
          static_cast<unsigned long long>(r.dups),
          static_cast<unsigned long long>(r.restarts),
          static_cast<unsigned long long>(r.sync_stalls),
          static_cast<unsigned long long>(r.append_errors),
          static_cast<long long>(r.disruption_ms),
          static_cast<long long>(r.recovery_ms), r.achieved_rate_per_s,
          r.run_s, r.Json().c_str(), i + 1 < arms.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_scenario.json\n");
  }
  return 0;
}
