// Micro-benchmarks (google-benchmark) for the hot inner loops every
// experiment leans on: geodesic math, grid/cell indexing, synopses
// observation, dictionary interning, channel transport, and CEP stepping.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cep/automaton.h"
#include "cep/pattern.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "common/varint.h"
#include "geom/geo.h"
#include "geom/grid.h"
#include "geom/stcell.h"
#include "mlog/codec.h"
#include "rdf/dictionary.h"
#include "stream/channel.h"
#include "stream/pipeline.h"
#include "stream/record.h"
#include "stream/tuning.h"
#include "synopses/critical_points.h"

namespace tcmf {
namespace {

void BM_Haversine(benchmark::State& state) {
  Rng rng(1);
  double lon1 = rng.Uniform(-6, 10), lat1 = rng.Uniform(35, 44);
  double lon2 = rng.Uniform(-6, 10), lat2 = rng.Uniform(35, 44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::HaversineM(lon1, lat1, lon2, lat2));
  }
}
BENCHMARK(BM_Haversine);

void BM_PolygonContains(benchmark::State& state) {
  geom::Polygon poly = geom::Polygon::Circle({2.0, 40.0}, 20000.0,
                                             static_cast<int>(state.range(0)));
  Rng rng(2);
  std::vector<geom::LonLat> probes;
  for (int i = 0; i < 256; ++i) {
    probes.push_back({rng.Uniform(1.5, 2.5), rng.Uniform(39.5, 40.5)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.Contains(probes[i++ % probes.size()]));
  }
}
BENCHMARK(BM_PolygonContains)->Arg(12)->Arg(64)->Arg(256);

void BM_GridCellOf(benchmark::State& state) {
  geom::EquiGrid grid({-6, 35, 10, 44}, 64, 64);
  Rng rng(3);
  std::vector<geom::LonLat> probes;
  for (int i = 0; i < 256; ++i) {
    probes.push_back({rng.Uniform(-6, 10), rng.Uniform(35, 44)});
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& p = probes[i++ % probes.size()];
    benchmark::DoNotOptimize(grid.CellOf(p.lon, p.lat));
  }
}
BENCHMARK(BM_GridCellOf);

void BM_StCellEncode(benchmark::State& state) {
  geom::StCellEncoder encoder({-6, 35, 10, 44}, 10, 0, kMillisPerHour);
  Rng rng(4);
  double lon = rng.Uniform(-6, 10), lat = rng.Uniform(35, 44);
  TimeMs t = 12345678;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(lon, lat, t));
  }
}
BENCHMARK(BM_StCellEncode);

void BM_SynopsesObserve(benchmark::State& state) {
  // Pre-generate a realistic position stream, then measure Observe.
  Rng rng(5);
  std::vector<Position> stream;
  geom::LonLat pos{2.0, 40.0};
  double heading = 90.0;
  for (int i = 0; i < 8192; ++i) {
    Position p;
    p.entity_id = i % 16;
    p.t = (i / 16) * 10000;
    heading = geom::NormalizeDeg(heading + rng.Uniform(-3, 3));
    pos = geom::Destination(pos, heading, 60.0);
    p.lon = pos.lon;
    p.lat = pos.lat;
    p.speed_mps = 6.0;
    p.heading_deg = heading;
    stream.push_back(p);
  }
  synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Observe(stream[i++ % stream.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SynopsesObserve);

void BM_DictionaryEncode(benchmark::State& state) {
  rdf::Dictionary dict;
  Rng rng(6);
  std::vector<rdf::Term> terms;
  for (int i = 0; i < 4096; ++i) {
    terms.push_back(rdf::Iri("http://tcmf/node/" +
                             std::to_string(rng.UniformInt(0, 2048))));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.Encode(terms[i++ % terms.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictionaryEncode);

void BM_ChannelPushPop(benchmark::State& state) {
  stream::Channel<int> channel(1024);
  for (auto _ : state) {
    channel.Push(1);
    benchmark::DoNotOptimize(channel.Pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelPushPop);

// Single-thread PushBatch/PopBatch round trip: isolates the lock
// amortization from the cross-thread handoff cost (the two-thread
// version lives in the batched-transport comparison below).
void BM_ChannelPushPopBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  stream::Channel<int> channel(2048);
  std::vector<int> in(batch, 1);
  std::vector<int> out;
  out.reserve(batch);
  for (auto _ : state) {
    std::vector<int> staged = in;
    channel.PushBatch(std::move(staged));
    out.clear();
    benchmark::DoNotOptimize(channel.PopBatch(&out, batch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_ChannelPushPopBatch)->Arg(8)->Arg(64)->Arg(1024);

// A record shaped like a cleaned AIS position report — what the mlog
// durable log frames on every broker hop.
stream::Record MakeAisRecord() {
  stream::Record r;
  r.set_event_time(1700000000000);
  r.Set("mmsi", static_cast<int64_t>(227006760));
  r.Set("lon", 2.3488);
  r.Set("lat", 48.8534);
  r.Set("speed_kn", 12.7);
  r.Set("heading", 231.0);
  r.Set("status", std::string("under_way"));
  return r;
}

void BM_MlogEncodeRecord(benchmark::State& state) {
  const stream::Record record = MakeAisRecord();
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    benchmark::DoNotOptimize(mlog::AppendEntry(&buf, record));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_MlogEncodeRecord);

void BM_MlogDecodeRecord(benchmark::State& state) {
  std::string buf;
  mlog::AppendEntry(&buf, MakeAisRecord());
  for (auto _ : state) {
    mlog::EntryView view;
    bool ok = mlog::ParseEntry(buf.data(), buf.data() + buf.size(), &view);
    stream::Record record;
    ok = ok && mlog::DecodeRecordPayload(view.payload, &record);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(record);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_MlogDecodeRecord);

void BM_Crc32c(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  std::string data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_Varint64RoundTrip(benchmark::State& state) {
  const uint64_t kValues[] = {3, 300, 70000, 1ull << 40};
  std::string buf;
  size_t i = 0;
  for (auto _ : state) {
    buf.clear();
    AppendVarint64(&buf, kValues[i++ & 3]);
    uint64_t back = 0;
    benchmark::DoNotOptimize(
        ParseVarint64(buf.data(), buf.data() + buf.size(), &back));
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Varint64RoundTrip);

void BM_DfaStep(benchmark::State& state) {
  using namespace cep;
  Pattern r = Pattern::Seq({Pattern::Symbol(0),
                            Pattern::Star(Pattern::Or({Pattern::Symbol(0),
                                                       Pattern::Symbol(1)})),
                            Pattern::Symbol(2)});
  Dfa dfa = CompileStreamingDfa(r, 5);
  Rng rng(7);
  std::vector<int> symbols;
  for (int i = 0; i < 4096; ++i) {
    symbols.push_back(static_cast<int>(rng.UniformInt(0, 4)));
  }
  int s = 0;
  size_t i = 0;
  for (auto _ : state) {
    s = dfa.Next(s, symbols[i++ % symbols.size()]);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DfaStep);

// After the timed benchmarks, run a channel-throughput dataflow job and
// print its per-stage StageMetrics report: records in/out, queue-depth
// high-watermark and producer/consumer blocked time make backpressure
// stalls visible as numbers (a slow stage shows up as producer-blocked
// time on the edge feeding it).
void PrintPipelineStageReport() {
  constexpr int kCount = 500000;
  constexpr size_t kCapacity = 256;
  stream::Pipeline pipeline;
  int next = 0;
  long long checksum = 0;
  stream::Flow<int>::FromGenerator(
      &pipeline,
      [&next]() -> std::optional<int> {
        if (next >= kCount) return std::nullopt;
        return next++;
      },
      {.name = "source", .capacity = kCapacity})
      .Map<int>([](const int& x) { return x * 3; },
                {.name = "map_x3", .capacity = kCapacity})
      .Filter([](const int& x) { return (x & 1) == 0; },
              {.name = "filter_even", .capacity = kCapacity})
      .Sink([&checksum](const int& x) { checksum += x; });
  pipeline.Run();
  std::printf(
      "\n=== stream substrate: per-stage metrics "
      "(%d records through source->map->filter->sink, capacity %zu) ===\n%s",
      kCount, kCapacity, pipeline.ReportString().c_str());
  std::printf("checksum: %lld\njson: %s\n", checksum,
              pipeline.ReportJson().c_str());
}

// ===== Batched transport comparison (PR 3 + PR 4 acceptance rows) ====
//
// Measures the cross-thread channel-transfer rate as a function of batch
// size (batch 1 == the original record-at-a-time Push/Pop transport) and
// the end-to-end source->map->filter->sink pipeline across transport
// modes: record-at-a-time, a static max_batch sweep {16, 64, 256},
// fused+Batched(64), the adaptive controller (BatchPolicy::Adaptive —
// must converge to >= 0.9x the best static row under steady load), and
// an adaptive slow-consumer phase change (the tuner must record
// back-off adjustments). Emits a table on stdout and machine-readable
// rows to BENCH_micro.json in the working directory;
// tools/bench_check.py gates the RATIOS between rows against the
// committed baseline in bench/baselines/ (see docs/STREAM_TUNING.md for
// how to read the numbers).

struct BenchRow {
  std::string name;
  size_t records = 0;
  double records_per_s = 0.0;
  bool tuned = false;
  stream::TunerState tuner;  ///< source-edge controller state (if tuned)
  bool capacity_tuned = false;
  stream::CapacityState capacity;  ///< source-edge elastic bound (if tuned)
  double p99_ms = -1.0;      ///< p99 staging latency (latency rows only)
  int64_t budget_ms = -1;    ///< latency-budget contract (latency rows only)
  int hw_threads = 0;        ///< hardware threads (hw-gated rows only)
  bool has_skew = false;     ///< worker-edge skew summary attached
  stream::WorkerEdgeSkew skew;  ///< keyed-stage partition-edge summary
};

// One producer thread feeding one consumer (the caller's thread) through
// a capacity-1024 channel. batch<=1 uses Push/Pop; otherwise
// PushBatch/PopBatch. This is the transport every pipeline edge pays.
double MeasureChannelTransfer(size_t batch, size_t total) {
  stream::Channel<int> channel(1024);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread producer([&channel, batch, total] {
    if (batch <= 1) {
      for (size_t i = 0; i < total; ++i) {
        if (!channel.Push(static_cast<int>(i))) break;
      }
    } else {
      std::vector<int> buf;
      buf.reserve(batch);
      for (size_t i = 0; i < total;) {
        buf.clear();
        for (size_t j = 0; j < batch && i < total; ++j, ++i) {
          buf.push_back(static_cast<int>(i));
        }
        if (channel.PushBatch(std::move(buf)) == 0) break;
      }
    }
    channel.Close();
  });
  long long checksum = 0;
  size_t received = 0;
  if (batch <= 1) {
    while (std::optional<int> v = channel.Pop()) {
      checksum += *v;
      ++received;
    }
  } else {
    std::vector<int> buf;
    buf.reserve(batch);
    while (true) {
      buf.clear();
      if (channel.PopBatch(&buf, batch) == 0) break;
      for (int v : buf) checksum += v;
      received += buf.size();
    }
  }
  producer.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(checksum);
  if (received != total) {
    std::fprintf(stderr, "channel transfer lost records: %zu != %zu\n",
                 received, total);
    std::exit(1);
  }
  return static_cast<double>(total) / seconds;
}

// source -> map(x3) -> filter(even) -> sink, count records, capacity 256,
// under an arbitrary BatchPolicy (optionally with the map+filter fused
// into the source stage). When slow_after >= 0 the sink sleeps slow_us
// microseconds per record once slow_after records have passed — a
// consumer phase change that an adaptive source edge must react to by
// shrinking its batch target (visible as tuner adjust_down > 0).
struct PipelineResult {
  double records_per_s = 0.0;
  bool tuned = false;
  stream::TunerState tuner;  ///< source-edge controller state (if tuned)
};

PipelineResult MeasurePipelinePolicy(const stream::BatchPolicy& policy,
                                     bool fuse, int count,
                                     int slow_after = -1, int slow_us = 0) {
  constexpr size_t kCapacity = 256;
  stream::Pipeline pipeline;
  int next = 0;
  long long checksum = 0;
  int sunk = 0;
  auto source = stream::Flow<int>::FromGenerator(
      &pipeline,
      [&next, count]() -> std::optional<int> {
        if (next >= count) return std::nullopt;
        return next++;
      },
      {.name = "source", .capacity = kCapacity, .batch = policy});
  auto source_tuner = source.tuner();
  auto map_fn = [](const int& x) { return x * 3; };
  auto filter_fn = [](const int& x) { return (x & 1) == 0; };
  auto sink_fn = [&checksum, &sunk, slow_after, slow_us](const int& x) {
    checksum += x;
    if (slow_after >= 0 && ++sunk > slow_after && slow_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(slow_us));
    }
  };
  if (fuse) {
    source.Fuse()
        .Map<int>(map_fn)
        .Filter(filter_fn)
        .Emit({.name = "fused_map_filter", .capacity = kCapacity})
        .Sink(sink_fn);
  } else {
    source.Map<int>(map_fn, {.name = "map_x3", .capacity = kCapacity})
        .Filter(filter_fn, {.name = "filter_even", .capacity = kCapacity})
        .Sink(sink_fn);
  }
  const auto t0 = std::chrono::steady_clock::now();
  pipeline.Run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(checksum);
  PipelineResult result;
  result.records_per_s = static_cast<double>(count) / seconds;
  if (source_tuner) {
    result.tuned = true;
    result.tuner = source_tuner->Snapshot();
  }
  return result;
}

// ==== Elastic capacity comparison (PR 5 acceptance rows) ====
//
// source -> map -> bursty sink: the sink stalls for `stall_us` every
// `stall_every` records, so the edge sees alternating saturation (during
// a stall the queue fills and the producer blocks) and drain phases. A
// deep queue rides the bursts out; a shallow one serializes the pipeline
// on every stall. Static capacities {64, 1024, 8192} are swept against
// CapacityPolicy::Adaptive(64, 8192) seeded at 64 — the controller must
// reach >= 0.85x the best static row without hand-picking the bound
// (gated by tools/bench_check.py).
struct CapacityResult {
  double records_per_s = 0.0;
  bool capacity_tuned = false;
  stream::CapacityState capacity;
};

CapacityResult MeasureCapacityPipeline(size_t capacity,
                                       const stream::CapacityPolicy& tuning,
                                       int count, int stall_every,
                                       int stall_us) {
  stream::Pipeline pipeline;
  int next = 0;
  long long checksum = 0;
  int sunk = 0;
  stream::BatchPolicy policy = stream::BatchPolicy::Batched(64, 1);
  policy.tune_every_records = 1024;  // capacity window cadence
  auto source = stream::Flow<int>::FromGenerator(
      &pipeline,
      [&next, count]() -> std::optional<int> {
        if (next >= count) return std::nullopt;
        return next++;
      },
      {.name = "source",
       .capacity = capacity,
       .batch = policy,
       .capacity_tuning = tuning});
  auto source_tuner = source.tuner();
  source.Map<int>([](const int& x) { return x * 3; },
                  {.name = "map_x3", .capacity = capacity,
                   .capacity_tuning = tuning})
      .Sink([&checksum, &sunk, stall_every, stall_us](const int& x) {
        checksum += x;
        if (++sunk % stall_every == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
        }
      });
  const auto t0 = std::chrono::steady_clock::now();
  pipeline.Run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(checksum);
  CapacityResult result;
  result.records_per_s = static_cast<double>(count) / seconds;
  if (source_tuner && source_tuner->capacity_tuner()) {
    result.capacity_tuned = true;
    result.capacity = source_tuner->capacity_tuner()->Snapshot();
  }
  return result;
}

// ==== Latency-budget staging latency (PR 5 acceptance rows) ====
//
// A trickling source (one record every `gap_us`) into a large-batch edge:
// batches never fill naturally, so staging latency is whatever the linger
// policy allows. Each element carries its creation time; the sink records
// the staging+transit delay. With only the classic linger knob the p99
// tracks max_linger_ms; with a latency budget the effective linger
// shrinks by the predicted fill time, so the p99 must stay under the
// budget (gated by tools/bench_check.py).
double MeasureStagingLatencyP99(const stream::BatchPolicy& policy, int count,
                                int gap_us) {
  using Clock = std::chrono::steady_clock;
  stream::Pipeline pipeline;
  int next = 0;
  std::vector<double> delays_ms;
  delays_ms.reserve(static_cast<size_t>(count));
  stream::Flow<Clock::time_point>::FromGenerator(
      &pipeline,
      [&next, count, gap_us]() -> std::optional<Clock::time_point> {
        if (next >= count) return std::nullopt;
        ++next;
        std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
        return Clock::now();
      },
      {.name = "trickle_source", .capacity = 1024, .batch = policy})
      .Sink([&delays_ms](const Clock::time_point& born) {
        delays_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - born)
                .count());
      });
  pipeline.Run();
  if (delays_ms.empty()) return 0.0;
  std::sort(delays_ms.begin(), delays_ms.end());
  return delays_ms[(delays_ms.size() - 1) * 99 / 100];
}

// ==== Keyed-terminal fusion comparison (PR 10 acceptance rows) ====
//
// source -> expand(1:4, 48-byte records) -> keyed(64 keys, 4 workers).
// Two constructions of the same graph: `two_hop` Emit()s the fused
// prefix into its own channel and lets the keyed router pop the
// expanded stream back out (one extra cross-thread hop carrying 4x the
// records at 6x the width), `fused_keyed` terminates the chain in the
// keyed stage so the prefix runs inside the partition router and that
// hop never exists. The equivalence suite pins the outputs identical;
// the throughput ratio is the price of the eliminated hop. The keyed
// fold is accumulate-only (flush emits one record per key) so neither
// the workers nor the output edge mask the transport cost under test.

struct KeyedRec {
  uint64_t key = 0;
  double payload[5] = {0, 0, 0, 0, 0};
};

struct KeyedFusionResult {
  double records_per_s = 0.0;
  stream::WorkerEdgeSkew skew;
};

KeyedFusionResult MeasureKeyedFusion(bool fused, int count) {
  constexpr size_t kCapacity = 256;
  constexpr size_t kWorkers = 4;
  stream::Pipeline pipeline;
  int next = 0;
  auto source = stream::Flow<int>::FromGenerator(
      &pipeline,
      [&next, count]() -> std::optional<int> {
        if (next >= count) return std::nullopt;
        return next++;
      },
      {.name = "source",
       .capacity = kCapacity,
       .batch = stream::BatchPolicy::Batched(64, 1)});
  auto expand = [](const int& x) {
    std::vector<KeyedRec> out;
    out.reserve(4);
    for (int i = 0; i < 4; ++i) {
      KeyedRec r;
      r.key = static_cast<uint64_t>((x * 4 + i) & 63);
      r.payload[0] = static_cast<double>(x);
      out.push_back(r);
    }
    return out;
  };
  auto key_fn = [](const KeyedRec& r) { return r.key; };
  auto proc = [](const KeyedRec& r, double& sum,
                 const std::function<void(double)>&) { sum += r.payload[0]; };
  auto flush = [](uint64_t, double& sum,
                  const std::function<void(double)>& emit) { emit(sum); };
  double checksum = 0.0;
  auto sink = [&checksum](const double& v) { checksum += v; };
  stream::StageOptions keyed_opts;
  keyed_opts.name = "keyed";
  keyed_opts.capacity = kCapacity;
  if (fused) {
    source.Fuse()
        .FlatMap<KeyedRec>(expand)
        .KeyedProcessParallel<double, double>(key_fn, proc, kWorkers, flush,
                                              std::move(keyed_opts))
        .Sink(sink);
  } else {
    source.Fuse()
        .FlatMap<KeyedRec>(expand)
        .Emit({.name = "expand", .capacity = kCapacity})
        .KeyedProcessParallel<double, double>(key_fn, proc, kWorkers, flush,
                                              std::move(keyed_opts))
        .Sink(sink);
  }
  const auto t0 = std::chrono::steady_clock::now();
  pipeline.Run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(checksum);
  KeyedFusionResult result;
  result.records_per_s = static_cast<double>(count) / seconds;
  for (const stream::StageMetrics& m : pipeline.Report()) {
    if (m.stage == "keyed") {
      result.skew = stream::SummarizeWorkerEdges(m.worker_edges);
    }
  }
  return result;
}

// Skew-aware partition-edge tuning under a hot key: 80% of the stream
// lands on one key (one partition edge), and every hot-key record costs
// ~20us at its worker, so the hot edge's pops blow the slow-batch
// latency bound while the cold edges starve. The per-edge controllers
// must back the hot edge off (hot_adjust_down > 0) while the starvation
// gate holds the cold targets (cold_adjust_down == 0 given enough
// cores); the uniform arm is the skew_ratio contrast.
KeyedFusionResult MeasureKeyedSkew(bool skewed, int count) {
  constexpr size_t kWorkers = 4;
  stream::Pipeline pipeline;
  int next = 0;
  stream::BatchPolicy policy = stream::BatchPolicy::Adaptive(64, 1, 256);
  policy.tune_every_records = 256;
  auto source = stream::Flow<int>::FromGenerator(
      &pipeline,
      [&next, count]() -> std::optional<int> {
        if (next >= count) return std::nullopt;
        return next++;
      },
      {.name = "source", .capacity = 256, .batch = policy});
  auto to_rec = [skewed](const int& x) {
    KeyedRec r;
    // Hot key 0 takes 80% of the skewed stream; uniform spreads 0..15.
    r.key = skewed ? (x % 5 != 0 ? 0 : 1 + static_cast<uint64_t>(x) % 15)
                   : static_cast<uint64_t>(x) % 16;
    r.payload[0] = static_cast<double>(x);
    return r;
  };
  auto key_fn = [](const KeyedRec& r) { return r.key; };
  auto proc = [](const KeyedRec& r, double& sum,
                 const std::function<void(double)>&) {
    sum += r.payload[0];
    if (r.key == 0) {
      // The hot key's per-record cost: a 64-record pop at the hot edge
      // takes milliseconds, far past the 1ms slow-batch bound.
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  };
  auto flush = [](uint64_t, double& sum,
                  const std::function<void(double)>& emit) { emit(sum); };
  double checksum = 0.0;
  stream::StageOptions keyed_opts;
  keyed_opts.name = "keyed";
  keyed_opts.capacity = 256;
  source.Fuse()
      .Map<KeyedRec>(to_rec)
      .KeyedProcessParallel<double, double>(key_fn, proc, kWorkers, flush,
                                            std::move(keyed_opts))
      .Sink([&checksum](const double& v) { checksum += v; });
  const auto t0 = std::chrono::steady_clock::now();
  pipeline.Run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(checksum);
  KeyedFusionResult result;
  result.records_per_s = static_cast<double>(count) / seconds;
  for (const stream::StageMetrics& m : pipeline.Report()) {
    if (m.stage == "keyed") {
      result.skew = stream::SummarizeWorkerEdges(m.worker_edges);
    }
  }
  return result;
}

void RunBatchedTransportComparison(bool smoke) {
  const size_t kTransferTotal = smoke ? 200000 : 2000000;
  const int kPipelineCount = smoke ? 100000 : 500000;
  const int kReps = smoke ? 1 : 3;  // keep the best rep: least scheduler noise

  std::vector<BenchRow> rows;
  std::printf(
      "\n=== batched channel transport: 1 producer -> 1 consumer, "
      "capacity 1024, %zu records ===\n",
      kTransferTotal);
  std::printf("%-28s %14s %10s\n", "row", "records/s", "vs batch1");
  double batch1 = 0.0;
  for (size_t batch : {size_t{1}, size_t{8}, size_t{64}, size_t{1024}}) {
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      best = std::max(best, MeasureChannelTransfer(batch, kTransferTotal));
    }
    if (batch == 1) batch1 = best;
    rows.push_back({"channel_transfer/batch" + std::to_string(batch),
                    kTransferTotal, best});
    std::printf("%-28s %14.0f %9.1fx\n", rows.back().name.c_str(), best,
                batch1 > 0 ? best / batch1 : 0.0);
  }

  std::printf(
      "\n=== pipeline source->map->filter->sink: %d records, capacity 256 "
      "===\n",
      kPipelineCount);
  std::printf("%-28s %14s  %s\n", "row", "records/s", "tuner");

  // A pipeline mode: name, batch policy, fuse flag, optional slow phase.
  struct Mode {
    const char* name;
    stream::BatchPolicy policy;
    bool fuse = false;
    bool slow_phase = false;  ///< sink sleeps slow_us/record after count/2
    int slow_us = 0;
  };
  const Mode kModes[] = {
      {"pipeline/record_at_a_time", stream::BatchPolicy::Single()},
      {"pipeline/batched16", stream::BatchPolicy::Batched(16)},
      {"pipeline/batched64", stream::BatchPolicy::Batched(64)},
      {"pipeline/batched256", stream::BatchPolicy::Batched(256)},
      {"pipeline/fused_batched64", stream::BatchPolicy::Batched(64), true},
      {"pipeline/adaptive", stream::BatchPolicy::Adaptive(16, 1, 1024)},
      // Phase change: sink turns slow halfway through. Throughput here is
      // dominated by the sink sleep (informational); what bench_check
      // gates is that the tuner recorded back-off adjustments.
      {"pipeline/adaptive_slow_phase",
       stream::BatchPolicy::Adaptive(16, 1, 1024), false, true, 20},
  };
  for (const Mode& mode : kModes) {
    // The slow-phase row sleeps ~20us on half its records; run it on a
    // reduced count so the comparison stays fast.
    const int count = mode.slow_phase ? std::max(kPipelineCount / 10, 20000)
                                      : kPipelineCount;
    // The filter drops odd values, so ~count/2 records reach the sink;
    // count/4 puts the phase change halfway through the sink's stream.
    const int slow_after = mode.slow_phase ? count / 4 : -1;
    PipelineResult best;
    for (int rep = 0; rep < kReps; ++rep) {
      PipelineResult r = MeasurePipelinePolicy(mode.policy, mode.fuse, count,
                                               slow_after, mode.slow_us);
      if (r.records_per_s > best.records_per_s) best = r;
    }
    BenchRow row;
    row.name = mode.name;
    row.records = static_cast<size_t>(count);
    row.records_per_s = best.records_per_s;
    row.tuned = best.tuned;
    row.tuner = best.tuner;
    rows.push_back(row);
    if (best.tuned) {
      std::printf(
          "%-28s %14.0f  target=%zu range=[%zu,%zu] up=%llu down=%llu "
          "converged=%zu\n",
          mode.name, best.records_per_s, best.tuner.target_batch,
          best.tuner.min_batch, best.tuner.max_batch_cap,
          static_cast<unsigned long long>(best.tuner.adjust_up),
          static_cast<unsigned long long>(best.tuner.adjust_down),
          best.tuner.converged_batch);
    } else {
      std::printf("%-28s %14.0f\n", mode.name, best.records_per_s);
    }
  }

  // ---- elastic capacity sweep: static {64, 1024, 8192} vs adaptive ----
  {
    const int count = smoke ? 100000 : 400000;
    const int stall_every = 4096;
    const int stall_us = 1500;  // ~1.5ms burst stall at the sink
    std::printf(
        "\n=== elastic capacity: source->map->bursty sink, %d records, "
        "sink stalls %dus every %d ===\n",
        count, stall_us, stall_every);
    std::printf("%-28s %14s  %s\n", "row", "records/s", "capacity");
    struct CapMode {
      const char* name;
      size_t capacity;
      stream::CapacityPolicy tuning;  // inert for the static rows
    };
    const CapMode kCapModes[] = {
        {"pipeline_capacity/static64", 64, {}},
        {"pipeline_capacity/static1024", 1024, {}},
        {"pipeline_capacity/static8192", 8192, {}},
        // Seeded at the *worst* static bound: the controller has to find
        // its own way up.
        {"pipeline_capacity/adaptive", 64,
         stream::CapacityPolicy::Adaptive(64, 8192)},
    };
    for (const CapMode& mode : kCapModes) {
      CapacityResult best;
      for (int rep = 0; rep < kReps; ++rep) {
        CapacityResult r = MeasureCapacityPipeline(
            mode.capacity, mode.tuning, count, stall_every, stall_us);
        if (r.records_per_s > best.records_per_s) best = r;
      }
      BenchRow row;
      row.name = mode.name;
      row.records = static_cast<size_t>(count);
      row.records_per_s = best.records_per_s;
      row.capacity_tuned = best.capacity_tuned;
      row.capacity = best.capacity;
      rows.push_back(row);
      if (best.capacity_tuned) {
        std::printf(
            "%-28s %14.0f  bound=%zu range=[%zu,%zu] up=%llu down=%llu "
            "converged=%zu\n",
            mode.name, best.records_per_s, best.capacity.capacity,
            best.capacity.min_capacity, best.capacity.max_capacity,
            static_cast<unsigned long long>(best.capacity.resize_up),
            static_cast<unsigned long long>(best.capacity.resize_down),
            best.capacity.converged);
      } else {
        std::printf("%-28s %14.0f  bound=%zu (static)\n", mode.name,
                    best.records_per_s, mode.capacity);
      }
    }
  }

  // ---- latency-budget linger: staging-latency p99 under a trickle ----
  {
    const int count = smoke ? 400 : 1500;
    const int gap_us = 200;  // ~5k records/s: batches never fill
    std::printf(
        "\n=== latency-budget linger: trickling source (1 rec/%dus), "
        "%d records, batch 4096 ===\n",
        gap_us, count);
    std::printf("%-28s %10s %10s\n", "row", "p99 ms", "budget");
    struct LatMode {
      const char* name;
      stream::BatchPolicy policy;
      int64_t budget_ms;  // -1 = no contract
    };
    // linger 200ms vs the same policy under a 50ms staging contract: the
    // budget must tighten the p99 below itself, an order of magnitude
    // under the raw linger row.
    const LatMode kLatModes[] = {
        {"pipeline_latency/linger200",
         stream::BatchPolicy::Batched(4096, 200), -1},
        {"pipeline_latency/budget50",
         stream::BatchPolicy::Batched(4096, 200).WithLatencyBudget(50), 50},
    };
    for (const LatMode& mode : kLatModes) {
      double best = -1.0;
      for (int rep = 0; rep < kReps; ++rep) {
        const double p99 = MeasureStagingLatencyP99(mode.policy, count, gap_us);
        if (best < 0.0 || p99 < best) best = p99;
      }
      BenchRow row;
      row.name = mode.name;
      row.records = static_cast<size_t>(count);
      row.records_per_s = 0.0;  // latency row: rate is not the point
      row.p99_ms = best;
      row.budget_ms = mode.budget_ms;
      rows.push_back(row);
      if (mode.budget_ms >= 0) {
        std::printf("%-28s %10.2f %8lldms\n", mode.name, best,
                    static_cast<long long>(mode.budget_ms));
      } else {
        std::printf("%-28s %10.2f %10s\n", mode.name, best, "-");
      }
    }
  }

  // ---- keyed-terminal fusion: two-hop vs fused, uniform vs skewed ----
  {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int count = smoke ? 100000 : 500000;
    std::printf(
        "\n=== keyed-terminal fusion: source->expand(1:4)->keyed(4 workers), "
        "%d source records ===\n",
        count);
    std::printf("%-28s %14s %12s\n", "row", "records/s", "vs two_hop");
    double two_hop_rate = 0.0;
    for (const bool fused : {false, true}) {
      KeyedFusionResult best;
      for (int rep = 0; rep < kReps; ++rep) {
        KeyedFusionResult r = MeasureKeyedFusion(fused, count);
        if (r.records_per_s > best.records_per_s) best = r;
      }
      if (!fused) two_hop_rate = best.records_per_s;
      BenchRow row;
      row.name = fused ? "keyed_fusion/fused_keyed" : "keyed_fusion/two_hop";
      row.records = static_cast<size_t>(count);
      row.records_per_s = best.records_per_s;
      row.hw_threads = hw;
      rows.push_back(row);
      std::printf("%-28s %14.0f %11.2fx\n", row.name.c_str(),
                  best.records_per_s,
                  two_hop_rate > 0 ? best.records_per_s / two_hop_rate : 0.0);
    }

    const int skew_count = smoke ? 8000 : 20000;
    std::printf(
        "\n=== skew-aware partition-edge tuning: keyed(4 workers), %d "
        "records, hot key ~20us/record ===\n",
        skew_count);
    std::printf("%-28s %14s %6s %9s %9s %9s\n", "row", "records/s", "skew",
                "hot_down", "cold_down", "targets");
    for (const bool skewed : {false, true}) {
      // One rep: the gates read controller counters, not throughput.
      const KeyedFusionResult r = MeasureKeyedSkew(skewed, skew_count);
      BenchRow row;
      row.name = skewed ? "keyed_fusion/adaptive_skewed"
                        : "keyed_fusion/adaptive_uniform";
      row.records = static_cast<size_t>(skew_count);
      row.records_per_s = r.records_per_s;
      row.hw_threads = hw;
      row.has_skew = true;
      row.skew = r.skew;
      rows.push_back(row);
      std::printf(
          "%-28s %14.0f %6.2f %9llu %9llu [%zu,%zu]\n", row.name.c_str(),
          r.records_per_s, r.skew.skew_ratio,
          static_cast<unsigned long long>(r.skew.hot_adjust_down),
          static_cast<unsigned long long>(r.skew.cold_adjust_down),
          r.skew.min_target, r.skew.max_target);
    }
  }

  if (std::FILE* f = std::fopen("BENCH_micro.json", "w")) {
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"records\": %zu, "
                   "\"records_per_s\": %.0f",
                   rows[i].name.c_str(), rows[i].records,
                   rows[i].records_per_s);
      if (rows[i].tuned) {
        const stream::TunerState& t = rows[i].tuner;
        std::fprintf(f,
                     ", \"tuner_target_batch\": %zu, \"tuner_min_batch\": %zu, "
                     "\"tuner_batch_cap\": %zu, \"tuner_samples\": %llu, "
                     "\"tuner_adjust_up\": %llu, \"tuner_adjust_down\": %llu, "
                     "\"tuner_converged_batch\": %zu",
                     t.target_batch, t.min_batch, t.max_batch_cap,
                     static_cast<unsigned long long>(t.samples),
                     static_cast<unsigned long long>(t.adjust_up),
                     static_cast<unsigned long long>(t.adjust_down),
                     t.converged_batch);
      }
      if (rows[i].capacity_tuned) {
        const stream::CapacityState& c = rows[i].capacity;
        std::fprintf(f,
                     ", \"capacity\": %zu, \"capacity_min\": %zu, "
                     "\"capacity_max\": %zu, \"capacity_resize_up\": %llu, "
                     "\"capacity_resize_down\": %llu, "
                     "\"capacity_converged\": %zu",
                     c.capacity, c.min_capacity, c.max_capacity,
                     static_cast<unsigned long long>(c.resize_up),
                     static_cast<unsigned long long>(c.resize_down),
                     c.converged);
      }
      if (rows[i].p99_ms >= 0.0) {
        std::fprintf(f, ", \"p99_ms\": %.3f, \"budget_ms\": %lld",
                     rows[i].p99_ms,
                     static_cast<long long>(rows[i].budget_ms));
      }
      if (rows[i].hw_threads > 0) {
        std::fprintf(f, ", \"hw_threads\": %d", rows[i].hw_threads);
      }
      if (rows[i].has_skew) {
        const stream::WorkerEdgeSkew& s = rows[i].skew;
        std::fprintf(f,
                     ", \"skew_ratio\": %.3f, \"hot_edges\": %zu, "
                     "\"hot_adjust_down\": %llu, \"cold_adjust_down\": %llu, "
                     "\"min_target\": %zu, \"max_target\": %zu",
                     s.skew_ratio, s.hot_edges,
                     static_cast<unsigned long long>(s.hot_adjust_down),
                     static_cast<unsigned long long>(s.cold_adjust_down),
                     s.min_target, s.max_target);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_micro.json\n");
  }
}

}  // namespace
}  // namespace tcmf

int main(int argc, char** argv) {
  // --smoke: skip the google-benchmark suite and run the batched
  // transport comparison on reduced record counts (CI bench-smoke job).
  // Stripped before benchmark::Initialize, which rejects unknown flags.
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tcmf::RunBatchedTransportComparison(smoke);
  if (!smoke) tcmf::PrintPipelineStageReport();
  return 0;
}
