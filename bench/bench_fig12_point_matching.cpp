// Figure 12 reproduction: point matching between predicted and actual
// trajectories. The figure shows the histogram of matched-point
// proportions over a set of trajectory predictions, with a significantly
// mismatched outlier pair caused by a short-term change of active
// runways. We predict each flight's second half with RMF* from its first
// half, match predictions against the actual track, print the histogram,
// and drill into the worst outlier (which we inject as a runway change).

#include <cstdio>
#include <vector>

#include "datagen/flight.h"
#include "datagen/weather.h"
#include "geom/geo.h"
#include "prediction/rmf.h"
#include "va/pointmatch.h"

using namespace tcmf;

namespace {

/// Predicts the continuation of `actual` from its first `split` points
/// using RMF* applied iteratively (predict 8, observe truth, repeat) —
/// the rolling short-term prediction regime of the real-time layer.
Trajectory PredictContinuation(const Trajectory& actual, size_t split) {
  Trajectory predicted;
  predicted.entity_id = actual.entity_id;
  prediction::RmfStarPredictor star;
  for (size_t i = 0; i < split; ++i) star.Observe(actual.points[i]);
  for (size_t i = split; i < actual.points.size(); i += 14) {
    for (auto& pp : star.Predict(14)) {
      Position p;
      p.entity_id = actual.entity_id;
      p.t = pp.t;
      p.lon = pp.loc.lon;
      p.lat = pp.loc.lat;
      p.alt_m = pp.alt_m;
      predicted.points.push_back(p);
    }
    // Advance the predictor with the truth (rolling re-prediction).
    for (size_t k = i; k < std::min(i + 14, actual.points.size()); ++k) {
      star.Observe(actual.points[k]);
    }
  }
  return predicted;
}

}  // namespace

int main() {
  std::printf("=== Figure 12: point matching of predicted vs actual "
              "trajectories ===\n\n");

  datagen::FlightSimConfig config;
  config.flight_count = 39;
  config.runway_change_probability = 0.0;  // injected manually below
  config.holding_probability = 0.0;
  config.position_noise_m = 30.0;
  Rng wrng(81);
  datagen::WeatherField weather(wrng, config.extent, 18.0);
  datagen::FlightSimulator sim(config, datagen::DefaultOriginAirport(),
                               datagen::DefaultDestinationAirport(),
                               &weather);
  auto flights = sim.Run();
  // The outlier: one flight with a short-term runway change (both takeoff
  // and landing affected, per the figure caption).
  {
    datagen::FlightSimConfig outlier_config = config;
    outlier_config.flight_count = 1;
    outlier_config.seed = 4242;
    outlier_config.runway_change_probability = 1.0;
    outlier_config.holding_probability = 1.0;
    datagen::FlightSimulator outlier_sim(
        outlier_config, datagen::DefaultOriginAirport(),
        datagen::DefaultDestinationAirport(), &weather);
    flights.push_back(outlier_sim.Run()[0]);
  }

  std::vector<Trajectory> predicted, actual;
  for (const auto& f : flights) {
    size_t split = f.actual.points.size() / 2;
    predicted.push_back(PredictContinuation(f.actual, split));
    Trajectory tail;
    tail.entity_id = f.actual.entity_id;
    tail.points.assign(f.actual.points.begin() + split,
                       f.actual.points.end());
    actual.push_back(std::move(tail));
  }

  va::PointMatchOptions options;
  options.max_distance_m = 1000.0;
  options.max_time_diff_ms = 30 * kMillisPerSecond;
  va::BatchMatchReport report =
      va::MatchBatch(predicted, actual, options, 0.8);

  std::printf("matched-point proportion histogram over %zu prediction "
              "pairs:\n\n", report.pairs.size());
  for (size_t b = 0; b < report.proportion_histogram.bucket_count(); ++b) {
    std::printf("  [%.1f, %.1f) %4zu |", report.proportion_histogram.bucket_lo(b),
                report.proportion_histogram.bucket_lo(b) + 0.1,
                report.proportion_histogram.bucket(b));
    for (size_t i = 0; i < report.proportion_histogram.bucket(b); ++i) {
      std::printf("#");
    }
    std::printf("\n");
  }

  std::printf("\noutliers below 0.8 matched proportion: %zu\n",
              report.outliers.size());
  for (size_t idx : report.outliers) {
    const auto& r = report.pairs[idx];
    const auto& f = flights[idx];
    std::printf("  flight %llu: %.0f%% matched (runway change: %s, "
                "holding: %s)\n",
                static_cast<unsigned long long>(f.plan.flight_id),
                100.0 * r.matched_proportion,
                f.had_runway_change ? "yes" : "no",
                f.had_holding ? "yes" : "no");
  }

  double regular_mean = 0.0;
  size_t regular_n = 0;
  for (size_t i = 0; i + 1 < report.pairs.size(); ++i) {
    regular_mean += report.pairs[i].matched_proportion;
    ++regular_n;
  }
  std::printf("\nregular flights: mean matched proportion %.2f; "
              "injected runway-change flight: %.2f\n",
              regular_mean / regular_n,
              report.pairs.back().matched_proportion);
  std::printf("\npaper: the histogram concentrates near 1.0 with the\n"
              "runway-change pair standing out as a low-proportion outlier\n"
              "the analyst can drill into on the map.\n");
  return 0;
}
