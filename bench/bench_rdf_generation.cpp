// Section 4.2.3 reproduction: RDF generation throughput. The paper
// reports ~10,500 input records transformed to RDF per second (lower for
// sources with complicated geometries), comfortably ahead of the 2 s
// per-entity reporting period.
//
// --smoke: the CI arm (tools/bench_check.py --only rdf). Compares batch
// TripleGenerator::Run against the fused pipeline path (FromVector ->
// rdf::TripleGeneratorStage -> store::KgStoreSink), writing both rows to
// BENCH_rdf.json with a triples-equal invariant and a fused-vs-batch
// throughput-ratio floor: enrichment behind the stream substrate must
// stay within a constant factor of the tight batch loop.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "datagen/weather.h"
#include "geom/geometry.h"
#include "rdf/rdfgen.h"
#include "rdf/stages.h"
#include "rdf/vocab.h"
#include "store/kgstore.h"
#include "store/stages.h"
#include "stream/pipeline.h"

using namespace tcmf;

namespace {

double MeasureRecordsPerSecond(rdf::TripleGenerator& gen,
                               rdf::DataConnector& source, size_t* records,
                               size_t* triples) {
  size_t sink_count = 0;
  auto start = std::chrono::steady_clock::now();
  size_t n = gen.Run(source, [&](const rdf::Triple&) { ++sink_count; });
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  *records = n;
  *triples = sink_count;
  return n / seconds;
}

struct GenRow {
  std::string name;
  size_t records = 0;
  size_t triples = 0;
  double records_per_s = 0.0;
};

// The gated batch-vs-fused arm: the same surveillance records through the
// tight batch loop and through the pipeline stages into a KnowledgeStore.
std::vector<GenRow> RunBatchVsFused(bool smoke) {
  std::printf("--- gated arm: batch vs fused enrichment ---\n");
  datagen::VesselSimConfig config;
  config.vessel_count = smoke ? 60 : 100;
  config.duration_ms = 2 * kMillisPerHour;
  Rng rng(3);
  auto ports = datagen::MakePorts(rng, config.extent, 12);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();
  std::vector<stream::Record> records;
  records.reserve(data.stream.size());
  for (const Position& p : data.stream) {
    records.push_back(stream::PositionToRecord(p));
  }

  std::vector<GenRow> rows;
  {
    GenRow row;
    row.name = "rdf/generation/batch";
    rdf::GraphTemplate tmpl;
    rdf::VariableVector vars;
    rdf::MakePositionTemplate("http://tcmf/", &tmpl, &vars);
    rdf::TripleGenerator gen(std::move(tmpl), std::move(vars));
    rdf::VectorConnector source(records);
    row.records_per_s =
        MeasureRecordsPerSecond(gen, source, &row.records, &row.triples);
    rows.push_back(row);
  }
  {
    GenRow row;
    row.name = "rdf/generation/fused";
    rdf::GraphTemplate tmpl;
    rdf::VariableVector vars;
    rdf::MakePositionTemplate("http://tcmf/", &tmpl, &vars);
    geom::StCellEncoder encoder(config.extent, 10, 0, 15 * kMillisPerMinute);
    store::KnowledgeStore store(encoder, 8);
    stream::Pipeline pipeline;
    auto start = std::chrono::steady_clock::now();
    store::KgStoreSink(
        rdf::TripleGeneratorStage(
            stream::Flow<stream::Record>::FromVector(&pipeline, records),
            std::move(tmpl), std::move(vars)),
        &store);
    pipeline.Run();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    row.records = records.size();
    row.triples = store.CountersSnapshot().triples_added;
    row.records_per_s = records.size() / seconds;
    rows.push_back(row);
  }
  for (const GenRow& r : rows) {
    std::printf("%-24s %8zu records -> %9zu triples, %8.0f records/s\n",
                r.name.c_str(), r.records, r.triples, r.records_per_s);
  }
  std::printf("\n");
  return rows;
}

void WriteJson(const std::vector<GenRow>& rows) {
  std::FILE* f = std::fopen("BENCH_rdf.json", "w");
  if (!f) return;
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const GenRow& r = rows[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"hw_threads\": %u, "
                 "\"records\": %zu, \"triples\": %zu, "
                 "\"records_per_s\": %.1f}%s\n",
                 r.name.c_str(), hw, r.records, r.triples, r.records_per_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote BENCH_rdf.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  WriteJson(RunBatchVsFused(smoke));
  if (smoke) return 0;  // CI smoke: the gated arm only

  std::printf("=== Section 4.2.3: RDF generation throughput ===\n\n");

  // --- Surveillance positions (the dominant stream) ---
  {
    datagen::VesselSimConfig config;
    config.vessel_count = 100;
    config.duration_ms = 2 * kMillisPerHour;
    Rng rng(3);
    auto ports = datagen::MakePorts(rng, config.extent, 12);
    datagen::VesselSimulator sim(config, ports, {}, nullptr);
    auto data = sim.Run();
    std::vector<stream::Record> records;
    records.reserve(data.stream.size());
    for (const Position& p : data.stream) {
      records.push_back(stream::PositionToRecord(p));
    }

    rdf::GraphTemplate tmpl;
    rdf::VariableVector vars;
    rdf::MakePositionTemplate("http://tcmf/", &tmpl, &vars);
    rdf::TripleGenerator gen(std::move(tmpl), std::move(vars));
    rdf::VectorConnector source(std::move(records));
    size_t n, triples;
    double rps = MeasureRecordsPerSecond(gen, source, &n, &triples);
    std::printf("surveillance positions : %8zu records -> %9zu triples, "
                "%8.0f records/s, %8.0f triples/s\n",
                n, triples, rps, rps * triples / n);
  }

  // --- Weather forecast grids ---
  {
    geom::BBox extent{-6.0, 35.0, 10.0, 44.0};
    Rng rng(4);
    datagen::WeatherField weather(rng, extent);
    std::vector<stream::Record> records;
    for (TimeMs t = 0; t < 48 * kMillisPerHour; t += 3 * kMillisPerHour) {
      auto grid = weather.ForecastGrid(t, 48, 27);
      records.insert(records.end(), grid.begin(), grid.end());
    }
    rdf::GraphTemplate tmpl;
    rdf::VariableVector vars;
    rdf::MakeWeatherTemplate("http://tcmf/", &tmpl, &vars);
    rdf::TripleGenerator gen(std::move(tmpl), std::move(vars));
    rdf::VectorConnector source(std::move(records));
    size_t n, triples;
    double rps = MeasureRecordsPerSecond(gen, source, &n, &triples);
    std::printf("weather forecasts      : %8zu records -> %9zu triples, "
                "%8.0f records/s, %8.0f triples/s\n",
                n, triples, rps, rps * triples / n);
  }

  // --- Contextual geometries (complicated WKT slows conversion) ---
  {
    geom::BBox extent{-6.0, 35.0, 10.0, 44.0};
    Rng rng(5);
    auto regions = datagen::MakeRegions(rng, extent, 4000, "natura", 5000,
                                        60000);
    std::vector<stream::Record> records;
    records.reserve(regions.size());
    for (const auto& a : regions) {
      stream::Record r;
      r.Set("id", static_cast<int64_t>(a.id));
      r.Set("name", a.name);
      r.Set("kind", a.kind);
      r.Set("wkt", geom::ToWktPolygon(a.shape));
      records.push_back(std::move(r));
    }
    rdf::GraphTemplate tmpl;
    rdf::VariableVector vars;
    vars.DefineFieldIri("region", "id", "http://tcmf/area/");
    vars.DefineFieldLiteral("name", "name");
    // The geometry variable parses + re-serializes the WKT (the
    // "complicated geometries" cost the paper mentions).
    vars.Define("wkt", [](const stream::Record& r) -> std::optional<rdf::Term> {
      auto wkt = r.GetString("wkt");
      if (!wkt) return std::nullopt;
      Result<geom::Polygon> poly = geom::ParseWktPolygon(*wkt);
      if (!poly.ok()) return std::nullopt;
      return rdf::TypedLiteral(geom::ToWktPolygon(poly.value()),
                               rdf::vocab::kWktLiteral);
    });
    tmpl.Add(rdf::TemplateSlot::Var("region"),
             rdf::TemplateSlot::Const(rdf::Iri(rdf::vocab::kType)),
             rdf::TemplateSlot::Const(rdf::Iri(rdf::vocab::kRegion)));
    tmpl.Add(rdf::TemplateSlot::Var("region"),
             rdf::TemplateSlot::Const(rdf::Iri(rdf::vocab::kHasName)),
             rdf::TemplateSlot::Var("name"));
    tmpl.Add(rdf::TemplateSlot::Var("region"),
             rdf::TemplateSlot::Const(rdf::Iri(rdf::vocab::kAsWKT)),
             rdf::TemplateSlot::Var("wkt"));
    rdf::TripleGenerator gen(std::move(tmpl), std::move(vars));
    rdf::VectorConnector source(std::move(records));
    size_t n, triples;
    double rps = MeasureRecordsPerSecond(gen, source, &n, &triples);
    std::printf("contextual geometries  : %8zu records -> %9zu triples, "
                "%8.0f records/s, %8.0f triples/s\n",
                n, triples, rps, rps * triples / n);
  }

  std::printf(
      "\npaper: ~10,500 records/s overall; geometry-heavy sources slower.\n"
      "The shape to match: sustained throughput orders of magnitude above\n"
      "the >= 2 s per-entity reporting period.\n");
  return 0;
}
