// Figure 5(b) reproduction: Hybrid Clustering/HMM trajectory prediction —
// per-waypoint deviation-from-flight-plan accuracy. Paper: deviations
// predicted with a combined 3-D accuracy of 183-736 m RMSE averaged over
// the reference-point sequence across clusters (real Spanish airspace
// data, April 2016); at least an order of magnitude better cross-track
// error than a "blind" HMM over raw positions, with 2-3 orders of
// magnitude less processing and storage.

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "datagen/flight.h"
#include "datagen/weather.h"
#include "geom/geo.h"
#include "prediction/trajpred.h"

using namespace tcmf;

namespace {

prediction::TpExample MakeExample(const datagen::SimulatedFlight& flight,
                                  const datagen::WeatherField& weather) {
  prediction::TpExample ex;
  std::vector<geom::LonLat> wps;
  std::vector<TimeMs> etas;
  for (const auto& wp : flight.plan.waypoints) {
    wps.push_back(wp.loc);
    etas.push_back(wp.eta);
    prediction::EnrichedPoint ep;
    ep.loc = wp.loc;
    ep.t = wp.eta;
    auto w = weather.Sample(wp.loc.lon, wp.loc.lat, wp.eta);
    ep.features = {w.severity,
                   static_cast<double>(flight.aircraft.cls) / 2.0};
    ex.reference.push_back(ep);
  }
  ex.deviations_m = prediction::WaypointDeviations(wps, etas, flight.actual);
  return ex;
}

}  // namespace

int main() {
  std::printf("=== Figure 5(b): Hybrid Clustering/HMM deviation "
              "prediction ===\n\n");

  datagen::FlightSimConfig config;
  config.flight_count = 120;
  config.airway_count = 3;
  config.position_noise_m = 30.0;
  Rng wrng(41);
  datagen::WeatherField weather(wrng, config.extent, 22.0);
  datagen::FlightSimulator sim(config, datagen::DefaultOriginAirport(),
                               datagen::DefaultDestinationAirport(),
                               &weather);
  auto flights = sim.Run();

  std::vector<prediction::TpExample> examples;
  for (const auto& f : flights) examples.push_back(MakeExample(f, weather));
  size_t train_n = examples.size() * 3 / 4;
  std::vector<prediction::TpExample> train(examples.begin(),
                                           examples.begin() + train_n);

  // --- Hybrid model ---
  prediction::HybridTpOptions options;
  options.erp.spatial_scale_m = 20000.0;
  options.reachability_threshold = 3.0;
  auto t0 = std::chrono::steady_clock::now();
  auto model = prediction::HybridTpModel::Train(train, options);
  double hybrid_train_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

  std::printf("training: %zu flights, %d clusters discovered\n", train_n,
              model.cluster_count());

  // Per-cluster per-waypoint RMSE on the held-out flights (the per-
  // waypoint accuracy band of Figure 5(b)).
  size_t waypoints = examples[0].reference.size();
  std::vector<RunningStats> per_waypoint(waypoints);
  std::vector<RunningStats> per_cluster(model.cluster_count());
  RunningStats all;
  for (size_t i = train_n; i < examples.size(); ++i) {
    int cluster = model.AssignCluster(examples[i].reference);
    auto predicted = model.PredictDeviations(examples[i].reference, {});
    for (size_t w = 1; w + 1 < predicted.size(); ++w) {
      double err = std::fabs(predicted[w] - examples[i].deviations_m[w]);
      per_waypoint[w].Add(err);
      all.Add(err);
      if (cluster >= 0) per_cluster[cluster].Add(err);
    }
  }

  std::printf("\nper-waypoint |deviation error| on held-out flights:\n");
  for (size_t w = 1; w + 1 < waypoints; ++w) {
    std::printf("  waypoint %zu: mean %6.0f m  (n=%zu)\n", w,
                per_waypoint[w].mean(), per_waypoint[w].count());
  }
  std::printf("\nper-cluster accuracy band:\n");
  double lo = 1e18, hi = 0.0;
  for (int c = 0; c < model.cluster_count(); ++c) {
    if (per_cluster[c].count() == 0) continue;
    double rmse = std::sqrt(per_cluster[c].variance() +
                            per_cluster[c].mean() * per_cluster[c].mean());
    lo = std::min(lo, rmse);
    hi = std::max(hi, rmse);
    std::printf("  cluster %d (size %zu): RMSE %6.0f m\n", c,
                model.ClusterSize(c), rmse);
  }
  std::printf("  band: %.0f - %.0f m   (paper: 183 - 736 m RMSE)\n", lo, hi);

  // --- Blind HMM baseline ---
  prediction::BlindHmmTp::Options blind_options;
  blind_options.extent = config.extent;
  blind_options.grid_side = 40;
  blind_options.hmm_states = 10;
  blind_options.hmm_iterations = 6;
  std::vector<Trajectory> raw_train;
  for (size_t i = 0; i < train_n; ++i) raw_train.push_back(flights[i].actual);
  t0 = std::chrono::steady_clock::now();
  auto blind = prediction::BlindHmmTp::Train(raw_train, blind_options);
  double blind_train_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  // Blind prediction error: predict the position at each plan waypoint ETA
  // from the prefix of raw positions, compare against the actual position.
  RunningStats blind_err;
  for (size_t i = train_n; i < examples.size(); ++i) {
    const auto& flight = flights[i];
    const auto& pts = flight.actual.points;
    for (size_t w = 1; w + 1 < flight.plan.waypoints.size(); ++w) {
      TimeMs eta = flight.plan.waypoints[w].eta;
      // Prefix: everything up to 10 steps before the waypoint time.
      Trajectory prefix;
      size_t cut = 0;
      while (cut < pts.size() && pts[cut].t < eta) ++cut;
      if (cut < 10) continue;
      prefix.points.assign(pts.begin(), pts.begin() + cut - 10);
      geom::LonLat predicted = blind.PredictPosition(prefix, 10);
      // Actual position at the waypoint time.
      const Position& truth = pts[std::min(cut, pts.size() - 1)];
      blind_err.Add(geom::HaversineM(predicted.lon, predicted.lat,
                                     truth.lon, truth.lat));
    }
  }

  double hybrid_rmse =
      std::sqrt(all.variance() + all.mean() * all.mean());
  double blind_rmse = std::sqrt(blind_err.variance() +
                                blind_err.mean() * blind_err.mean());
  std::printf("\ncomparison with the blind HMM over raw positions:\n");
  std::printf("%-28s %14s %14s %14s %14s\n", "model", "RMSE", "parameters",
              "train obs", "train ms");
  std::printf("%-28s %12.0f m %14zu %14zu %14.0f\n", "Hybrid Clustering/HMM",
              hybrid_rmse, model.TotalParameters(),
              train_n * waypoints, hybrid_train_ms);
  std::printf("%-28s %12.0f m %14zu %14zu %14.0f\n", "blind HMM (raw grid)",
              blind_rmse, blind.TotalParameters(),
              blind.training_observations(), blind_train_ms);
  std::printf("\naccuracy ratio: %.1fx  |  parameter ratio: %.0fx  |  "
              "training-data ratio: %.0fx\n",
              blind_rmse / hybrid_rmse,
              static_cast<double>(blind.TotalParameters()) /
                  model.TotalParameters(),
              static_cast<double>(blind.training_observations()) /
                  (train_n * waypoints));
  std::printf(
      "\npaper: >= 10x better cross-track accuracy than the blind HMM with\n"
      "2-3 orders of magnitude less processing and storage resources.\n");
  return 0;
}
