// Section 4.2.4 reproduction: spatio-temporal link discovery throughput
// with and without cell masks. Paper numbers: 4,765,647 critical points
// against 8,599 regions produced 381,262 dul:within and 9,122
// geosparql:nearTo relations at 23.09 entities/s without masks vs 123.51
// entities/s with masks (~5.3x); point-vs-port nearTo ran at 328.53
// entities/s. We run a scaled version of the same workload and report the
// same columns; the shape to match is the mask speedup factor and the
// relative magnitude of the relation counts.

#include <chrono>
#include <cstdio>

#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "linkdiscovery/linker.h"
#include "synopses/critical_points.h"

using namespace tcmf;

namespace {

struct RunResult {
  double entities_per_s;
  size_t within;
  size_t near;
  size_t polygon_tests;
  size_t mask_skips;
};

template <typename Linker>
RunResult Drive(Linker& linker, const std::vector<Position>& points) {
  auto start = std::chrono::steady_clock::now();
  for (const Position& p : points) linker.Observe(p);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RunResult out;
  out.entities_per_s = points.size() / seconds;
  out.within = linker.stats().links_within;
  out.near = linker.stats().links_near_area;
  out.polygon_tests = linker.stats().polygon_tests;
  out.mask_skips = 0;
  return out;
}

}  // namespace

int main() {
  std::printf("=== Section 4.2.4: spatio-temporal link discovery ===\n\n");

  // Workload: critical points from simulated traffic vs a dense region
  // catalog hugging the traffic (as Natura2000 + fishing zones hug the
  // European coast in the paper's Figure 4).
  datagen::VesselSimConfig config;
  config.vessel_count = 80;
  config.duration_ms = 4 * kMillisPerHour;
  config.report_interval_ms = 5000;
  Rng rng(9);
  auto ports = datagen::MakePorts(rng, config.extent, 15);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();

  synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
  std::vector<Position> critical;
  for (const Position& p : data.stream) {
    for (auto& cp : gen.Observe(p)) critical.push_back(cp.pos);
  }
  // Region catalog: detailed coastline-like polygons (real Natura2000
  // shapes have hundreds of vertices), anchored to the traffic corridors
  // but offset beyond the nearTo distance — the paper's Figure 4 regime,
  // where most points share a grid cell with regions yet need no
  // refinement, which is exactly what the cell mask detects.
  std::vector<geom::LonLat> anchors = datagen::AreaCentroids(ports);
  auto regions = datagen::MakeRegionsNear(rng, anchors, 800, "natura", 2000,
                                          9000, 30000, 150000,
                                          /*min_vertices=*/120,
                                          /*max_vertices=*/280);

  // Scale up the point stream by re-running it (same spatial structure).
  std::vector<Position> workload = critical;
  while (workload.size() < 30000) {
    workload.insert(workload.end(), critical.begin(), critical.end());
  }
  std::printf("workload: %zu critical points vs %zu regions\n\n",
              workload.size(), regions.size());

  std::printf("%-28s %14s %10s %10s %14s %12s\n", "method", "entities/s",
              "within", "nearTo", "polygon tests", "mask skips");

  linkdiscovery::LinkerConfig lc;
  lc.extent = config.extent;
  lc.near_distance_m = 500.0;
    lc.grid_cols = 24;
  lc.grid_rows = 24;
  lc.mask_resolution = 32;

  // Naive baseline (no blocking at all).
  {
    // The naive baseline is far slower: run it on a subsample and scale.
    std::vector<Position> sample(workload.begin(),
                                 workload.begin() + workload.size() / 50);
    linkdiscovery::NaiveLinker naive(lc.near_distance_m, regions);
    RunResult r = Drive(naive, sample);
    std::printf("%-28s %14.1f %10zu %10zu %14zu %12s\n",
                "no blocking (naive)", r.entities_per_s, r.within * 50,
                r.near * 50, r.polygon_tests * 50, "-");
  }

  // Grid blocking, masks off.
  double no_mask_rate = 0.0;
  {
    lc.use_masks = false;
    linkdiscovery::SpatioTemporalLinker linker(lc, regions);
    RunResult r = Drive(linker, workload);
    no_mask_rate = r.entities_per_s;
    std::printf("%-28s %14.1f %10zu %10zu %14zu %12zu\n",
                "equi-grid, no masks", r.entities_per_s, r.within, r.near,
                linker.stats().polygon_tests, linker.stats().mask_skips);
  }

  // Grid blocking + cell masks.
  double mask_rate = 0.0;
  {
    lc.use_masks = true;
    linkdiscovery::SpatioTemporalLinker linker(lc, regions);
    RunResult r = Drive(linker, workload);
    mask_rate = r.entities_per_s;
    std::printf("%-28s %14.1f %10zu %10zu %14zu %12zu\n",
                "equi-grid + cell masks", r.entities_per_s, r.within, r.near,
                linker.stats().polygon_tests, linker.stats().mask_skips);
  }
  std::printf("\nmask speedup over no-mask blocking: %.2fx "
              "(paper: 123.51 / 23.09 = 5.35x)\n",
              mask_rate / no_mask_rate);

  // Point-vs-port nearTo (paper: 328.53 entities/s, 2,536,967 relations).
  {
    linkdiscovery::LinkerConfig pc;
    pc.extent = config.extent;
    pc.near_distance_m = 5000.0;
    pc.use_masks = true;
    linkdiscovery::SpatioTemporalLinker linker(pc, ports);
    RunResult r = Drive(linker, workload);
    std::printf("\nnearTo vs %zu ports: %.1f entities/s, %zu within, "
                "%zu nearTo relations\n",
                ports.size(), r.entities_per_s, r.within, r.near);
  }

  // Moving-pair proximity with temporal book-keeping.
  {
    linkdiscovery::LinkerConfig mc;
    mc.extent = config.extent;
    mc.near_distance_m = 2000.0;
    mc.temporal_window_ms = 2 * kMillisPerMinute;
    mc.link_moving_pairs = true;
    linkdiscovery::SpatioTemporalLinker linker(mc, {});
    auto start = std::chrono::steady_clock::now();
    for (const Position& p : critical) linker.Observe(p);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    std::printf("moving-pair proximity: %.1f entities/s, %zu nearTo "
                "relations among vessels, %zu candidate pairs\n",
                critical.size() / seconds,
                linker.stats().links_near_entity,
                linker.stats().pair_candidates);
  }
  return 0;
}
