// Section 4.2.4 reproduction: spatio-temporal link discovery throughput
// with and without cell masks. Paper numbers: 4,765,647 critical points
// against 8,599 regions produced 381,262 dul:within and 9,122
// geosparql:nearTo relations at 23.09 entities/s without masks vs 123.51
// entities/s with masks (~5.3x); point-vs-port nearTo ran at 328.53
// entities/s. We run a scaled version of the same workload and report the
// same columns; the shape to match is the mask speedup factor and the
// relative magnitude of the relation counts.

// The index sweep below (grid vs rtree on clustered vs uniform traffic)
// is the gate for the STR/R*-tree: the equi-grid degrades toward linear
// scans when traffic piles into ports while the rtree adapts its leaves
// to the density, so rtree must win big on the clustered arm and stay
// within noise of the grid on the uniform arm. bench_check.py --only
// linkdiscovery enforces both, plus the matches-equal differential
// invariant, from BENCH_linkdiscovery.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "geom/rtree.h"
#include "geom/spatial_index.h"
#include "linkdiscovery/linker.h"
#include "synopses/critical_points.h"

using namespace tcmf;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct IndexRow {
  std::string name;  // linkdiscovery/<distribution>/<backend>
  size_t points = 0;
  size_t queries = 0;
  double radius_m = 0.0;
  double build_ms = 0.0;
  double queries_per_s = 0.0;
  unsigned long long matches = 0;
};

std::vector<geom::IndexPoint> MakeDistribution(const std::string& dist,
                                               size_t n,
                                               const geom::BBox& extent,
                                               Rng& rng) {
  std::vector<geom::IndexPoint> out;
  out.reserve(n);
  if (dist == "uniform") {
    for (size_t i = 0; i < n; ++i) {
      out.push_back({i, static_cast<TimeMs>(i),
                     rng.Uniform(extent.min_lon, extent.max_lon),
                     rng.Uniform(extent.min_lat, extent.max_lat)});
    }
    return out;
  }
  // Clustered: port-like Gaussian hotspots holding all the traffic.
  // Sigma 0.07 deg ~ 6-8 km: each hotspot sits inside a couple of the
  // 64x64 grid cells, the regime where grid blocking stops pruning.
  struct Hub {
    double lon, lat;
  };
  std::vector<Hub> hubs;
  for (int i = 0; i < 12; ++i) {
    hubs.push_back({rng.Uniform(extent.min_lon + 1.0, extent.max_lon - 1.0),
                    rng.Uniform(extent.min_lat + 1.0, extent.max_lat - 1.0)});
  }
  for (size_t i = 0; i < n; ++i) {
    const Hub& h = hubs[i % hubs.size()];
    out.push_back({i, static_cast<TimeMs>(i),
                   h.lon + rng.Gaussian(0.0, 0.07),
                   h.lat + rng.Gaussian(0.0, 0.07)});
  }
  return out;
}

std::vector<IndexRow> RunIndexSweep(bool smoke) {
  const geom::BBox extent{-6.0, 35.0, 10.0, 44.0};
  // Full population even in smoke: index behaviour is density-driven
  // (the 64x64 grid holds ~61 points/cell at 250k), so shrinking n
  // changes which backend wins, not just the noise. Smoke trims only
  // the query count.
  const size_t n = 250000;
  const size_t q = smoke ? 600 : 2000;
  const double radius_m = 2000.0;

  std::vector<IndexRow> rows;
  std::printf("=== spatial index sweep: grid vs rtree ===\n\n");
  std::printf("%-34s %10s %10s %12s %12s\n", "arm", "points", "build ms",
              "queries/s", "matches");

  for (const std::string& dist : {std::string("clustered"),
                                  std::string("uniform")}) {
    Rng rng(dist == "clustered" ? 401 : 402);
    std::vector<geom::IndexPoint> points =
        MakeDistribution(dist, n, extent, rng);
    // Queries at stored points: where the traffic (and the skew) is.
    std::vector<size_t> query_at;
    for (size_t i = 0; i < q; ++i) {
      query_at.push_back(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
    }

    for (geom::SpatialBackend backend :
         {geom::SpatialBackend::kGrid, geom::SpatialBackend::kRtree}) {
      double t0 = NowMs();
      auto index = geom::MakeSpatialIndex(backend, {extent, 64, 64}, points);
      double build_ms = NowMs() - t0;

      // Repeat the query set until enough wall time accumulates: a
      // single pass can finish in a few ms, where millisecond timing
      // noise swamps the backend difference.
      unsigned long long matches = 0;
      size_t reps = 0;
      double t1 = NowMs();
      double elapsed_ms = 0.0;
      do {
        matches = 0;
        for (size_t qi : query_at) {
          index->VisitWithinRadius(
              points[qi].lon, points[qi].lat, radius_m, geom::kTimeMin,
              [&](const geom::IndexPoint&) { ++matches; });
        }
        ++reps;
        elapsed_ms = NowMs() - t1;
      } while (elapsed_ms < 250.0);
      double query_s = elapsed_ms / 1000.0;

      IndexRow row;
      row.name = "linkdiscovery/" + dist + "/" + index->name();
      row.points = n;
      row.queries = q;
      row.radius_m = radius_m;
      row.build_ms = build_ms;
      row.queries_per_s = static_cast<double>(q * reps) / query_s;
      row.matches = matches;
      std::printf("%-34s %10zu %10.1f %12.0f %12llu\n", row.name.c_str(), n,
                  build_ms, row.queries_per_s, matches);
      rows.push_back(row);
    }

    // k-NN showcase on the same population (rtree-only kernel): the
    // "nearest 10 vessels" moving-query scenario the ROADMAP names.
    {
      std::vector<geom::RtreeItem> items;
      items.reserve(n);
      for (const geom::IndexPoint& p : points) {
        items.push_back({geom::StBox::Point(p.lon, p.lat, p.t), p.id});
      }
      double t0 = NowMs();
      geom::RStarTree tree = geom::RStarTree::BulkLoad(std::move(items));
      double build_ms = NowMs() - t0;
      unsigned long long visited = 0;
      size_t reps = 0;
      double t1 = NowMs();
      double elapsed_ms = 0.0;
      do {
        visited = 0;
        for (size_t qi : query_at) {
          visited += tree.NearestK(points[qi].lon, points[qi].lat, 10).size();
        }
        ++reps;
        elapsed_ms = NowMs() - t1;
      } while (elapsed_ms < 250.0);
      double query_s = elapsed_ms / 1000.0;
      IndexRow row;
      row.name = "linkdiscovery/" + dist + "/knn10";
      row.points = n;
      row.queries = q;
      row.build_ms = build_ms;
      row.queries_per_s = static_cast<double>(q * reps) / query_s;
      row.matches = visited;
      std::printf("%-34s %10zu %10.1f %12.0f %12llu\n", row.name.c_str(), n,
                  build_ms, row.queries_per_s, visited);
      rows.push_back(row);
    }
  }
  std::printf("\n");
  return rows;
}

void WriteJson(const std::vector<IndexRow>& rows) {
  std::FILE* f = std::fopen("BENCH_linkdiscovery.json", "w");
  if (!f) return;
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const IndexRow& r = rows[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"hw_threads\": %u, \"points\": %zu, "
                 "\"queries\": %zu, \"radius_m\": %.1f, \"build_ms\": %.2f, "
                 "\"queries_per_s\": %.1f, \"matches\": %llu}%s\n",
                 r.name.c_str(), hw, r.points, r.queries, r.radius_m,
                 r.build_ms, r.queries_per_s, r.matches,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote BENCH_linkdiscovery.json\n");
}

struct RunResult {
  double entities_per_s;
  size_t within;
  size_t near;
  size_t polygon_tests;
  size_t mask_skips;
};

template <typename Linker>
RunResult Drive(Linker& linker, const std::vector<Position>& points) {
  auto start = std::chrono::steady_clock::now();
  for (const Position& p : points) linker.Observe(p);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RunResult out;
  out.entities_per_s = points.size() / seconds;
  out.within = linker.stats().links_within;
  out.near = linker.stats().links_near_area;
  out.polygon_tests = linker.stats().polygon_tests;
  out.mask_skips = 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  WriteJson(RunIndexSweep(smoke));
  if (smoke) return 0;  // CI smoke: the gated sweep only

  std::printf("\n=== Section 4.2.4: spatio-temporal link discovery ===\n\n");

  // Workload: critical points from simulated traffic vs a dense region
  // catalog hugging the traffic (as Natura2000 + fishing zones hug the
  // European coast in the paper's Figure 4).
  datagen::VesselSimConfig config;
  config.vessel_count = 80;
  config.duration_ms = 4 * kMillisPerHour;
  config.report_interval_ms = 5000;
  Rng rng(9);
  auto ports = datagen::MakePorts(rng, config.extent, 15);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();

  synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
  std::vector<Position> critical;
  for (const Position& p : data.stream) {
    for (auto& cp : gen.Observe(p)) critical.push_back(cp.pos);
  }
  // Region catalog: detailed coastline-like polygons (real Natura2000
  // shapes have hundreds of vertices), anchored to the traffic corridors
  // but offset beyond the nearTo distance — the paper's Figure 4 regime,
  // where most points share a grid cell with regions yet need no
  // refinement, which is exactly what the cell mask detects.
  std::vector<geom::LonLat> anchors = datagen::AreaCentroids(ports);
  auto regions = datagen::MakeRegionsNear(rng, anchors, 800, "natura", 2000,
                                          9000, 30000, 150000,
                                          /*min_vertices=*/120,
                                          /*max_vertices=*/280);

  // Scale up the point stream by re-running it (same spatial structure).
  std::vector<Position> workload = critical;
  while (workload.size() < 30000) {
    workload.insert(workload.end(), critical.begin(), critical.end());
  }
  std::printf("workload: %zu critical points vs %zu regions\n\n",
              workload.size(), regions.size());

  std::printf("%-28s %14s %10s %10s %14s %12s\n", "method", "entities/s",
              "within", "nearTo", "polygon tests", "mask skips");

  linkdiscovery::LinkerConfig lc;
  lc.extent = config.extent;
  lc.near_distance_m = 500.0;
    lc.grid_cols = 24;
  lc.grid_rows = 24;
  lc.mask_resolution = 32;

  // Naive baseline (no blocking at all).
  {
    // The naive baseline is far slower: run it on a subsample and scale.
    std::vector<Position> sample(workload.begin(),
                                 workload.begin() + workload.size() / 50);
    linkdiscovery::NaiveLinker naive(lc.near_distance_m, regions);
    RunResult r = Drive(naive, sample);
    std::printf("%-28s %14.1f %10zu %10zu %14zu %12s\n",
                "no blocking (naive)", r.entities_per_s, r.within * 50,
                r.near * 50, r.polygon_tests * 50, "-");
  }

  // Grid blocking, masks off.
  double no_mask_rate = 0.0;
  {
    lc.use_masks = false;
    linkdiscovery::SpatioTemporalLinker linker(lc, regions);
    RunResult r = Drive(linker, workload);
    no_mask_rate = r.entities_per_s;
    std::printf("%-28s %14.1f %10zu %10zu %14zu %12zu\n",
                "equi-grid, no masks", r.entities_per_s, r.within, r.near,
                linker.stats().polygon_tests, linker.stats().mask_skips);
  }

  // Grid blocking + cell masks.
  double mask_rate = 0.0;
  {
    lc.use_masks = true;
    linkdiscovery::SpatioTemporalLinker linker(lc, regions);
    RunResult r = Drive(linker, workload);
    mask_rate = r.entities_per_s;
    std::printf("%-28s %14.1f %10zu %10zu %14zu %12zu\n",
                "equi-grid + cell masks", r.entities_per_s, r.within, r.near,
                linker.stats().polygon_tests, linker.stats().mask_skips);
  }
  std::printf("\nmask speedup over no-mask blocking: %.2fx "
              "(paper: 123.51 / 23.09 = 5.35x)\n",
              mask_rate / no_mask_rate);

  // Point-vs-port nearTo (paper: 328.53 entities/s, 2,536,967 relations).
  {
    linkdiscovery::LinkerConfig pc;
    pc.extent = config.extent;
    pc.near_distance_m = 5000.0;
    pc.use_masks = true;
    linkdiscovery::SpatioTemporalLinker linker(pc, ports);
    RunResult r = Drive(linker, workload);
    std::printf("\nnearTo vs %zu ports: %.1f entities/s, %zu within, "
                "%zu nearTo relations\n",
                ports.size(), r.entities_per_s, r.within, r.near);
  }

  // Moving-pair proximity with temporal book-keeping.
  {
    linkdiscovery::LinkerConfig mc;
    mc.extent = config.extent;
    mc.near_distance_m = 2000.0;
    mc.temporal_window_ms = 2 * kMillisPerMinute;
    mc.link_moving_pairs = true;
    linkdiscovery::SpatioTemporalLinker linker(mc, {});
    auto start = std::chrono::steady_clock::now();
    for (const Position& p : critical) linker.Observe(p);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    std::printf("moving-pair proximity: %.1f entities/s, %zu nearTo "
                "relations among vessels, %zu candidate pairs\n",
                critical.size() / seconds,
                linker.stats().links_near_entity,
                linker.stats().pair_candidates);
  }
  return 0;
}
