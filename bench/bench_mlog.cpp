// Durable log microbenchmark: append and replay throughput of the mlog
// Kafka-substitute as a function of fsync policy and segment size. The
// paper's architecture leans on a durable broker between every pair of
// components (Section 3); this quantifies what the single-node
// substitution costs — and shows that `never`/`per_batch` policies keep
// the log far faster than any realistic AIS/ADS-B ingest rate, while
// `per_append` pays the full fdatasync-per-record price.
//
// Also: a partitioned-topic sweep {1, 4, 16} under a skewed million-key
// vessel workload — one producer thread per partition, one consumer-group
// member per partition on replay — quantifying the scale-out the
// PartitionedLog adds over a single log (Section 3's partitioned broker
// topics). Appends are CPU-bound at fsync=never (encode + CRC), so the
// aggregate rate should scale with producers up to the core count.
//
// Emits a human-readable table on stdout and machine-readable rows to
// BENCH_mlog.json in the working directory. `--smoke` shrinks every run
// for CI gating.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "mlog/log.h"
#include "mlog/partitioned.h"
#include "stream/record.h"

using namespace tcmf;

namespace {

// A record shaped like a cleaned AIS position report — the dominant
// payload every datAcron component exchanges through the broker.
stream::Record MakeAisRecord(Rng& rng, uint64_t seq) {
  stream::Record r;
  r.set_event_time(static_cast<TimeMs>(seq * 1000));
  r.Set("mmsi", static_cast<int64_t>(200000000 + seq % 5000));
  r.Set("lon", rng.Uniform(-6.0, 10.0));
  r.Set("lat", rng.Uniform(35.0, 44.0));
  r.Set("speed_kn", rng.Uniform(0.0, 25.0));
  r.Set("heading", rng.Uniform(0.0, 360.0));
  r.Set("status", std::string("under_way"));
  return r;
}

struct RunResult {
  mlog::FsyncPolicy policy;
  size_t segment_bytes;
  size_t records;
  size_t batch_size;
  double append_s;
  double replay_s;
  uint64_t bytes;
  uint64_t fsyncs;
  size_t segments;

  double AppendRecsPerS() const { return records / append_s; }
  double AppendMbPerS() const { return bytes / append_s / 1e6; }
  double ReplayRecsPerS() const { return records / replay_s; }
  double ReplayMbPerS() const { return bytes / replay_s / 1e6; }
};

RunResult RunOne(mlog::FsyncPolicy policy, size_t segment_bytes,
                 size_t records, size_t batch_size) {
  namespace fs = std::filesystem;
  const std::string dir =
      StrFormat("bench_mlog_logs/%s_%zu", mlog::FsyncPolicyName(policy),
                segment_bytes);
  fs::remove_all(dir);

  mlog::LogOptions options;
  options.dir = dir;
  options.segment_bytes = segment_bytes;
  options.fsync_policy = policy;
  auto log_or = mlog::Log::Open(options);
  if (!log_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 log_or.status().message().c_str());
    std::exit(1);
  }
  auto log = std::move(log_or).value();

  Rng rng(7);
  std::vector<stream::Record> batch;
  batch.reserve(batch_size);

  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < records;) {
    batch.clear();
    for (size_t j = 0; j < batch_size && i < records; ++j, ++i) {
      batch.push_back(MakeAisRecord(rng, i));
    }
    if (!log->AppendBatch(batch).ok()) {
      std::fprintf(stderr, "append failed\n");
      std::exit(1);
    }
  }
  double append_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  // Replay everything through a fresh cursor.
  auto cursor = log->NewCursor();
  cursor->Seek(0);
  size_t replayed = 0;
  t0 = std::chrono::steady_clock::now();
  while (auto rec = cursor->Next()) ++replayed;
  double replay_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (replayed != records) {
    std::fprintf(stderr, "replay count mismatch: %zu != %zu\n", replayed,
                 records);
    std::exit(1);
  }

  RunResult result;
  result.policy = policy;
  result.segment_bytes = segment_bytes;
  result.records = records;
  result.batch_size = batch_size;
  result.append_s = append_s;
  result.replay_s = replay_s;
  const mlog::LogMetrics metrics = log->metrics();
  result.bytes = metrics.appended_bytes;
  result.fsyncs = metrics.fsyncs;
  result.segments = log->segment_count();

  log.reset();
  fs::remove_all(dir);
  return result;
}

// ------------------------------------------------ partitioned-topic sweep

/// Skewed million-key vessel id: a quarter of the traffic concentrates on
/// 1k hot vessels (dense shipping lanes), the rest spreads uniformly over
/// the full million-key space. Hash routing must still balance partitions.
uint64_t SkewedVesselKey(Rng& rng) {
  if (rng.Bernoulli(0.25)) return static_cast<uint64_t>(rng.UniformInt(0, 999));
  return static_cast<uint64_t>(rng.UniformInt(0, 999'999));
}

stream::Record MakeKeyedAisRecord(Rng& rng, uint64_t seq, uint64_t key) {
  stream::Record r;
  r.set_event_time(static_cast<TimeMs>(seq * 1000));
  r.Set("mmsi", static_cast<int64_t>(200000000 + key));
  r.Set("lon", rng.Uniform(-6.0, 10.0));
  r.Set("lat", rng.Uniform(35.0, 44.0));
  r.Set("speed_kn", rng.Uniform(0.0, 25.0));
  r.Set("heading", rng.Uniform(0.0, 360.0));
  r.Set("status", std::string("under_way"));
  return r;
}

struct PartitionRunResult {
  size_t partitions;
  size_t records;
  size_t batch_size;
  double append_s;
  double replay_s;
  uint64_t bytes;

  double AppendRecsPerS() const { return records / append_s; }
  double AppendMbPerS() const { return bytes / append_s / 1e6; }
  double ReplayRecsPerS() const { return records / replay_s; }
  double ReplayMbPerS() const { return bytes / replay_s / 1e6; }
};

PartitionRunResult RunPartitioned(size_t partitions, size_t records,
                                  size_t batch_size) {
  namespace fs = std::filesystem;
  const std::string dir = StrFormat("bench_mlog_logs/topic_p%zu", partitions);
  fs::remove_all(dir);

  mlog::PartitionedLogOptions options;
  options.dir = dir;
  options.partitions = partitions;
  options.log.fsync_policy = mlog::FsyncPolicy::kNever;
  options.log.segment_bytes = 16u << 20;
  auto topic_or = mlog::PartitionedLog::Open(options);
  if (!topic_or.ok()) {
    std::fprintf(stderr, "topic open failed: %s\n",
                 topic_or.status().message().c_str());
    std::exit(1);
  }
  auto topic = std::move(topic_or).value();

  // Pre-generate and pre-scatter so record construction and key hashing
  // stay out of the timed region: the sweep measures the log, and the
  // producer-side routing cost is already covered by the stream benches.
  Rng rng(11);
  std::vector<std::vector<std::vector<stream::Record>>> batches(partitions);
  for (size_t i = 0; i < records; ++i) {
    const uint64_t key = SkewedVesselKey(rng);
    const size_t p = topic->PartitionFor(key);
    if (batches[p].empty() || batches[p].back().size() == batch_size) {
      batches[p].emplace_back();
      batches[p].back().reserve(batch_size);
    }
    batches[p].back().push_back(MakeKeyedAisRecord(rng, i, key));
  }

  // Append: one producer thread per partition (the PartitionedLog
  // threading contract), aggregate wall-clock across all of them.
  std::atomic<bool> failed{false};
  auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> producers;
    producers.reserve(partitions);
    for (size_t p = 0; p < partitions; ++p) {
      producers.emplace_back([&, p] {
        for (const std::vector<stream::Record>& batch : batches[p]) {
          if (!topic->partition(p)->AppendBatch(batch).ok()) {
            failed.store(true);
            return;
          }
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }
  const double append_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (failed.load()) {
    std::fprintf(stderr, "partitioned append failed\n");
    std::exit(1);
  }

  // Replay: one consumer-group member per partition, each draining its
  // static assignment through the shared group frontier.
  std::atomic<size_t> replayed{0};
  t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> consumers;
    consumers.reserve(partitions);
    for (size_t m = 0; m < partitions; ++m) {
      consumers.emplace_back([&, m] {
        auto cursor_or = topic->JoinGroup("bench", m, partitions);
        if (!cursor_or.ok()) {
          failed.store(true);
          return;
        }
        auto cursor = std::move(cursor_or).value();
        std::vector<mlog::GroupRecord> scratch;
        size_t n;
        size_t local = 0;
        do {
          scratch.clear();
          n = cursor->NextBatch(&scratch, batch_size);
          local += n;
        } while (n > 0);
        if (!cursor->status().ok()) failed.store(true);
        replayed.fetch_add(local);
      });
    }
    for (std::thread& t : consumers) t.join();
  }
  const double replay_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (failed.load() || replayed.load() != records) {
    std::fprintf(stderr, "group replay mismatch: %zu != %zu\n",
                 replayed.load(), records);
    std::exit(1);
  }

  PartitionRunResult result;
  result.partitions = partitions;
  result.records = records;
  result.batch_size = batch_size;
  result.append_s = append_s;
  result.replay_s = replay_s;
  result.bytes = topic->size_bytes_total();

  topic.reset();
  fs::remove_all(dir);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const size_t shrink = smoke ? 20 : 1;
  std::printf("mlog durable log: append/replay throughput vs fsync policy "
              "and segment size\n\n");
  std::printf("%-11s %10s %8s | %12s %10s | %12s %10s | %7s %5s\n", "fsync",
              "segment", "records", "append rec/s", "MB/s", "replay rec/s",
              "MB/s", "fsyncs", "segs");

  struct Config {
    mlog::FsyncPolicy policy;
    size_t records;
  };
  const Config kConfigs[] = {
      {mlog::FsyncPolicy::kNever, 200000},
      {mlog::FsyncPolicy::kPerBatch, 100000},
      {mlog::FsyncPolicy::kPerAppend, 2000},  // fdatasync per record: slow
  };
  const size_t kSegmentSizes[] = {1u << 20, 16u << 20};  // 1 MiB, 16 MiB
  const size_t kBatch = 256;

  std::vector<RunResult> results;
  for (const Config& config : kConfigs) {
    for (size_t segment_bytes : kSegmentSizes) {
      RunResult r = RunOne(config.policy, segment_bytes,
                           std::max<size_t>(config.records / shrink, 512),
                           kBatch);
      results.push_back(r);
      std::printf("%-11s %9zuK %8zu | %12.0f %10.1f | %12.0f %10.1f | %7llu "
                  "%5zu\n",
                  mlog::FsyncPolicyName(r.policy), r.segment_bytes >> 10,
                  r.records, r.AppendRecsPerS(), r.AppendMbPerS(),
                  r.ReplayRecsPerS(), r.ReplayMbPerS(),
                  static_cast<unsigned long long>(r.fsyncs), r.segments);
    }
  }

  // Partitioned-topic sweep: aggregate throughput vs partition count under
  // the skewed million-key vessel workload.
  std::printf("\npartitioned topic: aggregate append/group-replay vs "
              "partition count (fsync=never, skewed 1M-key workload)\n\n");
  std::printf("%10s %8s | %12s %10s | %12s %10s\n", "partitions", "records",
              "append rec/s", "MB/s", "replay rec/s", "MB/s");
  const size_t kSweepRecords = std::max<size_t>(600000 / shrink, 4096);
  std::vector<PartitionRunResult> sweep;
  for (size_t partitions : {size_t{1}, size_t{4}, size_t{16}}) {
    PartitionRunResult r = RunPartitioned(partitions, kSweepRecords, kBatch);
    sweep.push_back(r);
    std::printf("%10zu %8zu | %12.0f %10.1f | %12.0f %10.1f\n", r.partitions,
                r.records, r.AppendRecsPerS(), r.AppendMbPerS(),
                r.ReplayRecsPerS(), r.ReplayMbPerS());
  }

  // Machine-readable output alongside the table.
  if (std::FILE* f = std::fopen("BENCH_mlog.json", "w")) {
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::fprintf(
          f,
          "  {\"fsync_policy\": \"%s\", \"segment_bytes\": %zu, "
          "\"records\": %zu, \"batch_size\": %zu, "
          "\"append_records_per_s\": %.0f, \"append_mb_per_s\": %.2f, "
          "\"replay_records_per_s\": %.0f, \"replay_mb_per_s\": %.2f, "
          "\"appended_bytes\": %llu, \"fsyncs\": %llu, \"segments\": %zu},\n",
          mlog::FsyncPolicyName(r.policy), r.segment_bytes, r.records,
          r.batch_size, r.AppendRecsPerS(), r.AppendMbPerS(),
          r.ReplayRecsPerS(), r.ReplayMbPerS(),
          static_cast<unsigned long long>(r.bytes),
          static_cast<unsigned long long>(r.fsyncs), r.segments);
    }
    for (size_t i = 0; i < sweep.size(); ++i) {
      const PartitionRunResult& r = sweep[i];
      std::fprintf(
          f,
          "  {\"workload\": \"skewed_mkeys\", \"partitions\": %zu, "
          "\"records\": %zu, \"batch_size\": %zu, \"hw_threads\": %u, "
          "\"append_records_per_s\": %.0f, \"append_mb_per_s\": %.2f, "
          "\"replay_records_per_s\": %.0f, \"replay_mb_per_s\": %.2f, "
          "\"appended_bytes\": %llu}%s\n",
          r.partitions, r.records, r.batch_size,
          std::thread::hardware_concurrency(), r.AppendRecsPerS(),
          r.AppendMbPerS(), r.ReplayRecsPerS(), r.ReplayMbPerS(),
          static_cast<unsigned long long>(r.bytes),
          i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_mlog.json\n");
  }

  std::printf(
      "\ntakeaway: per_batch durability costs one fdatasync per %zu-record\n"
      "batch and sustains orders of magnitude more throughput than the\n"
      "~1 msg/s/vessel AIS reporting rate the paper's broker absorbs;\n"
      "per_append is the upper bound on durability and the floor on speed.\n",
      kBatch);
  return 0;
}
