// Figure 11 reproduction: relevance-aware trajectory clustering for air
// traffic analysis. Paper setup: arrival flights over four days clustered
// by their final parts; a runway change on day 1 produces a route-cluster
// mix visibly different from days 2-4, shown as a time histogram of
// arrivals colored by cluster. We simulate four days of arrivals with a
// runway change active on day 1 only, cluster the approach phases with
// the relevance-aware distance, and print the per-day histogram.

#include <cstdio>
#include <map>
#include <vector>

#include "datagen/flight.h"
#include "datagen/weather.h"
#include "geom/geo.h"
#include "va/density.h"
#include "va/relevance.h"

using namespace tcmf;

int main() {
  std::printf("=== Figure 11: relevance-aware clustering of arrivals ===\n\n");

  // Four days of arrivals; day 1 has the runway change.
  std::vector<datagen::SimulatedFlight> flights;
  Rng wrng(71);
  datagen::FlightSimConfig base;
  base.flight_count = 30;
  base.departure_spread_ms = 20 * kMillisPerHour;
  datagen::WeatherField weather(wrng, base.extent, 15.0);
  for (int day = 0; day < 4; ++day) {
    datagen::FlightSimConfig config = base;
    config.seed = 100 + day;
    config.first_departure = static_cast<TimeMs>(day) * 24 * kMillisPerHour;
    // Day 1 (index 0): active runway change for all arrivals.
    config.runway_change_probability = day == 0 ? 0.9 : 0.02;
    datagen::FlightSimulator sim(config, datagen::DefaultOriginAirport(),
                                 datagen::DefaultDestinationAirport(),
                                 &weather);
    for (auto& f : sim.Run()) flights.push_back(std::move(f));
  }

  // Relevance: only the final approach (low altitude near the
  // destination) matters; cruise and takeoff are irrelevant.
  geom::LonLat dest = datagen::DefaultDestinationAirport().loc;
  std::vector<va::FlaggedTrajectory> flagged;
  for (const auto& f : flights) {
    flagged.push_back(va::FlagByPredicate(
        f.actual, [&](const Position& p) {
          return p.alt_m < 3500.0 &&
                 geom::HaversineM(p.lon, p.lat, dest.lon, dest.lat) < 60000.0;
        }));
  }
  auto labels = va::ClusterByRelevantParts(flagged, 4000.0, 3, 4);

  int clusters = 0;
  for (int l : labels) clusters = std::max(clusters, l + 1);
  std::printf("%zu arrivals clustered by final-approach similarity: "
              "%d clusters\n\n", flights.size(), clusters);

  // Figure 11 top: arrivals per 4-hour bin, stacked by cluster.
  va::TimeHistogram hist(0, 4 * kMillisPerHour, 24, clusters + 1);
  for (size_t i = 0; i < flights.size(); ++i) {
    TimeMs arrival = flights[i].actual.points.back().t;
    hist.Add(arrival, labels[i] < 0 ? clusters : labels[i]);
  }
  std::printf("arrivals per 4 h, stacked by cluster "
              "(last column = noise):\n%s\n", hist.Render().c_str());

  // Per-day cluster mix (the day-1 anomaly).
  std::printf("cluster mix per day:\n");
  std::printf("%-6s", "day");
  for (int c = 0; c < clusters; ++c) std::printf(" cluster%-2d", c);
  std::printf(" noise\n");
  for (int day = 0; day < 4; ++day) {
    std::map<int, size_t> mix;
    for (size_t i = 0; i < flights.size(); ++i) {
      TimeMs arrival = flights[i].actual.points.back().t;
      if (arrival / (24 * kMillisPerHour) == day) ++mix[labels[i]];
    }
    std::printf("%-6d", day + 1);
    for (int c = 0; c < clusters; ++c) std::printf(" %9zu", mix[c]);
    std::printf(" %5zu\n", mix[-1]);
  }

  // Quantify the anomaly: the dominant day-1 cluster should be rare on
  // days 2-4 (the runway-change approach pattern).
  std::map<int, size_t> day1, rest;
  for (size_t i = 0; i < flights.size(); ++i) {
    TimeMs arrival = flights[i].actual.points.back().t;
    if (labels[i] < 0) continue;
    (arrival / (24 * kMillisPerHour) == 0 ? day1 : rest)[labels[i]]++;
  }
  int day1_dominant = -1;
  size_t best = 0;
  for (auto& [c, n] : day1) {
    if (n > best) {
      best = n;
      day1_dominant = c;
    }
  }
  if (day1_dominant >= 0) {
    std::printf("\nday-1 dominant cluster %d: %zu of day-1 arrivals vs "
                "%zu across days 2-4\n",
                day1_dominant, day1[day1_dominant], rest[day1_dominant]);
  }
  std::printf("\npaper: the day-1 runway change shows up as a route cluster\n"
              "dominating day 1 and (near-)absent on the other days.\n");
  return 0;
}
