// Figures 6 and 7 reproduction: (6a) the streaming DFA of R = a c c over
// Sigma = {a, b, c}; (6b) its Pattern Markov Chain under a 1st-order input
// model; (7b) the waiting-time distributions of the DFA states; plus the
// smallest forecast interval exceeding a threshold (the I=(start,end)
// construction shown above the distributions in Figure 7).

#include <cstdio>

#include "cep/automaton.h"
#include "cep/pattern.h"
#include "cep/pmc.h"
#include "common/rng.h"

using namespace tcmf;
using namespace tcmf::cep;

int main() {
  std::printf("=== Figures 6 & 7: DFA, Pattern Markov Chain, "
              "waiting-time distributions ===\n\n");

  // R = a c c with Sigma = {a=0, b=1, c=2}.
  Pattern r = Pattern::Seq(
      {Pattern::Symbol(0), Pattern::Symbol(2), Pattern::Symbol(2)});
  std::printf("pattern R = acc (encoded %s), Sigma = {a=0, b=1, c=2}\n\n",
              r.ToString().c_str());

  Dfa dfa = CompileStreamingDfa(r, 3);
  std::printf("Figure 6(a) — streaming DFA of Sigma*R:\n%s\n",
              dfa.ToString().c_str());

  // Input model: a 1st-order Markov process estimated from a stream with
  // genuine sequential structure (a tends to be followed by c).
  Rng rng(3);
  std::vector<int> stream;
  int prev = 1;
  for (int i = 0; i < 50000; ++i) {
    int next;
    if (prev == 0) {
      next = rng.Bernoulli(0.5) ? 2 : static_cast<int>(rng.UniformInt(0, 1));
    } else if (prev == 2) {
      next = rng.Bernoulli(0.4) ? 2 : static_cast<int>(rng.UniformInt(0, 1));
    } else {
      next = static_cast<int>(rng.UniformInt(0, 2));
    }
    stream.push_back(next);
    prev = next;
  }
  MarkovInputModel input(3, 1);
  input.Fit(stream);

  PatternMarkovChain pmc(dfa, input);
  std::printf("Figure 6(b) — PMC transition structure (1st-order input):\n");
  std::printf("  PMC states: %d (= %d DFA states x %d contexts)\n",
              pmc.state_count(), dfa.state_count, input.context_count());
  std::printf("  input model: P(next|prev):\n");
  const char* names = "abc";
  for (int c = 0; c < 3; ++c) {
    std::printf("    after %c:", names[c]);
    for (int s = 0; s < 3; ++s) {
      std::printf("  P(%c)=%.3f", names[s], input.Prob(c, s));
    }
    std::printf("\n");
  }

  // Figure 7(b): waiting-time distributions per DFA state (context fixed
  // to the most recent symbol being 'b' for non-start states; we print
  // one representative PMC state per DFA state).
  const int kHorizon = 24;
  std::printf("\nFigure 7(b) — waiting-time distributions "
              "P(first detection in exactly k steps):\n\n      k:");
  for (int k = 1; k <= kHorizon; ++k) std::printf(" %5d", k);
  std::printf("\n");
  for (int q = 0; q < dfa.state_count; ++q) {
    // Representative context: 'b' (neutral) for the start state, the
    // symbol that leads into q otherwise.
    int context = 1;
    int pmc_state = pmc.StateOf(q, context);
    std::vector<double> wt = pmc.WaitingTime(pmc_state, kHorizon);
    std::printf("state %d:", q);
    for (double w : wt) std::printf(" %.3f", w);
    std::printf("%s\n", dfa.is_final[q] ? "  [final]" : "");
  }

  // Forecast intervals at several thresholds from state 2-analogue (the
  // deepest non-final state).
  int deep_state = -1;
  for (int q = dfa.state_count - 1; q >= 0; --q) {
    if (!dfa.is_final[q]) {
      deep_state = q;
      break;
    }
  }
  std::printf("\nforecast intervals from state %d (smallest interval with "
              "waiting-time mass >= theta):\n", deep_state);
  std::vector<double> wt =
      pmc.WaitingTime(pmc.StateOf(deep_state, 0), 200);
  for (double theta : {0.25, 0.5, 0.75, 0.9}) {
    auto iv = PatternMarkovChain::SmallestInterval(wt, theta);
    if (iv.has_value()) {
      std::printf("  theta=%.2f -> I=(%d, %d), P=%.3f\n", theta, iv->start,
                  iv->end, iv->prob);
    } else {
      std::printf("  theta=%.2f -> unreachable within horizon\n", theta);
    }
  }
  std::printf("\npaper Figure 7: distributions peak at the distance to the\n"
              "final state and flatten for earlier states; the interval\n"
              "I=(start,end) is the tightest window above the threshold.\n");
  return 0;
}
